// Repository benchmarks: one testing.B benchmark per table and figure of
// the paper's evaluation (§6). Each benchmark regenerates its result and
// reports the headline number as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the study end to end. Sweeps use the -quick subset of the 2017
// suite (6 benchmarks) to keep wall-clock reasonable; cmd/lfbench runs the
// full versions. Suite construction and the shared full-suite simulation
// happen once, outside the timed b.N loops; repeated iterations are then
// served by the sim package's run-cache rather than re-simulating.
package loopfrog

import (
	"io"
	"testing"

	"loopfrog/internal/cpu"
	"loopfrog/internal/experiments"
	"loopfrog/internal/sim"
	"loopfrog/internal/telemetry"
	"loopfrog/internal/workloads"
)

func quickSuite() []*workloads.Benchmark {
	keep := map[string]bool{"mcf": true, "omnetpp": true, "x264": true, "leela": true, "imagick": true, "gcc": true}
	var out []*workloads.Benchmark
	for _, b := range workloads.CPU2017() {
		if keep[b.Name] {
			out = append(out, b)
		}
	}
	return out
}

func BenchmarkFigure1(b *testing.B) {
	suite := quickSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(suite, []int{4, 6, 8, 10})
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		b.ReportMetric(last.GeomeanIPC/first.GeomeanIPC, "ipc-scaling")
		b.ReportMetric(first.CommitUtil-last.CommitUtil, "util-drop")
	}
}

func BenchmarkFigure6CPU2017(b *testing.B) {
	suite := workloads.CPU2017()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, geo, err := experiments.Figure6(cpu.DefaultConfig(), suite)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(geo["cpu2017"]-1), "geomean-speedup-%")
	}
}

func BenchmarkFigure6CPU2006(b *testing.B) {
	suite := workloads.CPU2006()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, geo, err := experiments.Figure6(cpu.DefaultConfig(), suite)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(geo["cpu2006"]-1), "geomean-speedup-%")
	}
}

// run2017 runs the full 2017 suite on the default configuration once; the
// figure/table benchmarks that analyse suite results call it before their
// timed loop instead of re-simulating per iteration.
func run2017(b *testing.B) []*sim.Result {
	b.Helper()
	res, err := sim.RunSuite(cpu.DefaultConfig(), workloads.CPU2017())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkFigure7(b *testing.B) {
	res := run2017(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure7(res, true)
		var ge2 float64
		for _, r := range rows {
			ge2 += r.FracGE2
		}
		if len(rows) > 0 {
			b.ReportMetric(100*ge2/float64(len(rows)), "avg-ge2-active-%")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	res := run2017(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure8(res, true)
		var fail float64
		for _, r := range rows {
			fail += r.SpecFail
		}
		if len(rows) > 0 {
			b.ReportMetric(100*fail/float64(len(rows)), "failed-spec-%")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	res := run2017(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(res)
		for _, r := range rows {
			if r.SubCategory == workloads.ClassBranchPref {
				b.ReportMetric(100*r.Fraction, "branch-prefetch-%")
			}
		}
	}
}

func BenchmarkPacking(b *testing.B) {
	suite := quickSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := experiments.Packing(suite)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(p.GeomeanWith-p.GeomeanWithout), "packing-pp")
		b.ReportMetric(p.MeanFactor, "mean-factor")
	}
}

func BenchmarkFigure9(b *testing.B) {
	suite := quickSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9(suite, []int{512, 2 << 10, 8 << 10, 32 << 10})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(rows[len(rows)-1].Geomean-rows[0].Geomean), "32k-vs-512B-pp")
	}
}

func BenchmarkFigure10(b *testing.B) {
	suite := quickSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10(suite, []int{1, 2, 4, 8, 16, 32})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(rows[2].Geomean-rows[len(rows)-1].Geomean), "4B-vs-line-pp")
	}
}

func BenchmarkAssociativity(b *testing.B) {
	suite := quickSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Associativity(suite)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(rows[0].Geomean-rows[2].Geomean), "full-vs-4way-pp")
	}
}

func BenchmarkGenerality(b *testing.B) {
	res := run2017(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all, nonOMP := experiments.Generality(res)
		b.ReportMetric(100*(all-1), "all-%")
		b.ReportMetric(100*(nonOMP-1), "non-omp-%")
	}
}

func BenchmarkArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.AreaReport() == "" {
			b.Fatal("empty area report")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	res := run2017(b)
	var xs []float64
	for _, r := range res {
		xs = append(xs, r.Speedup())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Table3(sim.Geomean(xs)) == "" {
			b.Fatal("empty table 3")
		}
	}
}

// BenchmarkSimulatorThroughput reports raw single-core simulation speed, for
// profiling: it calls sim.Run directly, bypassing the harness and its cache.
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench := workloads.ByName(workloads.CPU2017(), "leela")
	prog := bench.MustProgram()
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		st, err := sim.Run(cpu.DefaultConfig(), prog)
		if err != nil {
			b.Fatal(err)
		}
		insts += st.ArchInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkSimulatorThroughputWatchdogOff is the forward-progress-watchdog-off
// counterpart of BenchmarkSimulatorThroughput (which runs with the default
// watchdog enabled): comparing insts/s across the pair measures the watchdog's
// per-cycle cost on a clean run. The BENCH_watchdog.json record at the repo
// root is generated from this pair.
func BenchmarkSimulatorThroughputWatchdogOff(b *testing.B) {
	bench := workloads.ByName(workloads.CPU2017(), "leela")
	prog := bench.MustProgram()
	cfg := cpu.DefaultConfig()
	cfg.Watchdog.Disable = true
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		st, err := sim.Run(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		insts += st.ArchInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkSimulatorThroughputRegionLedgerOff is the per-region-ledger-off
// counterpart of BenchmarkSimulatorThroughput (which runs with the default
// configuration, region ledgers enabled): comparing insts/s across the pair
// measures the per-region speculation attribution cost. The region_ledger
// section of the BENCH_overhead.json record at the repo root is generated
// from this pair.
func BenchmarkSimulatorThroughputRegionLedgerOff(b *testing.B) {
	bench := workloads.ByName(workloads.CPU2017(), "leela")
	prog := bench.MustProgram()
	cfg := cpu.DefaultConfig()
	cfg.RegionLedger = false
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		st, err := sim.Run(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		insts += st.ArchInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkSimulatorThroughputTelemetry is the telemetry-on counterpart: a
// full trace sink (events + commit-slot samples) streams to io.Discard while
// the same workload runs, so comparing insts/s against
// BenchmarkSimulatorThroughput measures the observability overhead. The
// BENCH_overhead.json record at the repo root is generated from this pair.
func BenchmarkSimulatorThroughputTelemetry(b *testing.B) {
	bench := workloads.ByName(workloads.CPU2017(), "leela")
	prog := bench.MustProgram()
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		m, err := cpu.NewMachine(cpu.DefaultConfig(), prog)
		if err != nil {
			b.Fatal(err)
		}
		tr := telemetry.NewTrace(io.Discard)
		mt := telemetry.AttachMachine(m, tr, telemetry.DefaultSlotSampleInterval)
		st, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		mt.Finish()
		if err := tr.Close(); err != nil {
			b.Fatal(err)
		}
		insts += st.ArchInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}
