# Build lfservd as a static binary; the module is stdlib-only so the
# build stage needs nothing beyond the Go toolchain.
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY cmd/ cmd/
COPY internal/ internal/
COPY examples/ examples/
RUN CGO_ENABLED=0 go build -o /out/lfservd ./cmd/lfservd

FROM alpine:3.20
# wget ships with busybox; used by the compose healthchecks.
COPY --from=build /out/lfservd /usr/local/bin/lfservd
COPY --from=build /src/examples /opt/loopfrog/examples
EXPOSE 8080
ENTRYPOINT ["lfservd"]
