package compiler

import (
	"testing"

	"loopfrog/internal/isa"
)

const twoLoopSrc = `
var xs: [64]int;
var ys: [64]int;

fn main() -> int {
    @loopfrog
    for i in 0..64 {
        xs[i] = i * 3 + 1;
    }
    var s: int = 0;
    @loopfrog
    for i in 0..64 {
        ys[i] = xs[i] * xs[i];
    }
    for i in 0..64 {
        s = s + ys[i];
    }
    return s;
}`

func TestLoopsReportsSites(t *testing.T) {
	sites, err := Loops(twoLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 2 {
		t.Fatalf("want 2 sites, got %+v", sites)
	}
	for _, s := range sites {
		if !s.Selected || s.Func != "main" || s.Line == 0 {
			t.Fatalf("bad site %+v", s)
		}
	}
}

func TestDeselectMaskChangesImage(t *testing.T) {
	sites, err := Loops(twoLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := CompileOpts("t", twoLoopSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	masked, _, err := CompileOpts("t", twoLoopSrc,
		Options{Deselect: map[int]bool{sites[0].Line: true}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() == masked.Fingerprint() {
		t.Fatal("deselect mask did not change the image")
	}
	// A mask naming no annotated loop is the static default.
	same, _, err := CompileOpts("t", twoLoopSrc,
		Options{Deselect: map[int]bool{9999: true}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != same.Fingerprint() {
		t.Fatal("no-op mask changed the image")
	}
}

func TestHintLineProvenance(t *testing.T) {
	sites, err := Loops(twoLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := CompileOpts("t", twoLoopSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	for _, s := range sites {
		want[s.Line] = false
	}
	for i, in := range prog.Insts {
		if !isa.OpMeta(in.Op).IsHint {
			continue
		}
		line := prog.Lines[i]
		if _, ok := want[line]; !ok {
			t.Fatalf("hint at pc %d has line %d, not an @loopfrog site", i, line)
		}
		want[line] = true
	}
	for line, seen := range want {
		if !seen {
			t.Fatalf("no hint carries line %d", line)
		}
	}
}
