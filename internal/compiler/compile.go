package compiler

import (
	"fmt"
	"math"
	"sort"

	"loopfrog/internal/asm"
)

// Diagnostics collects human-readable compilation notes (e.g. statically
// de-selected @loopfrog loops, §5.1).
type Diagnostics []string

type arrayAlloc struct {
	name   string
	length int64
}

// compilation is cross-function state: the float constant pool and static
// storage for local arrays.
type compilation struct {
	floatConsts map[uint64]string
	floatOrder  []uint64
	localArrays []arrayAlloc
}

func (c *compilation) floatConst(v float64) string {
	bits := math.Float64bits(v)
	if s, ok := c.floatConsts[bits]; ok {
		return s
	}
	s := fmt.Sprintf("fc.%d", len(c.floatOrder))
	c.floatConsts[bits] = s
	c.floatOrder = append(c.floatOrder, bits)
	return s
}

// Compile compiles LoopLang source into a program image. Diagnostics report
// loops that asked for @loopfrog but could not be parallelised.
func Compile(name, src string) (*asm.Program, Diagnostics, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	chk, err := check(file)
	if err != nil {
		return nil, nil, err
	}
	ctx := &compilation{floatConsts: make(map[uint64]string)}

	var funcs []*irFunc
	var diags Diagnostics
	for _, fn := range file.Funcs {
		f, err := lowerFunc(chk, ctx, fn)
		if err != nil {
			return nil, nil, err
		}
		diags = append(diags, f.diag...)
		funcs = append(funcs, f)
	}

	b := asm.NewBuilder(name)
	// Code: main first so the entry label exists; others follow.
	sort.SliceStable(funcs, func(i, j int) bool {
		return funcs[i].name == "main" && funcs[j].name != "main"
	})
	for _, f := range funcs {
		al := allocate(f)
		if err := genFunc(f, al, b); err != nil {
			return nil, nil, err
		}
	}

	// Data: global arrays, static local arrays, float constant pool.
	for _, g := range file.Globals {
		sym := chk.symOf[g]
		name := sym.dataSym
		if name == "" {
			name = "g." + sym.name
		}
		b.Align(8)
		b.Sym(name).Zero(int(sym.length) * 8)
	}
	for _, la := range ctx.localArrays {
		b.Align(8)
		b.Sym(la.name).Zero(int(la.length) * 8)
	}
	for _, bits := range ctx.floatOrder {
		b.Align(8)
		b.Sym(ctx.floatConsts[bits]).Quad(bits)
	}

	prog, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return prog, diags, nil
}

// MustCompile is Compile that panics on error; for tests and statically
// known-good workload sources.
func MustCompile(name, src string) *asm.Program {
	p, _, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// DumpIR returns the IR of every function, for debugging and tests.
func DumpIR(src string) (string, error) {
	file, err := Parse(src)
	if err != nil {
		return "", err
	}
	chk, err := check(file)
	if err != nil {
		return "", err
	}
	ctx := &compilation{floatConsts: make(map[uint64]string)}
	out := ""
	for _, fn := range file.Funcs {
		f, err := lowerFunc(chk, ctx, fn)
		if err != nil {
			return "", err
		}
		out += f.dump()
	}
	return out, nil
}
