package compiler

import (
	"fmt"
	"math"
	"sort"

	"loopfrog/internal/asm"
)

// Diagnostics collects human-readable compilation notes (e.g. statically
// de-selected @loopfrog loops, §5.1).
type Diagnostics []string

type arrayAlloc struct {
	name   string
	length int64
}

// compilation is cross-function state: the float constant pool, static
// storage for local arrays, and the @loopfrog loop sites encountered.
type compilation struct {
	floatConsts map[uint64]string
	floatOrder  []uint64
	localArrays []arrayAlloc
	sites       []LoopSite
}

// Options parameterise one compilation into a hint variant. The zero value
// is the compiler's static default (every legal @loopfrog loop gets hints).
type Options struct {
	// Deselect holds source lines of @loopfrog loops to compile as plain
	// loops — the hint-placement axis of the autotuner's variant space. Lines
	// not naming an annotated loop are ignored (the variant is simply the
	// static default there), so a mask outlives small source edits.
	Deselect map[int]bool
}

// LoopSite is one @loopfrog-annotated loop the compiler saw: the unit of the
// autotuner's per-loop hint mask. Selected reports whether this compilation
// emitted hints for it; when false, Reason says why (static de-selection or
// the variant mask).
type LoopSite struct {
	// Func is the enclosing function; Line the source line of the `for`.
	Func string `json:"func"`
	Line int    `json:"line"`
	// Selected reports whether hints were emitted for the loop.
	Selected bool `json:"selected"`
	// Reason is empty for selected loops; otherwise the de-selection cause.
	Reason string `json:"reason,omitempty"`
}

func (c *compilation) floatConst(v float64) string {
	bits := math.Float64bits(v)
	if s, ok := c.floatConsts[bits]; ok {
		return s
	}
	s := fmt.Sprintf("fc.%d", len(c.floatOrder))
	c.floatConsts[bits] = s
	c.floatOrder = append(c.floatOrder, bits)
	return s
}

// Compile compiles LoopLang source into a program image with the static
// default hint selection. Diagnostics report loops that asked for @loopfrog
// but could not be parallelised.
func Compile(name, src string) (*asm.Program, Diagnostics, error) {
	return CompileOpts(name, src, Options{})
}

// CompileOpts is Compile parameterised by a hint variant.
func CompileOpts(name, src string, opts Options) (*asm.Program, Diagnostics, error) {
	prog, diags, _, err := compile(name, src, opts)
	return prog, diags, err
}

// Loops reports every @loopfrog loop site in src under the static default
// selection, without building an image. The autotuner enumerates its variant
// space from this list.
func Loops(src string) ([]LoopSite, error) {
	_, _, sites, err := compile("loops", src, Options{})
	return sites, err
}

func compile(name, src string, opts Options) (*asm.Program, Diagnostics, []LoopSite, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, nil, nil, err
	}
	chk, err := check(file)
	if err != nil {
		return nil, nil, nil, err
	}
	ctx := &compilation{floatConsts: make(map[uint64]string)}

	var funcs []*irFunc
	var diags Diagnostics
	for _, fn := range file.Funcs {
		f, err := lowerFunc(chk, ctx, opts, fn)
		if err != nil {
			return nil, nil, nil, err
		}
		diags = append(diags, f.diag...)
		funcs = append(funcs, f)
	}

	b := asm.NewBuilder(name)
	// Code: main first so the entry label exists; others follow.
	sort.SliceStable(funcs, func(i, j int) bool {
		return funcs[i].name == "main" && funcs[j].name != "main"
	})
	for _, f := range funcs {
		al := allocate(f)
		if err := genFunc(f, al, b); err != nil {
			return nil, nil, nil, err
		}
	}

	// Data: global arrays, static local arrays, float constant pool.
	for _, g := range file.Globals {
		sym := chk.symOf[g]
		name := sym.dataSym
		if name == "" {
			name = "g." + sym.name
		}
		b.Align(8)
		b.Sym(name).Zero(int(sym.length) * 8)
	}
	for _, la := range ctx.localArrays {
		b.Align(8)
		b.Sym(la.name).Zero(int(la.length) * 8)
	}
	for _, bits := range ctx.floatOrder {
		b.Align(8)
		b.Sym(ctx.floatConsts[bits]).Quad(bits)
	}

	prog, err := b.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	return prog, diags, ctx.sites, nil
}

// MustCompile is Compile that panics on error; for tests and statically
// known-good workload sources.
func MustCompile(name, src string) *asm.Program {
	p, _, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// DumpIR returns the IR of every function, for debugging and tests.
func DumpIR(src string) (string, error) {
	file, err := Parse(src)
	if err != nil {
		return "", err
	}
	chk, err := check(file)
	if err != nil {
		return "", err
	}
	ctx := &compilation{floatConsts: make(map[uint64]string)}
	out := ""
	for _, fn := range file.Funcs {
		f, err := lowerFunc(chk, ctx, Options{}, fn)
		if err != nil {
			return "", err
		}
		out += f.dump()
	}
	return out, nil
}
