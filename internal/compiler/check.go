package compiler

import "fmt"

// The checker resolves names, infers and validates types, and records the
// symbol table used by lowering.

type symbol struct {
	name   string
	typ    Type
	length int64 // array length
	global bool
	// vreg is assigned during lowering for scalars.
	vreg int
	// dataSym is the data-segment symbol for global/local arrays.
	dataSym string
}

type scope struct {
	parent *scope
	syms   map[string]*symbol
}

func (s *scope) lookup(name string) *symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

func (s *scope) define(sym *symbol) bool {
	if _, dup := s.syms[sym.name]; dup {
		return false
	}
	s.syms[sym.name] = sym
	return true
}

type checker struct {
	file    *File
	funcs   map[string]*FuncDecl
	globals *scope
	// symOf maps every resolved VarRef/VarDecl to its symbol.
	symOf map[interface{}]*symbol
	fn    *FuncDecl
	loops int
}

func check(file *File) (*checker, error) {
	c := &checker{
		file:    file,
		funcs:   make(map[string]*FuncDecl),
		globals: &scope{syms: make(map[string]*symbol)},
		symOf:   make(map[interface{}]*symbol),
	}
	for _, fn := range file.Funcs {
		if _, dup := c.funcs[fn.Name]; dup {
			return nil, fmt.Errorf("looplang:%d: duplicate function %q", fn.Line, fn.Name)
		}
		if fn.Name == "int" || fn.Name == "float" {
			return nil, fmt.Errorf("looplang:%d: %q is a builtin", fn.Line, fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	if _, ok := c.funcs["main"]; !ok {
		return nil, fmt.Errorf("looplang: no main function")
	}
	for _, g := range file.Globals {
		if !g.Type.isArray() {
			return nil, fmt.Errorf("looplang:%d: global %q must be an array (scalar globals are not supported)", g.Line, g.Name)
		}
		sym := &symbol{name: g.Name, typ: g.Type, length: g.Len, global: true}
		if !c.globals.define(sym) {
			return nil, fmt.Errorf("looplang:%d: duplicate global %q", g.Line, g.Name)
		}
		c.symOf[g] = sym
		if g.Init != nil {
			return nil, fmt.Errorf("looplang:%d: global initialisers are not supported", g.Line)
		}
	}
	for _, fn := range file.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	sc := &scope{parent: c.globals, syms: make(map[string]*symbol)}
	for i := range fn.Params {
		p := &fn.Params[i]
		sym := &symbol{name: p.Name, typ: p.Type}
		if !sc.define(sym) {
			return fmt.Errorf("looplang:%d: duplicate parameter %q", fn.Line, p.Name)
		}
		c.symOf[p] = sym
	}
	return c.checkBlock(fn.Body, sc)
}

func (c *checker) checkBlock(b *Block, parent *scope) error {
	sc := &scope{parent: parent, syms: make(map[string]*symbol)}
	for _, s := range b.Stmts {
		if err := c.checkStmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt, sc *scope) error {
	switch st := s.(type) {
	case *VarDecl:
		if st.Init != nil {
			it, err := c.checkExpr(st.Init, sc)
			if err != nil {
				return err
			}
			if it != st.Type {
				return fmt.Errorf("looplang:%d: cannot initialise %s with %s", st.Line, st.Type, it)
			}
		}
		sym := &symbol{name: st.Name, typ: st.Type, length: st.Len}
		if !sc.define(sym) {
			return fmt.Errorf("looplang:%d: duplicate variable %q", st.Line, st.Name)
		}
		c.symOf[st] = sym
		return nil
	case *AssignStmt:
		lt, err := c.checkLValue(st.LHS, sc)
		if err != nil {
			return err
		}
		rt, err := c.checkExpr(st.RHS, sc)
		if err != nil {
			return err
		}
		if lt != rt {
			return fmt.Errorf("looplang:%d: cannot assign %s to %s", st.Line, rt, lt)
		}
		return nil
	case *IfStmt:
		ct, err := c.checkExpr(st.Cond, sc)
		if err != nil {
			return err
		}
		if ct != TypeInt {
			return fmt.Errorf("looplang:%d: if condition must be int, got %s", st.Line, ct)
		}
		if err := c.checkBlock(st.Then, sc); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkBlock(st.Else, sc)
		}
		return nil
	case *WhileStmt:
		if st.LoopFrog {
			return fmt.Errorf("looplang:%d: @loopfrog supports only counted for loops", st.Line)
		}
		ct, err := c.checkExpr(st.Cond, sc)
		if err != nil {
			return err
		}
		if ct != TypeInt {
			return fmt.Errorf("looplang:%d: while condition must be int, got %s", st.Line, ct)
		}
		c.loops++
		err = c.checkBlock(st.Body, sc)
		c.loops--
		return err
	case *ForStmt:
		lot, err := c.checkExpr(st.Lo, sc)
		if err != nil {
			return err
		}
		hit, err := c.checkExpr(st.Hi, sc)
		if err != nil {
			return err
		}
		if lot != TypeInt || hit != TypeInt {
			return fmt.Errorf("looplang:%d: for bounds must be int", st.Line)
		}
		inner := &scope{parent: sc, syms: make(map[string]*symbol)}
		ivar := &symbol{name: st.Var, typ: TypeInt}
		inner.define(ivar)
		c.symOf[st] = ivar
		c.loops++
		err = c.checkBlock(st.Body, inner)
		c.loops--
		return err
	case *ReturnStmt:
		if st.Value == nil {
			if c.fn.Ret != TypeVoid {
				return fmt.Errorf("looplang:%d: missing return value", st.Line)
			}
			return nil
		}
		vt, err := c.checkExpr(st.Value, sc)
		if err != nil {
			return err
		}
		if vt != c.fn.Ret {
			return fmt.Errorf("looplang:%d: return type %s, want %s", st.Line, vt, c.fn.Ret)
		}
		return nil
	case *BreakStmt:
		if c.loops == 0 {
			return fmt.Errorf("looplang:%d: break outside loop", st.Line)
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return fmt.Errorf("looplang:%d: continue outside loop", st.Line)
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(st.X, sc)
		return err
	}
	return fmt.Errorf("looplang: unknown statement %T", s)
}

func (c *checker) checkLValue(e Expr, sc *scope) (Type, error) {
	switch x := e.(type) {
	case *VarRef:
		t, err := c.checkExpr(e, sc)
		if err != nil {
			return t, err
		}
		if t.isArray() {
			return t, fmt.Errorf("looplang:%d: cannot assign whole array %q", x.Line, x.Name)
		}
		return t, nil
	case *IndexExpr:
		return c.checkExpr(e, sc)
	}
	return TypeVoid, fmt.Errorf("looplang: expression is not assignable")
}

func (c *checker) checkExpr(e Expr, sc *scope) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		x.t = TypeInt
	case *FloatLit:
		x.t = TypeFloat
	case *VarRef:
		sym := sc.lookup(x.Name)
		if sym == nil {
			return TypeVoid, fmt.Errorf("looplang:%d: undefined variable %q", x.Line, x.Name)
		}
		c.symOf[x] = sym
		x.t = sym.typ
	case *IndexExpr:
		at, err := c.checkExpr(x.Arr, sc)
		if err != nil {
			return TypeVoid, err
		}
		if !at.isArray() {
			return TypeVoid, fmt.Errorf("looplang:%d: indexing non-array %s", x.Line, at)
		}
		it, err := c.checkExpr(x.Idx, sc)
		if err != nil {
			return TypeVoid, err
		}
		if it != TypeInt {
			return TypeVoid, fmt.Errorf("looplang:%d: index must be int", x.Line)
		}
		x.t = at.elem()
	case *UnExpr:
		xt, err := c.checkExpr(x.X, sc)
		if err != nil {
			return TypeVoid, err
		}
		if x.Op == "!" && xt != TypeInt {
			return TypeVoid, fmt.Errorf("looplang:%d: ! wants int", x.Line)
		}
		x.t = xt
	case *BinExpr:
		lt, err := c.checkExpr(x.L, sc)
		if err != nil {
			return TypeVoid, err
		}
		rt, err := c.checkExpr(x.R, sc)
		if err != nil {
			return TypeVoid, err
		}
		if lt != rt || lt.isArray() {
			return TypeVoid, fmt.Errorf("looplang:%d: operand types differ or are not scalar: %s %s %s", x.Line, lt, x.Op, rt)
		}
		switch x.Op {
		case "==", "!=", "<", "<=", ">", ">=":
			x.t = TypeInt
		case "&&", "||":
			if lt != TypeInt {
				return TypeVoid, fmt.Errorf("looplang:%d: logical op wants int", x.Line)
			}
			x.t = TypeInt
		case "%":
			if lt != TypeInt {
				return TypeVoid, fmt.Errorf("looplang:%d: %% wants int", x.Line)
			}
			x.t = TypeInt
		default:
			if lt.isArray() {
				return TypeVoid, fmt.Errorf("looplang:%d: arithmetic on arrays", x.Line)
			}
			x.t = lt
		}
	case *CallExpr:
		switch x.Name {
		case "int", "float":
			at, err := c.checkExpr(x.Args[0], sc)
			if err != nil {
				return TypeVoid, err
			}
			if at.isArray() {
				return TypeVoid, fmt.Errorf("looplang:%d: cannot convert array", x.Line)
			}
			if x.Name == "int" {
				x.t = TypeInt
			} else {
				x.t = TypeFloat
			}
		case "sqrt", "abs", "fmin", "fmax":
			want := 1
			if x.Name == "fmin" || x.Name == "fmax" {
				want = 2
			}
			if len(x.Args) != want {
				return TypeVoid, fmt.Errorf("looplang:%d: %s wants %d args", x.Line, x.Name, want)
			}
			for _, a := range x.Args {
				at, err := c.checkExpr(a, sc)
				if err != nil {
					return TypeVoid, err
				}
				if x.Name == "abs" {
					if at.isArray() {
						return TypeVoid, fmt.Errorf("looplang:%d: abs wants a scalar", x.Line)
					}
				} else if at != TypeFloat {
					return TypeVoid, fmt.Errorf("looplang:%d: %s wants float", x.Line, x.Name)
				}
			}
			if x.Name == "abs" {
				x.t = x.Args[0].typ()
			} else {
				x.t = TypeFloat
			}
		default:
			fn, ok := c.funcs[x.Name]
			if !ok {
				return TypeVoid, fmt.Errorf("looplang:%d: undefined function %q", x.Line, x.Name)
			}
			if len(x.Args) != len(fn.Params) {
				return TypeVoid, fmt.Errorf("looplang:%d: %s wants %d args, got %d", x.Line, x.Name, len(fn.Params), len(x.Args))
			}
			for i, a := range x.Args {
				at, err := c.checkExpr(a, sc)
				if err != nil {
					return TypeVoid, err
				}
				if at != fn.Params[i].Type {
					return TypeVoid, fmt.Errorf("looplang:%d: arg %d of %s: got %s, want %s", x.Line, i+1, x.Name, at, fn.Params[i].Type)
				}
			}
			x.t = fn.Ret
		}
	default:
		return TypeVoid, fmt.Errorf("looplang: unknown expression %T", e)
	}
	return e.typ(), nil
}
