package compiler

import (
	"fmt"
	"strings"

	"loopfrog/internal/isa"
)

// The IR is three-address code over typed virtual registers, organised into
// basic blocks. Opcodes reuse LFISA's: register allocation only has to
// rewrite register operands, and codegen is a straight emission.

type vreg int32

const noReg vreg = -1

type vregKind uint8

const (
	vInt vregKind = iota
	vFloat
)

// irInst is one IR instruction.
type irInst struct {
	op  isa.Opcode
	dst vreg
	a   vreg
	b   vreg
	imm int64
	// sym is a data symbol whose address LI loads (an `la`).
	sym string
	// call names a function for pseudo-op call; callArgs are its argument
	// vregs (moved into ABI registers by codegen).
	call     string
	callArgs []vreg
	// target is a block index for branches/jumps/hints (hints target the
	// block that starts the continuation; its first-instruction address is
	// the region ID).
	target int
	// line is the source line the instruction originates from (0 = unknown).
	// Only hints carry it today: the emitted image then maps every region
	// back to its source loop, which is how the autotuner joins lint regions
	// to per-loop variant choices.
	line int
}

func (i irInst) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", i.op)
	if i.dst != noReg {
		fmt.Fprintf(&b, " v%d,", i.dst)
	}
	if i.a != noReg {
		fmt.Fprintf(&b, " v%d", i.a)
	}
	if i.b != noReg {
		fmt.Fprintf(&b, " v%d", i.b)
	}
	if i.sym != "" {
		fmt.Fprintf(&b, " @%s", i.sym)
	}
	if i.call != "" {
		fmt.Fprintf(&b, " %s()", i.call)
	}
	if i.target >= 0 {
		fmt.Fprintf(&b, " ->b%d", i.target)
	} else if i.imm != 0 {
		fmt.Fprintf(&b, " #%d", i.imm)
	}
	return b.String()
}

// irBlock is a basic block. Control leaves through the trailing branch/jump
// (if any) or falls through to the next block in order.
type irBlock struct {
	insts []irInst
	// label marks blocks that are hint targets (continuations).
	isCont bool
}

// irCall is the pseudo-opcode value used for calls in the IR; it is never
// emitted. It borrows an opcode slot beyond the ISA's range.
const (
	irCall  isa.Opcode = isa.Opcode(isa.NumOpcodes + iota) // call with ABI-reg args
	irRet                                                  // function return
	irJmp                                                  // unconditional jump to target
	irLabel                                                // no-op; kept for readability of dumps
)

func opName(op isa.Opcode) string {
	switch op {
	case irCall:
		return "call"
	case irRet:
		return "ret"
	case irJmp:
		return "jmp"
	case irLabel:
		return "label"
	}
	return op.String()
}

// irFunc is a function in IR form.
type irFunc struct {
	name     string
	params   []Param
	paramVR  []vreg
	ret      Type
	blocks   []*irBlock
	vregKind []vregKind
	// callsOut notes whether the function makes calls (needs ra saved).
	callsOut bool
	// diag collects selection diagnostics (e.g. de-selected @loopfrog loops).
	diag []string
}

func (f *irFunc) newVreg(k vregKind) vreg {
	f.vregKind = append(f.vregKind, k)
	return vreg(len(f.vregKind) - 1)
}

func (f *irFunc) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s:\n", f.name)
	for bi, blk := range f.blocks {
		cont := ""
		if blk.isCont {
			cont = " (continuation)"
		}
		fmt.Fprintf(&b, "b%d:%s\n", bi, cont)
		for _, in := range blk.insts {
			name := opName(in.op)
			fmt.Fprintf(&b, "    %-8s", name)
			if in.dst != noReg {
				fmt.Fprintf(&b, " v%d", in.dst)
			}
			if in.a != noReg {
				fmt.Fprintf(&b, " v%d", in.a)
			}
			if in.b != noReg {
				fmt.Fprintf(&b, " v%d", in.b)
			}
			if in.sym != "" {
				fmt.Fprintf(&b, " @%s", in.sym)
			}
			if in.call != "" {
				fmt.Fprintf(&b, " %s", in.call)
			}
			if in.target >= 0 {
				fmt.Fprintf(&b, " ->b%d", in.target)
			} else if in.imm != 0 {
				fmt.Fprintf(&b, " #%d", in.imm)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// terminator kinds for successor computation.
func (i irInst) isTerm() bool {
	if i.op == irJmp || i.op == irRet {
		return true
	}
	m := isa.OpMeta(i.op)
	return m.IsBranch
}

// succs returns the successor block indices of block bi.
func (f *irFunc) succs(bi int) []int {
	blk := f.blocks[bi]
	var out []int
	fall := true
	for _, in := range blk.insts {
		switch {
		case in.op == irJmp:
			out = append(out, in.target)
			fall = false
		case in.op == irRet:
			fall = false
		case isa.OpMeta(in.op).IsBranch:
			out = append(out, in.target)
		}
	}
	if fall && bi+1 < len(f.blocks) {
		out = append(out, bi+1)
	}
	return out
}
