package compiler

import (
	"fmt"
	"strconv"
)

type parser struct {
	toks []token
	pos  int
}

// Parse parses LoopLang source into a File.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) errf(format string, args ...interface{}) error {
	t := p.cur()
	return fmt.Errorf("looplang:%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, p.errf("expected %q, found %q", want, t.text)
	}
	p.pos++
	return t, nil
}

func (p *parser) file() (*File, error) {
	f := &File{}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokKeyword, "fn"):
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		case p.at(tokKeyword, "var"):
			v, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			v.global = true
			f.Globals = append(f.Globals, v)
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected declaration, found %q", p.cur().text)
		}
	}
	return f, nil
}

func (p *parser) typeName() (Type, error) {
	if p.accept(tokPunct, "[") {
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return TypeVoid, err
		}
		switch {
		case p.accept(tokKeyword, "int"):
			return TypeIntArray, nil
		case p.accept(tokKeyword, "float"):
			return TypeFloatArray, nil
		}
		return TypeVoid, p.errf("expected element type")
	}
	switch {
	case p.accept(tokKeyword, "int"):
		return TypeInt, nil
	case p.accept(tokKeyword, "float"):
		return TypeFloat, nil
	}
	return TypeVoid, p.errf("expected type, found %q", p.cur().text)
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	line := p.cur().line
	p.pos++ // fn
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.text, Line: line}
	for !p.at(tokPunct, ")") {
		if len(fn.Params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		pt, err := p.typeName()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Name: pn.text, Type: pt})
	}
	p.pos++ // )
	if p.accept(tokPunct, "->") {
		rt, err := p.typeName()
		if err != nil {
			return nil, err
		}
		fn.Ret = rt
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// varDecl parses "var name: type" or "var name: [N]type" or
// "var name: type = expr" (the leading "var" is consumed here).
func (p *parser) varDecl() (*VarDecl, error) {
	line := p.cur().line
	p.pos++ // var
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return nil, err
	}
	v := &VarDecl{Name: name.text, Line: line}
	if p.accept(tokPunct, "[") {
		n, err := p.expect(tokInt, "")
		if err != nil {
			return nil, err
		}
		length, err := strconv.ParseInt(n.text, 0, 64)
		if err != nil || length <= 0 {
			return nil, p.errf("bad array length %q", n.text)
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		switch {
		case p.accept(tokKeyword, "int"):
			v.Type = TypeIntArray
		case p.accept(tokKeyword, "float"):
			v.Type = TypeFloatArray
		default:
			return nil, p.errf("expected array element type")
		}
		v.Len = length
		return v, nil
	}
	t, err := p.typeName()
	if err != nil {
		return nil, err
	}
	if t.isArray() {
		return nil, p.errf("array variables need a length: var %s: [N]T", v.Name)
	}
	v.Type = t
	if p.accept(tokPunct, "=") {
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		v.Init = init
	}
	return v, nil
}

func (p *parser) block() (*Block, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.at(tokPunct, "}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // }
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	line := p.cur().line
	switch {
	case p.at(tokKeyword, "var"):
		v, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return v, nil
	case p.at(tokPunct, "@"):
		p.pos++
		ann, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if ann.text != "loopfrog" {
			return nil, p.errf("unknown annotation @%s", ann.text)
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		switch loop := s.(type) {
		case *ForStmt:
			loop.LoopFrog = true
		case *WhileStmt:
			loop.LoopFrog = true
		default:
			return nil, p.errf("@loopfrog must annotate a loop")
		}
		return s, nil
	case p.at(tokKeyword, "if"):
		p.pos++
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: line}
		if p.accept(tokKeyword, "else") {
			if p.at(tokKeyword, "if") {
				inner, err := p.stmt()
				if err != nil {
					return nil, err
				}
				st.Else = &Block{Stmts: []Stmt{inner}}
			} else {
				els, err := p.block()
				if err != nil {
					return nil, err
				}
				st.Else = els
			}
		}
		return st, nil
	case p.at(tokKeyword, "while"):
		p.pos++
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
	case p.at(tokKeyword, "for"):
		p.pos++
		v, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "in"); err != nil {
			return nil, err
		}
		lo, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ".."); err != nil {
			return nil, err
		}
		hi, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Var: v.text, Lo: lo, Hi: hi, Body: body, Line: line}, nil
	case p.at(tokKeyword, "return"):
		p.pos++
		st := &ReturnStmt{Line: line}
		if !p.at(tokPunct, ";") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return st, nil
	case p.at(tokKeyword, "break"):
		p.pos++
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: line}, nil
	case p.at(tokKeyword, "continue"):
		p.pos++
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: line}, nil
	default:
		// Assignment or expression statement.
		lhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.accept(tokPunct, "=") {
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &AssignStmt{LHS: lhs, RHS: rhs, Line: line}, nil
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: lhs, Line: line}, nil
	}
}

// Precedence climbing.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: t.text, L: lhs, R: rhs, Line: t.line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "[") {
		line := p.cur().line
		p.pos++
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		x = &IndexExpr{Arr: x, Idx: idx, Line: line}
	}
	return x, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.pos++
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			// Very large hex constants parse as unsigned.
			u, uerr := strconv.ParseUint(t.text, 0, 64)
			if uerr != nil {
				return nil, p.errf("bad integer literal %q", t.text)
			}
			v = int64(u)
		}
		return &IntLit{Value: v}, nil
	case t.kind == tokFloat:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float literal %q", t.text)
		}
		return &FloatLit{Value: v}, nil
	case t.kind == tokKeyword && (t.text == "int" || t.text == "float"):
		// Conversion builtin: int(x), float(x).
		p.pos++
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &CallExpr{Name: t.text, Args: []Expr{arg}, Line: t.line}, nil
	case t.kind == tokIdent:
		if p.peek().kind == tokPunct && p.peek().text == "(" {
			p.pos += 2
			call := &CallExpr{Name: t.text, Line: t.line}
			for !p.at(tokPunct, ")") {
				if len(call.Args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.pos++
			return call, nil
		}
		p.pos++
		return &VarRef{Name: t.text, Line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		p.pos++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("expected expression, found %q", t.text)
}
