package compiler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"loopfrog/internal/isa"
	"loopfrog/internal/ref"
)

// Random-expression property test: generate integer expressions, evaluate
// them both with a direct Go evaluator and by compiling + running the
// reference interpreter; the results must agree exactly (two's-complement
// wrap-around semantics, RISC-V-style division corner cases).

type exprGen struct {
	rng  *rand.Rand
	vars []string
	vals map[string]int64
}

func (g *exprGen) gen(depth int) (string, int64) {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			v := int64(g.rng.Intn(2000) - 1000)
			if v < 0 {
				// LoopLang has no negative literals; spell it as a unary.
				return fmt.Sprintf("(0 - %d)", -v), v
			}
			return fmt.Sprintf("%d", v), v
		default:
			name := g.vars[g.rng.Intn(len(g.vars))]
			return name, g.vals[name]
		}
	}
	l, lv := g.gen(depth - 1)
	r, rv := g.gen(depth - 1)
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r), lv + rv
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r), lv - rv
	case 2:
		return fmt.Sprintf("(%s * %s)", l, r), lv * rv
	case 3:
		if rv == 0 {
			return fmt.Sprintf("(%s + %s)", l, r), lv + rv
		}
		return fmt.Sprintf("(%s / %s)", l, r), lv / rv
	case 4:
		if rv == 0 {
			return fmt.Sprintf("(%s - %s)", l, r), lv - rv
		}
		return fmt.Sprintf("(%s %% %s)", l, r), lv % rv
	default:
		var b int64
		if lv < rv {
			b = 1
		}
		return fmt.Sprintf("(%s < %s)", l, r), b
	}
}

func TestRandomExpressionsMatchGoSemantics(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		g := &exprGen{rng: rng, vars: []string{"a", "b", "c"}, vals: map[string]int64{}}
		var decls strings.Builder
		for _, v := range g.vars {
			val := int64(rng.Intn(400) - 200)
			g.vals[v] = val
			if val < 0 {
				fmt.Fprintf(&decls, "    var %s: int = 0 - %d;\n", v, -val)
			} else {
				fmt.Fprintf(&decls, "    var %s: int = %d;\n", v, val)
			}
		}
		expr, want := g.gen(4)
		src := fmt.Sprintf("fn main() -> int {\n%s    return %s;\n}", decls.String(), expr)
		prog, _, err := Compile("prop", src)
		if err != nil {
			t.Fatalf("trial %d: compile %q: %v", trial, expr, err)
		}
		res, err := ref.Run(prog, ref.Options{MaxSteps: 1_000_000})
		if err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		if got := int64(res.Regs[isa.X(10)]); got != want {
			t.Fatalf("trial %d: %s = %d, want %d\nsource:\n%s", trial, expr, got, want, src)
		}
	}
}

// TestRandomLoopsMatchGoSemantics generates small loop nests with array
// updates and compares the compiled result against a Go re-implementation.
func TestRandomLoopsMatchGoSemantics(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		n := 8 + rng.Intn(56)
		mulA := int64(1 + rng.Intn(9))
		addB := int64(rng.Intn(50))
		modM := int64(3 + rng.Intn(97))
		annotate := ""
		if rng.Intn(2) == 0 {
			annotate = "@loopfrog\n    "
		}
		src := fmt.Sprintf(`
var a: [%[1]d]int;
fn main() -> int {
    for i in 0..%[1]d {
        a[i] = i * %[2]d + %[3]d;
    }
    %[5]sfor i in 0..%[1]d {
        var t: int = a[i] %% %[4]d;
        a[i] = t * t;
    }
    var s: int = 0;
    for i in 0..%[1]d {
        s = s + a[i];
    }
    return s;
}`, n, mulA, addB, modM, annotate)
		var want int64
		for i := int64(0); i < int64(n); i++ {
			t0 := (i*mulA + addB) % modM
			want += t0 * t0
		}
		prog, _, err := Compile("loopprop", src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := ref.Run(prog, ref.Options{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := int64(res.Regs[isa.X(10)]); got != want {
			t.Fatalf("trial %d: sum = %d, want %d\n%s", trial, got, want, src)
		}
	}
}
