package compiler

import (
	"fmt"

	"loopfrog/internal/isa"
)

// Lowering converts checked AST functions into IR, inserting LoopFrog hints
// for loops annotated @loopfrog (§5.3): every exit edge gets a sync, and
// detach/reattach are placed around the largest contiguous run of statements
// whose register (scalar) writes are all loop-body-local and never consumed
// by later statements of the iteration — the "no register LCD out of the
// body" constraint. Loops where no such run exists are compiled without
// hints and reported in the diagnostics (static de-selection, §5.1).

type labelID int

type loopCtx struct {
	breakLbl    labelID
	continueLbl labelID
}

type lowerer struct {
	c      *checker
	ctx    *compilation
	opts   Options
	f      *irFunc
	blocks []*irBlock
	labels map[labelID]int // labelID -> block index
	nextLb labelID
	loops  []loopCtx
	seq    int
}

func lowerFunc(c *checker, ctx *compilation, opts Options, fn *FuncDecl) (*irFunc, error) {
	lo := &lowerer{
		c:      c,
		ctx:    ctx,
		opts:   opts,
		f:      &irFunc{name: fn.Name, params: fn.Params, ret: fn.Ret},
		labels: make(map[labelID]int),
	}
	lo.newBlock()
	// Bind parameters to fresh vregs; codegen moves the ABI registers in.
	for i := range fn.Params {
		p := &fn.Params[i]
		k := vInt
		if p.Type == TypeFloat {
			k = vFloat
		}
		v := lo.f.newVreg(k)
		lo.f.paramVR = append(lo.f.paramVR, v)
		c.symOf[p].vreg = int(v)
		c.symOf[p].dataSym = ""
	}
	if err := lo.block(fn.Body); err != nil {
		return nil, err
	}
	// Implicit return at the end.
	lo.emit(irInst{op: irRet, dst: noReg, a: noReg, b: noReg, target: -1})
	lo.f.blocks = lo.blocks
	// Resolve label targets to block indices.
	for _, blk := range lo.f.blocks {
		for i := range blk.insts {
			in := &blk.insts[i]
			if in.target >= 0 && (in.op == irJmp || isa.OpMeta(in.op).IsBranch || isa.OpMeta(in.op).IsHint) {
				bi, ok := lo.labels[labelID(in.target)]
				if !ok {
					return nil, fmt.Errorf("compiler: unresolved label %d in %s", in.target, fn.Name)
				}
				in.target = bi
			}
		}
	}
	return lo.f, nil
}

func (lo *lowerer) newBlock() int {
	lo.blocks = append(lo.blocks, &irBlock{})
	return len(lo.blocks) - 1
}

func (lo *lowerer) cur() *irBlock { return lo.blocks[len(lo.blocks)-1] }

func (lo *lowerer) newLabel() labelID {
	lo.nextLb++
	return lo.nextLb
}

// bindLabel starts a new block bound to lb.
func (lo *lowerer) bindLabel(lb labelID) int {
	bi := lo.newBlock()
	lo.labels[lb] = bi
	return bi
}

func (lo *lowerer) emit(in irInst) {
	lo.cur().insts = append(lo.cur().insts, in)
}

func (lo *lowerer) op3(op isa.Opcode, dst, a, b vreg) {
	lo.emit(irInst{op: op, dst: dst, a: a, b: b, target: -1})
}

func (lo *lowerer) opImm(op isa.Opcode, dst, a vreg, imm int64) {
	lo.emit(irInst{op: op, dst: dst, a: a, b: noReg, imm: imm, target: -1})
}

func (lo *lowerer) li(dst vreg, v int64) {
	lo.emit(irInst{op: isa.LI, dst: dst, a: noReg, b: noReg, imm: v, target: -1})
}

func (lo *lowerer) la(dst vreg, sym string) {
	lo.emit(irInst{op: isa.LI, dst: dst, a: noReg, b: noReg, sym: sym, target: -1})
}

func (lo *lowerer) jump(lb labelID) {
	lo.emit(irInst{op: irJmp, dst: noReg, a: noReg, b: noReg, target: int(lb)})
	lo.newBlock()
}

func (lo *lowerer) branch(op isa.Opcode, a, b vreg, lb labelID) {
	lo.emit(irInst{op: op, dst: noReg, a: a, b: b, target: int(lb)})
	lo.newBlock()
}

// hint emits a LoopFrog hint carrying the source line of the loop it
// belongs to, so the assembled image can map the region back to the loop.
func (lo *lowerer) hint(op isa.Opcode, lb labelID, line int) {
	lo.emit(irInst{op: op, dst: noReg, a: noReg, b: noReg, target: int(lb), line: line})
}

func (lo *lowerer) block(b *Block) error {
	for _, s := range b.Stmts {
		if err := lo.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) stmt(s Stmt) error {
	switch st := s.(type) {
	case *VarDecl:
		sym := lo.c.symOf[st]
		if sym.typ.isArray() {
			// Local arrays get static storage (documented: LoopLang arrays
			// are not reentrant).
			lo.seq++
			name := fmt.Sprintf("%s.%s.%d", lo.f.name, sym.name, lo.seq)
			lo.ctx.localArrays = append(lo.ctx.localArrays, arrayAlloc{name: name, length: sym.length})
			sym.dataSym = name
			return nil
		}
		v := lo.f.newVreg(kindOf(sym.typ))
		sym.vreg = int(v)
		if st.Init != nil {
			iv, err := lo.expr(st.Init)
			if err != nil {
				return err
			}
			lo.move(sym.typ, v, iv)
		} else if sym.typ == TypeFloat {
			lo.emit(irInst{op: isa.FCVTIF, dst: v, a: lo.zero(), b: noReg, target: -1})
		} else {
			lo.li(v, 0)
		}
		return nil
	case *AssignStmt:
		rv, err := lo.expr(st.RHS)
		if err != nil {
			return err
		}
		switch lhs := st.LHS.(type) {
		case *VarRef:
			sym := lo.c.symOf[lhs]
			lo.move(sym.typ, vreg(sym.vreg), rv)
			return nil
		case *IndexExpr:
			addr, err := lo.elemAddr(lhs)
			if err != nil {
				return err
			}
			op := isa.SD
			if lhs.typ() == TypeFloat {
				op = isa.FSD
			}
			lo.emit(irInst{op: op, dst: noReg, a: addr, b: rv, target: -1})
			return nil
		}
		return fmt.Errorf("compiler: bad assignment target")
	case *IfStmt:
		cond, err := lo.expr(st.Cond)
		if err != nil {
			return err
		}
		elseLbl, endLbl := lo.newLabel(), lo.newLabel()
		lo.branch(isa.BEQ, cond, lo.zero(), elseLbl)
		if err := lo.block(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			lo.jump(endLbl)
			lo.bindLabel(elseLbl)
			if err := lo.block(st.Else); err != nil {
				return err
			}
			lo.bindLabel(endLbl)
		} else {
			lo.bindLabel(elseLbl)
		}
		return nil
	case *WhileStmt:
		headLbl, exitLbl := lo.newLabel(), lo.newLabel()
		lo.jumpFallthrough(headLbl)
		cond, err := lo.expr(st.Cond)
		if err != nil {
			return err
		}
		lo.branch(isa.BEQ, cond, lo.zero(), exitLbl)
		lo.loops = append(lo.loops, loopCtx{breakLbl: exitLbl, continueLbl: headLbl})
		if err := lo.block(st.Body); err != nil {
			return err
		}
		lo.loops = lo.loops[:len(lo.loops)-1]
		lo.jump(headLbl)
		lo.bindLabel(exitLbl)
		return nil
	case *ForStmt:
		return lo.forStmt(st)
	case *ReturnStmt:
		in := irInst{op: irRet, dst: noReg, a: noReg, b: noReg, target: -1}
		if st.Value != nil {
			v, err := lo.expr(st.Value)
			if err != nil {
				return err
			}
			in.a = v
			if st.Value.typ() == TypeFloat {
				in.imm = 1 // float return marker for codegen
			}
		}
		lo.emit(in)
		lo.newBlock()
		return nil
	case *BreakStmt:
		lo.jump(lo.loops[len(lo.loops)-1].breakLbl)
		return nil
	case *ContinueStmt:
		lo.jump(lo.loops[len(lo.loops)-1].continueLbl)
		return nil
	case *ExprStmt:
		_, err := lo.expr(st.X)
		return err
	}
	return fmt.Errorf("compiler: unknown statement %T", s)
}

// jumpFallthrough binds lb at the current position (starting a new block so
// back edges have a target).
func (lo *lowerer) jumpFallthrough(lb labelID) {
	lo.bindLabel(lb)
}

// forStmt lowers a counted loop, with LoopFrog hints if selected.
func (lo *lowerer) forStmt(st *ForStmt) error {
	ivSym := lo.c.symOf[st]
	iv := lo.f.newVreg(vInt)
	ivSym.vreg = int(iv)
	loV, err := lo.expr(st.Lo)
	if err != nil {
		return err
	}
	lo.move(TypeInt, iv, loV)
	hiV, err := lo.expr(st.Hi)
	if err != nil {
		return err
	}
	hi := lo.f.newVreg(vInt) // freeze the bound
	lo.move(TypeInt, hi, hiV)

	headLbl, exitLbl := lo.newLabel(), lo.newLabel()

	if st.LoopFrog && lo.opts.Deselect[st.Line] {
		// Variant deselection: the loop keeps its annotation in the source but
		// this compilation treats it as a plain loop. Recorded so variant
		// reports can distinguish "masked off" from "statically rejected".
		lo.ctx.sites = append(lo.ctx.sites, LoopSite{
			Func: lo.f.name, Line: st.Line, Selected: false,
			Reason: "deselected by variant mask",
		})
		st.LoopFrog = false // each compilation re-parses, so this is variant-local
		return lo.forStmt(st)
	}

	if !st.LoopFrog {
		contLbl := lo.newLabel()
		lo.jumpFallthrough(headLbl)
		lo.branch(isa.BGE, iv, hi, exitLbl)
		lo.loops = append(lo.loops, loopCtx{breakLbl: exitLbl, continueLbl: contLbl})
		if err := lo.block(st.Body); err != nil {
			return err
		}
		lo.loops = lo.loops[:len(lo.loops)-1]
		lo.bindLabel(contLbl)
		lo.opImm(isa.ADDI, iv, iv, 1)
		lo.jump(headLbl)
		lo.bindLabel(exitLbl)
		return nil
	}

	// LoopFrog-selected loop: find the parallel body run (§5.3).
	run, diag := lo.selectBody(st)
	if run.len() == 0 {
		lo.f.diag = append(lo.f.diag,
			fmt.Sprintf("%s:%d: loop not parallelised: %s", lo.f.name, st.Line, diag))
		lo.ctx.sites = append(lo.ctx.sites, LoopSite{
			Func: lo.f.name, Line: st.Line, Selected: false, Reason: diag,
		})
		st.LoopFrog = false // static de-selection: compile as a plain loop
		return lo.forStmt(st)
	}
	lo.ctx.sites = append(lo.ctx.sites, LoopSite{
		Func: lo.f.name, Line: st.Line, Selected: true,
	})

	contLbl := lo.newLabel()     // continuation block: the region ID
	reattachLbl := lo.newLabel() // continue target inside the body
	syncLbl := lo.newLabel()     // every loop exit goes through the sync

	lo.jumpFallthrough(headLbl)
	lo.branch(isa.BGE, iv, hi, syncLbl)
	// Header: statements before the parallel run.
	lo.loops = append(lo.loops, loopCtx{breakLbl: syncLbl, continueLbl: reattachLbl})
	for _, s := range st.Body.Stmts[:run.start] {
		if err := lo.stmt(s); err != nil {
			return err
		}
	}
	lo.hint(isa.DETACH, contLbl, st.Line)
	// Body: the parallel run.
	for _, s := range st.Body.Stmts[run.start:run.end] {
		if err := lo.stmt(s); err != nil {
			return err
		}
	}
	lo.bindLabel(reattachLbl)
	lo.hint(isa.REATTACH, contLbl, st.Line)
	// Continuation: trailing statements, IV update, backedge.
	cb := lo.bindLabel(contLbl)
	lo.blocks[cb].isCont = true
	for _, s := range st.Body.Stmts[run.end:] {
		if err := lo.stmt(s); err != nil {
			return err
		}
	}
	lo.loops = lo.loops[:len(lo.loops)-1]
	lo.opImm(isa.ADDI, iv, iv, 1)
	lo.jump(headLbl)
	lo.bindLabel(syncLbl)
	lo.hint(isa.SYNC, contLbl, st.Line)
	lo.bindLabel(exitLbl)
	return nil
}

type bodyRun struct{ start, end int }

func (r bodyRun) len() int { return r.end - r.start }

// selectBody finds the largest contiguous run of top-level statements whose
// scalar writes are all body-local and never read by later statements of the
// iteration. Returns an empty run (with a reason) when the loop cannot be
// parallelised.
func (lo *lowerer) selectBody(st *ForStmt) (bodyRun, string) {
	stmts := st.Body.Stmts
	n := len(stmts)
	if n == 0 {
		return bodyRun{}, "empty body"
	}
	// Collect body-local declarations and per-statement scalar access sets.
	locals := make(map[*symbol]bool)
	reads := make([]map[*symbol]bool, n)
	writes := make([]map[*symbol]bool, n)
	hasReturn, hasContinue := false, false
	for i, s := range stmts {
		reads[i] = make(map[*symbol]bool)
		writes[i] = make(map[*symbol]bool)
		lo.scanStmt(s, reads[i], writes[i], locals, &hasReturn, &hasContinue)
	}
	if hasReturn {
		return bodyRun{}, "loop body contains return"
	}
	// spine[i]: statement writes a scalar that outlives the iteration.
	spine := make([]bool, n)
	for i := range stmts {
		for w := range writes[i] {
			if !locals[w] {
				spine[i] = true
			}
		}
	}
	best := bodyRun{}
	for s := 0; s < n; s++ {
		if spine[s] {
			continue
		}
		for e := s + 1; e <= n; e++ {
			if e-1 >= s && spine[e-1] {
				break
			}
			// Validity: no later statement reads a scalar written in [s,e).
			written := make(map[*symbol]bool)
			for k := s; k < e; k++ {
				for w := range writes[k] {
					written[w] = true
				}
			}
			ok := true
			for k := e; k < n && ok; k++ {
				for r := range reads[k] {
					if written[r] {
						ok = false
						break
					}
				}
			}
			// A continue jumps to the reattach, skipping any trailing
			// continuation statements; with continues present only runs
			// ending at the last statement are semantically safe.
			if hasContinue && e != n {
				continue
			}
			if ok && e-s > best.len() {
				best = bodyRun{start: s, end: e}
			}
		}
	}
	if best.len() == 0 {
		return best, "every statement updates a loop-carried or live-out scalar"
	}
	return best, ""
}

// scanStmt accumulates the scalar reads/writes of a statement subtree.
func (lo *lowerer) scanStmt(s Stmt, reads, writes map[*symbol]bool, locals map[*symbol]bool, hasReturn, hasContinue *bool) {
	switch st := s.(type) {
	case *VarDecl:
		sym := lo.c.symOf[st]
		locals[sym] = true
		if st.Init != nil {
			lo.scanExpr(st.Init, reads)
		}
		if !sym.typ.isArray() {
			writes[sym] = true
		}
	case *AssignStmt:
		lo.scanExpr(st.RHS, reads)
		switch lhs := st.LHS.(type) {
		case *VarRef:
			writes[lo.c.symOf[lhs]] = true
		case *IndexExpr:
			lo.scanExpr(lhs.Idx, reads)
			lo.scanExpr(lhs.Arr, reads)
		}
	case *IfStmt:
		lo.scanExpr(st.Cond, reads)
		for _, inner := range st.Then.Stmts {
			lo.scanStmt(inner, reads, writes, locals, hasReturn, hasContinue)
		}
		if st.Else != nil {
			for _, inner := range st.Else.Stmts {
				lo.scanStmt(inner, reads, writes, locals, hasReturn, hasContinue)
			}
		}
	case *WhileStmt:
		lo.scanExpr(st.Cond, reads)
		for _, inner := range st.Body.Stmts {
			lo.scanStmt(inner, reads, writes, locals, hasReturn, hasContinue)
		}
	case *ForStmt:
		lo.scanExpr(st.Lo, reads)
		lo.scanExpr(st.Hi, reads)
		locals[lo.c.symOf[st]] = true
		for _, inner := range st.Body.Stmts {
			lo.scanStmt(inner, reads, writes, locals, hasReturn, hasContinue)
		}
	case *ReturnStmt:
		*hasReturn = true
		if st.Value != nil {
			lo.scanExpr(st.Value, reads)
		}
	case *ExprStmt:
		lo.scanExpr(st.X, reads)
	case *ContinueStmt:
		*hasContinue = true
	case *BreakStmt:
	}
}

func (lo *lowerer) scanExpr(e Expr, reads map[*symbol]bool) {
	switch x := e.(type) {
	case *VarRef:
		sym := lo.c.symOf[x]
		if !sym.typ.isArray() {
			reads[sym] = true
		}
	case *IndexExpr:
		lo.scanExpr(x.Arr, reads)
		lo.scanExpr(x.Idx, reads)
	case *BinExpr:
		lo.scanExpr(x.L, reads)
		lo.scanExpr(x.R, reads)
	case *UnExpr:
		lo.scanExpr(x.X, reads)
	case *CallExpr:
		for _, a := range x.Args {
			lo.scanExpr(a, reads)
		}
	}
}

func kindOf(t Type) vregKind {
	if t == TypeFloat {
		return vFloat
	}
	return vInt
}

// zero returns a vreg holding integer zero.
func (lo *lowerer) zero() vreg {
	v := lo.f.newVreg(vInt)
	lo.li(v, 0)
	return v
}

func (lo *lowerer) move(t Type, dst, src vreg) {
	if dst == src {
		return
	}
	if t == TypeFloat {
		lo.op3(isa.FMOV, dst, src, noReg)
	} else {
		lo.opImm(isa.ADDI, dst, src, 0)
	}
}

// elemAddr computes the byte address of arr[idx].
func (lo *lowerer) elemAddr(x *IndexExpr) (vreg, error) {
	base, err := lo.arrayBase(x.Arr)
	if err != nil {
		return noReg, err
	}
	idx, err := lo.expr(x.Idx)
	if err != nil {
		return noReg, err
	}
	off := lo.f.newVreg(vInt)
	lo.opImm(isa.SLLI, off, idx, 3)
	addr := lo.f.newVreg(vInt)
	lo.op3(isa.ADD, addr, base, off)
	return addr, nil
}

// arrayBase returns a vreg with the base address of an array expression.
func (lo *lowerer) arrayBase(e Expr) (vreg, error) {
	ref, ok := e.(*VarRef)
	if !ok {
		return noReg, fmt.Errorf("compiler: arrays are referenced by name")
	}
	sym := lo.c.symOf[ref]
	if sym.dataSym == "" && !sym.global && sym.length == 0 {
		// Array parameter: its base address lives in the param vreg.
		return vreg(sym.vreg), nil
	}
	name := sym.dataSym
	if name == "" {
		name = "g." + sym.name
		sym.dataSym = name
	}
	v := lo.f.newVreg(vInt)
	lo.la(v, name)
	return v, nil
}

func (lo *lowerer) expr(e Expr) (vreg, error) {
	switch x := e.(type) {
	case *IntLit:
		v := lo.f.newVreg(vInt)
		lo.li(v, x.Value)
		return v, nil
	case *FloatLit:
		// Float literals come from a constant pool in the data segment.
		sym := lo.ctx.floatConst(x.Value)
		addr := lo.f.newVreg(vInt)
		lo.la(addr, sym)
		v := lo.f.newVreg(vFloat)
		lo.emit(irInst{op: isa.FLD, dst: v, a: addr, b: noReg, target: -1})
		return v, nil
	case *VarRef:
		sym := lo.c.symOf[x]
		if sym.typ.isArray() {
			return lo.arrayBase(x)
		}
		return vreg(sym.vreg), nil
	case *IndexExpr:
		addr, err := lo.elemAddr(x)
		if err != nil {
			return noReg, err
		}
		if x.typ() == TypeFloat {
			v := lo.f.newVreg(vFloat)
			lo.emit(irInst{op: isa.FLD, dst: v, a: addr, b: noReg, target: -1})
			return v, nil
		}
		v := lo.f.newVreg(vInt)
		lo.emit(irInst{op: isa.LD, dst: v, a: addr, b: noReg, target: -1})
		return v, nil
	case *UnExpr:
		xv, err := lo.expr(x.X)
		if err != nil {
			return noReg, err
		}
		switch {
		case x.Op == "-" && x.typ() == TypeFloat:
			v := lo.f.newVreg(vFloat)
			lo.op3(isa.FNEG, v, xv, noReg)
			return v, nil
		case x.Op == "-":
			v := lo.f.newVreg(vInt)
			lo.op3(isa.SUB, v, lo.zero(), xv)
			return v, nil
		default: // !x: 1 if x == 0
			nz := lo.f.newVreg(vInt)
			lo.op3(isa.SLTU, nz, lo.zero(), xv)
			v := lo.f.newVreg(vInt)
			lo.opImm(isa.XORI, v, nz, 1)
			return v, nil
		}
	case *BinExpr:
		return lo.binExpr(x)
	case *CallExpr:
		return lo.call(x)
	}
	return noReg, fmt.Errorf("compiler: unknown expression %T", e)
}

func (lo *lowerer) binExpr(x *BinExpr) (vreg, error) {
	l, err := lo.expr(x.L)
	if err != nil {
		return noReg, err
	}
	r, err := lo.expr(x.R)
	if err != nil {
		return noReg, err
	}
	ft := x.L.typ() == TypeFloat
	out := func(k vregKind) vreg { return lo.f.newVreg(k) }
	switch x.Op {
	case "+", "-", "*", "/":
		if ft {
			op := map[string]isa.Opcode{"+": isa.FADD, "-": isa.FSUB, "*": isa.FMUL, "/": isa.FDIV}[x.Op]
			v := out(vFloat)
			lo.op3(op, v, l, r)
			return v, nil
		}
		op := map[string]isa.Opcode{"+": isa.ADD, "-": isa.SUB, "*": isa.MUL, "/": isa.DIV}[x.Op]
		v := out(vInt)
		lo.op3(op, v, l, r)
		return v, nil
	case "%":
		v := out(vInt)
		lo.op3(isa.REM, v, l, r)
		return v, nil
	case "&&":
		// Strict evaluation: (l != 0) & (r != 0).
		ln := out(vInt)
		lo.op3(isa.SLTU, ln, lo.zero(), l)
		rn := out(vInt)
		lo.op3(isa.SLTU, rn, lo.zero(), r)
		v := out(vInt)
		lo.op3(isa.AND, v, ln, rn)
		return v, nil
	case "||":
		t := out(vInt)
		lo.op3(isa.OR, t, l, r)
		v := out(vInt)
		lo.op3(isa.SLTU, v, lo.zero(), t)
		return v, nil
	case "<", ">", "<=", ">=", "==", "!=":
		if ft {
			return lo.floatCmp(x.Op, l, r)
		}
		return lo.intCmp(x.Op, l, r)
	}
	return noReg, fmt.Errorf("compiler: unknown operator %q", x.Op)
}

func (lo *lowerer) intCmp(op string, l, r vreg) (vreg, error) {
	v := lo.f.newVreg(vInt)
	switch op {
	case "<":
		lo.op3(isa.SLT, v, l, r)
	case ">":
		lo.op3(isa.SLT, v, r, l)
	case "<=":
		lo.op3(isa.SLT, v, r, l)
		lo.opImm(isa.XORI, v, v, 1)
	case ">=":
		lo.op3(isa.SLT, v, l, r)
		lo.opImm(isa.XORI, v, v, 1)
	case "==":
		t := lo.f.newVreg(vInt)
		lo.op3(isa.XOR, t, l, r)
		lo.op3(isa.SLTU, v, lo.zero(), t)
		lo.opImm(isa.XORI, v, v, 1)
	case "!=":
		t := lo.f.newVreg(vInt)
		lo.op3(isa.XOR, t, l, r)
		lo.op3(isa.SLTU, v, lo.zero(), t)
	}
	return v, nil
}

func (lo *lowerer) floatCmp(op string, l, r vreg) (vreg, error) {
	v := lo.f.newVreg(vInt)
	switch op {
	case "<":
		lo.op3(isa.FLT, v, l, r)
	case ">":
		lo.op3(isa.FLT, v, r, l)
	case "<=":
		lo.op3(isa.FLE, v, l, r)
	case ">=":
		lo.op3(isa.FLE, v, r, l)
	case "==":
		lo.op3(isa.FEQ, v, l, r)
	case "!=":
		lo.op3(isa.FEQ, v, l, r)
		lo.opImm(isa.XORI, v, v, 1)
	}
	return v, nil
}

func (lo *lowerer) call(x *CallExpr) (vreg, error) {
	switch x.Name {
	case "int":
		a, err := lo.expr(x.Args[0])
		if err != nil {
			return noReg, err
		}
		if x.Args[0].typ() == TypeInt {
			return a, nil
		}
		v := lo.f.newVreg(vInt)
		lo.op3(isa.FCVTFI, v, a, noReg)
		return v, nil
	case "float":
		a, err := lo.expr(x.Args[0])
		if err != nil {
			return noReg, err
		}
		if x.Args[0].typ() == TypeFloat {
			return a, nil
		}
		v := lo.f.newVreg(vFloat)
		lo.op3(isa.FCVTIF, v, a, noReg)
		return v, nil
	case "sqrt", "fmin", "fmax":
		a, err := lo.expr(x.Args[0])
		if err != nil {
			return noReg, err
		}
		v := lo.f.newVreg(vFloat)
		if x.Name == "sqrt" {
			lo.op3(isa.FSQRT, v, a, noReg)
			return v, nil
		}
		b, err := lo.expr(x.Args[1])
		if err != nil {
			return noReg, err
		}
		op := isa.FMIN
		if x.Name == "fmax" {
			op = isa.FMAX
		}
		lo.op3(op, v, a, b)
		return v, nil
	case "abs":
		a, err := lo.expr(x.Args[0])
		if err != nil {
			return noReg, err
		}
		if x.typ() == TypeFloat {
			v := lo.f.newVreg(vFloat)
			lo.op3(isa.FABS, v, a, noReg)
			return v, nil
		}
		s := lo.f.newVreg(vInt)
		lo.opImm(isa.SRAI, s, a, 63)
		t := lo.f.newVreg(vInt)
		lo.op3(isa.XOR, t, a, s)
		v := lo.f.newVreg(vInt)
		lo.op3(isa.SUB, v, t, s)
		return v, nil
	}
	// Real call.
	lo.f.callsOut = true
	var args []vreg
	for _, a := range x.Args {
		av, err := lo.expr(a)
		if err != nil {
			return noReg, err
		}
		args = append(args, av)
	}
	in := irInst{op: irCall, dst: noReg, a: noReg, b: noReg, call: x.Name, target: -1}
	in.callArgs = args
	if x.typ() != TypeVoid {
		in.dst = lo.f.newVreg(kindOf(x.typ()))
	}
	lo.emit(in)
	if in.dst == noReg {
		return lo.zero(), nil
	}
	return in.dst, nil
}
