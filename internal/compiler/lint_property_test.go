package compiler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"loopfrog/internal/lint"
)

// Property: every program the compiler emits passes the hint-legality
// linter with zero errors and zero warnings. The compiler's loop selection
// (§5.1) is exactly the guarantee the linter verifies, so any finding here
// is a codegen bug, not a workload property. Profitability infos are
// allowed: the compiler hints loops the heuristics consider marginal.

func assertLintClean(t *testing.T, name, src string) {
	t.Helper()
	prog, _, err := Compile(name, src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep := lint.Run(prog, lint.Options{})
	if rep.Failed(true) {
		var sb strings.Builder
		rep.WriteText(&sb)
		t.Errorf("compiled program is not lint-clean:\n%s\nsource:\n%s", sb.String(), src)
	}
}

func TestCompiledProgramsLintClean(t *testing.T) {
	cases := map[string]string{
		"accumulator tail": `
var a: [64]int;
fn main() -> int {
    var s: int = 0;
    @loopfrog for i in 0..64 {
        var t: int = a[i] * a[i] + 3;
        s = s + t;
    }
    return s;
}`,
		"break and continue": `
var a: [64]int;
fn main() -> int {
    var s: int = 0;
    @loopfrog for i in 0..64 {
        if a[i] < 0 { break; }
        if a[i] == 7 { continue; }
        a[i] = a[i] * 2;
    }
    return s;
}`,
		"call in body": `
var a: [32]int;
fn sq(x: int) -> int { return x * x; }
fn main() -> int {
    @loopfrog for i in 0..32 {
        a[i] = sq(i) + sq(i + 1);
    }
    var s: int = 0;
    for i in 0..32 { s = s + a[i]; }
    return s;
}`,
		"recursive call": `
fn fib(n: int) -> int {
    if n < 2 { return n; }
    return fib(n - 1) + fib(n - 2);
}
var out: [8]int;
fn main() -> int {
    @loopfrog for i in 0..8 {
        out[i] = fib(i + 3);
    }
    var s: int = 0;
    for i in 0..8 { s = s + out[i]; }
    return s;
}`,
		"nested loops": `
var m: [16]int;
fn main() -> int {
    var s: int = 0;
    for j in 0..4 {
        @loopfrog for i in 0..16 {
            m[i] = m[i] + i * j;
        }
    }
    for i in 0..16 { s = s + m[i]; }
    return s;
}`,
		"conditional store": `
var a: [32]int;
var b: [32]int;
fn main() -> int {
    @loopfrog for i in 0..32 {
        if a[i] < 16 {
            b[i] = a[i] * 3;
        } else {
            b[i] = a[i] - 16;
        }
    }
    var s: int = 0;
    for k in 0..32 { s = s + b[k]; }
    return s;
}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { assertLintClean(t, "lintprop", src) })
	}
}

// TestRandomCompiledLoopsLintClean fuzzes the same loop-nest family as the
// semantics property test and lints each compiled image.
func TestRandomCompiledLoopsLintClean(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		n := 8 + rng.Intn(56)
		mulA := int64(1 + rng.Intn(9))
		addB := int64(rng.Intn(50))
		modM := int64(3 + rng.Intn(97))
		src := fmt.Sprintf(`
var a: [%[1]d]int;
fn main() -> int {
    for i in 0..%[1]d {
        a[i] = i * %[2]d + %[3]d;
    }
    @loopfrog for i in 0..%[1]d {
        var t: int = a[i] %% %[4]d;
        a[i] = t * t;
    }
    var s: int = 0;
    for i in 0..%[1]d {
        s = s + a[i];
    }
    return s;
}`, n, mulA, addB, modM)
		assertLintClean(t, "lintfuzz", src)
	}
}
