package compiler

import (
	"sort"

	"loopfrog/internal/isa"
)

// Linear-scan register allocation (Poletto-style) over live intervals
// computed from iterative block liveness. Two pools per register class:
// caller-saved registers for intervals that do not cross a call, and
// callee-saved registers otherwise; exhaustion spills to frame slots.
//
// Reserved registers: x1 ra, x2 sp, x3/x4 spill scratch, a0-a7 (x10-17) for
// ABI argument shuffling, f10-f17 FP arguments, f28/f29 FP spill scratch.

var (
	intCallerPool = []isa.Reg{isa.X(5), isa.X(6), isa.X(7), isa.X(28), isa.X(29), isa.X(30), isa.X(31)}
	intCalleePool = []isa.Reg{isa.X(8), isa.X(9), isa.X(18), isa.X(19), isa.X(20), isa.X(21),
		isa.X(22), isa.X(23), isa.X(24), isa.X(25), isa.X(26), isa.X(27)}
	fpCallerPool = []isa.Reg{isa.F(0), isa.F(1), isa.F(2), isa.F(3), isa.F(4), isa.F(5),
		isa.F(6), isa.F(7), isa.F(8), isa.F(9)}
	fpCalleePool = []isa.Reg{isa.F(18), isa.F(19), isa.F(20), isa.F(21), isa.F(22),
		isa.F(23), isa.F(24), isa.F(25), isa.F(26), isa.F(27)}
)

// location is where a vreg lives after allocation.
type location struct {
	reg     isa.Reg
	spilled bool
	slot    int // frame slot index when spilled
}

type interval struct {
	v          vreg
	start, end int
	crossCall  bool
	kind       vregKind
}

type allocation struct {
	loc        []location
	spillSlots int
	usedCallee []isa.Reg // callee-saved registers the prologue must save
}

// uses returns the vregs an instruction reads.
func (i *irInst) uses(buf []vreg) []vreg {
	buf = buf[:0]
	if i.a != noReg {
		buf = append(buf, i.a)
	}
	if i.b != noReg {
		buf = append(buf, i.b)
	}
	buf = append(buf, i.callArgs...)
	return buf
}

// allocate runs liveness + linear scan for f.
func allocate(f *irFunc) *allocation {
	nv := len(f.vregKind)
	nb := len(f.blocks)

	// Global instruction numbering and call positions.
	blockStart := make([]int, nb)
	blockEnd := make([]int, nb)
	pos := 0
	var callPos []int
	for bi, blk := range f.blocks {
		blockStart[bi] = pos
		for _, in := range blk.insts {
			if in.op == irCall {
				callPos = append(callPos, pos)
			}
			pos++
		}
		blockEnd[bi] = pos
	}
	total := pos

	// Iterative backward liveness over vreg bitsets.
	words := (nv + 63) / 64
	liveIn := make([][]uint64, nb)
	liveOut := make([][]uint64, nb)
	for i := range liveIn {
		liveIn[i] = make([]uint64, words)
		liveOut[i] = make([]uint64, words)
	}
	set := func(bs []uint64, v vreg) { bs[v/64] |= 1 << (uint(v) % 64) }
	clr := func(bs []uint64, v vreg) { bs[v/64] &^= 1 << (uint(v) % 64) }
	get := func(bs []uint64, v vreg) bool { return bs[v/64]&(1<<(uint(v)%64)) != 0 }

	var scratch []vreg
	changed := true
	for changed {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			out := liveOut[bi]
			for i := range out {
				out[i] = 0
			}
			for _, s := range f.succs(bi) {
				for w := range out {
					out[w] |= liveIn[s][w]
				}
			}
			in := make([]uint64, words)
			copy(in, out)
			blk := f.blocks[bi]
			for k := len(blk.insts) - 1; k >= 0; k-- {
				inst := &blk.insts[k]
				if inst.dst != noReg {
					clr(in, inst.dst)
				}
				for _, u := range inst.uses(scratch) {
					set(in, u)
				}
			}
			for w := range in {
				if in[w] != liveIn[bi][w] {
					changed = true
				}
			}
			copy(liveIn[bi], in)
		}
	}

	// Build intervals.
	starts := make([]int, nv)
	ends := make([]int, nv)
	for v := range starts {
		starts[v] = total + 1
		ends[v] = -1
	}
	touch := func(v vreg, p int) {
		if int(v) >= nv {
			return
		}
		if p < starts[v] {
			starts[v] = p
		}
		if p > ends[v] {
			ends[v] = p
		}
	}
	pos = 0
	for bi, blk := range f.blocks {
		for w := 0; w < nv; w++ {
			if get(liveIn[bi], vreg(w)) {
				touch(vreg(w), blockStart[bi])
			}
			if get(liveOut[bi], vreg(w)) {
				touch(vreg(w), blockEnd[bi])
			}
		}
		for _, in := range blk.insts {
			if in.dst != noReg {
				touch(in.dst, pos)
			}
			for _, u := range in.uses(scratch) {
				touch(u, pos)
			}
			pos++
		}
	}

	var ivs []interval
	for v := 0; v < nv; v++ {
		if ends[v] < 0 {
			continue // never used
		}
		iv := interval{v: vreg(v), start: starts[v], end: ends[v] + 1, kind: f.vregKind[v]}
		for _, cp := range callPos {
			if cp > iv.start && cp < iv.end {
				iv.crossCall = true
				break
			}
		}
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })

	// Linear scan with two pools per class.
	alloc := &allocation{loc: make([]location, nv)}
	type active struct {
		end int
		reg isa.Reg
	}
	free := map[isa.Reg]bool{}
	for _, r := range intCallerPool {
		free[r] = true
	}
	for _, r := range intCalleePool {
		free[r] = true
	}
	for _, r := range fpCallerPool {
		free[r] = true
	}
	for _, r := range fpCalleePool {
		free[r] = true
	}
	var act []active
	usedCallee := map[isa.Reg]bool{}
	isCallee := map[isa.Reg]bool{}
	for _, r := range intCalleePool {
		isCallee[r] = true
	}
	for _, r := range fpCalleePool {
		isCallee[r] = true
	}

	pickFrom := func(pool []isa.Reg) (isa.Reg, bool) {
		for _, r := range pool {
			if free[r] {
				return r, true
			}
		}
		return 0, false
	}

	for _, iv := range ivs {
		// Expire finished intervals.
		keep := act[:0]
		for _, a := range act {
			if a.end > iv.start {
				keep = append(keep, a)
			} else {
				free[a.reg] = true
			}
		}
		act = keep

		var primary, secondary []isa.Reg
		switch {
		case iv.kind == vInt && iv.crossCall:
			primary = intCalleePool
		case iv.kind == vInt:
			primary, secondary = intCallerPool, intCalleePool
		case iv.crossCall:
			primary = fpCalleePool
		default:
			primary, secondary = fpCallerPool, fpCalleePool
		}
		r, ok := pickFrom(primary)
		if !ok && secondary != nil {
			r, ok = pickFrom(secondary)
		}
		if !ok {
			alloc.loc[iv.v] = location{spilled: true, slot: alloc.spillSlots}
			alloc.spillSlots++
			continue
		}
		free[r] = false
		act = append(act, active{end: iv.end, reg: r})
		alloc.loc[iv.v] = location{reg: r}
		if isCallee[r] {
			usedCallee[r] = true
		}
	}
	for r := range usedCallee {
		alloc.usedCallee = append(alloc.usedCallee, r)
	}
	sort.Slice(alloc.usedCallee, func(i, j int) bool { return alloc.usedCallee[i] < alloc.usedCallee[j] })
	return alloc
}
