package compiler

import (
	"strings"
	"testing"

	"loopfrog/internal/cpu"
	"loopfrog/internal/isa"
	"loopfrog/internal/ref"
)

// compileRun compiles and runs under the reference interpreter.
func compileRun(t *testing.T, src string) *ref.Result {
	t.Helper()
	prog, diags, err := Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, d := range diags {
		t.Logf("diag: %s", d)
	}
	res, err := ref.Run(prog, ref.Options{MaxSteps: 50_000_000})
	if err != nil {
		t.Fatalf("ref.Run: %v\n%s", err, prog.Disassemble())
	}
	return res
}

// a0 returns the conventional result register.
func a0(r *ref.Result) int64 { return int64(r.Regs[isa.X(10)]) }

func TestCompileArithmetic(t *testing.T) {
	r := compileRun(t, `
fn main() -> int {
    var x: int = 6;
    var y: int = 7;
    return x * y + 100 / 5 - 3 % 2;
}`)
	if got := a0(r); got != 61 {
		t.Errorf("main() = %d, want 61", got)
	}
}

func TestCompileComparisonsAndLogic(t *testing.T) {
	r := compileRun(t, `
fn main() -> int {
    var a: int = 5;
    var b: int = 9;
    var r: int = 0;
    if a < b { r = r + 1; }
    if a <= 5 { r = r + 10; }
    if b > a { r = r + 100; }
    if b >= 9 { r = r + 1000; }
    if a == 5 && b == 9 { r = r + 10000; }
    if a != 5 || b == 9 { r = r + 100000; }
    if !(a == 6) { r = r + 1000000; }
    return r;
}`)
	if got := a0(r); got != 1111111 {
		t.Errorf("main() = %d, want 1111111", got)
	}
}

func TestCompileWhileLoop(t *testing.T) {
	r := compileRun(t, `
fn main() -> int {
    var n: int = 0;
    var sum: int = 0;
    while n < 10 {
        sum = sum + n;
        n = n + 1;
    }
    return sum;
}`)
	if got := a0(r); got != 45 {
		t.Errorf("main() = %d, want 45", got)
	}
}

func TestCompileForLoopAndArrays(t *testing.T) {
	r := compileRun(t, `
var data: [64]int;

fn main() -> int {
    for i in 0..64 {
        data[i] = i * i;
    }
    var sum: int = 0;
    for i in 0..64 {
        sum = sum + data[i];
    }
    return sum;
}`)
	want := int64(0)
	for i := int64(0); i < 64; i++ {
		want += i * i
	}
	if got := a0(r); got != want {
		t.Errorf("main() = %d, want %d", got, want)
	}
}

func TestCompileBreakContinue(t *testing.T) {
	r := compileRun(t, `
fn main() -> int {
    var sum: int = 0;
    for i in 0..100 {
        if i % 2 == 0 { continue; }
        if i > 20 { break; }
        sum = sum + i;
    }
    return sum;
}`)
	if got := a0(r); got != 1+3+5+7+9+11+13+15+17+19 {
		t.Errorf("main() = %d, want 100", got)
	}
}

func TestCompileFunctionsAndRecursion(t *testing.T) {
	r := compileRun(t, `
fn fib(n: int) -> int {
    if n < 2 { return n; }
    return fib(n - 1) + fib(n - 2);
}

fn main() -> int {
    return fib(15);
}`)
	if got := a0(r); got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestCompileFloats(t *testing.T) {
	r := compileRun(t, `
fn main() -> int {
    var x: float = 2.0;
    var y: float = 0.25;
    var z: float = sqrt(x * 8.0) + y * 4.0;  # 4 + 1
    if z == 5.0 {
        return int(z * 10.0);
    }
    return -1;
}`)
	if got := a0(r); got != 50 {
		t.Errorf("main() = %d, want 50", got)
	}
}

func TestCompileBuiltins(t *testing.T) {
	r := compileRun(t, `
fn main() -> int {
    var a: int = abs(0 - 42);
    var b: float = fmin(2.5, 1.5);
    var c: float = fmax(2.5, 1.5);
    var d: float = abs(0.0 - 3.0);
    return a + int(b * 2.0) + int(c * 2.0) + int(d);
}`)
	if got := a0(r); got != 42+3+5+3 {
		t.Errorf("main() = %d, want 53", got)
	}
}

func TestCompileManyLocalsSpill(t *testing.T) {
	// More locals than registers force spilling.
	src := "fn main() -> int {\n"
	for i := 0; i < 40; i++ {
		src += "    var v" + string(rune('a'+i%26)) + string(rune('0'+i/26)) + ": int = " + itoa(i) + ";\n"
	}
	src += "    var sum: int = 0;\n"
	for i := 0; i < 40; i++ {
		src += "    sum = sum + v" + string(rune('a'+i%26)) + string(rune('0'+i/26)) + ";\n"
	}
	src += "    return sum;\n}"
	r := compileRun(t, src)
	if got := a0(r); got != 780 {
		t.Errorf("main() = %d, want 780", got)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

const mapLoopSrc = `
var xs: [512]int;
var ys: [512]int;

fn main() -> int {
    for i in 0..512 {
        xs[i] = i * 3 + 1;
    }
    @loopfrog
    for i in 0..512 {
        var t: int = xs[i];
        t = t * t + 7;
        ys[i] = t;
    }
    var check: int = 0;
    for i in 0..512 {
        check = check + ys[i];
    }
    return check;
}`

// chainLoopSrc has long serial per-iteration chains: the regime where the
// baseline window cannot help and LoopFrog's threadlets can (§6.4.1).
const chainLoopSrc = `
var xs: [160]int;
var ys: [160]int;

fn main() -> int {
    for i in 0..160 {
        xs[i] = i * 3 + 1;
    }
    @loopfrog
    for i in 0..160 {
        var t: int = xs[i];
        for k in 0..120 {
            t = t * 3 + 1;
            t = t + (t % 7);
        }
        ys[i] = t;
    }
    var check: int = 0;
    for i in 0..160 {
        check = check + ys[i];
    }
    return check;
}`

func TestCompileLoopFrogHintsEmitted(t *testing.T) {
	prog, diags, err := Compile("map", mapLoopSrc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("unexpected diagnostics: %v", diags)
	}
	var det, rea, syn int
	var regionIDs []int64
	for _, in := range prog.Insts {
		switch in.Op {
		case isa.DETACH:
			det++
			regionIDs = append(regionIDs, in.Imm)
		case isa.REATTACH:
			rea++
			regionIDs = append(regionIDs, in.Imm)
		case isa.SYNC:
			syn++
			regionIDs = append(regionIDs, in.Imm)
		}
	}
	if det != 1 || rea != 1 || syn != 1 {
		t.Fatalf("hints = %d/%d/%d, want 1/1/1\n%s", det, rea, syn, prog.Disassemble())
	}
	for _, id := range regionIDs[1:] {
		if id != regionIDs[0] {
			t.Errorf("hint region IDs differ: %v", regionIDs)
		}
	}
}

func TestCompiledLoopFrogMatchesReferenceAndSpeedsUp(t *testing.T) {
	prog, _, err := Compile("chain", chainLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ref.MustRun(prog, ref.Options{})

	run := func(cfg cpu.Config) *cpu.Stats {
		m, err := cpu.NewMachine(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := m.FinalRegs()[isa.X(10)]; got != oracle.Regs[isa.X(10)] {
			t.Fatalf("result %d != reference %d", got, oracle.Regs[isa.X(10)])
		}
		if diff := oracle.Mem.Diff(m.Memory()); diff != "" {
			t.Fatalf("memory differs:\n%s", diff)
		}
		return st
	}
	base := run(cpu.BaselineConfig())
	lf := run(cpu.DefaultConfig())
	if lf.Spawns == 0 {
		t.Error("compiled hints never spawned a threadlet")
	}
	if lf.Cycles >= base.Cycles {
		t.Errorf("no speedup from compiled hints: %d vs %d cycles", lf.Cycles, base.Cycles)
	}
}

func TestCompileDeselectsReductionLoop(t *testing.T) {
	// Every statement updates a loop-carried scalar: no parallel body exists
	// and the compiler must fall back to a plain loop with a diagnostic.
	prog, diags, err := Compile("red", `
var xs: [64]int;
fn main() -> int {
    var acc: int = 0;
    @loopfrog
    for i in 0..64 {
        acc = acc + xs[i];
    }
    return acc;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0], "not parallelised") {
		t.Errorf("diagnostics = %v, want one de-selection note", diags)
	}
	for _, in := range prog.Insts {
		if isa.OpMeta(in.Op).IsHint {
			t.Fatalf("de-selected loop still has hint %v", in)
		}
	}
}

func TestCompileLoopWithAccumulatorTail(t *testing.T) {
	// Mixed loop: a parallel middle and a trailing accumulator; the
	// accumulator statement must land in the continuation, after reattach.
	prog, diags, err := Compile("mixed", `
var xs: [256]int;
var ys: [256]int;
fn main() -> int {
    var acc: int = 0;
    @loopfrog
    for i in 0..256 {
        var t: int = xs[i] * 5;
        ys[i] = t + 1;
        acc = acc + 1;
    }
    return acc;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("unexpected diagnostics: %v", diags)
	}
	// Order: detach ... reattach ... (acc update) ... sync.
	var detachIdx, reattachIdx, syncIdx int = -1, -1, -1
	for i, in := range prog.Insts {
		switch in.Op {
		case isa.DETACH:
			detachIdx = i
		case isa.REATTACH:
			reattachIdx = i
		case isa.SYNC:
			syncIdx = i
		}
	}
	if detachIdx < 0 || reattachIdx < detachIdx || syncIdx < reattachIdx {
		t.Fatalf("hint order wrong: detach=%d reattach=%d sync=%d", detachIdx, reattachIdx, syncIdx)
	}
	res, err := ref.Run(prog, ref.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(res.Regs[isa.X(10)]); got != 256 {
		t.Errorf("acc = %d, want 256", got)
	}
}

func TestCompileNestedLoopsInnerInBody(t *testing.T) {
	r := compileRun(t, `
var m: [1024]int;
fn main() -> int {
    @loopfrog
    for i in 0..32 {
        for j in 0..32 {
            m[i * 32 + j] = i + j;
        }
    }
    var s: int = 0;
    for i in 0..1024 {
        s = s + m[i];
    }
    return s;
}`)
	want := int64(0)
	for i := int64(0); i < 32; i++ {
		for j := int64(0); j < 32; j++ {
			want += i + j
		}
	}
	if got := a0(r); got != want {
		t.Errorf("main() = %d, want %d", got, want)
	}
}

func TestCompileCallInLoopBody(t *testing.T) {
	r := compileRun(t, `
var out: [100]int;
fn sq(x: int) -> int { return x * x; }
fn main() -> int {
    @loopfrog
    for i in 0..100 {
        out[i] = sq(i);
    }
    return out[9];
}`)
	if got := a0(r); got != 81 {
		t.Errorf("main() = %d, want 81", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"no-main", `fn f() {}`, "no main"},
		{"undef-var", `fn main() { x = 1; }`, "undefined variable"},
		{"undef-fn", `fn main() { f(); }`, "undefined function"},
		{"type-mismatch", `fn main() { var x: int = 1.5; }`, "cannot initialise"},
		{"bad-cond", `fn main() { if 1.5 { } }`, "must be int"},
		{"arity", `fn f(a: int) {} fn main() { f(1, 2); }`, "wants 1 args"},
		{"break-outside", `fn main() { break; }`, "break outside loop"},
		{"loopfrog-while", `fn main() { @loopfrog while 1 { } }`, "only counted for"},
		{"scalar-global", `var g: int; fn main() {}`, "must be an array"},
		{"array-arith", `var a: [4]int; fn main() { var x: int = 0; if a == a { x = 1; } }`, "not scalar"},
		{"syntax", `fn main() { var ; }`, "expected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := Compile(c.name, c.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestDumpIR(t *testing.T) {
	out, err := DumpIR(`fn main() -> int { var x: int = 1; return x + 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "func main") || !strings.Contains(out, "add") {
		t.Errorf("IR dump looks wrong:\n%s", out)
	}
}

func TestCompileArrayParams(t *testing.T) {
	r := compileRun(t, `
var buf: [16]int;
fn fill(a: []int, n: int) {
    for i in 0..n {
        a[i] = i * 2;
    }
}
fn total(a: []int, n: int) -> int {
    var s: int = 0;
    for i in 0..n {
        s = s + a[i];
    }
    return s;
}
fn main() -> int {
    fill(buf, 16);
    return total(buf, 16);
}`)
	if got := a0(r); got != 240 {
		t.Errorf("main() = %d, want 240", got)
	}
}

func TestCompileFloatParamsAndReturn(t *testing.T) {
	r := compileRun(t, `
fn mix(a: float, b: float, w: float) -> float {
    return a * w + b * (1.0 - w);
}
fn main() -> int {
    return int(mix(10.0, 20.0, 0.25) * 100.0);
}`)
	if got := a0(r); got != 1750 {
		t.Errorf("main() = %d, want 1750", got)
	}
}
