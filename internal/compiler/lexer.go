// Package compiler implements LoopLang, a small imperative language, and
// its compiler to LFISA — the stand-in for the paper's LLVM-based hint
// compiler (§5). The pipeline is: lex → parse → type-check → lower to a
// three-address IR over virtual registers → LoopFrog hint insertion for
// loops annotated `@loopfrog` (§5.3: sync every exit edge, place detach and
// reattach to maximise the body under the no-register-LCD-out-of-body
// constraint) → liveness + linear-scan register allocation → LFISA codegen.
package compiler

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct   // operators and delimiters
	tokKeyword // fn var if else while for in return break continue pragma
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

var keywords = map[string]bool{
	"fn": true, "var": true, "if": true, "else": true, "while": true,
	"for": true, "in": true, "return": true, "break": true, "continue": true,
	"int": true, "float": true, "true": true, "false": true,
}

var punctuations = []string{
	"..", "&&", "||", "==", "!=", "<=", ">=", "->",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "(", ")", "{", "}", "[", "]",
	",", ";", ":", "@",
}

// lexError reports a lexical error with position.
type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("looplang:%d:%d: %s", e.line, e.col, e.msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return &lexError{line: l.line, col: l.col, msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	t := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		t.kind = tokEOF
		return t, nil
	}
	c := l.peekByte()
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.pos
		for l.pos < len(l.src) {
			c := l.peekByte()
			if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
				l.advance()
			} else {
				break
			}
		}
		t.text = l.src[start:l.pos]
		if keywords[t.text] {
			t.kind = tokKeyword
		} else {
			t.kind = tokIdent
		}
		return t, nil
	case unicode.IsDigit(rune(c)):
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) {
			c := l.peekByte()
			switch {
			case unicode.IsDigit(rune(c)) || c == 'x' || c == 'X' ||
				(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c == '_':
				l.advance()
			case c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '.':
				// Range operator, not a decimal point.
				goto done
			case c == '.' && !isFloat:
				isFloat = true
				l.advance()
			default:
				goto done
			}
		}
	done:
		t.text = strings.ReplaceAll(l.src[start:l.pos], "_", "")
		if isFloat {
			t.kind = tokFloat
		} else {
			t.kind = tokInt
		}
		return t, nil
	default:
		for _, p := range punctuations {
			if strings.HasPrefix(l.src[l.pos:], p) {
				for range p {
					l.advance()
				}
				t.kind = tokPunct
				t.text = p
				return t, nil
			}
		}
		return t, l.errf("unexpected character %q", c)
	}
}

// lexAll tokenises the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
