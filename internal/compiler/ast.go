package compiler

// LoopLang abstract syntax.

// Type is a LoopLang type.
type Type int

// LoopLang types.
const (
	TypeVoid Type = iota
	TypeInt
	TypeFloat
	TypeIntArray
	TypeFloatArray
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeIntArray:
		return "[]int"
	case TypeFloatArray:
		return "[]float"
	}
	return "?"
}

func (t Type) elem() Type {
	switch t {
	case TypeIntArray:
		return TypeInt
	case TypeFloatArray:
		return TypeFloat
	}
	return TypeVoid
}

func (t Type) isArray() bool { return t == TypeIntArray || t == TypeFloatArray }

// File is a parsed source file.
type File struct {
	Funcs   []*FuncDecl
	Globals []*VarDecl
}

// FuncDecl is a function declaration.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    Type
	Body   *Block
	Line   int
}

// Param is a function parameter (scalars and arrays; arrays pass by
// reference).
type Param struct {
	Name string
	Type Type
}

// VarDecl declares a scalar or array variable. Arrays take a constant
// length; initialisation is optional for scalars.
type VarDecl struct {
	Name   string
	Type   Type
	Len    int64 // array length, 0 for scalars
	Init   Expr  // optional scalar initialiser
	Line   int
	global bool
}

// Block is a statement list with its own scope.
type Block struct {
	Stmts []Stmt
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// AssignStmt is "lvalue = expr".
type AssignStmt struct {
	LHS  Expr // VarRef or IndexExpr
	RHS  Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond     Expr
	Body     *Block
	LoopFrog bool // @loopfrog annotation (rejected during checking)
	Line     int
}

// ForStmt is "for i in lo..hi { }" — i iterates [lo, hi).
type ForStmt struct {
	Var      string
	Lo, Hi   Expr
	Body     *Block
	LoopFrog bool // @loopfrog annotation selects the loop (§5.1)
	Line     int
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	Value Expr // may be nil
	Line  int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt skips to the next iteration.
type ContinueStmt struct{ Line int }

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	// typ is filled in by the checker.
	typ() Type
}

type exprBase struct{ t Type }

func (e *exprBase) typ() Type { return e.t }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Value float64
}

// VarRef references a variable.
type VarRef struct {
	exprBase
	Name string
	Line int
}

// IndexExpr is arr[idx].
type IndexExpr struct {
	exprBase
	Arr  Expr
	Idx  Expr
	Line int
}

// BinExpr is a binary operation: + - * / % < <= > >= == != && ||.
type BinExpr struct {
	exprBase
	Op   string
	L, R Expr
	Line int
}

// UnExpr is a unary operation: - !.
type UnExpr struct {
	exprBase
	Op   string
	X    Expr
	Line int
}

// CallExpr calls a function. The builtins float(x) and int(x) convert.
type CallExpr struct {
	exprBase
	Name string
	Args []Expr
	Line int
}

func (*IntLit) exprNode()    {}
func (*FloatLit) exprNode()  {}
func (*VarRef) exprNode()    {}
func (*IndexExpr) exprNode() {}
func (*BinExpr) exprNode()   {}
func (*UnExpr) exprNode()    {}
func (*CallExpr) exprNode()  {}
