package compiler

import (
	"fmt"

	"loopfrog/internal/asm"
	"loopfrog/internal/isa"
)

// Codegen emits allocated IR into an asm.Builder. Spilled vregs are accessed
// through reserved scratch registers (x3/x4 and f28/f29); block labels are
// "<fn>.b<N>", and hints target the continuation block's label, so the
// assembled instruction index of the continuation becomes the region ID.

var (
	intScratch = [2]isa.Reg{isa.X(3), isa.X(4)}
	fpScratch  = [2]isa.Reg{isa.F(28), isa.F(29)}
	intArgs    = []isa.Reg{isa.X(10), isa.X(11), isa.X(12), isa.X(13), isa.X(14), isa.X(15), isa.X(16), isa.X(17)}
	fpArgs     = []isa.Reg{isa.F(10), isa.F(11), isa.F(12), isa.F(13), isa.F(14), isa.F(15), isa.F(16), isa.F(17)}
)

type codegen struct {
	f     *irFunc
	al    *allocation
	b     *asm.Builder
	frame int64
	raOff int64
	csOff map[isa.Reg]int64
}

func genFunc(f *irFunc, al *allocation, b *asm.Builder) error {
	g := &codegen{f: f, al: al, b: b, csOff: make(map[isa.Reg]int64)}
	slots := int64(al.spillSlots)
	off := slots * 8
	for _, r := range al.usedCallee {
		g.csOff[r] = off
		off += 8
	}
	if f.callsOut {
		g.raOff = off
		off += 8
	}
	g.frame = off

	b.Label(f.name)
	// Prologue.
	if g.frame > 0 {
		b.OpImm(isa.ADDI, isa.X(2), isa.X(2), -g.frame)
	}
	if f.callsOut {
		b.Store(isa.SD, isa.X(1), isa.X(2), g.raOff)
	}
	for _, r := range al.usedCallee {
		if r.IsFP() {
			b.Store(isa.FSD, r, isa.X(2), g.csOff[r])
		} else {
			b.Store(isa.SD, r, isa.X(2), g.csOff[r])
		}
	}
	// Move ABI arguments into parameter homes.
	ni, nf := 0, 0
	for i, p := range f.params {
		v := f.paramVR[i]
		if p.Type == TypeFloat {
			if nf >= len(fpArgs) {
				return fmt.Errorf("compiler: %s: too many float parameters", f.name)
			}
			g.storeTo(v, fpArgs[nf])
			nf++
		} else {
			if ni >= len(intArgs) {
				return fmt.Errorf("compiler: %s: too many int parameters", f.name)
			}
			g.storeTo(v, intArgs[ni])
			ni++
		}
	}

	for bi, blk := range f.blocks {
		b.Label(g.blockLabel(bi))
		for _, in := range blk.insts {
			if err := g.inst(in); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *codegen) blockLabel(bi int) string { return fmt.Sprintf("%s.b%d", g.f.name, bi) }

// srcReg returns a physical register holding vreg v, loading spills into
// scratch slot si.
func (g *codegen) srcReg(v vreg, si int) isa.Reg {
	loc := g.al.loc[v]
	if !loc.spilled {
		return loc.reg
	}
	var r isa.Reg
	if g.f.vregKind[v] == vFloat {
		r = fpScratch[si]
		g.b.Load(isa.FLD, r, isa.X(2), int64(loc.slot)*8)
	} else {
		r = intScratch[si]
		g.b.Load(isa.LD, r, isa.X(2), int64(loc.slot)*8)
	}
	return r
}

// dstReg returns the register an instruction should write; spilled
// destinations use scratch 0 and must be flushed with flushDst.
func (g *codegen) dstReg(v vreg) isa.Reg {
	loc := g.al.loc[v]
	if !loc.spilled {
		return loc.reg
	}
	if g.f.vregKind[v] == vFloat {
		return fpScratch[0]
	}
	return intScratch[0]
}

func (g *codegen) flushDst(v vreg) {
	loc := g.al.loc[v]
	if !loc.spilled {
		return
	}
	if g.f.vregKind[v] == vFloat {
		g.b.Store(isa.FSD, fpScratch[0], isa.X(2), int64(loc.slot)*8)
	} else {
		g.b.Store(isa.SD, intScratch[0], isa.X(2), int64(loc.slot)*8)
	}
}

// storeTo moves a value from physical register src into v's home.
func (g *codegen) storeTo(v vreg, src isa.Reg) {
	loc := g.al.loc[v]
	if loc.spilled {
		if src.IsFP() {
			g.b.Store(isa.FSD, src, isa.X(2), int64(loc.slot)*8)
		} else {
			g.b.Store(isa.SD, src, isa.X(2), int64(loc.slot)*8)
		}
		return
	}
	if loc.reg == src {
		return
	}
	if src.IsFP() {
		g.b.Op(isa.FMOV, loc.reg, src, 0)
	} else {
		g.b.OpImm(isa.ADDI, loc.reg, src, 0)
	}
}

// loadFrom moves v's value into physical register dst.
func (g *codegen) loadFrom(dst isa.Reg, v vreg) {
	loc := g.al.loc[v]
	if loc.spilled {
		if dst.IsFP() {
			g.b.Load(isa.FLD, dst, isa.X(2), int64(loc.slot)*8)
		} else {
			g.b.Load(isa.LD, dst, isa.X(2), int64(loc.slot)*8)
		}
		return
	}
	if loc.reg == dst {
		return
	}
	if dst.IsFP() {
		g.b.Op(isa.FMOV, dst, loc.reg, 0)
	} else {
		g.b.OpImm(isa.ADDI, dst, loc.reg, 0)
	}
}

func (g *codegen) inst(in irInst) error {
	switch in.op {
	case irLabel:
		return nil
	case irJmp:
		g.b.Jump(isa.X(0), g.blockLabel(in.target))
		return nil
	case irRet:
		if in.a != noReg {
			if in.imm == 1 {
				g.loadFrom(isa.F(10), in.a)
			} else {
				g.loadFrom(isa.X(10), in.a)
			}
		}
		if g.f.name == "main" {
			g.b.Halt()
			return nil
		}
		for _, r := range g.al.usedCallee {
			if r.IsFP() {
				g.b.Load(isa.FLD, r, isa.X(2), g.csOff[r])
			} else {
				g.b.Load(isa.LD, r, isa.X(2), g.csOff[r])
			}
		}
		if g.f.callsOut {
			g.b.Load(isa.LD, isa.X(1), isa.X(2), g.raOff)
		}
		if g.frame > 0 {
			g.b.OpImm(isa.ADDI, isa.X(2), isa.X(2), g.frame)
		}
		g.b.I(isa.Inst{Op: isa.JALR, Rd: isa.X(0), Rs1: isa.X(1)})
		return nil
	case irCall:
		// Marshal arguments into the ABI registers.
		ni, nf := 0, 0
		for _, a := range in.callArgs {
			if g.f.vregKind[a] == vFloat {
				if nf >= len(fpArgs) {
					return fmt.Errorf("compiler: call %s: too many float args", in.call)
				}
				g.loadFrom(fpArgs[nf], a)
				nf++
			} else {
				if ni >= len(intArgs) {
					return fmt.Errorf("compiler: call %s: too many int args", in.call)
				}
				g.loadFrom(intArgs[ni], a)
				ni++
			}
		}
		g.b.Jump(isa.X(1), in.call)
		if in.dst != noReg {
			if g.f.vregKind[in.dst] == vFloat {
				g.storeTo(in.dst, isa.F(10))
			} else {
				g.storeTo(in.dst, isa.X(10))
			}
		}
		return nil
	}

	meta := isa.OpMeta(in.op)
	switch {
	case meta.IsHint:
		// Hints carry the source line of their loop so lint regions can be
		// joined back to @loopfrog sites by downstream tooling.
		g.b.Line(in.line)
		g.b.Hint(in.op, g.blockLabel(in.target))
		g.b.Line(0)
	case in.op == isa.LI && in.sym != "":
		g.b.La(g.dstReg(in.dst), in.sym)
		g.flushDst(in.dst)
	case in.op == isa.LI:
		g.b.Li(g.dstReg(in.dst), in.imm)
		g.flushDst(in.dst)
	case meta.IsLoad:
		addr := g.srcReg(in.a, 1)
		g.b.Load(in.op, g.dstReg(in.dst), addr, in.imm)
		g.flushDst(in.dst)
	case meta.IsStore:
		addr := g.srcReg(in.a, 0)
		data := g.srcReg(in.b, 1)
		g.b.Store(in.op, data, addr, in.imm)
	case meta.IsBranch:
		ra := g.srcReg(in.a, 0)
		rb := g.srcReg(in.b, 1)
		g.b.Branch(in.op, ra, rb, g.blockLabel(in.target))
	case meta.HasRs2:
		ra := g.srcReg(in.a, 0)
		rb := g.srcReg(in.b, 1)
		g.b.Op(in.op, g.dstReg(in.dst), ra, rb)
		g.flushDst(in.dst)
	case meta.HasRs1 && meta.HasRd && meta.Class == isa.ClassIntALU:
		ra := g.srcReg(in.a, 0)
		g.b.OpImm(in.op, g.dstReg(in.dst), ra, in.imm)
		g.flushDst(in.dst)
	case meta.HasRs1 && meta.HasRd:
		ra := g.srcReg(in.a, 0)
		g.b.Op(in.op, g.dstReg(in.dst), ra, 0)
		g.flushDst(in.dst)
	default:
		return fmt.Errorf("compiler: codegen cannot emit %s", opName(in.op))
	}
	return nil
}
