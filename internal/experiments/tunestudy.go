package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"loopfrog/internal/sim"
	"loopfrog/internal/tune"
	"loopfrog/internal/workloads"
)

// TunePoint is one (workload, budget) cell of the autotuning study: the
// search's outcome and its cost at that budget. Scores are speedups over the
// shared hints-as-NOPs baseline, so winner_score / static_score > 1 means
// the tuned hint selection beats the compiler's static one.
type TunePoint struct {
	Workload  string `json:"workload"`
	Budget    int    `json:"budget"`
	Spent     int    `json:"spent"`
	SpaceSize int    `json:"space_size"`
	Pruned    int    `json:"pruned"`
	Rungs     int    `json:"rungs"`
	// Winner describes the winning variant (tune.Variant.Desc), WinnerScore
	// its speedup at the deepest tier it reached; StaticScore is the anchor's
	// speedup at its deepest tier — the control arm. The tier indices record
	// each side's fidelity: the two scores are only comparable when they
	// match (a budget-starved search can promote the winner past the anchor).
	Winner      string  `json:"winner"`
	WinnerTier  int     `json:"winner_tier"`
	WinnerScore float64 `json:"winner_score"`
	StaticTier  int     `json:"static_tier"`
	StaticScore float64 `json:"static_score"`
	// GainPct is the winner's advantage over the static selection in percent
	// (0 when the anchor wins or the tiers differ).
	GainPct float64 `json:"gain_pct"`
	// Seconds is the search's wall-clock cost on this host.
	Seconds float64 `json:"seconds"`
}

// DefaultTuneBudgets is the search-cost curve the study sweeps, in
// rung-0-equivalent units.
func DefaultTuneBudgets() []int { return []int{16, 48, 128} }

// TuneSuite selects the workloads the autotuning study retunes: programs
// whose static hint selection is known-good (the true-parallelism classes,
// where the anchor should win) next to the paper's no-speedup classes
// (§6.4.3), where de-selecting or re-knobbing hints is exactly what the
// tuner exists to find.
func TuneSuite() []*workloads.Benchmark {
	names := []string{"mcf", "x264", "leela", "deepsjeng", "xz", "namd"}
	suite := workloads.CPU2017()
	var out []*workloads.Benchmark
	for _, n := range names {
		if b := workloads.ByName(suite, n); b != nil {
			out = append(out, b)
		}
	}
	return out
}

// TuneStudy runs the budgeted autotuner over each workload at each budget.
// All searches share one harness, so evaluations that recur across budgets
// (the deeper rungs' detailed runs) dedupe through the run-cache exactly as
// re-tuning an unchanged program would.
func TuneStudy(suite []*workloads.Benchmark, budgets []int) ([]TunePoint, error) {
	h := &sim.Harness{Cache: sim.NewRunCache()}
	var pts []TunePoint
	for _, b := range suite {
		if b.Source() == "" {
			return nil, fmt.Errorf("tune study: %s is a prebuilt asm workload", b.Name)
		}
		for _, budget := range budgets {
			start := time.Now()
			rep, err := tune.Tune(context.Background(),
				tune.Spec{Program: b.Name, Source: b.Source(), Budget: budget},
				tune.Local{H: h})
			if err != nil {
				return nil, fmt.Errorf("tune study: %s at budget %d: %w", b.Name, budget, err)
			}
			p := TunePoint{
				Workload:    b.Name,
				Budget:      budget,
				Spent:       rep.Spent,
				SpaceSize:   rep.SpaceSize,
				Pruned:      len(rep.Pruned),
				Rungs:       len(rep.Rungs),
				Winner:      rep.Winner.Variant.Desc(),
				WinnerTier:  rep.Winner.Tier,
				WinnerScore: rep.Winner.Score,
				StaticTier:  rep.Static.Tier,
				StaticScore: rep.Static.Score,
				Seconds:     time.Since(start).Seconds(),
			}
			if rep.Static.Score > 0 && rep.WinnerBeatsStatic() {
				p.GainPct = 100 * (rep.Winner.Score/rep.Static.Score - 1)
			}
			pts = append(pts, p)
		}
	}
	return pts, nil
}

// TuneBeats counts the workloads whose largest-budget search found a variant
// strictly better than the static selection.
func TuneBeats(pts []TunePoint) int {
	best := make(map[string]TunePoint)
	for _, p := range pts {
		if cur, ok := best[p.Workload]; !ok || p.Budget > cur.Budget {
			best[p.Workload] = p
		}
	}
	n := 0
	for _, p := range best {
		if p.WinnerTier == p.StaticTier && p.WinnerScore > p.StaticScore {
			n++
		}
	}
	return n
}

// TuneFailures lists gate breaches: the anchor rides every rung, so a winner
// scoring below the static selection at the same fidelity means the search
// machinery itself is broken. Cross-tier pairs (a budget-starved search that
// promoted the winner past the anchor) are not comparable and never breach.
func TuneFailures(pts []TunePoint) []string {
	var fails []string
	for _, p := range pts {
		if p.WinnerTier == p.StaticTier && p.WinnerScore < p.StaticScore {
			fails = append(fails, fmt.Sprintf("%s at budget %d: winner %.4f below static %.4f",
				p.Workload, p.Budget, p.WinnerScore, p.StaticScore))
		}
	}
	return fails
}

// FormatTune renders the study as the autotuned-vs-static table with the
// search-cost curve.
func FormatTune(pts []TunePoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Autotuned vs static hint selection (successive halving, eta %d)\n", tune.DefaultEta)
	fmt.Fprintf(&sb, "%-12s %7s %6s %6s %7s  %-26s %8s %8s %7s %7s\n",
		"workload", "budget", "spent", "space", "pruned", "winner", "tuned", "static", "gain%", "sec")
	crossTier := false
	for _, p := range pts {
		mark := " "
		if p.WinnerTier != p.StaticTier {
			mark, crossTier = "*", true
		}
		fmt.Fprintf(&sb, "%-12s %7d %6d %6d %7d  %-26s %8.4f %8.4f%s %6.2f %7.1f\n",
			p.Workload, p.Budget, p.Spent, p.SpaceSize, p.Pruned,
			p.Winner, p.WinnerScore, p.StaticScore, mark, p.GainPct, p.Seconds)
	}
	if crossTier {
		sb.WriteString("* winner and static measured at different tiers; scores not comparable\n")
	}
	fmt.Fprintf(&sb, "\n%d/%d workloads improve on the static selection at the largest budget\n",
		TuneBeats(pts), len(best(pts)))
	return sb.String()
}

func best(pts []TunePoint) map[string]bool {
	m := make(map[string]bool)
	for _, p := range pts {
		m[p.Workload] = true
	}
	return m
}
