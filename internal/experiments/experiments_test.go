package experiments

import (
	"strings"
	"testing"

	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
	"loopfrog/internal/workloads"
)

// subset keeps experiment tests fast while covering the gain classes.
func subset(t *testing.T) []*workloads.Benchmark {
	t.Helper()
	keep := map[string]bool{"mcf": true, "omnetpp": true, "leela": true, "imagick": true, "gcc": true}
	var out []*workloads.Benchmark
	for _, b := range workloads.CPU2017() {
		if keep[b.Name] {
			out = append(out, b)
		}
	}
	return out
}

func results(t *testing.T) []*sim.Result {
	t.Helper()
	res, err := sim.RunSuite(cpu.DefaultConfig(), subset(t))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFigure1Trend(t *testing.T) {
	rows, err := Figure1(subset(t), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The paper's trend: wider cores raise IPC but lower commit utilisation.
	if rows[1].GeomeanIPC <= rows[0].GeomeanIPC {
		t.Errorf("IPC did not grow with width: %.2f -> %.2f", rows[0].GeomeanIPC, rows[1].GeomeanIPC)
	}
	if rows[1].CommitUtil >= rows[0].CommitUtil {
		t.Errorf("commit utilisation did not fall with width: %.2f -> %.2f",
			rows[0].CommitUtil, rows[1].CommitUtil)
	}
	out := FormatFigure1(rows)
	if !strings.Contains(out, "width") {
		t.Error("format output missing header")
	}
}

func TestFigure6ShapesMatchPaper(t *testing.T) {
	rows, geo, err := Figure6(cpu.DefaultConfig(), subset(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Figure6Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Shape checks against the paper: imagick is the top gainer; leela shows
	// little or nothing; the subset geomean is positive.
	if byName["imagick"].WholeSpeedup < 1.5 {
		t.Errorf("imagick = %.2f, want the top gainer (paper: 1.87)", byName["imagick"].WholeSpeedup)
	}
	if s := byName["leela"].WholeSpeedup; s < 0.95 || s > 1.05 {
		t.Errorf("leela = %.2f, want ~1.0 (paper: no speedup)", s)
	}
	if byName["omnetpp"].WholeSpeedup < 1.2 {
		t.Errorf("omnetpp = %.2f, want a large gain (paper: 1.54)", byName["omnetpp"].WholeSpeedup)
	}
	if geo["cpu2017"] <= 1.0 {
		t.Errorf("subset geomean = %.3f, want > 1", geo["cpu2017"])
	}
	if !strings.Contains(FormatFigure6(rows, geo), "geomean") {
		t.Error("format output missing geomean")
	}
}

func TestFigure7And8(t *testing.T) {
	res := results(t)
	f7 := Figure7(res, true)
	if len(f7) == 0 {
		t.Fatal("no figure 7 rows")
	}
	for _, r := range f7 {
		if r.FracGE2 < 0 || r.FracGE2 > 1 || r.FracEq4 > r.FracGE2 {
			t.Errorf("%s: inconsistent occupancy fractions %+v", r.Name, r)
		}
	}
	f8 := Figure8(res, true)
	if len(f8) == 0 {
		t.Fatal("no figure 8 rows")
	}
	for _, r := range f8 {
		if r.Arch <= 0 {
			t.Errorf("%s: non-positive architectural share", r.Name)
		}
		if r.SpecFail < 0 {
			t.Errorf("%s: negative failed speculation", r.Name)
		}
	}
	if !strings.Contains(FormatFigure7(f7), "average") || !strings.Contains(FormatFigure8(f8), "average") {
		t.Error("figure 7/8 formats missing averages")
	}
}

func TestTable2FractionsSumToOne(t *testing.T) {
	rows := Table2(results(t))
	sum := 0.0
	gainers := 0
	for _, r := range rows {
		sum += r.Fraction
		gainers += r.Loops
	}
	if gainers == 0 {
		t.Fatal("no profitable loops attributed")
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("fractions sum to %.3f, want 1.0", sum)
	}
	if !strings.Contains(FormatTable2(rows), "True parallelism") {
		t.Error("table 2 format missing category")
	}
}

func TestSweepsOrdering(t *testing.T) {
	// One tiny sweep each, checking the paper's qualitative knees: a 512 B
	// SSB loses speedup vs 8 KiB, and line-size granules lose vs 4 B.
	small := subset(t)[:2]
	f9, err := Figure9(small, []int{512, 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if f9[0].Geomean > f9[1].Geomean+0.001 {
		t.Errorf("512B SSB (%0.3f) outperformed 8KiB (%0.3f)", f9[0].Geomean, f9[1].Geomean)
	}
	f10, err := Figure10(small, []int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	if f10[1].Geomean > f10[0].Geomean+0.001 {
		t.Errorf("line-granule (%0.3f) outperformed 4B (%0.3f)", f10[1].Geomean, f10[0].Geomean)
	}
	if !strings.Contains(FormatSweep("t", f9), "geomean") {
		t.Error("sweep format broken")
	}
}

func TestGeneralityExcludesOpenMP(t *testing.T) {
	res, err := sim.RunSuite(cpu.DefaultConfig(), []*workloads.Benchmark{
		workloads.ByName(workloads.CPU2017(), "mcf"),     // not in an OMP region
		workloads.ByName(workloads.CPU2017(), "imagick"), // inside an OMP region
	})
	if err != nil {
		t.Fatal(err)
	}
	all, nonOMP := Generality(res)
	if all <= 1 || nonOMP <= 1 {
		t.Errorf("geomeans not positive gains: %v %v", all, nonOMP)
	}
	if nonOMP == all {
		t.Error("excluding OpenMP-region loops changed nothing")
	}
}

func TestAreaAndTable3Render(t *testing.T) {
	if !strings.Contains(AreaReport(), "mm2") {
		t.Error("area report missing units")
	}
	out := Table3(1.095)
	for _, want := range []string{"LoopFrog", "STAMPede", "Multiscalar", "x (this repro)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 missing %q", want)
		}
	}
}

func TestPackingStudy(t *testing.T) {
	// leela-class loops rely on packing being OFF; use a packing-sensitive
	// pair instead.
	suite := []*workloads.Benchmark{
		workloads.ByName(workloads.CPU2017(), "mcf"),
		workloads.ByName(workloads.CPU2017(), "imagick"),
	}
	p, err := Packing(suite)
	if err != nil {
		t.Fatal(err)
	}
	if p.GeomeanWith <= 0 || p.GeomeanWithout <= 0 {
		t.Fatal("empty packing study")
	}
	if !strings.Contains(FormatPacking(p), "packing factor") {
		t.Error("packing format broken")
	}
}
