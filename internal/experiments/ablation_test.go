package experiments

import (
	"testing"

	"loopfrog/internal/workloads"
)

func pair(t *testing.T) []*workloads.Benchmark {
	t.Helper()
	return []*workloads.Benchmark{
		workloads.ByName(workloads.CPU2017(), "imagick"),
		workloads.ByName(workloads.CPU2017(), "mcf"),
	}
}

func TestBloomAblationSafeAndComparable(t *testing.T) {
	rows, err := BloomAblation(pair(t), []int{4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	exact, bloom := rows[0].Geomean, rows[1].Geomean
	if bloom <= 0 {
		t.Fatal("bloom run produced no result")
	}
	// A paper-sized filter may cost a little (false positives squash), but
	// never gains and never collapses.
	if bloom > exact+0.01 {
		t.Errorf("bloom (%0.3f) beat exact sets (%0.3f)?", bloom, exact)
	}
	if bloom < exact-0.15 {
		t.Errorf("4096-bit bloom lost %.1f pp vs exact; aliasing too strong", 100*(exact-bloom))
	}
}

func TestThreadletScalingMonotoneOnParallelLoops(t *testing.T) {
	rows, err := ThreadletScaling(pair(t), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Geomean < rows[0].Geomean-0.01 {
		t.Errorf("4 threadlets (%0.3f) worse than 2 (%0.3f) on independent loops",
			rows[1].Geomean, rows[0].Geomean)
	}
}

func TestWidthScalingRuns(t *testing.T) {
	rows, err := WidthScaling(pair(t)[:1], []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Geomean <= 1 {
		t.Errorf("8-wide LoopFrog geomean %.3f, want > 1 on imagick", rows[0].Geomean)
	}
}
