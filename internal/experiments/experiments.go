// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) from the simulator: each exported function runs the
// necessary simulations and returns printable rows. cmd/lfbench and the
// repository benchmarks drive these.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"loopfrog/internal/area"
	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
	"loopfrog/internal/workloads"
)

// Figure1Row is one microarchitecture width point of figure 1.
type Figure1Row struct {
	Width      int
	GeomeanIPC float64
	CommitUtil float64 // fraction of commit bandwidth used
}

// Figure1 sweeps the baseline front-end width over the suite, reproducing
// the trend of figure 1: IPC grows with width while the fraction of commit
// bandwidth used falls — the under-utilisation LoopFrog exploits. The whole
// width x benchmark grid is fanned out as one batch of jobs.
func Figure1(suite []*workloads.Benchmark, widths []int) ([]Figure1Row, error) {
	jobs := make([]sim.Job, 0, len(widths)*len(suite))
	for _, w := range widths {
		cfg := sim.BaselineOf(cpu.DefaultConfig().WithWidth(w))
		for _, b := range suite {
			prog, err := b.Program()
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, sim.Job{Cfg: cfg, Prog: prog})
		}
	}
	stats, err := sim.RunJobs(jobs)
	if err != nil {
		return nil, fmt.Errorf("figure1: %w", err)
	}
	var rows []Figure1Row
	for wi, w := range widths {
		var ipcs, utils []float64
		for bi := range suite {
			st := stats[wi*len(suite)+bi]
			ipcs = append(ipcs, st.IPC())
			utils = append(utils, st.CommitUtilization(w))
		}
		rows = append(rows, Figure1Row{Width: w, GeomeanIPC: sim.Geomean(ipcs), CommitUtil: sim.Geomean(utils)})
	}
	return rows, nil
}

// FormatFigure1 renders figure 1 rows.
func FormatFigure1(rows []Figure1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1: geomean IPC and commit utilisation vs front-end width (baseline)\n")
	b.WriteString("width  geomean-IPC  commit-utilisation\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5d  %11.2f  %17.1f%%\n", r.Width, r.GeomeanIPC, 100*r.CommitUtil)
	}
	return b.String()
}

// Figure6Row is one benchmark's whole-program speedup.
type Figure6Row struct {
	Name          string
	Suite         string
	WholeSpeedup  float64
	RegionSpeedup float64
}

// Figure6 runs both SPEC suites and reports whole-program speedups.
func Figure6(cfg cpu.Config, suites ...[]*workloads.Benchmark) ([]Figure6Row, map[string]float64, error) {
	var rows []Figure6Row
	geomeans := make(map[string]float64)
	for _, suite := range suites {
		results, err := sim.RunSuite(cfg, suite)
		if err != nil {
			return nil, nil, err
		}
		var sp []float64
		for _, r := range results {
			rows = append(rows, Figure6Row{
				Name:          r.Bench.Name,
				Suite:         r.Bench.Suite,
				WholeSpeedup:  r.Speedup(),
				RegionSpeedup: r.RegionSpeedup(),
			})
			sp = append(sp, r.Speedup())
		}
		if len(results) > 0 {
			geomeans[results[0].Bench.Suite] = sim.Geomean(sp)
		}
	}
	return rows, geomeans, nil
}

// FormatFigure6 renders figure 6 rows.
func FormatFigure6(rows []Figure6Row, geomeans map[string]float64) string {
	var b strings.Builder
	b.WriteString("Figure 6: whole-program speedups (baseline vs LoopFrog)\n")
	b.WriteString("benchmark      suite    whole-speedup  region-speedup\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-8s %12.1f%%  %13.1f%%\n",
			r.Name, r.Suite, 100*(r.WholeSpeedup-1), 100*(r.RegionSpeedup-1))
	}
	var suites []string
	for s := range geomeans {
		suites = append(suites, s)
	}
	sort.Strings(suites)
	for _, s := range suites {
		fmt.Fprintf(&b, "geomean %-8s %+.1f%%\n", s, 100*(geomeans[s]-1))
	}
	return b.String()
}

// Figure7Row is one benchmark's threadlet-occupancy profile.
type Figure7Row struct {
	Name string
	// FracGE2 and FracEq4 are the whole-run time fractions with at least two
	// and exactly four live threadlets.
	FracGE2, FracEq4 float64
}

// Figure7 reports threadlet utilisation over the lifetime of each profitable
// benchmark (in-region occupancy diluted by the region's share of program
// time, as the paper's whole-run traces are).
func Figure7(results []*sim.Result, onlyProfitable bool) []Figure7Row {
	profitable := workloads.Profitable2017Names()
	var rows []Figure7Row
	for _, r := range results {
		if onlyProfitable && !profitable[r.Bench.Name] {
			continue
		}
		lf := r.LF
		var ge2, eq4 uint64
		var total uint64
		for k, c := range lf.LiveCycles {
			total += c
			if k+1 >= 2 {
				ge2 += c
			}
			if k+1 == 4 {
				eq4 += c
			}
		}
		if total == 0 {
			continue
		}
		share := r.LFTimeShare()
		rows = append(rows, Figure7Row{
			Name:    r.Bench.Name,
			FracGE2: share * float64(ge2) / float64(total),
			FracEq4: share * float64(eq4) / float64(total),
		})
	}
	return rows
}

// FormatFigure7 renders figure 7 rows with their averages.
func FormatFigure7(rows []Figure7Row) string {
	var b strings.Builder
	b.WriteString("Figure 7: speculative threadlet utilisation over benchmark lifetime\n")
	b.WriteString("benchmark      >=2 active  4 active\n")
	var s2, s4 float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9.0f%%  %7.0f%%\n", r.Name, 100*r.FracGE2, 100*r.FracEq4)
		s2 += r.FracGE2
		s4 += r.FracEq4
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "average        %9.0f%%  %7.0f%%\n",
			100*s2/float64(len(rows)), 100*s4/float64(len(rows)))
	}
	return b.String()
}

// Figure8Row is one benchmark's commit attribution, normalised to the
// baseline IPC.
type Figure8Row struct {
	Name string
	// Arch is IPC committed while architectural; SpecOK while speculative
	// and later retired; SpecFail to threadlets that were squashed. All are
	// normalised to the baseline IPC and diluted to whole-program time.
	Arch, SpecOK, SpecFail float64
}

// Figure8 reproduces the committed-IPC attribution of figure 8.
func Figure8(results []*sim.Result, onlyProfitable bool) []Figure8Row {
	profitable := workloads.Profitable2017Names()
	var rows []Figure8Row
	for _, r := range results {
		if onlyProfitable && !profitable[r.Bench.Name] {
			continue
		}
		baseIPC := r.Base.IPC()
		if baseIPC == 0 || r.LF.Cycles == 0 {
			continue
		}
		share := r.LFTimeShare()
		norm := func(insts uint64) float64 {
			inRegion := float64(insts) / float64(r.LF.Cycles) / baseIPC
			return share*inRegion + (1 - share) // sequential part runs at baseline speed
		}
		archOnly := share*(float64(r.LF.ArchCommitCycleSum)/float64(r.LF.Cycles))/baseIPC + (1 - share)
		rows = append(rows, Figure8Row{
			Name:     r.Bench.Name,
			Arch:     archOnly,
			SpecOK:   norm(r.LF.ArchCommitCycleSum+r.LF.SpecCommitCycleSum) - archOnly,
			SpecFail: share * (float64(r.LF.SpecCommitted) / float64(r.LF.Cycles)) / baseIPC,
		})
	}
	return rows
}

// FormatFigure8 renders figure 8 rows.
func FormatFigure8(rows []Figure8Row) string {
	var b strings.Builder
	b.WriteString("Figure 8: committed IPC attribution, normalised to baseline IPC\n")
	b.WriteString("benchmark      architectural  +speculative(retired)  +failed-spec\n")
	var a, s, f float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12.2f  %20.2f  %12.2f\n", r.Name, r.Arch, r.SpecOK, r.SpecFail)
		a += r.Arch
		s += r.SpecOK
		f += r.SpecFail
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(&b, "average        %12.2f  %20.2f  %12.2f\n", a/n, s/n, f/n)
	}
	return b.String()
}

// Table2Row aggregates the sources of performance gains.
type Table2Row struct {
	Category    string
	SubCategory workloads.Class
	Loops       int
	Fraction    float64
}

// Table2 attributes each profitable benchmark's gain to its dominant
// bottleneck class (the paper sorts profitable loops into the same five
// sub-categories and attributes all of a loop's speedup to its main cause).
func Table2(results []*sim.Result) []Table2Row {
	gain := make(map[workloads.Class]float64)
	loops := make(map[workloads.Class]int)
	total := 0.0
	for _, r := range results {
		g := r.Speedup() - 1
		if g < 0.01 {
			continue // the paper restricts attribution to >=1% loops
		}
		gain[r.Bench.Class] += g
		loops[r.Bench.Class]++
		total += g
	}
	order := []workloads.Class{
		workloads.ClassMemory, workloads.ClassControl, workloads.ClassDepChain,
		workloads.ClassBranchPref, workloads.ClassDataPref,
	}
	var rows []Table2Row
	for _, c := range order {
		cat := "Prefetching"
		if c.IsTrueParallelism() {
			cat = "True parallelism"
		}
		frac := 0.0
		if total > 0 {
			frac = gain[c] / total
		}
		rows = append(rows, Table2Row{Category: cat, SubCategory: c, Loops: loops[c], Fraction: frac})
	}
	return rows
}

// FormatTable2 renders table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: sources of performance gains\n")
	b.WriteString("category          sub-category               loops  fraction-of-speedup\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-17s %-26s %5d  %18.0f%%\n", r.Category, r.SubCategory, r.Loops, 100*r.Fraction)
	}
	return b.String()
}

// PackingResult summarises §6.5.
type PackingResult struct {
	GeomeanWith, GeomeanWithout float64
	MeanFactor, MaxFactor       float64
}

// Packing compares the suite geomean with and without iteration packing and
// reports the observed packing factors.
func Packing(suite []*workloads.Benchmark) (*PackingResult, error) {
	on := cpu.DefaultConfig()
	off := cpu.DefaultConfig()
	off.Pack.Enabled = false
	resOn, err := sim.RunSuite(on, suite)
	if err != nil {
		return nil, err
	}
	resOff, err := sim.RunSuite(off, suite)
	if err != nil {
		return nil, err
	}
	out := &PackingResult{
		GeomeanWith:    geomeanWhole(resOn),
		GeomeanWithout: geomeanWhole(resOff),
	}
	// Re-run one packing-heavy benchmark to harvest factor statistics.
	var totalPacked, factorSum uint64
	maxF := 0
	for _, b := range suite {
		prog, err := b.Program()
		if err != nil {
			return nil, err
		}
		m, err := cpu.NewMachine(on, prog)
		if err != nil {
			return nil, err
		}
		if _, err := m.Run(); err != nil {
			return nil, err
		}
		p := m.Packer()
		totalPacked += p.Packed
		factorSum += p.FactorSum
		if p.MaxFactorSeen > maxF {
			maxF = p.MaxFactorSeen
		}
	}
	if totalPacked > 0 {
		out.MeanFactor = float64(factorSum) / float64(totalPacked)
	}
	out.MaxFactor = float64(maxF)
	return out, nil
}

func geomeanWhole(results []*sim.Result) float64 {
	var xs []float64
	for _, r := range results {
		xs = append(xs, r.Speedup())
	}
	return sim.Geomean(xs)
}

// FormatPacking renders the §6.5 summary.
func FormatPacking(p *PackingResult) string {
	return fmt.Sprintf(`Iteration packing (§6.5)
geomean speedup with packing:    %+.1f%%
geomean speedup without packing: %+.1f%%
packing contribution:            %+.1f pp
mean packing factor:             %.1fx
max packing factor:              %.0fx
`,
		100*(p.GeomeanWith-1), 100*(p.GeomeanWithout-1),
		100*(p.GeomeanWith-p.GeomeanWithout), p.MeanFactor, p.MaxFactor)
}

// SweepRow is one point of a sensitivity sweep.
type SweepRow struct {
	Label   string
	Geomean float64
}

// Figure9 sweeps the total SSB size (all slices together, as the paper
// labels it; the headline is 8 KiB = 4 x 2 KiB).
func Figure9(suite []*workloads.Benchmark, totalBytes []int) ([]SweepRow, error) {
	var rows []SweepRow
	for _, total := range totalBytes {
		cfg := cpu.DefaultConfig()
		cfg.SSB.SliceBytes = total / cfg.Threadlets
		res, err := sim.RunSuite(cfg, suite)
		if err != nil {
			return nil, fmt.Errorf("figure9 %d: %w", total, err)
		}
		rows = append(rows, SweepRow{Label: formatBytes(total), Geomean: geomeanWhole(res)})
	}
	return rows, nil
}

// Figure10 sweeps the SSB/conflict-detector granule size.
func Figure10(suite []*workloads.Benchmark, granules []int) ([]SweepRow, error) {
	var rows []SweepRow
	for _, g := range granules {
		cfg := cpu.DefaultConfig()
		cfg.SSB.GranuleBytes = g
		res, err := sim.RunSuite(cfg, suite)
		if err != nil {
			return nil, fmt.Errorf("figure10 %d: %w", g, err)
		}
		rows = append(rows, SweepRow{Label: fmt.Sprintf("%dB", g), Geomean: geomeanWhole(res)})
	}
	return rows, nil
}

// Associativity reproduces the §6.6 associativity study: limited SSB
// associativity with and without a small shared victim buffer.
func Associativity(suite []*workloads.Benchmark) ([]SweepRow, error) {
	type pt struct {
		label  string
		assoc  int
		victim int
	}
	points := []pt{
		{"full", 0, 0},
		{"8-way", 8, 0},
		{"4-way", 4, 0},
		{"8-way+victim", 8, 8},
		{"4-way+victim", 4, 8},
	}
	var rows []SweepRow
	for _, p := range points {
		cfg := cpu.DefaultConfig()
		cfg.SSB.Assoc = p.assoc
		cfg.SSB.VictimEntries = p.victim
		res, err := sim.RunSuite(cfg, suite)
		if err != nil {
			return nil, fmt.Errorf("assoc %s: %w", p.label, err)
		}
		rows = append(rows, SweepRow{Label: p.label, Geomean: geomeanWhole(res)})
	}
	return rows, nil
}

// FormatSweep renders a sensitivity sweep.
func FormatSweep(title string, rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s geomean %+.1f%%\n", r.Label, 100*(r.Geomean-1))
	}
	return b.String()
}

// Generality reproduces §6.7: the geomean over loops that are NOT inside an
// OpenMP-parallel region of the original program.
func Generality(results []*sim.Result) (all, nonOMP float64) {
	var xa, xn []float64
	for _, r := range results {
		xa = append(xa, r.Speedup())
		if !r.Bench.InOpenMPRegion {
			xn = append(xn, r.Speedup())
		}
	}
	return sim.Geomean(xa), sim.Geomean(xn)
}

// AreaReport reproduces §6.8's overhead arithmetic.
func AreaReport() string {
	return area.Report(cpu.DefaultConfig().SSB)
}

// Table3 renders the scheme-comparison table. The LoopFrog row is measured;
// the prior-scheme rows are the paper's cited numbers (their artifacts are
// unavailable), as in the paper's own caveat that the comparison is not
// like-for-like.
func Table3(measured2017 float64) string {
	var b strings.Builder
	b.WriteString("Table 3: comparison with TLS/SpMT schemes (prior rows cited, not measured)\n")
	fmt.Fprintf(&b, "%-12s %-22s %-8s %-8s %-28s %s\n", "scheme", "speedup", "cores", "area", "baseline", "task sizes")
	fmt.Fprintf(&b, "%-12s %-22s %-8s %-8s %-28s %s\n", "LoopFrog",
		fmt.Sprintf("%.2fx (this repro)", measured2017), "1 (4SMT)", "~1.15x", "8-issue OoO", "~100-10,000 insts")
	fmt.Fprintf(&b, "%-12s %-22s %-8s %-8s %-28s %s\n", "STAMPede", "1.16x (SPEC95/2000)", "4", ">4x", "4-issue simple OoO", "~1,400 insts")
	fmt.Fprintf(&b, "%-12s %-22s %-8s %-8s %-28s %s\n", "Multiscalar", "2.16x (SPEC92)", "8 PUs", "~8x", "2-issue limited OoO", "10-50 insts")
	return b.String()
}

func formatBytes(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dKiB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
