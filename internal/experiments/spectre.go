package experiments

import (
	"fmt"
	"strings"

	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
	"loopfrog/internal/workloads"
)

// SpectreRow is one workload's speculative-leak profile and mitigation cost:
// the baseline/LoopFrog pair with taint tracking on, plus a third run with
// the ShadowBinding-style DelaySpeculativeLoadDeps defence. Detection is
// metadata-only, so DetectCycles is also the stock LoopFrog cycle count; the
// mitigation's price is MitigateCycles against it.
type SpectreRow struct {
	Name           string `json:"name"`
	Suite          string `json:"suite"`
	BaselineCycles int64  `json:"baseline_cycles"`
	DetectCycles   int64  `json:"detect_cycles"`
	MitigateCycles int64  `json:"mitigate_cycles"`

	// Speedup over the baseline core without and with the defence, and the
	// defence's relative cost ((mitigate-detect)/detect, in percent).
	Speedup          float64 `json:"speedup"`
	MitigatedSpeedup float64 `json:"mitigated_speedup"`
	CostPct          float64 `json:"cost_pct"`

	// Detection-run leak profile and the mitigated run's (which must be
	// leak-free by construction: held wakeups never expose tainted values).
	LeakCandidates      uint64 `json:"leak_candidates"`
	Leaks               uint64 `json:"leaks"`
	MitigatedCandidates uint64 `json:"mitigated_candidates"`
	MitigatedLeaks      uint64 `json:"mitigated_leaks"`
	DelayedWakes        uint64 `json:"delayed_wakes"`
}

// Spectre measures the speculative-leak profile and mitigation cost of every
// workload in suite: three runs each (baseline, LoopFrog+detection,
// LoopFrog+mitigation), fanned out as one batch.
func Spectre(suite []*workloads.Benchmark) ([]SpectreRow, error) {
	det := cpu.DefaultConfig()
	det.SpectreAnalysis = true
	mit := det
	mit.DelaySpeculativeLoadDeps = true

	jobs := make([]sim.Job, 0, 3*len(suite))
	for _, b := range suite {
		prog, err := b.Program()
		if err != nil {
			return nil, fmt.Errorf("spectre: %s: %w", b.Name, err)
		}
		jobs = append(jobs,
			sim.Job{Cfg: sim.BaselineOf(cpu.DefaultConfig()), Prog: prog},
			sim.Job{Cfg: det, Prog: prog},
			sim.Job{Cfg: mit, Prog: prog})
	}
	stats, err := sim.RunJobs(jobs)
	if err != nil {
		return nil, fmt.Errorf("spectre: %w", err)
	}
	rows := make([]SpectreRow, 0, len(suite))
	for i, b := range suite {
		base, d, m := stats[3*i], stats[3*i+1], stats[3*i+2]
		r := SpectreRow{
			Name:           b.Name,
			Suite:          b.Suite,
			BaselineCycles: base.Cycles,
			DetectCycles:   d.Cycles,
			MitigateCycles: m.Cycles,

			LeakCandidates:      d.LeakCandidates,
			Leaks:               d.Leaks,
			MitigatedCandidates: m.LeakCandidates,
			MitigatedLeaks:      m.Leaks,
			DelayedWakes:        m.DelayedWakes,
		}
		if d.Cycles > 0 {
			r.Speedup = float64(base.Cycles) / float64(d.Cycles)
			r.CostPct = 100 * (float64(m.Cycles) - float64(d.Cycles)) / float64(d.Cycles)
		}
		if m.Cycles > 0 {
			r.MitigatedSpeedup = float64(base.Cycles) / float64(m.Cycles)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// SpectreFailures gates the study: the mitigated run of every workload must
// be leak-free — not just no confirmed leaks, but no candidates at all, since
// the defence withholds tainted values from address computations entirely.
func SpectreFailures(rows []SpectreRow) []string {
	var fails []string
	for _, r := range rows {
		if r.MitigatedCandidates != 0 || r.MitigatedLeaks != 0 {
			fails = append(fails, fmt.Sprintf(
				"%s/%s: mitigated run still has %d candidates / %d confirmed leaks",
				r.Suite, r.Name, r.MitigatedCandidates, r.MitigatedLeaks))
		}
	}
	return fails
}

// FormatSpectre renders the study as an aligned table with the geomean
// mitigation cost.
func FormatSpectre(rows []SpectreRow) string {
	var b strings.Builder
	b.WriteString("Speculative-leak study: taint detection and ShadowBinding-style mitigation cost\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %9s %9s %8s %10s %8s\n",
		"workload", "baseline", "loopfrog", "mitigated", "speedup", "mit.spdp", "cost%", "candidates", "leaks")
	var spdps, mitSpdps []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10d %10d %10d %8.3fx %8.3fx %7.2f%% %10d %8d\n",
			r.Name, r.BaselineCycles, r.DetectCycles, r.MitigateCycles,
			r.Speedup, r.MitigatedSpeedup, r.CostPct, r.LeakCandidates, r.Leaks)
		if r.Speedup > 0 {
			spdps = append(spdps, r.Speedup)
		}
		if r.MitigatedSpeedup > 0 {
			mitSpdps = append(mitSpdps, r.MitigatedSpeedup)
		}
	}
	geo, mitGeo := sim.Geomean(spdps), sim.Geomean(mitSpdps)
	fmt.Fprintf(&b, "geomean speedup %.3fx, mitigated %.3fx (cost %.2f%%)\n",
		geo, mitGeo, 100*(geo/mitGeo-1))
	return b.String()
}
