package experiments

import (
	"fmt"

	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
	"loopfrog/internal/workloads"
)

// Ablations beyond the paper's headline studies, for the design choices
// DESIGN.md calls out.

// BloomAblation compares the idealised exact-set conflict detector (the
// paper's headline setup: "No false positives modeled") against the
// proposed Bloom-filter hardware at several filter sizes. Smaller filters
// alias more granules and squash more threadlets; the paper estimates ~2%
// of epochs failing with a naive design.
func BloomAblation(suite []*workloads.Benchmark, bits []int) ([]SweepRow, error) {
	rows := []SweepRow{}
	base := cpu.DefaultConfig()
	res, err := sim.RunSuite(base, suite)
	if err != nil {
		return nil, err
	}
	rows = append(rows, SweepRow{Label: "exact", Geomean: geomeanWhole(res)})
	for _, b := range bits {
		cfg := cpu.DefaultConfig()
		cfg.BloomBits = b
		cfg.BloomHashes = 4
		res, err := sim.RunSuite(cfg, suite)
		if err != nil {
			return nil, fmt.Errorf("bloom %d: %w", b, err)
		}
		rows = append(rows, SweepRow{Label: fmt.Sprintf("bloom-%db", b), Geomean: geomeanWhole(res)})
	}
	return rows, nil
}

// WidthScaling runs the LoopFrog-vs-baseline comparison at several core
// widths: the paper's premise (§2) is that wider future cores leave more
// back-end slots idle, so in-core TLS should keep paying off as widths grow.
func WidthScaling(suite []*workloads.Benchmark, widths []int) ([]SweepRow, error) {
	var rows []SweepRow
	for _, w := range widths {
		cfg := cpu.DefaultConfig().WithWidth(w)
		res, err := sim.RunSuite(cfg, suite)
		if err != nil {
			return nil, fmt.Errorf("width %d: %w", w, err)
		}
		rows = append(rows, SweepRow{Label: fmt.Sprintf("%d-wide", w), Geomean: geomeanWhole(res)})
	}
	return rows, nil
}

// ThreadletScaling sweeps the number of threadlet contexts (the paper
// evaluates 4; 2 contexts halve the leapfrogging distance).
func ThreadletScaling(suite []*workloads.Benchmark, counts []int) ([]SweepRow, error) {
	var rows []SweepRow
	for _, n := range counts {
		cfg := cpu.DefaultConfig()
		cfg.Threadlets = n
		res, err := sim.RunSuite(cfg, suite)
		if err != nil {
			return nil, fmt.Errorf("threadlets %d: %w", n, err)
		}
		rows = append(rows, SweepRow{Label: fmt.Sprintf("%d-threadlets", n), Geomean: geomeanWhole(res)})
	}
	return rows, nil
}
