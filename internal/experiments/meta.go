package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"
)

// Meta identifies the environment a benchmark JSON artifact was produced in:
// the host shape, the Go toolchain, and the repository commit baked into the
// binary by the Go build system. Every lfbench JSON writer embeds one, so
// artifacts are comparable across machines and revisions without guessing
// from file dates.
type Meta struct {
	// Date is the generation time (UTC, RFC 3339).
	Date string `json:"date"`
	// Host is the GOOS/GOARCH pair; Cores the logical CPU count the
	// simulations fanned over.
	Host  string `json:"host"`
	Cores int    `json:"cores"`
	// GoVersion is the toolchain that built the generating binary.
	GoVersion string `json:"go_version"`
	// Commit is the VCS revision stamped into the binary (12 hex chars,
	// "-dirty" suffix preserved); empty when the binary was built outside a
	// checkout (go run, test binaries).
	Commit string `json:"commit,omitempty"`
	// Command reproduces the artifact.
	Command string `json:"command"`
}

// NewMeta collects the environment for one artifact. command is the lfbench
// invocation that reproduces it.
func NewMeta(command string) Meta {
	m := Meta{
		Date:      time.Now().UTC().Format(time.RFC3339),
		Host:      fmt.Sprintf("%s/%s", runtime.GOOS, runtime.GOARCH),
		Cores:     runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Command:   command,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if rev != "" && dirty {
			rev += "-dirty"
		}
		m.Commit = rev
	}
	return m
}
