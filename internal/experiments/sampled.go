package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
	"loopfrog/internal/workloads"
)

// Error budgets for the sampled-accuracy gate, as fractions of the full
// detailed run's cycle count.
const (
	// SampledErrBudget is the headline acceptance bound: sampled estimates at
	// the full-tiling default must be within 2% of the full detailed run.
	SampledErrBudget = 0.02
	// SampledOutlierBudget is the looser bound for SampledOutliers.
	SampledOutlierBudget = 0.05
)

// SampledOutliers are the workloads whose LoopFrog-side estimate is allowed
// SampledOutlierBudget instead of SampledErrBudget. A detailed window seeded
// mid-region restarts the spawn chain from scratch; on workloads whose chain
// dynamics are sensitive to that restart the window settles into a measurably
// different spawn/squash equilibrium than the uninterrupted run, and no
// affordable detailed warmup converges the two (see EXPERIMENTS.md). The
// baseline side always gets the tight budget.
var SampledOutliers = map[string]bool{"povray": true, "perlbench": true}

// SampledCell is one workload's accuracy and cost measurement at one sample
// configuration.
type SampledCell struct {
	Workload string `json:"workload"`
	// Full detailed cycle counts (ground truth) and their pair wall time.
	FullBase      int64 `json:"full_base_cycles"`
	FullLF        int64 `json:"full_lf_cycles"`
	FullWallNanos int64 `json:"full_wall_ns"`
	// Sampled estimates and the sampled pair's wall time (tier 1 + windows).
	EstBase          float64 `json:"est_base_cycles"`
	EstLF            float64 `json:"est_lf_cycles"`
	SampledWallNanos int64   `json:"sampled_wall_ns"`
	// Signed cycle errors, percent.
	BaseErrPct float64 `json:"base_err_pct"`
	LFErrPct   float64 `json:"lf_err_pct"`
	// TrueSpeedup and EstSpeedup compare the program speedup conclusion the
	// full runs and the sampled estimates reach.
	TrueSpeedup float64 `json:"true_speedup"`
	EstSpeedup  float64 `json:"est_speedup"`
	// SimSpeedup is the simulation-speed gain: full pair wall time over
	// sampled pair wall time on this host. Window-parallel hosts scale it
	// further; see EXPERIMENTS.md.
	SimSpeedup float64 `json:"sim_speedup"`
	// Tier1MIPS is the standalone fast-functional rate, million insts/s;
	// EffectiveMIPS is program instructions over the sampled pair's wall time.
	Tier1MIPS     float64 `json:"tier1_minsts_per_sec"`
	EffectiveMIPS float64 `json:"effective_minsts_per_sec"`
	// DetailedShare is the fraction of the program's instructions simulated in
	// detail (warmup included), averaged over the two sides.
	DetailedShare float64 `json:"detailed_share"`
	// Outlier marks the workload as one of SampledOutliers.
	Outlier bool `json:"outlier,omitempty"`
}

// SampledPoint is one sample configuration's row of the accuracy-vs-speedup
// curve, with per-workload cells and suite aggregates.
type SampledPoint struct {
	Interval uint64        `json:"interval"`
	Window   uint64        `json:"window"`
	Warmup   uint64        `json:"warmup"`
	Cells    []SampledCell `json:"cells"`
	// Aggregates over the suite.
	MeanAbsBaseErrPct float64 `json:"mean_abs_base_err_pct"`
	MeanAbsLFErrPct   float64 `json:"mean_abs_lf_err_pct"`
	MaxAbsLFErrPct    float64 `json:"max_abs_lf_err_pct"` // non-outliers only
	GeoSimSpeedup     float64 `json:"geomean_sim_speedup"`
	MeanDetailedShare float64 `json:"mean_detailed_share"`
	MeanTier1MIPS     float64 `json:"mean_tier1_minsts_per_sec"`
}

// FullTiling reports whether this point's measured windows tile the program
// (no sampling gap) — the configuration class the accuracy gate applies to.
func (p *SampledPoint) FullTiling() bool { return p.Window >= p.Interval }

// SampledCurveConfigs returns the accuracy-vs-speedup sweep, from the most
// aggressive sub-interval sampling to the full-tiling default. Only the
// full-tiling point is gated on the 2% budget: sub-interval windows trade
// accuracy for speed on this suite's phase-heterogeneous micro workloads.
func SampledCurveConfigs() []sim.SampleConfig {
	return []sim.SampleConfig{
		{Interval: 50_000, Window: 5_000, Warmup: 2_000},
		{Interval: 50_000, Window: 10_000, Warmup: 5_000},
		{Interval: 50_000, Window: 25_000, Warmup: 10_000},
		sim.DefaultSampleConfig(),
	}
}

// Sampled runs the sampled-accuracy study: one full detailed A/B pair per
// workload as ground truth, then a sampled A/B estimate per (workload,
// config), on a fresh harness so wall times are honest (no run-cache hits
// from earlier experiments).
func Sampled(suite []*workloads.Benchmark, configs []sim.SampleConfig) ([]SampledPoint, error) {
	h := sim.NewHarness()
	cfg := cpu.DefaultConfig()
	base := sim.BaselineOf(cfg)

	type truth struct {
		baseCycles, lfCycles int64
		wallNanos            int64
	}
	truths := make(map[string]truth, len(suite))
	for _, b := range suite {
		prog, err := b.Program()
		if err != nil {
			return nil, fmt.Errorf("sampled: %s: %w", b.Name, err)
		}
		start := time.Now()
		stats, err := h.RunJobs([]sim.Job{{Cfg: base, Prog: prog}, {Cfg: cfg, Prog: prog}})
		if err != nil {
			return nil, fmt.Errorf("sampled: full %s: %w", b.Name, err)
		}
		truths[b.Name] = truth{
			baseCycles: stats[0].Cycles,
			lfCycles:   stats[1].Cycles,
			wallNanos:  int64(time.Since(start)),
		}
	}

	var points []SampledPoint
	for _, scfg := range configs {
		p := SampledPoint{Interval: scfg.Interval, Window: scfg.Window, Warmup: scfg.Warmup}
		var absBase, absLF, logSpeed []float64
		for _, b := range suite {
			prog, err := b.Program()
			if err != nil {
				return nil, fmt.Errorf("sampled: %s: %w", b.Name, err)
			}
			res, err := h.RunSampledAB(cfg, prog, scfg)
			if err != nil {
				return nil, fmt.Errorf("sampled: %s @{%d,%d,%d}: %w", b.Name, scfg.Interval, scfg.Window, scfg.Warmup, err)
			}
			tr := truths[b.Name]
			c := SampledCell{
				Workload:         b.Name,
				FullBase:         tr.baseCycles,
				FullLF:           tr.lfCycles,
				FullWallNanos:    tr.wallNanos,
				EstBase:          res.Base.EstCycles,
				EstLF:            res.LF.EstCycles,
				SampledWallNanos: res.Base.WallNanos,
				BaseErrPct:       100 * (res.Base.EstCycles/float64(tr.baseCycles) - 1),
				LFErrPct:         100 * (res.LF.EstCycles/float64(tr.lfCycles) - 1),
				TrueSpeedup:      float64(tr.baseCycles) / float64(tr.lfCycles),
				EstSpeedup:       res.Base.EstCycles / res.LF.EstCycles,
				Tier1MIPS:        res.Base.Tier1IPS / 1e6,
				EffectiveMIPS:    res.Base.EffectiveIPS / 1e6,
				DetailedShare:    (res.Base.DetailedShare + res.LF.DetailedShare) / 2,
				Outlier:          SampledOutliers[b.Name],
			}
			if c.SampledWallNanos > 0 {
				c.SimSpeedup = float64(c.FullWallNanos) / float64(c.SampledWallNanos)
			}
			p.Cells = append(p.Cells, c)
			absBase = append(absBase, math.Abs(c.BaseErrPct))
			absLF = append(absLF, math.Abs(c.LFErrPct))
			if !c.Outlier && math.Abs(c.LFErrPct) > p.MaxAbsLFErrPct {
				p.MaxAbsLFErrPct = math.Abs(c.LFErrPct)
			}
			if c.SimSpeedup > 0 {
				logSpeed = append(logSpeed, c.SimSpeedup)
			}
			p.MeanDetailedShare += c.DetailedShare
			p.MeanTier1MIPS += c.Tier1MIPS
		}
		p.MeanAbsBaseErrPct = mean(absBase)
		p.MeanAbsLFErrPct = mean(absLF)
		p.GeoSimSpeedup = sim.Geomean(logSpeed)
		if n := float64(len(p.Cells)); n > 0 {
			p.MeanDetailedShare /= n
			p.MeanTier1MIPS /= n
		}
		points = append(points, p)
	}
	return points, nil
}

// SampledFailures returns one message per cell of the full-tiling points that
// breaches its error budget (SampledErrBudget, or SampledOutlierBudget for
// the documented LF-side outliers). Sub-interval points are never gated.
func SampledFailures(points []SampledPoint) []string {
	var fails []string
	for _, p := range points {
		if !p.FullTiling() {
			continue
		}
		for _, c := range p.Cells {
			lfBudget := 100 * SampledErrBudget
			if c.Outlier {
				lfBudget = 100 * SampledOutlierBudget
			}
			if math.Abs(c.BaseErrPct) > 100*SampledErrBudget {
				fails = append(fails, fmt.Sprintf("%s baseline cycle error %+.2f%% exceeds %.1f%% at {%d,%d,%d}",
					c.Workload, c.BaseErrPct, 100*SampledErrBudget, p.Interval, p.Window, p.Warmup))
			}
			if math.Abs(c.LFErrPct) > lfBudget {
				fails = append(fails, fmt.Sprintf("%s loopfrog cycle error %+.2f%% exceeds %.1f%% at {%d,%d,%d}",
					c.Workload, c.LFErrPct, lfBudget, p.Interval, p.Window, p.Warmup))
			}
		}
	}
	return fails
}

// FormatSampled renders the study: one table per configuration plus the
// accuracy-vs-speedup summary across configurations.
func FormatSampled(points []SampledPoint) string {
	var b strings.Builder
	for _, p := range points {
		gate := "curve point (not gated)"
		if p.FullTiling() {
			gate = "full tiling (gated at 2%)"
		}
		fmt.Fprintf(&b, "Sampled accuracy: interval %d, window %d, warmup %d — %s\n",
			p.Interval, p.Window, p.Warmup, gate)
		fmt.Fprintf(&b, "%-12s %12s %12s %7s %12s %12s %7s %7s %7s %8s\n",
			"workload", "full-base", "est-base", "err%", "full-lf", "est-lf", "err%", "spdup", "est", "simx")
		for _, c := range p.Cells {
			mark := ""
			if c.Outlier {
				mark = "*"
			}
			fmt.Fprintf(&b, "%-12s %12d %12.0f %+6.2f%% %12d %12.0f %+6.2f%% %6.3fx %6.3fx %7.2fx%s\n",
				c.Workload, c.FullBase, c.EstBase, c.BaseErrPct,
				c.FullLF, c.EstLF, c.LFErrPct, c.TrueSpeedup, c.EstSpeedup, c.SimSpeedup, mark)
		}
		fmt.Fprintf(&b, "mean |err| base %.2f%%, lf %.2f%% (max non-outlier %.2f%%); detailed share %.0f%%, tier-1 %.1fM insts/s, sim speedup %.2fx geomean\n\n",
			p.MeanAbsBaseErrPct, p.MeanAbsLFErrPct, p.MaxAbsLFErrPct,
			100*p.MeanDetailedShare, p.MeanTier1MIPS, p.GeoSimSpeedup)
	}
	if len(points) > 1 {
		b.WriteString("Accuracy vs speedup:\n")
		fmt.Fprintf(&b, "%-22s %10s %10s %12s %10s\n", "config", "|err| lf", "max n-o", "det share", "sim spdup")
		for _, p := range points {
			fmt.Fprintf(&b, "{%d,%d,%d}%*s %9.2f%% %9.2f%% %11.0f%% %9.2fx\n",
				p.Interval, p.Window, p.Warmup,
				max(0, 21-len(fmt.Sprintf("{%d,%d,%d}", p.Interval, p.Window, p.Warmup))), "",
				p.MeanAbsLFErrPct, p.MaxAbsLFErrPct, 100*p.MeanDetailedShare, p.GeoSimSpeedup)
		}
		b.WriteString("* documented outlier (5% budget): window restarts the spawn chain mid-region; see EXPERIMENTS.md\n")
	}
	return b.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
