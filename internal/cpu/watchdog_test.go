package cpu

import (
	"errors"
	"testing"

	"loopfrog/internal/asm"
)

// stuckEpochSrc detaches a successor and then spins forever inside the body
// without ever reaching its reattach: the architectural threadlet keeps
// committing (so the no-commit check stays quiet) while its speculative
// successors can never be promoted — the stuck-epoch livelock shape. The spin
// is a serial divide chain so the livelocked cycles are mostly pipeline
// stalls, keeping the test's wall time low without changing the shape.
const stuckEpochSrc = `
        .text
main:   li   t0, 0
        li   t3, 1
loop:   detach cont
spin:   div  t1, t1, t3
        j    spin
        reattach cont
cont:   addi t0, t0, 1
        li   t2, 8
        blt  t0, t2, loop
        sync cont
        halt
`

// TestWatchdogStuckEpoch: a deliberately livelocked program must fail fast
// with a typed ProgressError under the default watchdog thresholds, orders of
// magnitude before the 200M-cycle limit.
func TestWatchdogStuckEpoch(t *testing.T) {
	prog := asm.MustAssemble("stuck", stuckEpochSrc)
	m, err := NewMachine(DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	var pe *ProgressError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want ProgressError", err)
	}
	if !errors.Is(err, ErrNoProgress) {
		t.Error("ProgressError does not wrap ErrNoProgress")
	}
	if pe.Kind != ProgressStuckEpoch {
		t.Errorf("kind = %s, want stuck-epoch", pe.Kind)
	}
	if st.Cycles >= 10_000_000 {
		t.Errorf("watchdog tripped only after %d cycles — not fast failure", st.Cycles)
	}
	// The snapshot must be usable for diagnosis: the epoch order, per-context
	// state, and a dominant stall class.
	snap := pe.Snapshot
	if len(snap.Order) < 2 {
		t.Errorf("snapshot order %v does not show the waiting successors", snap.Order)
	}
	if len(snap.Contexts) != DefaultConfig().Threadlets {
		t.Errorf("snapshot has %d contexts, want %d", len(snap.Contexts), DefaultConfig().Threadlets)
	}
	if snap.DominantStall == "" {
		t.Error("snapshot carries no dominant stall class")
	}
	if pe.Error() == "" || snap.String() == "" {
		t.Error("diagnostics render empty")
	}
}

// conflictStorm forces a false-positive conflict abort on every performed
// store, driving the squash-restart loop the livelock detector watches.
type conflictStorm struct{}

func (conflictStorm) ForceConflict(int64) bool                     { return true }
func (conflictStorm) SuppressConflict(int64) bool                  { return false }
func (conflictStorm) ForceOverflow(int64) bool                     { return false }
func (conflictStorm) KillThreadlet(int64, int) (int, bool)         { return 0, false }
func (conflictStorm) PoisonPack(int64, int, uint64) (uint64, bool) { return 0, false }
func (conflictStorm) FlipBranch(int64, int) bool                   { return false }
func (conflictStorm) Panic(int64) bool                             { return false }

// squashStormSrc is a hinted loop whose body performs a burst of stores, so a
// conflict-storm injector restarts the successor many times within a single
// architectural epoch.
const squashStormSrc = `
        .data
out:    .zero 64
        .text
main:   la   a0, out
        li   t0, 0
        li   t1, 32
loop:   detach cont
        sd   t0, 0(a0)
        sd   t0, 8(a0)
        sd   t0, 16(a0)
        sd   t0, 24(a0)
        sd   t0, 32(a0)
        sd   t0, 40(a0)
        sd   t0, 48(a0)
        sd   t0, 56(a0)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`

// TestWatchdogSquashLivelock: repeated squash-restarts of the same epoch
// start PC without an intervening retire must trip the squash-livelock
// detector once the (lowered) restart limit is crossed.
func TestWatchdogSquashLivelock(t *testing.T) {
	prog := asm.MustAssemble("storm", squashStormSrc)
	cfg := DefaultConfig()
	cfg.Watchdog.RestartLimit = 4
	m, err := NewMachine(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaultInjector(conflictStorm{})
	st, err := m.Run()
	var pe *ProgressError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want ProgressError", err)
	}
	if pe.Kind != ProgressSquashLivelock {
		t.Errorf("kind = %s, want squash-livelock", pe.Kind)
	}
	if pe.Snapshot.RestartStreak < 4 {
		t.Errorf("restart streak = %d, want >= 4", pe.Snapshot.RestartStreak)
	}
	if st.Cycles >= 1_000_000 {
		t.Errorf("livelock detected only after %d cycles", st.Cycles)
	}
}

// TestErrCycleLimit: with the watchdog disabled, a non-terminating but
// committing program runs to its cycle budget and returns ErrCycleLimit with
// the partial statistics.
func TestErrCycleLimit(t *testing.T) {
	prog := asm.MustAssemble("forever", `
        .text
main:   addi t0, t0, 1
        j    main
`)
	cfg := DefaultConfig()
	cfg.MaxCycles = 20_000
	cfg.Watchdog.Disable = true
	m, err := NewMachine(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
	if st.Cycles < 20_000 || st.ArchInsts == 0 {
		t.Errorf("partial stats implausible: %d cycles, %d insts", st.Cycles, st.ArchInsts)
	}

	// The same livelocked program that trips the watchdog must also be caught
	// by the cycle limit when the watchdog is off — the blunt backstop.
	stuck := asm.MustAssemble("stuck", stuckEpochSrc)
	m2, err := NewMachine(cfg, stuck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("watchdog-off livelock: err = %v, want ErrCycleLimit", err)
	}
}

// TestMemFaultStore: an architecturally-reached misaligned store must surface
// as a typed MemFault from Run, not a panic out of the memory model.
func TestMemFaultStore(t *testing.T) {
	prog := asm.MustAssemble("badstore", `
        .text
main:   li   a0, 3
        li   t0, 7
        sd   t0, 0(a0)
        halt
`)
	m, err := NewMachine(DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	var mf *MemFault
	if !errors.As(err, &mf) {
		t.Fatalf("err = %v, want MemFault", err)
	}
	if mf.Addr != 3 || mf.Size != 8 {
		t.Errorf("fault at addr %#x size %d, want 0x3 size 8", mf.Addr, mf.Size)
	}
}

// TestMemFaultLoad: a committed misaligned load faults the same way.
func TestMemFaultLoad(t *testing.T) {
	prog := asm.MustAssemble("badload", `
        .text
main:   li   a0, 5
        ld   t1, 0(a0)
        halt
`)
	m, err := NewMachine(DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	var mf *MemFault
	if !errors.As(err, &mf) {
		t.Fatalf("err = %v, want MemFault", err)
	}
	if mf.Addr != 5 || mf.Size != 8 {
		t.Errorf("fault at addr %#x size %d, want 0x5 size 8", mf.Addr, mf.Size)
	}
}
