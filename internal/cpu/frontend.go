package cpu

import (
	"loopfrog/internal/bpred"
	"loopfrog/internal/isa"
)

// instBytesForICache is the assumed instruction footprint for I-cache timing
// (a conventional RISC front end), independent of the serialised encoding.
const instBytesForICache = 4

// fetch runs the shared front end: up to Width instructions per cycle are
// fetched across live threadlets, oldest threadlet first, each into its own
// (duplicated) fetch queue.
func (m *Machine) fetch() {
	budget := m.cfg.Width
	for _, tid := range m.order {
		if budget == 0 {
			break
		}
		budget -= m.fetchOne(m.threads[tid], budget)
	}
}

func (m *Machine) fetchOne(t *threadlet, budget int) int {
	if t.fetchHalted || t.fetchWaitInst != nil || m.now < t.fetchReadyAt {
		return 0
	}
	count := 0
	// The fetch queue entry is occupied only after the front-end pipe; an
	// instruction spends FrontendDepth cycles in flight before it becomes
	// queue-resident, so the in-flight window adds depth*width of capacity.
	capacity := m.cfg.FetchQueue + m.cfg.FrontendDepth*m.cfg.Width
	for count < budget && len(t.fq) < capacity {
		pc := t.fetchPC
		if pc < 0 || pc >= len(m.code) {
			// Wrong-path fetch ran off the program; stall until redirected.
			return count
		}
		// Instruction cache timing, one lookup per line.
		lineTag := uint64(pc*instBytesForICache) / uint64(m.cfg.Hier.L1I.LineBytes)
		if !t.lineValid || lineTag != t.lineTagFetched {
			done := m.hier.Fetch(uint64(pc*instBytesForICache), m.now)
			t.lineTagFetched = lineTag
			t.lineValid = true
			if done > m.now+m.cfg.Hier.L1I.HitLatency {
				t.fetchReadyAt = done
				return count
			}
		}
		d := m.code[pc]
		inst := d.Inst
		fe := fetchEntry{pc: pc, inst: inst, meta: d.Meta, readyAt: m.now + int64(m.cfg.FrontendDepth)}
		next := pc + 1
		meta := d.Meta
		switch {
		case meta.IsBranch:
			st := m.bp.PredictBranch(t.id, pc)
			fe.pred, fe.hasPred = st, true
			fe.predTaken = st.Taken
			if m.inj != nil && m.inj.FlipBranch(m.now, pc) {
				fe.predTaken = !fe.predTaken
			}
			if fe.predTaken {
				next = int(inst.Imm)
			}
			fe.predTgt = next
		case inst.Op == isa.JAL:
			next = int(inst.Imm)
			if bpred.IsCall(inst) {
				m.bp.PushRAS(t.id, pc+1)
				fe.rasPushed = true
			}
			fe.predTgt = next
		case inst.Op == isa.JALR:
			switch {
			case bpred.IsReturn(inst):
				next = m.bp.PopRAS(t.id)
				fe.predTgt = next
			default:
				if bpred.IsCall(inst) {
					m.bp.PushRAS(t.id, pc+1)
					fe.rasPushed = true
				}
				if tgt, ok := m.bp.PredictIndirect(pc); ok {
					next = tgt
					fe.predTgt = next
				} else {
					// No target prediction: fetch stalls until the jump
					// resolves in the back end.
					fe.predTgt = -1
					t.fq = append(t.fq, fe)
					t.fetchPC = -1 // poisoned until resolution
					count++
					return count
				}
			}
		case inst.Op == isa.HALT:
			t.fq = append(t.fq, fe)
			t.fetchHalted = true
			t.haltSeen = true
			return count + 1
		}
		t.fq = append(t.fq, fe)
		t.fetchPC = next
		count++
	}
	return count
}

// redirectFetch points a threadlet's front end at pc, discarding fetched but
// not yet dispatched entries and charging the refill penalty.
func (m *Machine) redirectFetch(t *threadlet, pc int) {
	t.fq = t.fq[:0]
	t.fetchPC = pc
	t.fetchReadyAt = m.now + int64(m.cfg.FrontendDepth)
	t.fetchWaitInst = nil
	t.lineValid = false
	// A wrong-path HALT (or reattach) may have latched the front end while
	// still sitting in the now-discarded fetch queue; a redirect always
	// resumes fetching.
	t.fetchHalted = false
	t.haltSeen = false
	m.stats.RedirectStalls++
}
