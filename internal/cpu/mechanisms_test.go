package cpu

import (
	"testing"

	"loopfrog/internal/asm"
	"loopfrog/internal/core"
	"loopfrog/internal/isa"
	"loopfrog/internal/ref"
)

// Targeted tests for individual LoopFrog mechanisms.

// chainLoop builds a loop whose body is a long serial chain writing out[i],
// parameterised for the mechanism tests.
func chainLoop(iters, chain int) *asm.Program {
	b := asm.NewBuilder("chain")
	b.Sym("out").Zero(8 * iters)
	b.Label("main").
		La(isa.X(10), "out").
		Li(isa.X(8), 0).
		Li(isa.X(9), int64(iters))
	b.Label("loop").
		OpImm(isa.SLLI, isa.X(6), isa.X(8), 3).
		Op(isa.ADD, isa.X(6), isa.X(10), isa.X(6))
	b.Hint(isa.DETACH, "cont")
	b.OpImm(isa.ADDI, isa.X(28), isa.X(8), 1)
	for k := 0; k < chain; k++ {
		b.OpImm(isa.SLLI, isa.X(29), isa.X(28), 1).
			Op(isa.ADD, isa.X(28), isa.X(28), isa.X(29))
	}
	b.Store(isa.SD, isa.X(28), isa.X(6), 0)
	b.Hint(isa.REATTACH, "cont")
	b.Label("cont").
		OpImm(isa.ADDI, isa.X(8), isa.X(8), 1).
		Branch(isa.BLT, isa.X(8), isa.X(9), "loop")
	b.Hint(isa.SYNC, "cont")
	b.Li(isa.X(6), 0).Li(isa.X(28), 0).Li(isa.X(29), 0)
	b.Halt()
	return b.MustBuild()
}

func TestDependencyChainLoopSpeedsUp(t *testing.T) {
	// Iterations of ~600 serial instructions: at most ~1.7 fit in the ROB,
	// so the baseline runs ~1.7 chains at once while LoopFrog runs 4 (§6.4.1
	// "cutting dependency chains").
	prog := chainLoop(40, 300)
	base, lf := runBoth(t, prog)
	sp := float64(base.Cycles) / float64(lf.Cycles)
	if sp < 1.3 {
		t.Errorf("dependency-chain speedup = %.2f, want >= 1.3", sp)
	}
}

func TestPerThreadletWindowCapPreventsStarvation(t *testing.T) {
	// With the occupancy cap removed (simulated by a single huge threadlet
	// share), an old epoch's chain would hog the IQ. Here we just assert the
	// shipped configuration keeps all four threadlets simultaneously alive
	// for a significant fraction of a chain-heavy loop.
	prog := chainLoop(40, 300)
	m, err := NewMachine(DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, c := range st.LiveCycles {
		total += c
	}
	if frac := float64(st.LiveCycles[3]) / float64(total); frac < 0.3 {
		t.Errorf("4-threadlet occupancy = %.2f, want >= 0.3 on independent chains", frac)
	}
}

func TestSSBOverflowStallsAndRecovers(t *testing.T) {
	// A 64-byte slice (2 lines) cannot hold an epoch's store set when
	// packing batches iterations; the drain must stall (not deadlock) and
	// the result must stay exact.
	prog := chainLoop(120, 20)
	cfg := DefaultConfig()
	cfg.SSB.SliceBytes = 64
	oracle := ref.MustRun(prog, ref.Options{})
	m, err := NewMachine(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if diff := oracle.Mem.Diff(m.Memory()); diff != "" {
		t.Fatalf("overflow handling corrupted memory:\n%s", diff)
	}
}

func TestPackingEngagesOnTinyIterations(t *testing.T) {
	prog := chainLoop(600, 1)
	m, err := NewMachine(DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.PackedSpawns == 0 {
		t.Error("packing never engaged on a tiny strided loop")
	}
	if m.Packer().MeanFactor() < 2 {
		t.Errorf("mean packing factor = %.1f, want >= 2", m.Packer().MeanFactor())
	}
}

func TestRegionMonitorDeselectsLowTrip(t *testing.T) {
	// Many invocations of a trip-2 loop: after warmup the monitor must stop
	// spawning (tiny retired epochs), bounding the spawn count well below
	// one per iteration.
	b := asm.NewBuilder("lowtrip")
	b.Sym("out").Zero(8 * 4096)
	b.Label("main").
		La(isa.X(10), "out").
		Li(isa.X(18), 0). // outer index
		Li(isa.X(19), 1000)
	b.Label("outer").
		Li(isa.X(8), 0).
		Li(isa.X(9), 2)
	b.Label("loop").
		OpImm(isa.SLLI, isa.X(6), isa.X(8), 3).
		Op(isa.ADD, isa.X(6), isa.X(10), isa.X(6))
	b.Hint(isa.DETACH, "cont")
	b.OpImm(isa.ADDI, isa.X(28), isa.X(8), 7)
	b.Store(isa.SD, isa.X(28), isa.X(6), 0)
	b.Hint(isa.REATTACH, "cont")
	b.Label("cont").
		OpImm(isa.ADDI, isa.X(8), isa.X(8), 1).
		Branch(isa.BLT, isa.X(8), isa.X(9), "loop")
	b.Hint(isa.SYNC, "cont")
	b.OpImm(isa.ADDI, isa.X(18), isa.X(18), 1).
		Branch(isa.BLT, isa.X(18), isa.X(19), "outer")
	b.Li(isa.X(6), 0).Li(isa.X(28), 0).Li(isa.X(8), 0).Li(isa.X(9), 0)
	b.Halt()
	prog := b.MustBuild()

	st := runMachine(t, DefaultConfig(), prog)
	if st.Spawns > st.Detaches/3 {
		t.Errorf("monitor did not throttle: %d spawns for %d detaches", st.Spawns, st.Detaches)
	}
}

func TestPackVerifyRepairsWithoutSquash(t *testing.T) {
	// An IV with a conditional bump every 64 iterations: the strided
	// predictor is confident, occasionally wrong, and the §4.3 verification
	// must repair or squash — never corrupt.
	b := asm.NewBuilder("bumpy")
	b.Sym("out").Zero(8 * 4096)
	b.Label("main").
		La(isa.X(10), "out").
		Li(isa.X(8), 0).  // i
		Li(isa.X(20), 0). // k: bumpy IV
		Li(isa.X(9), 2000)
	b.Label("loop").
		OpImm(isa.SLLI, isa.X(6), isa.X(8), 3).
		Op(isa.ADD, isa.X(6), isa.X(10), isa.X(6))
	b.Hint(isa.DETACH, "cont")
	b.Op(isa.ADD, isa.X(28), isa.X(20), isa.X(8)).
		Store(isa.SD, isa.X(28), isa.X(6), 0)
	b.Hint(isa.REATTACH, "cont")
	b.Label("cont").
		OpImm(isa.ADDI, isa.X(20), isa.X(20), 3). // k += 3 always
		OpImm(isa.ANDI, isa.X(29), isa.X(8), 63).
		Branch(isa.BNE, isa.X(29), isa.X(0), "nobump").
		OpImm(isa.ADDI, isa.X(20), isa.X(20), 100). // occasional bump
		Label("nobump").
		OpImm(isa.ADDI, isa.X(8), isa.X(8), 1).
		Branch(isa.BLT, isa.X(8), isa.X(9), "loop")
	b.Hint(isa.SYNC, "cont")
	b.Li(isa.X(6), 0).Li(isa.X(28), 0).Li(isa.X(29), 0)
	b.Halt()
	prog := b.MustBuild()
	runBoth(t, prog) // exactness is the assertion
}

func TestBloomDetectorConfigurationRuns(t *testing.T) {
	prog := chainLoop(60, 10)
	cfg := DefaultConfig()
	cfg.BloomBits = 4096
	cfg.BloomHashes = 4
	runMachine(t, cfg, prog)
}

func TestWithWidthScalesResources(t *testing.T) {
	cfg := DefaultConfig().WithWidth(4)
	if cfg.Width != 4 {
		t.Fatalf("width = %d", cfg.Width)
	}
	if cfg.ALUs >= DefaultConfig().ALUs {
		t.Error("ALUs did not scale down")
	}
	if cfg.LoadPipes < 1 || cfg.StorePipes < 1 {
		t.Error("pipes scaled below 1")
	}
}

func TestFalseSharingGranuleConflict(t *testing.T) {
	// Byte stores from adjacent iterations into the same 4-byte granule:
	// partial-granule fill reads enter the read set (§4.1.1) and can
	// conflict; whatever the timing, the result must stay exact.
	b := asm.NewBuilder("falseshare")
	b.Sym("buf").Zero(4096)
	b.Label("main").
		La(isa.X(10), "buf").
		Li(isa.X(8), 0).
		Li(isa.X(9), 512)
	b.Label("loop").
		Op(isa.ADD, isa.X(6), isa.X(10), isa.X(8))
	b.Hint(isa.DETACH, "cont")
	b.OpImm(isa.ANDI, isa.X(28), isa.X(8), 0xff).
		Store(isa.SB, isa.X(28), isa.X(6), 0)
	b.Hint(isa.REATTACH, "cont")
	b.Label("cont").
		OpImm(isa.ADDI, isa.X(8), isa.X(8), 1).
		Branch(isa.BLT, isa.X(8), isa.X(9), "loop")
	b.Hint(isa.SYNC, "cont")
	b.Li(isa.X(6), 0).Li(isa.X(28), 0)
	b.Halt()
	prog := b.MustBuild()
	base, lf := runBoth(t, prog)
	_ = base
	_ = lf

	// With cache-line granules the same program must still be exact, just
	// with more conflicts.
	cfg := DefaultConfig()
	cfg.SSB.GranuleBytes = 32
	runMachine(t, cfg, prog)
}

func TestSquashCausesAreCounted(t *testing.T) {
	// The serial-accumulator loop guarantees cross-threadlet RAW conflicts
	// (or monitor de-selection after some).
	prog := asm.MustAssemble("serial", `
        .data
cell:   .quad 0
        .text
main:   la   a0, cell
        li   t0, 0
        li   t1, 400
loop:   detach cont
        ld   t3, 0(a0)
        addi t3, t3, 2
        sd   t3, 0(a0)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        li   t3, 0
        halt
`)
	st := runMachine(t, DefaultConfig(), prog)
	if st.Spawns > 0 && st.Squashes[int(core.SquashConflict)] == 0 && st.Spawns > 10 {
		t.Errorf("sustained spawning (%d) with no conflicts on a serial dependence", st.Spawns)
	}
}
