// Package cpu implements the cycle-level out-of-order superscalar core model
// and, composed with internal/core, the full LoopFrog machine (§4, Table 1).
//
// The model is a timing-directed simulator with dataflow-faithful functional
// execution: every dynamic instruction computes its result at execute time
// from operand values propagated through the renamed dataflow, and loads
// read memory through the SSB's multi-version logic at the cycle they
// execute. Timing therefore genuinely determines which values speculative
// threadlets observe, which is exactly the property thread-level speculation
// rests on — conflicts, forwarding and squashes arise from the schedule, not
// from an oracle.
//
// Deliberate simplifications (documented in DESIGN.md): wrong-path fetch
// after a branch misprediction is modelled as lost fetch slots plus a
// front-end refill penalty rather than executed wrong-path work, and rename
// recovery walks the ROB.
package cpu

import (
	"loopfrog/internal/bpred"
	"loopfrog/internal/core"
	"loopfrog/internal/mem"
)

// Config describes one core configuration (Table 1 defaults).
type Config struct {
	// Width is the pipeline width: fetch, rename/dispatch and commit
	// bandwidth per cycle (8 in Table 1; figure 1 sweeps it).
	Width int
	// FrontendDepth is the fetch-to-rename latency in cycles; it is also
	// the refill penalty after a branch misprediction redirect.
	FrontendDepth int

	// Shared back-end structure sizes (dynamically partitioned between
	// threadlets, Table 1).
	ROBSize    int
	IQSize     int
	LQSize     int
	SQSize     int
	IntRegs    int
	FPRegs     int
	FetchQueue int // per-threadlet (duplicated)

	// Functional unit counts per class (Table 1: 7 ALU+Branch, 2
	// ALU+Mul+Div, 4 SIMD+FP of which 2 Div/Sqrt, 4 Load, 2 Store).
	ALUs       int // simple-ALU-capable pipes (the 7 ALU+Branch + 2 Mul pipes)
	Branches   int // branch-capable pipes
	MulDivs    int
	FPs        int
	FPDivs     int
	LoadPipes  int
	StorePipes int

	// Threadlets is the number of threadlet contexts (1 disables LoopFrog
	// spawning entirely — the baseline core).
	Threadlets int
	// SpawnLatency is the front-end start-up cost of a new threadlet.
	SpawnLatency int64

	// LoopFrog components.
	SSB     core.SSBConfig
	Pack    core.PackConfig
	Monitor core.MonitorConfig
	// BloomBits/BloomHashes select the Bloom-filter conflict detector when
	// BloomBits > 0; otherwise exact sets model the idealised filter.
	BloomBits, BloomHashes int
	// ConflictCheckLatency is the background checking delay added before a
	// threadlet commits (Table 1: 4 cycles).
	ConflictCheckLatency int64

	// Predictor and memory system.
	BPred bpred.Config
	Hier  mem.HierConfig

	// MaxCycles bounds the simulation (0 = default).
	MaxCycles int64

	// MaxArchInsts, when non-zero, stops the run cleanly (no error, Stats
	// valid, Halted false) once that many instructions have become
	// architectural: a sampled-simulation window. Because threadlet promotion
	// commits epochs in bulk, the run may overshoot by up to an epoch; the
	// sampling driver measures with the actual ArchInsts, not the budget.
	MaxArchInsts uint64
	// WarmupInsts, when non-zero, marks the end of a window's detailed warmup:
	// the cycle and instruction count at which ArchInsts first reaches it are
	// recorded in Stats.WarmupEndCycle/WarmupEndInsts, and the sampling driver
	// measures IPC over the post-warmup remainder only. Both fields are part
	// of a run's behavioural identity and therefore of the run-cache key.
	WarmupInsts uint64

	// Watchdog tunes the forward-progress watchdog (watchdog.go). The zero
	// value means the default thresholds; set Watchdog.Disable to turn the
	// checks off.
	Watchdog WatchdogConfig

	// RegionLedger enables per-region speculation attribution (region.go):
	// every spawn, squash, promote, restart, pack verification and commit
	// slot is additionally charged to the ledger of its epoch region, with
	// totals reconciling exactly against the global counters. DefaultConfig
	// enables it; the measured cost is well under 2% of simulation
	// throughput (BENCH_overhead.json).
	RegionLedger bool

	// SpectreAnalysis enables the speculative-leak detector (spectre.go):
	// loads executed inside a transient window (wrong-path between a branch's
	// dispatch and its resolution, or anywhere in a pre-promotion speculative
	// threadlet) taint their results; taint propagates through the renamed
	// dataflow and through SSB granules; and a transient load whose address
	// derives from a tainted value is recorded as a leak candidate when it
	// reaches the cache hierarchy — confirmed as a leak if the access is
	// later squashed, because then the architectural program never performed
	// it yet the cache state changed. Detection is metadata-only: it never
	// alters timing or architectural results.
	SpectreAnalysis bool
	// DelaySpeculativeLoadDeps enables the ShadowBinding-style mitigation:
	// the result of a load executed inside a transient window is withheld
	// from its dependents until the load is safe (its threadlet is
	// architectural and no older control flow in it is unresolved). The
	// load's own cache access still happens — only the forwarding edge is
	// delayed — so a transiently-loaded secret can never choose the address
	// of a second access. Purely a timing change: architectural results are
	// unaffected. Implies the taint bookkeeping of SpectreAnalysis.
	DelaySpeculativeLoadDeps bool
}

// DefaultConfig returns the Table 1 machine: 4 GHz 8-wide core with four
// threadlet contexts and the headline SSB/conflict-detector parameters.
func DefaultConfig() Config {
	robSize := 1024
	return Config{
		Width:         8,
		FrontendDepth: 8,

		ROBSize:    robSize,
		IQSize:     384,
		LQSize:     256,
		SQSize:     256,
		IntRegs:    1024,
		FPRegs:     768,
		FetchQueue: 32,

		ALUs:       9, // 7 ALU+Branch plus 2 ALU+Mul+Div pipes
		Branches:   7,
		MulDivs:    2,
		FPs:        4,
		FPDivs:     2,
		LoadPipes:  4,
		StorePipes: 2,

		Threadlets:   4,
		SpawnLatency: 4,

		SSB:                  core.DefaultSSBConfig(),
		Pack:                 core.DefaultPackConfig(robSize),
		Monitor:              core.DefaultMonitorConfig(),
		ConflictCheckLatency: 4,

		BPred: bpred.DefaultConfig(),
		Hier:  mem.DefaultHierConfig(),

		MaxCycles: 200_000_000,

		RegionLedger: true,
	}
}

// BaselineConfig returns the same core with LoopFrog disabled (hints are
// NOPs): a single threadlet context, no SSB spawning. This is the paper's
// baseline run.
func BaselineConfig() Config {
	cfg := DefaultConfig()
	cfg.Threadlets = 1
	cfg.Pack.Enabled = false
	return cfg
}

// WithWidth returns a copy of cfg scaled to a different front-end width,
// used by the figure 1 sweep. Back-end FU counts scale proportionally.
func (c Config) WithWidth(w int) Config {
	cfg := c
	scale := func(n int) int {
		v := n * w / c.Width
		if v < 1 {
			v = 1
		}
		return v
	}
	cfg.Width = w
	cfg.ALUs = scale(c.ALUs)
	cfg.Branches = scale(c.Branches)
	cfg.MulDivs = scale(c.MulDivs)
	cfg.FPs = scale(c.FPs)
	cfg.FPDivs = scale(c.FPDivs)
	cfg.LoadPipes = scale(c.LoadPipes)
	cfg.StorePipes = scale(c.StorePipes)
	return cfg
}
