package cpu

import (
	"loopfrog/internal/core"
	"loopfrog/internal/isa"
)

// dispatch renames and dispatches up to Width instructions per cycle from
// the per-threadlet fetch queues into the shared back end. Older threadlets
// have allocation priority (§4): when the oldest runnable threadlet blocks
// on a shared structural resource, younger threadlets may not steal it.
func (m *Machine) dispatch() {
	budget := m.cfg.Width
	m.dispatchSnap = append(m.dispatchSnap[:0], m.order...)
	snapshot := m.dispatchSnap
	for _, tid := range snapshot {
		if budget == 0 {
			return
		}
		t := m.threads[tid]
		if !t.live || m.orderIdx(tid) < 0 {
			continue // squashed by an older threadlet's hint this cycle
		}
		for budget > 0 && len(t.fq) > 0 && t.live {
			fe := t.fq[0]
			if fe.readyAt > m.now {
				break // still in the front-end pipe
			}
			if m.delayDetachForPacking(t, fe) {
				break
			}
			ok, shared := m.dispatchOne(t, fe)
			if !ok {
				if shared {
					return // structural stall: block younger threadlets too
				}
				break
			}
			// A reattach epoch-end clears the fetch queue from inside
			// dispatchOne; only pop when entries remain.
			if len(t.fq) > 0 {
				t.fq = t.fq[1:]
			}
			budget--
		}
	}
}

// dispatchOne renames one instruction. It returns ok=false when the
// instruction cannot dispatch this cycle; shared=true marks a shared
// structural resource as the cause.
func (m *Machine) dispatchOne(t *threadlet, fe fetchEntry) (ok, shared bool) {
	meta := fe.meta
	if m.robUsed >= m.cfg.ROBSize {
		return false, true
	}
	live := len(m.order)
	if live > 1 {
		// Cap each threadlet's share of the shared windows so one epoch's
		// long dependency chain cannot starve the others.
		if t.robHeld >= m.cfg.ROBSize/live {
			return false, false
		}
		if t.iqHeld >= m.cfg.IQSize/live {
			return false, false
		}
	}
	needsIQ := meta.Class != isa.ClassNop
	if needsIQ && m.iqUsed >= m.cfg.IQSize {
		return false, true
	}
	if meta.IsLoad && m.lqUsed >= m.cfg.LQSize {
		return false, true
	}
	if meta.IsStore && m.sqUsed >= m.cfg.SQSize {
		return false, true
	}
	hasDest := meta.HasRd && fe.inst.Rd != isa.X0
	if hasDest {
		if fe.inst.Rd.IsFP() {
			if m.fpRegsUsed >= m.cfg.FPRegs-isa.NumRegs {
				return false, true
			}
		} else if m.intRegsUsed >= m.cfg.IntRegs-isa.NumRegs {
			return false, true
		}
	}

	e := &dynInst{
		tid:        t.id,
		seq:        t.seqCounter,
		pc:         fe.pc,
		inst:       fe.inst,
		meta:       meta,
		hasDest:    hasDest,
		destReg:    fe.inst.Rd,
		pred:       fe.pred,
		hasPred:    fe.hasPred,
		predTaken:  fe.predTaken,
		predTarget: fe.predTgt,
		rasPushed:  fe.rasPushed,
		spawnedTid: -1,
		memSize:    meta.MemBytes,
	}
	t.seqCounter++
	if m.spectreLive && (meta.IsBranch || fe.inst.Op == isa.JALR) {
		t.ctlDispatched(e.seq)
	}

	// Operand capture through the rename map.
	capture := func(slot int, r isa.Reg) {
		if r == isa.X0 && !r.IsFP() {
			e.srcReady[slot] = true
			return
		}
		me := t.renameMap[r]
		if me.prod == nil {
			e.srcReady[slot] = true
			e.srcVal[slot] = me.val
			e.srcTaint[slot] = me.taint
			if t.startConsumable(r) {
				t.consumedStart[r] = true
			}
			return
		}
		if me.prod.state >= stDone && !me.prod.wakeHeld {
			e.srcReady[slot] = true
			e.srcVal[slot] = me.prod.result
			e.srcTaint[slot] = me.prod.taint
			return
		}
		e.srcProd[slot] = me.prod
		me.prod.waiters = append(me.prod.waiters, e)
	}
	e.srcReady[0], e.srcReady[1] = true, true
	if meta.HasRs1 {
		e.srcReady[0] = false
		capture(0, fe.inst.Rs1)
	}
	if meta.HasRs2 {
		e.srcReady[1] = false
		capture(1, fe.inst.Rs2)
	}

	if hasDest {
		e.oldMap = t.renameMap[e.destReg]
		t.renameMap[e.destReg] = mapEntry{prod: e}
		if e.destReg.IsFP() {
			m.fpRegsUsed++
		} else {
			m.intRegsUsed++
		}
	}

	m.robUsed++
	t.robHeld++
	t.rob = append(t.rob, e)
	if needsIQ {
		m.iqUsed++
		t.iqHeld++
	}
	if meta.IsLoad {
		m.lqUsed++
		e.addrValid = false
	}
	if meta.IsStore {
		m.sqUsed++
	}

	switch {
	case meta.IsHint:
		m.handleHint(t, e)
		e.state = stDone
		e.readyAt = m.now
	case meta.Class == isa.ClassNop: // NOP, HALT
		e.state = stDone
		e.readyAt = m.now
	default:
		e.state = stDispatched
		if e.srcReady[0] && e.srcReady[1] {
			m.enqueueReady(e)
		}
	}
	// Epoch membership is decided here, after hint effects: a spawning detach
	// opens the region for itself and younger instructions only.
	e.dispRegion = t.activeRegion
	return true, false
}

// startConsumable reports whether register r still carries the threadlet's
// inherited starting value (for the packing repair decision, §4.3).
func (t *threadlet) startConsumable(r isa.Reg) bool {
	return !t.regWritten(r)
}

func (t *threadlet) regWritten(r isa.Reg) bool { return t.writtenMask[r] }

// handleHint implements the dispatch-time semantics of §3.1: detach may fork
// a threadlet, reattach ends the epoch of a detached threadlet, and sync
// cancels the speculative successors on a loop exit. A threadlet detached on
// region C ignores all hints except reattach C and sync C.
func (m *Machine) handleHint(t *threadlet, e *dynInst) {
	region := e.inst.Imm
	e.prevRegion = t.activeRegion
	e.prevDetached = t.detached
	e.prevSkip = t.skipReattach
	e.prevVerify = t.pendingVerify
	switch e.inst.Op {
	case isa.DETACH:
		m.stats.Detaches++
		if m.regionOn {
			m.ledger(region).Detaches++
		}
		if t.activeRegion >= 0 && t.activeRegion != region {
			m.stats.HintNops++ // inner region while detached on another
			return
		}
		if t.detached {
			// Already has a successor. With packing, the first detach seen
			// with no skips left is the verification point (§4.3).
			if t.pendingVerify && t.skipReattach == 0 {
				e.wasSyncExit = false
				e.endsEpoch = false
				e.spawnedTid = -1
				e.verifyPoint()
			} else {
				m.stats.HintNops++
			}
			return
		}
		m.trySpawn(t, e, region)
	case isa.REATTACH:
		if t.activeRegion == region && t.detached {
			if t.skipReattach > 0 {
				t.skipReattach--
				return
			}
			// Epoch ends here: the threadlet has caught up to its
			// successor's starting point and halts (§3.1).
			e.endsEpoch = true
			t.hasEpochEnd = true
			t.epochEndSeq = e.seq
			t.epochEndPC = e.pc
			t.fetchHalted = true
			t.fq = t.fq[:0]
			return
		}
		m.stats.HintNops++
	case isa.SYNC:
		if t.activeRegion == region {
			// The loop exited: all successors were misspeculation (§3.1).
			if n := m.squashSuccessors(t, core.SquashSync); n > 0 {
				m.stats.SyncCancels += uint64(n)
			}
			e.wasSyncExit = true
			t.activeRegion = -1
			t.detached = false
			t.skipReattach = 0
			t.pendingVerify = false
			return
		}
		m.stats.HintNops++
	}
}

// verifyPoint marks a detach as the packing verification point; the check
// itself runs at the instruction's threadlet commit, when the actual
// register values are architectural for the threadlet.
func (e *dynInst) verifyPoint() { e.endsEpoch = false; e.isVerifyPoint = true }

// maxDetachWait bounds how long a pack-candidate detach may stall in the
// front end waiting for its induction variables to resolve.
const maxDetachWait = 8

// delayDetachForPacking reports whether the detach at the head of t's fetch
// queue should wait a little for its IV values (§4.3's value predictor needs
// concrete inputs). Without the wait, tight loops dispatch the detach in the
// same cycle as the IV update and packing could never engage.
func (m *Machine) delayDetachForPacking(t *threadlet, fe fetchEntry) bool {
	if fe.inst.Op != isa.DETACH || !m.cfg.Pack.Enabled || m.cfg.Threadlets <= 1 {
		return false
	}
	region := fe.inst.Imm
	if t.detached || (t.activeRegion >= 0 && t.activeRegion != region) || m.mon.Disabled(region) {
		return false
	}
	ivs := m.pack.IVs(region)
	if len(ivs) == 0 {
		return false
	}
	free := false
	for i, ct := range m.threads {
		if !ct.live && m.contextFreeAt[i] <= m.now {
			free = true
			break
		}
	}
	if !free {
		return false
	}
	_, resolved := t.regSnapshot()
	for _, iv := range ivs {
		if !resolved[iv] {
			if t.detachWait < maxDetachWait {
				t.detachWait++
				return true
			}
			return false // waited long enough; spawn unpacked
		}
	}
	return false
}

// trySpawn attempts to fork a successor threadlet at a detach (§3.1, §4.3).
func (m *Machine) trySpawn(t *threadlet, e *dynInst, region int64) {
	if m.cfg.Threadlets <= 1 {
		m.stats.HintNops++
		return
	}
	free := -1
	for i, ct := range m.threads {
		if !ct.live && m.contextFreeAt[i] <= m.now {
			free = i
			break
		}
	}
	if free < 0 {
		m.stats.DetachNoContext++
		if m.regionOn {
			m.ledger(region).DetachNoContext++
		}
		return
	}
	if !m.mon.Allow(region) {
		m.stats.HintNops++
		return
	}

	// Iteration packing decision (§4.3): train the stride predictor with
	// this spawn point (spawns occur in epoch order), then pack only when
	// every IV register's value is already resolved at the detach, so the
	// successor can start from concrete predicted values.
	factor := 1
	var predicted [isa.NumRegs]uint64
	snapshot, resolved := t.regSnapshot()
	if m.cfg.Pack.Enabled {
		allConcrete := true
		for _, iv := range m.pack.IVs(region) {
			if !resolved[iv] {
				allConcrete = false
				break
			}
		}
		if allConcrete {
			m.pack.TrainStride(region, &snapshot, &resolved)
			factor, predicted = m.pack.Decide(region, &snapshot)
			if factor > 1 && m.inj != nil {
				for _, iv := range m.pack.IVs(region) {
					if v, ok := m.inj.PoisonPack(m.now, int(iv), predicted[iv]); ok {
						predicted[iv] = v
					}
				}
			}
		}
	}
	t.detachWait = 0

	nt := m.threads[free]
	m.spawnInto(t, nt, int(region), factor, &predicted)
	t.activeRegion = region
	t.detached = true
	t.skipReattach = factor - 1
	t.pendingVerify = factor > 1
	t.epochFactor = ipmax(t.epochFactor, 1) // parent now covers `factor` iterations
	t.epochFactor = factor
	if factor > 1 {
		t.predictedStart = predicted
		m.stats.PackedSpawns++
	}
	e.spawnedTid = nt.id
	m.stats.Spawns++
	if m.regionOn {
		lg := m.ledger(region)
		lg.Spawns++
		if factor > 1 {
			lg.PackedSpawns++
		}
	}
	m.emitEvent(EvSpawn, nt.id, region, factor)
}

func ipmax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// regSnapshot returns the threadlet's current speculative register values
// where resolved, with a mask of which registers are concrete.
func (t *threadlet) regSnapshot() (vals [isa.NumRegs]uint64, resolved [isa.NumRegs]bool) {
	for r := 0; r < isa.NumRegs; r++ {
		me := t.renameMap[r]
		switch {
		case me.prod == nil:
			vals[r], resolved[r] = me.val, true
		case me.prod.state >= stDone && !me.prod.wakeHeld:
			vals[r], resolved[r] = me.prod.result, true
		}
	}
	return vals, resolved
}

// spawnInto initialises a fresh threadlet context as the successor epoch of
// parent, starting at the region's continuation address. The successor
// inherits the parent's register state at the detach — resolved values
// directly, unresolved ones as dataflow futures — exactly the rename-map
// copy of §4.
func (m *Machine) spawnInto(parent, nt *threadlet, contPC int, factor int, predicted *[isa.NumRegs]uint64) {
	m.gens[nt.id]++
	*nt = threadlet{
		id:           nt.id,
		live:         true,
		fetchPC:      contPC,
		fetchReadyAt: m.now + m.cfg.SpawnLatency,
		activeRegion: int64(contPC),
		homeRegion:   int64(contPC),
		epochStartPC: contPC,
		spawnedAt:    m.now,
		ckptGHR:      m.bp.History(parent.id),
	}
	// IV overrides for packed spawns.
	overridden := [isa.NumRegs]bool{}
	if factor > 1 {
		for _, iv := range m.pack.IVs(int64(contPC)) {
			overridden[iv] = true
		}
	}
	for r := 0; r < isa.NumRegs; r++ {
		if overridden[r] {
			nt.renameMap[r] = mapEntry{val: predicted[r]}
			nt.ckptRegs[r] = predicted[r]
			nt.committedRegs[r] = predicted[r]
			if parent.startConsumable(isa.Reg(r)) {
				// The predicted value is a function (via the stride
				// predictor's snapshot) of the parent's current register
				// value: the start value escaped into the successor's
				// prediction, so it counts as consumed (see below).
				parent.consumedStart[r] = true
			}
			continue
		}
		me := parent.renameMap[r]
		if me.prod != nil && me.prod.state >= stDone && !me.prod.wakeHeld {
			me = mapEntry{val: me.prod.result, taint: me.prod.taint}
		}
		nt.renameMap[r] = me
		if me.prod == nil {
			nt.ckptRegs[r] = me.val
			nt.ckptTaint[r] = me.taint
			nt.committedRegs[r] = me.val
			if parent.startConsumable(isa.Reg(r)) {
				// Handing an inherited start value on to a successor is a
				// consumption: if the §4.3 verification later finds this
				// register mispredicted, a silent repair of this threadlet
				// could no longer reach the copy the successor took, so
				// packVerify must squash instead (the repair-escape hazard).
				parent.consumedStart[r] = true
			}
		} else {
			nt.ckptPending[r] = me.prod
			me.prod.ckptWaiters = append(me.prod.ckptWaiters, ckptWaiter{tid: nt.id, reg: isa.Reg(r), gen: m.gens[nt.id]})
		}
	}
	m.bp.SetHistory(nt.id, nt.ckptGHR)
	m.bp.CopyRAS(nt.id, parent.id)
	if len(m.order) == 1 {
		// The architectural epoch just acquired its first speculative
		// successor: start the watchdog's stuck-epoch clock (watchdog.go).
		m.specSince = m.now
	}
	m.order = append(m.order, nt.id)
}
