package cpu

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"loopfrog/internal/asm"
	"loopfrog/internal/isa"
	"loopfrog/internal/ref"
	"loopfrog/internal/workloads"
)

// genHintedLoop is the shared contract-correct random loop generator; it
// lives in internal/workloads so the fault-injection differential fuzzer can
// draw from the same program distribution as these property tests.
func genHintedLoop(rng *rand.Rand) *asm.Program {
	return workloads.RandomHintedLoop(rng)
}

func TestRandomHintedLoopsPreserveSemantics(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		prog := genHintedLoop(rng)
		oracle := ref.MustRun(prog, ref.Options{})
		for _, mode := range []struct {
			name string
			cfg  Config
		}{
			{"baseline", BaselineConfig()},
			{"loopfrog", DefaultConfig()},
			{"loopfrog-nopack", func() Config { c := DefaultConfig(); c.Pack.Enabled = false; return c }()},
			{"loopfrog-2t", func() Config { c := DefaultConfig(); c.Threadlets = 2; return c }()},
			{"loopfrog-tinyssb", func() Config { c := DefaultConfig(); c.SSB.SliceBytes = 128; return c }()},
		} {
			m, err := NewMachine(mode.cfg, prog)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, mode.name, err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, mode.name, err)
			}
			regs := m.FinalRegs()
			for r := 0; r < isa.NumRegs; r++ {
				if regs[r] != oracle.Regs[r] {
					t.Fatalf("trial %d %s: reg %s = %#x, want %#x",
						trial, mode.name, isa.Reg(r), regs[r], oracle.Regs[r])
				}
			}
			if diff := oracle.Mem.Diff(m.Memory()); diff != "" {
				t.Fatalf("trial %d %s: memory differs:\n%s", trial, mode.name, diff)
			}
		}
	}
}

// TestRandomSnoopStorm injects random external coherence traffic during
// LoopFrog runs; final state must still match the reference (§4.1.4).
func TestRandomSnoopStorm(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		prog := genHintedLoop(rng)
		oracle := ref.MustRun(prog, ref.Options{})
		m, err := NewMachine(DefaultConfig(), prog)
		if err != nil {
			t.Fatal(err)
		}
		arr := prog.MustSymbol("arr")
		for i := 0; i < 2_000_000 && !m.halted; i++ {
			m.cycle()
			if i%500 == 250 {
				m.ExternalSnoop(arr+uint64(rng.Intn(512))*8, rng.Intn(2) == 0)
			}
		}
		if !m.halted {
			t.Fatalf("trial %d: did not halt under snoop storm", trial)
		}
		if diff := oracle.Mem.Diff(m.Memory()); diff != "" {
			t.Fatalf("trial %d: memory differs under snoops:\n%s", trial, diff)
		}
	}
}

// TestDeterminism: two runs of the same configuration must produce identical
// cycle counts and statistics.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	prog := genHintedLoop(rng)
	run := func() Stats {
		m, err := NewMachine(DefaultConfig(), prog)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return *st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func ExampleMachine() {
	prog := asm.MustAssemble("example", `
        .data
xs:     .quad 1, 2, 3, 4, 5, 6, 7, 8
ys:     .zero 64
        .text
main:   la   a0, xs
        la   a1, ys
        li   t0, 0
        li   t1, 8
loop:   slli t2, t0, 3
        add  t3, a0, t2
        add  t4, a1, t2
        detach cont
        ld   t5, 0(t3)
        mul  t5, t5, t5
        sd   t5, 0(t4)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`)
	m, err := NewMachine(DefaultConfig(), prog)
	if err != nil {
		panic(err)
	}
	if _, err := m.Run(); err != nil {
		panic(err)
	}
	fmt.Println(m.Memory().Read(prog.MustSymbol("ys")+7*8, 8))
	// Output: 64
}
