package cpu

import (
	"fmt"
	"math/rand"
	"testing"

	"loopfrog/internal/asm"
	"loopfrog/internal/isa"
	"loopfrog/internal/ref"
)

// genHintedLoop emits a random but contract-correct LoopFrog loop program:
// the body consumes only header-computed registers and writes only memory;
// all register LCDs sit in the continuation. A fraction of body accesses
// alias a shared cell, producing genuine cross-iteration memory dependences
// that must be detected and recovered. Body temporaries are normalised
// before halt so the full register file must match sequential execution.
func genHintedLoop(rng *rand.Rand) *asm.Program {
	trip := 8 + rng.Intn(200)
	bodyOps := 1 + rng.Intn(8)
	aliasPct := rng.Intn(40) // % of iterations touching the shared cell
	stride := []int{8, 16, 24}[rng.Intn(3)]

	b := asm.NewBuilder("randloop")
	b.Sym("arr")
	vals := make([]uint64, 512)
	for i := range vals {
		vals[i] = rng.Uint64() % 1000
	}
	b.Quad(vals...)
	b.Sym("out").Zero(8 * 512)
	b.Sym("cell").Quad(uint64(rng.Intn(50)))

	// Registers: s0 = i (IV, continuation-updated), s1 = trip, a0 = arr,
	// a1 = out, a2 = cell; header computes t0 = &arr[i*stride'], t1 = &out[..];
	// body uses t2..t4 as temps.
	b.Label("main").
		La(isa.X(10), "arr").
		La(isa.X(11), "out").
		La(isa.X(12), "cell").
		Li(isa.X(8), 0).
		Li(isa.X(9), int64(trip))
	b.Label("loop").
		Li(isa.X(7), int64(stride)).
		Op(isa.MUL, isa.X(5), isa.X(8), isa.X(7)).
		Op(isa.ADD, isa.X(5), isa.X(10), isa.X(5)).
		OpImm(isa.SLLI, isa.X(6), isa.X(8), 3).
		Op(isa.ADD, isa.X(6), isa.X(11), isa.X(6))
	b.Hint(isa.DETACH, "cont")
	// Body: random dataflow over t2 (x28), seeded from a load.
	b.Load(isa.LD, isa.X(28), isa.X(5), 0)
	for k := 0; k < bodyOps; k++ {
		switch rng.Intn(5) {
		case 0:
			b.OpImm(isa.ADDI, isa.X(28), isa.X(28), int64(rng.Intn(100)))
		case 1:
			b.OpImm(isa.XORI, isa.X(28), isa.X(28), int64(rng.Intn(256)))
		case 2:
			b.Op(isa.MUL, isa.X(28), isa.X(28), isa.X(28))
		case 3:
			b.OpImm(isa.SRLI, isa.X(28), isa.X(28), int64(1+rng.Intn(3)))
		case 4:
			b.OpImm(isa.SLLI, isa.X(28), isa.X(28), 1)
		}
	}
	if aliasPct > 0 {
		// Iterations where i % 100 < aliasPct also read-modify-write the
		// shared cell: a true serial memory dependence.
		b.Li(isa.X(29), 100).
			Op(isa.REM, isa.X(29), isa.X(8), isa.X(29)).
			Li(isa.X(30), int64(aliasPct)).
			Branch(isa.BGE, isa.X(29), isa.X(30), "noalias").
			Load(isa.LD, isa.X(31), isa.X(12), 0).
			Op(isa.ADD, isa.X(31), isa.X(31), isa.X(28)).
			Store(isa.SD, isa.X(31), isa.X(12), 0).
			Label("noalias")
	}
	b.Store(isa.SD, isa.X(28), isa.X(6), 0)
	b.Hint(isa.REATTACH, "cont")
	b.Label("cont").
		OpImm(isa.ADDI, isa.X(8), isa.X(8), 1).
		Branch(isa.BLT, isa.X(8), isa.X(9), "loop")
	b.Hint(isa.SYNC, "cont")
	// Normalise dead body/header temps.
	for _, r := range []int{5, 6, 7, 28, 29, 30, 31} {
		b.Li(isa.X(r), 0)
	}
	b.Halt()
	return b.MustBuild()
}

func TestRandomHintedLoopsPreserveSemantics(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		prog := genHintedLoop(rng)
		oracle := ref.MustRun(prog, ref.Options{})
		for _, mode := range []struct {
			name string
			cfg  Config
		}{
			{"baseline", BaselineConfig()},
			{"loopfrog", DefaultConfig()},
			{"loopfrog-nopack", func() Config { c := DefaultConfig(); c.Pack.Enabled = false; return c }()},
			{"loopfrog-2t", func() Config { c := DefaultConfig(); c.Threadlets = 2; return c }()},
			{"loopfrog-tinyssb", func() Config { c := DefaultConfig(); c.SSB.SliceBytes = 128; return c }()},
		} {
			m, err := NewMachine(mode.cfg, prog)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, mode.name, err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, mode.name, err)
			}
			regs := m.FinalRegs()
			for r := 0; r < isa.NumRegs; r++ {
				if regs[r] != oracle.Regs[r] {
					t.Fatalf("trial %d %s: reg %s = %#x, want %#x",
						trial, mode.name, isa.Reg(r), regs[r], oracle.Regs[r])
				}
			}
			if diff := oracle.Mem.Diff(m.Memory()); diff != "" {
				t.Fatalf("trial %d %s: memory differs:\n%s", trial, mode.name, diff)
			}
		}
	}
}

// TestRandomSnoopStorm injects random external coherence traffic during
// LoopFrog runs; final state must still match the reference (§4.1.4).
func TestRandomSnoopStorm(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		prog := genHintedLoop(rng)
		oracle := ref.MustRun(prog, ref.Options{})
		m, err := NewMachine(DefaultConfig(), prog)
		if err != nil {
			t.Fatal(err)
		}
		arr := prog.MustSymbol("arr")
		for i := 0; i < 2_000_000 && !m.halted; i++ {
			m.cycle()
			if i%500 == 250 {
				m.ExternalSnoop(arr+uint64(rng.Intn(512))*8, rng.Intn(2) == 0)
			}
		}
		if !m.halted {
			t.Fatalf("trial %d: did not halt under snoop storm", trial)
		}
		if diff := oracle.Mem.Diff(m.Memory()); diff != "" {
			t.Fatalf("trial %d: memory differs under snoops:\n%s", trial, diff)
		}
	}
}

// TestDeterminism: two runs of the same configuration must produce identical
// cycle counts and statistics.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	prog := genHintedLoop(rng)
	run := func() Stats {
		m, err := NewMachine(DefaultConfig(), prog)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return *st
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func ExampleMachine() {
	prog := asm.MustAssemble("example", `
        .data
xs:     .quad 1, 2, 3, 4, 5, 6, 7, 8
ys:     .zero 64
        .text
main:   la   a0, xs
        la   a1, ys
        li   t0, 0
        li   t1, 8
loop:   slli t2, t0, 3
        add  t3, a0, t2
        add  t4, a1, t2
        detach cont
        ld   t5, 0(t3)
        mul  t5, t5, t5
        sd   t5, 0(t4)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`)
	m, err := NewMachine(DefaultConfig(), prog)
	if err != nil {
		panic(err)
	}
	if _, err := m.Run(); err != nil {
		panic(err)
	}
	fmt.Println(m.Memory().Read(prog.MustSymbol("ys")+7*8, 8))
	// Output: 64
}
