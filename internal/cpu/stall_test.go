package cpu

import (
	"testing"

	"loopfrog/internal/asm"
)

// TestCommitSlotAttributionSums checks the attribution invariant on both the
// baseline and LoopFrog machines: every commit-bandwidth slot of every cycle
// lands in exactly one SlotClass, so the counters sum to Cycles x Width.
func TestCommitSlotAttributionSums(t *testing.T) {
	prog := asm.MustAssemble("hinted", hintedMapSrc)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"baseline", BaselineConfig()},
		{"loopfrog", DefaultConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := runMachine(t, tc.cfg, prog)
			var sum uint64
			for _, c := range st.CommitSlots {
				sum += c
			}
			want := uint64(st.Cycles) * uint64(tc.cfg.Width)
			if sum != want {
				t.Fatalf("commit slots sum to %d, want Cycles(%d) x Width(%d) = %d\nbreakdown: %v",
					sum, st.Cycles, tc.cfg.Width, want, st.CommitSlots)
			}
			if st.CommitSlots[SlotRetiredArch] != st.ArchCommitCycleSum {
				t.Errorf("retired-arch slots %d != ArchCommitCycleSum %d",
					st.CommitSlots[SlotRetiredArch], st.ArchCommitCycleSum)
			}
			if st.CommitSlots[SlotRetiredArch] == 0 {
				t.Error("no slots attributed to architectural retirement")
			}
		})
	}
}

// TestCommitSlotSpecAttribution checks that the LoopFrog run attributes
// slots to speculative retirement while the baseline never does.
func TestCommitSlotSpecAttribution(t *testing.T) {
	prog := asm.MustAssemble("hinted", hintedMapSrc)
	base := runMachine(t, BaselineConfig(), prog)
	if base.CommitSlots[SlotRetiredSpec] != 0 {
		t.Errorf("baseline retired %d speculative slots", base.CommitSlots[SlotRetiredSpec])
	}
	lf := runMachine(t, DefaultConfig(), prog)
	if lf.CommitSlots[SlotRetiredSpec] == 0 {
		t.Error("LoopFrog run attributed no slots to speculative retirement")
	}
}

func TestSlotClassNames(t *testing.T) {
	seen := map[string]bool{}
	for c := SlotClass(0); int(c) < NumSlotClasses; c++ {
		name := c.String()
		if name == "" || name == "unknown" {
			t.Errorf("class %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate class name %q", name)
		}
		seen[name] = true
	}
	if SlotClass(NumSlotClasses).String() != "unknown" {
		t.Error("out-of-range class should be unknown")
	}
	if SlotClassNames() != [NumSlotClasses]string{
		"retired-arch", "retired-spec", "frontend-stall", "rob-full", "iq-full",
		"lsq-full", "ssb-overflow", "squash-drain", "exec-latency", "store-drain",
	} {
		t.Errorf("slot class names changed: %v (trace/metric consumers depend on these)", SlotClassNames())
	}
}

// TestSlotSamplerDeltas checks that the per-interval sampler partitions the
// same totals the Stats accumulate, and that FlushSlotSample delivers the
// residual tail.
func TestSlotSamplerDeltas(t *testing.T) {
	prog := asm.MustAssemble("hinted", hintedMapSrc)
	m, err := NewMachine(DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	var got [NumSlotClasses]uint64
	samples := 0
	lastCycle := int64(-1)
	m.SetSlotSampler(64, func(cycle int64, delta [NumSlotClasses]uint64) {
		samples++
		if cycle <= lastCycle {
			t.Fatalf("sampler cycles not increasing: %d after %d", cycle, lastCycle)
		}
		lastCycle = cycle
		for i, d := range delta {
			got[i] += d
		}
	})
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	m.FlushSlotSample()
	if samples < 2 {
		t.Fatalf("only %d samples over %d cycles at interval 64", samples, st.Cycles)
	}
	if got != st.CommitSlots {
		t.Fatalf("sampled deltas %v != accumulated %v", got, st.CommitSlots)
	}
}

// TestSlotSamplerDisabled checks the nil path: no sampler, no callbacks, and
// attribution still accumulates.
func TestSlotSamplerDisabled(t *testing.T) {
	prog := asm.MustAssemble("hinted", hintedMapSrc)
	m, err := NewMachine(DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	m.SetSlotSampler(0, nil)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	m.FlushSlotSample() // must be a no-op without a sampler
	var sum uint64
	for _, c := range st.CommitSlots {
		sum += c
	}
	if sum == 0 {
		t.Fatal("attribution disabled along with the sampler; it must always accumulate")
	}
}

// TestSquashDrainAttribution forces squashes via a cross-iteration memory
// conflict and checks the recovery window is attributed.
func TestSquashDrainAttribution(t *testing.T) {
	// Each iteration reads the previous iteration's store — a guaranteed
	// cross-threadlet RAW conflict under speculation.
	src := `
        .data
arr:    .zero 8192
        .text
main:   la   a0, arr
        li   t0, 1
        li   t1, 512
        sd   t1, 0(a0)
loop:   slli t2, t0, 3
        add  t3, a0, t2
        detach cont
        ld   t4, -8(t3)
        addi t4, t4, 3
        sd   t4, 0(t3)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        li   t4, 0
        li   t2, 0
        li   t3, 0
        halt
`
	prog := asm.MustAssemble("chain", src)
	cfg := DefaultConfig()
	cfg.Pack.Enabled = false
	st := runMachine(t, cfg, prog)
	if st.Squashes[0] == 0 { // SquashConflict
		t.Skip("workload produced no conflicts; attribution untestable here")
	}
	if st.CommitSlots[SlotSquashDrain] == 0 {
		t.Errorf("conflicts squashed %d threadlets but no squash-drain slots attributed; slots: %v",
			st.Squashes[0], st.CommitSlots)
	}
}
