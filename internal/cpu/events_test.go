package cpu

import (
	"testing"

	"loopfrog/internal/asm"
)

func TestEventHookTimeline(t *testing.T) {
	prog := asm.MustAssemble("hinted", hintedMapSrc)
	m, err := NewMachine(DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	m.SetEventHook(func(e Event) { events = append(events, e) })
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var spawns, retires, promotes uint64
	lastCycle := int64(-1)
	for _, e := range events {
		if e.Cycle < lastCycle {
			t.Fatalf("events out of order: %v after cycle %d", e, lastCycle)
		}
		lastCycle = e.Cycle
		switch e.Kind {
		case EvSpawn:
			spawns++
			if e.Detail < 1 {
				t.Errorf("spawn with packing factor %d", e.Detail)
			}
		case EvRetire:
			retires++
		case EvPromote:
			promotes++
		}
		if e.Kind.String() == "unknown" {
			t.Errorf("unnamed event kind %d", e.Kind)
		}
	}
	if spawns != st.Spawns {
		t.Errorf("spawn events %d != stats %d", spawns, st.Spawns)
	}
	if retires != st.Retires {
		t.Errorf("retire events %d != stats %d", retires, st.Retires)
	}
	if promotes != retires {
		t.Errorf("promotes %d != retires %d (every retire promotes a successor)", promotes, retires)
	}
	if len(events) > 0 && events[0].String() == "" {
		t.Error("event String empty")
	}
}

func TestEventHookDisabled(t *testing.T) {
	prog := asm.MustAssemble("hinted", hintedMapSrc)
	m, err := NewMachine(DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	m.SetEventHook(nil) // must be a no-op
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
