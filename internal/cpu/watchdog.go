package cpu

import (
	"fmt"
	"strings"
)

// Forward-progress watchdog. The cycle limit (ErrCycleLimit) is a blunt
// backstop: a livelocked run burns its entire 200M-cycle budget before
// anything notices. The watchdog instead detects the three livelock shapes
// the speculation machinery can produce — an architectural threadlet that
// stops committing, an epoch that never retires while successors wait, and a
// squash/restart loop stuck on one epoch start PC — and fails fast with a
// typed ProgressError carrying a diagnostic snapshot of the machine.

// WatchdogConfig tunes the forward-progress watchdog. The zero value is
// normalised to the defaults by NewMachine; set Disable to turn every check
// off (only MaxCycles then bounds the run).
type WatchdogConfig struct {
	// Disable turns the watchdog off entirely.
	Disable bool
	// NoCommitWindow is the maximum number of cycles the architectural
	// threadlet may go without committing an instruction.
	NoCommitWindow int64
	// EpochWindow is the maximum number of cycles the architectural
	// threadlet may stay architectural while speculative successors exist —
	// an epoch that never reattaches (e.g. an infinite loop inside a detach
	// region) trips this long before the cycle limit.
	EpochWindow int64
	// RestartLimit is the maximum number of consecutive squash-restarts of
	// the same epoch start PC without an intervening threadlet retire.
	RestartLimit int
}

// Watchdog default thresholds. NoCommitWindow preserves the historical
// hard-coded no-progress bound; EpochWindow and RestartLimit sit orders of
// magnitude above anything the benchmark suite produces (epochs are loop
// iterations, thousands of cycles at most) while staying far below the
// 200M-cycle budget.
const (
	DefaultNoCommitWindow = 1_000_000
	DefaultEpochWindow    = 2_000_000
	DefaultRestartLimit   = 4096
)

// Normalized fills zero fields with the default thresholds. NewMachine
// applies it; sim.CanonicalConfig applies it too so a zero-value and an
// explicitly-defaulted watchdog share one run-cache key.
func (w WatchdogConfig) Normalized() WatchdogConfig {
	if w.NoCommitWindow == 0 {
		w.NoCommitWindow = DefaultNoCommitWindow
	}
	if w.EpochWindow == 0 {
		w.EpochWindow = DefaultEpochWindow
	}
	if w.RestartLimit == 0 {
		w.RestartLimit = DefaultRestartLimit
	}
	return w
}

// ProgressKind classifies a watchdog trip.
type ProgressKind int

// Watchdog trip kinds.
const (
	// ProgressNoCommit: the architectural threadlet committed nothing for
	// NoCommitWindow cycles — always a model bug, never a workload property.
	ProgressNoCommit ProgressKind = iota
	// ProgressStuckEpoch: the architectural threadlet kept speculative
	// successors waiting for EpochWindow cycles without retiring its epoch
	// (an epoch that never reattaches).
	ProgressStuckEpoch
	// ProgressSquashLivelock: the same epoch start PC was squash-restarted
	// RestartLimit times in a row without a retire in between.
	ProgressSquashLivelock
)

// String names the trip kind.
func (k ProgressKind) String() string {
	switch k {
	case ProgressNoCommit:
		return "no-commit"
	case ProgressStuckEpoch:
		return "stuck-epoch"
	case ProgressSquashLivelock:
		return "squash-livelock"
	}
	return "unknown"
}

// ContextSnap is one threadlet context's state in a diagnostic snapshot.
type ContextSnap struct {
	Tid      int
	Live     bool
	Spec     bool // live and not architectural
	FetchPC  int
	ROBHead  int // PC of the oldest in-flight instruction, -1 if none
	ROBInsts int
	DrainLen int
	Region   int64
	Detached bool
	Stalled  bool // drain stalled on SSB overflow or a deferred mem fault
}

// Snapshot is the machine state captured when the watchdog trips, for
// diagnosis without re-running the simulation.
type Snapshot struct {
	Cycle          int64
	LastArchCommit int64
	// SpecSince is the cycle the current architectural epoch acquired its
	// speculative successors (reset at every retire/promote).
	SpecSince int64
	ArchTid   int
	ArchInsts uint64
	Order     []int
	Contexts  []ContextSnap
	// DominantStall is the commit-slot class (stall.go) that consumed the
	// most slots so far — the run's dominant bottleneck.
	DominantStall string
	// RestartPC/RestartStreak describe the squash-restart loop for
	// ProgressSquashLivelock trips.
	RestartPC     int
	RestartStreak int
}

// String renders the snapshot as a multi-line diagnostic.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d  arch-tid %d  arch-insts %d  last-commit %d  spec-since %d  dominant-stall %s\n",
		s.Cycle, s.ArchTid, s.ArchInsts, s.LastArchCommit, s.SpecSince, s.DominantStall)
	fmt.Fprintf(&b, "epoch order %v", s.Order)
	if s.RestartStreak > 0 {
		fmt.Fprintf(&b, "  restart streak %d @ pc %d", s.RestartStreak, s.RestartPC)
	}
	b.WriteByte('\n')
	for _, c := range s.Contexts {
		state := "idle"
		switch {
		case c.Live && c.Spec:
			state = "spec"
		case c.Live:
			state = "arch"
		}
		fmt.Fprintf(&b, "  t%d %-4s fetch-pc %-6d rob-head %-6d rob %-4d drain %-3d region %-4d",
			c.Tid, state, c.FetchPC, c.ROBHead, c.ROBInsts, c.DrainLen, c.Region)
		if c.Detached {
			b.WriteString(" detached")
		}
		if c.Stalled {
			b.WriteString(" drain-stalled")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ProgressError is the typed watchdog failure: the machine stopped making
// forward progress long before MaxCycles. It wraps ErrNoProgress so existing
// errors.Is checks keep working, and carries a Snapshot for diagnosis.
type ProgressError struct {
	Kind     ProgressKind
	Cycle    int64
	Snapshot Snapshot
}

func (e *ProgressError) Error() string {
	switch e.Kind {
	case ProgressStuckEpoch:
		return fmt.Sprintf("cpu: watchdog: epoch stuck at cycle %d — architectural threadlet %d held %d speculative successor(s) for %d cycles without retiring",
			e.Cycle, e.Snapshot.ArchTid, len(e.Snapshot.Order)-1, e.Cycle-e.Snapshot.SpecSince)
	case ProgressSquashLivelock:
		return fmt.Sprintf("cpu: watchdog: squash livelock at cycle %d — epoch start pc %d restarted %d times without a retire",
			e.Cycle, e.Snapshot.RestartPC, e.Snapshot.RestartStreak)
	}
	return fmt.Sprintf("cpu: watchdog: no architectural commit since cycle %d (now %d)",
		e.Snapshot.LastArchCommit, e.Cycle)
}

// Unwrap makes errors.Is(err, ErrNoProgress) match every watchdog trip.
func (e *ProgressError) Unwrap() error { return ErrNoProgress }

// progressError builds a ProgressError of the given kind at the current
// cycle, capturing the diagnostic snapshot.
func (m *Machine) progressError(kind ProgressKind) *ProgressError {
	return &ProgressError{Kind: kind, Cycle: m.now, Snapshot: m.snapshot()}
}

// snapshot captures the diagnostic machine state for ProgressError.
func (m *Machine) snapshot() Snapshot {
	s := Snapshot{
		Cycle:          m.now,
		LastArchCommit: m.lastArchCommit,
		SpecSince:      m.specSince,
		ArchTid:        m.archTid(),
		ArchInsts:      m.stats.ArchInsts,
		Order:          append([]int(nil), m.order...),
		DominantStall:  m.dominantStall(),
		RestartPC:      m.lastRestartPC,
		RestartStreak:  m.restartStreak,
	}
	for _, t := range m.threads {
		c := ContextSnap{
			Tid:      t.id,
			Live:     t.live,
			Spec:     t.live && m.archTid() != t.id,
			FetchPC:  t.fetchPC,
			ROBHead:  -1,
			ROBInsts: len(t.rob),
			DrainLen: len(t.drain),
			Region:   t.activeRegion,
			Detached: t.detached,
			Stalled:  t.overflowStalled || t.drainFaulted,
		}
		if len(t.rob) > 0 {
			c.ROBHead = t.rob[0].pc
		}
		s.Contexts = append(s.Contexts, c)
	}
	return s
}

// dominantStall returns the name of the commit-slot class with the highest
// count so far.
func (m *Machine) dominantStall() string {
	best := 0
	for i := 1; i < NumSlotClasses; i++ {
		if m.stats.CommitSlots[i] > m.stats.CommitSlots[best] {
			best = i
		}
	}
	return SlotClass(best).String()
}

// noteRestart feeds the squash-livelock detector: restart of the same epoch
// start PC extends the streak; any other PC resets it. When the streak
// exceeds the limit the error is latched for Run to return (squashes happen
// deep inside pipeline stages, so the trip is deferred to the cycle edge).
func (m *Machine) noteRestart(startPC int) {
	if startPC == m.lastRestartPC {
		m.restartStreak++
	} else {
		m.lastRestartPC = startPC
		m.restartStreak = 1
	}
	if m.restartStreak >= m.wd.RestartLimit && !m.wd.Disable && m.wdErr == nil {
		m.wdErr = m.progressError(ProgressSquashLivelock)
	}
}
