package cpu

// Per-region speculation attribution. When Config.RegionLedger is enabled
// the machine charges every hint-flow event (detach, spawn, squash, restart,
// retire, promote, pack verification) and every commit-bandwidth slot to the
// ledger of the epoch region it belongs to, alongside the existing global
// counters. The ledger totals reconcile *exactly* with the global counters —
// the same invariant the commit-slot stall attributor enforces — so a
// per-loop profitability report is a direct output of the run rather than a
// quantity estimated after the fact (ReconcileRegions is the checked form).
//
// Attribution rules:
//
//   - Hint-site counters (Detaches, Spawns, PackedSpawns, DetachNoContext)
//     charge the region named by the hint.
//   - Squash counters charge the victim threadlet's home region — the region
//     the epoch was spawned for, which survives a speculative sync loop exit
//     clearing the active region — so every squash lands in a real region.
//   - Retires charge the retiring architectural epoch's region; Promotes and
//     SpecWon charge the promoted successor's home region.
//   - Retired commit slots charge the committing instruction's dispatch
//     region; idle (stall) slots charge the architectural threadlet's active
//     region, since its progress is the program's. Region -1 collects
//     everything outside any region.

import (
	"errors"
	"fmt"

	"loopfrog/internal/core"
)

// RegionOutside is the pseudo-region ID collecting commit slots spent
// outside any epoch region.
const RegionOutside int64 = -1

// regionNone is the ledger-cache sentinel: no region ID ever takes this
// value (region IDs are continuation PCs, or RegionOutside).
const regionNone = int64(-1) << 62

// RegionLedger accumulates one region's speculation attribution. All
// counters are exact (never sampled); see the package comment above for what
// charges where and ReconcileRegions for the invariants.
type RegionLedger struct {
	// Region is the region ID (the continuation address the detach names),
	// or RegionOutside for the outside-any-region bucket.
	Region int64 `json:"region"`

	// Hint-site flow.
	Detaches        uint64 `json:"detaches"`
	Spawns          uint64 `json:"spawns"`
	PackedSpawns    uint64 `json:"packed_spawns"`
	DetachNoContext uint64 `json:"detach_no_context"`

	// Epoch outcomes.
	Retires  uint64 `json:"retires"`  // epochs retired while architectural
	Promotes uint64 `json:"promotes"` // speculative epochs promoted to architectural
	Restarts uint64 `json:"restarts"` // squash-and-restart recoveries

	// Squashes by cause, same layout as Stats.Squashes (core.SquashCause).
	Squashes [core.NumSquashCauses]uint64 `json:"squashes"`

	// Speculative instructions won and lost: SpecWon counts speculative
	// commits that reached architectural state at promotion, SpecLost counts
	// speculative commits discarded by squashes.
	SpecWon  uint64 `json:"spec_won"`
	SpecLost uint64 `json:"spec_lost"`

	// Iteration-packing accuracy (§4.3) at this region's verification points.
	PackVerifies    uint64 `json:"pack_verifies"`
	PackMispredicts uint64 `json:"pack_mispredicts"`
	PackRepairs     uint64 `json:"pack_repairs"`

	// Leaks counts confirmed speculative leaks (spectre.go) whose accessing
	// load dispatched in this region; the outside bucket collects wrong-path
	// leaks in straight-line code. Zero unless Config.SpectreAnalysis.
	Leaks uint64 `json:"leaks"`

	// Slots restricts the commit-slot attribution (stall.go) to this region;
	// summed across regions each class equals Stats.CommitSlots.
	Slots [NumSlotClasses]uint64 `json:"slots"`
}

// SquashTotal sums the squashes across causes.
func (l *RegionLedger) SquashTotal() uint64 {
	var n uint64
	for _, c := range l.Squashes {
		n += c
	}
	return n
}

// DominantStall returns the stall class holding the most of this region's
// non-retired slots, and its count. Returns (SlotExec, 0) when the region
// has no stall slots at all.
func (l *RegionLedger) DominantStall() (SlotClass, uint64) {
	best, bestN := SlotExec, uint64(0)
	for c := SlotClass(0); int(c) < NumSlotClasses; c++ {
		if c == SlotRetiredArch || c == SlotRetiredSpec {
			continue
		}
		if l.Slots[c] > bestN {
			best, bestN = c, l.Slots[c]
		}
	}
	return best, bestN
}

// PackAccuracy returns the fraction of pack verifications that passed, or 1
// when the region never verified.
func (l *RegionLedger) PackAccuracy() float64 {
	if l.PackVerifies == 0 {
		return 1
	}
	return 1 - float64(l.PackMispredicts)/float64(l.PackVerifies)
}

// ledger returns the ledger for region, creating it on first touch. The
// returned pointer is invalidated by the next ledger call (the backing slice
// may grow); callers charge it immediately and do not retain it. A one-entry
// cache makes the hot per-instruction and per-cycle charges a single compare
// in the common case.
func (m *Machine) ledger(region int64) *RegionLedger {
	if region != m.lastRegionID {
		idx, ok := m.regionIdx[region]
		if !ok {
			idx = len(m.stats.Regions)
			m.stats.Regions = append(m.stats.Regions, RegionLedger{Region: region})
			m.regionIdx[region] = idx
		}
		m.lastRegionID = region
		m.lastRegionIdx = idx
	}
	return &m.stats.Regions[m.lastRegionIdx]
}

// SquashTotal sums the run's squashes across causes.
func (s *Stats) SquashTotal() uint64 {
	var n uint64
	for _, c := range s.Squashes {
		n += c
	}
	return n
}

// RegionByID returns the ledger recorded for a region ID, or nil.
func (s *Stats) RegionByID(id int64) *RegionLedger {
	for i := range s.Regions {
		if s.Regions[i].Region == id {
			return &s.Regions[i]
		}
	}
	return nil
}

// ReconcileRegions checks every per-region ledger total against its global
// counter and returns a joined error describing all mismatches, or nil when
// the attribution is exact. It also enforces that the outside-region bucket
// holds nothing but commit slots: every spawn, squash, retire, promotion and
// pack event must have landed in a real region. Call it on the Stats of a
// completed run with Config.RegionLedger enabled; a run that recorded no
// ledgers (the flag off) fails with a distinguishable error.
func (s *Stats) ReconcileRegions() error {
	if len(s.Regions) == 0 {
		return errors.New("cpu: no region ledgers recorded (Config.RegionLedger disabled?)")
	}
	var sum RegionLedger
	var errs []error
	for i := range s.Regions {
		l := &s.Regions[i]
		sum.Detaches += l.Detaches
		sum.Spawns += l.Spawns
		sum.PackedSpawns += l.PackedSpawns
		sum.DetachNoContext += l.DetachNoContext
		sum.Retires += l.Retires
		sum.Promotes += l.Promotes
		sum.PackRepairs += l.PackRepairs
		sum.SpecWon += l.SpecWon
		sum.SpecLost += l.SpecLost
		sum.Leaks += l.Leaks
		for c := range l.Squashes {
			sum.Squashes[c] += l.Squashes[c]
		}
		for c := range l.Slots {
			sum.Slots[c] += l.Slots[c]
		}
		if l.Region == RegionOutside {
			if n := l.Detaches + l.Spawns + l.Retires + l.Promotes + l.Restarts +
				l.SquashTotal() + l.SpecWon + l.SpecLost + l.PackVerifies; n != 0 {
				errs = append(errs, fmt.Errorf("outside-region bucket holds %d non-slot events", n))
			}
		}
	}
	check := func(name string, got, want uint64) {
		if got != want {
			errs = append(errs, fmt.Errorf("region %s sum to %d, global counter is %d", name, got, want))
		}
	}
	check("Detaches", sum.Detaches, s.Detaches)
	check("Spawns", sum.Spawns, s.Spawns)
	check("PackedSpawns", sum.PackedSpawns, s.PackedSpawns)
	check("DetachNoContext", sum.DetachNoContext, s.DetachNoContext)
	check("Retires", sum.Retires, s.Retires)
	// Every retire promotes exactly one successor, so promoted epochs must
	// also sum to the retire count.
	check("Promotes", sum.Promotes, s.Retires)
	check("PackRepairs", sum.PackRepairs, s.PackRepairs)
	check("SpecWon", sum.SpecWon, s.SpecCommitCycleSum)
	check("SpecLost", sum.SpecLost, s.SpecCommitted)
	check("Leaks", sum.Leaks, s.Leaks)
	for c := range sum.Squashes {
		check("Squashes."+core.SquashCause(c).String(), sum.Squashes[c], s.Squashes[c])
	}
	for c := range sum.Slots {
		check("Slots."+SlotClass(c).String(), sum.Slots[c], s.CommitSlots[c])
	}
	return errors.Join(errs...)
}
