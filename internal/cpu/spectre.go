package cpu

// Speculative-leak tracking: the dynamic half of the LF3xx analysis (the
// static half is internal/lint's gadget pass). The model follows the
// taint-tracking line of Spectre defences (STT, ShadowBinding): a load that
// executes inside a *transient window* may observe a value the architectural
// program never reads, so its result is tainted; taint propagates through
// the renamed dataflow (operand capture, wakeup, spawn inheritance,
// checkpoint fills) and through SSB granules written by tainted store data.
// A transient load whose *address* is tainted is the classic second access
// of a bounds-check-bypass gadget: when it reaches the cache hierarchy it is
// recorded as a leak candidate, and if the access is later squashed it is
// confirmed as a leak — the cache changed state on behalf of an access the
// program never made.
//
// Two transient windows exist in this machine (§4):
//
//   - wrong-path: between a conditional branch's (or JALR's) dispatch and
//     its execute-time resolution, younger instructions of the same
//     threadlet may be down a mispredicted path (rollbackTo);
//   - epoch speculation: everything a speculative threadlet executes before
//     its promotion at tryRetire may be discarded by squashFrom.
//
// Config.DelaySpeculativeLoadDeps is the mitigation: a transient load's
// result is withheld from dependents (wakeHeld) until the load is safe —
// its threadlet architectural and no older control flow unresolved — at
// which point the taint is cleared and the wakeup delivered. Tainted values
// therefore never reach an address computation, and candidates drop to zero
// by construction; the cost is the extra latency on the held forwarding
// edges, measured per workload in BENCH_spectre.json.
//
// Everything here is gated on m.spectreLive: a machine without either knob
// set pays nothing on the hot paths.

import (
	"sort"

	"loopfrog/internal/isa"
)

// pendingLeak is a leak candidate that committed to a speculative threadlet
// and now rides with it: confirmed if the epoch squashes, dropped at
// promotion.
type pendingLeak struct {
	pc     int
	region int64
}

// transientAt reports whether an instruction of threadlet t with age seq is
// executing inside a transient window: the threadlet itself is speculative,
// or an older control instruction in the same threadlet is unresolved.
func (m *Machine) transientAt(t *threadlet, seq uint64) bool {
	return m.isSpec(t.id) || (len(t.ctlInFlight) > 0 && t.ctlInFlight[0] < seq)
}

// ctlDispatched records an unresolved control instruction. Seqs arrive in
// dispatch order, so the slice stays sorted oldest-first.
func (t *threadlet) ctlDispatched(seq uint64) {
	t.ctlInFlight = append(t.ctlInFlight, seq)
}

// ctlResolved removes a control instruction that reached writeback.
func (t *threadlet) ctlResolved(seq uint64) {
	for i, s := range t.ctlInFlight {
		if s == seq {
			t.ctlInFlight = append(t.ctlInFlight[:i], t.ctlInFlight[i+1:]...)
			return
		}
	}
}

// ctlSquashed drops the control instructions a rollback from fromSeq on
// removed from the pipeline. The slice is sorted, so everything from the
// first squashed entry can go.
func (t *threadlet) ctlSquashed(fromSeq uint64) {
	for i, s := range t.ctlInFlight {
		if s >= fromSeq {
			t.ctlInFlight = t.ctlInFlight[:i]
			return
		}
	}
}

// noteLeakCandidate records a transient load about to probe the cache with a
// taint-derived address. Guarded by e.leakCand at the call site so an MSHR
// replay of the same access counts once.
func (m *Machine) noteLeakCandidate(e *dynInst) {
	e.leakCand = true
	m.stats.LeakCandidates++
}

// confirmLeak upgrades a candidate whose access was squashed: the program
// never performed it, yet the hierarchy observed it.
func (m *Machine) confirmLeak(pc int, region int64) {
	m.stats.Leaks++
	if m.leakPCs == nil {
		m.leakPCs = make(map[int]uint64)
	}
	m.leakPCs[pc]++
	if m.regionOn {
		m.ledger(region).Leaks++
	}
}

// squashSpectre settles the leak-tracking state of a squashed instruction:
// candidates confirm (rollbackTo and purgeThreadlet call this on every
// victim).
func (m *Machine) squashSpectre(e *dynInst) {
	if e.leakCand {
		m.confirmLeak(e.pc, e.dispRegion)
	}
}

// promoteSpectre clears speculative taint when a threadlet is promoted to
// architectural: its committed state is now the program's, so candidates it
// carried were correct-path and its resolved values are no longer
// transiently sourced. In-flight instructions keep their taint — they can
// still be wrong-path within the now-architectural threadlet.
func (m *Machine) promoteSpectre(b *threadlet) {
	b.pendingLeaks = b.pendingLeaks[:0]
	b.ckptTaint = [isa.NumRegs]bool{}
	for r := range b.renameMap {
		if b.renameMap[r].prod == nil {
			b.renameMap[r].taint = false
		}
	}
}

// taintStoreGranules marks SSB granules written with tainted data, so a later
// speculative load combining them observes a tainted value.
func (m *Machine) taintStoreGranules(tid int, granules []uint64) {
	if m.ssbTaint[tid] == nil {
		m.ssbTaint[tid] = make(map[uint64]bool, 8)
	}
	for _, g := range granules {
		m.ssbTaint[tid][g] = true
	}
}

// granulesTainted reports whether any of the granules is taint-marked in any
// slice of the multi-version read chain.
func (m *Machine) granulesTainted(chain []int, granules []uint64) bool {
	for _, tid := range chain {
		set := m.ssbTaint[tid]
		if len(set) == 0 {
			continue
		}
		for _, g := range granules {
			if set[g] {
				return true
			}
		}
	}
	return false
}

// clearSSBTaint drops a slice's granule taint alongside ssb.Squash/Merge.
func (m *Machine) clearSSBTaint(tid int) {
	if m.spectreLive && m.ssbTaint[tid] != nil {
		m.ssbTaint[tid] = nil
	}
}

// releaseDelayedWakes delivers withheld load results whose transient window
// has closed: the threadlet is architectural and no older control flow in it
// is unresolved. Runs at the top of each cycle, before writeback, so a
// release and its dependents' issue are at least a cycle apart. Taint clears
// at release — the value is safe now — which is exactly why the mitigation
// eliminates leaks: no tainted value ever wakes an address computation.
//
// Deadlock-freedom: a held load only waits on (a) its threadlet reaching
// architectural state — driven by the retire chain, which never needs a
// held result in a *speculative* threadlet — and (b) strictly older control
// resolving, whose operand producers are older still, so by induction on
// age the oldest blocked chain always releases.
func (m *Machine) releaseDelayedWakes() {
	if len(m.delayedWake) == 0 {
		return
	}
	kept := m.delayedWake[:0]
	for _, e := range m.delayedWake {
		if e.squashed {
			continue // its dependents were squashed with it
		}
		t := m.threads[e.tid]
		if !m.isSpec(e.tid) && !(len(t.ctlInFlight) > 0 && t.ctlInFlight[0] < e.seq) {
			e.wakeHeld = false
			e.taint = false
			m.wake(e)
			continue
		}
		kept = append(kept, e)
	}
	m.delayedWake = kept
}

// LeakSite is one confirmed-leak program counter and its count.
type LeakSite struct {
	PC    int    `json:"pc"`
	Count uint64 `json:"count"`
}

// LeakReport summarises a run's speculative-leak detection: candidate and
// confirmed counts, held wakeups, and the confirmed sites by PC.
type LeakReport struct {
	Candidates   uint64     `json:"candidates"`
	Confirmed    uint64     `json:"confirmed"`
	DelayedWakes uint64     `json:"delayed_wakes"`
	Sites        []LeakSite `json:"sites,omitempty"`
}

// LeakReport returns the machine's speculative-leak summary. Meaningful once
// the run finished and only when Config.SpectreAnalysis (or the mitigation)
// was enabled.
func (m *Machine) LeakReport() LeakReport {
	rep := LeakReport{
		Candidates:   m.stats.LeakCandidates,
		Confirmed:    m.stats.Leaks,
		DelayedWakes: m.stats.DelayedWakes,
	}
	for pc, n := range m.leakPCs {
		rep.Sites = append(rep.Sites, LeakSite{PC: pc, Count: n})
	}
	sort.Slice(rep.Sites, func(i, j int) bool { return rep.Sites[i].PC < rep.Sites[j].PC })
	return rep
}
