package cpu

import "fmt"

// EventKind classifies threadlet lifecycle events (the dynamic view of
// figure 2: epochs spawning, leapfrogging, retiring, and being squashed).
type EventKind uint8

// Threadlet lifecycle events.
const (
	EvSpawn EventKind = iota
	EvRetire
	EvSquash
	EvPromote
	EvSyncCancel
	// EvRestart marks a squash that restarts the same context from its
	// checkpoint (§4: "load the checkpoint back in and restart it") — the
	// context stays live, unlike EvSquash, which recycles it.
	EvRestart
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvSpawn:
		return "spawn"
	case EvRetire:
		return "retire"
	case EvSquash:
		return "squash"
	case EvPromote:
		return "promote"
	case EvSyncCancel:
		return "sync-cancel"
	case EvRestart:
		return "restart"
	}
	return "unknown"
}

// Event is one threadlet lifecycle event.
type Event struct {
	Cycle int64
	Kind  EventKind
	// Tid is the threadlet context the event concerns.
	Tid int
	// Region is the region ID (continuation address), -1 if none. Squash,
	// sync-cancel, restart and promote events carry the threadlet's home
	// region — the region the epoch was spawned for — matching the per-region
	// ledger attribution even when a speculative sync exit already cleared
	// the active region.
	Region int64
	// Detail carries the packing factor for spawns and the squash cause for
	// squashes.
	Detail int
}

// String renders the event for timelines.
func (e Event) String() string {
	return fmt.Sprintf("cycle %8d  t%d %-11s region=%d detail=%d",
		e.Cycle, e.Tid, e.Kind, e.Region, e.Detail)
}

// SetEventHook installs a callback invoked at every threadlet lifecycle
// event. Pass nil to disable. The hook must not retain the machine.
func (m *Machine) SetEventHook(hook func(Event)) { m.eventHook = hook }

func (m *Machine) emitEvent(kind EventKind, tid int, region int64, detail int) {
	if m.eventHook != nil {
		m.eventHook(Event{Cycle: m.now, Kind: kind, Tid: tid, Region: region, Detail: detail})
	}
}
