package cpu

// Concurrent statistics snapshots. The machine's component stats are plain
// counters mutated freely on the run goroutine — instrumenting the hot path
// with atomics or locks would cost exactly what the pull-based telemetry
// design avoids. Instead the run loop publishes a coherent copy of every
// component statistic into a mutex-guarded buffer at the same throttled poll
// point that services context cancellation (every ctxCheckMask+1 cycles), and
// external readers only ever touch the published copy. A machine nobody
// snapshots skips the periodic republish entirely: the first SnapshotStats
// call arms it, and every RunContext exit republishes unconditionally so
// post-run snapshots are exact.

import (
	"loopfrog/internal/bpred"
	"loopfrog/internal/core"
	"loopfrog/internal/mem"
)

// StatsSnapshot is a coherent copy of every statistic the machine and its
// components expose, safe to read while the machine runs. The component
// fields are shallow by-value copies taken for their exported counters only;
// calling mutating methods on them is not supported.
type StatsSnapshot struct {
	CPU      Stats
	SSB      core.SSBStats
	Conflict core.ConflictDetector
	Pack     core.PackPredictor
	Monitor  core.RegionMonitor
	BPred    bpred.Predictor
	L1I      mem.CacheStats
	L1D      mem.CacheStats
	L2       mem.CacheStats
}

// publishStats refreshes the published snapshot from the live components.
// It must only be called from the goroutine driving the machine.
func (m *Machine) publishStats() {
	l1i, l1d, l2 := m.hier.Stats()
	snap := StatsSnapshot{
		CPU:      m.stats,
		SSB:      m.ssb.Stats,
		Conflict: *m.cd,
		Pack:     *m.pack,
		Monitor:  *m.mon,
		BPred:    *m.bp,
		L1I:      l1i,
		L1D:      l1d,
		L2:       l2,
	}
	snap.CPU.Cycles = m.now
	// The machine keeps appending to the live Regions slice; the snapshot
	// needs its own backing array to stay coherent for concurrent readers.
	if len(m.stats.Regions) > 0 {
		snap.CPU.Regions = append([]RegionLedger(nil), m.stats.Regions...)
	}
	m.pubMu.Lock()
	m.pub = snap
	m.pubMu.Unlock()
}

// SnapshotStats returns the most recently published coherent snapshot. It is
// safe for concurrent use while the machine runs: during a run the snapshot
// lags the live counters by at most the publish interval (~8k simulated
// cycles, far under a millisecond of wall time); once RunContext returns it
// is exact. On a machine that has never run it reflects the reset state.
func (m *Machine) SnapshotStats() StatsSnapshot {
	m.snapWanted.Store(true)
	m.pubMu.Lock()
	defer m.pubMu.Unlock()
	return m.pub
}
