package cpu

import (
	"loopfrog/internal/core"
	"loopfrog/internal/isa"
	"loopfrog/internal/mem"
)

// commit retires up to Width completed instructions per cycle to their
// threadlets, oldest threadlet first. This is the first of the paper's two
// commit levels: instructions commit to their threadlet; the threadlet
// itself commits to the architectural state at retire (§4).
func (m *Machine) commit() {
	budget := m.cfg.Width
	m.commitSnap = append(m.commitSnap[:0], m.order...)
	snapshot := m.commitSnap
	for _, tid := range snapshot {
		t := m.threads[tid]
		if !t.live || m.orderIdx(tid) < 0 {
			continue // squashed by an earlier threadlet's verify this cycle
		}
		for budget > 0 && len(t.rob) > 0 {
			e := t.rob[0]
			if e.state != stDone || e.wakeHeld {
				// A withheld load result (spectre.go mitigation) keeps its
				// ROB slot until the wakeup is released: a committed entry
				// could no longer be marked squashed, and the release
				// predicate needs the squash marker to stay sound.
				break
			}
			// Side-effecting operations must wait until the threadlet is
			// architectural (§3.2) and all earlier stores have performed.
			if e.inst.Op == isa.HALT && (m.isSpec(tid) || len(t.drain) > 0) {
				break
			}
			m.commitOne(t, e)
			budget--
			if m.memFault != nil {
				// The program faulted at this instruction: nothing younger
				// may commit (a HALT behind a faulting load must not halt
				// the machine before Run reports the fault).
				return
			}
		}
		if budget == 0 {
			return
		}
	}
}

// commitOne commits a single instruction to its threadlet.
func (m *Machine) commitOne(t *threadlet, e *dynInst) {
	e.state = stCommitted
	t.rob = t.rob[1:]
	m.robUsed--
	t.robHeld--
	arch := !m.isSpec(t.id)
	inRegion := e.dispRegion >= 0

	if e.hasDest {
		if e.destReg.IsFP() {
			m.fpRegsUsed--
		} else {
			m.intRegsUsed--
		}
		t.committedRegs[e.destReg] = e.result
		t.writtenMask[e.destReg] = true
		if arch {
			// Architectural commit closes every transient window the value
			// could have been sourced in: the taint dies here.
			e.taint = false
		}
	}
	if e.leakCand && !arch {
		// The candidate committed to a speculative epoch: it confirms if the
		// epoch squashes, and is dropped at promotion (spectre.go).
		t.pendingLeaks = append(t.pendingLeaks, pendingLeak{pc: e.pc, region: e.dispRegion})
	}
	if e.meta.IsLoad {
		m.lqUsed--
		if e.memFaulted {
			// The bad-address load is on the committed path. Architectural:
			// the program faults now. Speculative: defer — a later squash
			// discards it, promotion surfaces it (tryRetire).
			mf := &MemFault{PC: e.pc, Addr: e.addr, Size: e.memSize, Cycle: m.now,
				Err: mem.ValidateAccess(e.addr, e.memSize)}
			if arch {
				m.memFault = mf
			} else if t.memFault == nil {
				t.memFault = mf
			}
		}
	}
	if e.meta.IsStore {
		// The store performs later, from the post-commit drain queue; the
		// SQ entry is held until then.
		t.drain = append(t.drain, e)
	}
	if e.meta.IsBranch {
		m.stats.Branches++
		if e.mispredicted {
			m.stats.Mispredicts++
		}
		taken := e.result == 1
		m.bp.UpdateBranch(t.id, e.pc, taken, e.pred)
	}
	if e.inst.Op == isa.JALR {
		m.bp.UpdateIndirect(e.pc, e.actualTarget)
	}

	// Iteration-packing bookkeeping (§4.3): live-in detection over the
	// contiguous committed stream of the epoch, and training/verification at
	// committed detaches.
	if inRegion {
		region := e.dispRegion
		if e.meta.HasRs1 && e.inst.Rs1 != isa.X0 && !t.writtenThisIter[e.inst.Rs1] {
			m.pack.ObserveLiveIn(region, e.inst.Rs1)
		}
		if e.meta.HasRs2 && e.inst.Rs2 != isa.X0 && !t.writtenThisIter[e.inst.Rs2] {
			m.pack.ObserveLiveIn(region, e.inst.Rs2)
		}
		if e.hasDest {
			m.pack.ObserveWrite(region, e.destReg)
			t.writtenThisIter[e.destReg] = true
		}
	}
	if e.inst.Op == isa.DETACH {
		t.writtenThisIter = [isa.NumRegs]bool{}
		if e.isVerifyPoint {
			m.packVerify(t, e.dispRegion)
		}
	}

	if e.inst.Op == isa.HALT && arch {
		m.halted = true
	}

	t.epochCommitted++
	m.stats.CommitSlotsUsed++
	if arch {
		m.stats.ArchInsts++
		m.stats.ArchCommitCycleSum++
		m.lastArchCommit = m.now
		if inRegion {
			m.stats.RegionArchInsts++
		}
		if m.regionOn {
			m.ledger(e.dispRegion).Slots[SlotRetiredArch]++
		}
	} else {
		t.specCommitted++
		if inRegion {
			t.specCommittedRegion++
		}
		if m.regionOn {
			m.ledger(e.dispRegion).Slots[SlotRetiredSpec]++
		}
	}
}

func (t *threadlet) hasCkptPending() bool {
	for r := 0; r < isa.NumRegs; r++ {
		if t.ckptPending[r] != nil {
			return true
		}
	}
	return false
}

// packVerify runs the §4.3 verification at the parent's verification-point
// detach: compare the IV prediction handed to the successor against the
// actual register values. Mispredicted registers are silently repaired in
// the successor if their stale value was never consumed; otherwise the
// successor chain is squashed and restarted from corrected values. region is
// the verify-point detach's dispatch region, for ledger attribution (the
// threadlet's active region can have moved on between dispatch and commit).
func (m *Machine) packVerify(t *threadlet, region int64) {
	t.pendingVerify = false
	idx := m.orderIdx(t.id)
	if idx < 0 || idx+1 >= len(m.order) {
		return // successor already gone
	}
	if m.regionOn {
		m.ledger(region).PackVerifies++
	}
	succ := m.threads[m.order[idx+1]]
	var bad []isa.Reg
	for _, iv := range m.pack.IVs(t.activeRegion) {
		if t.predictedStart[iv] != t.committedRegs[iv] {
			bad = append(bad, iv)
		}
	}
	if len(bad) == 0 {
		return
	}
	m.pack.Mispredicts++
	if m.regionOn {
		m.ledger(region).PackMispredicts++
	}
	mustSquash := false
	for _, r := range bad {
		succ.ckptRegs[r] = t.committedRegs[r]
		if succ.consumedStart[r] {
			mustSquash = true
		}
	}
	if mustSquash {
		m.squashFrom(succ.id, core.SquashPackMispredict, true)
		return
	}
	// Safe repair: the stale values were never consumed.
	for _, r := range bad {
		if succ.renameMap[r].prod == nil && !succ.writtenMask[r] {
			succ.renameMap[r] = mapEntry{val: t.committedRegs[r]}
			succ.committedRegs[r] = t.committedRegs[r]
		}
	}
	m.stats.PackRepairs++
	if m.regionOn {
		m.ledger(region).PackRepairs++
	}
}

// drainStores performs committed stores, oldest threadlet first, limited by
// the store pipes. Architectural stores go to memory and the L1D;
// speculative stores go to the threadlet's SSB slice, where Algorithm 1's
// write check runs (§4.1, §4.2).
func (m *Machine) drainStores() {
	budget := m.cfg.StorePipes
	m.drainSnap = append(m.drainSnap[:0], m.order...)
	snapshot := m.drainSnap
	for _, tid := range snapshot {
		t := m.threads[tid]
		if !t.live || m.orderIdx(tid) < 0 {
			continue
		}
		for budget > 0 && len(t.drain) > 0 {
			s := t.drain[0]
			if !m.isSpec(tid) {
				if err := mem.ValidateAccess(s.addr, s.memSize); err != nil {
					// The bad store became architectural, so sequential
					// execution faults identically: a program error, not a
					// model bug. Latch it for Run and stop the machine's
					// drains (nothing younger may perform either).
					m.memFault = &MemFault{PC: s.pc, Addr: s.addr, Size: s.memSize, Cycle: m.now, Err: err}
					return
				}
				if _, ok := m.hier.Store(s.addr, m.now); !ok {
					m.stats.StoreDrainStalls++
					break
				}
				m.mem.Write(s.addr, s.memSize, s.srcVal[1])
				m.granScratch = m.ssb.AppendGranules(m.granScratch[:0], s.addr, s.memSize)
				victim, squash := m.cd.OnWrite(tid, m.granScratch, m.youngerThan(tid))
				if m.inj != nil {
					victim, squash = m.injectConflict(tid, victim, squash)
				}
				if squash {
					m.squashFrom(victim, core.SquashConflict, true)
				}
			} else {
				if t.overflowStalled || t.drainFaulted {
					break
				}
				if m.inj != nil && m.inj.ForceOverflow(m.now) {
					m.squashFrom(tid, core.SquashOverflow, true)
					break
				}
				if mem.ValidateAccess(s.addr, s.memSize) != nil {
					// Speculative bad address: defer. The SSB cannot hold the
					// write (it would corrupt granule masks), so the drain
					// stalls here; a squash discards the fault, promotion to
					// architectural surfaces it above.
					t.drainFaulted = true
					break
				}
				chain := m.chainUpTo(tid)
				res := m.ssb.Write(tid, s.addr, s.memSize, s.srcVal[1], chain, m.now)
				if res.Overflow {
					// §4.1.2: the slice cannot take the write; stall the
					// drain until the threadlet becomes architectural, and
					// teach the region monitor the loop is unprofitable.
					t.overflowStalled = true
					if t.activeRegion >= 0 {
						m.mon.OnSquash(t.activeRegion, core.SquashOverflow)
					}
					break
				}
				if m.spectreLive && s.srcTaint[1] {
					// Tainted data entered the slice: a later speculative
					// load combining these granules observes a tainted value.
					m.taintStoreGranules(tid, res.Granules)
				}
				if len(res.FillGranules) > 0 {
					// The partial-granule fill read joins the read set and
					// can later surface as a false-sharing conflict (§4.1.1).
					m.cd.OnRead(tid, res.FillGranules)
				}
				victim, squash := m.cd.OnWrite(tid, res.Granules, m.youngerThan(tid))
				if m.inj != nil {
					victim, squash = m.injectConflict(tid, victim, squash)
				}
				if squash {
					m.squashFrom(victim, core.SquashConflict, true)
				}
			}
			t.drain = t.drain[1:]
			m.sqUsed--
			budget--
		}
		if budget == 0 {
			return
		}
	}
}

// tryRetire performs the second commit level: when the architectural
// threadlet has finished its epoch (committed through its reattach, drained
// its stores, and let in-flight conflict checks settle), it retires and its
// successor becomes architectural, merging its SSB slice into the memory
// system atomically (§4.1.4).
func (m *Machine) tryRetire() {
	t := m.threads[m.archTid()]
	if !t.hasEpochEnd || len(t.rob) > 0 || len(t.drain) > 0 {
		return
	}
	if t.retireAt == 0 {
		t.retireAt = m.now + m.cd.CheckLatency
		return
	}
	if m.now < t.retireAt {
		return
	}
	if len(m.order) < 2 {
		// A detached threadlet always has a live successor; defensively wait.
		return
	}
	m.ssb.Merge(t.id) // normally empty: architectural stores went direct
	m.clearSSBTaint(t.id)
	m.cd.Clear(t.id)
	if t.activeRegion >= 0 {
		m.mon.OnCommit(t.activeRegion)
		m.mon.OnEpochRetired(t.activeRegion, t.epochCommitted)
	}
	m.stats.Retires++
	if m.regionOn {
		m.ledger(t.activeRegion).Retires++
	}
	m.pack.OnEpochRetired(t.activeRegion, t.epochCommitted, t.epochFactor)
	m.emitEvent(EvRetire, t.id, t.activeRegion, int(t.epochCommitted))
	t.live = false
	if m.contextFreeAt[t.id] < m.now {
		m.contextFreeAt[t.id] = m.now
	}
	m.order = m.order[1:]

	// Promote the successor: its buffered state becomes architectural at
	// once (the S_arch increment), then drains in the background.
	b := m.threads[m.archTid()]
	if m.spectreLive {
		// Promotion closes the epoch-speculation window: its candidates were
		// correct-path and its resolved values are architectural now.
		m.promoteSpectre(b)
		m.clearSSBTaint(b.id)
	}
	merged := m.ssb.Merge(b.id)
	flushDone := m.now + int64(merged)*m.ssb.Config().FlushCyclesPerLine
	if flushDone > m.contextFreeAt[b.id] {
		m.contextFreeAt[b.id] = flushDone
	}
	m.stats.ArchInsts += b.specCommitted
	m.stats.SpecCommitCycleSum += b.specCommitted
	m.stats.RegionArchInsts += b.specCommittedRegion
	if m.regionOn {
		// The promoted successor is always a spawned context: homeRegion is
		// real even when a sync loop exit already cleared its active region.
		lg := m.ledger(b.homeRegion)
		lg.Promotes++
		lg.SpecWon += b.specCommitted
	}
	b.specCommitted = 0
	b.specCommittedRegion = 0
	b.overflowStalled = false
	// A deferred speculative drain fault survives promotion: clearing the
	// stall lets the architectural drain path re-validate and raise MemFault.
	b.drainFaulted = false
	if b.memFault != nil {
		// A faulted load this threadlet committed speculatively just became
		// architectural: the program faults here.
		m.memFault = b.memFault
		b.memFault = nil
	}
	m.lastArchCommit = m.now
	// Watchdog bookkeeping: the successor chain made real progress, so the
	// stuck-epoch clock and the squash-livelock streak both reset.
	m.specSince = m.now
	m.lastRestartPC = -1
	m.restartStreak = 0
	m.emitEvent(EvPromote, b.id, b.homeRegion, 0)
}
