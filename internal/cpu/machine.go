package cpu

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"loopfrog/internal/asm"
	"loopfrog/internal/bpred"
	"loopfrog/internal/core"
	"loopfrog/internal/isa"
	"loopfrog/internal/mem"
)

// ErrNoProgress is returned when the machine stops making architectural
// progress — always a model bug, never a workload property.
var ErrNoProgress = errors.New("cpu: no architectural progress")

// ErrCycleLimit is returned when MaxCycles elapses before HALT commits.
var ErrCycleLimit = errors.New("cpu: cycle limit exceeded")

// Machine is one simulated core (baseline or LoopFrog, per Config).
type Machine struct {
	cfg  Config
	prog *asm.Program
	// code is the PC-indexed predecoded instruction image (asm.Decoded),
	// shared read-only with every other machine running the same program.
	code []asm.DecInst

	mem  *mem.Memory
	hier *mem.Hierarchy
	bp   *bpred.Predictor
	ssb  *core.SSB
	cd   *core.ConflictDetector
	pack *core.PackPredictor
	mon  *core.RegionMonitor

	threads []*threadlet
	gens    []uint64 // context generation, bumped at spawn
	// order lists live threadlets oldest-first; order[0] is architectural.
	order []int
	// contextFreeAt gates context reuse on the background slice flush.
	contextFreeAt []int64

	now int64

	// Shared structure occupancy.
	robUsed, iqUsed, lqUsed, sqUsed int
	intRegsUsed, fpRegsUsed         int

	readyQ    [isa.NumClasses][]*dynInst
	executing []*dynInst
	replayQ   []*dynInst

	stats          Stats
	halted         bool
	lastArchCommit int64
	eventHook      func(Event)

	// Fault injection (fault_hooks.go); nil on normal runs.
	inj FaultInjector

	// Forward-progress watchdog state (watchdog.go). specSince is the cycle
	// the current architectural epoch acquired speculative successors; the
	// restart fields feed the squash-livelock detector; wdErr latches a trip
	// raised inside a pipeline stage until Run can return it.
	wd            WatchdogConfig
	specSince     int64
	lastRestartPC int
	restartStreak int
	wdErr         *ProgressError
	// memFault latches an architecturally-reached invalid memory access
	// (MemFault) for Run to return — a bad program, not a model bug.
	memFault error

	// Commit-slot attribution state (stall.go). recoverUntil marks the
	// front-end refill window after a threadlet squash; the sampler fields
	// drive the optional per-interval trace counter track.
	recoverUntil int64
	slotSampler  func(cycle int64, delta [NumSlotClasses]uint64)
	slotEvery    int64
	slotTick     int64
	lastSlots    [NumSlotClasses]uint64

	archSpecInsts []uint64 // per-context spec-committed, indexed by tid

	// Per-region attribution state (region.go). regionOn mirrors
	// cfg.RegionLedger for the hot path; regionIdx maps a region ID to its
	// ledger's index in stats.Regions; the last* pair caches the repeated
	// lookup so steady-state charges cost one compare.
	regionOn      bool
	regionIdx     map[int64]int
	lastRegionID  int64
	lastRegionIdx int

	// Speculative-leak tracking state (spectre.go). spectreLive mirrors
	// "either knob set" for the hot paths; mitigate mirrors
	// cfg.DelaySpeculativeLoadDeps; leakPCs counts confirmed leaks per PC;
	// delayedWake holds load results withheld by the mitigation; ssbTaint is
	// the per-slice granule taint set, indexed by tid.
	spectreLive bool
	mitigate    bool
	leakPCs     map[int]uint64
	delayedWake []*dynInst
	ssbTaint    []map[uint64]bool

	// Published statistics snapshot (snapshot.go): pub is the coherent copy
	// external readers see, snapWanted arms the throttled republish.
	pubMu      sync.Mutex
	pub        StatsSnapshot
	snapWanted atomic.Bool

	// Per-cycle scratch buffers, reused to keep the pipeline loops
	// allocation-free. Each belongs to exactly one pipeline stage.
	commitSnap, drainSnap, dispatchSnap []int
	granScratch                         []uint64
}

// NewMachine builds a machine for the program.
func NewMachine(cfg Config, prog *asm.Program) (*Machine, error) {
	return newMachine(cfg, prog, nil)
}

// newMachine builds a machine starting either from the program entry (ck ==
// nil) or from a tier-1 checkpoint's architectural and warm state. The
// checkpoint is treated as immutable: every piece of its state is cloned, so
// many machines (parallel-in-time windows, panic retries) may seed from one
// checkpoint concurrently.
func newMachine(cfg Config, prog *asm.Program, ck *Checkpoint) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if cfg.Threadlets < 1 {
		return nil, fmt.Errorf("cpu: need at least one threadlet context, got %d", cfg.Threadlets)
	}
	if ck != nil {
		if ck.PC < 0 || ck.PC >= len(prog.Insts) {
			return nil, fmt.Errorf("cpu: checkpoint pc %d out of range [0,%d)", ck.PC, len(prog.Insts))
		}
		if ck.Mem == nil {
			return nil, fmt.Errorf("cpu: checkpoint has no memory image")
		}
	}
	cfg.SSB.Slices = cfg.Threadlets
	cfg.Watchdog = cfg.Watchdog.Normalized()
	m := &Machine{
		cfg:           cfg,
		wd:            cfg.Watchdog,
		lastRestartPC: -1,
		prog:          prog,
		mem:           mem.NewMemory(),
		hier:          mem.NewHierarchy(cfg.Hier),
		bp:            bpred.New(cfg.BPred, cfg.Threadlets),
		pack:          core.NewPackPredictor(cfg.Pack),
		mon:           core.NewRegionMonitor(cfg.Monitor),
		contextFreeAt: make([]int64, cfg.Threadlets),
		gens:          make([]uint64, cfg.Threadlets),
		archSpecInsts: make([]uint64, cfg.Threadlets),
		code:          prog.Decoded(),
	}
	startPC := prog.Entry
	if ck != nil {
		startPC = ck.PC
		m.mem = ck.Mem.Clone()
		if ck.BP != nil {
			m.bp = ck.BP.CloneFor(cfg.Threadlets)
		}
		if ck.Hier != nil {
			m.hier = ck.Hier.CloneAt(0)
		}
		if ck.Mon != nil {
			m.mon = ck.Mon.Clone()
		}
		if ck.Pack != nil {
			m.pack = ck.Pack.Clone()
		}
	} else {
		m.mem.LoadProgram(prog)
	}
	m.ssb = core.NewSSB(cfg.SSB, m.mem)
	newSet := func() core.GranuleSet { return core.NewExactSet() }
	if cfg.BloomBits > 0 {
		newSet = func() core.GranuleSet { return core.NewBloomSet(cfg.BloomBits, cfg.BloomHashes) }
	}
	m.cd = core.NewConflictDetector(cfg.Threadlets, cfg.ConflictCheckLatency, newSet)
	if cfg.RegionLedger {
		m.regionOn = true
		m.regionIdx = make(map[int64]int, 8)
		m.lastRegionID = regionNone
	}
	if cfg.SpectreAnalysis || cfg.DelaySpeculativeLoadDeps {
		m.spectreLive = true
		m.mitigate = cfg.DelaySpeculativeLoadDeps
		m.ssbTaint = make([]map[uint64]bool, cfg.Threadlets)
	}

	m.threads = make([]*threadlet, cfg.Threadlets)
	for i := range m.threads {
		m.threads[i] = &threadlet{id: i, activeRegion: -1, homeRegion: -1}
	}
	t0 := m.threads[0]
	t0.live = true
	t0.fetchPC = startPC
	if ck != nil {
		t0.committedRegs = ck.Regs
		if ck.Region > 0 {
			// Re-attach the thread chain to the region it owned at the
			// checkpoint; inner-region detaches stay hint NOPs, exactly as in
			// the uninterrupted run. The chain is not detached (no successor
			// exists yet): the next owned detach spawns, one iteration late at
			// worst — the same recovery the full machine makes after a
			// no-context detach.
			t0.activeRegion = ck.Region
			t0.homeRegion = ck.Region
		}
	} else {
		t0.committedRegs[isa.X(2)] = asm.DefaultStackTop
	}
	for r := 0; r < isa.NumRegs; r++ {
		t0.renameMap[r] = mapEntry{val: t0.committedRegs[r]}
	}
	t0.epochStartPC = startPC
	m.order = []int{0}
	m.publishStats()
	return m, nil
}

// Run simulates to completion and returns the statistics.
func (m *Machine) Run() (*Stats, error) {
	return m.RunContext(context.Background())
}

// liveSpecInsts sums the speculatively committed instructions of live, not
// yet promoted threadlets — the smooth complement to ArchInsts's bulk jumps
// at epoch promotion (see Stats.WarmupEndLive).
func (m *Machine) liveSpecInsts() uint64 {
	var n uint64
	for _, tid := range m.order {
		n += m.threads[tid].specCommitted
	}
	return n
}

// ctxCheckMask throttles the context poll in RunContext: the deadline is
// checked every 8192 cycles, keeping cancellation latency far below a
// millisecond of wall time while staying invisible on the hot path.
const ctxCheckMask = 8192 - 1

// RunContext simulates to completion, returning early with a wrapped
// context error if ctx is cancelled or its deadline passes. The
// forward-progress watchdog (watchdog.go) runs unless the configuration
// disables it, turning livelocks into a fast typed ProgressError instead of
// a 200M-cycle ErrCycleLimit timeout.
func (m *Machine) RunContext(ctx context.Context) (*Stats, error) {
	maxCycles := m.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 200_000_000
	}
	// However the run ends, leave the published snapshot exact.
	defer m.publishStats()
	done := ctx.Done()
	watch := !m.wd.Disable
	warmupPending := m.cfg.WarmupInsts > 0
	for !m.halted {
		// Warmup and window budgets trip on the SMOOTH instruction count
		// (architectural + live speculative commits): ArchInsts alone jumps in
		// bulk at epoch promotion, so an arch-only latch can overshoot the
		// warmup target by a whole epoch chain and leave a near-empty measured
		// slice (a handful of instructions over a handful of cycles) whose IPC
		// is noise the sampling driver would weight by a full window.
		if warmupPending || m.cfg.MaxArchInsts > 0 {
			smooth := m.stats.ArchInsts + m.liveSpecInsts()
			if warmupPending && smooth >= m.cfg.WarmupInsts {
				warmupPending = false
				m.stats.WarmupEndCycle = m.now
				m.stats.WarmupEndInsts = m.stats.ArchInsts
				m.stats.WarmupEndLive = smooth - m.stats.ArchInsts
			}
			if m.cfg.MaxArchInsts > 0 && smooth >= m.cfg.MaxArchInsts {
				// Sampled-window budget reached: a clean stop, not a halt.
				m.stats.Cycles = m.now
				m.stats.EndLive = smooth - m.stats.ArchInsts
				return &m.stats, nil
			}
		}
		if m.now >= maxCycles {
			return &m.stats, fmt.Errorf("%w (%d cycles, %d arch insts)", ErrCycleLimit, m.now, m.stats.ArchInsts)
		}
		if m.memFault != nil {
			return &m.stats, m.memFault
		}
		if watch {
			if m.wdErr != nil {
				return &m.stats, m.wdErr
			}
			if m.now-m.lastArchCommit > m.wd.NoCommitWindow {
				return &m.stats, m.progressError(ProgressNoCommit)
			}
			if len(m.order) > 1 && m.now-m.specSince > m.wd.EpochWindow {
				return &m.stats, m.progressError(ProgressStuckEpoch)
			}
		}
		if m.now&ctxCheckMask == 0 {
			if m.snapWanted.Load() {
				m.publishStats()
			}
			if done != nil {
				select {
				case <-done:
					return &m.stats, fmt.Errorf("cpu: run cancelled at cycle %d (%d arch insts): %w",
						m.now, m.stats.ArchInsts, ctx.Err())
				default:
				}
			}
		}
		m.cycle()
	}
	if m.memFault != nil {
		return &m.stats, m.memFault
	}
	m.stats.Cycles = m.now
	m.stats.Halted = true
	return &m.stats, nil
}

// cycle advances the machine by one clock.
func (m *Machine) cycle() {
	if m.inj != nil {
		m.injectCycle()
	}
	if m.mitigate {
		m.releaseDelayedWakes()
	}
	m.writeback()
	usedBefore := m.stats.CommitSlotsUsed
	archBefore := m.stats.ArchCommitCycleSum
	m.commit()
	m.attributeCommitSlots(m.stats.ArchCommitCycleSum-archBefore, m.stats.CommitSlotsUsed-usedBefore)
	m.drainStores()
	m.tryRetire()
	m.issue()
	m.dispatch()
	m.fetch()

	k := len(m.order)
	if k > len(m.stats.LiveCycles) {
		k = len(m.stats.LiveCycles)
	}
	if k > 0 {
		m.stats.LiveCycles[k-1]++
	}
	if m.slotSampler != nil {
		m.tickSlotSampler()
	}
	m.now++
	m.stats.Cycles = m.now
}

// archTid returns the architectural threadlet's ID.
func (m *Machine) archTid() int { return m.order[0] }

// isSpec reports whether tid is currently speculative.
func (m *Machine) isSpec(tid int) bool { return m.order[0] != tid }

// orderIdx returns tid's position in the epoch order, or -1.
func (m *Machine) orderIdx(tid int) int {
	for i, id := range m.order {
		if id == tid {
			return i
		}
	}
	return -1
}

// chainUpTo returns the oldest-first chain of live threadlets up to and
// including tid, as the SSB read logic requires (§4.1.3). The result aliases
// m.order: callers must consume it before anything mutates the epoch order
// (every use is a single SSB/conflict-detector call).
func (m *Machine) chainUpTo(tid int) []int {
	idx := m.orderIdx(tid)
	if idx < 0 {
		return nil
	}
	return m.order[:idx+1]
}

// youngerThan returns the live threadlets strictly younger than tid,
// oldest-first (Algorithm 1's successor iteration). Like chainUpTo, the
// result aliases m.order and must be consumed immediately.
func (m *Machine) youngerThan(tid int) []int {
	idx := m.orderIdx(tid)
	if idx < 0 || idx+1 >= len(m.order) {
		return nil
	}
	return m.order[idx+1:]
}

// FinalRegs returns the architectural register file after Run; valid only
// once the machine has halted.
func (m *Machine) FinalRegs() [isa.NumRegs]uint64 {
	return m.threads[m.archTid()].committedRegs
}

// Memory exposes the functional memory, for end-state verification and for
// external snoop injection in tests.
func (m *Machine) Memory() *mem.Memory { return m.mem }

// Hierarchy exposes the timing memory system (cache stats).
func (m *Machine) Hierarchy() *mem.Hierarchy { return m.hier }

// Predictor exposes the branch predictor (stats).
func (m *Machine) Predictor() *bpred.Predictor { return m.bp }

// SSB exposes the speculative state buffer (stats).
func (m *Machine) SSB() *core.SSB { return m.ssb }

// Detector exposes the conflict detector (stats).
func (m *Machine) Detector() *core.ConflictDetector { return m.cd }

// Packer exposes the iteration-packing predictor (stats).
func (m *Machine) Packer() *core.PackPredictor { return m.pack }

// Stats returns the current statistics (live during a run).
func (m *Machine) Stats() *Stats { return &m.stats }

// Config returns the machine's configuration (after NewMachine's
// normalisations).
func (m *Machine) Config() Config { return m.cfg }

// Monitor exposes the region profitability monitor (stats).
func (m *Machine) Monitor() *core.RegionMonitor { return m.mon }

// Now returns the current cycle.
func (m *Machine) Now() int64 { return m.now }

// ExternalSnoop injects a coherence request from another core for the line
// containing addr (§4.1.4): caches downgrade or invalidate, and any
// speculative threadlet whose read or write set covers the granule can no
// longer commit cleanly and is squashed.
func (m *Machine) ExternalSnoop(addr uint64, write bool) {
	m.hier.Snoop(addr, write)
	g := m.ssb.GranuleOf(addr)
	for i := 1; i < len(m.order); i++ { // speculative threadlets only
		tid := m.order[i]
		conflict := m.cd.WriteSetContains(tid, g)
		if write {
			conflict = conflict || m.cd.ReadSetContains(tid, g)
		}
		if conflict {
			m.squashFrom(tid, core.SquashExternal, true)
			return
		}
	}
}
