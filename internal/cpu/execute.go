package cpu

import (
	"sort"

	"loopfrog/internal/isa"
	"loopfrog/internal/mem"
)

// enqueueReady moves an instruction whose operands are all available into
// its class's ready queue.
func (m *Machine) enqueueReady(e *dynInst) {
	if e.state != stDispatched {
		return
	}
	e.state = stReady
	m.readyQ[e.meta.Class] = append(m.readyQ[e.meta.Class], e)
}

// unitsFor returns the per-cycle issue bandwidth of a class (Table 1 pipes).
func (m *Machine) unitsFor(c isa.Class) int {
	switch c {
	case isa.ClassIntALU:
		return m.cfg.ALUs
	case isa.ClassBranch:
		return m.cfg.Branches
	case isa.ClassMulDiv:
		return m.cfg.MulDivs
	case isa.ClassFP:
		return m.cfg.FPs
	case isa.ClassFPDiv:
		return m.cfg.FPDivs
	case isa.ClassLoad:
		return m.cfg.LoadPipes
	case isa.ClassStore:
		return m.cfg.StorePipes
	}
	return 0
}

// issue selects ready instructions, oldest epoch first (older threadlets
// have priority, §4), and begins execution.
func (m *Machine) issue() {
	// Replayed loads retry ahead of fresh issues on the load pipes.
	loadBudget := m.cfg.LoadPipes
	if len(m.replayQ) > 0 {
		q := m.replayQ
		m.replayQ = m.replayQ[:0]
		for _, e := range q {
			if e.squashed {
				continue
			}
			if loadBudget == 0 {
				m.replayQ = append(m.replayQ, e)
				continue
			}
			if m.execLoad(e) {
				loadBudget--
			}
		}
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		q := m.readyQ[c]
		if len(q) == 0 {
			continue
		}
		// Drop squashed entries, then prioritise by epoch order and age.
		live := q[:0]
		for _, e := range q {
			if !e.squashed && e.state == stReady {
				live = append(live, e)
			}
		}
		sort.SliceStable(live, func(i, j int) bool {
			oi, oj := m.orderIdx(live[i].tid), m.orderIdx(live[j].tid)
			if oi != oj {
				return oi < oj
			}
			return live[i].seq < live[j].seq
		})
		units := m.unitsFor(c)
		if c == isa.ClassLoad {
			units = loadBudget
		}
		n := 0
		for _, e := range live {
			if n >= units {
				break
			}
			if m.execOne(e) {
				n++
			}
		}
		m.readyQ[c] = append(m.readyQ[c][:0], live[min(n, len(live)):]...)
	}
}

// execOne starts execution of one instruction; it returns false if the
// instruction could not issue (and was re-queued).
func (m *Machine) execOne(e *dynInst) bool {
	e.state = stExecuting
	m.iqUsed--
	m.threads[e.tid].iqHeld--
	switch {
	case e.meta.IsLoad:
		if !m.execLoad(e) {
			return true // issued to the replay queue; the pipe slot is spent
		}
		return true
	case e.meta.IsStore:
		m.execStore(e)
		return true
	case e.meta.IsBranch:
		e.result = 0
		e.readyAt = m.now + 1
		m.executing = append(m.executing, e)
		return true
	case e.inst.Op == isa.JAL || e.inst.Op == isa.JALR:
		e.result = uint64(e.pc + 1)
		e.readyAt = m.now + 1
		m.executing = append(m.executing, e)
		return true
	default:
		e.result = isa.EvalALU(e.inst, e.srcVal[0], e.srcVal[1])
		e.taint = e.srcTaint[0] || e.srcTaint[1]
		e.readyAt = m.now + int64(e.meta.Latency)
		m.executing = append(m.executing, e)
		return true
	}
}

// execLoad performs address generation, intra-threadlet disambiguation, and
// the versioned memory read (§4.1.3). It returns false when the load was
// deferred to the replay queue.
func (m *Machine) execLoad(e *dynInst) bool {
	t := m.threads[e.tid]
	e.addr = e.srcVal[0] + uint64(e.inst.Imm)
	e.addrValid = true
	m.stats.Loads++
	if m.spectreLive {
		e.transient = m.transientAt(t, e.seq)
	}

	// Search the youngest older store in this threadlet with an overlapping
	// address: first the in-ROB store queue, then the post-commit drain
	// queue.
	if st, partial := m.findOlderStore(t, e); st != nil {
		if partial || !st.srcReady[1] {
			// Partial overlap or data not ready: wait and retry.
			m.replayQ = append(m.replayQ, e)
			return false
		}
		// Store-to-load forwarding within the threadlet.
		shift := (e.addr - st.addr) * 8
		raw := st.srcVal[1] >> shift
		e.result = isa.ExtendLoad(e.inst.Op, raw)
		// A forwarded value is tainted if the store's data was, or if the
		// load itself is transient. No cache access, so never a candidate.
		e.taint = e.transient || st.srcTaint[1]
		e.loadFwdSQ = true
		e.fwdSeq = st.seq
		e.readyAt = m.now + 1
		m.executing = append(m.executing, e)
		return true
	}

	// An invalid (unaligned) load address never reaches the memory system:
	// the load completes with a zero result and raises a MemFault at commit
	// if it turns out to be on the committed path (commit.go). Wrong-path
	// loads routinely compute garbage addresses; they must not crash the run.
	if mem.ValidateAccess(e.addr, e.memSize) != nil {
		e.memFaulted = true
		e.result = 0
		e.readyAt = m.now + 1
		m.executing = append(m.executing, e)
		return true
	}

	// The gadget's second access: a transient load steering the hierarchy
	// with a taint-derived address. Recorded once, at the first probe — an
	// MSHR retry of the same access is the same leak.
	if e.transient && e.srcTaint[0] && !e.leakCand {
		m.noteLeakCandidate(e)
	}

	// Memory access: timing through the hierarchy, value through the SSB's
	// multi-version combine (speculative) or backing memory (architectural).
	done, ok := m.hier.Load(e.pc, e.addr, m.now)
	if !ok {
		m.stats.LoadRetriesMSHR++
		m.replayQ = append(m.replayQ, e)
		return false
	}
	chain := m.chainUpTo(e.tid)
	raw, _ := m.ssb.Read(chain, e.addr, e.memSize)
	e.result = isa.ExtendLoad(e.inst.Op, raw)
	e.taint = e.transient
	if m.isSpec(e.tid) {
		// The read is serviced now: record it (Algorithm 1) and charge the
		// SSB read latency (3 cycles including the L1D probe).
		m.granScratch = m.ssb.AppendGranules(m.granScratch[:0], e.addr, e.memSize)
		m.cd.OnRead(e.tid, m.granScratch)
		if m.spectreLive && !e.taint && m.granulesTainted(chain, m.granScratch) {
			e.taint = true // tainted store data observed through the SSB
		}
		if ssbDone := m.now + m.ssb.Config().ReadLatency; ssbDone > done {
			done = ssbDone
		}
	}
	e.readyAt = done
	m.executing = append(m.executing, e)
	return true
}

// findOlderStore returns the youngest store older than the load in the same
// threadlet whose (resolved) address overlaps it. partial reports that the
// store does not fully cover the load.
func (m *Machine) findOlderStore(t *threadlet, load *dynInst) (st *dynInst, partial bool) {
	check := func(s *dynInst) (hit, part bool) {
		if !s.addrValid {
			return false, false // unresolved: proceed optimistically
		}
		if s.addr+uint64(s.memSize) <= load.addr || load.addr+uint64(load.memSize) <= s.addr {
			return false, false
		}
		covers := s.addr <= load.addr && s.addr+uint64(s.memSize) >= load.addr+uint64(load.memSize)
		return true, !covers
	}
	for i := len(t.rob) - 1; i >= 0; i-- {
		s := t.rob[i]
		if s.seq >= load.seq || !s.meta.IsStore {
			continue
		}
		if hit, part := check(s); hit {
			return s, part
		}
	}
	for i := len(t.drain) - 1; i >= 0; i-- {
		if hit, part := check(t.drain[i]); hit {
			return t.drain[i], part
		}
	}
	return nil, false
}

// execStore generates the store's address (and captures its data). Younger
// loads in the same threadlet that already executed past it with an
// overlapping address violated program order and replay (the LSQ check).
func (m *Machine) execStore(e *dynInst) {
	t := m.threads[e.tid]
	e.addr = e.srcVal[0] + uint64(e.inst.Imm)
	e.addrValid = true
	e.readyAt = m.now + 1
	m.executing = append(m.executing, e)
	m.stats.Stores++

	var violator *dynInst
	for _, l := range t.rob {
		if l.seq <= e.seq || !l.meta.IsLoad || !l.addrValid {
			continue
		}
		if l.state != stExecuting && l.state != stDone {
			continue
		}
		if l.addr+uint64(l.memSize) <= e.addr || e.addr+uint64(e.memSize) <= l.addr {
			continue
		}
		if l.loadFwdSQ && l.fwdSeq > e.seq {
			continue // forwarded from a store younger than this one
		}
		if violator == nil || l.seq < violator.seq {
			violator = l
		}
	}
	if violator != nil {
		m.stats.LoadReplaysLSQ++
		m.rollbackTo(t, violator.seq, violator.pc, nil)
	}
}

// writeback completes instructions whose results are ready: it wakes
// dependents, fills checkpoint futures, and resolves branches.
func (m *Machine) writeback() {
	if len(m.executing) == 0 {
		return
	}
	remaining := m.executing[:0]
	var finished []*dynInst
	for _, e := range m.executing {
		switch {
		case e.squashed:
		case e.readyAt <= m.now:
			finished = append(finished, e)
		default:
			remaining = append(remaining, e)
		}
	}
	m.executing = remaining
	// Oldest-first resolution keeps branch recovery deterministic.
	sort.SliceStable(finished, func(i, j int) bool {
		oi, oj := m.orderIdx(finished[i].tid), m.orderIdx(finished[j].tid)
		if oi != oj {
			return oi < oj
		}
		return finished[i].seq < finished[j].seq
	})
	for _, e := range finished {
		if e.squashed {
			continue
		}
		m.complete(e)
	}
}

// complete finishes one instruction.
func (m *Machine) complete(e *dynInst) {
	t := m.threads[e.tid]
	if m.spectreLive && (e.meta.IsBranch || e.inst.Op == isa.JALR) {
		t.ctlResolved(e.seq)
	}
	if e.meta.IsBranch {
		m.resolveBranch(t, e)
		if e.squashed {
			return
		}
	}
	if e.inst.Op == isa.JALR {
		m.resolveIndirect(t, e)
		if e.squashed {
			return
		}
	}
	e.state = stDone
	if m.mitigate && e.meta.IsLoad && e.transient && !e.loadFwdSQ && !e.memFaulted {
		// ShadowBinding-style delay: the transient load's result is withheld
		// from dependents until the window closes (releaseDelayedWakes).
		e.wakeHeld = true
		m.delayedWake = append(m.delayedWake, e)
		m.stats.DelayedWakes++
		return
	}
	m.wake(e)
}

// wake delivers a completed result to dependents and checkpoint slots.
func (m *Machine) wake(e *dynInst) {
	for _, w := range e.waiters {
		if w.squashed {
			continue
		}
		for s := 0; s < 2; s++ {
			if w.srcProd[s] == e {
				w.srcProd[s] = nil
				w.srcReady[s] = true
				w.srcVal[s] = e.result
				w.srcTaint[s] = e.taint
			}
		}
		if w.srcReady[0] && w.srcReady[1] {
			m.enqueueReady(w)
		}
	}
	e.waiters = nil
	for _, cw := range e.ckptWaiters {
		ct := m.threads[cw.tid]
		if m.gens[cw.tid] != cw.gen || ct.ckptPending[cw.reg] != e {
			continue
		}
		ct.ckptPending[cw.reg] = nil
		ct.ckptRegs[cw.reg] = e.result
		ct.ckptTaint[cw.reg] = e.taint
		if !ct.writtenMask[cw.reg] {
			ct.committedRegs[cw.reg] = e.result
		}
	}
	e.ckptWaiters = nil
}

// resolveBranch compares the execute-time outcome with the fetch-time
// prediction and recovers on a mismatch.
func (m *Machine) resolveBranch(t *threadlet, e *dynInst) {
	taken := isa.BranchTaken(e.inst.Op, e.srcVal[0], e.srcVal[1])
	target := e.pc + 1
	if taken {
		target = int(e.inst.Imm)
	}
	e.result = 0
	if taken {
		e.result = 1
	}
	if taken == e.predTaken {
		return
	}
	// Misprediction: squash younger work in this threadlet and redirect.
	m.bp.OnSquash(t.id, e.pred.Hist, taken)
	m.rollbackTo(t, e.seq+1, target, e)
}

// resolveIndirect checks a JALR's computed target against the front end's
// assumption.
func (m *Machine) resolveIndirect(t *threadlet, e *dynInst) {
	target := int(e.srcVal[0] + uint64(e.inst.Imm))
	e.actualTarget = target
	if e.predTarget == -1 {
		// The front end stalled on this jump: release it.
		if len(t.fq) == 0 && t.fetchPC == -1 {
			t.fetchPC = target
			t.fetchReadyAt = m.now + 1
		} else {
			m.redirectFetch(t, target)
		}
		return
	}
	if target != e.predTarget {
		m.stats.IndirectMispredicts++
		m.rollbackTo(t, e.seq+1, target, e)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
