package cpu

import (
	"testing"

	"loopfrog/internal/asm"
	"loopfrog/internal/isa"
	"loopfrog/internal/ref"
)

// runMachine runs prog on a machine with cfg and cross-checks the final
// architectural state against the reference interpreter.
func runMachine(t *testing.T, cfg Config, prog *asm.Program) *Stats {
	t.Helper()
	oracle := ref.MustRun(prog, ref.Options{})
	m, err := NewMachine(cfg, prog)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	regs := m.FinalRegs()
	for r := 0; r < isa.NumRegs; r++ {
		if regs[r] != oracle.Regs[r] {
			t.Errorf("reg %s = %#x, want %#x (reference)", isa.Reg(r), regs[r], oracle.Regs[r])
		}
	}
	if diff := oracle.Mem.Diff(m.Memory()); diff != "" {
		t.Errorf("final memory differs from reference:\n%s", diff)
	}
	return stats
}

// runBoth runs baseline and LoopFrog configurations, checking both against
// the reference, and returns (baseline, loopfrog) stats.
func runBoth(t *testing.T, prog *asm.Program) (*Stats, *Stats) {
	t.Helper()
	base := runMachine(t, BaselineConfig(), prog)
	lf := runMachine(t, DefaultConfig(), prog)
	return base, lf
}

func TestStraightLineArithmetic(t *testing.T) {
	prog := asm.MustAssemble("arith", `
main:   li   a0, 6
        li   a1, 7
        mul  a2, a0, a1
        addi a3, a2, -2
        xor  a4, a3, a0
        div  a5, a2, a1
        halt
`)
	stats := runMachine(t, BaselineConfig(), prog)
	if stats.ArchInsts != 7 {
		t.Errorf("arch insts = %d, want 7", stats.ArchInsts)
	}
}

func TestSimpleLoopBaseline(t *testing.T) {
	prog := asm.MustAssemble("loop", `
main:   li   t0, 0
        li   t1, 100
        li   a0, 0
loop:   add  a0, a0, t0
        addi t0, t0, 1
        blt  t0, t1, loop
        halt
`)
	stats := runMachine(t, BaselineConfig(), prog)
	if stats.Branches != 100 {
		t.Errorf("committed branches = %d, want 100", stats.Branches)
	}
	// The loop predictor or TAGE should keep mispredicts minimal.
	if stats.Mispredicts > 5 {
		t.Errorf("mispredicts = %d, want few on a counted loop", stats.Mispredicts)
	}
}

func TestMemoryOpsBaseline(t *testing.T) {
	prog := asm.MustAssemble("memops", `
        .data
buf:    .zero 128
        .text
main:   la   a0, buf
        li   t0, 0
        li   t1, 16
fill:   slli t2, t0, 3
        add  t2, a0, t2
        sd   t0, 0(t2)
        addi t0, t0, 1
        blt  t0, t1, fill
        li   t0, 0
        li   a1, 0
sum:    slli t2, t0, 3
        add  t2, a0, t2
        ld   t3, 0(t2)
        add  a1, a1, t3
        addi t0, t0, 1
        blt  t0, t1, sum
        halt
`)
	runMachine(t, BaselineConfig(), prog)
}

func TestStoreToLoadForwarding(t *testing.T) {
	prog := asm.MustAssemble("fwd", `
        .data
v:      .quad 0
        .text
main:   la   a0, v
        li   t0, 41
        sd   t0, 0(a0)
        ld   t1, 0(a0)      # must forward from the store
        addi a1, t1, 1
        halt
`)
	runMachine(t, BaselineConfig(), prog)
}

func TestPartialOverlapStoreLoad(t *testing.T) {
	prog := asm.MustAssemble("partial", `
        .data
v:      .quad 0x1111111111111111
        .text
main:   la   a0, v
        li   t0, 0xff
        sb   t0, 2(a0)      # byte store into the middle
        ld   t1, 0(a0)      # partially overlapping load must wait
        halt
`)
	runMachine(t, BaselineConfig(), prog)
}

func TestCallReturn(t *testing.T) {
	prog := asm.MustAssemble("call", `
main:   li   a0, 1
        call f
        call f
        call f
        halt
f:      slli a0, a0, 1
        ret
`)
	runMachine(t, BaselineConfig(), prog)
}

func TestIndirectJumpThroughTable(t *testing.T) {
	prog := asm.MustAssemble("indirect", `
main:   li   s0, 0          # result accumulator
        li   s1, 0          # i
        li   s2, 12
loop:   andi t0, s1, 1
        la   t1, even
        beqz t0, go
        la   t1, odd
go:     jalr ra, t1, 0
        addi s1, s1, 1
        blt  s1, s2, loop
        halt
even:   addi s0, s0, 1
        ret
odd:    addi s0, s0, 100
        ret
`)
	runMachine(t, BaselineConfig(), prog)
}

func TestDataDependentBranches(t *testing.T) {
	// Pseudo-random data defeats the direction predictor; results must still
	// be exact.
	prog := asm.MustAssemble("branchy", `
        .data
seed:   .quad 12345
        .text
main:   la   a0, seed
        ld   t0, 0(a0)
        li   s0, 0
        li   s1, 0
        li   s2, 200
        li   t4, 2862933555777941757
        li   t5, 3037000493
loop:   mul  t0, t0, t4
        add  t0, t0, t5
        srli t1, t0, 60
        andi t2, t1, 1
        beqz t2, skip
        addi s0, s0, 3
skip:   addi s1, s1, 1
        blt  s1, s2, loop
        halt
`)
	stats := runMachine(t, BaselineConfig(), prog)
	if stats.Mispredicts < 20 {
		t.Errorf("mispredicts = %d; expected many on random branches", stats.Mispredicts)
	}
}

// hintedMapSrc is a contract-correct LoopFrog loop: the body consumes only
// header values (the element address) and writes its result to memory; all
// register loop-carried dependencies (the index) live in the continuation.
// The tail clears body temporaries, which the compiler knows are dead, so
// the full register state matches sequential execution exactly.
const hintedMapSrc = `
        .data
arr:    .zero 8192
out:    .zero 8192
        .text
main:   la   a0, arr
        la   a1, out
        li   t0, 0
        li   t1, 1024
init:   slli t2, t0, 3
        add  t2, a0, t2
        sd   t0, 0(t2)
        addi t0, t0, 1
        blt  t0, t1, init
        li   t0, 0
loop:   slli t2, t0, 3
        add  t3, a0, t2
        add  t4, a1, t2
        detach cont
        ld   t5, 0(t3)
        mul  t5, t5, t5
        addi t5, t5, 7
        sd   t5, 0(t4)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        li   t5, 0          # body temps are dead; normalise them
        halt
`

func TestHintedLoopBaselineTreatsHintsAsNops(t *testing.T) {
	prog := asm.MustAssemble("hinted", hintedMapSrc)
	stats := runMachine(t, BaselineConfig(), prog)
	if stats.Spawns != 0 {
		t.Errorf("baseline spawned %d threadlets", stats.Spawns)
	}
	if stats.Detaches == 0 {
		t.Error("baseline did not see the detach hints")
	}
}

func TestHintedLoopLoopFrogParallelises(t *testing.T) {
	prog := asm.MustAssemble("hinted", hintedMapSrc)
	cfg := DefaultConfig()
	cfg.Pack.Enabled = false // exercise plain spawning first
	stats := runMachine(t, cfg, prog)
	if stats.Spawns == 0 {
		t.Fatal("LoopFrog never spawned a threadlet")
	}
	if stats.Retires == 0 {
		t.Fatal("no threadlet ever retired")
	}
	multi := uint64(0)
	for k := 1; k < len(stats.LiveCycles); k++ {
		multi += stats.LiveCycles[k]
	}
	if multi == 0 {
		t.Error("never had more than one live threadlet")
	}
}

func TestHintedLoopSpeedsUp(t *testing.T) {
	prog := asm.MustAssemble("hinted", hintedMapSrc)
	base, lf := runBoth(t, prog)
	if lf.Cycles >= base.Cycles {
		t.Errorf("LoopFrog %d cycles vs baseline %d: no speedup on an independent-iteration loop",
			lf.Cycles, base.Cycles)
	}
}

// TestRAWConflictSquashes builds a loop with a guaranteed cross-iteration
// memory dependence through a single accumulator cell: every speculative
// body read of the cell races the prior iteration's write.
func TestRAWConflictSquashes(t *testing.T) {
	prog := asm.MustAssemble("rawdep", `
        .data
cell:   .quad 0
        .text
main:   la   a0, cell
        li   t0, 0
        li   t1, 300
loop:   detach cont
        ld   t3, 0(a0)      # reads the previous iteration's store
        addi t3, t3, 1
        sd   t3, 0(a0)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        li   t3, 0          # body temp is dead after the loop
        ld   a1, 0(a0)
        halt
`)
	_, lf := runBoth(t, prog)
	// Either conflicts fired (and were correctly recovered) or the monitor
	// de-selected the region; both must preserve the final value (checked by
	// runBoth) and the final value must be 300.
	if lf.Squashes[0] == 0 && lf.Spawns > 4 {
		t.Errorf("many spawns (%d) but no conflict squashes on a serial dependence", lf.Spawns)
	}
}

func TestLoopWithEarlyExit(t *testing.T) {
	// The loop exits via a break-style branch; sync must cancel successors
	// without corrupting state.
	prog := asm.MustAssemble("earlyexit", `
        .data
arr:    .zero 2048
outv:   .zero 2048
        .text
main:   la   a0, arr
        li   t0, 0
        li   t1, 256
        li   t5, 777
init:   slli t2, t0, 3
        add  t2, a0, t2
        sd   t0, 0(t2)
        addi t0, t0, 1
        blt  t0, t1, init
        # plant a sentinel at index 100
        li   t3, 100
        slli t3, t3, 3
        add  t3, a0, t3
        sd   t5, 0(t3)
        la   a1, outv
        li   t0, 0
loop:   slli t2, t0, 3
        add  t2, a0, t2
        slli t4, t0, 3
        add  t4, a1, t4
        detach cont
        ld   t3, 0(t2)
        beq  t3, t5, found
        sd   t3, 0(t4)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        j    done
found:  sync cont
        li   a2, 1
done:   li   t3, 0          # body temp is dead after the loop
        halt
`)
	runBoth(t, prog)
}

func TestNestedLoopsOnlyOuterParallel(t *testing.T) {
	prog := asm.MustAssemble("nested", `
        .data
m:      .zero 4096
        .text
main:   la   a0, m
        li   s0, 0          # i
        li   s1, 16
outer:  detach ocont
        li   s3, 0          # j
        li   s4, 32
        slli t0, s0, 8      # row base = i*256
        add  t0, a0, t0
inner:  slli t1, s3, 3
        add  t1, t0, t1
        mul  t2, s0, s4
        add  t2, t2, s3
        sd   t2, 0(t1)
        addi s3, s3, 1
        blt  s3, s4, inner
        reattach ocont
ocont:  addi s0, s0, 1
        blt  s0, s1, outer
        sync ocont
        li   s3, 0          # body (inner-loop) temps are dead
        li   s4, 0
        li   t0, 0
        li   t1, 0
        li   t2, 0
        halt
`)
	base, lf := runBoth(t, prog)
	if lf.Spawns == 0 {
		t.Error("outer loop never parallelised")
	}
	if lf.Cycles >= base.Cycles {
		t.Errorf("no speedup on independent outer loop: %d vs %d", lf.Cycles, base.Cycles)
	}
}

func TestPointerChaseWithHints(t *testing.T) {
	// A linked-list traversal: the continuation carries p = p->next. Bodies
	// are independent (write to disjoint cells).
	prog := asm.MustAssemble("chase", `
        .data
out:    .zero 4096
nodes:  .zero 8192
        .text
main:   la   a0, nodes
        li   t0, 0
        li   t1, 256
        # build list: node i at a0+i*32, next = a0+(i+1)*32, val = i
build:  slli t2, t0, 5
        add  t2, a0, t2
        addi t3, t2, 32
        sd   t3, 0(t2)      # next
        sd   t0, 8(t2)      # value
        addi t0, t0, 1
        blt  t0, t1, build
        # terminate list
        li   t4, 255
        slli t2, t4, 5
        add  t2, a0, t2
        sd   x0, 0(t2)
        # traverse
        la   a1, out
        la   s0, nodes      # p
        li   s1, 0          # idx
trav:   beqz s0, travend
        detach cont
        ld   t5, 8(s0)      # p->value
        mul  t5, t5, t5
        slli t6, s1, 3
        add  t6, a1, t6
        sd   t5, 0(t6)
        reattach cont
cont:   ld   s0, 0(s0)      # p = p->next (register LCD in continuation)
        addi s1, s1, 1
        bnez s0, trav
        sync cont
travend: li  t5, 0           # body temps are dead after the loop
        li  t6, 0
        halt
`)
	runBoth(t, prog)
}

func TestSpecHaltStallsUntilArchitectural(t *testing.T) {
	// A successor threadlet speculatively reaches HALT; it must not end the
	// simulation until it becomes architectural.
	prog := asm.MustAssemble("lasthalt", `
        .data
arr:    .zero 64
        .text
main:   la   a0, arr
        li   t0, 0
        li   t1, 4          # tiny trip count: successor sees the exit fast
loop:   slli t2, t0, 3
        add  t2, a0, t2
        detach cont
        sd   t0, 0(t2)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        li   t2, 0          # body temps are dead after the loop
        li   t3, 0
        fcvtif f0, x0
        fcvtif f2, x0
        halt
`)
	runBoth(t, prog)
}

func TestWidthSweepMonotonicIPC(t *testing.T) {
	prog := asm.MustAssemble("ilp", `
main:   li   t0, 0
        li   t1, 2000
        li   a1, 1
        li   a2, 2
        li   a3, 3
        li   a4, 4
loop:   add  a1, a1, a2
        add  a2, a2, a3
        add  a3, a3, a4
        add  a4, a4, a1
        xor  a5, a1, a2
        xor  a6, a3, a4
        addi t0, t0, 1
        blt  t0, t1, loop
        halt
`)
	var last float64
	for _, w := range []int{2, 4, 8} {
		cfg := BaselineConfig().WithWidth(w)
		stats := runMachine(t, cfg, prog)
		ipc := stats.IPC()
		if ipc < last {
			t.Errorf("IPC decreased with width %d: %.2f < %.2f", w, ipc, last)
		}
		last = ipc
	}
	if last < 2.0 {
		t.Errorf("8-wide IPC = %.2f; expected ILP-rich loop to exceed 2", last)
	}
}

func TestExternalSnoopSquashesConflictingThreadlet(t *testing.T) {
	prog := asm.MustAssemble("snooped", hintedMapSrc)
	cfg := DefaultConfig()
	m, err := NewMachine(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Run some cycles, then snoop-write a line the loop reads.
	arrBase := prog.MustSymbol("arr")
	snooped := false
	for i := 0; i < 400_000 && !m.halted; i++ {
		m.cycle()
		if i == 2000 {
			m.ExternalSnoop(arrBase+512*8, true)
			snooped = true
		}
	}
	if !m.halted {
		t.Fatal("machine did not halt")
	}
	if !snooped {
		t.Fatal("snoop never injected")
	}
	oracle := ref.MustRun(prog, ref.Options{})
	if diff := oracle.Mem.Diff(m.Memory()); diff != "" {
		t.Errorf("memory after snoop differs from reference:\n%s", diff)
	}
}

func TestFloatingPointKernel(t *testing.T) {
	prog := asm.MustAssemble("fpkern", `
        .data
xs:     .zero 2048
acc:    .double 0.0
        .text
main:   la   a0, xs
        li   t0, 0
        li   t1, 256
        fcvtif f3, t1
init:   fcvtif f0, t0
        slli t2, t0, 3
        add  t2, a0, t2
        fsd  f0, 0(t2)
        addi t0, t0, 1
        blt  t0, t1, init
        li   t0, 0
        la   a1, acc
        fld  f1, 0(a1)
loop:   slli t2, t0, 3
        add  t2, a0, t2
        detach cont
        fld  f0, 0(t2)
        fmul f2, f0, f0
        fdiv f2, f2, f3
        fsqrt f2, f2
        slli t3, t0, 3
        add  t3, a0, t3
        fsd  f2, 0(t3)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        li   t2, 0          # body temps are dead after the loop
        li   t3, 0
        fcvtif f0, x0
        fcvtif f2, x0
        halt
`)
	runBoth(t, prog)
}
