package cpu

import (
	"fmt"

	"loopfrog/internal/core"
)

// Fault-injection hook points. The speculation-safety argument (§3.1–§3.2)
// is that speculation is performance-only: any squash, overflow, or conflict
// abort leaves architectural state identical to sequential semantics. The
// hooks below let a driver force those recovery paths on purpose — a
// SpecFuzz-style adversarial workout — while a nil injector costs a single
// pointer test on each already-rare path.
//
// The interface is defined here with primitive-typed methods so implementors
// (internal/fault.Plan, test doubles) need not import this package.

// FaultInjector decides, deterministically for a given seed, which faults to
// inject and when. Every method is consulted at its hook point only while an
// injector is installed; each returns quickly when its fault kind is
// inactive. Implementations are single-run and need not be safe for
// concurrent use: the machine calls them from one goroutine.
type FaultInjector interface {
	// ForceConflict is consulted after a performed store whose conflict
	// check found no violation; returning true squash-restarts the oldest
	// speculative successor as a false-positive conflict abort.
	ForceConflict(now int64) bool
	// SuppressConflict is consulted when the conflict detector demands a
	// squash; returning true drops the squash — a conflict false negative.
	// The run then commits stale values, which the differential checker
	// must catch as a divergence (this is how the checker's teeth are
	// proven). Never injected by the "all" spec.
	SuppressConflict(now int64) bool
	// ForceOverflow is consulted before each speculative store drain;
	// returning true squash-restarts the draining threadlet as if its SSB
	// slice had overflowed.
	ForceOverflow(now int64) bool
	// KillThreadlet is consulted once per cycle while nspec (>= 1)
	// speculative threadlets are live; returning (k, true) recycles the
	// k-th youngest-order speculative threadlet (0 = oldest successor).
	KillThreadlet(now int64, nspec int) (k int, ok bool)
	// PoisonPack is consulted for each induction-variable register handed a
	// predicted start value at a packed spawn; returning (v, true) replaces
	// the prediction, which the §4.3 verification must later repair or
	// squash.
	PoisonPack(now int64, reg int, val uint64) (uint64, bool)
	// FlipBranch is consulted at each conditional-branch fetch; returning
	// true inverts the predicted direction, forcing a misprediction storm.
	FlipBranch(now int64, pc int) bool
	// Panic is consulted once per cycle; returning true makes the machine
	// panic deliberately, for exercising crash containment in harnesses.
	Panic(now int64) bool
}

// SetFaultInjector installs a fault injector (nil disables injection). The
// injector must be fresh for each run: its decision streams advance with the
// machine and are not rewound.
func (m *Machine) SetFaultInjector(inj FaultInjector) { m.inj = inj }

// injectConflict applies the conflict-fault hooks to the outcome of one
// performed store's write check (Algorithm 1): a forced false positive aborts
// the oldest successor although no real conflict exists; a suppressed squash
// is a false negative that lets stale speculative values survive to
// commit — which the differential checker must then flag.
func (m *Machine) injectConflict(tid, victim int, squash bool) (int, bool) {
	if !squash && m.inj.ForceConflict(m.now) {
		if y := m.youngerThan(tid); len(y) > 0 {
			victim, squash = y[0], true
		}
	}
	if squash && m.inj.SuppressConflict(m.now) {
		squash = false
	}
	return victim, squash
}

// injectCycle runs the per-cycle hooks: deliberate panics and random
// threadlet kills. Called from cycle() only while an injector is installed.
func (m *Machine) injectCycle() {
	if m.inj.Panic(m.now) {
		panic(fmt.Sprintf("cpu: injected panic at cycle %d", m.now))
	}
	if nspec := len(m.order) - 1; nspec > 0 {
		if k, ok := m.inj.KillThreadlet(m.now, nspec); ok {
			if k < 0 || k >= nspec {
				k = 0
			}
			m.squashFrom(m.order[1+k], core.SquashExternal, false)
		}
	}
}
