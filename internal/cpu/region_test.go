package cpu

import (
	"testing"

	"loopfrog/internal/asm"
	"loopfrog/internal/workloads"
)

// TestRegionLedgerReconciles is the issue's acceptance check: on real suite
// workloads, under both the baseline and LoopFrog configurations, every
// per-region ledger total must reconcile exactly against its global counter —
// and every squash must have landed in a real region, never the outside
// bucket. The machines run directly (no reference cross-check — these suite
// kernels are exercised for their event volume, and correctness against the
// oracle is covered elsewhere on programs the run limits never truncate).
func TestRegionLedgerReconciles(t *testing.T) {
	for _, name := range []string{"mcf", "x264"} {
		b := workloads.ByName(workloads.CPU2017(), name)
		if b == nil {
			t.Fatalf("workload %s missing from CPU2017 suite", name)
		}
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			label string
			cfg   Config
		}{
			{"baseline", BaselineConfig()},
			{"loopfrog", DefaultConfig()},
		} {
			t.Run(name+"/"+tc.label, func(t *testing.T) {
				m, err := NewMachine(tc.cfg, prog)
				if err != nil {
					t.Fatal(err)
				}
				st, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				if err := st.ReconcileRegions(); err != nil {
					t.Fatalf("region ledgers do not reconcile: %v", err)
				}
				if tc.label == "loopfrog" && st.Spawns > 0 {
					var inRegion uint64
					for i := range st.Regions {
						if st.Regions[i].Region != RegionOutside {
							inRegion += st.Regions[i].Spawns
						}
					}
					if inRegion != st.Spawns {
						t.Errorf("only %d of %d spawns landed in real regions", inRegion, st.Spawns)
					}
				}
			})
		}
	}
}

// TestRegionLedgerSquashAttribution drives the guaranteed-conflict chain loop
// and checks every squash is charged to the loop's region, including the
// restart bookkeeping, with nothing leaking into the outside bucket.
func TestRegionLedgerSquashAttribution(t *testing.T) {
	src := `
        .data
arr:    .zero 8192
        .text
main:   la   a0, arr
        li   t0, 1
        li   t1, 512
        sd   t1, 0(a0)
loop:   slli t2, t0, 3
        add  t3, a0, t2
        detach cont
        ld   t4, -8(t3)
        addi t4, t4, 3
        sd   t4, 0(t3)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        li   t4, 0
        li   t2, 0
        li   t3, 0
        halt
`
	prog := asm.MustAssemble("chain", src)
	cfg := DefaultConfig()
	cfg.Pack.Enabled = false
	st := runMachine(t, cfg, prog)
	if st.SquashTotal() == 0 {
		t.Skip("workload produced no squashes; attribution untestable here")
	}
	if err := st.ReconcileRegions(); err != nil {
		t.Fatalf("region ledgers do not reconcile: %v", err)
	}
	var attributed uint64
	for i := range st.Regions {
		l := &st.Regions[i]
		if l.Region == RegionOutside {
			if n := l.SquashTotal(); n != 0 {
				t.Errorf("%d squashes leaked into the outside bucket", n)
			}
			continue
		}
		attributed += l.SquashTotal()
	}
	if attributed != st.SquashTotal() {
		t.Errorf("squashes attributed to regions %d != global %d", attributed, st.SquashTotal())
	}
}

// TestRegionLedgerDisabled checks the flag gates everything: no ledgers, and
// ReconcileRegions reports the absence distinguishably.
func TestRegionLedgerDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RegionLedger = false
	prog := asm.MustAssemble("hinted", hintedMapSrc)
	st := runMachine(t, cfg, prog)
	if len(st.Regions) != 0 {
		t.Fatalf("RegionLedger off but %d ledgers recorded", len(st.Regions))
	}
	if err := st.ReconcileRegions(); err == nil {
		t.Error("ReconcileRegions on a ledger-free run must error")
	}
}

// TestRegionLedgerHelpers covers the small derived accessors.
func TestRegionLedgerHelpers(t *testing.T) {
	l := RegionLedger{Region: 64}
	if got, n := l.DominantStall(); got != SlotExec || n != 0 {
		t.Errorf("empty ledger dominant stall = %v/%d, want exec-latency/0", got, n)
	}
	if l.PackAccuracy() != 1 {
		t.Errorf("no-verify pack accuracy = %v, want 1", l.PackAccuracy())
	}
	l.Slots[SlotFrontend] = 10
	l.Slots[SlotROBFull] = 25
	l.Slots[SlotRetiredArch] = 1000 // retired classes never count as stalls
	if got, n := l.DominantStall(); got != SlotROBFull || n != 25 {
		t.Errorf("dominant stall = %v/%d, want rob-full/25", got, n)
	}
	l.PackVerifies, l.PackMispredicts = 8, 2
	if acc := l.PackAccuracy(); acc != 0.75 {
		t.Errorf("pack accuracy = %v, want 0.75", acc)
	}
	l.Squashes[0], l.Squashes[2] = 3, 4
	if l.SquashTotal() != 7 {
		t.Errorf("squash total = %d, want 7", l.SquashTotal())
	}
	st := &Stats{Regions: []RegionLedger{l}}
	if st.RegionByID(64) == nil || st.RegionByID(99) != nil {
		t.Error("RegionByID lookup broken")
	}
}
