package cpu

import (
	"testing"

	"loopfrog/internal/asm"
)

// TestEventOrderingInvariant checks the lifecycle protocol of the event
// stream, per context: a context's life is opened by Spawn (context 0 is
// live from reset), may repeat via Restart, and is closed by exactly one of
// Retire, Squash, or SyncCancel — after which no event may reference the
// context until its next Spawn. Promote and Restart require a live context.
func TestEventOrderingInvariant(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"nopack", func() Config { c := DefaultConfig(); c.Pack.Enabled = false; return c }()},
		{"two-contexts", func() Config { c := DefaultConfig(); c.Threadlets = 2; return c }()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog := asm.MustAssemble("hinted", hintedMapSrc)
			m, err := NewMachine(tc.cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			live := make([]bool, tc.cfg.Threadlets)
			live[0] = true // initial architectural context
			sawSpawn := make([]bool, tc.cfg.Threadlets)
			var events int
			m.SetEventHook(func(e Event) {
				events++
				if e.Tid < 0 || e.Tid >= tc.cfg.Threadlets {
					t.Fatalf("event for out-of-range context: %v", e)
				}
				switch e.Kind {
				case EvSpawn:
					if live[e.Tid] {
						t.Fatalf("Spawn of live context: %v", e)
					}
					live[e.Tid] = true
					sawSpawn[e.Tid] = true
				case EvRetire, EvSquash, EvSyncCancel:
					if !live[e.Tid] {
						t.Fatalf("%s of dead context (event after close without Spawn): %v", e.Kind, e)
					}
					live[e.Tid] = false
				case EvPromote, EvRestart:
					if !live[e.Tid] {
						t.Fatalf("%s of dead context: %v", e.Kind, e)
					}
				default:
					t.Fatalf("unknown event kind: %v", e)
				}
			})
			st, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if st.Spawns > 0 {
				any := false
				for tid := 1; tid < tc.cfg.Threadlets; tid++ {
					any = any || sawSpawn[tid]
				}
				if !any {
					t.Error("stats report spawns but no Spawn event preceded any Retire/Squash")
				}
			}
			if events == 0 && st.Retires > 0 {
				t.Error("retires happened but no events were emitted")
			}
		})
	}
}

// TestEventOrderingUnderConflicts repeats the invariant check on a workload
// that squashes and restarts threadlets, covering the Squash/Restart arcs.
func TestEventOrderingUnderConflicts(t *testing.T) {
	src := `
        .data
arr:    .zero 8192
        .text
main:   la   a0, arr
        li   t0, 1
        li   t1, 512
        sd   t1, 0(a0)
loop:   slli t2, t0, 3
        add  t3, a0, t2
        detach cont
        ld   t4, -8(t3)
        addi t4, t4, 3
        sd   t4, 0(t3)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        li   t4, 0
        li   t2, 0
        li   t3, 0
        halt
`
	prog := asm.MustAssemble("chain", src)
	cfg := DefaultConfig()
	cfg.Pack.Enabled = false
	m, err := NewMachine(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	live := make([]bool, cfg.Threadlets)
	live[0] = true
	var restarts, squashes uint64
	m.SetEventHook(func(e Event) {
		switch e.Kind {
		case EvSpawn:
			if live[e.Tid] {
				t.Fatalf("Spawn of live context: %v", e)
			}
			live[e.Tid] = true
		case EvRetire, EvSquash, EvSyncCancel:
			if !live[e.Tid] {
				t.Fatalf("%s of dead context: %v", e.Kind, e)
			}
			live[e.Tid] = false
			if e.Kind == EvSquash {
				squashes++
			}
		case EvPromote, EvRestart:
			if !live[e.Tid] {
				t.Fatalf("%s of dead context: %v", e.Kind, e)
			}
			if e.Kind == EvRestart {
				restarts++
			}
		}
	})
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var statSquashes uint64
	for _, c := range st.Squashes {
		statSquashes += c
	}
	if statSquashes != restarts+squashes+st.SyncCancels {
		t.Errorf("squash stats %d != restart events %d + squash events %d + sync cancels %d",
			statSquashes, restarts, squashes, st.SyncCancels)
	}
}
