package cpu

import (
	"sync"

	"loopfrog/internal/asm"
	"loopfrog/internal/isa"
)

// decInst is one predecoded instruction: the architectural instruction plus a
// pointer into the immutable opcode metadata table. The front end indexes a
// []decInst by PC instead of consulting isa.OpMeta on every fetch, and the
// metadata pointer rides along with the dynamic instruction so no stage
// re-copies the Meta value.
type decInst struct {
	inst isa.Inst
	meta *isa.Meta
}

// predecodeCache shares one predecoded image per program across machines.
// Keyed by the *asm.Program identity: a program image is immutable once
// assembled, and the parallel harness runs many machines over the same image
// concurrently, so the table is built once and shared read-only.
var predecodeCache sync.Map // *asm.Program -> []decInst

// predecode returns the PC-indexed predecoded image for prog.
func predecode(prog *asm.Program) []decInst {
	if v, ok := predecodeCache.Load(prog); ok {
		return v.([]decInst)
	}
	code := make([]decInst, len(prog.Insts))
	for pc, inst := range prog.Insts {
		code[pc] = decInst{inst: inst, meta: isa.MetaOf(inst.Op)}
	}
	v, _ := predecodeCache.LoadOrStore(prog, code)
	return v.([]decInst)
}
