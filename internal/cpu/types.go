package cpu

import (
	"loopfrog/internal/bpred"
	"loopfrog/internal/isa"
)

type instState uint8

const (
	stDispatched instState = iota // in ROB, maybe waiting for operands
	stReady                       // operands ready, in a ready queue
	stExecuting                   // issued to a functional unit
	stDone                        // result available
	stCommitted                   // committed to its threadlet
)

// dynInst is one dynamic instruction in flight.
type dynInst struct {
	tid  int
	seq  uint64 // per-threadlet age
	pc   int
	inst isa.Inst
	meta *isa.Meta // points into isa's immutable metadata table

	// Operand capture. src[0] is Rs1, src[1] is Rs2.
	srcReady [2]bool
	srcVal   [2]uint64
	srcProd  [2]*dynInst

	hasDest bool
	destReg isa.Reg
	oldMap  mapEntry // previous rename-map entry, for rollback
	result  uint64

	state   instState
	readyAt int64 // writeback cycle once executing

	// Memory state.
	addr      uint64
	addrValid bool
	memSize   int
	loadFwdSQ bool // forwarded from own threadlet's store queue
	// memFaulted marks a load whose address failed mem.ValidateAccess: it
	// executed with a zero result and no memory-system access, and raises a
	// MemFault only if it commits (wrong-path bad addresses are harmless).
	memFaulted bool

	// Speculative-leak tracking (spectre.go). All five stay zero unless
	// Config.SpectreAnalysis or Config.DelaySpeculativeLoadDeps is set.
	taint     bool    // result derives from a transiently-loaded value
	srcTaint  [2]bool // operand taint, captured alongside the operand values
	transient bool    // load executed inside a transient window
	leakCand  bool    // transient load whose address was tainted (candidate)
	wakeHeld  bool    // result withheld from dependents (mitigation)

	// Branch state.
	pred         bpred.BranchState
	hasPred      bool
	predTaken    bool
	predTarget   int
	actualTarget int
	mispredicted bool
	rasPushed    bool

	// dispRegion is the threadlet's active region when this instruction
	// dispatched (after hint effects), -1 when none. Commit-side pack
	// observation and region stats use it instead of the threadlet's current
	// region: a detach updates the threadlet at dispatch, so older in-flight
	// instructions from before the region would otherwise be misattributed
	// to it when they commit.
	dispRegion int64

	// Hint bookkeeping. The prev* fields snapshot threadlet epoch state a
	// hint mutated at dispatch, so wrong-path rollback can restore it.
	spawnedTid    int // threadlet spawned by this detach, -1 otherwise
	endsEpoch     bool
	wasSyncExit   bool
	isVerifyPoint bool
	prevRegion    int64
	prevDetached  bool
	prevSkip      int
	prevVerify    bool
	// fwdSeq is the store-queue entry a load forwarded from.
	fwdSeq uint64

	// waiters are instructions whose operands this result feeds.
	waiters []*dynInst
	// ckptWaiters are (threadlet, reg) checkpoint slots this result fills.
	ckptWaiters []ckptWaiter

	squashed bool
}

type ckptWaiter struct {
	tid int
	reg isa.Reg
	gen uint64
}

// mapEntry is a rename-map slot: either a pending producer or a value.
// taint marks a resolved value that derives from a transiently-loaded one
// (spectre.go); pending entries carry taint on the producer instead.
type mapEntry struct {
	prod  *dynInst
	val   uint64
	taint bool
}

type fetchEntry struct {
	pc        int
	inst      isa.Inst
	meta      *isa.Meta
	readyAt   int64 // cycle the entry may rename (models front-end depth)
	pred      bpred.BranchState
	hasPred   bool
	predTaken bool
	predTgt   int
	rasPushed bool
}

// threadlet is one execution context (§4): PC, rename map, ROB slice, and
// the LoopFrog epoch state.
type threadlet struct {
	id   int
	live bool

	// Front end.
	fetchPC        int
	fetchHalted    bool // stopped at reattach epoch end or HALT
	haltSeen       bool
	fetchReadyAt   int64
	fetchWaitInst  *dynInst // unresolved indirect jump blocking fetch
	fq             []fetchEntry
	lineTagFetched uint64 // last I-cache line fetched (for timing)
	lineValid      bool

	// Rename state.
	renameMap [isa.NumRegs]mapEntry
	// consumedStart marks start registers consumed from the initial map,
	// for packing repair decisions (§4.3).
	consumedStart [isa.NumRegs]bool

	// Committed architectural state of the threadlet. writtenMask marks
	// registers written by this epoch's own commits, so late checkpoint
	// fills never clobber newer values.
	committedRegs [isa.NumRegs]uint64
	writtenMask   [isa.NumRegs]bool
	seqCounter    uint64
	// specCommitted counts instructions committed while speculative;
	// specCommittedRegion is the in-parallel-region subset.
	specCommitted       uint64
	specCommittedRegion uint64
	// writtenThisIter tracks per-iteration first-write info for the packing
	// IV detector; reset at each committed detach.
	writtenThisIter [isa.NumRegs]bool
	// overflowStalled marks a drain stalled on a full SSB slice (§4.1.2);
	// it clears when the threadlet becomes architectural.
	overflowStalled bool
	// drainFaulted marks a drain stalled on an invalid (unaligned) store
	// address. The fault is deferred: a squash discards it with the
	// speculation; promotion to architectural surfaces it as a MemFault.
	drainFaulted bool
	// memFault is a faulted load this threadlet committed while speculative.
	// Like drainFaulted it is deferred: discarded on squash/restart, raised
	// through Run when the threadlet is promoted to architectural.
	memFault *MemFault

	// ROB slice (ring of in-flight instructions, oldest first).
	rob []*dynInst

	// Post-commit store drain queue (the store buffer in front of SSB/L1D).
	drain []*dynInst

	// LoopFrog epoch state.
	activeRegion int64 // region the epoch belongs to; -1 when none
	// homeRegion is the region this context's epoch was spawned for, fixed
	// for the context's lifetime (-1 for the initial architectural context).
	// Unlike activeRegion it survives a speculative sync loop exit, so
	// squash attribution (region.go) always lands in a real region.
	homeRegion     int64
	detached       bool // spawned a successor for activeRegion
	skipReattach   int  // packed iterations still to execute (§4.3)
	pendingVerify  bool
	predictedStart [isa.NumRegs]uint64 // prediction handed to the successor
	epochEndSeq    uint64
	epochEndPC     int
	// epochFactor is the number of loop iterations this epoch covers (the
	// packing factor used when it spawned its successor), for size training.
	epochFactor int
	// detachWait counts front-end stall cycles waiting for IV resolution.
	detachWait int
	// robHeld/iqHeld track this threadlet's share of the shared windows,
	// for the per-threadlet occupancy caps that prevent an older epoch from
	// starving younger ones (cf. Table 1 footnote: static partitioning
	// performs similarly).
	robHeld, iqHeld int
	hasEpochEnd     bool
	epochStartPC    int

	// Checkpoint: the register starting state of the epoch (§4, "checkpoint
	// store"). pendingFrom[r] != nil while the value is an unresolved future
	// inherited from the parent at spawn.
	ckptRegs    [isa.NumRegs]uint64
	ckptPending [isa.NumRegs]*dynInst
	ckptGHR     uint64

	// Statistics for this epoch.
	epochCommitted uint64
	spawnedAt      int64

	// retireAt delays threadlet commit for in-flight conflict checks.
	retireAt int64

	// Speculative-leak tracking (spectre.go). ctlInFlight lists the seqs of
	// unresolved control instructions (conditional branches and JALR),
	// oldest first — the wrong-path transient window; ckptTaint mirrors
	// ckptRegs; pendingLeaks carries leak candidates that committed to this
	// threadlet while it was speculative, confirmed if the epoch squashes
	// and discarded if it promotes.
	ctlInFlight  []uint64
	ckptTaint    [isa.NumRegs]bool
	pendingLeaks []pendingLeak
}

func (t *threadlet) robCount() int { return len(t.rob) }

// Stats aggregates a run's counters.
type Stats struct {
	Cycles int64
	// ArchInsts counts instructions that became architectural (the program).
	ArchInsts uint64
	// SpecCommitted counts instructions committed to threadlets that were
	// later squashed (failed speculation, figure 8).
	SpecCommitted uint64
	// CommitSlotsUsed counts used commit-bandwidth slots (figure 1).
	CommitSlotsUsed uint64

	// Branch statistics.
	Branches            uint64
	Mispredicts         uint64
	IndirectMispredicts uint64

	// Memory statistics.
	Loads, Stores    uint64
	LoadReplaysLSQ   uint64 // intra-threadlet order violations
	LoadRetriesMSHR  uint64
	StoreDrainStalls uint64

	// LoopFrog statistics.
	Spawns          uint64
	Retires         uint64
	Squashes        [6]uint64 // indexed by core.SquashCause
	PackedSpawns    uint64
	PackRepairs     uint64
	SyncCancels     uint64
	HintNops        uint64
	DetachNoContext uint64

	// Threadlet occupancy: LiveCycles[k] = cycles with exactly k+1 live
	// threadlets; ActiveGE2/ActiveEq4 mirror figure 7's series.
	LiveCycles [8]uint64

	// Per-cycle commit attribution for figure 8.
	ArchCommitCycleSum uint64 // instructions committed while architectural
	SpecCommitCycleSum uint64 // instructions committed while speculative (eventually retired)

	// CommitSlots attributes every commit-bandwidth slot of every cycle to a
	// SlotClass (stall.go); the counters sum to Cycles x Width, making the
	// figure 1 utilisation and figure 8 stall breakdowns direct outputs.
	CommitSlots [NumSlotClasses]uint64

	// WrongPath counts fetch slots lost to redirects.
	RedirectStalls uint64

	// Sampled-window measurement (Config.WarmupInsts): the cycle and the
	// architectural instruction count at which the warmup target was first
	// reached. Zero when no warmup was configured or the run ended first; the
	// sampling driver then measures over the whole run.
	WarmupEndCycle int64
	WarmupEndInsts uint64
	// WarmupEndLive and EndLive are the speculative instructions committed
	// inside live (not yet promoted) threadlets at the warmup endpoint and at
	// the end of the run. ArchInsts jumps in bulk when an epoch promotes, so
	// an inst-aligned window endpoint would count whole epochs whose cycles
	// fell on the other side of the edge; ArchInsts+live is smooth across
	// promotions, and the sampling driver measures IPC between smooth
	// endpoints.
	WarmupEndLive uint64
	EndLive       uint64

	// Region-level: committed parallel-region instructions (for loop
	// speedup accounting) and total detaches seen.
	RegionArchInsts uint64
	Detaches        uint64

	// Speculative-leak detection (spectre.go, Config.SpectreAnalysis):
	// LeakCandidates counts transient loads whose address derived from a
	// transiently-loaded value when they reached the cache hierarchy; Leaks
	// counts the subset whose access was later squashed (the architectural
	// program never performed it); DelayedWakes counts load results withheld
	// by Config.DelaySpeculativeLoadDeps.
	LeakCandidates uint64
	Leaks          uint64
	DelayedWakes   uint64

	// Regions holds the per-region speculation attribution ledgers
	// (region.go), in first-touch order, when Config.RegionLedger is
	// enabled. The machine owns the backing array during a run; afterwards
	// it is read-only and by-value Stats copies share it. The telemetry
	// registry skips the field here (`metrics:"-"`) and re-exports it
	// through the region-keyed section instead.
	Regions []RegionLedger `metrics:"-"`

	Halted bool
}

// IPC returns architectural instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ArchInsts) / float64(s.Cycles)
}

// CommitUtilization returns the fraction of commit bandwidth used by
// architectural commits (figure 1's second series).
func (s *Stats) CommitUtilization(width int) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ArchInsts) / float64(int64(width)*s.Cycles)
}

// MispredictRate returns branch mispredictions per committed branch.
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}
