package cpu

import (
	"fmt"

	"loopfrog/internal/core"
	"loopfrog/internal/isa"
)

// rollbackTo squashes all uncommitted instructions of threadlet t with
// seq >= fromSeq (an intra-threadlet recovery: branch misprediction or LSQ
// order violation) and redirects fetch to target. resolvedBranch, when
// non-nil, is the branch whose resolution triggered the rollback; its
// corrected history was already installed by the caller.
func (m *Machine) rollbackTo(t *threadlet, fromSeq uint64, target int, resolvedBranch *dynInst) {
	cut := len(t.rob)
	for i, e := range t.rob {
		if e.seq >= fromSeq {
			cut = i
			break
		}
	}
	var oldestHist uint64
	haveHist := false
	for i := len(t.rob) - 1; i >= cut; i-- {
		e := t.rob[i]
		e.squashed = true
		if m.spectreLive {
			m.squashSpectre(e)
		}
		if e.hasDest {
			t.renameMap[e.destReg] = e.oldMap
			if e.destReg.IsFP() {
				m.fpRegsUsed--
			} else {
				m.intRegsUsed--
			}
		}
		if e.state == stDispatched || e.state == stReady {
			m.iqUsed--
			t.iqHeld--
		}
		if e.meta.IsLoad {
			m.lqUsed--
		}
		if e.meta.IsStore {
			m.sqUsed--
		}
		m.robUsed--
		t.robHeld--
		if e.spawnedTid >= 0 {
			// The detach that spawned was wrong-path: drop its successors.
			m.squashFrom(e.spawnedTid, core.SquashWrongPath, false)
		}
		if e.meta.IsHint {
			// Restore the epoch state the hint mutated at dispatch.
			t.activeRegion = e.prevRegion
			t.detached = e.prevDetached
			t.skipReattach = e.prevSkip
			t.pendingVerify = e.prevVerify
		}
		if e.endsEpoch {
			t.hasEpochEnd = false
			t.fetchHalted = false
		}
		if e.inst.Op == isa.HALT {
			t.haltSeen = false
			t.fetchHalted = false
		}
		if e.hasPred {
			oldestHist = e.pred.Hist
			haveHist = true
		}
		e.mispredicted = e.mispredicted || false
	}
	t.rob = t.rob[:cut]
	if m.spectreLive {
		t.ctlSquashed(fromSeq)
	}
	if resolvedBranch != nil {
		resolvedBranch.mispredicted = true
	} else if haveHist {
		// Non-branch trigger (LSQ replay): restore the history snapshot of
		// the oldest squashed branch.
		m.bp.SetHistory(t.id, oldestHist)
	}
	m.redirectFetch(t, target)
	m.fixYoungest()
}

// fixYoungest restores the invariant that only a threadlet with a live
// successor is marked detached. It can be violated when a wrong-path sync
// squashes the successors and the sync is then rolled back: the restored
// "detached" state refers to threadlets that no longer exist. Clearing it
// makes the threadlet fall through its reattach and re-execute the work
// sequentially — always safe.
func (m *Machine) fixYoungest() {
	if len(m.order) == 0 {
		return
	}
	t := m.threads[m.order[len(m.order)-1]]
	if !t.detached {
		return
	}
	t.detached = false
	t.skipReattach = 0
	t.pendingVerify = false
	if t.hasEpochEnd {
		// Already halted at its reattach: resume sequentially right after it.
		t.hasEpochEnd = false
		t.retireAt = 0
		m.redirectFetch(t, t.epochEndPC+1)
	}
}

// squashSuccessors drops every live threadlet younger than t (a sync loop
// exit: the speculation was down a path the program did not take). Returns
// the number of threadlets squashed.
func (m *Machine) squashSuccessors(t *threadlet, cause core.SquashCause) int {
	idx := m.orderIdx(t.id)
	if idx < 0 || idx+1 >= len(m.order) {
		return 0
	}
	victim := m.order[idx+1]
	n := len(m.order) - idx - 1
	m.squashFrom(victim, cause, false)
	return n
}

// squashFrom squashes threadlet victimTid and everything younger (§4:
// "Squash and restart t, recycle t+1, t+2, ..."). When restart is true the
// victim restarts its epoch from its checkpoint; otherwise it is recycled
// along with its successors.
func (m *Machine) squashFrom(victimTid int, cause core.SquashCause, restart bool) {
	idx := m.orderIdx(victimTid)
	if idx < 0 {
		return
	}
	if idx == 0 {
		panic(fmt.Sprintf("cpu: attempt to squash architectural threadlet %d (%s)", victimTid, cause))
	}
	victims := append([]int(nil), m.order[idx:]...)
	for i := len(victims) - 1; i >= 0; i-- {
		tid := victims[i]
		v := m.threads[tid]
		m.purgeThreadlet(v)
		m.ssb.Squash(tid)
		m.clearSSBTaint(tid)
		m.cd.Clear(tid)
		m.stats.SpecCommitted += v.epochCommitted
		m.stats.Squashes[cause]++
		if m.regionOn {
			// Victims are always spawned contexts, so homeRegion is a real
			// region even when a speculative sync exit cleared activeRegion.
			lg := m.ledger(v.homeRegion)
			lg.Squashes[cause]++
			lg.SpecLost += v.epochCommitted
			if i == 0 && restart {
				lg.Restarts++
			}
		}
		if v.activeRegion >= 0 {
			m.mon.OnSquash(v.activeRegion, cause)
		}
		if i == 0 && restart {
			m.restartThreadlet(v)
			m.noteRestart(v.epochStartPC)
			m.emitEvent(EvRestart, tid, v.homeRegion, int(cause))
		} else {
			v.live = false
			if m.contextFreeAt[tid] < m.now {
				m.contextFreeAt[tid] = m.now
			}
			if cause == core.SquashSync {
				m.emitEvent(EvSyncCancel, tid, v.homeRegion, int(cause))
			} else {
				m.emitEvent(EvSquash, tid, v.homeRegion, int(cause))
			}
		}
	}
	m.order = m.order[:idx]
	if restart {
		m.order = append(m.order, victimTid)
	}
	// Commit slots lost while the front end refills after the squash are
	// attributed to squash-drain (stall.go).
	if until := m.now + int64(m.cfg.FrontendDepth); until > m.recoverUntil {
		m.recoverUntil = until
	}
	m.fixYoungest()
}

// purgeThreadlet removes all of a threadlet's in-flight state from the
// shared structures.
func (m *Machine) purgeThreadlet(t *threadlet) {
	for _, e := range t.rob {
		e.squashed = true
		if m.spectreLive {
			m.squashSpectre(e)
		}
		m.robUsed--
		t.robHeld--
		if e.hasDest {
			if e.destReg.IsFP() {
				m.fpRegsUsed--
			} else {
				m.intRegsUsed--
			}
		}
		if e.state == stDispatched || e.state == stReady {
			m.iqUsed--
			t.iqHeld--
		}
		if e.meta.IsLoad {
			m.lqUsed--
		}
		if e.meta.IsStore {
			m.sqUsed--
		}
	}
	t.rob = t.rob[:0]
	// Committed-but-undrained stores still hold SQ entries.
	for range t.drain {
		m.sqUsed--
	}
	t.drain = t.drain[:0]
	t.fq = t.fq[:0]
	if m.spectreLive {
		// The whole epoch was misspeculation: candidates it committed are
		// confirmed leaks, and its transient windows are gone.
		for _, pl := range t.pendingLeaks {
			m.confirmLeak(pl.pc, pl.region)
		}
		t.pendingLeaks = t.pendingLeaks[:0]
		t.ctlInFlight = t.ctlInFlight[:0]
	}
}

// restartThreadlet re-launches a squashed threadlet's epoch from its
// checkpoint (§4: "we load the checkpoint back in and restart it").
func (m *Machine) restartThreadlet(t *threadlet) {
	t.fetchPC = t.epochStartPC
	t.fetchHalted = false
	t.haltSeen = false
	t.fetchReadyAt = m.now + m.cfg.SpawnLatency
	t.fetchWaitInst = nil
	t.lineValid = false
	t.hasEpochEnd = false
	t.detached = false
	t.skipReattach = 0
	t.pendingVerify = false
	t.epochCommitted = 0
	t.specCommitted = 0
	t.specCommittedRegion = 0
	t.retireAt = 0
	t.overflowStalled = false
	t.drainFaulted = false
	t.memFault = nil
	t.writtenMask = [isa.NumRegs]bool{}
	t.writtenThisIter = [isa.NumRegs]bool{}
	t.consumedStart = [isa.NumRegs]bool{}
	t.committedRegs = t.ckptRegs
	for r := 0; r < isa.NumRegs; r++ {
		if p := t.ckptPending[r]; p != nil {
			if p.state >= stDone && !p.wakeHeld {
				// The future resolved while we were squashing.
				t.ckptPending[r] = nil
				t.ckptRegs[r] = p.result
				t.ckptTaint[r] = p.taint
				t.committedRegs[r] = p.result
				t.renameMap[r] = mapEntry{val: p.result, taint: p.taint}
				continue
			}
			t.renameMap[r] = mapEntry{prod: p}
			continue
		}
		t.renameMap[r] = mapEntry{val: t.ckptRegs[r], taint: t.ckptTaint[r]}
	}
	m.bp.SetHistory(t.id, t.ckptGHR)
}
