package cpu

// Per-cycle commit-slot attribution (figures 1 and 8). Every cycle the core
// has Width commit-bandwidth slots; each is classified as either retired
// work (architectural or speculative) or a stall with a cause. The counters
// sum exactly to Cycles x Width, so commit-utilisation and failed-speculation
// breakdowns are direct outputs rather than quantities derived after the
// fact.
//
// Unused slots in a cycle share one cause, resolved against the
// architectural threadlet (the only one whose forward progress is the
// program's): a top-down-style decomposition where the oldest blocking
// reason wins.

// SlotClass classifies one commit-bandwidth slot.
type SlotClass uint8

// Commit-slot classes. SlotExec and SlotStoreDrain extend the taxonomy with
// the two backend cases the remaining classes cannot express: waiting on
// execution/memory latency, and commit blocked behind the store-drain queue.
const (
	// SlotRetiredArch: slot committed an instruction of the architectural
	// threadlet.
	SlotRetiredArch SlotClass = iota
	// SlotRetiredSpec: slot committed an instruction of a speculative
	// threadlet (may later be squashed; see Stats.SpecCommitted).
	SlotRetiredSpec
	// SlotFrontend: the architectural ROB was empty — fetch/decode could not
	// deliver work.
	SlotFrontend
	// SlotROBFull: the shared ROB is exhausted, stalling dispatch while the
	// architectural head waits on execution.
	SlotROBFull
	// SlotIQFull: the shared issue queue is exhausted.
	SlotIQFull
	// SlotLSQFull: the load or store queue is exhausted.
	SlotLSQFull
	// SlotSSBOverflow: a threadlet's SSB slice overflowed and its drain is
	// stalled (§4.1.2).
	SlotSSBOverflow
	// SlotSquashDrain: the front end is refilling after a threadlet squash.
	SlotSquashDrain
	// SlotExec: the architectural head is still executing (ALU/memory
	// latency) with no structural backpressure.
	SlotExec
	// SlotStoreDrain: commit or retire blocked behind the post-commit store
	// drain queue.
	SlotStoreDrain

	NumSlotClasses = iota
)

// slotNames are the stable exported metric/trace names, index-aligned with
// the SlotClass constants.
var slotNames = [NumSlotClasses]string{
	"retired-arch",
	"retired-spec",
	"frontend-stall",
	"rob-full",
	"iq-full",
	"lsq-full",
	"ssb-overflow",
	"squash-drain",
	"exec-latency",
	"store-drain",
}

// String names the slot class.
func (c SlotClass) String() string {
	if int(c) < len(slotNames) {
		return slotNames[c]
	}
	return "unknown"
}

// SlotClassNames returns the metric names of all slot classes, index-aligned
// with Stats.CommitSlots.
func SlotClassNames() [NumSlotClasses]string { return slotNames }

// attributeCommitSlots classifies this cycle's Width commit slots. Called
// once per cycle immediately after commit, before younger pipeline stages
// mutate the occupancy the classification reads.
func (m *Machine) attributeCommitSlots(archUsed, totalUsed uint64) {
	m.stats.CommitSlots[SlotRetiredArch] += archUsed
	m.stats.CommitSlots[SlotRetiredSpec] += totalUsed - archUsed
	if idle := uint64(m.cfg.Width) - totalUsed; idle > 0 {
		cause := m.stallCause()
		m.stats.CommitSlots[cause] += idle
		if m.regionOn {
			// Stall slots charge the architectural threadlet's active region
			// (its progress is the program's); -1 is the outside bucket. The
			// retired-slot classes charge per instruction at commit instead.
			m.ledger(m.threads[m.archTid()].activeRegion).Slots[cause] += idle
		}
	}
}

// stallCause resolves why the architectural threadlet could not fill the
// remaining commit slots this cycle. Exactly one cause per cycle, evaluated
// oldest-reason-first so the breakdown is deterministic.
func (m *Machine) stallCause() SlotClass {
	t := m.threads[m.archTid()]
	if len(t.rob) == 0 {
		switch {
		case m.now < m.recoverUntil:
			return SlotSquashDrain
		case len(t.drain) > 0:
			// Epoch fully committed; retire is waiting on the drain queue.
			return SlotStoreDrain
		default:
			return SlotFrontend
		}
	}
	if t.rob[0].state == stDone {
		// The head is complete but blocked from committing: a HALT waiting
		// for the threadlet to become architectural or for stores to drain.
		return SlotStoreDrain
	}
	// The head is in flight. Structural backpressure upstream is the cause
	// when a shared window is exhausted; otherwise it is plain latency.
	switch {
	case m.robUsed >= m.cfg.ROBSize:
		return SlotROBFull
	case m.iqUsed >= m.cfg.IQSize:
		return SlotIQFull
	case m.lqUsed >= m.cfg.LQSize || m.sqUsed >= m.cfg.SQSize:
		return SlotLSQFull
	}
	for _, tid := range m.order {
		if m.threads[tid].overflowStalled {
			return SlotSSBOverflow
		}
	}
	return SlotExec
}

// SetSlotSampler installs a callback invoked every `every` cycles with the
// commit-slot counts accumulated since the previous sample (for trace
// counter tracks). Pass nil to disable; the disabled path costs one nil
// check per cycle. The callback must not retain the machine.
func (m *Machine) SetSlotSampler(every int64, fn func(cycle int64, delta [NumSlotClasses]uint64)) {
	if fn == nil || every <= 0 {
		m.slotSampler = nil
		return
	}
	m.slotSampler = fn
	m.slotEvery = every
	m.slotTick = 0
	m.lastSlots = m.stats.CommitSlots
}

// FlushSlotSample emits the residual partial sample accumulated since the
// last full interval; call once after Run when a sampler is installed.
func (m *Machine) FlushSlotSample() {
	if m.slotSampler == nil {
		return
	}
	m.emitSlotSample()
}

func (m *Machine) emitSlotSample() {
	var delta [NumSlotClasses]uint64
	any := false
	for i := range delta {
		delta[i] = m.stats.CommitSlots[i] - m.lastSlots[i]
		any = any || delta[i] != 0
	}
	if !any {
		return
	}
	m.lastSlots = m.stats.CommitSlots
	m.slotSampler(m.now, delta)
}

// tickSlotSampler advances the sampling countdown; called once per cycle
// when a sampler is installed.
func (m *Machine) tickSlotSampler() {
	m.slotTick++
	if m.slotTick >= m.slotEvery {
		m.slotTick = 0
		m.emitSlotSample()
	}
}
