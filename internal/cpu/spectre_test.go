package cpu

import (
	"testing"

	"loopfrog/internal/asm"
	"loopfrog/internal/workloads"
)

func securityProg(t *testing.T, name string) *asm.Program {
	t.Helper()
	b := workloads.ByName(workloads.Security(), name)
	if b == nil {
		t.Fatalf("workload %s missing from security suite", name)
	}
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runCfg(t *testing.T, cfg Config, prog *asm.Program) (*Machine, *Stats) {
	t.Helper()
	m, err := NewMachine(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, st
}

// TestSpectreDetectsBoundsBypass: the seeded bounds-check-bypass workload
// must light up the dynamic detector — transient loads with taint-derived
// addresses reach the cache and are confirmed when squashed — while the
// detection itself stays invisible: identical cycles, identical
// architectural instruction count, identical result.
func TestSpectreDetectsBoundsBypass(t *testing.T) {
	prog := securityProg(t, "boundsbypass")

	base := DefaultConfig()
	det := DefaultConfig()
	det.SpectreAnalysis = true

	_, stBase := runCfg(t, base, prog)
	m, st := runCfg(t, det, prog)

	if st.LeakCandidates == 0 {
		t.Fatal("bounds-check-bypass produced no leak candidates")
	}
	if st.Leaks == 0 {
		t.Fatal("bounds-check-bypass produced no confirmed leaks")
	}
	rep := m.LeakReport()
	if rep.Confirmed != st.Leaks || len(rep.Sites) == 0 {
		t.Fatalf("leak report inconsistent: %+v vs Leaks=%d", rep, st.Leaks)
	}
	var sum uint64
	for _, s := range rep.Sites {
		sum += s.Count
	}
	if sum != st.Leaks {
		t.Errorf("per-PC site counts sum to %d, want %d", sum, st.Leaks)
	}
	if err := st.ReconcileRegions(); err != nil {
		t.Errorf("region ledgers do not reconcile with leaks: %v", err)
	}

	// Detection is metadata-only.
	if st.Cycles != stBase.Cycles {
		t.Errorf("SpectreAnalysis changed timing: %d cycles vs %d", st.Cycles, stBase.Cycles)
	}
	if st.ArchInsts != stBase.ArchInsts {
		t.Errorf("SpectreAnalysis changed ArchInsts: %d vs %d", st.ArchInsts, stBase.ArchInsts)
	}
}

// TestSpectreWrongPathWindowOnBaseline: with a single threadlet context the
// only transient window is the wrong path between a branch's dispatch and
// its resolution — the classic Spectre v1 window — and the gadget must still
// be caught there.
func TestSpectreWrongPathWindowOnBaseline(t *testing.T) {
	prog := securityProg(t, "boundsbypass")
	cfg := BaselineConfig()
	cfg.SpectreAnalysis = true
	_, st := runCfg(t, cfg, prog)
	if st.Leaks == 0 {
		t.Fatalf("no wrong-path leaks confirmed on the baseline core (candidates %d)", st.LeakCandidates)
	}
}

// TestSpectreHardenedIsClean: the hardened counterpart computes its index
// arithmetically, so no load value ever chooses an access address — zero
// candidates, zero leaks.
func TestSpectreHardenedIsClean(t *testing.T) {
	prog := securityProg(t, "boundshardened")
	cfg := DefaultConfig()
	cfg.SpectreAnalysis = true
	_, st := runCfg(t, cfg, prog)
	if st.LeakCandidates != 0 || st.Leaks != 0 {
		t.Fatalf("hardened workload flagged: candidates %d leaks %d", st.LeakCandidates, st.Leaks)
	}
}

// TestSpectreMitigationEliminatesLeaks: DelaySpeculativeLoadDeps withholds
// transient load results from dependents, so tainted values never reach an
// address computation — candidates drop to zero by construction — while the
// program still computes the same thing.
func TestSpectreMitigationEliminatesLeaks(t *testing.T) {
	prog := securityProg(t, "boundsbypass")

	det := DefaultConfig()
	det.SpectreAnalysis = true
	mit := DefaultConfig()
	mit.SpectreAnalysis = true
	mit.DelaySpeculativeLoadDeps = true

	mDet, stDet := runCfg(t, det, prog)
	mMit, stMit := runCfg(t, mit, prog)

	if stMit.LeakCandidates != 0 || stMit.Leaks != 0 {
		t.Fatalf("mitigated run still leaks: candidates %d leaks %d", stMit.LeakCandidates, stMit.Leaks)
	}
	if stMit.DelayedWakes == 0 {
		t.Fatal("mitigation never held a wakeup")
	}
	if stMit.ArchInsts != stDet.ArchInsts {
		t.Errorf("mitigation changed ArchInsts: %d vs %d", stMit.ArchInsts, stDet.ArchInsts)
	}
	if mMit.FinalRegs() != mDet.FinalRegs() {
		t.Error("mitigation changed the architectural result")
	}
}
