package cpu

import "fmt"

// MemFault reports an invalid memory access (unaligned address or unsupported
// size) that became architectural: the store drained from the architectural
// threadlet, so sequential execution of the program performs the same bad
// access. It is a program error, not a model bug, and Run returns it as a
// normal error instead of panicking.
//
// Speculative threadlets that reach an invalid store address merely stall
// their drain (threadlet.drainFaulted): the fault is deferred, because a
// squash may discard it — e.g. a poisoned pack prediction can compute a
// wild address that the §4.3 verification later squashes. Only promotion to
// architectural surfaces it.
type MemFault struct {
	PC    int    // PC of the faulting store
	Addr  uint64 // effective address
	Size  int    // access size in bytes
	Cycle int64  // cycle the fault became architectural
	Err   error  // underlying *mem.Fault
}

func (f *MemFault) Error() string {
	return fmt.Sprintf("cpu: memory fault at pc %d, cycle %d: %v", f.PC, f.Cycle, f.Err)
}

// Unwrap exposes the underlying *mem.Fault for errors.As.
func (f *MemFault) Unwrap() error { return f.Err }
