package cpu

// Sampled-simulation checkpoints. A Checkpoint is the machine-state snapshot
// the fast-functional tier (internal/fastsim) emits at a configurable
// instruction interval: the architectural state an uninterrupted run would
// have at that instruction, plus the warm microarchitectural state —
// branch-predictor tables and cache tags — that functional warming
// accumulated on the way there. A detailed Machine seeded from a checkpoint
// (NewMachineFromCheckpoint) simulates a window that starts in a realistic
// steady state instead of a cold one, which is what makes short sampled
// windows representative of the surrounding interval (SMARTS/SimPoint
// methodology; the paper's §6.1 weighting combines the window IPCs).
//
// Checkpoints are independent of each other, so one long program splits into
// N windows that the evaluation harness schedules across its worker pool —
// parallel-in-time simulation of a single run.

import (
	"loopfrog/internal/asm"
	"loopfrog/internal/bpred"
	"loopfrog/internal/core"
	"loopfrog/internal/isa"
	"loopfrog/internal/mem"
)

// Checkpoint is a machine-state snapshot at an architectural instruction
// boundary. All referenced state is private to the checkpoint (cloned at
// capture time) and is treated as immutable afterwards: seeding clones again,
// so any number of machines may start from the same checkpoint concurrently.
type Checkpoint struct {
	// PC is the instruction index execution resumes at.
	PC int
	// Insts is the number of dynamic instructions executed before this point
	// (the checkpoint's position in the run).
	Insts uint64
	// Regs is the architectural register file.
	Regs [isa.NumRegs]uint64
	// Mem is the architectural memory at the checkpoint.
	Mem *mem.Memory
	// BP, when non-nil, is warm branch-predictor state (tables shared, context
	// 0 history/RAS); nil seeds a cold predictor.
	BP *bpred.Predictor
	// Hier, when non-nil, is warm cache tag state rebased to cycle 0; nil
	// seeds cold caches.
	Hier *mem.Hierarchy

	// Region is the parallel region the sequential thread chain owns at the
	// checkpoint (the continuation address a detach locked onto and no sync
	// has released); <= 0 means none. Seeding it keeps a window's thread
	// chain attached to the same loop nest level as the uninterrupted run —
	// without it, a window inside a nested region would lock onto the inner
	// loop the full machine treats as hint NOPs and spawn pathologically.
	Region int64
	// Mon and Pack, when non-nil, are warm LoopFrog-engine adaptive state —
	// region-monitor charge/cooldown and pack-predictor training — built by
	// tier-1 functional warming. They carry far longer memory than any
	// affordable detailed warmup (a monitor cooldown alone can span millions
	// of instructions), so without them every window replays the engine's
	// cold-start honeymoon. They must have been warmed with the same
	// Monitor/Pack configuration the window config uses; nil seeds cold
	// engines.
	Mon  *core.RegionMonitor
	Pack *core.PackPredictor
}

// NewMachineFromCheckpoint builds a machine whose architectural state (PC,
// registers, memory) and warm microarchitectural state (predictor tables,
// cache tags) come from a tier-1 checkpoint. Combine with
// Config.MaxArchInsts and Config.WarmupInsts to simulate a bounded, measured
// window. Resuming with no instruction bound runs the remainder of the
// program to completion with the same architectural results as an
// uninterrupted run (the checkpoint-determinism property the sampled pipeline
// rests on).
func NewMachineFromCheckpoint(cfg Config, prog *asm.Program, ck *Checkpoint) (*Machine, error) {
	return newMachine(cfg, prog, ck)
}
