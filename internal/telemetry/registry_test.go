package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

type sampleStats struct {
	Hits     uint64
	Misses   int64
	Ratio    float64
	Enabled  bool
	Buckets  [3]uint64
	internal int // unexported: must be skipped, not rejected
}

func TestRegistryStructSnapshot(t *testing.T) {
	s := &sampleStats{Hits: 7, Misses: -2, Ratio: 0.5, Enabled: true, Buckets: [3]uint64{1, 2, 3}}
	s.internal = 99
	r := NewRegistry()
	if err := r.RegisterStruct("cache", s); err != nil {
		t.Fatal(err)
	}
	s.Hits = 8 // sources must be read live, not frozen at registration
	want := map[string]float64{
		"cache.Hits": 8, "cache.Misses": -2, "cache.Ratio": 0.5, "cache.Enabled": 1,
		"cache.Buckets.0": 1, "cache.Buckets.1": 2, "cache.Buckets.2": 3,
	}
	snap := r.Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d metrics, want %d: %v", len(snap), len(want), snap)
	}
	for _, m := range snap {
		if w, ok := want[m.Name]; !ok || w != m.Value {
			t.Errorf("metric %q = %v, want %v (present %v)", m.Name, m.Value, w, ok)
		}
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestRegistryRejectsNonPointer(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterStruct("x", sampleStats{}); err == nil {
		t.Fatal("value (non-pointer) registration must fail")
	}
	if err := r.RegisterStruct("x", new(int)); err == nil {
		t.Fatal("non-struct registration must fail")
	}
}

func TestRegistryRejectsUnsupportedFields(t *testing.T) {
	type bad struct {
		OK   uint64
		Name string // not exportable as a metric
	}
	r := NewRegistry()
	err := r.RegisterStruct("bad", &bad{})
	if err == nil {
		t.Fatal("struct with a string field must be rejected, not silently truncated")
	}
	if !strings.Contains(err.Error(), "Name") {
		t.Errorf("error should name the offending field: %v", err)
	}
}

func TestRegistryStructFuncAndGauge(t *testing.T) {
	n := 0
	r := NewRegistry()
	if err := r.RegisterStructFunc("by-value", func() any { n++; return sampleStats{Hits: uint64(n)} }); err != nil {
		t.Fatal(err)
	}
	r.RegisterGauge("custom.g", func() float64 { return 2.5 })
	snap := r.Snapshot()
	got := map[string]float64{}
	for _, m := range snap {
		got[m.Name] = m.Value
	}
	if got["by-value.Hits"] < 2 { // validation call + snapshot call
		t.Errorf("struct func not re-read at snapshot: %v", got["by-value.Hits"])
	}
	if got["custom.g"] != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got["custom.g"])
	}
}

func TestRegistryWriteJSONParses(t *testing.T) {
	s := &sampleStats{Hits: 1 << 40, Ratio: 0.25}
	r := NewRegistry()
	if err := r.RegisterStruct("cpu", s); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Metrics["cpu.Hits"] != float64(uint64(1)<<40) {
		t.Errorf("cpu.Hits = %v", doc.Metrics["cpu.Hits"])
	}
	if doc.Metrics["cpu.Ratio"] != 0.25 {
		t.Errorf("cpu.Ratio = %v", doc.Metrics["cpu.Ratio"])
	}
	// Integral counters must render without a fractional part.
	if !strings.Contains(buf.String(), "\"cpu.Hits\": 1099511627776") {
		t.Errorf("integral counter rendered unexpectedly:\n%s", buf.String())
	}
}

func TestRegistryWritePrometheus(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterStruct("serve.api", &sampleStats{Hits: 7, Ratio: 0.25}); err != nil {
		t.Fatal(err)
	}
	r.RegisterGauge("region.41.squash.pack-mispredict", func() float64 { return 3 })
	r.RegisterGauge("9lives", func() float64 { return 1 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every metric exports as a gauge with its name mapped onto the
	// Prometheus charset: dots and dashes become underscores, a leading
	// digit gains an underscore prefix, integral values stay integral.
	for _, want := range []string{
		"# TYPE serve_api_Hits gauge\nserve_api_Hits 7\n",
		"serve_api_Ratio 0.25\n",
		"# TYPE region_41_squash_pack_mispredict gauge\nregion_41_squash_pack_mispredict 3\n",
		"_9lives 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		name := strings.Fields(line)[0]
		if name == "#" {
			name = strings.Fields(line)[2]
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' || (c >= '0' && c <= '9' && i > 0)
			if !ok {
				t.Fatalf("name %q escapes the Prometheus charset (line %q)", name, line)
			}
		}
	}
}

func TestRegistryWriteTable(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterStruct("c", &sampleStats{Hits: 3}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "c.Hits") || !strings.Contains(buf.String(), "3") {
		t.Errorf("table missing entries:\n%s", buf.String())
	}
}
