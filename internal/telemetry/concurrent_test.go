package telemetry

import (
	"io"
	"sync/atomic"
	"testing"

	"loopfrog/internal/cpu"
	"loopfrog/internal/workloads"
)

// TestConcurrentCollection polls the full registry from several goroutines
// while the machine runs — exactly what a /metrics endpoint does to a live
// simulation. Under -race this proves the snapshot publishing protocol: the
// collectors never touch the pipeline's counters directly. After the run the
// final snapshot must be exact.
func TestConcurrentCollection(t *testing.T) {
	b := workloads.ByName(workloads.CPU2017(), "mcf")
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.NewMachine(cpu.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := CollectMachine(reg, m); err != nil {
		t.Fatal(err)
	}

	var running atomic.Bool
	running.Store(true)
	const pollers = 4
	polled := make(chan uint64, pollers)
	for p := 0; p < pollers; p++ {
		go func() {
			var n uint64
			var last float64
			for running.Load() {
				snap := reg.Snapshot()
				n++
				for _, mt := range snap {
					if mt.Name == "cpu.Cycles" {
						if mt.Value < last {
							t.Errorf("cpu.Cycles went backwards: %v -> %v", last, mt.Value)
						}
						last = mt.Value
					}
				}
				// Exercise the JSON writer concurrently too.
				if err := reg.WriteJSON(io.Discard); err != nil {
					t.Error(err)
				}
			}
			polled <- n
		}()
	}

	st, err := m.Run()
	running.Store(false)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for p := 0; p < pollers; p++ {
		total += <-polled
	}
	if total == 0 {
		t.Fatal("no snapshot was taken during the run")
	}

	// Post-run the published snapshot is exact: spot-check against the live
	// final stats.
	final := map[string]float64{}
	for _, mt := range reg.Snapshot() {
		final[mt.Name] = mt.Value
	}
	if got, want := final["cpu.Cycles"], float64(st.Cycles); got != want {
		t.Errorf("final cpu.Cycles = %v, want %v", got, want)
	}
	if got, want := final["cpu.ArchInsts"], float64(st.ArchInsts); got != want {
		t.Errorf("final cpu.ArchInsts = %v, want %v", got, want)
	}
	if final["ssb.Writes"] == 0 {
		t.Error("final ssb.Writes = 0, want > 0 on a LoopFrog run")
	}
	if final["mem.l1d.Accesses"] == 0 {
		t.Error("final mem.l1d.Accesses = 0, want > 0")
	}
}

// TestSnapshotStatsIdleMachine: a machine that never ran publishes its reset
// state, and SnapshotStats is safe before, during (covered above), and after
// a run.
func TestSnapshotStatsIdleMachine(t *testing.T) {
	b := workloads.ByName(workloads.CPU2017(), "mcf")
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.NewMachine(cpu.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if snap := m.SnapshotStats(); snap.CPU.Cycles != 0 || snap.CPU.ArchInsts != 0 {
		t.Errorf("idle machine snapshot not at reset: %+v", snap.CPU)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if snap := m.SnapshotStats(); snap.CPU.Cycles != st.Cycles {
		t.Errorf("post-run snapshot cycles = %d, want %d", snap.CPU.Cycles, st.Cycles)
	}
}
