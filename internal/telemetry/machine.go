package telemetry

import (
	"fmt"
	"sync"

	"loopfrog/internal/core"
	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
)

// This file adapts the simulator's components onto the generic registry and
// trace writer: CollectMachine/CollectHarness pull every stats struct into
// one metric tree, and AttachMachine renders the threadlet Event stream plus
// per-interval commit-slot attribution as a Perfetto-loadable trace.

// Metric tree prefixes.
const (
	prefixCPU      = "cpu"
	prefixSSB      = "ssb"
	prefixConflict = "conflict"
	prefixPack     = "pack"
	prefixMonitor  = "monitor"
	prefixBPred    = "bpred"
	prefixMemL1I   = "mem.l1i"
	prefixMemL1D   = "mem.l1d"
	prefixMemL2    = "mem.l2"
	prefixHarness  = "harness"
	prefixSlots    = "cpu.slots"
	prefixRegion   = "region"
)

// CollectMachine registers every component statistic of the machine into
// reg: the core counters (cpu.*), the LoopFrog apparatus (ssb.*, conflict.*,
// pack.*, monitor.*), the predictor (bpred.*), the cache hierarchy
// (mem.l1i.*, mem.l1d.*, mem.l2.*), and named commit-slot attribution
// (cpu.slots.<class>). Every source reads through the machine's published
// StatsSnapshot, so reg can be snapshotted from any goroutine during or
// after Run — a /metrics endpoint polling mid-run never races the pipeline
// (the snapshot lags a live run by at most the machine's publish interval,
// ~8k cycles, and is exact once the run returns).
func CollectMachine(reg *Registry, m *cpu.Machine) error {
	for _, src := range []struct {
		prefix string
		read   func() any
	}{
		{prefixCPU, func() any { return m.SnapshotStats().CPU }},
		{prefixSSB, func() any { return m.SnapshotStats().SSB }},
		{prefixConflict, func() any { return m.SnapshotStats().Conflict }},
		{prefixPack, func() any { return m.SnapshotStats().Pack }},
		{prefixMonitor, func() any { return m.SnapshotStats().Monitor }},
		{prefixBPred, func() any { return m.SnapshotStats().BPred }},
		{prefixMemL1I, func() any { return m.SnapshotStats().L1I }},
		{prefixMemL1D, func() any { return m.SnapshotStats().L1D }},
		{prefixMemL2, func() any { return m.SnapshotStats().L2 }},
	} {
		if err := reg.RegisterStructFunc(src.prefix, src.read); err != nil {
			return err
		}
	}
	// Named views of the index-keyed arrays, for humans and dashboards.
	names := cpu.SlotClassNames()
	for i := 0; i < cpu.NumSlotClasses; i++ {
		i := i
		reg.RegisterGauge(prefixSlots+"."+names[i], func() float64 {
			return float64(m.SnapshotStats().CPU.CommitSlots[i])
		})
	}
	for c := 0; c < core.NumSquashCauses; c++ {
		c := c
		reg.RegisterGauge(prefixCPU+".squash."+core.SquashCause(c).String(), func() float64 {
			return float64(m.SnapshotStats().CPU.Squashes[c])
		})
	}
	// Region-keyed section: the per-region speculation ledgers, whose key
	// space (region IDs) only exists at run time, exported as
	// region.<id>.<counter>. Empty when Config.RegionLedger is off.
	reg.RegisterFunc(prefixRegion, func() []Metric {
		return AppendRegionMetrics(nil, m.SnapshotStats().CPU.Regions)
	})
	return nil
}

// AppendRegionMetrics flattens per-region ledgers into <id>.<counter>
// metrics (the outside-any-region bucket renders as "outside"). Shared by
// CollectMachine's region section and any harness-level aggregation export.
func AppendRegionMetrics(out []Metric, regions []cpu.RegionLedger) []Metric {
	slotNames := cpu.SlotClassNames()
	for i := range regions {
		l := &regions[i]
		key := "outside"
		if l.Region != cpu.RegionOutside {
			key = fmt.Sprintf("%d", l.Region)
		}
		add := func(name string, v uint64) {
			out = append(out, Metric{Name: key + "." + name, Value: float64(v)})
		}
		add("detaches", l.Detaches)
		add("spawns", l.Spawns)
		add("packed-spawns", l.PackedSpawns)
		add("detach-no-context", l.DetachNoContext)
		add("retires", l.Retires)
		add("promotes", l.Promotes)
		add("restarts", l.Restarts)
		add("spec-won", l.SpecWon)
		add("spec-lost", l.SpecLost)
		add("pack-verifies", l.PackVerifies)
		add("pack-mispredicts", l.PackMispredicts)
		add("pack-repairs", l.PackRepairs)
		for c := 0; c < core.NumSquashCauses; c++ {
			add("squash."+core.SquashCause(c).String(), l.Squashes[c])
		}
		for c := 0; c < cpu.NumSlotClasses; c++ {
			add("slots."+slotNames[c], l.Slots[c])
		}
	}
	return out
}

// CollectHarness registers the evaluation harness's scheduling and run-cache
// telemetry into reg under harness.*.
func CollectHarness(reg *Registry, h *sim.Harness) error {
	return reg.RegisterStructFunc(prefixHarness, func() any { return h.Stats() })
}

// DefaultSlotSampleInterval is the default commit-slot counter sampling
// period, in cycles. At one trace microsecond per cycle this yields ~4k
// samples per million cycles — dense enough for Perfetto's stacked counter
// view, small next to the lifecycle events.
const DefaultSlotSampleInterval = 256

// MachineTracer bridges a machine's event hook and slot sampler onto a
// Trace. Attach before Run; call Finish once after.
type MachineTracer struct {
	tr   *Trace
	m    *cpu.Machine
	pid  int
	open []bool // per-context: an epoch span is open on its track
}

// AttachMachine wires m's threadlet lifecycle events and commit-slot
// attribution into tr: one trace thread per threadlet context carrying epoch
// spans (begin at spawn, end at retire/squash) with promote/squash/restart
// instants carrying their region, and a stacked "commit-slots" counter track
// sampled every sampleEvery cycles (<= 0 uses DefaultSlotSampleInterval).
// Everything lands on trace process 0 ("loopfrog core").
func AttachMachine(m *cpu.Machine, tr *Trace, sampleEvery int64) *MachineTracer {
	return AttachMachinePID(m, tr, sampleEvery, 0, "loopfrog core")
}

// AttachMachinePID is AttachMachine onto an explicit trace process, so
// several machines (the parallel-in-time windows of a sampled run) can share
// one Trace without their spans interleaving ambiguously: each window gets
// its own pid and process name, and Perfetto renders them as separate
// process groups. The Trace serialises concurrent emissions itself.
func AttachMachinePID(m *cpu.Machine, tr *Trace, sampleEvery int64, pid int, name string) *MachineTracer {
	cfg := m.Config()
	mt := &MachineTracer{tr: tr, m: m, pid: pid, open: make([]bool, cfg.Threadlets)}
	tr.MetaProcess(pid, name)
	for tid := 0; tid < cfg.Threadlets; tid++ {
		tr.MetaThread(pid, tid, fmt.Sprintf("ctx%d", tid))
	}
	// Context 0 is live from reset as the initial architectural threadlet;
	// it never sees an EvSpawn.
	tr.Begin(pid, 0, m.Now(), "arch", nil)
	mt.open[0] = true

	m.SetEventHook(mt.onEvent)
	if sampleEvery <= 0 {
		sampleEvery = DefaultSlotSampleInterval
	}
	m.SetSlotSampler(sampleEvery, mt.onSlotSample)
	return mt
}

func (mt *MachineTracer) onEvent(e cpu.Event) {
	if e.Tid < 0 || e.Tid >= len(mt.open) {
		return
	}
	switch e.Kind {
	case cpu.EvSpawn:
		if mt.open[e.Tid] { // defensive: never emit unbalanced B events
			mt.tr.End(mt.pid, e.Tid, e.Cycle)
		}
		mt.tr.Begin(mt.pid, e.Tid, e.Cycle, fmt.Sprintf("epoch r=%d", e.Region),
			map[string]int64{"region": e.Region, "factor": int64(e.Detail)})
		mt.open[e.Tid] = true
	case cpu.EvRetire:
		mt.closeSpan(e.Tid, e.Cycle)
	case cpu.EvPromote:
		mt.tr.Instant(mt.pid, e.Tid, e.Cycle, "promote",
			map[string]int64{"region": e.Region})
	case cpu.EvSquash:
		mt.tr.Instant(mt.pid, e.Tid, e.Cycle, "squash:"+core.SquashCause(e.Detail).String(),
			map[string]int64{"region": e.Region, "cause": int64(e.Detail)})
		mt.closeSpan(e.Tid, e.Cycle)
	case cpu.EvSyncCancel:
		mt.tr.Instant(mt.pid, e.Tid, e.Cycle, "sync-cancel",
			map[string]int64{"region": e.Region})
		mt.closeSpan(e.Tid, e.Cycle)
	case cpu.EvRestart:
		// The context stays live and re-runs its epoch from the checkpoint:
		// end the failed attempt and open the next one.
		mt.tr.Instant(mt.pid, e.Tid, e.Cycle, "restart:"+core.SquashCause(e.Detail).String(),
			map[string]int64{"region": e.Region, "cause": int64(e.Detail)})
		if mt.open[e.Tid] {
			mt.tr.End(mt.pid, e.Tid, e.Cycle)
		}
		mt.tr.Begin(mt.pid, e.Tid, e.Cycle, fmt.Sprintf("epoch r=%d retry", e.Region),
			map[string]int64{"region": e.Region})
		mt.open[e.Tid] = true
	}
}

func (mt *MachineTracer) closeSpan(tid int, cycle int64) {
	if mt.open[tid] {
		mt.tr.End(mt.pid, tid, cycle)
		mt.open[tid] = false
	}
}

func (mt *MachineTracer) onSlotSample(cycle int64, delta [cpu.NumSlotClasses]uint64) {
	names := cpu.SlotClassNames()
	series := make(map[string]int64, cpu.NumSlotClasses)
	for i, d := range delta {
		series[names[i]] = int64(d)
	}
	mt.tr.Counter(mt.pid, cycle, "commit-slots", series)
}

// TraceSampledWindows builds the observer pair for tracing a sampled run's
// parallel-in-time detailed windows into one Trace. The observe function
// plugs into sim's RunSampledObservedCtx: window i lands on trace pid i+1
// (pid 0 stays reserved for a whole-run machine) named "loopfrog window
// i+1", so Perfetto renders each window as its own process group and
// interleaved windows never read as one ambiguous timeline. Call finish
// exactly once after the sampled run returns to flush and close every
// window's tracer; the caller still owns tr and must Close it. Windows
// served from the harness run-cache execute no machine and leave no tracks.
func TraceSampledWindows(tr *Trace, sampleEvery int64) (observe func(win int, m *cpu.Machine), finish func()) {
	var mu sync.Mutex
	var tracers []*MachineTracer
	observe = func(win int, m *cpu.Machine) {
		mt := AttachMachinePID(m, tr, sampleEvery, win+1, fmt.Sprintf("loopfrog window %d", win+1))
		mu.Lock()
		tracers = append(tracers, mt)
		mu.Unlock()
	}
	finish = func() {
		mu.Lock()
		defer mu.Unlock()
		for _, mt := range tracers {
			mt.Finish()
		}
		tracers = nil
	}
	return observe, finish
}

// Finish flushes the residual slot sample, closes every span still open at
// the machine's final cycle, and detaches the hooks. The caller still owns
// tr and must Close it.
func (mt *MachineTracer) Finish() {
	mt.m.FlushSlotSample()
	for tid := range mt.open {
		mt.closeSpan(tid, mt.m.Now())
	}
	mt.m.SetEventHook(nil)
	mt.m.SetSlotSampler(0, nil)
}
