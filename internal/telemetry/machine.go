package telemetry

import (
	"fmt"

	"loopfrog/internal/core"
	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
)

// This file adapts the simulator's components onto the generic registry and
// trace writer: CollectMachine/CollectHarness pull every stats struct into
// one metric tree, and AttachMachine renders the threadlet Event stream plus
// per-interval commit-slot attribution as a Perfetto-loadable trace.

// Metric tree prefixes.
const (
	prefixCPU      = "cpu"
	prefixSSB      = "ssb"
	prefixConflict = "conflict"
	prefixPack     = "pack"
	prefixMonitor  = "monitor"
	prefixBPred    = "bpred"
	prefixMemL1I   = "mem.l1i"
	prefixMemL1D   = "mem.l1d"
	prefixMemL2    = "mem.l2"
	prefixHarness  = "harness"
	prefixSlots    = "cpu.slots"
)

// CollectMachine registers every component statistic of the machine into
// reg: the core counters (cpu.*), the LoopFrog apparatus (ssb.*, conflict.*,
// pack.*, monitor.*), the predictor (bpred.*), the cache hierarchy
// (mem.l1i.*, mem.l1d.*, mem.l2.*), and named commit-slot attribution
// (cpu.slots.<class>). Every source reads through the machine's published
// StatsSnapshot, so reg can be snapshotted from any goroutine during or
// after Run — a /metrics endpoint polling mid-run never races the pipeline
// (the snapshot lags a live run by at most the machine's publish interval,
// ~8k cycles, and is exact once the run returns).
func CollectMachine(reg *Registry, m *cpu.Machine) error {
	for _, src := range []struct {
		prefix string
		read   func() any
	}{
		{prefixCPU, func() any { return m.SnapshotStats().CPU }},
		{prefixSSB, func() any { return m.SnapshotStats().SSB }},
		{prefixConflict, func() any { return m.SnapshotStats().Conflict }},
		{prefixPack, func() any { return m.SnapshotStats().Pack }},
		{prefixMonitor, func() any { return m.SnapshotStats().Monitor }},
		{prefixBPred, func() any { return m.SnapshotStats().BPred }},
		{prefixMemL1I, func() any { return m.SnapshotStats().L1I }},
		{prefixMemL1D, func() any { return m.SnapshotStats().L1D }},
		{prefixMemL2, func() any { return m.SnapshotStats().L2 }},
	} {
		if err := reg.RegisterStructFunc(src.prefix, src.read); err != nil {
			return err
		}
	}
	// Named views of the index-keyed arrays, for humans and dashboards.
	names := cpu.SlotClassNames()
	for i := 0; i < cpu.NumSlotClasses; i++ {
		i := i
		reg.RegisterGauge(prefixSlots+"."+names[i], func() float64 {
			return float64(m.SnapshotStats().CPU.CommitSlots[i])
		})
	}
	for c := 0; c < core.NumSquashCauses; c++ {
		c := c
		reg.RegisterGauge(prefixCPU+".squash."+core.SquashCause(c).String(), func() float64 {
			return float64(m.SnapshotStats().CPU.Squashes[c])
		})
	}
	return nil
}

// CollectHarness registers the evaluation harness's scheduling and run-cache
// telemetry into reg under harness.*.
func CollectHarness(reg *Registry, h *sim.Harness) error {
	return reg.RegisterStructFunc(prefixHarness, func() any { return h.Stats() })
}

// DefaultSlotSampleInterval is the default commit-slot counter sampling
// period, in cycles. At one trace microsecond per cycle this yields ~4k
// samples per million cycles — dense enough for Perfetto's stacked counter
// view, small next to the lifecycle events.
const DefaultSlotSampleInterval = 256

// MachineTracer bridges a machine's event hook and slot sampler onto a
// Trace. Attach before Run; call Finish once after.
type MachineTracer struct {
	tr   *Trace
	m    *cpu.Machine
	open []bool // per-context: an epoch span is open on its track
}

// AttachMachine wires m's threadlet lifecycle events and commit-slot
// attribution into tr: one trace thread per threadlet context carrying epoch
// spans (begin at spawn, end at retire/squash) with promote/squash/restart
// instants, and a stacked "commit-slots" counter track sampled every
// sampleEvery cycles (<= 0 uses DefaultSlotSampleInterval).
func AttachMachine(m *cpu.Machine, tr *Trace, sampleEvery int64) *MachineTracer {
	cfg := m.Config()
	mt := &MachineTracer{tr: tr, m: m, open: make([]bool, cfg.Threadlets)}
	tr.MetaProcess(0, "loopfrog core")
	for tid := 0; tid < cfg.Threadlets; tid++ {
		tr.MetaThread(0, tid, fmt.Sprintf("ctx%d", tid))
	}
	// Context 0 is live from reset as the initial architectural threadlet;
	// it never sees an EvSpawn.
	tr.Begin(0, 0, m.Now(), "arch", nil)
	mt.open[0] = true

	m.SetEventHook(mt.onEvent)
	if sampleEvery <= 0 {
		sampleEvery = DefaultSlotSampleInterval
	}
	m.SetSlotSampler(sampleEvery, mt.onSlotSample)
	return mt
}

func (mt *MachineTracer) onEvent(e cpu.Event) {
	if e.Tid < 0 || e.Tid >= len(mt.open) {
		return
	}
	switch e.Kind {
	case cpu.EvSpawn:
		if mt.open[e.Tid] { // defensive: never emit unbalanced B events
			mt.tr.End(0, e.Tid, e.Cycle)
		}
		mt.tr.Begin(0, e.Tid, e.Cycle, fmt.Sprintf("epoch r=%d", e.Region),
			map[string]int64{"region": e.Region, "factor": int64(e.Detail)})
		mt.open[e.Tid] = true
	case cpu.EvRetire:
		mt.closeSpan(e.Tid, e.Cycle)
	case cpu.EvPromote:
		mt.tr.Instant(0, e.Tid, e.Cycle, "promote", nil)
	case cpu.EvSquash:
		mt.tr.Instant(0, e.Tid, e.Cycle, "squash:"+core.SquashCause(e.Detail).String(), nil)
		mt.closeSpan(e.Tid, e.Cycle)
	case cpu.EvSyncCancel:
		mt.tr.Instant(0, e.Tid, e.Cycle, "sync-cancel", nil)
		mt.closeSpan(e.Tid, e.Cycle)
	case cpu.EvRestart:
		// The context stays live and re-runs its epoch from the checkpoint:
		// end the failed attempt and open the next one.
		mt.tr.Instant(0, e.Tid, e.Cycle, "restart:"+core.SquashCause(e.Detail).String(), nil)
		if mt.open[e.Tid] {
			mt.tr.End(0, e.Tid, e.Cycle)
		}
		mt.tr.Begin(0, e.Tid, e.Cycle, fmt.Sprintf("epoch r=%d retry", e.Region),
			map[string]int64{"region": e.Region})
		mt.open[e.Tid] = true
	}
}

func (mt *MachineTracer) closeSpan(tid int, cycle int64) {
	if mt.open[tid] {
		mt.tr.End(0, tid, cycle)
		mt.open[tid] = false
	}
}

func (mt *MachineTracer) onSlotSample(cycle int64, delta [cpu.NumSlotClasses]uint64) {
	names := cpu.SlotClassNames()
	series := make(map[string]int64, cpu.NumSlotClasses)
	for i, d := range delta {
		series[names[i]] = int64(d)
	}
	mt.tr.Counter(0, cycle, "commit-slots", series)
}

// Finish flushes the residual slot sample, closes every span still open at
// the machine's final cycle, and detaches the hooks. The caller still owns
// tr and must Close it.
func (mt *MachineTracer) Finish() {
	mt.m.FlushSlotSample()
	for tid := range mt.open {
		mt.closeSpan(tid, mt.m.Now())
	}
	mt.m.SetEventHook(nil)
	mt.m.SetSlotSampler(0, nil)
}
