// Package telemetry is the simulator's unified observability layer: a
// registry of named metrics that every simulator component exports into, and
// a Chrome trace-event writer (trace.go) that renders threadlet lifecycles
// and pipeline stall attribution for Perfetto.
//
// The registry is pull-based: components keep accumulating into their own
// stats structs exactly as before (the hot path never touches the registry),
// and Snapshot walks the registered sources with reflection at export time.
// This keeps instrumentation cost off the simulation loop entirely — a
// machine that is never snapshotted pays nothing.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// Metric is one named sample in a snapshot.
type Metric struct {
	Name  string
	Value float64
}

// source is one registered metric producer.
type source struct {
	prefix string
	read   func() []Metric
}

// Registry holds named metric sources. The zero value is ready to use;
// registration and snapshots are safe for concurrent use, including
// Snapshot/WriteJSON calls racing each other (a polling /metrics endpoint).
// A source's read function must itself be safe to call from any goroutine:
// register a struct only while its producer is quiescent, or use a
// RegisterStructFunc that returns a coherent copy (cpu.Machine.SnapshotStats,
// sim.Harness.Stats do exactly this).
type Registry struct {
	mu      sync.Mutex
	sources []source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// RegisterStruct registers every exported numeric field of the struct
// pointed to by ptr under prefix ("cpu", "mem.l1d", ...). Fields are read at
// snapshot time, so the caller keeps mutating the struct freely. Supported
// field kinds are integers, unsigned integers, floats, bools (exported as
// 0/1), and fixed-size arrays of those (exported as name.0, name.1, ...).
// An exported field of any other kind is an error: the registry refuses to
// silently drop data.
func (r *Registry) RegisterStruct(prefix string, ptr any) error {
	v := reflect.ValueOf(ptr)
	if v.Kind() != reflect.Pointer || v.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("telemetry: RegisterStruct(%q) needs a struct pointer, got %T", prefix, ptr)
	}
	if bad := unsupportedFields(v.Elem().Type(), ""); len(bad) > 0 {
		return fmt.Errorf("telemetry: %q has exported fields the registry cannot export: %s",
			prefix, strings.Join(bad, ", "))
	}
	elem := v.Elem()
	r.register(prefix, func() []Metric {
		return appendStructMetrics(nil, "", elem)
	})
	return nil
}

// RegisterStructFunc registers a snapshot function returning a struct (or
// struct pointer) whose exported fields are flattened under prefix at every
// snapshot, for components that hand out their statistics by value. fn is
// invoked once at registration to validate the field kinds.
func (r *Registry) RegisterStructFunc(prefix string, fn func() any) error {
	v := reflect.ValueOf(fn())
	if v.Kind() == reflect.Pointer {
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return fmt.Errorf("telemetry: RegisterStructFunc(%q) needs a struct, got %s", prefix, v.Kind())
	}
	if bad := unsupportedFields(v.Type(), ""); len(bad) > 0 {
		return fmt.Errorf("telemetry: %q has exported fields the registry cannot export: %s",
			prefix, strings.Join(bad, ", "))
	}
	r.register(prefix, func() []Metric {
		v := reflect.ValueOf(fn())
		if v.Kind() == reflect.Pointer {
			v = v.Elem()
		}
		return appendStructMetrics(nil, "", v)
	})
	return nil
}

// RegisterGauge registers a single named metric read from fn at snapshot
// time.
func (r *Registry) RegisterGauge(name string, fn func() float64) {
	r.register("", func() []Metric { return []Metric{{Name: name, Value: fn()}} })
}

// RegisterFunc registers a dynamic source: fn is called at every snapshot
// and returns a fresh metric list, for sections whose key space only exists
// at run time (the per-region ledgers). Metric names are prefixed like
// RegisterStruct fields.
func (r *Registry) RegisterFunc(prefix string, fn func() []Metric) {
	r.register(prefix, fn)
}

func (r *Registry) register(prefix string, read func() []Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources = append(r.sources, source{prefix: prefix, read: read})
}

// Snapshot reads every source and returns the metrics sorted by name.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	sources := append([]source(nil), r.sources...)
	r.mu.Unlock()
	var out []Metric
	for _, s := range sources {
		for _, m := range s.read() {
			if s.prefix != "" {
				m.Name = s.prefix + "." + m.Name
			}
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON writes the snapshot as one sorted JSON object:
// {"metrics": {"name": value, ...}}. Integral values render without a
// fractional part.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	b.WriteString("{\n  \"metrics\": {\n")
	for i, m := range snap {
		key, err := json.Marshal(m.Name)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "    %s: %s", key, formatValue(m.Value))
		if i < len(snap)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  }\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTable writes the snapshot as an aligned human-readable table.
func (r *Registry) WriteTable(w io.Writer) error {
	snap := r.Snapshot()
	width := 0
	for _, m := range snap {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range snap {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, m.Name, formatValue(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one gauge per metric, names sanitised to the
// Prometheus charset (every character outside [a-zA-Z0-9_:] becomes '_', a
// leading digit gains a '_' prefix), sorted by the original name. All
// metrics export as gauges: the registry cannot distinguish monotonic
// counters from instantaneous values, and a gauge is always safe to scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	for _, m := range snap {
		name := promName(m.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, formatValue(m.Value))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a registry metric name onto the Prometheus name charset.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatValue renders integral floats without a decimal point so counters
// stay readable (and JSON-exact for values within float64's integer range).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// unsupportedFields lists exported fields (dotted paths) whose kind the
// registry cannot export. A field tagged `metrics:"-"` is skipped: the
// owning package opted it out of flattening (typically to re-export it
// through a dynamic RegisterFunc section instead).
func unsupportedFields(t reflect.Type, path string) []string {
	var bad []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Tag.Get("metrics") == "-" {
			continue
		}
		name := f.Name
		if path != "" {
			name = path + "." + name
		}
		ft := f.Type
		if ft.Kind() == reflect.Array {
			ft = ft.Elem()
		}
		switch ft.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64, reflect.Bool:
		case reflect.Struct:
			bad = append(bad, unsupportedFields(ft, name)...)
		default:
			bad = append(bad, name)
		}
	}
	return bad
}

// appendStructMetrics flattens the exported fields of a struct value.
func appendStructMetrics(out []Metric, path string, v reflect.Value) []Metric {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Tag.Get("metrics") == "-" {
			continue
		}
		name := f.Name
		if path != "" {
			name = path + "." + name
		}
		out = appendValueMetrics(out, name, v.Field(i))
	}
	return out
}

func appendValueMetrics(out []Metric, name string, v reflect.Value) []Metric {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		out = append(out, Metric{Name: name, Value: float64(v.Int())})
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		out = append(out, Metric{Name: name, Value: float64(v.Uint())})
	case reflect.Float32, reflect.Float64:
		out = append(out, Metric{Name: name, Value: v.Float()})
	case reflect.Bool:
		val := 0.0
		if v.Bool() {
			val = 1
		}
		out = append(out, Metric{Name: name, Value: val})
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			out = appendValueMetrics(out, fmt.Sprintf("%s.%d", name, i), v.Index(i))
		}
	case reflect.Struct:
		out = appendStructMetrics(out, name, v)
	}
	return out
}
