package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// traceEvent mirrors the Chrome trace-event JSON schema fields the tests
// validate.
type traceEvent struct {
	Ph   string         `json:"ph"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Ts   *int64         `json:"ts"`
	Name string         `json:"name"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

// num reads a numeric arg (JSON numbers decode as float64 in the any map).
func (e traceEvent) num(key string) (float64, bool) {
	v, ok := e.Args[key].(float64)
	return v, ok
}

type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

func decodeTrace(t *testing.T, data []byte) traceDoc {
	t.Helper()
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, data)
	}
	return doc
}

func TestTraceWriterSchema(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.MetaProcess(0, "core")
	tr.MetaThread(0, 1, "ctx1")
	tr.Begin(0, 1, 10, `epoch "q" r=3`, map[string]int64{"region": 3, "factor": 2})
	tr.Instant(0, 1, 15, "squash:conflict", nil)
	tr.Counter(0, 16, "commit-slots", map[string]int64{"retired-arch": 5, "frontend-stall": 3})
	tr.End(0, 1, 20)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, buf.Bytes())
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(doc.TraceEvents))
	}
	if tr.Events() != 6 {
		t.Errorf("Events() = %d, want 6", tr.Events())
	}
	depth := 0
	for i, e := range doc.TraceEvents {
		if e.Pid == nil || e.Tid == nil || e.Ts == nil || e.Ph == "" {
			t.Fatalf("event %d missing required keys: %+v", i, e)
		}
		switch e.Ph {
		case "B":
			depth++
			if r, _ := e.num("region"); r != 3 {
				t.Errorf("begin args lost: %+v", e.Args)
			}
			if f, _ := e.num("factor"); f != 2 {
				t.Errorf("begin args lost: %+v", e.Args)
			}
		case "E":
			depth--
		case "i":
			if e.S != "t" {
				t.Errorf("instant scope = %q, want thread", e.S)
			}
		case "C":
			ra, _ := e.num("retired-arch")
			fs, _ := e.num("frontend-stall")
			if ra != 5 || fs != 3 {
				t.Errorf("counter series lost: %+v", e.Args)
			}
		case "M":
			if e.Name != "process_name" && e.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", e.Name)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if depth != 0 {
		t.Errorf("unbalanced B/E events: depth %d", depth)
	}
}

func TestTraceWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, buf.Bytes())
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty trace has %d events", len(doc.TraceEvents))
	}
}

func TestTraceWriterEscapesNames(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Begin(0, 0, 0, "weird \"name\"\\with\nescapes", nil)
	tr.End(0, 0, 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, buf.Bytes())
	if doc.TraceEvents[0].Name != "weird \"name\"\\with\nescapes" {
		t.Errorf("name mangled: %q", doc.TraceEvents[0].Name)
	}
}
