package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Trace streams Chrome trace-event JSON (the "JSON Array Format" that
// Perfetto and chrome://tracing load). Events are written as they are
// emitted, so arbitrarily long runs never buffer the whole trace in memory.
//
// The simulator maps model time onto trace time at one cycle per
// microsecond: Perfetto's timeline then reads directly in cycles.
//
// Track layout convention (see AttachMachine): one thread per threadlet
// context carrying epoch spans and squash/conflict instants, plus counter
// tracks for per-interval commit-slot attribution.
//
// Emission is serialised internally, so several MachineTracers on different
// goroutines (the parallel-in-time windows of a sampled run, each on its own
// trace pid) can share one Trace.
type Trace struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	n      int // events written
	err    error
}

// NewTrace starts a trace on w. If w is an io.Closer, Close closes it after
// finalising the JSON.
func NewTrace(w io.Writer) *Trace {
	t := &Trace{w: bufio.NewWriterSize(w, 64<<10)}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	t.raw(`{"displayTimeUnit":"ms","traceEvents":[`)
	return t
}

// Err returns the first write error, if any.
func (t *Trace) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close finalises the JSON document and closes the underlying writer when it
// is an io.Closer.
func (t *Trace) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.raw("\n]}\n")
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.closer != nil {
		if err := t.closer.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

func (t *Trace) raw(s string) {
	if t.err != nil {
		return
	}
	if _, err := t.w.WriteString(s); err != nil {
		t.err = err
	}
}

// event writes one trace event object; body is the event's fields after the
// common ones, already JSON-encoded. It is the single funnel for every
// emission, so the lock here serialises concurrent tracers.
func (t *Trace) event(ph string, pid, tid int, ts int64, name, body string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sep := ",\n"
	if t.n == 0 {
		sep = "\n"
	}
	t.n++
	t.raw(fmt.Sprintf(`%s{"ph":%q,"pid":%d,"tid":%d,"ts":%d,"name":%s%s}`,
		sep, ph, pid, tid, ts, strconv.Quote(name), body))
}

// MetaProcess names a process track.
func (t *Trace) MetaProcess(pid int, name string) {
	t.event("M", pid, 0, 0, "process_name", `,"args":{"name":`+strconv.Quote(name)+`}`)
}

// MetaThread names a thread track within a process.
func (t *Trace) MetaThread(pid, tid int, name string) {
	t.event("M", pid, tid, 0, "thread_name", `,"args":{"name":`+strconv.Quote(name)+`}`)
}

// Begin opens a duration span on (pid, tid) at ts.
func (t *Trace) Begin(pid, tid int, ts int64, name string, args map[string]int64) {
	t.event("B", pid, tid, ts, name, encodeArgs(args))
}

// End closes the innermost open span on (pid, tid) at ts.
func (t *Trace) End(pid, tid int, ts int64) {
	t.event("E", pid, tid, ts, "", "")
}

// Instant emits a thread-scoped instant event.
func (t *Trace) Instant(pid, tid int, ts int64, name string, args map[string]int64) {
	t.event("i", pid, tid, ts, name, `,"s":"t"`+encodeArgs(args))
}

// Counter emits a counter sample; Perfetto renders the series as a stacked
// area chart. Series are emitted in sorted key order for determinism.
func (t *Trace) Counter(pid int, ts int64, name string, series map[string]int64) {
	t.event("C", pid, 0, ts, name, encodeArgs(series))
}

// Events returns the number of events written so far.
func (t *Trace) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

func encodeArgs(args map[string]int64) string {
	if len(args) == 0 {
		return ""
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := `,"args":{`
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += strconv.Quote(k) + ":" + strconv.FormatInt(args[k], 10)
	}
	return s + "}"
}
