package telemetry

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"loopfrog/internal/core"
	"loopfrog/internal/cpu"
	"loopfrog/internal/mem"
	"loopfrog/internal/sim"
	"loopfrog/internal/workloads"
)

func runTracedBenchmark(t *testing.T, name string) (*cpu.Machine, *cpu.Stats, traceDoc) {
	t.Helper()
	b := workloads.ByName(workloads.CPU2017(), name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	m, err := cpu.NewMachine(cpu.DefaultConfig(), b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	mt := AttachMachine(m, tr, 0)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	mt.Finish()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return m, st, decodeTrace(t, buf.Bytes())
}

// TestMachineTraceSchema validates the emitted Chrome trace on two real
// benchmarks: the JSON parses, every event carries the required keys, B/E
// spans balance per track, and the commit-slot counter track is present —
// the acceptance gate for Perfetto loadability.
func TestMachineTraceSchema(t *testing.T) {
	for _, bench := range []string{"mcf", "x264"} {
		t.Run(bench, func(t *testing.T) {
			_, st, doc := runTracedBenchmark(t, bench)
			if len(doc.TraceEvents) == 0 {
				t.Fatal("no trace events")
			}
			depth := map[int]int{}
			var counters, instants, metas int
			for i, e := range doc.TraceEvents {
				if e.Ph == "" || e.Pid == nil || e.Tid == nil || e.Ts == nil {
					t.Fatalf("event %d missing required keys: %+v", i, e)
				}
				if *e.Ts < 0 || *e.Ts > st.Cycles {
					t.Fatalf("event %d timestamp %d outside run [0, %d]", i, *e.Ts, st.Cycles)
				}
				switch e.Ph {
				case "B":
					depth[*e.Tid]++
				case "E":
					depth[*e.Tid]--
					if depth[*e.Tid] < 0 {
						t.Fatalf("event %d: E without matching B on tid %d", i, *e.Tid)
					}
				case "i":
					instants++
				case "C":
					counters++
					if e.Name != "commit-slots" {
						t.Errorf("unexpected counter %q", e.Name)
					}
					for _, name := range cpu.SlotClassNames() {
						if _, ok := e.Args[name]; !ok {
							t.Fatalf("counter sample missing series %q: %+v", name, e.Args)
						}
					}
				case "M":
					metas++
				default:
					t.Fatalf("event %d: unknown phase %q", i, e.Ph)
				}
			}
			for tid, d := range depth {
				if d != 0 {
					t.Errorf("tid %d has %d unclosed spans", tid, d)
				}
			}
			if counters == 0 {
				t.Error("no commit-slot counter samples")
			}
			if metas < 1+cpu.DefaultConfig().Threadlets {
				t.Errorf("only %d metadata events; every track must be named", metas)
			}
			// The counter samples must partition the full attribution.
			var sampled uint64
			for _, e := range doc.TraceEvents {
				if e.Ph == "C" {
					for name, v := range e.Args {
						f, ok := v.(float64)
						if !ok {
							t.Fatalf("counter series %q is not numeric: %v", name, v)
						}
						sampled += uint64(f)
					}
				}
			}
			var total uint64
			for _, c := range st.CommitSlots {
				total += c
			}
			if sampled != total {
				t.Errorf("counter samples sum to %d, attribution totals %d", sampled, total)
			}
		})
	}
}

// TestCommitSlotSumOnBenchmarks is the acceptance criterion: per-cycle
// commit-slot attribution sums exactly to Cycles x CommitWidth on at least
// two benchmarks.
func TestCommitSlotSumOnBenchmarks(t *testing.T) {
	cfg := cpu.DefaultConfig()
	for _, bench := range []string{"mcf", "x264"} {
		t.Run(bench, func(t *testing.T) {
			b := workloads.ByName(workloads.CPU2017(), bench)
			st, err := sim.Run(cfg, b.MustProgram())
			if err != nil {
				t.Fatal(err)
			}
			var sum uint64
			for _, c := range st.CommitSlots {
				sum += c
			}
			if want := uint64(st.Cycles) * uint64(cfg.Width); sum != want {
				t.Fatalf("slots sum %d != Cycles(%d) x Width(%d) = %d", sum, st.Cycles, cfg.Width, want)
			}
		})
	}
}

// exportedLeaves lists the dotted metric suffixes reflection should produce
// for a struct type — the ground truth for the round-trip test. A field
// tagged `metrics:"-"` opted out of flattening (it is re-exported through a
// dynamic section instead; the registry tag test covers the mechanism).
func exportedLeaves(t reflect.Type, path string) []string {
	var out []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Tag.Get("metrics") == "-" {
			continue
		}
		name := f.Name
		if path != "" {
			name = path + "." + name
		}
		switch f.Type.Kind() {
		case reflect.Array:
			for j := 0; j < f.Type.Len(); j++ {
				out = append(out, fmt.Sprintf("%s.%d", name, j))
			}
		case reflect.Struct:
			out = append(out, exportedLeaves(f.Type, name)...)
		default:
			out = append(out, name)
		}
	}
	return out
}

// TestRegistryRoundTripCompleteness runs a machine, collects it into a
// registry, and verifies by reflection that no exported field of cpu.Stats,
// core.SSBStats, or mem.CacheStats is silently dropped — and that the
// counter values survive the trip exactly.
func TestRegistryRoundTripCompleteness(t *testing.T) {
	m, st, _ := runTracedBenchmark(t, "mcf")
	reg := NewRegistry()
	if err := CollectMachine(reg, m); err != nil {
		t.Fatal(err)
	}
	snap := map[string]float64{}
	for _, mt := range reg.Snapshot() {
		if _, dup := snap[mt.Name]; dup {
			t.Errorf("duplicate metric %q", mt.Name)
		}
		snap[mt.Name] = mt.Value
	}

	for _, tc := range []struct {
		prefix string
		typ    reflect.Type
	}{
		{"cpu", reflect.TypeOf(cpu.Stats{})},
		{"ssb", reflect.TypeOf(core.SSBStats{})},
		{"mem.l1i", reflect.TypeOf(mem.CacheStats{})},
		{"mem.l1d", reflect.TypeOf(mem.CacheStats{})},
		{"mem.l2", reflect.TypeOf(mem.CacheStats{})},
	} {
		for _, leaf := range exportedLeaves(tc.typ, tc.prefix) {
			if _, ok := snap[leaf]; !ok {
				t.Errorf("exported field %s dropped by the registry", leaf)
			}
		}
	}

	// Spot-check values against the live structs.
	if got := snap["cpu.Cycles"]; got != float64(st.Cycles) {
		t.Errorf("cpu.Cycles = %v, want %d", got, st.Cycles)
	}
	if got := snap["cpu.ArchInsts"]; got != float64(st.ArchInsts) {
		t.Errorf("cpu.ArchInsts = %v, want %d", got, st.ArchInsts)
	}
	if got := snap["ssb.Writes"]; got != float64(m.SSB().Stats.Writes) {
		t.Errorf("ssb.Writes = %v, want %d", got, m.SSB().Stats.Writes)
	}
	_, l1d, _ := m.Hierarchy().Stats()
	if got := snap["mem.l1d.Accesses"]; got != float64(l1d.Accesses) {
		t.Errorf("mem.l1d.Accesses = %v, want %d", got, l1d.Accesses)
	}
	// Named slot metrics mirror the array.
	for i, name := range cpu.SlotClassNames() {
		if got := snap["cpu.slots."+name]; got != float64(st.CommitSlots[i]) {
			t.Errorf("cpu.slots.%s = %v, want %d", name, got, st.CommitSlots[i])
		}
		if got := snap[fmt.Sprintf("cpu.CommitSlots.%d", i)]; got != float64(st.CommitSlots[i]) {
			t.Errorf("cpu.CommitSlots.%d = %v, want %d", i, got, st.CommitSlots[i])
		}
	}
	// Named squash metrics mirror the array.
	for c := 0; c < core.NumSquashCauses; c++ {
		name := "cpu.squash." + core.SquashCause(c).String()
		if got := snap[name]; got != float64(st.Squashes[c]) {
			t.Errorf("%s = %v, want %d", name, got, st.Squashes[c])
		}
	}
}

// TestCollectHarness checks the harness scheduling telemetry lands in the
// registry and is self-consistent.
func TestCollectHarness(t *testing.T) {
	h := sim.NewHarness()
	b := workloads.ByName(workloads.CPU2017(), "mcf")
	if _, err := h.Compare(cpu.DefaultConfig(), b); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := CollectHarness(reg, h); err != nil {
		t.Fatal(err)
	}
	snap := map[string]float64{}
	for _, m := range reg.Snapshot() {
		snap[m.Name] = m.Value
	}
	if snap["harness.Jobs"] != 2 {
		t.Errorf("harness.Jobs = %v, want 2 (baseline + loopfrog)", snap["harness.Jobs"])
	}
	if snap["harness.CacheMisses"] != 2 {
		t.Errorf("harness.CacheMisses = %v, want 2", snap["harness.CacheMisses"])
	}
	if snap["harness.JobNanos"] <= 0 || snap["harness.WallNanos"] <= 0 {
		t.Errorf("wall-time counters empty: job=%v wall=%v", snap["harness.JobNanos"], snap["harness.WallNanos"])
	}
	u := snap["harness.Utilization"]
	if u <= 0 || u > 1.0001 {
		t.Errorf("utilization %v out of range", u)
	}
	// A second identical run must be served by the cache.
	if _, err := h.Compare(cpu.DefaultConfig(), b); err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.CacheHits != 2 || s.CacheMisses != 2 {
		t.Errorf("cache counters after repeat: hits=%d misses=%d, want 2/2", s.CacheHits, s.CacheMisses)
	}
}

// TestMachineTracerDetachesOnFinish ensures Finish removes both hooks so a
// finished tracer costs nothing if the machine were driven further.
func TestMachineTracerDetachesOnFinish(t *testing.T) {
	b := workloads.ByName(workloads.CPU2017(), "mcf")
	m, err := cpu.NewMachine(cpu.DefaultConfig(), b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	mt := AttachMachine(m, tr, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	mt.Finish()
	n := tr.Events()
	mt.Finish() // idempotent: everything already closed and detached
	if tr.Events() != n {
		t.Errorf("second Finish emitted %d extra events", tr.Events()-n)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "commit-slots") {
		t.Error("trace has no commit-slot samples")
	}
}
