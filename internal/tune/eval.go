package tune

import (
	"context"
	"fmt"

	"loopfrog/internal/asm"
	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
)

// Tier is one fidelity rung of the successive-halving schedule.
type Tier struct {
	Name string `json:"name"`
	// Cost is the tier's price per evaluation, in rung-0-equivalent budget
	// units.
	Cost int `json:"cost"`
	// Sample is the sampled-simulation shape; nil means a full detailed run.
	Sample *sim.SampleConfig `json:"sample,omitempty"`
}

// Tiers returns the rung schedule: a short-window sampled sweep (windows
// cover a fifth of each interval), the accuracy-tuned default sampled
// configuration, and a full detailed run. Costs approximate the relative
// detailed-instruction volume of each tier.
func Tiers() []Tier {
	return []Tier{
		{Name: "cheap-sampled", Cost: 1,
			Sample: &sim.SampleConfig{Interval: 50_000, Window: 10_000, Warmup: 2_000}},
		{Name: "sampled", Cost: 4,
			Sample: &sim.SampleConfig{Interval: 50_000, Window: 50_000, Warmup: 10_000}},
		{Name: "detailed", Cost: 16},
	}
}

// EvalRequest is one rung evaluation: run one variant (or the shared
// hints-as-NOPs baseline) of a program at one tier. It is self-contained and
// JSON-serialisable — a stock worker recompiles the variant from source, so
// fabric fan-out ships specs, not images.
type EvalRequest struct {
	Program string  `json:"program"`
	Source  string  `json:"source"`
	Variant Variant `json:"variant"`
	Tier    int     `json:"tier"`
	// Baseline selects the shared control run: the static-default image on
	// the baseline core (hints as NOPs, one threadlet). Scores are
	// baseline-cycles / variant-cycles at the same tier.
	Baseline bool `json:"baseline,omitempty"`
}

// EvalResult is the outcome of one rung evaluation.
type EvalResult struct {
	// Cycles is the (estimated or exact) cycle count at the request's tier.
	Cycles float64 `json:"cycles"`
	// Insts is the architectural instruction count the cycles stand for.
	Insts uint64 `json:"insts"`
	// Fingerprint identifies the (config, image) pair — the run-cache
	// affinity key the fabric coordinator routes by.
	Fingerprint string `json:"fingerprint"`
	// CostUnits is the budget charged for this evaluation.
	CostUnits int `json:"cost_units"`
}

// Build compiles the request's variant and resolves its core configuration.
func (r *EvalRequest) Build() (cpu.Config, *asm.Program, error) {
	cfg := r.Variant.Config(cpu.DefaultConfig())
	opts := r.Variant.CompilerOpts()
	if r.Baseline {
		cfg = sim.BaselineOf(cpu.DefaultConfig())
		opts = compiler.Options{}
	}
	prog, _, err := compiler.CompileOpts(r.Program, r.Source, opts)
	if err != nil {
		return cpu.Config{}, nil, fmt.Errorf("tune: compile %s (%s): %w", r.Program, r.Variant.Desc(), err)
	}
	return cfg, prog, nil
}

// Fingerprint computes the run-cache fingerprint of the request's (config,
// image) pair without running anything: the coordinator uses it to dedupe
// identical variants and to route rung evaluations with cache affinity.
func (r *EvalRequest) Fingerprint() (string, error) {
	cfg, prog, err := r.Build()
	if err != nil {
		return "", err
	}
	return sim.Fingerprint(cfg, prog), nil
}

// Evaluator runs a batch of rung evaluations. Implementations: Local (the
// in-process harness) and the serve package's fabric evaluator (fan-out to
// lfservd workers with cache affinity). Result[i] pairs with reqs[i];
// errs[i] is non-nil when that evaluation failed.
type Evaluator interface {
	Evaluate(ctx context.Context, reqs []EvalRequest) ([]*EvalResult, []error)
}

// Local evaluates rung requests on an in-process harness. Sampled tiers fan
// their windows across the harness pool; detailed runs go through the
// harness run-cache, so identical variants and re-tuning runs dedupe.
type Local struct {
	H *sim.Harness
}

// Evaluate runs the batch. Requests run concurrently; each sampled run
// additionally fans its windows over the shared pool.
func (l Local) Evaluate(ctx context.Context, reqs []EvalRequest) ([]*EvalResult, []error) {
	h := l.H
	if h == nil {
		h = sim.DefaultHarness()
	}
	results := make([]*EvalResult, len(reqs))
	errs := make([]error, len(reqs))
	sem := make(chan struct{}, maxConcurrentEvals)
	done := make(chan int, len(reqs))
	for i := range reqs {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- i }()
			results[i], errs[i] = evalOne(ctx, h, &reqs[i])
		}(i)
	}
	for range reqs {
		<-done
	}
	return results, errs
}

// maxConcurrentEvals bounds in-flight evaluations; each sampled evaluation
// already fans out one job per window, so a small multiplier keeps the pool
// saturated without stacking up checkpoint memory.
const maxConcurrentEvals = 4

func evalOne(ctx context.Context, h *sim.Harness, req *EvalRequest) (*EvalResult, error) {
	cfg, prog, err := req.Build()
	if err != nil {
		return nil, err
	}
	tiers := Tiers()
	if req.Tier < 0 || req.Tier >= len(tiers) {
		return nil, fmt.Errorf("tune: tier %d out of range", req.Tier)
	}
	t := tiers[req.Tier]
	res := &EvalResult{
		Fingerprint: sim.Fingerprint(cfg, prog),
		CostUnits:   t.Cost,
	}
	if t.Sample != nil {
		st, err := h.RunSampledCtx(ctx, cfg, prog, *t.Sample)
		if err != nil {
			return nil, err
		}
		res.Cycles = st.EstCycles
		res.Insts = st.TotalInsts
		return res, nil
	}
	stats, errs := h.RunJobsCtx(ctx, []sim.Job{{Cfg: cfg, Prog: prog}})
	if errs[0] != nil {
		return nil, errs[0]
	}
	res.Cycles = float64(stats[0].Cycles)
	res.Insts = stats[0].ArchInsts
	return res, nil
}
