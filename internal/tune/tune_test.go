package tune_test

import (
	"context"
	"testing"

	"loopfrog/internal/sim"
	"loopfrog/internal/tune"
)

// twoLoopSrc has two @loopfrog loops with different characters: a clean
// parallel map (hint worth keeping) and a serial reduction whose
// cross-iteration dependency makes the hint a candidate for de-selection.
// Two sites give the mask axis four points, so the enumerated space is wide
// enough that rungs actually eliminate variants.
const twoLoopSrc = `
var xs: [256]int;
var ys: [256]int;
var acc: [1]int;

fn main() -> int {
    for i in 0..256 {
        xs[i] = i * 5 + 3;
    }
    @loopfrog
    for i in 0..256 {
        var t: int = xs[i];
        t = t * t + 11;
        ys[i] = t;
    }
    @loopfrog
    for i in 0..256 {
        acc[0] = acc[0] + ys[i];
    }
    return acc[0];
}
`

func runTune(t *testing.T, h *sim.Harness, budget int) *tune.Report {
	t.Helper()
	rep, err := tune.Tune(context.Background(),
		tune.Spec{Program: "tunetest", Source: twoLoopSrc, Budget: budget, Seed: 42},
		tune.Local{H: h})
	if err != nil {
		t.Fatalf("tune: %v", err)
	}
	return rep
}

// TestRankingDeterministicAcrossWorkers is the reproducibility contract:
// the same seed and budget produce the identical ranking — IDs, tiers,
// cycles, scores — whether the harness runs one worker or many. Scheduling
// order must never leak into the search.
func TestRankingDeterministicAcrossWorkers(t *testing.T) {
	r1 := runTune(t, &sim.Harness{Workers: 1, Cache: sim.NewRunCache()}, 96)
	rN := runTune(t, &sim.Harness{Workers: 8, Cache: sim.NewRunCache()}, 96)

	if len(r1.Ranking) != len(rN.Ranking) {
		t.Fatalf("ranking length differs: 1 worker %d, 8 workers %d", len(r1.Ranking), len(rN.Ranking))
	}
	for i := range r1.Ranking {
		a, b := r1.Ranking[i], rN.Ranking[i]
		if a.Variant.ID != b.Variant.ID || a.Tier != b.Tier || a.Cycles != b.Cycles || a.Score != b.Score {
			t.Errorf("ranking[%d] differs: 1 worker {id %d tier %d cycles %.0f score %.6f}, 8 workers {id %d tier %d cycles %.0f score %.6f}",
				i, a.Variant.ID, a.Tier, a.Cycles, a.Score, b.Variant.ID, b.Tier, b.Cycles, b.Score)
		}
	}
	if r1.Winner.Variant.ID != rN.Winner.Variant.ID {
		t.Errorf("winner differs: 1 worker id %d, 8 workers id %d", r1.Winner.Variant.ID, rN.Winner.Variant.ID)
	}
	if len(r1.Rungs) != len(rN.Rungs) {
		t.Fatalf("rung count differs: %d vs %d", len(r1.Rungs), len(rN.Rungs))
	}
	for i := range r1.Rungs {
		a, b := r1.Rungs[i], rN.Rungs[i]
		if a.BaseCycles != b.BaseCycles || a.CostUnits != b.CostUnits {
			t.Errorf("rung %d differs: base %.0f/%.0f cost %d/%d", i, a.BaseCycles, b.BaseCycles, a.CostUnits, b.CostUnits)
		}
	}
}

// TestRetuneCacheDedup is the run-cache dedup proof: re-tuning an unchanged
// program on the same harness executes zero new simulations — every
// evaluation, detailed runs included, is served from the cache, so the
// misses counter does not move.
func TestRetuneCacheDedup(t *testing.T) {
	h := &sim.Harness{Cache: sim.NewRunCache()}
	r1 := runTune(t, h, 256)

	// The proof must cover full-detail runs, not just sampled windows.
	last := r1.Rungs[len(r1.Rungs)-1]
	if last.TierName != "detailed" {
		t.Fatalf("budget 256 stopped at tier %q; raise it so the search reaches detailed runs", last.TierName)
	}
	misses := h.Cache.Misses()
	if misses == 0 {
		t.Fatal("first search executed no simulations — cache not wired through")
	}

	r2 := runTune(t, h, 256)
	if d := h.Cache.Misses() - misses; d != 0 {
		t.Errorf("re-tuning an unchanged program executed %d new simulations, want 0", d)
	}
	if r2.Winner.Variant.ID != r1.Winner.Variant.ID || r2.Winner.Score != r1.Winner.Score {
		t.Errorf("re-tune winner differs: {id %d score %.6f} vs {id %d score %.6f}",
			r2.Winner.Variant.ID, r2.Winner.Score, r1.Winner.Variant.ID, r1.Winner.Score)
	}
	if r2.Spent != r1.Spent || len(r2.Ranking) != len(r1.Ranking) {
		t.Errorf("re-tune shape differs: spent %d/%d, ranking %d/%d",
			r2.Spent, r1.Spent, len(r2.Ranking), len(r1.Ranking))
	}
}
