package tune

import (
	"context"
	"fmt"
	"sort"

	"loopfrog/internal/compiler"
)

// Scored is one evaluated variant: its cycles and score at the deepest tier
// it reached. Score is baseline-cycles / variant-cycles at that tier, so
// > 1 means faster than the hints-as-NOPs core and the anchor's score is the
// static selection's speedup.
type Scored struct {
	Variant Variant `json:"variant"`
	// Tier is the deepest tier index this entry was measured at.
	Tier   int     `json:"tier"`
	Cycles float64 `json:"cycles"`
	Score  float64 `json:"score"`
	// Fingerprint is the run-cache identity of the (config, image) pair.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Err records an evaluation failure; failed variants rank last and are
	// never promoted.
	Err string `json:"err,omitempty"`
}

// Rung is one successive-halving round: every surviving variant evaluated at
// one tier, the shared baseline re-measured at the same fidelity, and the
// bottom of the field eliminated.
type Rung struct {
	Tier     int    `json:"tier"`
	TierName string `json:"tier_name"`
	// BaseCycles is the shared baseline's cycles at this tier.
	BaseCycles float64 `json:"base_cycles"`
	// Evaluated lists this rung's measurements, best score first.
	Evaluated []Scored `json:"evaluated"`
	// Promoted and Eliminated partition Evaluated by variant ID.
	Promoted   []int `json:"promoted"`
	Eliminated []int `json:"eliminated"`
	// CostUnits is the budget spent on this rung (baseline included).
	CostUnits int `json:"cost_units"`
}

// Report is the outcome of one search.
type Report struct {
	Program string `json:"program"`
	Seed    int64  `json:"seed"`
	Budget  int    `json:"budget"`
	Spent   int    `json:"spent"`
	Eta     int    `json:"eta"`
	// Loops is the static selection's view of the program's @loopfrog sites.
	Loops []compiler.LoopSite `json:"loops"`
	// SpaceSize counts enumerated variants before pruning and dedup.
	SpaceSize int      `json:"space_size"`
	Pruned    []Pruned `json:"pruned,omitempty"`
	Rungs     []Rung   `json:"rungs"`
	// Ranking is the final deterministic ordering: the last rung's field by
	// score, then earlier eliminations (latest rung first). Identical for
	// any harness worker count.
	Ranking []Scored `json:"ranking"`
	Winner  Scored   `json:"winner"`
	// Static is the anchor variant's final measurement — the compiler's
	// static selection under default knobs, the search's control arm.
	Static Scored `json:"static"`
}

// WinnerBeatsStatic reports whether the search found a variant strictly
// better than the static selection. Scores are only comparable when both
// sides were measured at the same fidelity, so a budget-starved search whose
// winner outran the anchor to a deeper tier claims nothing.
func (r *Report) WinnerBeatsStatic() bool {
	return r.Winner.Tier == r.Static.Tier && r.Winner.Score > r.Static.Score
}

// Tune runs the budgeted search over the evaluator.
func Tune(ctx context.Context, spec Spec, ev Evaluator) (*Report, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	notes, sites, err := lintNotes(spec)
	if err != nil {
		return nil, err
	}
	vars := enumerate(spec, sites)
	rep := &Report{
		Program:   spec.Program,
		Seed:      spec.Seed,
		Budget:    spec.Budget,
		Eta:       spec.Eta,
		Loops:     sites,
		SpaceSize: len(vars),
	}
	cands, pruned := prune(vars, notes)
	cands, dups, err := dedupe(spec, cands)
	if err != nil {
		return nil, err
	}
	rep.Pruned = append(pruned, dups...)
	if len(cands) > spec.MaxVariants {
		for _, v := range cands[spec.MaxVariants:] {
			rep.Pruned = append(rep.Pruned, Pruned{Variant: v, Rule: "space cap: beyond max_variants"})
		}
		cands = cands[:spec.MaxVariants]
	}

	tiers := Tiers()
	last := make(map[int]*Scored) // variant ID -> deepest measurement
	var rankTail []Scored         // eliminated entries, latest rung first
	for ti := range tiers {
		tier := &tiers[ti]
		remaining := spec.Budget - rep.Spent
		maxN := remaining/tier.Cost - 1 // the shared baseline costs one evaluation too
		if maxN < 1 || len(cands) == 0 {
			break
		}
		if len(cands) > maxN {
			kept, cut := trimToBudget(cands, maxN, last)
			for _, v := range cut {
				if s := last[v.ID]; s != nil {
					rankTail = append([]Scored{*s}, rankTail...)
				} else {
					rep.Pruned = append(rep.Pruned, Pruned{Variant: v, Rule: "budget: no rung-0 slot"})
				}
			}
			cands = kept
		}

		reqs := make([]EvalRequest, 0, len(cands)+1)
		reqs = append(reqs, EvalRequest{
			Program: spec.Program, Source: spec.Source, Tier: ti, Baseline: true,
		})
		for _, v := range cands {
			reqs = append(reqs, EvalRequest{
				Program: spec.Program, Source: spec.Source, Variant: v, Tier: ti,
			})
		}
		results, errs := ev.Evaluate(ctx, reqs)
		if errs[0] != nil {
			return nil, fmt.Errorf("tune: baseline at tier %q: %w", tier.Name, errs[0])
		}
		base := results[0].Cycles
		rung := Rung{
			Tier: ti, TierName: tier.Name, BaseCycles: base,
			CostUnits: tier.Cost * (len(cands) + 1),
		}
		rep.Spent += rung.CostUnits
		for i, v := range cands {
			s := Scored{Variant: v, Tier: ti}
			switch {
			case errs[i+1] != nil:
				s.Err = errs[i+1].Error()
			case results[i+1] == nil:
				s.Err = "evaluation skipped"
			default:
				r := results[i+1]
				s.Cycles = r.Cycles
				s.Fingerprint = r.Fingerprint
				if r.Cycles > 0 {
					s.Score = base / r.Cycles
				}
			}
			if v.ID == 0 && s.Err != "" {
				return nil, fmt.Errorf("tune: anchor variant failed at tier %q: %s", tier.Name, s.Err)
			}
			rung.Evaluated = append(rung.Evaluated, s)
		}
		sortScored(rung.Evaluated)
		for i := range rung.Evaluated {
			last[rung.Evaluated[i].Variant.ID] = &rung.Evaluated[i]
		}

		// Promote the top ceil(n/eta); the anchor always survives. The last
		// tier promotes nobody — its field is the final ranking.
		var promote []Variant
		if ti < len(tiers)-1 {
			k := (len(rung.Evaluated) + spec.Eta - 1) / spec.Eta
			for _, s := range rung.Evaluated[:k] {
				if s.Err == "" {
					promote = append(promote, s.Variant)
				}
			}
			if !hasAnchor(promote) && hasAnchor(cands) {
				promote = append(promote, cands[indexOfAnchor(cands)])
			}
			sort.Slice(promote, func(i, j int) bool { return promote[i].ID < promote[j].ID })
		}
		promoted := make(map[int]bool, len(promote))
		for _, v := range promote {
			if promoted[v.ID] {
				continue
			}
			promoted[v.ID] = true
			rung.Promoted = append(rung.Promoted, v.ID)
		}
		var elim []Scored
		for _, s := range rung.Evaluated {
			if !promoted[s.Variant.ID] {
				rung.Eliminated = append(rung.Eliminated, s.Variant.ID)
				elim = append(elim, s)
			}
		}
		sort.Ints(rung.Promoted)
		sort.Ints(rung.Eliminated)
		rep.Rungs = append(rep.Rungs, rung)
		if ti < len(tiers)-1 {
			rankTail = append(elim, rankTail...)
		} else {
			rankTail = append(append([]Scored(nil), rung.Evaluated...), rankTail...)
		}
		cands = promote
	}

	if len(rep.Rungs) == 0 {
		return nil, fmt.Errorf("tune: budget %d cannot afford a single rung", spec.Budget)
	}
	// Budget exhausted before the last tier: the surviving promotees keep
	// their deepest scores and head the ranking.
	if len(cands) > 0 {
		var head []Scored
		for _, v := range cands {
			if s := last[v.ID]; s != nil {
				head = append(head, *s)
			}
		}
		sortScored(head)
		rankTail = append(head, rankTail...)
	}
	rep.Ranking = rankTail
	rep.Winner = rep.Ranking[0]
	st := last[0]
	if st == nil {
		return nil, fmt.Errorf("tune: anchor variant was never evaluated")
	}
	rep.Static = *st
	return rep, nil
}

// dedupe collapses variants whose (config, image) fingerprints coincide —
// e.g. masks that only differ on statically de-selected loops. The
// lowest-ID variant of each group is kept; the run-cache would deduplicate
// their simulations anyway, but collapsing them up front returns their
// budget to the search.
func dedupe(spec Spec, vars []Variant) (kept []Variant, dups []Pruned, err error) {
	seen := make(map[string]int)
	for _, v := range vars {
		req := EvalRequest{Program: spec.Program, Source: spec.Source, Variant: v}
		fp, ferr := req.Fingerprint()
		if ferr != nil {
			return nil, nil, ferr
		}
		if first, ok := seen[fp]; ok {
			dups = append(dups, Pruned{
				Variant: v,
				Rule:    fmt.Sprintf("duplicate: fingerprint %s equals variant %d", fp, first),
			})
			continue
		}
		seen[fp] = v.ID
		kept = append(kept, v)
	}
	return kept, dups, nil
}

// trimToBudget keeps at most n candidates: the best previously scored
// first, then lowest IDs. When two or more slots exist the anchor claims
// one (the control arm rides along to the final fidelity); with a single
// slot the best candidate keeps it — a budget-starved search then compares
// the winner against the anchor's deepest earlier measurement instead.
// Deterministic for any worker count.
func trimToBudget(cands []Variant, n int, last map[int]*Scored) (kept, cut []Variant) {
	order := append([]Variant(nil), cands...)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		sa, sb := last[a.ID], last[b.ID]
		switch {
		case sa != nil && sb != nil && sa.Score != sb.Score:
			return sa.Score > sb.Score
		case (sa != nil) != (sb != nil):
			return sa != nil
		}
		return a.ID < b.ID
	})
	kept = order[:n]
	cut = order[n:]
	if n >= 2 && !hasAnchor(kept) && hasAnchor(cands) {
		ai := indexOfAnchor(cut)
		kept[n-1], cut[ai] = cut[ai], kept[n-1]
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].ID < kept[j].ID })
	sort.Slice(cut, func(i, j int) bool { return cut[i].ID < cut[j].ID })
	return kept, cut
}

// sortScored orders by score descending, errors last, ties by variant ID.
func sortScored(s []Scored) {
	sort.SliceStable(s, func(i, j int) bool {
		a, b := &s[i], &s[j]
		if (a.Err == "") != (b.Err == "") {
			return a.Err == ""
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Variant.ID < b.Variant.ID
	})
}

func hasAnchor(vs []Variant) bool {
	for _, v := range vs {
		if v.ID == 0 {
			return true
		}
	}
	return false
}

func indexOfAnchor(vs []Variant) int {
	for i, v := range vs {
		if v.ID == 0 {
			return i
		}
	}
	return 0
}
