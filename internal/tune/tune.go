// Package tune is the budgeted hint autotuner: it closes the
// compile→simulate→recompile loop the rest of the stack leaves open. Per
// @loopfrog loop it enumerates a variant space (hint selection on/off per
// loop, packing factor, SSB granule, packed-epoch target), prunes it up
// front with the linter's machine-readable LF2xx profitability notes,
// dedupes evaluations through the run-cache fingerprint, and spends a fixed
// evaluation budget by successive halving: wide-and-cheap rungs on sampled
// windows, survivors promoted to full detailed runs. The static default
// variant is anchored through every rung, so the winner is never worse than
// the compiler's static selection at the fidelity that decides the ranking.
package tune

import (
	"fmt"
	"sort"
	"strings"

	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/lint"
)

// Variant is one point of the search space: a per-loop hint mask plus the
// engine knobs the paper's sensitivity studies sweep (packing factor, SSB
// conflict granule, packed-epoch target size).
type Variant struct {
	ID int `json:"id"`
	// Deselect lists the source lines of @loopfrog loops compiled as plain
	// loops in this variant, sorted ascending. Empty = the compiler's static
	// selection.
	Deselect []int `json:"deselect,omitempty"`
	// PackFactor caps epoch packing; <= 1 disables packing. 0 is
	// normalised to 1.
	PackFactor int `json:"pack_factor"`
	// GranuleBytes overrides the SSB conflict-tracking granule; 0 = default.
	GranuleBytes int `json:"granule_bytes,omitempty"`
	// PackTarget overrides the packed-epoch target size; 0 = default (ROB).
	PackTarget int `json:"pack_target,omitempty"`
}

// Desc renders a short human-readable variant description.
func (v *Variant) Desc() string {
	var parts []string
	if len(v.Deselect) > 0 {
		lines := make([]string, len(v.Deselect))
		for i, l := range v.Deselect {
			lines[i] = fmt.Sprint(l)
		}
		parts = append(parts, "off="+strings.Join(lines, "+"))
	}
	if v.PackFactor <= 1 {
		parts = append(parts, "pack=off")
	} else {
		parts = append(parts, fmt.Sprintf("pack=%d", v.PackFactor))
	}
	if v.GranuleBytes > 0 {
		parts = append(parts, fmt.Sprintf("gran=%d", v.GranuleBytes))
	}
	if v.PackTarget > 0 {
		parts = append(parts, fmt.Sprintf("epoch=%d", v.PackTarget))
	}
	if len(parts) == 0 {
		return "static"
	}
	return strings.Join(parts, ",")
}

// Masked reports whether the variant compiles the loop at line as plain.
func (v *Variant) Masked(line int) bool {
	for _, l := range v.Deselect {
		if l == line {
			return true
		}
	}
	return false
}

// Config applies the variant's engine knobs to a base configuration.
func (v *Variant) Config(base cpu.Config) cpu.Config {
	cfg := base
	if v.PackFactor <= 1 {
		cfg.Pack.Enabled = false
	} else {
		cfg.Pack.Enabled = true
		cfg.Pack.MaxFactor = v.PackFactor
	}
	if v.GranuleBytes > 0 {
		cfg.SSB.GranuleBytes = v.GranuleBytes
	}
	if v.PackTarget > 0 {
		cfg.Pack.TargetSize = v.PackTarget
	}
	return cfg
}

// CompilerOpts returns the compile options selecting this variant's mask.
func (v *Variant) CompilerOpts() compiler.Options {
	if len(v.Deselect) == 0 {
		return compiler.Options{}
	}
	m := make(map[int]bool, len(v.Deselect))
	for _, l := range v.Deselect {
		m[l] = true
	}
	return compiler.Options{Deselect: m}
}

// Spec configures one autotuning search.
type Spec struct {
	// Program names the image; Source is its LoopLang source. The search
	// recompiles the source per variant, so workers only ever need the spec.
	Program string `json:"program"`
	Source  string `json:"source"`
	// Budget is the evaluation budget in rung-0-equivalent cost units
	// (default DefaultBudget). Each tier's evaluation costs Tier.Cost units;
	// shared baseline runs are charged too.
	Budget int `json:"budget,omitempty"`
	// Eta is the halving fraction: each rung promotes ceil(n/Eta) survivors
	// (default 3).
	Eta int `json:"eta,omitempty"`
	// Seed is recorded in the report; the search itself is deterministic.
	Seed int64 `json:"seed,omitempty"`
	// PackFactors and Granules are the per-axis candidate values; defaults
	// DefaultPackFactors / DefaultGranules. PackTargets defaults to just the
	// base configuration's target.
	PackFactors []int `json:"pack_factors,omitempty"`
	Granules    []int `json:"granules,omitempty"`
	PackTargets []int `json:"pack_targets,omitempty"`
	// MaxVariants caps the enumerated space after pruning (default 64);
	// excess variants are dropped highest-ID first.
	MaxVariants int `json:"max_variants,omitempty"`
}

// Defaults for the search space and budget.
const (
	DefaultBudget      = 128
	DefaultEta         = 3
	DefaultMaxVariants = 64
)

// DefaultPackFactors returns the packing-factor axis: the headline cap, a
// moderate cap, and packing off (§6.5 evaluates both ends).
func DefaultPackFactors() []int { return []int{32, 4, 1} }

// DefaultGranules returns the SSB granule axis (Table 1 default plus one
// word-sized alternative, the paper's figure-10 sensitivity points).
func DefaultGranules() []int { return []int{4, 8} }

func (s Spec) withDefaults() Spec {
	if s.Budget <= 0 {
		s.Budget = DefaultBudget
	}
	if s.Eta < 2 {
		s.Eta = DefaultEta
	}
	if len(s.PackFactors) == 0 {
		s.PackFactors = DefaultPackFactors()
	}
	if len(s.Granules) == 0 {
		s.Granules = DefaultGranules()
	}
	if len(s.PackTargets) == 0 {
		s.PackTargets = []int{0}
	}
	if s.MaxVariants <= 0 {
		s.MaxVariants = DefaultMaxVariants
	}
	return s
}

// Validate checks a spec as submitted over the wire.
func (s Spec) Validate() error {
	if s.Source == "" {
		return fmt.Errorf("tune: spec has no source")
	}
	if s.Budget < 0 || s.Eta < 0 || s.MaxVariants < 0 {
		return fmt.Errorf("tune: negative budget, eta or max_variants")
	}
	for _, pf := range s.PackFactors {
		if pf < 0 {
			return fmt.Errorf("tune: negative pack factor %d", pf)
		}
	}
	for _, g := range s.Granules {
		if g < 0 {
			return fmt.Errorf("tune: negative granule %d", g)
		}
	}
	return nil
}

// Pruned records one variant removed before evaluation, with the
// machine-readable lint rule that removed it.
type Pruned struct {
	Variant Variant `json:"variant"`
	Rule    string  `json:"rule"`
}

// loopNotes is the per-loop digest of the linter's LF2xx payloads, joined to
// source loops through the hint line provenance the compiler emits.
type loopNotes struct {
	short     bool  // LF201: epoch below spawn/checkpoint cost
	invariant bool  // LF202: loop-invariant store base
	minStride int64 // LF202: smallest flagged sub-granule stride (0 = none)
}

// lintNotes compiles the static-default image, lints it, and returns the
// per-loop-line digest of LF2xx findings.
func lintNotes(spec Spec) (map[int]*loopNotes, []compiler.LoopSite, error) {
	prog, _, err := compiler.Compile(spec.Program, spec.Source)
	if err != nil {
		return nil, nil, fmt.Errorf("tune: compile static: %w", err)
	}
	sites, err := compiler.Loops(spec.Source)
	if err != nil {
		return nil, nil, err
	}
	rep := lint.Run(prog, lint.Options{})
	byRegion := make(map[int64]int) // region ID -> source line
	for _, r := range rep.Regions {
		byRegion[r.ID] = r.Line
	}
	notes := make(map[int]*loopNotes)
	note := func(line int) *loopNotes {
		n := notes[line]
		if n == nil {
			n = &loopNotes{}
			notes[line] = n
		}
		return n
	}
	for i := range rep.Diags {
		d := &rep.Diags[i]
		line, ok := byRegion[d.Region]
		if !ok || line == 0 {
			continue
		}
		switch d.Code {
		case lint.CodeShortEpoch:
			note(line).short = true
		case lint.CodeInvariantStore:
			n := note(line)
			if d.Data != nil && d.Data.StrideBytes != 0 {
				s := d.Data.StrideBytes
				if s < 0 {
					s = -s
				}
				if n.minStride == 0 || s < n.minStride {
					n.minStride = s
				}
			} else {
				n.invariant = true
			}
		}
	}
	return notes, sites, nil
}

// enumerate builds the variant space for the program's selected loops. The
// anchor (static default: empty mask, default knobs) is always variant 0.
// Masks enumerate all subsets up to 3 loops; beyond that the space is
// restricted to all-on, each-single-off and all-off. Knob axes only multiply
// masks that keep at least one loop hinted — with every loop off they are
// inert and would only burn budget on duplicate measurements.
func enumerate(spec Spec, sites []compiler.LoopSite) []Variant {
	var lines []int
	for _, s := range sites {
		if s.Selected {
			lines = append(lines, s.Line)
		}
	}
	sort.Ints(lines)

	var masks [][]int
	if n := len(lines); n <= 3 {
		for bits := 0; bits < 1<<n; bits++ {
			var m []int
			for i := 0; i < n; i++ {
				if bits&(1<<i) != 0 {
					m = append(m, lines[i])
				}
			}
			masks = append(masks, m)
		}
	} else {
		masks = append(masks, nil) // all on
		for _, l := range lines {
			masks = append(masks, []int{l})
		}
		all := append([]int(nil), lines...)
		masks = append(masks, all)
	}
	// Full-mask (everything off) first needs no knob sweep; order masks by
	// size then value so the anchor's empty mask comes first.
	sort.Slice(masks, func(i, j int) bool {
		if len(masks[i]) != len(masks[j]) {
			return len(masks[i]) < len(masks[j])
		}
		for k := range masks[i] {
			if masks[i][k] != masks[j][k] {
				return masks[i][k] < masks[j][k]
			}
		}
		return false
	})

	var out []Variant
	addV := func(v Variant) {
		v.ID = len(out)
		out = append(out, v)
	}
	// Variant 0: the anchor. Default knobs = zero values resolved by
	// Variant.Config against the base configuration.
	addV(Variant{PackFactor: defaultAnchorPack})
	for _, m := range masks {
		allOff := len(m) == len(lines) && len(lines) > 0
		if allOff {
			addV(Variant{Deselect: m, PackFactor: 1})
			continue
		}
		for _, pf := range spec.PackFactors {
			for _, g := range spec.Granules {
				for _, pt := range spec.PackTargets {
					v := Variant{Deselect: m, PackFactor: pf, GranuleBytes: g, PackTarget: pt}
					if isAnchor(v, len(m) == 0) {
						continue // already added as variant 0
					}
					addV(v)
				}
			}
		}
	}
	return out
}

// defaultAnchorPack mirrors core.DefaultPackConfig's MaxFactor so the anchor
// variant reproduces the static default engine exactly.
const defaultAnchorPack = 32

func isAnchor(v Variant, emptyMask bool) bool {
	return emptyMask && v.PackFactor == defaultAnchorPack &&
		(v.GranuleBytes == 0 || v.GranuleBytes == 4) && v.PackTarget == 0
}

// prune applies the LF2xx rules to the enumerated space. The anchor (ID 0)
// is never pruned: it is the control arm the final ranking compares against.
func prune(vars []Variant, notes map[int]*loopNotes) (kept []Variant, pruned []Pruned) {
	for _, v := range vars {
		if v.ID == 0 {
			kept = append(kept, v)
			continue
		}
		rule := pruneRule(&v, notes)
		if rule == "" {
			kept = append(kept, v)
		} else {
			pruned = append(pruned, Pruned{Variant: v, Rule: rule})
		}
	}
	return kept, pruned
}

func pruneRule(v *Variant, notes map[int]*loopNotes) string {
	for line, n := range notes {
		if v.Masked(line) {
			continue // loop off: its notes cannot fire
		}
		if n.invariant {
			return fmt.Sprintf("LF202: loop at line %d has a loop-invariant store; every epoch pair conflicts", line)
		}
		if n.short && v.PackFactor <= 1 {
			return fmt.Sprintf("LF201: loop at line %d is below spawn cost and the variant does not pack", line)
		}
		if s := n.minStride; s > 0 {
			g := int64(v.GranuleBytes)
			if g == 0 {
				g = 4
			}
			if g > s {
				return fmt.Sprintf("LF202: loop at line %d stores with %d-byte stride; %d-byte granule guarantees conflicts", line, s, g)
			}
		}
	}
	return ""
}
