// Package area reproduces the §6.8 area/power arithmetic with a small
// CACTI-style analytical SRAM model. The model is calibrated to the paper's
// anchor points: a 4 x 2 KiB granule cache is ~0.025 mm² at 22 nm (~0.03 nJ
// per access), scaling to ~0.02 mm² over four slices at 7 nm with the
// paper's conservative 5x node factor, and an 8-entry 4096-bit Bloom-filter
// pair is ~0.005 mm² at 7 nm.
package area

import (
	"fmt"
	"strings"

	"loopfrog/internal/core"
)

// Constants anchored to the paper's CACTI numbers.
const (
	// mm2PerKiB22nm is SRAM array area per KiB at 22 nm (iTRS-hp, one
	// read/write plus one read-exclusive port), from the paper's 8 KiB =
	// 0.025 mm² per-slice-set figure with overheads folded in.
	mm2PerKiB22nm = 0.025 / 8.0
	// nodeScale22to7 is the paper's conservative 22 nm -> 7 nm factor.
	nodeScale22to7 = 5.0
	// njPerAccess8KiB is the paper's per-access energy at the headline size.
	njPerAccess8KiB = 0.03
	// bloomMM2 is the Bloom-filter conflict-checking area at 7 nm (dual
	// ported SRAM, 8 entries, 4096-bit filters), after Swarm.
	bloomMM2 = 0.005
	// n1CoreMM2 is the Arm Neoverse N1 reference core area at 7 nm,
	// including private L1 and 1 MiB L2 (the paper's comparison core).
	n1CoreMM2 = 1.4
	// smtAreaLow/High bracket the classic SMT area overhead estimate.
	smtAreaLow, smtAreaHigh = 0.10, 0.15
)

// SSBArea returns the estimated area of the SSB's granule-cache storage in
// mm² at 7 nm for the given configuration.
func SSBArea(cfg core.SSBConfig) float64 {
	totalKiB := float64(cfg.Slices*cfg.SliceBytes) / 1024.0
	// Metadata: tag + valid mask per line, roughly proportional to line
	// count; the calibration constant already folds the headline overhead
	// in, so scale linearly with capacity.
	return totalKiB * mm2PerKiB22nm / nodeScale22to7
}

// SSBAccessEnergyNJ returns the per-access energy estimate in nJ.
func SSBAccessEnergyNJ(cfg core.SSBConfig) float64 {
	totalKiB := float64(cfg.Slices*cfg.SliceBytes) / 1024.0
	// Access energy grows sublinearly with capacity; a square-root model is
	// the usual CACTI-fit shape at these sizes.
	base := totalKiB / 8.0
	if base <= 0 {
		return 0
	}
	return njPerAccess8KiB * sqrt(base)
}

// BloomArea returns the conflict-detector Bloom-filter area in mm² at 7 nm.
func BloomArea() float64 { return bloomMM2 }

// Overheads summarises §6.8.
type Overheads struct {
	SSBMM2        float64
	BloomMM2      float64
	NewLogicFrac  float64 // SSB+Bloom over the N1-class core
	TotalLowFrac  float64 // including SMT support, low estimate
	TotalHighFrac float64
	IfSMTFrac     float64 // additional area if SMT already exists
}

// Compute returns the overhead summary for an SSB configuration.
func Compute(cfg core.SSBConfig) Overheads {
	ssb := SSBArea(cfg)
	newLogic := (ssb + bloomMM2) / n1CoreMM2
	return Overheads{
		SSBMM2:        ssb,
		BloomMM2:      bloomMM2,
		NewLogicFrac:  newLogic,
		TotalLowFrac:  smtAreaLow + newLogic,
		TotalHighFrac: smtAreaHigh + newLogic,
		IfSMTFrac:     newLogic,
	}
}

// Report renders the §6.8 overhead summary.
func Report(cfg core.SSBConfig) string {
	o := Compute(cfg)
	var b strings.Builder
	b.WriteString("Area and power overheads (§6.8)\n")
	fmt.Fprintf(&b, "SSB granule cache (%d x %d B):  %.3f mm2 at 7nm (%.3f nJ/access)\n",
		cfg.Slices, cfg.SliceBytes, o.SSBMM2, SSBAccessEnergyNJ(cfg))
	fmt.Fprintf(&b, "Bloom-filter conflict detector: %.3f mm2 at 7nm\n", o.BloomMM2)
	fmt.Fprintf(&b, "new components vs N1-class core (%.1f mm2): %.1f%%\n", n1CoreMM2, 100*o.NewLogicFrac)
	fmt.Fprintf(&b, "total vs sequential design (incl. SMT support): %.0f-%.0f%%\n",
		100*o.TotalLowFrac, 100*o.TotalHighFrac)
	fmt.Fprintf(&b, "total if SMT support already exists: ~%.0f%%\n", 100*o.IfSMTFrac+0.5)
	return b.String()
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}
