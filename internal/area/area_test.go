package area

import (
	"math"
	"strings"
	"testing"

	"loopfrog/internal/core"
)

func TestSSBAreaMatchesPaperAnchor(t *testing.T) {
	// Headline: 4 slices x 2 KiB = 8 KiB -> ~0.02 mm2 at 7 nm (§6.8).
	got := SSBArea(core.DefaultSSBConfig())
	if math.Abs(got-0.005) > 0.0011 {
		// 0.025 mm2 at 22nm / 5 = 0.005 mm2; the paper quotes 0.02 mm2 for
		// the four slices including peripheral overheads; our calibration
		// reproduces the storage-array component.
		t.Errorf("SSBArea = %.4f mm2, want ~0.005 (storage component)", got)
	}
}

func TestAreaScalesWithCapacity(t *testing.T) {
	small := core.DefaultSSBConfig()
	big := core.DefaultSSBConfig()
	big.SliceBytes *= 4
	if SSBArea(big) <= SSBArea(small) {
		t.Error("area does not grow with capacity")
	}
	if e := SSBAccessEnergyNJ(big); e <= SSBAccessEnergyNJ(small) {
		t.Errorf("energy does not grow with capacity: %v", e)
	}
}

func TestComputeOverheadsInPaperRange(t *testing.T) {
	o := Compute(core.DefaultSSBConfig())
	// Paper: ~2% of an N1-class core for new components; 12-17% total.
	if o.NewLogicFrac < 0.001 || o.NewLogicFrac > 0.03 {
		t.Errorf("new-logic fraction = %.3f, want ~0.7-2%%", o.NewLogicFrac)
	}
	if o.TotalLowFrac < 0.10 || o.TotalHighFrac > 0.18 {
		t.Errorf("total overhead [%.2f, %.2f], want within ~[0.10, 0.18]", o.TotalLowFrac, o.TotalHighFrac)
	}
	if o.TotalHighFrac <= o.TotalLowFrac {
		t.Error("overhead bracket inverted")
	}
}

func TestReportMentionsComponents(t *testing.T) {
	r := Report(core.DefaultSSBConfig())
	for _, want := range []string{"SSB granule cache", "Bloom-filter", "N1-class", "SMT"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestSqrt(t *testing.T) {
	for _, x := range []float64{0, 1, 2, 4, 9, 100, 0.25} {
		want := math.Sqrt(x)
		if got := sqrt(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("sqrt(%v) = %v, want %v", x, got, want)
		}
	}
}
