package fastsim

// Functional warming of the LoopFrog engine's adaptive state. The detailed
// machine's thread chain collectively commits the program's sequential
// instruction stream, and everything the engine learns from that stream —
// pack-predictor live-in/write sets, stride training, epoch-size EMAs,
// region-monitor charge and cooldown — is a function of architectural
// values, not of timing. The fast tier therefore replays the chain's hint
// automaton over its own sequential execution: detach locks a region and
// (monitor permitting) "spawns", reattach ends epochs, sync releases the
// region, and the same engine calls the detailed commit stage would make
// fire along the way.
//
// Two effects are genuinely timing-dependent and are approximated:
//
//   - Squash charges. Sync squashes (loop exits) and pack-mispredict
//     squashes follow directly from the architectural stream and are
//     replayed; conflict squashes depend on cross-threadlet interleaving and
//     are not. SSB overflow is replayed from the per-iteration store-line
//     footprint times the packing factor against the slice capacity — the
//     deterministic recurrence that makes the monitor treat overflow as an
//     immediate disable.
//   - Context availability. A detach that finds no free context in the
//     machine retries next iteration; the emulation assumes a context is
//     free, the overwhelmingly common case.
//
// The payoff is that a window seeded from a checkpoint starts with the
// engine mid-stride — cooldowns in force, strides trained, EMAs settled —
// instead of replaying a cold-start honeymoon whose memory (up to a
// 4096-detach cooldown) is far longer than any affordable detailed warmup.

import (
	"loopfrog/internal/core"
	"loopfrog/internal/isa"
)

// LFWarm configures LoopFrog-engine functional warming. The Monitor and
// Pack policies must match the configuration of the detailed machine that
// will be seeded from the emitted checkpoints.
type LFWarm struct {
	// Threadlets is the detailed machine's context count; warming engages
	// only when it is at least 2 (a single-context machine never spawns, so
	// its engine state stays cold and untrained).
	Threadlets int
	// Monitor and Pack are the engine policies to warm.
	Monitor core.MonitorConfig
	Pack    core.PackConfig
	// SSB sizes the overflow estimate: an epoch whose per-iteration store
	// footprint times its packing factor exceeds one slice's line capacity
	// is charged as a deterministic overflow.
	SSB core.SSBConfig
}

// lfState is the sequential hint automaton plus the engine instances being
// warmed. Field names follow the threadlet fields they mirror.
type lfState struct {
	mon  *core.RegionMonitor
	pack *core.PackPredictor

	packEnabled bool
	sliceLines  int
	lineBytes   uint64

	region    int64 // owned region id (continuation PC); 0 = none
	detached  bool
	skip      int // reattaches left to skip in a packed epoch
	verify    bool
	predicted [isa.NumRegs]uint64

	epochInsts  uint64
	epochFactor int
	written     [isa.NumRegs]bool // written-this-iteration, live-in detection

	// Per-iteration distinct store lines; maxIterLines is the epoch's peak.
	lines        map[uint64]struct{}
	maxIterLines int
}

func newLFState(cfg *LFWarm, mon *core.RegionMonitor, pack *core.PackPredictor) *lfState {
	if mon == nil {
		mon = core.NewRegionMonitor(cfg.Monitor)
	}
	if pack == nil {
		pack = core.NewPackPredictor(cfg.Pack)
	}
	lines := 0
	if cfg.SSB.LineBytes > 0 {
		lines = cfg.SSB.SliceBytes / cfg.SSB.LineBytes
	}
	st := &lfState{
		mon:         mon,
		pack:        pack,
		packEnabled: cfg.Pack.Enabled,
		sliceLines:  lines,
		lineBytes:   uint64(cfg.SSB.LineBytes),
		lines:       make(map[uint64]struct{}),
	}
	return st
}

// observeRegs mirrors the commit stage's live-in/write-set observation over
// the committed stream while inside a region. Call only when region != 0.
func (s *lfState) observeRegs(inst *isa.Inst, meta *isa.Meta) {
	if meta.HasRs1 && inst.Rs1 != isa.X0 && !s.written[inst.Rs1] {
		s.pack.ObserveLiveIn(s.region, inst.Rs1)
	}
	if meta.HasRs2 && inst.Rs2 != isa.X0 && !s.written[inst.Rs2] {
		s.pack.ObserveLiveIn(s.region, inst.Rs2)
	}
	if meta.HasRd && inst.Rd != isa.X0 {
		s.pack.ObserveWrite(s.region, inst.Rd)
		s.written[inst.Rd] = true
	}
}

// observeStore adds a store to the current iteration's line footprint for
// the overflow estimate. Call only when region != 0.
func (s *lfState) observeStore(addr uint64) {
	if s.sliceLines > 0 {
		s.lines[addr/s.lineBytes] = struct{}{}
	}
}

// hint is the sequential replay of Machine.handleHint for the committed
// stream's owner chain.
func (s *lfState) hint(op isa.Opcode, region int64, regs *[isa.NumRegs]uint64) {
	switch op {
	case isa.DETACH:
		// Committed detaches bound iterations: the live-in detection window
		// and the per-iteration store footprint reset here regardless of
		// ownership, as in the commit stage.
		s.written = [isa.NumRegs]bool{}
		s.rollIteration()
		s.detach(region, regs)
	case isa.REATTACH:
		if s.region == region && s.detached {
			if s.skip > 0 {
				s.skip--
				return
			}
			s.endEpoch()
		}
	case isa.SYNC:
		if s.region == region {
			// Loop exit: the machine cancels every live successor. The
			// chain's runway ahead of the exit is timing; one cancelled
			// successor — the one this automaton spawned — is the floor and
			// the charge replayed here.
			if s.detached {
				s.mon.OnSquash(region, core.SquashSync)
			}
			s.region = 0
			s.detached = false
			s.skip = 0
			s.verify = false
			s.rollIteration()
			s.maxIterLines = 0
		}
	}
}

// detach replays the spawn side of handleHint/trySpawn.
func (s *lfState) detach(region int64, regs *[isa.NumRegs]uint64) {
	if s.region != 0 && s.region != region {
		return // inner region while owning another: hint NOP
	}
	if s.detached {
		if s.verify && s.skip == 0 {
			// Packing verification point (§4.3): compare the prediction the
			// successor started from against the values actually reached.
			s.verify = false
			for _, iv := range s.pack.IVs(region) {
				if s.predicted[iv] != regs[iv] {
					s.pack.Mispredicts++
					s.mon.OnSquash(region, core.SquashPackMispredict)
					break
				}
			}
		}
		return
	}
	if !s.mon.Allow(region) {
		return
	}
	factor := 1
	if s.packEnabled {
		// All values are architectural here, so every register is resolved —
		// the detailed front end stalls detaches briefly to reach the same
		// point (delayDetachForPacking).
		s.pack.TrainStride(region, regs, nil)
		factor, s.predicted = s.pack.Decide(region, regs)
	}
	s.region = region
	s.detached = true
	s.skip = factor - 1
	s.verify = factor > 1
	s.epochFactor = factor
}

// endEpoch replays tryRetire's engine reporting at the reattach that ends a
// detached epoch; the next sequential instruction is the successor's first.
func (s *lfState) endEpoch() {
	s.rollIteration()
	s.mon.OnCommit(s.region)
	s.mon.OnEpochRetired(s.region, s.epochInsts)
	s.pack.OnEpochRetired(s.region, s.epochInsts, s.epochFactor)
	if s.sliceLines > 0 && s.maxIterLines*maxInt(s.epochFactor, 1) > s.sliceLines {
		// The epoch's stores cannot fit one SSB slice: in the machine this
		// recurs deterministically for every speculative epoch of the region
		// and disables it immediately.
		s.mon.OnSquash(s.region, core.SquashOverflow)
	}
	s.epochInsts = 0
	s.epochFactor = 0
	s.maxIterLines = 0
	s.detached = false
	s.verify = false
}

// rollIteration closes the per-iteration store-line window.
func (s *lfState) rollIteration() {
	if len(s.lines) == 0 {
		return
	}
	if len(s.lines) > s.maxIterLines {
		s.maxIterLines = len(s.lines)
	}
	clear(s.lines)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
