package fastsim

import (
	"testing"

	"loopfrog/internal/bpred"
	"loopfrog/internal/cpu"
	"loopfrog/internal/mem"
	"loopfrog/internal/ref"
	"loopfrog/internal/workloads"
)

// TestExactVsRef checks the fast tier is architecturally bit-identical to the
// reference interpreter on every suite workload, with warming enabled (warming
// must never perturb architectural results).
func TestExactVsRef(t *testing.T) {
	bpCfg := bpred.DefaultConfig()
	hierCfg := mem.DefaultHierConfig()
	for _, b := range append(workloads.CPU2017(), workloads.CPU2006()...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog := b.MustProgram()
			want := ref.MustRun(prog, ref.Options{})
			got, err := Run(prog, Options{BPred: &bpCfg, Hier: &hierCfg})
			if err != nil {
				t.Fatalf("fastsim.Run: %v", err)
			}
			if got.DynInsts != want.DynInsts {
				t.Fatalf("DynInsts: fastsim %d, ref %d", got.DynInsts, want.DynInsts)
			}
			if got.Regs != want.Regs {
				t.Fatalf("final register file differs from ref")
			}
			if !got.Mem.Equal(want.Mem) {
				t.Fatalf("final memory differs from ref:\n%s", got.Mem.Diff(want.Mem))
			}
		})
	}
}

// TestCheckpointPositions checks emission at exact interval boundaries and
// that checkpoint state matches an independent run truncated at that point.
func TestCheckpointPositions(t *testing.T) {
	prog := workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()
	const every = 10_000
	res, err := Run(prog, Options{CheckpointEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) == 0 {
		t.Fatal("no checkpoints emitted")
	}
	wantN := int(res.DynInsts/every) + 1
	if res.DynInsts%every == 0 {
		// A run ending exactly on a boundary halts before emitting there.
		wantN = int(res.DynInsts / every)
	}
	if len(res.Checkpoints) != wantN {
		t.Fatalf("got %d checkpoints, want %d (DynInsts=%d)", len(res.Checkpoints), wantN, res.DynInsts)
	}
	for i, ck := range res.Checkpoints {
		if ck.Insts != uint64(i)*every {
			t.Fatalf("checkpoint %d at inst %d, want %d", i, ck.Insts, uint64(i)*every)
		}
		if ck.Mem == nil {
			t.Fatalf("checkpoint %d has nil memory", i)
		}
	}

	// Resuming from a mid-run checkpoint must finish with exactly the state
	// and instruction count of the uninterrupted run.
	ck := res.Checkpoints[len(res.Checkpoints)/2]
	full := ref.MustRun(prog, ref.Options{})
	resumed, err := Resume(prog, ck, Options{})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed.Regs != full.Regs {
		t.Fatalf("arch resume from checkpoint diverges in registers")
	}
	if !resumed.Mem.Equal(full.Mem) {
		t.Fatalf("arch resume from checkpoint diverges in memory:\n%s", resumed.Mem.Diff(full.Mem))
	}
	if ck.Insts+resumed.DynInsts != full.DynInsts {
		t.Fatalf("instruction counts: %d (to ckpt) + %d (resumed) != %d (full)",
			ck.Insts, resumed.DynInsts, full.DynInsts)
	}
}

// TestImmutableUnderConcurrentSeeding seeds many detailed machines from one
// checkpoint concurrently; under -race this catches any sharing of mutable
// state between checkpoint and machine.
func TestImmutableUnderConcurrentSeeding(t *testing.T) {
	prog := workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()
	bpCfg := bpred.DefaultConfig()
	hierCfg := mem.DefaultHierConfig()
	res, err := Run(prog, Options{CheckpointEvery: 20_000, BPred: &bpCfg, Hier: &hierCfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) < 2 {
		t.Skip("workload too short")
	}
	ck := res.Checkpoints[1]
	cfg := cpu.DefaultConfig()
	cfg.MaxArchInsts = 2_000
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			m, err := cpu.NewMachineFromCheckpoint(cfg, prog, ck)
			if err != nil {
				done <- err
				return
			}
			_, err = m.Run()
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkFastsimWarmed(b *testing.B) {
	prog := workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()
	bpCfg := bpred.DefaultConfig()
	hierCfg := mem.DefaultHierConfig()
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(prog, Options{BPred: &bpCfg, Hier: &hierCfg})
		if err != nil {
			b.Fatal(err)
		}
		insts += res.DynInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}

func BenchmarkFastsimArchOnly(b *testing.B) {
	prog := workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(prog, Options{})
		if err != nil {
			b.Fatal(err)
		}
		insts += res.DynInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}
