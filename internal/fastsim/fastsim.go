// Package fastsim is the fast-functional tier of the two-tier sampled
// simulation pipeline: a lean, predecoded dispatch loop that executes LFISA
// at tens of millions of instructions per second while *warming*
// microarchitectural state — branch-predictor tables, L1/L2 cache tags — and
// carrying the architectural register file and memory.
//
// Like the reference interpreter (internal/ref) it executes strictly
// sequentially with hints as NOPs, which is the architectural semantics of a
// hinted binary; its final state is bit-identical to ref.Run's. Unlike ref it
// runs over the shared PC-indexed predecoded image (asm.Program.Decoded, the
// same machinery the out-of-order front end uses), models a pseudo-clock of
// one cycle per instruction to order cache fills and LRU state, and emits
// cpu.Checkpoint snapshots at a configurable instruction interval. The
// detailed model then simulates only short windows seeded from those
// checkpoints — tier 2 of the pipeline (internal/sim's sampling driver).
package fastsim

import (
	"errors"
	"fmt"

	"loopfrog/internal/asm"
	"loopfrog/internal/bpred"
	"loopfrog/internal/core"
	"loopfrog/internal/cpu"
	"loopfrog/internal/isa"
	"loopfrog/internal/mem"
)

// ErrStepLimit is returned when a program fails to halt within the budget.
var ErrStepLimit = errors.New("fastsim: step limit exceeded")

// DefaultMaxSteps mirrors the reference interpreter's dynamic budget.
const DefaultMaxSteps = 500_000_000

// Options configure a fast-functional run.
type Options struct {
	// MaxSteps bounds execution; 0 means DefaultMaxSteps.
	MaxSteps uint64
	// CheckpointEvery emits a checkpoint before executing instruction 0,
	// CheckpointEvery, 2*CheckpointEvery, ...; 0 disables checkpointing.
	CheckpointEvery uint64
	// CheckpointLead shifts every checkpoint after the first to LEAD its
	// interval boundary: positions become k*CheckpointEvery - CheckpointLead.
	// A sampling driver that runs CheckpointLead instructions of detailed
	// warmup from each checkpoint then starts measuring exactly at the
	// interval boundary, so measured slices align with the intervals they
	// stand for. Must be less than CheckpointEvery.
	CheckpointLead uint64
	// BPred, when non-nil, warms a branch predictor with this configuration:
	// every conditional branch runs a predict/update round exactly as the
	// detailed front end and commit stages would, calls and returns maintain
	// the RAS, and indirect jumps train the BTB.
	BPred *bpred.Config
	// Hier, when non-nil, warms cache tag state with this configuration:
	// loads, stores and instruction fetches probe the hierarchy on the
	// pseudo-clock, so tags, MSHR history and stride-prefetcher state reach a
	// realistic steady state.
	Hier *mem.HierConfig
	// LF, when non-nil (and Threadlets >= 2), warms the LoopFrog engine's
	// adaptive state — region-monitor health and pack-predictor training —
	// by replaying the thread chain's hint automaton over the sequential
	// stream (lfwarm.go). Checkpoints then carry the warm engine plus the
	// owned region, so detailed windows start mid-stride instead of
	// replaying the engine's cold-start honeymoon.
	LF *LFWarm
}

// Result is the final state of a fast-functional run.
type Result struct {
	// Regs holds the final register file; Mem the final memory; DynInsts the
	// dynamic instruction count — all bit-identical to ref.Run on the same
	// program.
	Regs     [isa.NumRegs]uint64
	Mem      *mem.Memory
	DynInsts uint64
	// Checkpoints are the emitted snapshots, in instruction order.
	Checkpoints []*cpu.Checkpoint
}

// instBytesForICache mirrors the detailed front end's assumed instruction
// footprint for I-cache timing.
const instBytesForICache = 4

// Run executes the program to completion, warming predictor/cache state and
// emitting checkpoints per opts.
func Run(p *asm.Program, opts Options) (*Result, error) {
	return run(p, opts, nil)
}

// Resume executes the remainder of the program from a checkpoint. Warming
// state continues from the checkpoint's (when present there and configured in
// opts) or starts cold. Result.DynInsts and checkpoint positions count from
// the resume point, not from program start.
func Resume(p *asm.Program, ck *cpu.Checkpoint, opts Options) (*Result, error) {
	return run(p, opts, ck)
}

func run(p *asm.Program, opts Options, start *cpu.Checkpoint) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	var bp *bpred.Predictor
	if opts.BPred != nil {
		if start != nil && start.BP != nil {
			bp = start.BP.CloneFor(1)
		} else {
			bp = bpred.New(*opts.BPred, 1)
		}
	}
	var hier *mem.Hierarchy
	if opts.Hier != nil {
		if start != nil && start.Hier != nil {
			hier = start.Hier.CloneAt(0)
		} else {
			hier = mem.NewHierarchy(*opts.Hier)
		}
	}
	var lf *lfState
	if opts.LF != nil && opts.LF.Threadlets >= 2 {
		if start != nil {
			var mon *core.RegionMonitor
			var pack *core.PackPredictor
			if start.Mon != nil {
				mon = start.Mon.Clone()
			}
			if start.Pack != nil {
				pack = start.Pack.Clone()
			}
			lf = newLFState(opts.LF, mon, pack)
			if start.Region > 0 {
				lf.region = start.Region
			}
		} else {
			lf = newLFState(opts.LF, nil, nil)
		}
	}
	res := &Result{}
	regs := &res.Regs
	if start != nil {
		res.Mem = start.Mem.Clone()
		res.Regs = start.Regs
	} else {
		res.Mem = mem.NewMemory()
		res.Mem.LoadProgram(p)
		regs[isa.X(2)] = asm.DefaultStackTop // sp
	}

	code := p.Decoded()
	n := len(code)
	pc := p.Entry
	if start != nil {
		pc = start.PC
	}
	var now int64 // pseudo-clock: one cycle per instruction
	var lineTag uint64
	lineValid := false
	nextCkpt := uint64(0)
	if opts.CheckpointEvery == 0 {
		nextCkpt = ^uint64(0)
	}
	for res.DynInsts < maxSteps {
		if pc < 0 || pc >= n {
			return nil, fmt.Errorf("fastsim: pc %d out of range [0,%d) after %d instructions", pc, n, res.DynInsts)
		}
		if res.DynInsts == nextCkpt {
			res.Checkpoints = append(res.Checkpoints, checkpoint(pc, res, bp, hier, now, lf))
			if nextCkpt == 0 && opts.CheckpointLead > 0 && opts.CheckpointLead < opts.CheckpointEvery {
				nextCkpt = opts.CheckpointEvery - opts.CheckpointLead
			} else {
				nextCkpt += opts.CheckpointEvery
			}
		}
		if hier != nil {
			// Instruction-side warming, one probe per line like the front end.
			tag := uint64(pc*instBytesForICache) / uint64(opts.Hier.L1I.LineBytes)
			if !lineValid || tag != lineTag {
				hier.Fetch(uint64(pc*instBytesForICache), now)
				lineTag, lineValid = tag, true
			}
		}
		d := &code[pc]
		inst := d.Inst
		meta := d.Meta
		res.DynInsts++
		now++
		next := pc + 1
		switch {
		case inst.Op == isa.HALT:
			regs[0] = 0
			return res, nil
		case meta.IsHint:
			// Architectural NOPs; the LF-warm automaton replays the engine's
			// view of them.
			if lf != nil {
				lf.epochInsts++
				lf.hint(inst.Op, inst.Imm, regs)
			}
		case inst.Op == isa.NOP:
			if lf != nil {
				lf.epochInsts++
			}
		case meta.IsLoad:
			addr := regs[inst.Rs1] + uint64(inst.Imm)
			raw := res.Mem.Read(addr, meta.MemBytes)
			if lf != nil {
				lf.epochInsts++
				if lf.region != 0 {
					lf.observeRegs(&inst, meta)
				}
			}
			setReg(regs, inst.Rd, isa.ExtendLoad(inst.Op, raw))
			if hier != nil {
				hier.Load(pc, addr, now)
			}
		case meta.IsStore:
			addr := regs[inst.Rs1] + uint64(inst.Imm)
			res.Mem.Write(addr, meta.MemBytes, regs[inst.Rs2])
			if lf != nil {
				lf.epochInsts++
				if lf.region != 0 {
					lf.observeRegs(&inst, meta)
					lf.observeStore(addr)
				}
			}
			if hier != nil {
				hier.Store(addr, now)
			}
		case meta.IsBranch:
			taken := isa.BranchTaken(inst.Op, regs[inst.Rs1], regs[inst.Rs2])
			if taken {
				next = int(inst.Imm)
			}
			if lf != nil {
				lf.epochInsts++
				if lf.region != 0 {
					lf.observeRegs(&inst, meta)
				}
			}
			if bp != nil {
				// The same predict → (mispredict repair) → train round the
				// detailed machine runs at fetch, execute and commit.
				st := bp.PredictBranch(0, pc)
				if st.Taken != taken {
					bp.OnSquash(0, st.Hist, taken)
				}
				bp.UpdateBranch(0, pc, taken, st)
			}
		case inst.Op == isa.JAL:
			if lf != nil {
				lf.epochInsts++
				if lf.region != 0 {
					lf.observeRegs(&inst, meta)
				}
			}
			setReg(regs, inst.Rd, uint64(pc+1))
			next = int(inst.Imm)
			if bp != nil && bpred.IsCall(inst) {
				bp.PushRAS(0, pc+1)
			}
		case inst.Op == isa.JALR:
			target := int(regs[inst.Rs1] + uint64(inst.Imm))
			if lf != nil {
				lf.epochInsts++
				if lf.region != 0 {
					lf.observeRegs(&inst, meta)
				}
			}
			setReg(regs, inst.Rd, uint64(pc+1))
			next = target
			if bp != nil {
				switch {
				case bpred.IsReturn(inst):
					bp.PopRAS(0)
				case bpred.IsCall(inst):
					bp.PushRAS(0, pc+1)
				}
				bp.UpdateIndirect(pc, target)
			}
		default:
			if lf != nil {
				lf.epochInsts++
				if lf.region != 0 {
					lf.observeRegs(&inst, meta)
				}
			}
			setReg(regs, inst.Rd, isa.EvalALU(inst, regs[inst.Rs1], regs[inst.Rs2]))
		}
		pc = next
	}
	return nil, fmt.Errorf("%w (%d)", ErrStepLimit, maxSteps)
}

// checkpoint captures an immutable snapshot of the current state.
func checkpoint(pc int, res *Result, bp *bpred.Predictor, hier *mem.Hierarchy, now int64, lf *lfState) *cpu.Checkpoint {
	ck := &cpu.Checkpoint{
		PC:    pc,
		Insts: res.DynInsts,
		Regs:  res.Regs,
		Mem:   res.Mem.Clone(),
	}
	if bp != nil {
		ck.BP = bp.CloneFor(1)
	}
	if hier != nil {
		ck.Hier = hier.CloneAt(now)
	}
	if lf != nil {
		ck.Region = lf.region
		ck.Mon = lf.mon.Clone()
		ck.Pack = lf.pack.Clone()
	}
	return ck
}

func setReg(regs *[isa.NumRegs]uint64, r isa.Reg, v uint64) {
	if r == isa.X0 {
		return
	}
	regs[r] = v
}
