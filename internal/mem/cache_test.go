package mem

import "testing"

func smallHier() *Hierarchy {
	cfg := DefaultHierConfig()
	cfg.L1DPrefetch.Degree = 0 // most tests want deterministic contents
	cfg.L2Prefetch.Degree = 0
	cfg.L2NextLine = false
	return NewHierarchy(cfg)
}

func TestLoadMissThenHit(t *testing.T) {
	h := smallHier()
	done, ok := h.Load(0, 0x1000, 0)
	if !ok {
		t.Fatal("first load not accepted")
	}
	// Cold miss goes L1D miss -> L2 miss -> DRAM.
	wantMin := DefaultHierConfig().DRAMLatency
	if done < wantMin {
		t.Errorf("cold miss completed at %d, want >= %d", done, wantMin)
	}
	// A later access to the same line is an L1 hit.
	done2, ok := h.Load(0, 0x1008, done)
	if !ok || done2 != done+h.cfg.L1D.HitLatency {
		t.Errorf("hit completed at %d, want %d", done2, done+h.cfg.L1D.HitLatency)
	}
	_, l1d, l2 := h.Stats()
	if l1d.Misses != 1 || l1d.Hits != 1 {
		t.Errorf("l1d hits/misses = %d/%d, want 1/1", l1d.Hits, l1d.Misses)
	}
	if l2.Misses != 1 {
		t.Errorf("l2 misses = %d, want 1", l2.Misses)
	}
}

func TestL2HitFasterThanDRAM(t *testing.T) {
	h := smallHier()
	done1, _ := h.Load(0, 0x4000, 0)
	// Evict from L1D by filling its set: L1D is 64KiB 4-way with 64B lines,
	// so addresses 0x4000 + k*64KiB map to the same set.
	now := done1
	for k := 1; k <= 4; k++ {
		d, ok := h.Load(0, 0x4000+uint64(k)<<16, now)
		if !ok {
			t.Fatalf("conflict load %d rejected", k)
		}
		now = d
	}
	// 0x4000 is now out of L1D but still in L2.
	done2, ok := h.Load(0, 0x4000, now)
	if !ok {
		t.Fatal("re-load rejected")
	}
	lat := done2 - now
	l2lat := h.cfg.L2.HitLatency + h.cfg.L1D.HitLatency
	if lat != l2lat {
		t.Errorf("L2 hit latency = %d, want %d", lat, l2lat)
	}
}

func TestMSHRMerging(t *testing.T) {
	h := smallHier()
	d1, ok1 := h.Load(0, 0x8000, 0)
	d2, ok2 := h.Load(0, 0x8008, 1) // same line, one cycle later
	if !ok1 || !ok2 {
		t.Fatal("loads rejected")
	}
	if d2 != d1 {
		t.Errorf("merged miss completes at %d, want %d (same fill as the primary miss)", d2, d1)
	}
	_, l1d, l2 := h.Stats()
	if l2.Accesses != 1 {
		t.Errorf("l2 accesses = %d, want 1 (merge must not re-fetch)", l2.Accesses)
	}
	if l1d.MSHRMergeHits != 1 {
		t.Errorf("merge hits = %d, want 1", l1d.MSHRMergeHits)
	}
}

func TestMSHRExhaustionRejects(t *testing.T) {
	h := smallHier()
	n := h.cfg.L1D.MSHRs
	for i := 0; i <= n; i++ {
		addr := uint64(0x10000 + i*4096) // distinct lines and sets
		_, ok := h.Load(0, addr, 0)
		if i < n && !ok {
			t.Fatalf("load %d rejected before MSHRs full", i)
		}
		if i == n && ok {
			t.Fatalf("load %d accepted with all %d MSHRs busy", i, n)
		}
	}
	_, l1d, _ := h.Stats()
	if l1d.MSHRStalls != 1 {
		t.Errorf("MSHR stalls = %d, want 1", l1d.MSHRStalls)
	}
	// After the fills complete, new misses are accepted again.
	if _, ok := h.Load(0, 0x90000, 10_000); !ok {
		t.Error("load rejected after MSHRs drained")
	}
}

func TestDRAMBandwidthSerialises(t *testing.T) {
	h := smallHier()
	d1, _ := h.Load(0, 0x100000, 0)
	d2, _ := h.Load(0, 0x200000, 0)
	if d2 < d1+h.cfg.DRAMCyclesPerLine {
		t.Errorf("second DRAM access at %d not serialised after %d", d2, d1)
	}
}

func TestStoreHitAndMiss(t *testing.T) {
	h := smallHier()
	// Store miss allocates (write-allocate) and uses a write buffer.
	stall, ok := h.Store(0x3000, 0)
	if !ok || stall != 0 {
		t.Fatalf("store miss = (%d,%v), want buffered (0,true)", stall, ok)
	}
	// Store hit on the same line.
	stall, ok = h.Store(0x3008, 500)
	if !ok || stall != 0 {
		t.Errorf("store hit = (%d,%v), want (0,true)", stall, ok)
	}
	_, l1d, _ := h.Stats()
	if l1d.Accesses < 2 {
		t.Errorf("l1d accesses = %d, want >= 2", l1d.Accesses)
	}
}

func TestStoreWriteBufferExhaustion(t *testing.T) {
	h := smallHier()
	n := h.cfg.L1D.WriteBuffers
	rejected := false
	for i := 0; i <= n; i++ {
		_, ok := h.Store(uint64(0x40000+i*4096), 0)
		if !ok {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatalf("no store rejected after %d misses with %d write buffers", n+1, n)
	}
	// Once buffers drain, stores are accepted again.
	if _, ok := h.Store(0x900000, 50_000); !ok {
		t.Error("store rejected after buffers drained")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	h := smallHier()
	h.Store(0x4000, 0)
	now := int64(1000)
	// Evict by filling the set with loads.
	for k := 1; k <= 4; k++ {
		d, ok := h.Load(0, 0x4000+uint64(k)<<16, now)
		if !ok {
			t.Fatalf("conflict load %d rejected", k)
		}
		now = d
	}
	_, l1d, _ := h.Stats()
	if l1d.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", l1d.Writebacks)
	}
}

func TestStridePrefetcherHidesLatency(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.L2Prefetch.Degree = 0
	cfg.L2NextLine = false
	h := NewHierarchy(cfg)
	// Stream through memory at a fixed 64-byte stride from one PC.
	now := int64(0)
	var missesLate uint64
	_, before, _ := h.Stats()
	_ = before
	for i := 0; i < 64; i++ {
		addr := 0x100000 + uint64(i)*64
		done, ok := h.Load(7, addr, now)
		if !ok {
			t.Fatalf("load %d rejected", i)
		}
		now = done + 10
		if i == 32 {
			_, mid, _ := h.Stats()
			missesLate = mid.Misses
		}
	}
	_, after, _ := h.Stats()
	tail := after.Misses - missesLate
	if after.PrefetchIssued == 0 {
		t.Fatal("stride prefetcher never fired")
	}
	if after.PrefetchUseful == 0 {
		t.Error("no prefetch was useful")
	}
	if tail > 16 {
		t.Errorf("late-stream demand misses = %d, prefetcher not covering", tail)
	}
}

func TestNextLinePrefetchFillsL2(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.L1DPrefetch.Degree = 0
	cfg.L2Prefetch.Degree = 0
	h := NewHierarchy(cfg)
	d1, _ := h.Load(0, 0x700000, 0)
	// The next line should now be an L2 hit (prefetched), not a DRAM miss.
	d2, ok := h.Load(0, 0x700040, d1)
	if !ok {
		t.Fatal("second load rejected")
	}
	lat := d2 - d1
	if lat > h.cfg.L2.HitLatency+h.cfg.L1D.HitLatency+h.cfg.DRAMCyclesPerLine {
		t.Errorf("neighbour line latency = %d, want an L2-hit-class latency", lat)
	}
}

func TestSnoopInvalidates(t *testing.T) {
	h := smallHier()
	d, _ := h.Load(0, 0x5000, 0)
	if !h.Contains(0x5000) {
		t.Fatal("line not resident after load")
	}
	if !h.Snoop(0x5000, true) {
		t.Error("snoop did not find resident line")
	}
	if h.Contains(0x5000) {
		t.Error("line still resident after invalidating snoop")
	}
	// Next access misses again.
	d2, _ := h.Load(0, 0x5000, d+1000)
	if d2-(d+1000) <= h.cfg.L1D.HitLatency {
		t.Error("post-snoop access hit; expected a miss")
	}
	if h.Snoop(0x999000, true) {
		t.Error("snoop found a never-loaded line")
	}
}

func TestFetchUsesL1I(t *testing.T) {
	h := smallHier()
	d1 := h.Fetch(0x0, 0)
	if d1 < h.cfg.DRAMLatency {
		t.Errorf("cold fetch at %d, want >= DRAM latency", d1)
	}
	d2 := h.Fetch(0x8, d1)
	if d2 != d1+h.cfg.L1I.HitLatency {
		t.Errorf("warm fetch latency = %d, want %d", d2-d1, h.cfg.L1I.HitLatency)
	}
	l1i, l1d, _ := h.Stats()
	if l1i.Accesses != 2 {
		t.Errorf("l1i accesses = %d, want 2", l1i.Accesses)
	}
	if l1d.Accesses != 0 {
		t.Error("instruction fetch touched the L1D")
	}
}

func TestLRUReplacement(t *testing.T) {
	h := smallHier()
	// Fill one L1D set (4 ways) and touch the first line again, then insert
	// a fifth line: the second line (LRU) must be the victim.
	base := uint64(0x4000)
	way := func(k int) uint64 { return base + uint64(k)<<16 }
	now := int64(0)
	for k := 0; k < 4; k++ {
		d, _ := h.Load(0, way(k), now)
		now = d
	}
	h.Load(0, way(0), now) // refresh way 0
	now += 1000
	h.Load(0, way(4), now) // evicts way 1
	now += 1000
	if !h.Contains(way(0)) {
		t.Error("MRU line evicted")
	}
	if h.Contains(way(1)) {
		t.Error("LRU line survived")
	}
}
