package mem

// This file implements the timing side of the memory system: tag-only
// set-associative caches with MSHRs and write buffers, stride and next-line
// prefetchers, and a bandwidth-limited fixed-latency DRAM, per Table 1 of
// the paper. Data values live in the functional Memory; the hierarchy only
// answers "when would this access complete?", which is the contract the
// out-of-order core needs.

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name         string
	SizeBytes    int
	LineBytes    int
	Assoc        int
	HitLatency   int64
	MSHRs        int
	MSHRTargets  int
	WriteBuffers int
}

// StrideConfig configures a stride prefetcher.
type StrideConfig struct {
	// Degree is how many lines ahead to prefetch; 0 disables.
	Degree int
	// TableEntries sizes the per-PC training table.
	TableEntries int
}

// HierConfig configures the whole hierarchy.
type HierConfig struct {
	L1I, L1D, L2 CacheConfig
	// DRAMLatency is the access latency in core cycles.
	DRAMLatency int64
	// DRAMCyclesPerLine models bandwidth: minimum spacing between line
	// transfers.
	DRAMCyclesPerLine int64
	// L1DPrefetch and L2Prefetch configure stride prefetchers; L2 also
	// prefetches the neighbouring line on a miss when NextLine is set.
	L1DPrefetch StrideConfig
	L2Prefetch  StrideConfig
	L2NextLine  bool
}

// DefaultHierConfig reproduces Table 1: 64 KiB 4-way L1I (1-cycle) and L1D
// (2-cycle, 10 MSHRs x16, 12 write buffers, stride degree 2), 4 MiB 8-way L2
// (11-cycle, 32 MSHRs x16, 32 write buffers, stride degree 8 + neighbour),
// and ~60 ns DDR3 at 4 GHz with ~100 GiB/s of bandwidth.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I: CacheConfig{Name: "l1i", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 4, HitLatency: 1, MSHRs: 16, MSHRTargets: 8, WriteBuffers: 0},
		L1D: CacheConfig{Name: "l1d", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 4, HitLatency: 2, MSHRs: 10, MSHRTargets: 16, WriteBuffers: 12},
		L2:  CacheConfig{Name: "l2", SizeBytes: 4 << 20, LineBytes: 64, Assoc: 8, HitLatency: 11, MSHRs: 32, MSHRTargets: 16, WriteBuffers: 32},
		// 60ns at 4GHz = 240 cycles; 100 GiB/s at 4GHz ~ 25 B/cycle, so a
		// 64 B line occupies ~3 cycles of channel time.
		DRAMLatency:       240,
		DRAMCyclesPerLine: 3,
		L1DPrefetch:       StrideConfig{Degree: 2, TableEntries: 256},
		L2Prefetch:        StrideConfig{Degree: 8, TableEntries: 256},
		L2NextLine:        true,
	}
}

// CacheStats aggregates per-level counters.
type CacheStats struct {
	Accesses        uint64
	Hits            uint64
	Misses          uint64
	MSHRMergeHits   uint64
	MSHRStalls      uint64
	Writebacks      uint64
	PrefetchIssued  uint64
	PrefetchUseful  uint64
	SnoopInvalidate uint64
}

type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	prefetch bool // brought in by a prefetch, not yet demand-hit
	lastUse  int64
	readyAt  int64 // fill completion time for in-flight lines
}

type mshrEntry struct {
	block   uint64
	fillAt  int64
	targets int
}

type strideTable struct {
	entries []strideEntry
}

type strideEntry struct {
	key   uint64
	last  uint64
	delta int64
	conf  int8
	valid bool
}

// level is one cache level.
type level struct {
	cfg      CacheConfig
	sets     [][]line
	setMask  uint64
	lineBits uint
	mshrs    []mshrEntry
	// outstanding store-miss count emulating write buffers.
	storeBusy []int64 // completion times of in-flight store misses
	stats     CacheStats
}

func newLevel(cfg CacheConfig) *level {
	numLines := cfg.SizeBytes / cfg.LineBytes
	numSets := numLines / cfg.Assoc
	if numSets < 1 {
		numSets = 1
	}
	l := &level{
		cfg:     cfg,
		sets:    make([][]line, numSets),
		setMask: uint64(numSets - 1),
	}
	for i := range l.sets {
		l.sets[i] = make([]line, cfg.Assoc)
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		l.lineBits++
	}
	return l
}

func (l *level) block(addr uint64) uint64 { return addr >> l.lineBits }

func (l *level) set(block uint64) []line { return l.sets[block&l.setMask] }

func (l *level) probe(block uint64) *line {
	set := l.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return &set[i]
		}
	}
	return nil
}

// victim picks an eviction slot in the set (invalid first, then LRU).
func (l *level) victim(block uint64) *line {
	set := l.set(block)
	best := &set[0]
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].lastUse < best.lastUse {
			best = &set[i]
		}
	}
	return best
}

func (l *level) pruneMSHRs(now int64) {
	keep := l.mshrs[:0]
	for _, e := range l.mshrs {
		if e.fillAt > now {
			keep = append(keep, e)
		}
	}
	l.mshrs = keep
}

// Hierarchy is the timing memory system: L1I and L1D backed by a unified L2
// and DRAM.
type Hierarchy struct {
	cfg      HierConfig
	l1i, l1d *level
	l2       *level
	dramFree int64
	l1dPref  strideTable
	l2Pref   strideTable

	// DRAMAccesses counts line transfers to/from memory.
	DRAMAccesses uint64
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		l1i: newLevel(cfg.L1I),
		l1d: newLevel(cfg.L1D),
		l2:  newLevel(cfg.L2),
	}
	h.l1dPref.entries = make([]strideEntry, max(1, cfg.L1DPrefetch.TableEntries))
	h.l2Pref.entries = make([]strideEntry, max(1, cfg.L2Prefetch.TableEntries))
	return h
}

// Stats returns the per-level counters (L1I, L1D, L2).
func (h *Hierarchy) Stats() (l1i, l1d, l2 CacheStats) {
	return h.l1i.stats, h.l1d.stats, h.l2.stats
}

// CloneAt returns a deep copy of the hierarchy's warm state — tags, MSHRs,
// write buffers, stride tables — rebased so that `now` becomes cycle 0, with
// statistics counters reset. It is how the fast-functional tier's warm cache
// state seeds a detailed machine whose clock starts at zero: timestamps in
// the past become non-positive (complete), in-flight fills stay slightly in
// the future, and LRU ordering is preserved because rebasing is monotonic.
func (h *Hierarchy) CloneAt(now int64) *Hierarchy {
	c := &Hierarchy{
		cfg:      h.cfg,
		l1i:      h.l1i.cloneAt(now),
		l1d:      h.l1d.cloneAt(now),
		l2:       h.l2.cloneAt(now),
		dramFree: h.dramFree - now,
	}
	c.l1dPref.entries = append([]strideEntry(nil), h.l1dPref.entries...)
	c.l2Pref.entries = append([]strideEntry(nil), h.l2Pref.entries...)
	return c
}

// cloneAt deep-copies one level with timestamps rebased to now and stats
// reset.
func (l *level) cloneAt(now int64) *level {
	c := &level{
		cfg:      l.cfg,
		sets:     make([][]line, len(l.sets)),
		setMask:  l.setMask,
		lineBits: l.lineBits,
	}
	for i, set := range l.sets {
		cs := append([]line(nil), set...)
		for j := range cs {
			cs[j].lastUse -= now
			cs[j].readyAt -= now
		}
		c.sets[i] = cs
	}
	for _, e := range l.mshrs {
		if e.fillAt > now { // expired entries would be pruned anyway
			e.fillAt -= now
			c.mshrs = append(c.mshrs, e)
		}
	}
	for _, t := range l.storeBusy {
		if t > now {
			c.storeBusy = append(c.storeBusy, t-now)
		}
	}
	return c
}

// Load models a demand data load issued at cycle `now` by the instruction at
// pc. It returns the completion cycle, or ok=false when the access must be
// replayed because the L1D MSHRs (or merge targets) are exhausted.
func (h *Hierarchy) Load(pc int, addr uint64, now int64) (done int64, ok bool) {
	done, ok = h.access(h.l1d, addr, now, false)
	if ok {
		h.stridePrefetch(&h.l1dPref, h.cfg.L1DPrefetch, h.l1d, uint64(pc), addr, now)
	}
	return done, ok
}

// Store models a demand store performed at cycle `now`. Stores complete into
// write buffers; the returned stall is the extra cycles the store pipeline
// must wait before accepting it (0 on hit or free buffer). ok=false means no
// buffer or MSHR is available and the drain must retry.
func (h *Hierarchy) Store(addr uint64, now int64) (stall int64, ok bool) {
	l := h.l1d
	block := l.block(addr)
	if ln := l.probe(block); ln != nil {
		l.stats.Accesses++
		l.stats.Hits++
		if ln.prefetch {
			ln.prefetch = false
			l.stats.PrefetchUseful++
		}
		ln.lastUse = now
		ln.dirty = true
		// In-flight fill: the write merges into the MSHR.
		if ln.readyAt > now {
			return 0, true
		}
		return 0, true
	}
	// Write miss: needs a write buffer while the line is fetched for
	// ownership.
	busy := 0
	keep := l.storeBusy[:0]
	for _, t := range l.storeBusy {
		if t > now {
			keep = append(keep, t)
			busy++
		}
	}
	l.storeBusy = keep
	if busy >= l.cfg.WriteBuffers {
		return 0, false
	}
	done, ok := h.access(l, addr, now, true)
	if !ok {
		return 0, false
	}
	l.storeBusy = append(l.storeBusy, done)
	return 0, true
}

// Fetch models an instruction fetch of the line containing byte address
// addr. It returns the completion cycle; instruction fetches always succeed
// (front ends stall rather than replay).
func (h *Hierarchy) Fetch(addr uint64, now int64) int64 {
	done, ok := h.access(h.l1i, addr, now, false)
	if !ok {
		// Out of MSHRs: serialise after the oldest outstanding fill.
		oldest := now
		for _, e := range h.l1i.mshrs {
			if e.fillAt > oldest {
				oldest = e.fillAt
			}
		}
		return oldest + h.l1i.cfg.HitLatency
	}
	return done
}

// access runs the generic lookup/miss path for one level backed by L2/DRAM.
func (h *Hierarchy) access(l *level, addr uint64, now int64, isStore bool) (int64, bool) {
	l.stats.Accesses++
	block := l.block(addr)
	if ln := l.probe(block); ln != nil {
		ln.lastUse = now
		if ln.prefetch {
			ln.prefetch = false
			l.stats.PrefetchUseful++
		}
		if isStore {
			ln.dirty = true
		}
		if ln.readyAt > now {
			// Hit on an in-flight fill: an MSHR target.
			l.stats.MSHRMergeHits++
			return ln.readyAt + l.cfg.HitLatency, true
		}
		l.stats.Hits++
		return now + l.cfg.HitLatency, true
	}
	l.stats.Misses++
	l.pruneMSHRs(now)
	if len(l.mshrs) >= l.cfg.MSHRs {
		l.stats.MSHRStalls++
		return 0, false
	}
	fill := h.fillFrom(l, addr, now)
	l.mshrs = append(l.mshrs, mshrEntry{block: block, fillAt: fill})
	h.insert(l, block, fill, isStore, false, now)
	return fill + l.cfg.HitLatency, true
}

// fillFrom fetches a line for l from the next level down.
func (h *Hierarchy) fillFrom(l *level, addr uint64, now int64) int64 {
	if l == h.l2 {
		return h.dram(now)
	}
	// L1 miss goes to L2.
	done, ok := h.access(h.l2, addr, now, false)
	if !ok {
		// L2 MSHRs exhausted: serialise behind DRAM.
		done = h.dram(now) + h.l2.cfg.HitLatency
	}
	if h.cfg.L2Prefetch.Degree > 0 {
		h.stridePrefetch(&h.l2Pref, h.cfg.L2Prefetch, h.l2, addr>>h.l2.lineBits>>4, addr, now)
	}
	if h.cfg.L2NextLine {
		h.prefetchLine(h.l2, addr+uint64(h.l2.cfg.LineBytes), now)
	}
	return done
}

func (h *Hierarchy) dram(now int64) int64 {
	h.DRAMAccesses++
	start := now
	if h.dramFree > start {
		start = h.dramFree
	}
	h.dramFree = start + h.cfg.DRAMCyclesPerLine
	return start + h.cfg.DRAMLatency
}

// insert places a (possibly in-flight) line into the tags, handling
// eviction/writeback.
func (h *Hierarchy) insert(l *level, block uint64, readyAt int64, dirty, prefetch bool, now int64) {
	v := l.victim(block)
	if v.valid && v.dirty {
		l.stats.Writebacks++
		if l == h.l2 {
			// L2 writebacks consume DRAM channel time.
			h.dram(now)
		}
		// L1 writebacks land in L2, which is modelled as always accepting.
	}
	*v = line{tag: block, valid: true, dirty: dirty, prefetch: prefetch, lastUse: now, readyAt: readyAt}
}

// prefetchLine issues a prefetch fill into level l if the line is absent.
func (h *Hierarchy) prefetchLine(l *level, addr uint64, now int64) {
	block := l.block(addr)
	if l.probe(block) != nil {
		return
	}
	l.pruneMSHRs(now)
	if len(l.mshrs) >= l.cfg.MSHRs {
		return // prefetches are dropped, never stalled
	}
	var fill int64
	if l == h.l2 {
		fill = h.dram(now)
	} else {
		done, ok := h.access(h.l2, addr, now, false)
		if !ok {
			return
		}
		fill = done
	}
	l.mshrs = append(l.mshrs, mshrEntry{block: block, fillAt: fill})
	h.insert(l, block, fill, false, true, now)
	l.stats.PrefetchIssued++
}

// stridePrefetch trains the stride table with a demand access and issues
// prefetches `degree` strides ahead once confident.
func (h *Hierarchy) stridePrefetch(t *strideTable, cfg StrideConfig, l *level, key, addr uint64, now int64) {
	if cfg.Degree == 0 {
		return
	}
	e := &t.entries[key%uint64(len(t.entries))]
	if !e.valid || e.key != key {
		*e = strideEntry{key: key, last: addr, valid: true}
		return
	}
	delta := int64(addr) - int64(e.last)
	e.last = addr
	if delta == 0 {
		return
	}
	if delta == e.delta {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.delta = delta
		e.conf = 0
		return
	}
	if e.conf < 2 {
		return
	}
	for d := 1; d <= cfg.Degree; d++ {
		h.prefetchLine(l, uint64(int64(addr)+e.delta*int64(d)), now)
	}
}

// Snoop models an external coherence request for the line containing addr.
// If invalidate is set the line is dropped from L1D and L2 (a remote write);
// otherwise a dirty copy is merely downgraded. It reports whether any level
// held the line.
func (h *Hierarchy) Snoop(addr uint64, invalidate bool) bool {
	held := false
	for _, l := range []*level{h.l1d, h.l2} {
		if ln := l.probe(l.block(addr)); ln != nil {
			held = true
			l.stats.SnoopInvalidate++
			if invalidate {
				ln.valid = false
			} else {
				ln.dirty = false
			}
		}
	}
	return held
}

// Contains reports whether the L1D currently holds the line with addr, for
// tests and prefetch-effect analysis.
func (h *Hierarchy) Contains(addr uint64) bool {
	return h.l1d.probe(h.l1d.block(addr)) != nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
