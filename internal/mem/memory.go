// Package mem provides the simulator's memory subsystem: a sparse functional
// backing store holding architectural data values, and (in the timing files)
// the cache hierarchy, MSHRs, prefetchers and DRAM model from Table 1 of the
// paper.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"

	"loopfrog/internal/asm"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, byte-addressed 64-bit functional memory. It holds the
// architectural memory state of a simulation; speculative threadlet state
// lives in the SSB and is merged in only at threadlet commit. Unwritten
// memory reads as zero. Memory is not safe for concurrent use.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

// LoadProgram initialises memory with the program's data segment.
func (m *Memory) LoadProgram(p *asm.Program) {
	m.WriteBytes(p.DataBase, p.Data)
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = m.readByte(addr + uint64(i))
	}
	return out
}

// WriteBytes writes p starting at addr.
func (m *Memory) WriteBytes(addr uint64, p []byte) {
	for i, b := range p {
		m.writeByte(addr+uint64(i), b)
	}
}

// Read returns size bytes at addr as a little-endian uint64 (zero-padded).
// size must be 1, 2, 4 or 8 and the access must be naturally aligned.
func (m *Memory) Read(addr uint64, size int) uint64 {
	checkAccess(addr, size)
	page, off := m.page(addr, false)
	if page == nil {
		return 0
	}
	switch size {
	case 1:
		return uint64(page[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(page[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(page[off:]))
	default:
		return binary.LittleEndian.Uint64(page[off:])
	}
}

// ReadAny returns size bytes at addr as a little-endian uint64 like Read but
// tolerates unaligned addresses (wrong-path speculative loads can compute
// arbitrary addresses); aligned accesses take the single-page fast path.
func (m *Memory) ReadAny(addr uint64, size int) uint64 {
	if addr&uint64(size-1) == 0 {
		return m.Read(addr, size)
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.readByte(addr+uint64(i)))
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian. size must be
// 1, 2, 4 or 8 and the access must be naturally aligned.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	checkAccess(addr, size)
	page, off := m.page(addr, true)
	switch size {
	case 1:
		page[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(page[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(page[off:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(page[off:], v)
	}
}

// Fault describes an architecturally invalid memory access: a bad size or an
// unaligned address reaching an aligned-only access path. The timing core
// turns it into a job-level error (a bad program), while direct misuse of the
// aligned Read/Write API still panics.
type Fault struct {
	Addr uint64
	Size int
	// Unaligned distinguishes misalignment from an invalid access size.
	Unaligned bool
}

func (f *Fault) Error() string {
	if f.Unaligned {
		return fmt.Sprintf("mem: unaligned %d-byte access at %#x", f.Size, f.Addr)
	}
	return fmt.Sprintf("mem: bad access size %d at %#x", f.Size, f.Addr)
}

// ValidateAccess reports whether an access is naturally aligned with a legal
// size, returning a *Fault describing the violation otherwise. Callers that
// route program errors instead of crashing check this before using the
// aligned Read/Write entry points.
func ValidateAccess(addr uint64, size int) error {
	switch size {
	case 1, 2, 4, 8:
	default:
		return &Fault{Addr: addr, Size: size}
	}
	if addr&uint64(size-1) != 0 {
		return &Fault{Addr: addr, Size: size, Unaligned: true}
	}
	return nil
}

func checkAccess(addr uint64, size int) {
	if err := ValidateAccess(addr, size); err != nil {
		panic(err.Error())
	}
}

func (m *Memory) readByte(addr uint64) byte {
	page, off := m.page(addr, false)
	if page == nil {
		return 0
	}
	return page[off]
}

func (m *Memory) writeByte(addr uint64, b byte) {
	page, off := m.page(addr, true)
	page[off] = b
}

func (m *Memory) page(addr uint64, create bool) (*[pageSize]byte, uint64) {
	pn := addr >> pageShift
	page := m.pages[pn]
	if page == nil && create {
		page = new([pageSize]byte)
		m.pages[pn] = page
	}
	return page, addr & pageMask
}

// Clone returns a deep copy of the memory, for checkpointing in tests.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pn, page := range m.pages {
		cp := *page
		c.pages[pn] = &cp
	}
	return c
}

// Equal reports whether two memories hold identical contents (treating
// absent pages as zero-filled).
func (m *Memory) Equal(o *Memory) bool {
	return m.diff(o) == ""
}

// Diff returns a human-readable description of the first few differing
// locations between two memories, or "" if they are equal. Intended for
// test failure messages.
func (m *Memory) Diff(o *Memory) string { return m.diff(o) }

func (m *Memory) diff(o *Memory) string {
	seen := make(map[uint64]bool)
	for pn := range m.pages {
		seen[pn] = true
	}
	for pn := range o.pages {
		seen[pn] = true
	}
	pns := make([]uint64, 0, len(seen))
	for pn := range seen {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	var out string
	count := 0
	var zero [pageSize]byte
	for _, pn := range pns {
		a, b := m.pages[pn], o.pages[pn]
		if a == nil {
			a = &zero
		}
		if b == nil {
			b = &zero
		}
		if *a == *b {
			continue
		}
		for off := 0; off < pageSize; off++ {
			if a[off] != b[off] {
				out += fmt.Sprintf("  %#x: %#02x != %#02x\n", pn<<pageShift|uint64(off), a[off], b[off])
				count++
				if count >= 16 {
					return out + "  ...\n"
				}
			}
		}
	}
	return out
}

// Footprint returns the number of resident pages, for stats and tests.
func (m *Memory) Footprint() int { return len(m.pages) }
