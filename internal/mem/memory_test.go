package mem

import (
	"testing"
	"testing/quick"

	"loopfrog/internal/asm"
)

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	if got := m.Read(0x1234560, 8); got != 0 {
		t.Errorf("unwritten memory reads %#x, want 0", got)
	}
	if got := m.Footprint(); got != 0 {
		t.Errorf("read allocated %d pages, want 0", got)
	}
}

func TestMemoryReadWriteSizes(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 8, 0x1122334455667788)
	cases := []struct {
		addr uint64
		size int
		want uint64
	}{
		{0x1000, 1, 0x88},
		{0x1001, 1, 0x77},
		{0x1000, 2, 0x7788},
		{0x1002, 2, 0x5566},
		{0x1000, 4, 0x55667788},
		{0x1004, 4, 0x11223344},
		{0x1000, 8, 0x1122334455667788},
	}
	for _, c := range cases {
		if got := m.Read(c.addr, c.size); got != c.want {
			t.Errorf("Read(%#x, %d) = %#x, want %#x", c.addr, c.size, got, c.want)
		}
	}
	m.Write(0x1002, 2, 0xaabb)
	if got := m.Read(0x1000, 8); got != 0x11223344aabb7788 {
		t.Errorf("merged read = %#x, want 0x11223344aabb7788", got)
	}
}

func TestMemoryCrossPageBytes(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3)
	payload := []byte{1, 2, 3, 4, 5, 6}
	m.WriteBytes(addr, payload)
	got := m.ReadBytes(addr, len(payload))
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], payload[i])
		}
	}
	if m.Footprint() != 2 {
		t.Errorf("footprint = %d, want 2 pages", m.Footprint())
	}
}

func TestMemoryAlignmentPanics(t *testing.T) {
	m := NewMemory()
	for _, c := range []struct {
		addr uint64
		size int
	}{{1, 2}, {2, 4}, {4, 8}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Read(%#x, %d) did not panic", c.addr, c.size)
				}
			}()
			m.Read(c.addr, c.size)
		}()
	}
}

func TestMemoryCloneIsDeep(t *testing.T) {
	m := NewMemory()
	m.Write(0x100, 8, 42)
	c := m.Clone()
	m.Write(0x100, 8, 43)
	if got := c.Read(0x100, 8); got != 42 {
		t.Errorf("clone observed mutation: %d", got)
	}
	if m.Equal(c) {
		t.Error("Equal reports true after divergence")
	}
}

func TestMemoryEqualTreatsAbsentAsZero(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	b.Write(0x5000, 8, 0) // allocates a page full of zeros
	if !a.Equal(b) {
		t.Errorf("zero page != absent page:\n%s", a.Diff(b))
	}
	b.Write(0x5000, 1, 7)
	if a.Equal(b) {
		t.Error("Equal missed a real difference")
	}
	if d := a.Diff(b); d == "" {
		t.Error("Diff returned empty for differing memories")
	}
}

func TestMemoryLoadProgram(t *testing.T) {
	p := asm.MustAssemble("t", `
        .data
v:      .quad 0xdeadbeef
        .text
main:   halt
`)
	m := NewMemory()
	m.LoadProgram(p)
	if got := m.Read(p.MustSymbol("v"), 8); got != 0xdeadbeef {
		t.Errorf("loaded data = %#x, want 0xdeadbeef", got)
	}
}

func TestMemoryReadWriteProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, sizeSel uint8, v uint64) bool {
		size := 1 << (sizeSel % 4)
		addr &^= uint64(size - 1) // align
		addr %= 1 << 40           // keep the page map small-ish
		m.Write(addr, size, v)
		want := v
		if size < 8 {
			want = v & (1<<(8*size) - 1)
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
