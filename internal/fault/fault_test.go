package fault

import (
	"math/rand"
	"strings"
	"testing"

	"loopfrog/internal/asm"
	"loopfrog/internal/cpu"
	"loopfrog/internal/workloads"
)

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		spec string
		bad  bool
	}{
		{spec: ""},
		{spec: "none"},
		{spec: "all"},
		{spec: "conflict"},
		{spec: "kill=0.001,overflow"},
		{spec: "all,kill=0.01"},
		{spec: "conflict-miss=1"},
		{spec: "bogus", bad: true},
		{spec: "kill=0", bad: true},
		{spec: "kill=1.5", bad: true},
		{spec: "kill=x", bad: true},
		{spec: "all=0.5", bad: true},
		{spec: ",", bad: true},
	} {
		p, err := Parse(tc.spec, 1)
		if tc.bad {
			if err == nil {
				t.Errorf("Parse(%q): want error, got %v", tc.spec, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
		}
		if (tc.spec == "" || tc.spec == "none") != (p == nil) {
			t.Errorf("Parse(%q): nil-plan mismatch (%v)", tc.spec, p)
		}
	}
	p := MustParse("all,kill=0.25", 7)
	for _, k := range SafeKinds() {
		if !p.Active(k) {
			t.Errorf("all: kind %s inactive", k)
		}
	}
	if p.Active(ConflictMiss) || p.Active(PanicKind) {
		t.Error("all must not enable conflict-miss or panic")
	}
	if p.prob[Kill] != 0.25 {
		t.Errorf("override after all: kill prob = %v, want 0.25", p.prob[Kill])
	}
}

// TestPlanImplementsInjector pins the structural contract with the cpu
// package: a *Plan must satisfy cpu.FaultInjector.
func TestPlanImplementsInjector(t *testing.T) {
	var _ cpu.FaultInjector = MustParse("all", 1)
}

// conflictLoop builds a hinted loop where every iteration read-modify-writes
// one shared cell: each speculative successor reads the cell before its
// parent's store performs, so real conflicts (and squash-restarts) occur
// every epoch. It is the workload for proving the checker's teeth.
func conflictLoop() *asm.Program {
	return asm.MustAssemble("conflictloop", `
        .data
cell:   .quad 0
        .text
main:   la   a0, cell
        li   t0, 0
        li   t1, 64
loop:   detach cont
        ld   t2, 0(a0)
        addi t2, t2, 1
        sd   t2, 0(a0)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        li   t2, 0
        halt
`)
}

// TestConflictLoopCleanBaseline confirms the teeth workload itself is
// contract-correct: with no injection the machine matches the reference.
func TestConflictLoopCleanBaseline(t *testing.T) {
	res, err := Differential(cpu.DefaultConfig(), conflictLoop(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("clean run failed: err=%v divergence=%s", res.RunErr, res.Divergence)
	}
}

// TestConflictFalseNegativeIsCaught proves the differential checker has
// teeth: suppressing real conflict squashes (a conflict false negative) must
// surface as a state divergence, never as a silent pass.
func TestConflictFalseNegativeIsCaught(t *testing.T) {
	plan := MustParse("conflict-miss", 1)
	res, err := Differential(cpu.DefaultConfig(), conflictLoop(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Count(ConflictMiss) == 0 {
		t.Fatal("no conflicts were suppressed: workload produced no real conflicts")
	}
	if res.RunErr != nil {
		t.Fatalf("run errored instead of diverging: %v", res.RunErr)
	}
	if res.Divergence == "" {
		t.Fatal("suppressed conflicts did not diverge: the differential checker has no teeth")
	}
	t.Logf("caught: %s (%d suppressions)", firstLine(res.Divergence), plan.Count(ConflictMiss))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestChaosMatrix is the seeded fault matrix: every safe kind (and their
// combination) across the chaos workload suite, multiple seeds. Every
// injected run must complete and match the sequential reference exactly.
func TestChaosMatrix(t *testing.T) {
	specs := []string{"conflict", "overflow", "kill", "poison", "mispredict", "all"}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	entries, err := RunMatrix(cpu.DefaultConfig(), workloads.ChaosSuite(), specs, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(specs) * len(seeds) * len(workloads.ChaosSuite()); len(entries) != want {
		t.Fatalf("matrix has %d cells, want %d", len(entries), want)
	}
	injected := uint64(0)
	for _, e := range entries {
		injected += e.Injected
		if !e.Ok() {
			t.Errorf("%s/%s/seed=%d: err=%q diverged=%v", e.Workload, e.Spec, e.Seed, e.Err, e.Diverged)
		}
	}
	if injected == 0 {
		t.Fatal("matrix injected no faults at all")
	}
}

// TestDeterminism: the same spec and seed must reproduce the identical run —
// same cycle count and same injection counters.
func TestDeterminism(t *testing.T) {
	prog := workloads.ByName(workloads.ChaosSuite(), "chaos-randloop").MustProgram()
	run := func() (int64, map[string]uint64) {
		plan := MustParse("all", 42)
		res, err := Differential(cpu.DefaultConfig(), prog, plan)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ok() {
			t.Fatalf("run failed: err=%v divergence=%s", res.RunErr, res.Divergence)
		}
		return res.Stats.Cycles, res.Injected
	}
	c1, i1 := run()
	c2, i2 := run()
	if c1 != c2 {
		t.Errorf("cycles differ: %d vs %d", c1, c2)
	}
	if len(i1) != len(i2) {
		t.Fatalf("injection counters differ: %v vs %v", i1, i2)
	}
	for k, v := range i1 {
		if i2[k] != v {
			t.Errorf("injection counter %s differs: %d vs %d", k, v, i2[k])
		}
	}
}

// TestPanicContainment: an injected panic must be recovered into RunErr, not
// propagate out of Differential.
func TestPanicContainment(t *testing.T) {
	prog := workloads.ChaosSuite()[0].MustProgram()
	plan := MustParse("panic=1", 1)
	res, err := Differential(cpu.DefaultConfig(), prog, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr == nil {
		t.Fatal("panic plan produced no run error")
	}
	if !strings.Contains(res.RunErr.Error(), "injected panic") {
		t.Errorf("unexpected run error: %v", res.RunErr)
	}
}

// FuzzChaosDifferential drives random safe fault plans against random
// contract-correct hinted loops: whatever the combination, the machine must
// recover to exact sequential semantics.
func FuzzChaosDifferential(f *testing.F) {
	f.Add(int64(1), int64(1), uint8(0x1f))
	f.Add(int64(7), int64(99), uint8(0x01))
	f.Add(int64(1234), int64(5), uint8(0x0a))
	f.Add(int64(31), int64(8), uint8(0x15))
	// Regression: conflict+poison once exposed the pack-verify repair-escape
	// hazard (a repaired IV had already been copied into a grandchild spawn).
	f.Add(int64(-298), int64(139), uint8('I'))
	f.Fuzz(func(t *testing.T, progSeed, planSeed int64, kindMask uint8) {
		var kinds []string
		for i, k := range SafeKinds() {
			if kindMask&(1<<i) != 0 {
				kinds = append(kinds, k.String())
			}
		}
		if len(kinds) == 0 {
			return
		}
		prog := workloads.RandomHintedLoop(rand.New(rand.NewSource(progSeed)))
		plan := MustParse(strings.Join(kinds, ","), planSeed)
		res, err := Differential(cpu.DefaultConfig(), prog, plan)
		if err != nil {
			t.Fatal(err)
		}
		if res.RunErr != nil {
			t.Fatalf("spec %q seed %d: run error: %v", plan.Spec(), planSeed, res.RunErr)
		}
		if res.Divergence != "" {
			t.Fatalf("spec %q seed %d: diverged from reference: %s", plan.Spec(), planSeed, res.Divergence)
		}
	})
}
