package fault

import (
	"fmt"
	"runtime/debug"

	"loopfrog/internal/asm"
	"loopfrog/internal/cpu"
	"loopfrog/internal/isa"
	"loopfrog/internal/ref"
	"loopfrog/internal/workloads"
)

// Result is the outcome of one injected differential run.
type Result struct {
	// Stats is the machine's statistics (partial if the run errored).
	Stats *cpu.Stats
	// Injected is the per-kind fault counters, keyed by spec name.
	Injected map[string]uint64
	// RunErr is the machine-run failure, if any: a watchdog ProgressError,
	// ErrCycleLimit, a MemFault, or a recovered panic.
	RunErr error
	// Divergence describes the first mismatch against the sequential
	// reference ("" when the final state matches exactly). Only meaningful
	// when RunErr is nil — an errored run has no final state to compare.
	Divergence string
}

// Ok reports whether the run completed and matched the reference.
func (r *Result) Ok() bool { return r.RunErr == nil && r.Divergence == "" }

// CheckOpts tune what Differential compares. Memory is always compared in
// full; the zero value also compares the full register file, which is valid
// only for programs that normalise dead temporaries before halting (the hint
// contract does not preserve body temporaries — see
// workloads.Benchmark.NormalisedRegs).
type CheckOpts struct {
	// Regs lists the live-out registers to compare; nil means all of them.
	Regs []isa.Reg
}

// ResultRegs is the CheckOpts register set for compiled kernels: the ABI
// result register only.
func ResultRegs() []isa.Reg { return []isa.Reg{isa.X(10)} }

// Differential runs prog on the machine with plan installed (nil plan = no
// injection) and compares the final architectural state — the full register
// file and all of memory — against the sequential reference interpreter.
// Panics out of the machine (including injected ones) are recovered into
// RunErr, so a chaos plan can never take the caller down. The error return is
// for harness problems (bad program); injected-run outcomes land in Result.
func Differential(cfg cpu.Config, prog *asm.Program, plan *Plan) (*Result, error) {
	return DifferentialOpts(cfg, prog, plan, CheckOpts{})
}

// Check compares a halted machine's architectural state against the
// sequential reference interpretation of prog, returning the first divergence
// ("" on an exact match). It is the post-run verification behind lfsim
// -check; Differential wraps it with machine construction and panic
// containment.
func Check(m *cpu.Machine, prog *asm.Program, opts CheckOpts) (string, error) {
	oracle, err := ref.Run(prog, ref.Options{})
	if err != nil {
		return "", fmt.Errorf("fault: reference run failed: %w", err)
	}
	return diffState(oracle, m, opts.Regs), nil
}

// DifferentialOpts is Differential with an explicit comparison scope.
func DifferentialOpts(cfg cpu.Config, prog *asm.Program, plan *Plan, opts CheckOpts) (*Result, error) {
	oracle, err := ref.Run(prog, ref.Options{})
	if err != nil {
		return nil, fmt.Errorf("fault: reference run failed: %w", err)
	}
	res := &Result{Injected: map[string]uint64{}}
	m, err := cpu.NewMachine(cfg, prog)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		m.SetFaultInjector(plan)
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				res.RunErr = fmt.Errorf("fault: machine panicked: %v\n%s", r, debug.Stack())
			}
		}()
		res.Stats, res.RunErr = m.Run()
	}()
	if plan != nil {
		res.Injected = plan.Counts()
	}
	if res.Stats == nil {
		res.Stats = m.Stats()
	}
	if res.RunErr != nil {
		return res, nil
	}
	res.Divergence = diffState(oracle, m, opts.Regs)
	return res, nil
}

// diffState returns a description of the first register mismatch, or the
// memory diff, between the oracle and the halted machine. regs limits the
// register comparison; nil compares the full file.
func diffState(oracle *ref.Result, m *cpu.Machine, regs []isa.Reg) string {
	got := m.FinalRegs()
	if regs == nil {
		regs = make([]isa.Reg, isa.NumRegs)
		for r := range regs {
			regs[r] = isa.Reg(r)
		}
	}
	for _, r := range regs {
		if got[r] != oracle.Regs[r] {
			return fmt.Sprintf("reg %s = %#x, want %#x", r, got[r], oracle.Regs[r])
		}
	}
	if diff := oracle.Mem.Diff(m.Memory()); diff != "" {
		return "memory differs:\n" + diff
	}
	return ""
}

// MatrixEntry is one cell of a chaos matrix run.
type MatrixEntry struct {
	Workload string
	Spec     string
	Seed     int64
	Cycles   int64
	Injected uint64
	// Err is the run failure ("" for none); Diverged marks a final state
	// that did not match the sequential reference.
	Err      string
	Diverged bool
}

// Ok reports whether the cell passed.
func (e *MatrixEntry) Ok() bool { return e.Err == "" && !e.Diverged }

// RunMatrix sweeps fault specs across workloads, one differential run per
// (workload, spec, seed) cell, and returns every cell — it never stops early,
// so a failing cell still yields a complete report. Rows appear in input
// order; each cell gets an independent plan derived from the cell seed.
func RunMatrix(cfg cpu.Config, benches []*workloads.Benchmark, specs []string, seeds []int64) ([]MatrixEntry, error) {
	var out []MatrixEntry
	for _, b := range benches {
		prog, err := b.Program()
		if err != nil {
			return out, err
		}
		for _, spec := range specs {
			for _, seed := range seeds {
				plan, err := Parse(spec, seed)
				if err != nil {
					return out, err
				}
				opts := CheckOpts{Regs: ResultRegs()}
				if b.NormalisedRegs {
					opts = CheckOpts{} // full register file
				}
				res, err := DifferentialOpts(cfg, prog, plan, opts)
				if err != nil {
					return out, err
				}
				e := MatrixEntry{
					Workload: b.Name,
					Spec:     spec,
					Seed:     seed,
					Diverged: res.Divergence != "",
				}
				if res.Stats != nil {
					e.Cycles = res.Stats.Cycles
				}
				for _, c := range res.Injected {
					e.Injected += c
				}
				if res.RunErr != nil {
					e.Err = res.RunErr.Error()
				}
				out = append(out, e)
			}
		}
	}
	return out, nil
}
