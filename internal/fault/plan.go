// Package fault implements deterministic speculation fault injection for the
// LoopFrog machine: a seeded Plan decides, reproducibly, when to force the
// model's recovery paths (conflict aborts, SSB-overflow squashes, threadlet
// kills, pack-prediction poisoning, branch-mispredict storms), and a
// differential checker proves that every injected run still matches the
// sequential reference interpreter exactly.
//
// The paper's safety argument (§3.1–§3.2) is that speculation is
// performance-only: no squash or abort may change architectural state. The
// plan turns that argument into an adversarial workout — and the one
// deliberately unsafe kind, a suppressed real conflict (ConflictMiss), is
// used to prove the checker itself has teeth: it must surface as a
// divergence, never as a silent pass.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the injectable fault kinds.
type Kind int

// Fault kinds. All but ConflictMiss are safe: the machine must recover to
// exact sequential semantics. ConflictMiss deliberately breaks the conflict
// detector (a false negative) and must be caught by the differential checker.
const (
	Conflict     Kind = iota // forced false-positive conflict abort
	ConflictMiss             // suppressed real conflict (false negative, unsafe)
	Overflow                 // forced SSB-overflow squash on a speculative drain
	Kill                     // recycle a random speculative threadlet
	Poison                   // corrupt a packed-spawn IV prediction (§4.3)
	Mispredict               // invert a predicted branch direction
	PanicKind                // deliberate panic, for crash-containment tests
	numKinds
)

// kindInfo maps kinds to their spec names and default per-consultation
// probabilities. Defaults are tuned so a default-window watchdog never trips
// on the chaos suite: faults arrive often enough to exercise every recovery
// path, rarely enough that the machine keeps making architectural progress.
var kindInfo = [numKinds]struct {
	name string
	def  float64
}{
	Conflict:     {"conflict", 0.02},
	ConflictMiss: {"conflict-miss", 1.0},
	Overflow:     {"overflow", 0.01},
	Kill:         {"kill", 0.0005},
	Poison:       {"poison", 0.25},
	Mispredict:   {"mispredict", 0.02},
	PanicKind:    {"panic", 0.00002},
}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindInfo[k].name
}

// SafeKinds returns the kinds the "all" spec expands to: every kind whose
// injection the machine must absorb without architectural effect. The unsafe
// ConflictMiss and the harness-only PanicKind are excluded.
func SafeKinds() []Kind {
	return []Kind{Conflict, Overflow, Kill, Poison, Mispredict}
}

// KindByName resolves a spec name.
func KindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if kindInfo[k].name == name {
			return k, true
		}
	}
	return 0, false
}

// Plan is a deterministic fault-injection plan: per-kind probabilities with
// per-kind seeded random streams, implementing cpu.FaultInjector
// structurally. A Plan is single-run state — its streams advance with the
// machine and are never rewound — and is not safe for concurrent use. Use
// Fresh to derive an identical unconsumed plan for a rerun.
type Plan struct {
	spec   string
	seed   int64
	prob   [numKinds]float64
	rng    [numKinds]*rand.Rand
	counts [numKinds]uint64
}

// Parse builds a plan from a fault spec. The grammar is
//
//	spec  := "" | "none" | entry ("," entry)*
//	entry := name [ "=" probability ]     probability in (0, 1]
//	name  := "all" | "conflict" | "conflict-miss" | "overflow" | "kill"
//	       | "poison" | "mispredict" | "panic"
//
// "all" enables every safe kind at its default probability; explicit entries
// may then override individual kinds ("all,kill=0.01"). An empty or "none"
// spec returns a nil plan — no injection, and cpu.Machine pays nothing.
func Parse(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	p := &Plan{spec: spec, seed: seed}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("fault: empty entry in spec %q", spec)
		}
		name, probStr, hasProb := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if name == "all" {
			if hasProb {
				return nil, fmt.Errorf("fault: %q takes no probability (override kinds individually)", entry)
			}
			for _, k := range SafeKinds() {
				p.prob[k] = kindInfo[k].def
			}
			continue
		}
		k, ok := KindByName(name)
		if !ok {
			return nil, fmt.Errorf("fault: unknown kind %q (want %s)", name, strings.Join(KindNames(), ", "))
		}
		prob := kindInfo[k].def
		if hasProb {
			v, err := strconv.ParseFloat(strings.TrimSpace(probStr), 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad probability in %q: %v", entry, err)
			}
			if v <= 0 || v > 1 {
				return nil, fmt.Errorf("fault: probability in %q outside (0,1]", entry)
			}
			prob = v
		}
		p.prob[k] = prob
	}
	for k := Kind(0); k < numKinds; k++ {
		if p.prob[k] > 0 {
			p.rng[k] = rand.New(rand.NewSource(mixSeed(seed, k)))
		}
	}
	return p, nil
}

// MustParse is Parse that panics on error, for tests.
func MustParse(spec string, seed int64) *Plan {
	p, err := Parse(spec, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// KindNames lists every kind's spec name plus "all".
func KindNames() []string {
	names := make([]string, 0, numKinds+1)
	names = append(names, "all")
	for k := Kind(0); k < numKinds; k++ {
		names = append(names, kindInfo[k].name)
	}
	return names
}

// StreamSeed derives an independent stream seed from a base seed and a lane
// index, using the same splitmix64 mixing as the plan's per-kind streams.
// Other chaos layers (the fabric's worker kill/partition/delay injection)
// reuse it so every injected subsystem draws from provably independent
// deterministic streams of one base seed.
func StreamSeed(seed int64, lane int) int64 {
	return mixSeed(seed, Kind(lane))
}

// mixSeed derives independent per-kind stream seeds (splitmix64 finalizer).
func mixSeed(seed int64, k Kind) int64 {
	z := uint64(seed) + (uint64(k)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Spec returns the spec string the plan was parsed from.
func (p *Plan) Spec() string { return p.spec }

// Seed returns the plan's base seed.
func (p *Plan) Seed() int64 { return p.seed }

// Fresh returns an identical plan with unconsumed random streams, for
// deterministic reruns (a plan's streams advance during a run).
func (p *Plan) Fresh() *Plan { return MustParse(p.spec, p.seed) }

// Active reports whether a kind can fire under this plan.
func (p *Plan) Active(k Kind) bool { return p != nil && p.prob[k] > 0 }

// Count returns how many times kind k has fired so far.
func (p *Plan) Count(k Kind) uint64 { return p.counts[k] }

// Total returns the total number of injected faults so far.
func (p *Plan) Total() uint64 {
	var t uint64
	for _, c := range p.counts {
		t += c
	}
	return t
}

// Counts returns the per-kind injection counters, keyed by spec name, for
// kinds that fired at least once.
func (p *Plan) Counts() map[string]uint64 {
	out := make(map[string]uint64)
	for k := Kind(0); k < numKinds; k++ {
		if p.counts[k] > 0 {
			out[kindInfo[k].name] = p.counts[k]
		}
	}
	return out
}

// String summarises the plan and its injection counters.
func (p *Plan) String() string {
	if p == nil {
		return "fault: none"
	}
	var parts []string
	for name, c := range p.Counts() {
		parts = append(parts, fmt.Sprintf("%s:%d", name, c))
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return fmt.Sprintf("fault[%s seed=%d]: none fired", p.spec, p.seed)
	}
	return fmt.Sprintf("fault[%s seed=%d]: %s", p.spec, p.seed, strings.Join(parts, " "))
}

// roll draws one decision for kind k, counting fires.
func (p *Plan) roll(k Kind) bool {
	if p.prob[k] <= 0 {
		return false
	}
	if p.prob[k] < 1 && p.rng[k].Float64() >= p.prob[k] {
		return false
	}
	p.counts[k]++
	return true
}

// The methods below implement cpu.FaultInjector. The interface is satisfied
// structurally — cpu declares it over primitive types precisely so injector
// implementations need no dependency on the machine's internals.

// ForceConflict reports whether to abort a clean store as a conflict.
func (p *Plan) ForceConflict(now int64) bool { return p.roll(Conflict) }

// SuppressConflict reports whether to drop a real conflict squash.
func (p *Plan) SuppressConflict(now int64) bool { return p.roll(ConflictMiss) }

// ForceOverflow reports whether to squash a speculative drain as an overflow.
func (p *Plan) ForceOverflow(now int64) bool { return p.roll(Overflow) }

// KillThreadlet picks a speculative threadlet (index among nspec, 0 = oldest
// successor) to recycle, or ok=false.
func (p *Plan) KillThreadlet(now int64, nspec int) (int, bool) {
	if !p.roll(Kill) {
		return 0, false
	}
	return p.rng[Kill].Intn(nspec), true
}

// PoisonPack perturbs a packed-spawn IV prediction. The perturbation is a
// small signed delta (occasionally huge), exercising both the silent-repair
// and squash arms of the §4.3 verification — and, via wild addresses, the
// deferred speculative memory-fault path.
func (p *Plan) PoisonPack(now int64, reg int, val uint64) (uint64, bool) {
	if !p.roll(Poison) {
		return val, false
	}
	r := p.rng[Poison]
	switch r.Intn(4) {
	case 0:
		return val + uint64(1+r.Intn(64)), true
	case 1:
		return val - uint64(1+r.Intn(64)), true
	case 2:
		return val ^ (1 << uint(r.Intn(16))), true
	default:
		return r.Uint64(), true
	}
}

// FlipBranch reports whether to invert a predicted branch direction.
func (p *Plan) FlipBranch(now int64, pc int) bool { return p.roll(Mispredict) }

// Panic reports whether to panic the machine deliberately.
func (p *Plan) Panic(now int64) bool { return p.roll(PanicKind) }
