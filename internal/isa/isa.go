// Package isa defines LFISA, the small 64-bit RISC instruction set used by
// the LoopFrog simulator, including the three LoopFrog hint instructions
// (DETACH, REATTACH, SYNC) described in §3.1 of the paper.
//
// LFISA is deliberately simple: 32 integer and 32 floating-point registers,
// register-register arithmetic, immediate forms, byte- to double-word loads
// and stores, conditional branches, and direct/indirect jumps. Code and data
// live in separate address spaces: the program counter indexes the
// instruction slice, while data memory is a byte-addressed 64-bit space.
// For instruction-cache modelling a code address maps to byte address PC*4.
//
// The hint instructions carry the continuation block's address, which doubles
// as the unique region ID for the annotated loop (§3.1). Treating all three
// hints as NOPs recovers the exact sequential semantics of the program.
package isa

import "fmt"

// Reg identifies a register. Values 0-31 are the integer registers x0-x31
// (x0 is hardwired to zero); values 32-63 are the floating-point registers
// f0-f31. The zero value is therefore the always-zero register.
type Reg uint8

// Register space layout.
const (
	// X0 is the hardwired-zero integer register.
	X0 Reg = 0
	// FPBase is the register index of f0.
	FPBase Reg = 32
	// NumRegs is the total architectural register count (int + fp).
	NumRegs = 64
)

// X returns the integer register xn.
func X(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: integer register index %d out of range", n))
	}
	return Reg(n)
}

// F returns the floating-point register fn.
func F(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: fp register index %d out of range", n))
	}
	return FPBase + Reg(n)
}

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= FPBase }

// String returns the assembly name of the register (x0-x31, f0-f31).
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", r-FPBase)
	}
	return fmt.Sprintf("x%d", r)
}

// Opcode enumerates every LFISA operation.
type Opcode uint8

// Instruction opcodes.
const (
	NOP Opcode = iota
	HALT

	// Integer register-register ALU.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	MUL
	DIV
	REM

	// Integer register-immediate ALU.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	LI // rd <- imm (64-bit immediate; also produced by the `la` pseudo-op)

	// Floating point (IEEE 754 binary64).
	FADD
	FSUB
	FMUL
	FDIV
	FSQRT
	FMIN
	FMAX
	FABS
	FNEG
	FCVTIF // rd(f) <- float64(int64(rs1))
	FCVTFI // rd(x) <- int64(float64(rs1)), truncating
	FMOV   // rd(f) <- rs1(f)
	FEQ    // rd(x) <- rs1(f) == rs2(f)
	FLT    // rd(x) <- rs1(f) <  rs2(f)
	FLE    // rd(x) <- rs1(f) <= rs2(f)

	// Loads: rd <- mem[rs1+imm].
	LB
	LBU
	LH
	LHU
	LW
	LWU
	LD
	FLD

	// Stores: mem[rs1+imm] <- rs2.
	SB
	SH
	SW
	SD
	FSD

	// Control flow. Branch/jump targets are instruction indices in Imm.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JAL  // rd <- pc+1; pc <- imm
	JALR // rd <- pc+1; pc <- rs1+imm

	// LoopFrog hints (§3.1). Imm holds the continuation address, which is
	// also the region ID. All three are architectural NOPs.
	DETACH
	REATTACH
	SYNC

	numOpcodes
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

// Class groups opcodes by the pipeline resources they use (Table 1 FU pools).
type Class uint8

// Functional-unit classes.
const (
	ClassNop    Class = iota // consumes no FU (NOP, HALT, hints)
	ClassIntALU              // simple integer ops
	ClassMulDiv              // integer multiply/divide pipes
	ClassFP                  // FP add/mul/convert pipes
	ClassFPDiv               // FP divide/sqrt pipes
	ClassLoad                // load pipes
	ClassStore               // store pipes
	ClassBranch              // branch/jump resolution pipes
	NumClasses
)

// String returns a short name for the class.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntALU:
		return "alu"
	case ClassMulDiv:
		return "muldiv"
	case ClassFP:
		return "fp"
	case ClassFPDiv:
		return "fpdiv"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	}
	return "unknown"
}

// Inst is a decoded LFISA instruction. Unused fields are zero.
type Inst struct {
	Op  Opcode
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	// Imm holds the immediate operand: ALU immediates, load/store offsets,
	// branch/jump target instruction indices, or the hint region ID.
	Imm int64
}

// Meta describes static properties of an opcode.
type Meta struct {
	Name    string
	Class   Class
	Latency int  // execution latency in cycles once issued
	HasRd   bool // writes Rd
	HasRs1  bool // reads Rs1
	HasRs2  bool // reads Rs2
	IsLoad  bool
	IsStore bool
	// MemBytes is the access size for loads/stores, 0 otherwise.
	MemBytes int
	// Unsigned marks zero-extending loads and unsigned compares.
	Unsigned bool
	IsBranch bool // conditional branch
	IsJump   bool // unconditional control transfer (JAL/JALR)
	IsHint   bool // LoopFrog hint
}

var metaTable = [NumOpcodes]Meta{
	NOP:  {Name: "nop", Class: ClassNop},
	HALT: {Name: "halt", Class: ClassNop},

	ADD:  {Name: "add", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true, HasRs2: true},
	SUB:  {Name: "sub", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true, HasRs2: true},
	AND:  {Name: "and", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true, HasRs2: true},
	OR:   {Name: "or", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true, HasRs2: true},
	XOR:  {Name: "xor", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true, HasRs2: true},
	SLL:  {Name: "sll", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true, HasRs2: true},
	SRL:  {Name: "srl", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true, HasRs2: true},
	SRA:  {Name: "sra", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true, HasRs2: true},
	SLT:  {Name: "slt", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true, HasRs2: true},
	SLTU: {Name: "sltu", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true, HasRs2: true, Unsigned: true},
	MUL:  {Name: "mul", Class: ClassMulDiv, Latency: 3, HasRd: true, HasRs1: true, HasRs2: true},
	DIV:  {Name: "div", Class: ClassMulDiv, Latency: 12, HasRd: true, HasRs1: true, HasRs2: true},
	REM:  {Name: "rem", Class: ClassMulDiv, Latency: 12, HasRd: true, HasRs1: true, HasRs2: true},

	ADDI: {Name: "addi", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true},
	ANDI: {Name: "andi", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true},
	ORI:  {Name: "ori", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true},
	XORI: {Name: "xori", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true},
	SLLI: {Name: "slli", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true},
	SRLI: {Name: "srli", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true},
	SRAI: {Name: "srai", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true},
	SLTI: {Name: "slti", Class: ClassIntALU, Latency: 1, HasRd: true, HasRs1: true},
	LI:   {Name: "li", Class: ClassIntALU, Latency: 1, HasRd: true},

	FADD:   {Name: "fadd", Class: ClassFP, Latency: 3, HasRd: true, HasRs1: true, HasRs2: true},
	FSUB:   {Name: "fsub", Class: ClassFP, Latency: 3, HasRd: true, HasRs1: true, HasRs2: true},
	FMUL:   {Name: "fmul", Class: ClassFP, Latency: 4, HasRd: true, HasRs1: true, HasRs2: true},
	FDIV:   {Name: "fdiv", Class: ClassFPDiv, Latency: 12, HasRd: true, HasRs1: true, HasRs2: true},
	FSQRT:  {Name: "fsqrt", Class: ClassFPDiv, Latency: 16, HasRd: true, HasRs1: true},
	FMIN:   {Name: "fmin", Class: ClassFP, Latency: 2, HasRd: true, HasRs1: true, HasRs2: true},
	FMAX:   {Name: "fmax", Class: ClassFP, Latency: 2, HasRd: true, HasRs1: true, HasRs2: true},
	FABS:   {Name: "fabs", Class: ClassFP, Latency: 1, HasRd: true, HasRs1: true},
	FNEG:   {Name: "fneg", Class: ClassFP, Latency: 1, HasRd: true, HasRs1: true},
	FCVTIF: {Name: "fcvtif", Class: ClassFP, Latency: 3, HasRd: true, HasRs1: true},
	FCVTFI: {Name: "fcvtfi", Class: ClassFP, Latency: 3, HasRd: true, HasRs1: true},
	FMOV:   {Name: "fmov", Class: ClassFP, Latency: 1, HasRd: true, HasRs1: true},
	FEQ:    {Name: "feq", Class: ClassFP, Latency: 2, HasRd: true, HasRs1: true, HasRs2: true},
	FLT:    {Name: "flt", Class: ClassFP, Latency: 2, HasRd: true, HasRs1: true, HasRs2: true},
	FLE:    {Name: "fle", Class: ClassFP, Latency: 2, HasRd: true, HasRs1: true, HasRs2: true},

	LB:  {Name: "lb", Class: ClassLoad, Latency: 2, HasRd: true, HasRs1: true, IsLoad: true, MemBytes: 1},
	LBU: {Name: "lbu", Class: ClassLoad, Latency: 2, HasRd: true, HasRs1: true, IsLoad: true, MemBytes: 1, Unsigned: true},
	LH:  {Name: "lh", Class: ClassLoad, Latency: 2, HasRd: true, HasRs1: true, IsLoad: true, MemBytes: 2},
	LHU: {Name: "lhu", Class: ClassLoad, Latency: 2, HasRd: true, HasRs1: true, IsLoad: true, MemBytes: 2, Unsigned: true},
	LW:  {Name: "lw", Class: ClassLoad, Latency: 2, HasRd: true, HasRs1: true, IsLoad: true, MemBytes: 4},
	LWU: {Name: "lwu", Class: ClassLoad, Latency: 2, HasRd: true, HasRs1: true, IsLoad: true, MemBytes: 4, Unsigned: true},
	LD:  {Name: "ld", Class: ClassLoad, Latency: 2, HasRd: true, HasRs1: true, IsLoad: true, MemBytes: 8},
	FLD: {Name: "fld", Class: ClassLoad, Latency: 2, HasRd: true, HasRs1: true, IsLoad: true, MemBytes: 8},

	SB:  {Name: "sb", Class: ClassStore, Latency: 1, HasRs1: true, HasRs2: true, IsStore: true, MemBytes: 1},
	SH:  {Name: "sh", Class: ClassStore, Latency: 1, HasRs1: true, HasRs2: true, IsStore: true, MemBytes: 2},
	SW:  {Name: "sw", Class: ClassStore, Latency: 1, HasRs1: true, HasRs2: true, IsStore: true, MemBytes: 4},
	SD:  {Name: "sd", Class: ClassStore, Latency: 1, HasRs1: true, HasRs2: true, IsStore: true, MemBytes: 8},
	FSD: {Name: "fsd", Class: ClassStore, Latency: 1, HasRs1: true, HasRs2: true, IsStore: true, MemBytes: 8},

	BEQ:  {Name: "beq", Class: ClassBranch, Latency: 1, HasRs1: true, HasRs2: true, IsBranch: true},
	BNE:  {Name: "bne", Class: ClassBranch, Latency: 1, HasRs1: true, HasRs2: true, IsBranch: true},
	BLT:  {Name: "blt", Class: ClassBranch, Latency: 1, HasRs1: true, HasRs2: true, IsBranch: true},
	BGE:  {Name: "bge", Class: ClassBranch, Latency: 1, HasRs1: true, HasRs2: true, IsBranch: true},
	BLTU: {Name: "bltu", Class: ClassBranch, Latency: 1, HasRs1: true, HasRs2: true, IsBranch: true, Unsigned: true},
	BGEU: {Name: "bgeu", Class: ClassBranch, Latency: 1, HasRs1: true, HasRs2: true, IsBranch: true, Unsigned: true},
	JAL:  {Name: "jal", Class: ClassBranch, Latency: 1, HasRd: true, IsJump: true},
	JALR: {Name: "jalr", Class: ClassBranch, Latency: 1, HasRd: true, HasRs1: true, IsJump: true},

	DETACH:   {Name: "detach", Class: ClassNop, IsHint: true},
	REATTACH: {Name: "reattach", Class: ClassNop, IsHint: true},
	SYNC:     {Name: "sync", Class: ClassNop, IsHint: true},
}

// OpMeta returns the static metadata for op.
func OpMeta(op Opcode) Meta {
	if int(op) >= NumOpcodes {
		return Meta{Name: "invalid"}
	}
	return metaTable[op]
}

var invalidMeta = Meta{Name: "invalid"}

// MetaOf returns a pointer to the static metadata for op. The table is
// immutable; callers must treat the result as read-only. Pipeline models keep
// the pointer per dynamic instruction instead of copying the Meta value.
func MetaOf(op Opcode) *Meta {
	if int(op) >= NumOpcodes {
		return &invalidMeta
	}
	return &metaTable[op]
}

// String returns the mnemonic of the opcode.
func (op Opcode) String() string { return OpMeta(op).Name }

// IsControlFlow reports whether the instruction can redirect the PC.
func (i Inst) IsControlFlow() bool {
	m := OpMeta(i.Op)
	return m.IsBranch || m.IsJump
}

// String disassembles the instruction.
func (i Inst) String() string {
	m := OpMeta(i.Op)
	switch {
	case i.Op == NOP || i.Op == HALT:
		return m.Name
	case m.IsHint:
		return fmt.Sprintf("%s %d", m.Name, i.Imm)
	case i.Op == LI:
		return fmt.Sprintf("%s %s, %d", m.Name, i.Rd, i.Imm)
	case m.IsLoad:
		return fmt.Sprintf("%s %s, %d(%s)", m.Name, i.Rd, i.Imm, i.Rs1)
	case m.IsStore:
		return fmt.Sprintf("%s %s, %d(%s)", m.Name, i.Rs2, i.Imm, i.Rs1)
	case m.IsBranch:
		return fmt.Sprintf("%s %s, %s, %d", m.Name, i.Rs1, i.Rs2, i.Imm)
	case i.Op == JAL:
		return fmt.Sprintf("%s %s, %d", m.Name, i.Rd, i.Imm)
	case i.Op == JALR:
		return fmt.Sprintf("%s %s, %s, %d", m.Name, i.Rd, i.Rs1, i.Imm)
	case m.HasRs2:
		return fmt.Sprintf("%s %s, %s, %s", m.Name, i.Rd, i.Rs1, i.Rs2)
	case m.HasRs1 && m.HasRd:
		if m.Class == ClassIntALU {
			return fmt.Sprintf("%s %s, %s, %d", m.Name, i.Rd, i.Rs1, i.Imm)
		}
		return fmt.Sprintf("%s %s, %s", m.Name, i.Rd, i.Rs1)
	default:
		return m.Name
	}
}
