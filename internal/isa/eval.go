package isa

import "math"

// EvalALU computes the result of a non-memory, non-control instruction given
// its source operand values. Integer registers hold two's-complement values
// in uint64; floating-point registers hold IEEE 754 binary64 bit patterns.
// The same evaluation is used by the reference interpreter and by the
// out-of-order core's dataflow execution, so the two can never diverge on
// arithmetic.
func EvalALU(i Inst, s1, s2 uint64) uint64 {
	switch i.Op {
	case ADD:
		return s1 + s2
	case SUB:
		return s1 - s2
	case AND:
		return s1 & s2
	case OR:
		return s1 | s2
	case XOR:
		return s1 ^ s2
	case SLL:
		return s1 << (s2 & 63)
	case SRL:
		return s1 >> (s2 & 63)
	case SRA:
		return uint64(int64(s1) >> (s2 & 63))
	case SLT:
		if int64(s1) < int64(s2) {
			return 1
		}
		return 0
	case SLTU:
		if s1 < s2 {
			return 1
		}
		return 0
	case MUL:
		return s1 * s2
	case DIV:
		if s2 == 0 {
			return ^uint64(0) // divide-by-zero yields all ones, like RISC-V
		}
		if int64(s1) == math.MinInt64 && int64(s2) == -1 {
			return s1 // overflow yields the dividend, like RISC-V
		}
		return uint64(int64(s1) / int64(s2))
	case REM:
		if s2 == 0 {
			return s1
		}
		if int64(s1) == math.MinInt64 && int64(s2) == -1 {
			return 0
		}
		return uint64(int64(s1) % int64(s2))

	case ADDI:
		return s1 + uint64(i.Imm)
	case ANDI:
		return s1 & uint64(i.Imm)
	case ORI:
		return s1 | uint64(i.Imm)
	case XORI:
		return s1 ^ uint64(i.Imm)
	case SLLI:
		return s1 << (uint64(i.Imm) & 63)
	case SRLI:
		return s1 >> (uint64(i.Imm) & 63)
	case SRAI:
		return uint64(int64(s1) >> (uint64(i.Imm) & 63))
	case SLTI:
		if int64(s1) < i.Imm {
			return 1
		}
		return 0
	case LI:
		return uint64(i.Imm)

	case FADD:
		return f2b(b2f(s1) + b2f(s2))
	case FSUB:
		return f2b(b2f(s1) - b2f(s2))
	case FMUL:
		return f2b(b2f(s1) * b2f(s2))
	case FDIV:
		return f2b(b2f(s1) / b2f(s2))
	case FSQRT:
		return f2b(math.Sqrt(b2f(s1)))
	case FMIN:
		return f2b(math.Min(b2f(s1), b2f(s2)))
	case FMAX:
		return f2b(math.Max(b2f(s1), b2f(s2)))
	case FABS:
		return f2b(math.Abs(b2f(s1)))
	case FNEG:
		return f2b(-b2f(s1))
	case FCVTIF:
		return f2b(float64(int64(s1)))
	case FCVTFI:
		f := b2f(s1)
		if math.IsNaN(f) {
			return 0
		}
		return uint64(int64(f))
	case FMOV:
		return s1
	case FEQ:
		if b2f(s1) == b2f(s2) {
			return 1
		}
		return 0
	case FLT:
		if b2f(s1) < b2f(s2) {
			return 1
		}
		return 0
	case FLE:
		if b2f(s1) <= b2f(s2) {
			return 1
		}
		return 0
	}
	return 0
}

// BranchTaken reports whether a conditional branch with source values s1, s2
// is taken.
func BranchTaken(op Opcode, s1, s2 uint64) bool {
	switch op {
	case BEQ:
		return s1 == s2
	case BNE:
		return s1 != s2
	case BLT:
		return int64(s1) < int64(s2)
	case BGE:
		return int64(s1) >= int64(s2)
	case BLTU:
		return s1 < s2
	case BGEU:
		return s1 >= s2
	}
	return false
}

// ExtendLoad sign- or zero-extends a raw little-endian load result of the
// given size for opcode op.
func ExtendLoad(op Opcode, raw uint64) uint64 {
	m := OpMeta(op)
	switch m.MemBytes {
	case 1:
		if m.Unsigned {
			return raw & 0xff
		}
		return uint64(int64(int8(raw)))
	case 2:
		if m.Unsigned {
			return raw & 0xffff
		}
		return uint64(int64(int16(raw)))
	case 4:
		if m.Unsigned {
			return raw & 0xffffffff
		}
		return uint64(int64(int32(raw)))
	default:
		return raw
	}
}

func b2f(b uint64) float64 { return math.Float64frombits(b) }
func f2b(f float64) uint64 { return math.Float64bits(f) }
