package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// InstBytes is the size of one encoded instruction. LFISA uses a fixed
// 12-byte encoding (opcode, three register specifiers, 64-bit immediate);
// timing models nevertheless treat instructions as 4 bytes for I-cache
// purposes, matching a conventional RISC front end.
const InstBytes = 12

// ErrBadEncoding is returned by Decode for malformed instruction words.
var ErrBadEncoding = errors.New("isa: bad instruction encoding")

// Encode packs the instruction into buf, which must be at least InstBytes
// long, and returns the number of bytes written.
func Encode(i Inst, buf []byte) (int, error) {
	if len(buf) < InstBytes {
		return 0, fmt.Errorf("isa: encode buffer too small: %d < %d", len(buf), InstBytes)
	}
	if int(i.Op) >= NumOpcodes {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", i.Op)
	}
	buf[0] = byte(i.Op)
	buf[1] = byte(i.Rd)
	buf[2] = byte(i.Rs1)
	buf[3] = byte(i.Rs2)
	binary.LittleEndian.PutUint64(buf[4:], uint64(i.Imm))
	return InstBytes, nil
}

// Decode unpacks one instruction from buf.
func Decode(buf []byte) (Inst, error) {
	if len(buf) < InstBytes {
		return Inst{}, ErrBadEncoding
	}
	op := Opcode(buf[0])
	if int(op) >= NumOpcodes {
		return Inst{}, fmt.Errorf("%w: opcode %d", ErrBadEncoding, buf[0])
	}
	if buf[1] >= NumRegs || buf[2] >= NumRegs || buf[3] >= NumRegs {
		return Inst{}, fmt.Errorf("%w: register specifier out of range", ErrBadEncoding)
	}
	return Inst{
		Op:  op,
		Rd:  Reg(buf[1]),
		Rs1: Reg(buf[2]),
		Rs2: Reg(buf[3]),
		Imm: int64(binary.LittleEndian.Uint64(buf[4:])),
	}, nil
}

// EncodeProgram serialises a sequence of instructions.
func EncodeProgram(insts []Inst) ([]byte, error) {
	out := make([]byte, 0, len(insts)*InstBytes)
	var tmp [InstBytes]byte
	for idx, i := range insts {
		if _, err := Encode(i, tmp[:]); err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", idx, err)
		}
		out = append(out, tmp[:]...)
	}
	return out, nil
}

// DecodeProgram deserialises a sequence of instructions.
func DecodeProgram(data []byte) ([]Inst, error) {
	if len(data)%InstBytes != 0 {
		return nil, fmt.Errorf("%w: length %d not a multiple of %d", ErrBadEncoding, len(data), InstBytes)
	}
	insts := make([]Inst, 0, len(data)/InstBytes)
	for off := 0; off < len(data); off += InstBytes {
		inst, err := Decode(data[off:])
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", off/InstBytes, err)
		}
		insts = append(insts, inst)
	}
	return insts, nil
}
