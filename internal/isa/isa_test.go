package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func negu(x int64) uint64 { return uint64(-x) }

var minInt32 = int64(math.MinInt32)

func TestRegNaming(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
		isFP bool
	}{
		{X(0), "x0", false},
		{X(31), "x31", false},
		{F(0), "f0", true},
		{F(31), "f31", true},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
		if got := c.r.IsFP(); got != c.isFP {
			t.Errorf("Reg(%d).IsFP() = %v, want %v", c.r, got, c.isFP)
		}
	}
}

func TestRegConstructorsPanicOutOfRange(t *testing.T) {
	for _, f := range []func(){func() { X(32) }, func() { X(-1) }, func() { F(32) }, func() { F(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register index")
				}
			}()
			f()
		}()
	}
}

func TestOpMetaCoversAllOpcodes(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		m := OpMeta(op)
		if m.Name == "" {
			t.Errorf("opcode %d has no metadata", op)
		}
		if m.IsLoad && m.MemBytes == 0 {
			t.Errorf("%s: load with MemBytes == 0", m.Name)
		}
		if m.IsStore && m.MemBytes == 0 {
			t.Errorf("%s: store with MemBytes == 0", m.Name)
		}
		if m.IsLoad && m.Class != ClassLoad {
			t.Errorf("%s: load not in load class", m.Name)
		}
		if m.IsStore && m.Class != ClassStore {
			t.Errorf("%s: store not in store class", m.Name)
		}
		if m.IsHint && m.Class != ClassNop {
			t.Errorf("%s: hint must consume no FU", m.Name)
		}
		if m.Class != ClassNop && !m.IsStore && !m.IsBranch && m.Latency < 1 {
			t.Errorf("%s: executable op with latency %d", m.Name, m.Latency)
		}
	}
}

func TestOpMetaInvalid(t *testing.T) {
	if got := OpMeta(Opcode(255)).Name; got != "invalid" {
		t.Errorf("OpMeta(255).Name = %q, want invalid", got)
	}
}

func TestEvalALUIntegerOps(t *testing.T) {
	cases := []struct {
		name   string
		i      Inst
		s1, s2 uint64
		want   uint64
	}{
		{"add", Inst{Op: ADD}, 3, 4, 7},
		{"add-wrap", Inst{Op: ADD}, math.MaxUint64, 1, 0},
		{"sub", Inst{Op: SUB}, 3, 4, ^uint64(0)},
		{"and", Inst{Op: AND}, 0b1100, 0b1010, 0b1000},
		{"or", Inst{Op: OR}, 0b1100, 0b1010, 0b1110},
		{"xor", Inst{Op: XOR}, 0b1100, 0b1010, 0b0110},
		{"sll", Inst{Op: SLL}, 1, 63, 1 << 63},
		{"sll-mask", Inst{Op: SLL}, 1, 64, 1}, // shift amount masked to 6 bits
		{"srl", Inst{Op: SRL}, 1 << 63, 63, 1},
		{"sra-neg", Inst{Op: SRA}, negu(8), 2, negu(2)},
		{"slt-true", Inst{Op: SLT}, negu(1), 0, 1},
		{"slt-false", Inst{Op: SLT}, 0, negu(1), 0},
		{"sltu-true", Inst{Op: SLTU}, 0, negu(1), 1},
		{"mul", Inst{Op: MUL}, 7, 6, 42},
		{"div", Inst{Op: DIV}, negu(42), 6, negu(7)},
		{"div0", Inst{Op: DIV}, 42, 0, ^uint64(0)},
		{"div-ovf", Inst{Op: DIV}, (uint64(1) << 63), negu(1), (uint64(1) << 63)},
		{"rem", Inst{Op: REM}, 43, 6, 1},
		{"rem0", Inst{Op: REM}, 43, 0, 43},
		{"rem-ovf", Inst{Op: REM}, (uint64(1) << 63), negu(1), 0},
		{"addi", Inst{Op: ADDI, Imm: -1}, 5, 0, 4},
		{"andi", Inst{Op: ANDI, Imm: 0xf0}, 0xff, 0, 0xf0},
		{"ori", Inst{Op: ORI, Imm: 0x0f}, 0xf0, 0, 0xff},
		{"xori", Inst{Op: XORI, Imm: -1}, 0, 0, ^uint64(0)},
		{"slli", Inst{Op: SLLI, Imm: 4}, 1, 0, 16},
		{"srli", Inst{Op: SRLI, Imm: 4}, 16, 0, 1},
		{"srai", Inst{Op: SRAI, Imm: 1}, negu(4), 0, negu(2)},
		{"slti", Inst{Op: SLTI, Imm: 10}, 9, 0, 1},
		{"li", Inst{Op: LI, Imm: -123}, 99, 99, negu(123)},
	}
	for _, c := range cases {
		if got := EvalALU(c.i, c.s1, c.s2); got != c.want {
			t.Errorf("%s: EvalALU = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestEvalALUFloatOps(t *testing.T) {
	f := math.Float64bits
	cases := []struct {
		name   string
		i      Inst
		s1, s2 uint64
		want   uint64
	}{
		{"fadd", Inst{Op: FADD}, f(1.5), f(2.25), f(3.75)},
		{"fsub", Inst{Op: FSUB}, f(1.5), f(2.25), f(-0.75)},
		{"fmul", Inst{Op: FMUL}, f(1.5), f(2.0), f(3.0)},
		{"fdiv", Inst{Op: FDIV}, f(3.0), f(2.0), f(1.5)},
		{"fsqrt", Inst{Op: FSQRT}, f(9.0), 0, f(3.0)},
		{"fmin", Inst{Op: FMIN}, f(2.0), f(-3.0), f(-3.0)},
		{"fmax", Inst{Op: FMAX}, f(2.0), f(-3.0), f(2.0)},
		{"fabs", Inst{Op: FABS}, f(-2.5), 0, f(2.5)},
		{"fneg", Inst{Op: FNEG}, f(2.5), 0, f(-2.5)},
		{"fcvtif", Inst{Op: FCVTIF}, negu(7), 0, f(-7.0)},
		{"fcvtfi", Inst{Op: FCVTFI}, f(-7.9), 0, negu(7)},
		{"fcvtfi-nan", Inst{Op: FCVTFI}, f(math.NaN()), 0, 0},
		{"fmov", Inst{Op: FMOV}, f(1.25), 0, f(1.25)},
		{"feq-true", Inst{Op: FEQ}, f(1.0), f(1.0), 1},
		{"feq-false", Inst{Op: FEQ}, f(1.0), f(2.0), 0},
		{"flt", Inst{Op: FLT}, f(1.0), f(2.0), 1},
		{"fle", Inst{Op: FLE}, f(2.0), f(2.0), 1},
	}
	for _, c := range cases {
		if got := EvalALU(c.i, c.s1, c.s2); got != c.want {
			t.Errorf("%s: EvalALU = %#x, want %#x", c.name, got, c.want)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	neg1 := negu(1)
	cases := []struct {
		op     Opcode
		s1, s2 uint64
		want   bool
	}{
		{BEQ, 1, 1, true},
		{BEQ, 1, 2, false},
		{BNE, 1, 2, true},
		{BNE, 2, 2, false},
		{BLT, neg1, 0, true},
		{BLT, 0, neg1, false},
		{BGE, 0, neg1, true},
		{BGE, neg1, 0, false},
		{BLTU, 0, neg1, true},
		{BLTU, neg1, 0, false},
		{BGEU, neg1, 0, true},
		{BGEU, 0, neg1, false},
		{ADD, 1, 1, false}, // non-branch opcode is never taken
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.s1, c.s2); got != c.want {
			t.Errorf("BranchTaken(%s, %d, %d) = %v, want %v", c.op, c.s1, c.s2, got, c.want)
		}
	}
}

func TestExtendLoad(t *testing.T) {
	cases := []struct {
		op   Opcode
		raw  uint64
		want uint64
	}{
		{LB, 0x80, negu(128)},
		{LBU, 0x80, 0x80},
		{LH, 0x8000, negu(32768)},
		{LHU, 0x8000, 0x8000},
		{LW, 0x80000000, uint64(minInt32)},
		{LWU, 0x80000000, 0x80000000},
		{LD, 0x8000000000000000, 0x8000000000000000},
		{FLD, 0x123456789abcdef0, 0x123456789abcdef0},
	}
	for _, c := range cases {
		if got := ExtendLoad(c.op, c.raw); got != c.want {
			t.Errorf("ExtendLoad(%s, %#x) = %#x, want %#x", c.op, c.raw, got, c.want)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		i    Inst
		want string
	}{
		{Inst{Op: NOP}, "nop"},
		{Inst{Op: HALT}, "halt"},
		{Inst{Op: ADD, Rd: X(1), Rs1: X(2), Rs2: X(3)}, "add x1, x2, x3"},
		{Inst{Op: ADDI, Rd: X(1), Rs1: X(2), Imm: -4}, "addi x1, x2, -4"},
		{Inst{Op: LI, Rd: X(5), Imm: 42}, "li x5, 42"},
		{Inst{Op: LD, Rd: X(6), Rs1: X(7), Imm: 16}, "ld x6, 16(x7)"},
		{Inst{Op: SD, Rs1: X(7), Rs2: X(6), Imm: 8}, "sd x6, 8(x7)"},
		{Inst{Op: BEQ, Rs1: X(1), Rs2: X(2), Imm: 10}, "beq x1, x2, 10"},
		{Inst{Op: JAL, Rd: X(1), Imm: 20}, "jal x1, 20"},
		{Inst{Op: JALR, Rd: X(0), Rs1: X(1)}, "jalr x0, x1, 0"},
		{Inst{Op: DETACH, Imm: 7}, "detach 7"},
		{Inst{Op: REATTACH, Imm: 7}, "reattach 7"},
		{Inst{Op: SYNC, Imm: 7}, "sync 7"},
		{Inst{Op: FADD, Rd: F(1), Rs1: F(2), Rs2: F(3)}, "fadd f1, f2, f3"},
		{Inst{Op: FSQRT, Rd: F(1), Rs1: F(2)}, "fsqrt f1, f2"},
	}
	for _, c := range cases {
		if got := c.i.String(); got != c.want {
			t.Errorf("Inst.String() = %q, want %q", got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	insts := []Inst{
		{Op: NOP},
		{Op: ADD, Rd: X(1), Rs1: X(2), Rs2: X(3)},
		{Op: LI, Rd: X(5), Imm: math.MinInt64},
		{Op: LD, Rd: F(3), Rs1: X(7), Imm: -128},
		{Op: DETACH, Imm: 12345},
		{Op: HALT},
	}
	data, err := EncodeProgram(insts)
	if err != nil {
		t.Fatalf("EncodeProgram: %v", err)
	}
	if len(data) != len(insts)*InstBytes {
		t.Fatalf("encoded length = %d, want %d", len(data), len(insts)*InstBytes)
	}
	back, err := DecodeProgram(data)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	if len(back) != len(insts) {
		t.Fatalf("decoded %d instructions, want %d", len(back), len(insts))
	}
	for i := range insts {
		if back[i] != insts[i] {
			t.Errorf("instruction %d: round trip %+v != original %+v", i, back[i], insts[i])
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	roundTrip := func(op uint8, rd, rs1, rs2 uint8, imm int64) bool {
		in := Inst{
			Op:  Opcode(op % uint8(NumOpcodes)),
			Rd:  Reg(rd % NumRegs),
			Rs1: Reg(rs1 % NumRegs),
			Rs2: Reg(rs2 % NumRegs),
			Imm: imm,
		}
		var buf [InstBytes]byte
		if _, err := Encode(in, buf[:]); err != nil {
			return false
		}
		out, err := Decode(buf[:])
		return err == nil && out == in
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, InstBytes-1)); err == nil {
		t.Error("Decode(short buffer) succeeded, want error")
	}
	bad := make([]byte, InstBytes)
	bad[0] = 250 // invalid opcode
	if _, err := Decode(bad); err == nil {
		t.Error("Decode(bad opcode) succeeded, want error")
	}
	bad[0] = byte(ADD)
	bad[1] = 200 // invalid register
	if _, err := Decode(bad); err == nil {
		t.Error("Decode(bad register) succeeded, want error")
	}
	if _, err := DecodeProgram(make([]byte, InstBytes+1)); err == nil {
		t.Error("DecodeProgram(misaligned) succeeded, want error")
	}
}

func TestEvalALUDivisionNeverPanics(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		_ = EvalALU(Inst{Op: DIV}, s1, s2)
		_ = EvalALU(Inst{Op: REM}, s1, s2)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
