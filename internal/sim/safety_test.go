package sim

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"loopfrog/internal/cpu"
	"loopfrog/internal/workloads"
)

// failingJob returns a job that deterministically fails: a cycle budget far
// too small for the benchmark, tripping ErrCycleLimit.
func failingJob(t *testing.T) Job {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 500
	return Job{Cfg: cfg, Prog: workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()}
}

// TestFailedRunsNeverCached is the regression test for the error-caching bug:
// two concurrent identical failing jobs must both complete with an error (no
// deadlocked flight), and the failure must not be retained in the cache.
func TestFailedRunsNeverCached(t *testing.T) {
	h := &Harness{Workers: 2, Cache: NewRunCache()}
	j := failingJob(t)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			defer wg.Done()
			_, errs[i] = h.runOne(context.Background(), j)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent identical failing jobs deadlocked")
	}
	for i, err := range errs {
		if !errors.Is(err, cpu.ErrCycleLimit) {
			t.Errorf("job %d: err = %v, want ErrCycleLimit", i, err)
		}
	}
	if n := h.Cache.Len(); n != 0 {
		t.Errorf("failed run left %d cache entries, want 0", n)
	}
	if h.Cache.Failures() == 0 {
		t.Error("cache failure eviction counter did not move")
	}
	// A third, sequential request must re-execute, not replay a cached error.
	misses := h.Cache.Misses()
	if _, err := h.runOne(context.Background(), j); !errors.Is(err, cpu.ErrCycleLimit) {
		t.Errorf("third run: err = %v, want ErrCycleLimit", err)
	}
	if h.Cache.Misses() == misses {
		t.Error("third identical failing job was served from the cache")
	}
}

// TestPanicRetryAndQuarantine drives a job whose injected fault plan panics
// deterministically: the harness must recover the panic, retry once, and
// quarantine the key when the retry panics too. A later identical job fails
// fast with ErrQuarantined instead of crashing a third time.
func TestPanicRetryAndQuarantine(t *testing.T) {
	h := &Harness{Workers: 1, Cache: NewRunCache()}
	prog := workloads.ChaosSuite()[0].MustProgram()
	j := Job{Cfg: cpu.DefaultConfig(), Prog: prog, Faults: "panic=1", Seed: 1}

	_, err := h.runOne(context.Background(), j)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if !strings.Contains(pe.Error(), "injected panic") {
		t.Errorf("panic error does not name the injected panic: %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}
	st := h.Stats()
	if st.Panics != 2 || st.Retries != 1 || st.Quarantined != 1 {
		t.Errorf("panics=%d retries=%d quarantined=%d, want 2/1/1", st.Panics, st.Retries, st.Quarantined)
	}

	if _, err := h.runOne(context.Background(), j); !errors.Is(err, ErrQuarantined) {
		t.Errorf("repeat offender re-ran: err = %v, want ErrQuarantined", err)
	}
	if got := h.Stats().Panics; got != 2 {
		t.Errorf("quarantined job still executed: panics=%d, want 2", got)
	}
}

// TestJobTimeout: a job with an already-expired deadline must return a
// wrapped context.DeadlineExceeded, count a timeout, and leave no cache entry.
func TestJobTimeout(t *testing.T) {
	h := &Harness{Workers: 1, Cache: NewRunCache()}
	j := Job{
		Cfg:     cpu.DefaultConfig(),
		Prog:    workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram(),
		Timeout: time.Nanosecond,
	}
	_, err := h.runOne(context.Background(), j)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if h.Stats().Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", h.Stats().Timeouts)
	}
	if n := h.Cache.Len(); n != 0 {
		t.Errorf("timed-out run left %d cache entries, want 0", n)
	}
}

// TestPartialSweepResults: a sweep containing a crashing job still completes
// every other job and reports results and errors per slot.
func TestPartialSweepResults(t *testing.T) {
	prog := workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()
	chaosProg := workloads.ChaosSuite()[0].MustProgram()
	cfg := cpu.DefaultConfig()
	h := &Harness{Workers: 4, Cache: NewRunCache()}
	jobs := []Job{
		{Cfg: BaselineOf(cfg), Prog: prog},
		{Cfg: cfg, Prog: chaosProg, Faults: "panic=1", Seed: 7},
		{Cfg: cfg, Prog: prog},
	}
	out, errs := h.RunJobsErrs(jobs)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy jobs failed: %v / %v", errs[0], errs[2])
	}
	if out[0] == nil || out[2] == nil || out[0].Cycles == 0 || out[2].Cycles == 0 {
		t.Fatal("healthy jobs produced no stats")
	}
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("crashing job: err = %v, want PanicError", errs[1])
	}
	// RunJobs reports the lowest-indexed failure but still returns the slice.
	if _, err := h.RunJobs(jobs); err == nil {
		t.Fatal("RunJobs swallowed the job failure")
	}
}

// TestFaultJobKeying: an injected job must never share a cache slot with the
// clean run of the same (config, program), and different seeds must be
// distinct keys too.
func TestFaultJobKeying(t *testing.T) {
	prog := workloads.ChaosSuite()[0].MustProgram()
	cfg := cpu.DefaultConfig()
	clean := Job{Cfg: cfg, Prog: prog}
	faulty := Job{Cfg: cfg, Prog: prog, Faults: "conflict", Seed: 1}
	faulty2 := Job{Cfg: cfg, Prog: prog, Faults: "conflict", Seed: 2}
	if jobKey(clean) == jobKey(faulty) {
		t.Error("fault spec not part of the job key")
	}
	if jobKey(faulty) == jobKey(faulty2) {
		t.Error("fault seed not part of the job key")
	}
	if jobKey(clean) != jobKey(Job{Cfg: cfg, Prog: prog, Faults: "none", Seed: 9}) {
		t.Error(`"none" fault spec keyed differently from a clean job`)
	}

	h := &Harness{Workers: 2, Cache: NewRunCache()}
	out, errs := h.RunJobsErrs([]Job{clean, faulty})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if h.Cache.Misses() != 2 {
		t.Errorf("clean and injected runs shared a simulation: misses=%d, want 2", h.Cache.Misses())
	}
	// Injection must have perturbed the run (the chaos workloads squash under
	// forced conflicts), yet both complete.
	if out[0].Cycles == out[1].Cycles && out[0].Squashes == out[1].Squashes {
		t.Log("note: injected run identical to clean run (no faults fired)")
	}
}
