package sim

// Two-tier sampled simulation (SMARTS/SimPoint methodology, §6.1). Tier 1 is
// the fast-functional interpreter (internal/fastsim): it executes the whole
// program at tens of millions of instructions per second, warming
// branch-predictor tables and cache tags, and emits a checkpoint every
// Interval instructions. Tier 2 seeds the detailed machine from each
// checkpoint and simulates only a short window — Warmup instructions of
// detailed warmup (letting pipeline/queue state settle; measurement starts
// after) followed by Window measured instructions. Each window's IPC stands
// for its whole interval, and the per-interval instruction counts weight the
// window IPCs into a whole-run cycle estimate, exactly the phase-weighted
// estimation weights.go implements.
//
// Checkpoints are independent, so the windows of one long program fan out
// across the harness worker pool like unrelated jobs — parallel-in-time
// simulation of a single run. The result: order-of-magnitude effective
// simulation speed at low single-digit percent cycle error.

import (
	"context"
	"fmt"
	"time"

	"loopfrog/internal/asm"
	"loopfrog/internal/cpu"
	"loopfrog/internal/fastsim"
)

// SampleConfig shapes a sampled run.
type SampleConfig struct {
	// Interval is the checkpoint spacing in instructions (one window per
	// interval). 0 means DefaultSampleConfig's value.
	Interval uint64
	// Window is the number of measured instructions per window; 0 defaults.
	Window uint64
	// Warmup is the number of detailed-warmup instructions simulated before
	// measurement starts in each window; 0 defaults. (Microarchitectural table
	// state comes warm from tier 1; this warmup settles pipeline state the
	// checkpoint does not carry: queues, in-flight windows, threadlets.)
	Warmup uint64
}

// DefaultSampleConfig returns the accuracy-tuned defaults: full tiling
// (Window == Interval, so measured slices tile the program with no sampling
// gap) at 50k-instruction intervals with 10k of detailed warmup per window.
// On the micro benchmark suite this holds cycle error under 2% on 19 of 21
// workloads (median |error| well under 1%; two spawn-chain-sensitive outliers
// sit near 4%, see EXPERIMENTS.md) while the windows fan out across the
// worker pool. Shorter windows (Window < Interval) trade accuracy for speed —
// the suite's micro workloads have strongly heterogeneous intervals, so the
// default does not sample within the interval; longer, phase-stable programs
// can.
func DefaultSampleConfig() SampleConfig {
	return SampleConfig{Interval: 50_000, Window: 50_000, Warmup: 10_000}
}

// Validate checks the configuration as it would run (defaults applied): the
// warmup must be shorter than the interval, or the checkpoint lead would wrap
// past the previous interval boundary.
func (c SampleConfig) Validate() error {
	c = c.withDefaults()
	if c.Warmup >= c.Interval {
		return fmt.Errorf("sim: sampled warmup (%d) must be shorter than the interval (%d)", c.Warmup, c.Interval)
	}
	return nil
}

func (c SampleConfig) withDefaults() SampleConfig {
	d := DefaultSampleConfig()
	if c.Interval == 0 {
		c.Interval = d.Interval
	}
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.Warmup == 0 {
		c.Warmup = d.Warmup
	}
	return c
}

// WindowStat is one sampled window's measurement.
type WindowStat struct {
	// At is the checkpoint position (instructions before the window).
	At uint64
	// Insts is the number of instructions this window's IPC stands for (the
	// interval length, truncated at program end).
	Insts uint64
	// MeasInsts/MeasCycles are the measured post-warmup slice.
	MeasInsts  uint64
	MeasCycles int64
	// IPC is the window's measured IPC.
	IPC float64
	// SimInsts is the total detailed instructions simulated for this window
	// (warmup included) — the cost side of the accuracy/speed trade.
	SimInsts uint64
}

// SampledStats is the outcome of one sampled run of (config, program).
type SampledStats struct {
	Sample SampleConfig
	// TotalInsts is the tier-1 dynamic instruction count of the full program.
	TotalInsts uint64
	// Windows are the per-checkpoint measurements, in program order.
	Windows []WindowStat
	// EstCycles is the whole-run cycle estimate.
	EstCycles float64
	// CPI is the interval-weighted cycles per instruction (EstCycles/TotalInsts).
	CPI float64
	// DetailedInsts is the total detailed instructions simulated across all
	// windows (warmup included); DetailedShare is its fraction of TotalInsts.
	DetailedInsts uint64
	DetailedShare float64
	// Regions is the interval-weighted aggregate of the windows' per-region
	// speculation ledgers (empty when Config.RegionLedger is off): each
	// window's ledgers are scaled by the interval it stands for, the same
	// weighting the cycle estimate uses. The aggregate is an estimate —
	// cpu.Stats.ReconcileRegions applies to exact full runs only.
	Regions []cpu.RegionLedger
	// Tier1Nanos and WallNanos time the functional pass and the whole sampled
	// run (tier 1 + all windows, as scheduled); EffectiveIPS is
	// TotalInsts/WallNanos — the headline effective simulation speed.
	Tier1Nanos   int64
	WallNanos    int64
	Tier1IPS     float64
	EffectiveIPS float64
}

// IPC returns the estimated whole-run IPC.
func (s *SampledStats) IPC() float64 {
	if s.EstCycles == 0 {
		return 0
	}
	return float64(s.TotalInsts) / s.EstCycles
}

// RunSampled runs a sampled estimate of prog on cfg over the harness pool.
func (h *Harness) RunSampled(cfg cpu.Config, prog *asm.Program, sc SampleConfig) (*SampledStats, error) {
	return h.RunSampledCtx(context.Background(), cfg, prog, sc)
}

// RunSampledCtx is RunSampled under a context: cancellation stops tier-1,
// every in-flight window, and returns with no goroutines left behind.
func (h *Harness) RunSampledCtx(ctx context.Context, cfg cpu.Config, prog *asm.Program, sc SampleConfig) (*SampledStats, error) {
	return h.RunSampledObservedCtx(ctx, cfg, prog, sc, nil)
}

// RunSampledObservedCtx is RunSampledCtx with a per-window observer: when
// observe is non-nil it is invoked with the window index (program order) and
// the window's machine just before that window's detailed simulation starts,
// so callers can attach telemetry — tracing each parallel-in-time window onto
// its own trace process, say. Observers run on worker goroutines and must be
// safe for concurrent use. Like Job.Observe (which carries it), the hook
// fires only for windows that actually execute a machine: a window served
// from the harness run-cache is never observed.
func (h *Harness) RunSampledObservedCtx(ctx context.Context, cfg cpu.Config, prog *asm.Program, sc SampleConfig, observe func(win int, m *cpu.Machine)) (*SampledStats, error) {
	sc = sc.withDefaults()
	start := time.Now()
	ckpts, total, t1, err := h.tier1(ctx, cfg, prog, sc)
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, len(ckpts))
	for i, ck := range ckpts {
		jobs[i] = windowJob(cfg, prog, ck, sc)
		if observe != nil {
			win := i
			jobs[i].Observe = func(m *cpu.Machine) { observe(win, m) }
		}
	}
	stats, errs := h.RunJobsCtx(ctx, jobs)
	for i, werr := range errs {
		if werr != nil {
			return nil, fmt.Errorf("sim: sampled window @%d: %w", ckpts[i].Insts, werr)
		}
	}
	out := &SampledStats{Sample: sc, TotalInsts: total, Tier1Nanos: t1}
	var regions RegionAccumulator
	for i, st := range stats {
		w, werr := measureWindow(ckpts[i], total, sc, st)
		if werr != nil {
			return nil, werr
		}
		out.Windows = append(out.Windows, w)
		out.EstCycles += float64(w.Insts) / w.IPC
		out.DetailedInsts += w.SimInsts
		regions.AddScaled(st.Regions, windowRegionScale(w, st))
	}
	out.Regions = regions.Ledgers()
	out.CPI = out.EstCycles / float64(total)
	out.DetailedShare = float64(out.DetailedInsts) / float64(total)
	out.WallNanos = int64(time.Since(start))
	if t1 > 0 {
		out.Tier1IPS = float64(total) / (float64(t1) / 1e9)
	}
	if out.WallNanos > 0 {
		out.EffectiveIPS = float64(total) / (float64(out.WallNanos) / 1e9)
	}
	return out, nil
}

// SampledResult is a benchmark's sampled A/B outcome: the baseline and
// LoopFrog sampled estimates plus the phase-weighted speedup.
type SampledResult struct {
	Base, LF *SampledStats
	// EstSpeedup is the region speedup from the weighted window IPCs
	// (EstimateSpeedup over per-interval phases).
	EstSpeedup float64
}

// RunSampledAB runs the baseline/LoopFrog pair of prog as one sampled batch:
// a single tier-1 pass serves both sides (BaselineOf only changes threadlet
// count and packing, never the warming-relevant predictor/cache geometry),
// and all windows of both sides fan out over the pool together.
func (h *Harness) RunSampledAB(cfg cpu.Config, prog *asm.Program, sc SampleConfig) (*SampledResult, error) {
	return h.RunSampledABCtx(context.Background(), cfg, prog, sc)
}

// RunSampledABCtx is RunSampledAB under a context.
func (h *Harness) RunSampledABCtx(ctx context.Context, cfg cpu.Config, prog *asm.Program, sc SampleConfig) (*SampledResult, error) {
	sc = sc.withDefaults()
	base := BaselineOf(cfg)
	start := time.Now()
	ckpts, total, t1, err := h.tier1(ctx, cfg, prog, sc)
	if err != nil {
		return nil, err
	}
	n := len(ckpts)
	jobs := make([]Job, 0, 2*n)
	for _, ck := range ckpts {
		jobs = append(jobs, windowJob(base, prog, ck, sc))
	}
	for _, ck := range ckpts {
		jobs = append(jobs, windowJob(cfg, prog, ck, sc))
	}
	stats, errs := h.RunJobsCtx(ctx, jobs)
	for i, werr := range errs {
		if werr != nil {
			side := "baseline"
			if i >= n {
				side = "loopfrog"
			}
			return nil, fmt.Errorf("sim: sampled %s window @%d: %w", side, ckpts[i%n].Insts, werr)
		}
	}
	res := &SampledResult{
		Base: &SampledStats{Sample: sc, TotalInsts: total, Tier1Nanos: t1},
		LF:   &SampledStats{Sample: sc, TotalInsts: total, Tier1Nanos: t1},
	}
	phases := make([]Phase, 0, n)
	var baseRegions, lfRegions RegionAccumulator
	for i, ck := range ckpts {
		bw, berr := measureWindow(ck, total, sc, stats[i])
		if berr != nil {
			return nil, berr
		}
		lw, lerr := measureWindow(ck, total, sc, stats[n+i])
		if lerr != nil {
			return nil, lerr
		}
		res.Base.Windows = append(res.Base.Windows, bw)
		res.LF.Windows = append(res.LF.Windows, lw)
		res.Base.EstCycles += float64(bw.Insts) / bw.IPC
		res.LF.EstCycles += float64(lw.Insts) / lw.IPC
		res.Base.DetailedInsts += bw.SimInsts
		res.LF.DetailedInsts += lw.SimInsts
		baseRegions.AddScaled(stats[i].Regions, windowRegionScale(bw, stats[i]))
		lfRegions.AddScaled(stats[n+i].Regions, windowRegionScale(lw, stats[n+i]))
		if bw.Insts == 0 {
			continue // terminal fragment shorter than the warmup: weightless
		}
		phases = append(phases, Phase{
			Weight:  float64(bw.Insts) / float64(total),
			Insts:   bw.Insts,
			BaseIPC: bw.IPC,
			LFIPC:   lw.IPC,
		})
	}
	res.Base.Regions = baseRegions.Ledgers()
	res.LF.Regions = lfRegions.Ledgers()
	wall := int64(time.Since(start))
	for _, s := range []*SampledStats{res.Base, res.LF} {
		s.CPI = s.EstCycles / float64(total)
		s.DetailedShare = float64(s.DetailedInsts) / float64(total)
		s.WallNanos = wall
		if t1 > 0 {
			s.Tier1IPS = float64(total) / (float64(t1) / 1e9)
		}
		if wall > 0 {
			s.EffectiveIPS = float64(total) / (float64(wall) / 1e9)
		}
	}
	if res.EstSpeedup, err = EstimateSpeedup(phases); err != nil {
		return nil, err
	}
	return res, nil
}

// tier1 runs the fast-functional warming pass and returns the checkpoints,
// the total instruction count, and the pass's wall time.
func (h *Harness) tier1(ctx context.Context, cfg cpu.Config, prog *asm.Program, sc SampleConfig) ([]*cpu.Checkpoint, uint64, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, fmt.Errorf("sim: sampled run not started: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, 0, 0, err
	}
	start := time.Now()
	opts := fastsim.Options{
		CheckpointEvery: sc.Interval,
		// Checkpoints lead their interval boundary by the warmup length, so
		// the measured slice of every window starts exactly at its interval:
		// slices tile the program with no phase offset however long the
		// warmup is.
		CheckpointLead: sc.Warmup % sc.Interval,
		BPred:          &cfg.BPred,
		Hier:           &cfg.Hier,
	}
	if cfg.Threadlets >= 2 {
		// Functionally warm the LoopFrog engine's adaptive state alongside
		// the tables: monitor cooldowns and pack training have memory far
		// longer than any affordable detailed warmup, so windows must inherit
		// them from the checkpoint rather than re-learn inside the window.
		opts.LF = &fastsim.LFWarm{
			Threadlets: cfg.Threadlets,
			Monitor:    cfg.Monitor,
			Pack:       cfg.Pack,
			SSB:        cfg.SSB,
		}
	}
	fres, err := fastsim.Run(prog, opts)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("sim: tier-1 functional pass: %w", err)
	}
	if len(fres.Checkpoints) == 0 {
		return nil, 0, 0, fmt.Errorf("sim: tier-1 produced no checkpoints (program ran %d insts)", fres.DynInsts)
	}
	return fres.Checkpoints, fres.DynInsts, int64(time.Since(start)), nil
}

// windowJob builds the detailed-window job for one checkpoint.
func windowJob(cfg cpu.Config, prog *asm.Program, ck *cpu.Checkpoint, sc SampleConfig) Job {
	cfg.WarmupInsts = sc.Warmup
	cfg.MaxArchInsts = sc.Warmup + sc.Window
	if ck.Insts == 0 {
		// The first checkpoint is the exact boot state: there is nothing to
		// warm, and discarding a warmup slice would hide the true cold-start
		// ramp from the estimate.
		cfg.WarmupInsts = 0
		cfg.MaxArchInsts = sc.Window
	}
	if cfg.Threadlets <= 1 && (ck.Mon != nil || ck.Pack != nil || ck.Region != 0) {
		// Baseline windows share the LF-side tier-1 pass; a single-context
		// machine has no engine to seed, so strip the LF warm state (the
		// shallow copy shares the immutable Mem/BP/Hier snapshots).
		base := *ck
		base.Mon, base.Pack, base.Region = nil, nil, 0
		ck = &base
	}
	return Job{Cfg: cfg, Prog: prog, Ckpt: ck}
}

// measureWindow turns a window run's Stats into a WindowStat. The measured
// slice is the post-warmup remainder; a window whose program portion ended
// before the warmup target falls back to the whole window (there is no
// steady state to isolate in a terminal fragment). Both endpoints count
// instructions as ArchInsts plus the live speculative commits — the smooth
// counter — so epochs promoted in bulk across a window edge do not skew the
// measured IPC (their instructions and cycles land on the same side).
func measureWindow(ck *cpu.Checkpoint, total uint64, sc SampleConfig, st *cpu.Stats) (WindowStat, error) {
	w := WindowStat{At: ck.Insts, SimInsts: st.ArchInsts}
	// The window stands for the interval its MEASURED slice starts in: the
	// checkpoint leads the interval boundary by the warmup length (tier1's
	// CheckpointLead), so measurement begins at the boundary itself. The
	// first checkpoint is the boot state and measures from zero.
	tile := ck.Insts
	if ck.Insts > 0 {
		tile = ck.Insts + sc.Warmup
	}
	if tile >= total {
		// The terminal fragment is shorter than the warmup: the slice it
		// would stand for is empty.
		w.Insts = 0
	} else {
		w.Insts = total - tile
		if w.Insts > sc.Interval {
			w.Insts = sc.Interval
		}
	}
	end := st.ArchInsts + st.EndLive
	warm := st.WarmupEndInsts + st.WarmupEndLive
	if st.WarmupEndCycle > 0 && st.Cycles > st.WarmupEndCycle && end > warm {
		w.MeasInsts = end - warm
		w.MeasCycles = st.Cycles - st.WarmupEndCycle
	} else {
		w.MeasInsts = end
		w.MeasCycles = st.Cycles
	}
	if w.MeasCycles <= 0 || w.MeasInsts == 0 {
		return w, fmt.Errorf("sim: sampled window @%d measured nothing (insts=%d cycles=%d)", ck.Insts, w.MeasInsts, w.MeasCycles)
	}
	w.IPC = float64(w.MeasInsts) / float64(w.MeasCycles)
	return w, nil
}

// RunSampled runs a sampled estimate on the default harness.
func RunSampled(cfg cpu.Config, prog *asm.Program, sc SampleConfig) (*SampledStats, error) {
	return DefaultHarness().RunSampled(cfg, prog, sc)
}

// RunSampledAB runs a sampled baseline/LoopFrog comparison on the default
// harness.
func RunSampledAB(cfg cpu.Config, prog *asm.Program, sc SampleConfig) (*SampledResult, error) {
	return DefaultHarness().RunSampledAB(cfg, prog, sc)
}
