package sim

import (
	"reflect"
	"sync"
	"testing"

	"loopfrog/internal/cpu"
	"loopfrog/internal/workloads"
)

// fastSuite returns the quickest benchmark stand-ins, keeping the
// determinism test cheap enough to run under -race.
func fastSuite(t *testing.T) []*workloads.Benchmark {
	t.Helper()
	var out []*workloads.Benchmark
	for _, name := range []string{"deepsjeng", "blender", "x264"} {
		b := workloads.ByName(workloads.CPU2017(), name)
		if b == nil {
			t.Fatalf("benchmark %s missing", name)
		}
		out = append(out, b)
	}
	return out
}

// TestRunSuiteDeterminism is the regression test for the parallel harness:
// a suite evaluated by one worker and by many workers (both without a cache,
// so every run actually simulates) must produce deeply equal statistics.
func TestRunSuiteDeterminism(t *testing.T) {
	suite := fastSuite(t)
	cfg := cpu.DefaultConfig()
	seq := &Harness{Workers: 1}
	par := &Harness{Workers: 8}
	resSeq, err := seq.RunSuite(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	resPar, err := par.RunSuite(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(resSeq) != len(resPar) {
		t.Fatalf("result count differs: %d vs %d", len(resSeq), len(resPar))
	}
	for i := range resSeq {
		if resSeq[i].Bench != resPar[i].Bench {
			t.Errorf("result %d ordered differently: %s vs %s", i, resSeq[i].Bench.Name, resPar[i].Bench.Name)
		}
		if !reflect.DeepEqual(resSeq[i].Base, resPar[i].Base) {
			t.Errorf("%s: baseline stats differ between 1 and 8 workers", resSeq[i].Bench.Name)
		}
		if !reflect.DeepEqual(resSeq[i].LF, resPar[i].LF) {
			t.Errorf("%s: loopfrog stats differ between 1 and 8 workers", resSeq[i].Bench.Name)
		}
	}
}

// TestCacheKey checks that the key separates configs differing in any
// behaviourally relevant field and merges configs that cannot differ.
func TestCacheKey(t *testing.T) {
	prog := workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()
	base := cpu.DefaultConfig()

	granule := base
	granule.SSB.GranuleBytes *= 2
	if CacheKey(base, prog) == CacheKey(granule, prog) {
		t.Error("key does not distinguish SSB granule sizes")
	}

	width := base
	width.Width++
	if CacheKey(base, prog) == CacheKey(width, prog) {
		t.Error("key does not distinguish core widths")
	}

	// With a single threadlet context the LoopFrog apparatus is inert: two
	// baselines differing only in SSB geometry must share one cache slot
	// (that sharing is what deduplicates sweep baselines).
	b1, b2 := BaselineOf(base), BaselineOf(granule)
	if CacheKey(b1, prog) != CacheKey(b2, prog) {
		t.Error("baselines with different SSB granules keyed separately")
	}

	// A zero MaxCycles and the explicit default are the same run.
	def := base
	def.MaxCycles = 200_000_000
	if CacheKey(base, prog) != CacheKey(def, prog) {
		t.Error("default MaxCycles keyed separately from explicit value")
	}

	other := workloads.ByName(workloads.CPU2017(), "blender").MustProgram()
	if CacheKey(base, prog) == CacheKey(base, other) {
		t.Error("key does not distinguish programs")
	}
}

// TestRunCacheDedup checks the hit/miss/singleflight accounting and that
// cached results are returned as independent copies.
func TestRunCacheDedup(t *testing.T) {
	prog := workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()
	cfg := cpu.DefaultConfig()
	c := NewRunCache()

	st1, err := c.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if c.Misses() != 1 || c.Hits() != 1 {
		t.Errorf("after two sequential runs: misses=%d hits=%d, want 1/1", c.Misses(), c.Hits())
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Error("cached stats differ from the original run")
	}
	if st1 == st2 {
		t.Error("cache returned the same Stats pointer twice")
	}
	saved := st2.Cycles
	st1.Cycles = 0 // corrupting one copy must not leak into the cache
	st3, _ := c.Run(cfg, prog)
	if st3.Cycles != saved {
		t.Error("mutating a returned Stats corrupted the cache")
	}

	// Concurrent requests for one new key: exactly one simulation, everyone
	// else either joins it in flight or hits the completed entry.
	granule := cfg
	granule.SSB.GranuleBytes *= 2
	const n = 8
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			if _, err := c.Run(granule, prog); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if c.Misses() != 2 {
		t.Errorf("concurrent requests ran %d simulations for the second key, want 1", c.Misses()-1)
	}
	// Two sequential hits on the first key plus n-1 deduplicated concurrent
	// requests on the second.
	if c.Hits()+c.FlightJoins() != 2+n-1 {
		t.Errorf("hits=%d flight-joins=%d, want them to cover %d deduplicated requests",
			c.Hits(), c.FlightJoins(), 2+n-1)
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d keys, want 2", c.Len())
	}
}

// TestHarnessWithoutCache checks the cache disable switch: a nil Cache runs
// every job directly and still produces correct, ordered results.
func TestHarnessWithoutCache(t *testing.T) {
	prog := workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()
	cfg := cpu.DefaultConfig()
	h := &Harness{Workers: 4} // no cache
	jobs := []Job{
		{Cfg: BaselineOf(cfg), Prog: prog},
		{Cfg: cfg, Prog: prog},
		{Cfg: BaselineOf(cfg), Prog: prog},
	}
	stats, err := h.RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats[0], stats[2]) {
		t.Error("identical jobs produced different stats")
	}
	if stats[0] == stats[2] {
		t.Error("uncached harness shared a Stats pointer between jobs")
	}
	if stats[0].ArchInsts != stats[1].ArchInsts {
		t.Error("baseline and loopfrog committed different instruction counts")
	}
}

// TestDefaultHarnessCacheDedup checks that the package-level entry points
// share the baseline across sweep points, the way Figures 9/10 do.
func TestDefaultHarnessCacheDedup(t *testing.T) {
	c := NewRunCache()
	h := &Harness{Workers: 2, Cache: c}
	cfgA := cpu.DefaultConfig()
	cfgB := cpu.DefaultConfig()
	cfgB.SSB.GranuleBytes *= 2
	bench := workloads.ByName(workloads.CPU2017(), "blender")
	if _, err := h.Compare(cfgA, bench); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Compare(cfgB, bench); err != nil {
		t.Fatal(err)
	}
	// Two sweep points: two LoopFrog runs but only one shared baseline.
	if c.Misses() != 3 {
		t.Errorf("two sweep points ran %d simulations, want 3 (shared baseline)", c.Misses())
	}
	if c.Hits()+c.FlightJoins() != 1 {
		t.Errorf("baseline not deduplicated: hits=%d flight-joins=%d", c.Hits(), c.FlightJoins())
	}
}
