package sim

import (
	"context"
	"runtime"
	"testing"
	"time"

	"loopfrog/internal/cpu"
	"loopfrog/internal/fastsim"
	"loopfrog/internal/isa"
	"loopfrog/internal/ref"
	"loopfrog/internal/workloads"
)

// sampledErrBudget is the acceptance bound on whole-run cycle error.
const sampledErrBudget = 0.02

// sampledOutlierBudget is the looser bound for the known LF-side outliers
// below. A detailed window seeded mid-region restarts the spawn chain from
// scratch; on workloads whose chain dynamics are sensitive to that restart
// (heavy wrong-path squashing, chain-depth-dependent packing) the window
// settles into a measurably different spawn/squash equilibrium than the
// uninterrupted run, and no affordable detailed warmup converges the two — a
// state splice of predictor tables, cache tags, monitor and pack state leaves
// the window bit-identical, so the divergence is pipeline trajectory, not
// seedable state. The bound pins today's measured errors (povray +4.4%,
// perlbench -3.7%) so regressions still fail.
const sampledOutlierBudget = 0.05

// sampledLFOutliers are the workloads allowed sampledOutlierBudget on the
// LoopFrog side (the baseline side must always meet sampledErrBudget).
var sampledLFOutliers = map[string]bool{"povray": true, "perlbench": true}

// TestSampledAccuracySuite checks the headline property: the sampled cycle
// estimate is within 2% of the full detailed run, for baseline and LoopFrog,
// on every CPU2017 workload (the two documented outliers get 5%).
func TestSampledAccuracySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite accuracy check")
	}
	h := NewHarness()
	cfg := cpu.DefaultConfig()
	for _, b := range workloads.CPU2017() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.MustProgram()
			stats, errs := h.RunJobsCtx(context.Background(), []Job{
				{Cfg: BaselineOf(cfg), Prog: prog},
				{Cfg: cfg, Prog: prog},
			})
			for _, e := range errs {
				if e != nil {
					t.Fatal(e)
				}
			}
			res, err := h.RunSampledAB(cfg, prog, SampleConfig{})
			if err != nil {
				t.Fatal(err)
			}
			checkErr := func(side string, est float64, full int64, budget float64) {
				e := est/float64(full) - 1
				if e < 0 {
					e = -e
				}
				t.Logf("%s: est %.0f cycles, full %d, err %.3f%%", side, est, full, 100*e)
				if e > budget {
					t.Errorf("%s cycle error %.2f%% exceeds %.1f%%", side, 100*e, 100*budget)
				}
			}
			lfBudget := sampledErrBudget
			if sampledLFOutliers[b.Name] {
				lfBudget = sampledOutlierBudget
			}
			checkErr("baseline", res.Base.EstCycles, stats[0].Cycles, sampledErrBudget)
			checkErr("loopfrog", res.LF.EstCycles, stats[1].Cycles, lfBudget)
		})
	}
}

// TestCheckpointDeterminism checks the property the whole pipeline rests on:
// a detailed run resumed from a tier-1 checkpoint and run to completion ends
// in exactly the architectural state of the uninterrupted program, for every
// suite workload.
func TestCheckpointDeterminism(t *testing.T) {
	cfg := cpu.DefaultConfig()
	base := BaselineOf(cfg)
	for _, b := range append(workloads.CPU2017(), workloads.CPU2006()...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog := b.MustProgram()
			oracle := ref.MustRun(prog, ref.Options{})
			fres, err := fastsim.Run(prog, fastsim.Options{
				CheckpointEvery: 20_000, BPred: &cfg.BPred, Hier: &cfg.Hier,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(fres.Checkpoints) == 0 {
				t.Fatal("no checkpoints")
			}
			ck := fres.Checkpoints[len(fres.Checkpoints)/2]
			check := func(name string, c cpu.Config, fullRegs bool) {
				m, err := cpu.NewMachineFromCheckpoint(c, prog, ck)
				if err != nil {
					t.Fatal(err)
				}
				st, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !st.Halted {
					t.Fatalf("%s: resumed run did not halt", name)
				}
				if ck.Insts+st.ArchInsts != oracle.DynInsts {
					t.Fatalf("%s: instruction counts: %d (to ckpt) + %d (resumed) != %d (full)",
						name, ck.Insts, st.ArchInsts, oracle.DynInsts)
				}
				regs := m.FinalRegs()
				if fullRegs {
					// The baseline commits strictly in order: every register
					// must match the oracle bit for bit.
					if regs != oracle.Regs {
						t.Fatalf("%s: resumed run's final registers differ from oracle", name)
					}
				} else if regs[isa.X(10)] != oracle.Regs[isa.X(10)] {
					// LoopFrog guarantees the program's observable results —
					// the ABI result register and memory — not dead scratch
					// registers after packed regions.
					t.Fatalf("%s: resumed run's result register differs: %d want %d",
						name, regs[isa.X(10)], oracle.Regs[isa.X(10)])
				}
				if !m.Memory().Equal(oracle.Mem) {
					t.Fatalf("%s: resumed run's final memory differs from oracle:\n%s", name, m.Memory().Diff(oracle.Mem))
				}
			}
			check("baseline", base, true)
			check("loopfrog", cfg, false)
		})
	}
}

// TestSampledWorkerDeterminism checks the sampled estimate is identical with
// a serial pool and a wide pool (fresh caches: every window actually runs).
func TestSampledWorkerDeterminism(t *testing.T) {
	prog := workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()
	cfg := cpu.DefaultConfig()
	run := func(workers int) *SampledResult {
		h := &Harness{Workers: workers, Cache: NewRunCache()}
		res, err := h.RunSampledAB(cfg, prog, SampleConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	wide := run(8)
	if serial.Base.EstCycles != wide.Base.EstCycles || serial.LF.EstCycles != wide.LF.EstCycles {
		t.Fatalf("estimates depend on worker count: serial (%.2f, %.2f) wide (%.2f, %.2f)",
			serial.Base.EstCycles, serial.LF.EstCycles, wide.Base.EstCycles, wide.LF.EstCycles)
	}
	if serial.EstSpeedup != wide.EstSpeedup {
		t.Fatalf("speedup depends on worker count: %.4f vs %.4f", serial.EstSpeedup, wide.EstSpeedup)
	}
	if len(serial.Base.Windows) != len(wide.Base.Windows) {
		t.Fatalf("window counts differ: %d vs %d", len(serial.Base.Windows), len(wide.Base.Windows))
	}
	for i := range serial.Base.Windows {
		if serial.Base.Windows[i] != wide.Base.Windows[i] || serial.LF.Windows[i] != wide.LF.Windows[i] {
			t.Fatalf("window %d differs between worker counts", i)
		}
	}
}

// TestSampledCancelNoLeak cancels a sampled run mid-flight and checks every
// worker goroutine exits.
func TestSampledCancelNoLeak(t *testing.T) {
	prog := workloads.ByName(workloads.CPU2017(), "xz").MustProgram()
	cfg := cpu.DefaultConfig()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	h := &Harness{Workers: 4, Cache: NewRunCache()}
	go func() {
		defer close(done)
		_, err := h.RunSampledCtx(ctx, cfg, prog, SampleConfig{})
		if err == nil {
			t.Error("cancelled sampled run returned no error")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sampled run did not return")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after cancellation: %d before, %d after", before, runtime.NumGoroutine())
}

// TestSampledJobKeys is the collision regression for sampled-run cache
// identity: the window shape and the checkpoint position/warm-state shape
// must all be part of the key, and equal jobs must still share one.
func TestSampledJobKeys(t *testing.T) {
	prog := workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()
	cfg := cpu.DefaultConfig()
	fres, err := fastsim.Run(prog, fastsim.Options{CheckpointEvery: 20_000, BPred: &cfg.BPred, Hier: &cfg.Hier})
	if err != nil {
		t.Fatal(err)
	}
	if len(fres.Checkpoints) < 2 {
		t.Fatal("need at least two checkpoints")
	}
	ck0, ck1 := fres.Checkpoints[0], fres.Checkpoints[1]
	cold := *ck0
	cold.BP, cold.Hier = nil, nil
	win := cfg
	win.WarmupInsts = 1_000
	win.MaxArchInsts = 3_000
	win2 := cfg
	win2.WarmupInsts = 2_000
	win2.MaxArchInsts = 4_000

	full := Job{Cfg: cfg, Prog: prog}
	jobs := map[string]Job{
		"full run":              full,
		"window @0":             {Cfg: win, Prog: prog, Ckpt: ck0},
		"window @1":             {Cfg: win, Prog: prog, Ckpt: ck1},
		"window @0 cold":        {Cfg: win, Prog: prog, Ckpt: &cold},
		"window @0 other shape": {Cfg: win2, Prog: prog, Ckpt: ck0},
		"budget-only full":      {Cfg: win, Prog: prog},
	}
	seen := map[string]string{}
	for name, j := range jobs {
		k := jobKey(j)
		if prev, dup := seen[k]; dup {
			t.Errorf("cache-key collision: %q and %q share key", prev, name)
		}
		seen[k] = name
	}
	// Identical jobs must share a key — including the checkpoint, by identity
	// of position and warm shape, not pointer.
	ck0b := *ck0
	if jobKey(Job{Cfg: win, Prog: prog, Ckpt: ck0}) != jobKey(Job{Cfg: win, Prog: prog, Ckpt: &ck0b}) {
		t.Error("equal sampled jobs do not share a cache key")
	}
}
