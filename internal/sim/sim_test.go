package sim

import (
	"math"
	"testing"

	"loopfrog/internal/cpu"
	"loopfrog/internal/workloads"
)

func TestGeomean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{2}, 2},
		{[]float64{1, 4}, 2},
		{[]float64{2, 8}, 4},
		{[]float64{1, 0, 4}, 0},
	}
	for _, c := range cases {
		if got := Geomean(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Geomean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestBaselineOf(t *testing.T) {
	cfg := cpu.DefaultConfig()
	base := BaselineOf(cfg)
	if base.Threadlets != 1 || base.Pack.Enabled {
		t.Error("baseline not sequential")
	}
	if base.Width != cfg.Width || base.ROBSize != cfg.ROBSize {
		t.Error("baseline changed core parameters")
	}
}

func TestCompareOnBenchmark(t *testing.T) {
	b := workloads.ByName(workloads.CPU2017(), "imagick")
	if b == nil {
		t.Fatal("imagick stand-in missing")
	}
	r, err := Compare(cpu.DefaultConfig(), b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Base.ArchInsts != r.LF.ArchInsts {
		t.Error("instruction counts differ between runs")
	}
	if r.Speedup() < 1.0 {
		t.Errorf("imagick-class kernel slowed down: %.3f", r.Speedup())
	}
	if r.LF.Spawns == 0 {
		t.Error("no threadlets spawned")
	}
}

func TestEstimateSpeedup(t *testing.T) {
	phases := []Phase{
		{Weight: 0.5, Insts: 1000, BaseIPC: 2, LFIPC: 4}, // 2x in this phase
		{Weight: 0.5, Insts: 1000, BaseIPC: 2, LFIPC: 2}, // flat here
	}
	got, err := EstimateSpeedup(phases)
	if err != nil {
		t.Fatal(err)
	}
	// time_base = .5*500 + .5*500 = 500; time_lf = .5*250 + .5*500 = 375.
	want := 500.0 / 375.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EstimateSpeedup = %v, want %v", got, want)
	}
}

func TestEstimateSpeedupValidation(t *testing.T) {
	if _, err := EstimateSpeedup(nil); err == nil {
		t.Error("empty phases accepted")
	}
	if _, err := EstimateSpeedup([]Phase{{Weight: 0.2, Insts: 1, BaseIPC: 1, LFIPC: 1}}); err == nil {
		t.Error("weights not summing to 1 accepted")
	}
	if _, err := EstimateSpeedup([]Phase{{Weight: 1, Insts: 1, BaseIPC: 0, LFIPC: 1}}); err == nil {
		t.Error("zero IPC accepted")
	}
	if _, err := EstimateSpeedup([]Phase{{Weight: -1, Insts: 1, BaseIPC: 1, LFIPC: 1}, {Weight: 2, Insts: 1, BaseIPC: 1, LFIPC: 1}}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWeightedStat(t *testing.T) {
	got, err := WeightedStat([]float64{1, 3}, []float64{2.0, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3.5) > 1e-12 {
		t.Errorf("WeightedStat = %v, want 3.5", got)
	}
	if _, err := WeightedStat([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestSuitesCompile(t *testing.T) {
	for _, suite := range [][]*workloads.Benchmark{workloads.CPU2017(), workloads.CPU2006()} {
		for _, b := range suite {
			if _, err := b.Program(); err != nil {
				t.Errorf("%s/%s: %v", b.Suite, b.Name, err)
			}
		}
	}
}
