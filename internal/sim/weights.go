package sim

import (
	"errors"
	"fmt"
)

// This file reproduces the paper's SimPoint-based run-time estimation
// (§6.1): per-SimPoint simulations are combined with representative weights
// and instruction counts to estimate whole-benchmark run times, and the
// ratio of the estimates is the benchmark speedup. Our kernels run in full,
// so the headline results do not need it, but the methodology is part of
// the evaluation pipeline and is implemented and tested here.

// Phase is one SimPoint: a representative slice of a benchmark.
type Phase struct {
	// Weight is the fraction of the benchmark this phase represents; the
	// weights of a benchmark sum to 1.
	Weight float64
	// Insts is the number of instructions the phase represents in the full
	// run (not just the simulated slice).
	Insts uint64
	// BaseIPC and LFIPC are the simulated IPCs of the slice under baseline
	// and LoopFrog.
	BaseIPC, LFIPC float64
}

// ErrBadWeights is returned when phase weights are invalid.
var ErrBadWeights = errors.New("sim: phase weights must be positive and sum to ~1")

// EstimateSpeedup combines per-phase IPCs into a whole-benchmark speedup:
// estimated run time is the weight-scaled sum of insts/IPC per phase, and
// speedup is baseTime/lfTime.
func EstimateSpeedup(phases []Phase) (float64, error) {
	if len(phases) == 0 {
		return 0, fmt.Errorf("sim: no phases")
	}
	wsum := 0.0
	for _, p := range phases {
		if p.Weight <= 0 {
			return 0, ErrBadWeights
		}
		wsum += p.Weight
	}
	if wsum < 0.999 || wsum > 1.001 {
		return 0, fmt.Errorf("%w: sum %.4f", ErrBadWeights, wsum)
	}
	baseTime, lfTime := 0.0, 0.0
	for _, p := range phases {
		if p.BaseIPC <= 0 || p.LFIPC <= 0 {
			return 0, fmt.Errorf("sim: phase IPCs must be positive")
		}
		baseTime += p.Weight * float64(p.Insts) / p.BaseIPC
		lfTime += p.Weight * float64(p.Insts) / p.LFIPC
	}
	if lfTime == 0 {
		return 0, fmt.Errorf("sim: zero estimated run time")
	}
	return baseTime / lfTime, nil
}

// WeightedStat combines any per-phase statistic with the SimPoint weights
// ("We calculate other statistics similarly based on SimPoint weights").
func WeightedStat(weights, stats []float64) (float64, error) {
	if len(weights) != len(stats) || len(weights) == 0 {
		return 0, fmt.Errorf("sim: mismatched weights/stats")
	}
	wsum, acc := 0.0, 0.0
	for i, w := range weights {
		if w <= 0 {
			return 0, ErrBadWeights
		}
		wsum += w
		acc += w * stats[i]
	}
	return acc / wsum, nil
}
