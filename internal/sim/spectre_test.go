package sim

import (
	"testing"

	"loopfrog/internal/cpu"
	"loopfrog/internal/workloads"
)

// leakFlagGolden is the expected confirmed-leak flag of every stock CPU2017
// workload under the default LoopFrog configuration with taint tracking on.
// The stock suite is leak-free: none of its loops carries a
// load-value-steers-load-address gadget reachable in a transient window. A
// workload newly flagging here means either its kernel gained a gadget shape
// or the taint model regressed — both need a human eye, so CI gates on this
// map staying exact.
var leakFlagGolden = map[string]bool{
	"perlbench": false, "gcc": false, "mcf": false, "omnetpp": false,
	"xalancbmk": false, "x264": false, "deepsjeng": false, "leela": false,
	"exchange2": false, "xz": false, "bwaves": false, "cactuBSSN": false,
	"namd": false, "parest": false, "povray": false, "lbm": false,
	"wrf": false, "blender": false, "imagick": false, "nab": false,
}

// TestLeakFlagStability runs the whole CPU2017 suite with the taint detector
// on and checks every workload's confirmed-leak flag against the golden map,
// then checks the two seeded security controls: the bounds-check-bypass
// gadget must flag (candidates and confirmed leaks), its hardened
// counterpart must be fully clean.
func TestLeakFlagStability(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite detection runs; skipped in -short")
	}
	det := cpu.DefaultConfig()
	det.SpectreAnalysis = true

	suite := workloads.CPU2017()
	if len(suite) != len(leakFlagGolden) {
		t.Fatalf("golden map covers %d workloads, suite has %d: update leakFlagGolden",
			len(leakFlagGolden), len(suite))
	}
	var jobs []Job
	for _, b := range suite {
		prog, err := b.Program()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		jobs = append(jobs, Job{Cfg: det, Prog: prog})
	}
	stats, err := RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range suite {
		want, ok := leakFlagGolden[b.Name]
		if !ok {
			t.Errorf("%s: not in the golden map: update leakFlagGolden", b.Name)
			continue
		}
		if got := stats[i].Leaks > 0; got != want {
			t.Errorf("%s: leak flag flipped: %d confirmed leaks (%d candidates), golden says leaky=%v",
				b.Name, stats[i].Leaks, stats[i].LeakCandidates, want)
		}
	}

	for _, tc := range []struct {
		name  string
		leaky bool
	}{
		{"boundsbypass", true},
		{"boundshardened", false},
	} {
		b := workloads.ByName(workloads.Security(), tc.name)
		if b == nil {
			t.Fatalf("security workload %s missing", tc.name)
		}
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		st, err := Run(det, prog)
		if err != nil {
			t.Fatal(err)
		}
		if tc.leaky && (st.LeakCandidates == 0 || st.Leaks == 0) {
			t.Errorf("%s: seeded gadget not flagged: %d candidates, %d leaks",
				tc.name, st.LeakCandidates, st.Leaks)
		}
		if !tc.leaky && (st.LeakCandidates != 0 || st.Leaks != 0) {
			t.Errorf("%s: hardened control flagged: %d candidates, %d leaks",
				tc.name, st.LeakCandidates, st.Leaks)
		}
	}
}
