package sim

// Per-region ledger aggregation across harness runs. A full detailed run
// carries exact ledgers in its Stats; a sampled run yields one ledger set per
// detailed window, each standing for its whole interval. The accumulator
// merges either kind: verbatim (Add) for exact runs, interval-weighted
// (AddScaled) for sampled windows — the same weighting EstimateSpeedup
// applies to window IPCs. Scaled merges are estimates by construction
// (counters are extrapolated from the measured slice and rounded), so
// cpu.Stats.ReconcileRegions applies to single exact runs only, never to a
// scaled aggregate.

import (
	"sort"

	"loopfrog/internal/core"
	"loopfrog/internal/cpu"
)

// ledgerScalars is the number of scalar counters of one cpu.RegionLedger,
// ahead of the squash-cause and slot-class arrays in its flattened form.
const ledgerScalars = 12

// ledgerLen is the flattened counter count of one cpu.RegionLedger.
const ledgerLen = ledgerScalars + core.NumSquashCauses + cpu.NumSlotClasses

// ledgerVec flattens a ledger's counters into a fixed vector so merging is a
// single loop rather than per-field bookkeeping.
func ledgerVec(l *cpu.RegionLedger) (v [ledgerLen]float64) {
	for i, x := range [ledgerScalars]uint64{
		l.Detaches, l.Spawns, l.PackedSpawns, l.DetachNoContext,
		l.Retires, l.Promotes, l.Restarts, l.SpecWon, l.SpecLost,
		l.PackVerifies, l.PackMispredicts, l.PackRepairs,
	} {
		v[i] = float64(x)
	}
	for c, x := range l.Squashes {
		v[ledgerScalars+c] = float64(x)
	}
	for c, x := range l.Slots {
		v[ledgerScalars+core.NumSquashCauses+c] = float64(x)
	}
	return v
}

// vecLedger inverts ledgerVec, rounding each accumulated counter to the
// nearest integer.
func vecLedger(region int64, v *[ledgerLen]float64) cpu.RegionLedger {
	r := func(x float64) uint64 { return uint64(x + 0.5) }
	l := cpu.RegionLedger{
		Region:          region,
		Detaches:        r(v[0]),
		Spawns:          r(v[1]),
		PackedSpawns:    r(v[2]),
		DetachNoContext: r(v[3]),
		Retires:         r(v[4]),
		Promotes:        r(v[5]),
		Restarts:        r(v[6]),
		SpecWon:         r(v[7]),
		SpecLost:        r(v[8]),
		PackVerifies:    r(v[9]),
		PackMispredicts: r(v[10]),
		PackRepairs:     r(v[11]),
	}
	for c := 0; c < core.NumSquashCauses; c++ {
		l.Squashes[c] = r(v[ledgerScalars+c])
	}
	for c := 0; c < cpu.NumSlotClasses; c++ {
		l.Slots[c] = r(v[ledgerScalars+core.NumSquashCauses+c])
	}
	return l
}

// RegionAccumulator merges per-region speculation ledgers across runs or
// sampled windows, keyed by region ID. The zero value is ready to use; it is
// not safe for concurrent use.
type RegionAccumulator struct {
	idx  map[int64]int
	ids  []int64
	sums [][ledgerLen]float64
}

// Add merges one run's ledgers verbatim (weight 1).
func (a *RegionAccumulator) Add(regions []cpu.RegionLedger) { a.AddScaled(regions, 1) }

// AddScaled merges one ledger set with every counter weighted by scale — for
// a sampled window, interval-insts / window-simulated-insts, so the window's
// observed behaviour stands for its whole interval. A non-positive scale is
// ignored (a weightless terminal fragment).
func (a *RegionAccumulator) AddScaled(regions []cpu.RegionLedger, scale float64) {
	if scale <= 0 {
		return
	}
	for i := range regions {
		l := &regions[i]
		k, ok := a.idx[l.Region]
		if !ok {
			if a.idx == nil {
				a.idx = make(map[int64]int, 8)
			}
			k = len(a.sums)
			a.idx[l.Region] = k
			a.ids = append(a.ids, l.Region)
			a.sums = append(a.sums, [ledgerLen]float64{})
		}
		v := ledgerVec(l)
		sum := &a.sums[k]
		for j := range v {
			sum[j] += v[j] * scale
		}
	}
}

// Ledgers returns the merged ledgers sorted by region ID (the outside bucket,
// RegionOutside = -1, sorts first). Empty input yields nil.
func (a *RegionAccumulator) Ledgers() []cpu.RegionLedger {
	if len(a.ids) == 0 {
		return nil
	}
	ids := append([]int64(nil), a.ids...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]cpu.RegionLedger, 0, len(ids))
	for _, id := range ids {
		out = append(out, vecLedger(id, &a.sums[a.idx[id]]))
	}
	return out
}

// windowRegionScale returns the interval weight for one sampled window's
// ledgers: the interval instruction count the window stands for over the
// instructions the window actually simulated (warmup included — the ledger
// cannot separate warmup charges from measured ones, which is part of why a
// sampled aggregate is an estimate). Zero when the window is weightless.
func windowRegionScale(w WindowStat, st *cpu.Stats) float64 {
	denom := st.ArchInsts + st.EndLive
	if w.Insts == 0 || denom == 0 {
		return 0
	}
	return float64(w.Insts) / float64(denom)
}
