package sim

// Concurrent simulation scheduler. Independent (config, program) simulations
// share nothing — each cpu.Machine owns its memory, caches and predictors —
// so the harness fans jobs out over a worker pool and memoises results in a
// keyed run-cache. Results are keyed by job index, never by completion
// order, so the parallel harness is observationally identical to the
// sequential one.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"loopfrog/internal/asm"
	"loopfrog/internal/cpu"
	"loopfrog/internal/workloads"
)

// Job is one simulation request: run prog on cfg.
type Job struct {
	Cfg  cpu.Config
	Prog *asm.Program

	// Ckpt, when non-nil, seeds the machine from a tier-1 checkpoint
	// (cpu.NewMachineFromCheckpoint) instead of a cold boot: a sampled window.
	// The checkpoint's position and warm-state shape extend the cache key — a
	// window never shares a slot with a cold-boot run of the same config.
	Ckpt *cpu.Checkpoint

	// Faults is a deterministic fault-injection spec (internal/fault
	// grammar, e.g. "all" or "conflict=0.05,kill"); "" or "none" runs clean.
	// Seed seeds the plan's per-kind random streams. Both are part of the
	// run-cache key: an injected run never shares a slot with a clean one.
	Faults string
	Seed   int64

	// Timeout bounds the job's wall-clock time; 0 means no deadline. A
	// deadline only decides whether the job completes — never its result —
	// so it is excluded from the cache key.
	Timeout time.Duration

	// Observe, when non-nil, is invoked with the machine just before each
	// actual simulation attempt, letting callers attach telemetry or progress
	// hooks (cpu.SnapshotStats works concurrently while the run proceeds).
	// It is not part of the cache key and fires only for runs that execute:
	// a cache hit, a singleflight join, or a quarantined key never observes
	// a machine, and a panic retry observes the fresh machine again.
	Observe func(*cpu.Machine)
}

// Harness schedules simulation jobs over a worker pool with an optional
// shared run-cache. The zero value runs with GOMAXPROCS workers and no
// cache; NewHarness returns one wired to a fresh cache.
type Harness struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache memoises and deduplicates runs; nil disables caching.
	Cache *RunCache

	// Scheduling telemetry (Stats). Per-job wall time is measured around the
	// cache, so a cache hit counts its (tiny) service time, not a simulation.
	batches     atomic.Uint64
	jobs        atomic.Uint64
	jobNanos    atomic.Int64
	maxJobNanos atomic.Int64
	wallNanos   atomic.Int64

	// Crash-proofing telemetry and state (safety.go). quarantined holds the
	// job keys whose runs panicked twice; they fail fast with ErrQuarantined.
	panics      atomic.Uint64
	retries     atomic.Uint64
	quarantines atomic.Uint64
	timeouts    atomic.Uint64
	quarantined sync.Map // job key -> struct{}{}
}

// HarnessStats is a snapshot of the harness's scheduling telemetry.
type HarnessStats struct {
	// Batches counts RunJobs invocations; Jobs counts jobs scheduled.
	Batches uint64
	Jobs    uint64
	// JobNanos is the summed per-job wall time; MaxJobNanos the longest
	// single job; WallNanos the summed batch wall time.
	JobNanos    int64
	MaxJobNanos int64
	WallNanos   int64
	// Workers is the configured pool size.
	Workers int
	// Utilization is JobNanos / (Workers x WallNanos): the fraction of the
	// pool's capacity spent inside jobs (1.0 = perfectly packed).
	Utilization float64
	// Crash-proofing counters: recovered worker panics, panic retries, keys
	// quarantined after a panicking retry, and per-job deadline expiries.
	Panics      uint64
	Retries     uint64
	Quarantined uint64
	Timeouts    uint64
	// Run-cache counters (zero when no cache is attached). CacheFailures
	// counts errored runs evicted instead of cached; CacheEvictions counts
	// completed entries displaced by the LRU bound (CacheCapacity, 0 =
	// unbounded).
	CacheHits        uint64
	CacheFlightJoins uint64
	CacheMisses      uint64
	CacheFailures    uint64
	CacheEvictions   uint64
	CacheEntries     uint64
	CacheCapacity    uint64
}

// Stats snapshots the harness's scheduling and cache telemetry.
func (h *Harness) Stats() HarnessStats {
	s := HarnessStats{
		Batches:     h.batches.Load(),
		Jobs:        h.jobs.Load(),
		JobNanos:    h.jobNanos.Load(),
		MaxJobNanos: h.maxJobNanos.Load(),
		WallNanos:   h.wallNanos.Load(),
		Workers:     h.workers(),
		Panics:      h.panics.Load(),
		Retries:     h.retries.Load(),
		Quarantined: h.quarantines.Load(),
		Timeouts:    h.timeouts.Load(),
	}
	if cap := float64(s.Workers) * float64(s.WallNanos); cap > 0 {
		s.Utilization = float64(s.JobNanos) / cap
	}
	if c := h.Cache; c != nil {
		s.CacheHits = c.Hits()
		s.CacheFlightJoins = c.FlightJoins()
		s.CacheMisses = c.Misses()
		s.CacheFailures = c.Failures()
		s.CacheEvictions = c.Evictions()
		s.CacheEntries = uint64(c.Len())
		if cap := c.Capacity(); cap > 0 {
			s.CacheCapacity = uint64(cap)
		}
	}
	return s
}

// NewHarness returns a harness with GOMAXPROCS workers and a fresh cache.
func NewHarness() *Harness {
	return &Harness{Cache: NewRunCache()}
}

// defaultHarness backs the package-level entry points: every core drives the
// pool, and one process-wide cache deduplicates the shared baselines across
// experiments, sweeps, and repeated benchmark iterations.
var defaultHarness atomic.Pointer[Harness]

func init() {
	defaultHarness.Store(NewHarness())
}

// DefaultHarness returns the harness behind the package-level RunSuite,
// Compare, and RunJobs.
func DefaultHarness() *Harness { return defaultHarness.Load() }

// SetParallelism caps the default harness's worker pool (the -parallel flag
// of the drivers); n <= 0 restores the GOMAXPROCS default. The shared cache
// is kept.
func SetParallelism(n int) {
	defaultHarness.Store(&Harness{Workers: n, Cache: DefaultHarness().Cache})
}

func (h *Harness) workers() int {
	if h.Workers > 0 {
		return h.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runOne executes a single job through the quarantine check and the cache
// when one is attached. The actual simulation happens in execute (safety.go),
// which recovers panics and enforces the job deadline; ctx cancellation stops
// the machine mid-run and releases singleflight joiners immediately.
func (h *Harness) runOne(ctx context.Context, j Job) (*cpu.Stats, error) {
	start := time.Now()
	defer func() {
		d := int64(time.Since(start))
		h.jobs.Add(1)
		h.jobNanos.Add(d)
		for {
			old := h.maxJobNanos.Load()
			if d <= old || h.maxJobNanos.CompareAndSwap(old, d) {
				break
			}
		}
	}()
	key := jobKey(j)
	if _, bad := h.quarantined.Load(key); bad {
		return nil, fmt.Errorf("%w (program %s)", ErrQuarantined, j.Prog.Name)
	}
	if h.Cache != nil {
		return h.Cache.DoContext(ctx, key, func() (*cpu.Stats, error) { return h.execute(ctx, key, j) })
	}
	return h.execute(ctx, key, j)
}

// RunJobsErrs executes all jobs over the pool and returns stats and errors
// indexed exactly like jobs. It never stops early: a job that fails — or
// panics, or exceeds its deadline — yields its own error while every other
// job still runs to completion, so a sweep always produces the partial
// result set it can.
func (h *Harness) RunJobsErrs(jobs []Job) ([]*cpu.Stats, []error) {
	return h.RunJobsCtx(context.Background(), jobs)
}

// RunJobsCtx is RunJobsErrs under a context: when ctx is cancelled (a client
// disconnect, a server drain), every in-flight machine stops at its next
// cancellation poll, jobs waiting on someone else's singleflight run stop
// waiting, and jobs not yet started fail fast with the context error. The
// call always returns with every worker goroutine finished — cancellation
// can never leak a runner.
func (h *Harness) RunJobsCtx(ctx context.Context, jobs []Job) ([]*cpu.Stats, []error) {
	batchStart := time.Now()
	h.batches.Add(1)
	defer func() { h.wallNanos.Add(int64(time.Since(batchStart))) }()
	out := make([]*cpu.Stats, len(jobs))
	errs := make([]error, len(jobs))
	runOne := func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = fmt.Errorf("sim: job not started: %w", err)
			return
		}
		out[i], errs[i] = h.runOne(ctx, jobs[i])
	}
	n := h.workers()
	if n > len(jobs) {
		n = len(jobs)
	}
	if n <= 1 {
		for i := range jobs {
			runOne(i)
		}
		return out, errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	return out, errs
}

// RunJobs executes all jobs and returns their statistics indexed exactly
// like jobs. If any job fails, the error of the lowest-indexed failing job
// is returned (deterministic regardless of completion order) along with the
// full results slice; a failed job's slot holds whatever partial Stats its
// run produced.
func (h *Harness) RunJobs(jobs []Job) ([]*cpu.Stats, error) {
	out, errs := h.RunJobsErrs(jobs)
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Compare runs a benchmark under cfg and its derived baseline, scheduling
// both runs concurrently.
func (h *Harness) Compare(cfg cpu.Config, b *workloads.Benchmark) (*Result, error) {
	res, err := h.RunSuite(cfg, []*workloads.Benchmark{b})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// RunSuite compares every benchmark in the suite under cfg, fanning the
// baseline and LoopFrog runs of all benchmarks out over the worker pool.
// Results are ordered like the suite.
func (h *Harness) RunSuite(cfg cpu.Config, suite []*workloads.Benchmark) ([]*Result, error) {
	base := BaselineOf(cfg)
	jobs := make([]Job, 0, 2*len(suite))
	for _, b := range suite {
		prog, err := b.Program()
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, Job{Cfg: base, Prog: prog}, Job{Cfg: cfg, Prog: prog})
	}
	stats, errs := h.RunJobsErrs(jobs)
	out := make([]*Result, len(suite))
	for i, b := range suite {
		if err := errs[2*i]; err != nil {
			return nil, fmt.Errorf("sim: %s baseline: %w", b.Name, err)
		}
		if err := errs[2*i+1]; err != nil {
			return nil, fmt.Errorf("sim: %s loopfrog: %w", b.Name, err)
		}
		bs, ls := stats[2*i], stats[2*i+1]
		if bs.ArchInsts != ls.ArchInsts {
			return nil, fmt.Errorf("sim: %s: baseline committed %d insts but LoopFrog %d — sequential semantics violated",
				b.Name, bs.ArchInsts, ls.ArchInsts)
		}
		out[i] = &Result{Bench: b, Base: bs, LF: ls}
	}
	return out, nil
}
