package sim

// Crash-proofing for the evaluation harness. A simulation worker must never
// take a sweep down: panics out of the machine (model bugs, injected chaos
// panics) are recovered into per-job PanicErrors, panicking jobs are retried
// once and quarantined on a repeat offence, and per-job wall-clock deadlines
// are enforced through the machine's context support. The rest of a sweep
// always completes and reports per-job errors (RunJobsErrs).

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"loopfrog/internal/cpu"
	"loopfrog/internal/fault"
)

// PanicError is a panic recovered from a simulation worker: the panic value
// plus the goroutine stack captured at the recovery point. The harness
// converts worker panics into per-job errors so one crashing job cannot take
// down a whole sweep.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: worker panic: %v\n%s", e.Value, e.Stack)
}

// ErrQuarantined marks a job whose key panicked on both its first run and its
// retry: the harness refuses to execute it again for the harness's lifetime.
var ErrQuarantined = errors.New("sim: job quarantined after repeated panics")

// isPanic reports whether err is (or wraps) a recovered worker panic.
func isPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// execute runs one job with the crash-proofing policy: recover panics into
// errors, retry a panicking job once (panics can be order-dependent under a
// parallel sweep), and quarantine the key if the deterministic re-run panics
// too. key is the job's cache key, shared with the quarantine set.
func (h *Harness) execute(ctx context.Context, key string, j Job) (*cpu.Stats, error) {
	st, err := h.attempt(ctx, j)
	if !isPanic(err) {
		return st, err
	}
	h.panics.Add(1)
	h.retries.Add(1)
	st, err = h.attempt(ctx, j)
	if isPanic(err) {
		h.panics.Add(1)
		h.quarantines.Add(1)
		h.quarantined.Store(key, struct{}{})
	}
	return st, err
}

// attempt is one guarded simulation: machine construction, optional fault
// plan, the caller's context merged with the optional per-job deadline. It
// never panics; a panic anywhere inside the machine surfaces as a
// *PanicError.
func (h *Harness) attempt(ctx context.Context, j Job) (st *cpu.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	var m *cpu.Machine
	if j.Ckpt != nil {
		m, err = cpu.NewMachineFromCheckpoint(j.Cfg, j.Prog, j.Ckpt)
	} else {
		m, err = cpu.NewMachine(j.Cfg, j.Prog)
	}
	if err != nil {
		return nil, err
	}
	if j.Faults != "" {
		plan, perr := fault.Parse(j.Faults, j.Seed)
		if perr != nil {
			return nil, perr
		}
		if plan != nil {
			m.SetFaultInjector(plan)
		}
	}
	if j.Observe != nil {
		j.Observe(m)
	}
	runCtx := ctx
	if j.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, j.Timeout)
		defer cancel()
	}
	st, err = m.RunContext(runCtx)
	// A deadline expiry is the job's own timeout only when the caller's
	// context is still live — a cancelled or expired caller context is a
	// cancellation, reported as such.
	if errors.Is(err, context.DeadlineExceeded) && j.Timeout > 0 && ctx.Err() == nil {
		h.timeouts.Add(1)
		err = fmt.Errorf("sim: job deadline (%v) exceeded: %w", j.Timeout, err)
	}
	return st, err
}

// jobKey extends the run-cache key with the job's fault plan and sampled-run
// identity: an injected run and a clean run of the same (config, program) are
// different simulations and must never share a cache slot, and a sampled
// window seeded from a checkpoint must never share one with a cold-boot run.
// The window's own shape (Config.MaxArchInsts, Config.WarmupInsts) is already
// part of CacheKey through the config rendering; the checkpoint contributes
// its position and which warm state it carries — tier-1 state at instruction
// K is deterministic given the program and the warming configuration (both
// already in the key), so position-plus-shape identifies it completely.
// Timeout is deliberately excluded — a deadline changes whether a job
// completes, never its result, and failed runs are not cached anyway.
func jobKey(j Job) string {
	key := CacheKey(j.Cfg, j.Prog)
	if j.Faults != "" && j.Faults != "none" {
		key += fmt.Sprintf("|faults=%s|seed=%d", j.Faults, j.Seed)
	}
	if j.Ckpt != nil {
		key += fmt.Sprintf("|ckpt=%d,bp=%t,hier=%t,lf=%t,region=%d",
			j.Ckpt.Insts, j.Ckpt.BP != nil, j.Ckpt.Hier != nil,
			j.Ckpt.Mon != nil || j.Ckpt.Pack != nil, j.Ckpt.Region)
	}
	return key
}
