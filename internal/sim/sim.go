// Package sim is the evaluation harness: it runs benchmark programs on
// baseline and LoopFrog configurations, computes speedups, and aggregates
// suite-level statistics the way the paper does (§6.1).
package sim

import (
	"math"

	"loopfrog/internal/asm"
	"loopfrog/internal/cpu"
	"loopfrog/internal/workloads"
)

// BaselineOf derives the paper's baseline run from a LoopFrog configuration:
// the identical core with hints treated as NOPs (one threadlet context).
func BaselineOf(cfg cpu.Config) cpu.Config {
	base := cfg
	base.Threadlets = 1
	base.Pack.Enabled = false
	return base
}

// Run executes prog on cfg and returns the statistics.
func Run(cfg cpu.Config, prog *asm.Program) (*cpu.Stats, error) {
	m, err := cpu.NewMachine(cfg, prog)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// Result is one benchmark's A/B outcome.
type Result struct {
	Bench *workloads.Benchmark
	Base  *cpu.Stats
	LF    *cpu.Stats
}

// RegionSpeedup returns baseline cycles / LoopFrog cycles over the simulated
// (loop-region) part of the benchmark.
func (r *Result) RegionSpeedup() float64 {
	if r.LF.Cycles == 0 {
		return 0
	}
	return float64(r.Base.Cycles) / float64(r.LF.Cycles)
}

// Speedup returns the whole-program speedup: the simulated loop region
// combined with the benchmark's unaccelerated sequential remainder
// (SeqTimeRatio x the baseline region time), the same phase-weighted
// run-time estimation the paper performs with SimPoint data (§6.1).
func (r *Result) Speedup() float64 {
	f := r.Bench.SeqTimeRatio
	b := float64(r.Base.Cycles)
	l := float64(r.LF.Cycles)
	if l+f*b == 0 {
		return 0
	}
	return b * (1 + f) / (l + f*b)
}

// LFTimeShare returns the fraction of LoopFrog whole-program time spent in
// the simulated region; per-region statistics (threadlet occupancy, commit
// attribution) dilute by this share when reported program-wide.
func (r *Result) LFTimeShare() float64 {
	f := r.Bench.SeqTimeRatio
	b := float64(r.Base.Cycles)
	l := float64(r.LF.Cycles)
	if l+f*b == 0 {
		return 0
	}
	return l / (l + f*b)
}

// Compare runs a benchmark under cfg and its derived baseline on the default
// harness: both runs are scheduled over the shared worker pool and memoised
// in the process-wide run-cache.
func Compare(cfg cpu.Config, b *workloads.Benchmark) (*Result, error) {
	return DefaultHarness().Compare(cfg, b)
}

// RunSuite compares every benchmark in the suite under cfg on the default
// harness, fanning all runs out over the worker pool. Results are ordered
// like the suite and are identical to a sequential one-benchmark-at-a-time
// evaluation.
func RunSuite(cfg cpu.Config, suite []*workloads.Benchmark) ([]*Result, error) {
	return DefaultHarness().RunSuite(cfg, suite)
}

// RunJobs executes arbitrary (config, program) jobs on the default harness;
// see Harness.RunJobs.
func RunJobs(jobs []Job) ([]*cpu.Stats, error) {
	return DefaultHarness().RunJobs(jobs)
}

// Geomean returns the geometric mean of xs (1.0 for empty input).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeomeanSpeedup aggregates suite results the way the paper reports
// whole-suite numbers.
func GeomeanSpeedup(results []*Result) float64 {
	xs := make([]float64, 0, len(results))
	for _, r := range results {
		xs = append(xs, r.Speedup())
	}
	return Geomean(xs)
}
