package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"loopfrog/internal/cpu"
	"loopfrog/internal/workloads"
)

// stub returns a run function that produces a distinguishable Stats value.
func stub(cycles int64) func() (*cpu.Stats, error) {
	return func() (*cpu.Stats, error) { return &cpu.Stats{Cycles: cycles}, nil }
}

// TestCacheLRUBound: the cache never holds more completed entries than its
// capacity, evicts in least-recently-used order, and a hit refreshes recency.
func TestCacheLRUBound(t *testing.T) {
	c := NewBoundedRunCache(2)
	for i := 1; i <= 3; i++ {
		if _, err := c.Do(fmt.Sprintf("k%d", i), stub(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 2 {
		t.Errorf("resident entries = %d, want 2", n)
	}
	if ev := c.Evictions(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	// k1 was the least recently used: re-requesting it must re-execute.
	misses := c.Misses()
	if _, err := c.Do("k1", stub(1)); err != nil {
		t.Fatal(err)
	}
	if c.Misses() != misses+1 {
		t.Error("evicted key k1 was served from the cache")
	}
	// Now k3 is LRU-adjacent to k1; touching k3 then inserting k4 must evict
	// k1 again (k3 was refreshed), keeping k3 and k4 resident.
	if st, err := c.Do("k3", stub(99)); err != nil || st.Cycles != 3 {
		t.Fatalf("k3 hit: stats=%v err=%v, want cached Cycles=3", st, err)
	}
	if _, err := c.Do("k4", stub(4)); err != nil {
		t.Fatal(err)
	}
	misses = c.Misses()
	if st, err := c.Do("k3", stub(99)); err != nil || st.Cycles != 3 || c.Misses() != misses {
		t.Errorf("recently touched k3 was evicted (stats=%v err=%v misses %d→%d)", st, err, misses, c.Misses())
	}
	if _, err := c.Do("k1", stub(1)); err != nil {
		t.Fatal(err)
	}
	if c.Misses() == misses {
		t.Error("k1 survived although it was the least recently used entry")
	}
}

// TestCacheSetCapacity: shrinking the bound evicts down immediately; a
// non-positive capacity means unbounded.
func TestCacheSetCapacity(t *testing.T) {
	c := NewBoundedRunCache(0)
	for i := 0; i < 8; i++ {
		if _, err := c.Do(fmt.Sprintf("k%d", i), stub(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 8 {
		t.Fatalf("unbounded cache evicted: len=%d, want 8", n)
	}
	c.SetCapacity(3)
	if n := c.Len(); n != 3 {
		t.Errorf("after SetCapacity(3): len=%d, want 3", n)
	}
	if ev := c.Evictions(); ev != 5 {
		t.Errorf("evictions = %d, want 5", ev)
	}
	if got := c.Capacity(); got != 3 {
		t.Errorf("capacity = %d, want 3", got)
	}
}

// TestDefaultCacheIsBounded: NewRunCache (the harness default) carries the
// default capacity, so a long-lived process cannot grow the cache without
// limit.
func TestDefaultCacheIsBounded(t *testing.T) {
	if got := NewRunCache().Capacity(); got != DefaultCacheCapacity {
		t.Errorf("NewRunCache capacity = %d, want %d", got, DefaultCacheCapacity)
	}
	st := (&Harness{Cache: NewRunCache()}).Stats()
	if st.CacheCapacity != DefaultCacheCapacity {
		t.Errorf("HarnessStats.CacheCapacity = %d, want %d", st.CacheCapacity, DefaultCacheCapacity)
	}
}

// TestCancelledJoinerDoesNotBlock: a joiner whose context dies while someone
// else's identical run is in flight returns immediately with the context
// error instead of blocking until the flight lands.
func TestCancelledJoinerDoesNotBlock(t *testing.T) {
	c := NewRunCache()
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Do("slow", func() (*cpu.Stats, error) {
			close(started)
			<-release
			return &cpu.Stats{Cycles: 1}, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := c.DoContext(ctx, "slow", stub(1))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("joiner err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled joiner blocked on the in-flight run")
	}
	close(release)
	// The abandoned flight still completes and is cached for later callers.
	if st, err := c.Do("slow", stub(2)); err != nil || st.Cycles != 1 {
		t.Errorf("flight result lost after joiner cancellation: stats=%v err=%v", st, err)
	}
}

// TestRunJobsCtxCancelNoLeak: cancelling a batch mid-run stops every machine
// promptly, fails unstarted jobs fast, and leaves no worker or joiner
// goroutine behind.
func TestRunJobsCtxCancelNoLeak(t *testing.T) {
	prog := workloads.ByName(workloads.CPU2017(), "deepsjeng").MustProgram()
	jobs := make([]Job, 8)
	for i := range jobs {
		cfg := cpu.DefaultConfig()
		cfg.MaxCycles = defaultMaxCycles + int64(i) // distinct cache keys
		jobs[i] = Job{Cfg: cfg, Prog: prog}
	}
	before := runtime.NumGoroutine()
	h := &Harness{Workers: 4, Cache: NewRunCache()}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, errs := h.RunJobsCtx(ctx, jobs)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled batch took %v to return", elapsed)
	}
	cancelled := 0
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no job reported the cancellation")
	}
	// Goroutines must drain back to (near) the pre-batch level; allow slack
	// for runtime helpers and retry briefly since exits are asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
