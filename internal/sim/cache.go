package sim

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"loopfrog/internal/asm"
	"loopfrog/internal/core"
	"loopfrog/internal/cpu"
)

// defaultMaxCycles mirrors the cpu.Machine default so that a zero MaxCycles
// and an explicit 200M produce the same cache key.
const defaultMaxCycles = 200_000_000

// CanonicalConfig normalises a configuration to its behavioural equivalence
// class: two configs with equal canonical forms produce bit-identical Stats
// for every program. Beyond the normalisations cpu.NewMachine itself applies
// (SSB slice count, the MaxCycles default), a single-context run never
// spawns a threadlet, so the entire LoopFrog apparatus — SSB geometry,
// packing, region monitor, conflict detector — is inert and is erased from
// the key. This is what lets every sweep point of Figures 9/10 and the
// associativity study share one baseline simulation.
func CanonicalConfig(cfg cpu.Config) cpu.Config {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = defaultMaxCycles
	}
	cfg.Watchdog = cfg.Watchdog.Normalized()
	cfg.SSB.Slices = cfg.Threadlets
	if cfg.Threadlets == 1 {
		cfg.SSB = core.SSBConfig{}
		cfg.Pack = core.PackConfig{}
		cfg.Monitor = core.MonitorConfig{}
		cfg.BloomBits, cfg.BloomHashes = 0, 0
		cfg.ConflictCheckLatency = 0
		cfg.SpawnLatency = 0
	}
	return cfg
}

// CacheKey returns the run-cache key for a (config, program) job: the
// program's content fingerprint joined with the canonicalised config rendered
// field-by-field. Config structs are plain data, so the %+v rendering is a
// complete, deterministic fingerprint with no collision risk from hashing.
func CacheKey(cfg cpu.Config, prog *asm.Program) string {
	return prog.Fingerprint() + "|" + fmt.Sprintf("%+v", CanonicalConfig(cfg))
}

// Fingerprint returns a short, stable hex fingerprint of the run-cache key
// for (cfg, prog). It is the job's routing identity in the distributed fabric
// — the consistent-hash ring keys on it so identical (program, config) jobs
// land on the worker that already has the run cached — and the debuggable
// form surfaced in job-accepted responses and SSE progress events.
func Fingerprint(cfg cpu.Config, prog *asm.Program) string {
	sum := sha256.Sum256([]byte(CacheKey(cfg, prog)))
	return hex.EncodeToString(sum[:8])
}

// cacheEntry is one singleflight slot: the first arrival runs the simulation
// and closes done; everyone else blocks on done and copies the result.
type cacheEntry struct {
	key   string
	done  chan struct{}
	stats cpu.Stats
	err   error
	// elem is the entry's LRU list node, linked (under RunCache.mu) once the
	// run completes successfully; nil while the entry is still in flight.
	elem *list.Element
}

// DefaultCacheCapacity bounds a NewRunCache by default: large enough that
// every sweep in the repo's experiment set fits with room to spare, small
// enough that a long-lived process (a serving daemon, a day of sweeps) cannot
// grow without limit. One entry holds a cpu.Stats (~1 KiB), so the default
// bound costs at most a few MiB.
const DefaultCacheCapacity = 4096

// RunCache memoises simulation results keyed by CacheKey. A sweep that
// re-simulates its baseline at every point, or a benchmark suite that runs
// the same (config, program) pair from several experiments, pays for one
// simulation; concurrent requests for the same key are deduplicated in
// flight (singleflight), so a parallel sweep never runs the shared baseline
// twice. Stats are stored by value and returned as fresh copies, so callers
// may not corrupt each other. Failed runs are never retained: the error is
// delivered to the caller and every in-flight joiner, then the entry is
// evicted, so a transient failure (a timeout, a worker panic) cannot poison
// every later request for the key.
//
// The cache is bounded: completed entries form an LRU list and the least
// recently used one is evicted when the resident count exceeds the capacity.
// In-flight entries are never evicted (their population is bounded by the
// worker pool), and an evicted key simply re-simulates on next use. The zero
// value is ready to use and unbounded; NewRunCache applies
// DefaultCacheCapacity.
type RunCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// lru holds completed entries, most recently used at the front.
	lru      list.List
	capacity int

	// Counters, readable while the cache is in use.
	hits      atomic.Uint64 // completed-entry hits
	flight    atomic.Uint64 // singleflight joins (entry still running)
	misses    atomic.Uint64 // simulations actually executed
	failures  atomic.Uint64 // errored runs evicted instead of cached
	evictions atomic.Uint64 // completed entries displaced by the LRU bound
}

// NewRunCache returns an empty run cache bounded at DefaultCacheCapacity.
func NewRunCache() *RunCache { return &RunCache{capacity: DefaultCacheCapacity} }

// NewBoundedRunCache returns an empty run cache holding at most capacity
// completed entries; capacity <= 0 means unbounded.
func NewBoundedRunCache(capacity int) *RunCache { return &RunCache{capacity: capacity} }

// SetCapacity changes the LRU bound (<= 0 means unbounded) and immediately
// evicts down to it.
func (c *RunCache) SetCapacity(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	c.evictOverLocked()
}

// Capacity returns the LRU bound (0 = unbounded).
func (c *RunCache) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// evictOverLocked drops least-recently-used completed entries until the
// resident count fits the capacity. Caller holds c.mu.
func (c *RunCache) evictOverLocked() {
	if c.capacity <= 0 {
		return
	}
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.evictions.Add(1)
	}
}

// Run returns the memoised result for (cfg, prog), simulating on first use.
func (c *RunCache) Run(cfg cpu.Config, prog *asm.Program) (*cpu.Stats, error) {
	return c.Do(CacheKey(cfg, prog), func() (*cpu.Stats, error) { return Run(cfg, prog) })
}

// Do returns the memoised result for key, invoking run on first use.
// Concurrent callers with the same key share one invocation (singleflight).
// See DoContext.
func (c *RunCache) Do(key string, run func() (*cpu.Stats, error)) (*cpu.Stats, error) {
	return c.DoContext(context.Background(), key, run)
}

// DoContext returns the memoised result for key, invoking run on first use.
// Concurrent callers with the same key share one invocation (singleflight).
// Only successful results are cached; a failure is evicted before the flight
// is released, so the next identical request re-executes. If run panics, the
// panic is recovered into a PanicError — the flight channel always closes, so
// joiners can never deadlock on a crashed runner.
//
// A joiner that is cancelled while an in-flight run proceeds returns the
// context error immediately instead of blocking until the flight lands: a
// disconnected client never pins a goroutine to someone else's simulation.
// The flight itself is owned by its first caller and is not cancelled by a
// joiner's context.
func (c *RunCache) DoContext(ctx context.Context, key string, run func() (*cpu.Stats, error)) (*cpu.Stats, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[string]*cacheEntry)
	}
	if e, ok := c.entries[key]; ok {
		if e.elem != nil { // completed: a plain hit
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			c.hits.Add(1)
			st := e.stats
			return &st, e.err
		}
		c.mu.Unlock()
		c.flight.Add(1)
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, fmt.Errorf("sim: abandoned in-flight run: %w", ctx.Err())
		}
		st := e.stats
		return &st, e.err
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	func() {
		defer func() {
			if r := recover(); r != nil {
				e.err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		var st *cpu.Stats
		st, e.err = run()
		if st != nil {
			e.stats = *st
		}
	}()
	c.mu.Lock()
	if e.err != nil {
		c.failures.Add(1)
		delete(c.entries, key)
	} else {
		e.elem = c.lru.PushFront(e)
		c.evictOverLocked()
	}
	c.mu.Unlock()
	close(e.done)
	out := e.stats
	return &out, e.err
}

// Hits returns the number of requests served from a completed entry.
func (c *RunCache) Hits() uint64 { return c.hits.Load() }

// FlightJoins returns the number of requests that joined an in-flight
// simulation instead of starting their own (singleflight deduplication).
func (c *RunCache) FlightJoins() uint64 { return c.flight.Load() }

// Misses returns the number of simulations actually executed.
func (c *RunCache) Misses() uint64 { return c.misses.Load() }

// Failures returns the number of errored runs evicted instead of cached.
func (c *RunCache) Failures() uint64 { return c.failures.Load() }

// Evictions returns the number of completed entries displaced by the LRU
// capacity bound.
func (c *RunCache) Evictions() uint64 { return c.evictions.Load() }

// Len returns the number of distinct keys resident in the cache.
func (c *RunCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
