package fabric

import (
	"fmt"
	"testing"
)

func keysFor(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("fingerprint-%04x", i)
	}
	return keys
}

func TestRingLookupDeterministicAndDistinct(t *testing.T) {
	r := NewRing(0)
	for _, id := range []string{"w1", "w2", "w3"} {
		r.Add(id)
	}
	for _, key := range keysFor(64) {
		home := r.Lookup(key)
		if home == "" {
			t.Fatalf("Lookup(%q) empty on populated ring", key)
		}
		if again := r.Lookup(key); again != home {
			t.Fatalf("Lookup(%q) unstable: %q then %q", key, home, again)
		}
		order := r.LookupN(key, 3)
		if len(order) != 3 || order[0] != home {
			t.Fatalf("LookupN(%q, 3) = %v, want 3 distinct starting at %q", key, order, home)
		}
		seen := map[string]bool{}
		for _, id := range order {
			if seen[id] {
				t.Fatalf("LookupN(%q) repeated %q: %v", key, id, order)
			}
			seen[id] = true
		}
	}
}

func TestRingRemovalMovesOnlyTheDeadArc(t *testing.T) {
	r := NewRing(0)
	for _, id := range []string{"w1", "w2", "w3"} {
		r.Add(id)
	}
	keys := keysFor(2000)
	before := make(map[string]string, len(keys))
	for _, key := range keys {
		before[key] = r.Lookup(key)
	}
	r.Remove("w2")
	moved := 0
	for _, key := range keys {
		after := r.Lookup(key)
		switch {
		case before[key] == "w2":
			if after == "w2" {
				t.Fatalf("key %q still routes to removed worker", key)
			}
			moved++
		case after != before[key]:
			t.Fatalf("key %q was homed on surviving %q but moved to %q — removal must only move the dead arc", key, before[key], after)
		}
	}
	if moved == 0 {
		t.Fatal("no keys were homed on w2; distribution is broken")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	workers := []string{"w1", "w2", "w3"}
	for _, id := range workers {
		r.Add(id)
	}
	counts := map[string]int{}
	keys := keysFor(9000)
	for _, key := range keys {
		counts[r.Lookup(key)]++
	}
	for _, id := range workers {
		share := float64(counts[id]) / float64(len(keys))
		if share < 0.20 || share > 0.47 {
			t.Errorf("worker %s holds %.0f%% of keys; want roughly a third (counts %v)", id, share*100, counts)
		}
	}
}

func TestRingAddIsIdempotentAndRejoinRestores(t *testing.T) {
	r := NewRing(0)
	r.Add("w1")
	r.Add("w2")
	home := r.Lookup("some-key")
	r.Add("w1") // duplicate
	if got := r.Lookup("some-key"); got != home {
		t.Fatalf("duplicate Add changed routing: %q -> %q", home, got)
	}
	r.Remove("w1")
	r.Add("w1") // rejoin
	if got := r.Lookup("some-key"); got != home {
		t.Fatalf("remove+rejoin changed routing: %q -> %q", home, got)
	}
	if n := r.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}
