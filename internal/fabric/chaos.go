package fabric

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"loopfrog/internal/fault"
)

// Fabric chaos: seeded, deterministic injection of the three distributed
// failure modes — worker kill (permanent transport death), partition
// (transient unreachability window), and delay (added request latency) — at
// the coordinator's HTTP transport, below every retry/hedge/requeue
// mechanism, so chaos exercises exactly the code paths real failures take.
//
// Decisions draw from independent per-kind streams derived with
// fault.StreamSeed from one base seed, mirroring internal/fault's design:
// one -chaos-seed reproduces the whole failure schedule. What stays
// deterministic under chaos is the *result set* — simulations are pure, so
// however many workers die mid-sweep, every job that completes returns
// byte-identical results to a clean single-node run; chaos_test.go holds the
// fabric to that.

// chaosKind enumerates the injectable fabric failures.
type chaosKind int

const (
	chaosKill chaosKind = iota
	chaosPartition
	chaosDelay
	numChaosKinds
)

// chaosLaneBase offsets fabric chaos lanes away from internal/fault's kind
// lanes, so a shared base seed still yields independent streams.
const chaosLaneBase = 32

var chaosInfo = [numChaosKinds]struct {
	name string
	def  float64 // per-request probability
}{
	chaosKill:      {"kill", 0.002},
	chaosPartition: {"partition", 0.01},
	chaosDelay:     {"delay", 0.05},
}

// Chaos injects deterministic worker failures into the coordinator's
// transports. Plug it in via Config.WrapTransport. Safe for concurrent use.
type Chaos struct {
	spec string
	seed int64

	mu          sync.Mutex
	prob        [numChaosKinds]float64
	rng         [numChaosKinds]*rand.Rand
	counts      [numChaosKinds]uint64
	killed      map[string]bool
	partitioned map[string]time.Time
}

// ParseChaos builds a chaos plan from a spec with the same grammar as
// internal/fault specs:
//
//	spec  := "" | "none" | entry ("," entry)*
//	entry := name [ "=" probability ]      probability in (0, 1]
//	name  := "all" | "kill" | "partition" | "delay"
//
// Probabilities are per coordinator->worker request (probes included).
// "all" enables every kind at its default; an empty or "none" spec returns
// a nil plan (no injection).
func ParseChaos(spec string, seed int64) (*Chaos, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	c := &Chaos{
		spec:        spec,
		seed:        seed,
		killed:      make(map[string]bool),
		partitioned: make(map[string]time.Time),
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("fabric: empty entry in chaos spec %q", spec)
		}
		name, probStr, hasProb := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if name == "all" {
			if hasProb {
				return nil, fmt.Errorf("fabric: %q takes no probability (override kinds individually)", entry)
			}
			for k := chaosKind(0); k < numChaosKinds; k++ {
				c.prob[k] = chaosInfo[k].def
			}
			continue
		}
		k := chaosKind(-1)
		for i := chaosKind(0); i < numChaosKinds; i++ {
			if chaosInfo[i].name == name {
				k = i
				break
			}
		}
		if k < 0 {
			return nil, fmt.Errorf("fabric: unknown chaos kind %q (want all, kill, partition, delay)", name)
		}
		prob := chaosInfo[k].def
		if hasProb {
			v, err := strconv.ParseFloat(strings.TrimSpace(probStr), 64)
			if err != nil {
				return nil, fmt.Errorf("fabric: bad probability in %q: %v", entry, err)
			}
			if v <= 0 || v > 1 {
				return nil, fmt.Errorf("fabric: probability in %q outside (0,1]", entry)
			}
			prob = v
		}
		c.prob[k] = prob
	}
	for k := chaosKind(0); k < numChaosKinds; k++ {
		if c.prob[k] > 0 {
			c.rng[k] = rand.New(rand.NewSource(fault.StreamSeed(seed, chaosLaneBase+int(k))))
		}
	}
	return c, nil
}

// WrapTransport is the Config.WrapTransport hook: every request to workerID
// first consults the chaos plan.
func (c *Chaos) WrapTransport(workerID string, base http.RoundTripper) http.RoundTripper {
	return &chaosTransport{chaos: c, worker: workerID, base: base}
}

// Kill marks a worker permanently dead, for tests that need a failure at an
// exact moment rather than a sampled one.
func (c *Chaos) Kill(workerID string) {
	c.mu.Lock()
	c.killed[workerID] = true
	c.counts[chaosKill]++
	c.mu.Unlock()
}

// Revive clears a worker's killed/partitioned marks.
func (c *Chaos) Revive(workerID string) {
	c.mu.Lock()
	delete(c.killed, workerID)
	delete(c.partitioned, workerID)
	c.mu.Unlock()
}

// String summarises the plan and its injection counters.
func (c *Chaos) String() string {
	if c == nil {
		return "chaos: none"
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var parts []string
	for k := chaosKind(0); k < numChaosKinds; k++ {
		if c.counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", chaosInfo[k].name, c.counts[k]))
		}
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return fmt.Sprintf("chaos[%s seed=%d]: none fired", c.spec, c.seed)
	}
	return fmt.Sprintf("chaos[%s seed=%d]: %s", c.spec, c.seed, strings.Join(parts, " "))
}

func (c *Chaos) roll(k chaosKind) bool {
	if c.prob[k] <= 0 {
		return false
	}
	if c.prob[k] < 1 && c.rng[k].Float64() >= c.prob[k] {
		return false
	}
	c.counts[k]++
	return true
}

// chaosError is the transport error chaos injects; it must look like any
// other connection failure to the retry and probe layers.
type chaosError struct {
	worker string
	mode   string
}

func (e *chaosError) Error() string {
	return fmt.Sprintf("chaos: worker %s %s", e.worker, e.mode)
}

// decide consults the plan for one request: an error (killed or
// partitioned), an added delay, or clean passage.
func (c *Chaos) decide(workerID string) (error, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed[workerID] {
		return &chaosError{workerID, "killed"}, 0
	}
	if c.roll(chaosKill) {
		c.killed[workerID] = true
		return &chaosError{workerID, "killed"}, 0
	}
	now := time.Now()
	if until, ok := c.partitioned[workerID]; ok {
		if now.Before(until) {
			return &chaosError{workerID, "partitioned"}, 0
		}
		delete(c.partitioned, workerID)
	}
	if c.roll(chaosPartition) {
		dur := 500*time.Millisecond + time.Duration(c.rng[chaosPartition].Int63n(int64(2*time.Second)))
		c.partitioned[workerID] = now.Add(dur)
		return &chaosError{workerID, "partitioned"}, 0
	}
	if c.roll(chaosDelay) {
		return nil, 25*time.Millisecond + time.Duration(c.rng[chaosDelay].Int63n(int64(250*time.Millisecond)))
	}
	return nil, 0
}

type chaosTransport struct {
	chaos  *Chaos
	worker string
	base   http.RoundTripper
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	err, delay := t.chaos.decide(t.worker)
	if err != nil {
		return nil, err
	}
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	return t.base.RoundTrip(req)
}
