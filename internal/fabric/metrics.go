package fabric

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"loopfrog/internal/telemetry"
)

// Stats is an atomic snapshot of the coordinator's counters, for tests and
// the /fabric/members debug view.
type Stats struct {
	Jobs         uint64 `json:"jobs"`
	Dispatches   uint64 `json:"dispatches"`
	Steals       uint64 `json:"steals"`
	Hedges       uint64 `json:"hedges"`
	HedgesWon    uint64 `json:"hedges_won"`
	HedgesWasted uint64 `json:"hedges_wasted"`
	Retries      uint64 `json:"retries"`
	Reroutes     uint64 `json:"reroutes"`
	Requeues     uint64 `json:"requeues"`
	WorkersDead  uint64 `json:"workers_dead"`
	PairsBlocked uint64 `json:"pairs_blocked"`
	Degradations uint64 `json:"degradations"`
	WorkersLive  int    `json:"workers_live"`
	WorkersTotal int    `json:"workers_total"`
}

// Stats returns the current counter snapshot.
func (c *Coordinator) Stats() Stats {
	s := Stats{
		Jobs:         c.m.jobs.Load(),
		Dispatches:   c.m.dispatches.Load(),
		Steals:       c.m.steals.Load(),
		Hedges:       c.m.hedges.Load(),
		HedgesWon:    c.m.hedgesWon.Load(),
		HedgesWasted: c.m.hedgesWasted.Load(),
		Retries:      c.m.retries.Load(),
		Reroutes:     c.m.reroutes.Load(),
		Requeues:     c.m.requeues.Load(),
		WorkersDead:  c.m.workersDead.Load(),
		PairsBlocked: c.m.pairsBlocked.Load(),
		Degradations: c.m.degradations.Load(),
	}
	c.mu.Lock()
	s.WorkersTotal = len(c.members)
	for _, m := range c.members {
		if m.det.State() == StateAlive {
			s.WorkersLive++
		}
	}
	c.mu.Unlock()
	return s
}

// RegisterMetrics publishes the fabric.* gauge family; internal/serve calls
// this through its Remote hook so the coordinator's counters ride the same
// /metrics endpoint as everything else.
func (c *Coordinator) RegisterMetrics(reg *telemetry.Registry) {
	gauge := func(name string, f func(Stats) float64) {
		reg.RegisterGauge(name, func() float64 { return f(c.Stats()) })
	}
	gauge("fabric.Jobs", func(s Stats) float64 { return float64(s.Jobs) })
	gauge("fabric.Dispatches", func(s Stats) float64 { return float64(s.Dispatches) })
	gauge("fabric.Steals", func(s Stats) float64 { return float64(s.Steals) })
	gauge("fabric.HedgesLaunched", func(s Stats) float64 { return float64(s.Hedges) })
	gauge("fabric.HedgesWon", func(s Stats) float64 { return float64(s.HedgesWon) })
	gauge("fabric.HedgesWasted", func(s Stats) float64 { return float64(s.HedgesWasted) })
	gauge("fabric.Retries", func(s Stats) float64 { return float64(s.Retries) })
	gauge("fabric.Reroutes", func(s Stats) float64 { return float64(s.Reroutes) })
	gauge("fabric.Requeues", func(s Stats) float64 { return float64(s.Requeues) })
	gauge("fabric.WorkersDead", func(s Stats) float64 { return float64(s.WorkersDead) })
	gauge("fabric.WorkersLive", func(s Stats) float64 { return float64(s.WorkersLive) })
	gauge("fabric.WorkersTotal", func(s Stats) float64 { return float64(s.WorkersTotal) })
	gauge("fabric.QuarantinedPairs", func(s Stats) float64 { return float64(s.PairsBlocked) })
	gauge("fabric.Degradations", func(s Stats) float64 { return float64(s.Degradations) })
}

// MemberView is one worker's externally visible state on /fabric/members.
type MemberView struct {
	ID       string  `json:"id"`
	URL      string  `json:"url"`
	State    string  `json:"state"`
	Phi      float64 `json:"phi"`
	Slots    int     `json:"slots"`
	Inflight int     `json:"inflight"`
	Queued   int     `json:"queued"`
	JoinedAt string  `json:"joined_at"`
}

// Members returns the worker table sorted by ID.
func (c *Coordinator) Members() []MemberView {
	now := time.Now()
	c.mu.Lock()
	out := make([]MemberView, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, MemberView{
			ID:       m.id,
			URL:      m.url,
			State:    m.det.State().String(),
			Phi:      m.det.Phi(now),
			Slots:    m.slots,
			Inflight: len(m.inflight),
			Queued:   len(c.queues[m.id]),
			JoinedAt: m.joined.UTC().Format(time.RFC3339),
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Mount wraps an http.Handler (the serve API) with the fabric control
// endpoints:
//
//	POST /fabric/join     worker registration / heartbeat (JoinInfo body)
//	GET  /fabric/members  worker table with detector state and queue depths
func (c *Coordinator) Mount(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fabric/join", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
			return
		}
		var info JoinInfo
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&info); err != nil {
			writeFabricJSON(w, http.StatusBadRequest, map[string]string{"error": "bad join body: " + err.Error()})
			return
		}
		if err := c.AddWorker(info); err != nil {
			writeFabricJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeFabricJSON(w, http.StatusOK, map[string]string{"status": "ok", "version": Version})
	})
	mux.HandleFunc("/fabric/members", func(w http.ResponseWriter, r *http.Request) {
		writeFabricJSON(w, http.StatusOK, map[string]any{
			"members": c.Members(),
			"stats":   c.Stats(),
		})
	})
	mux.Handle("/", next)
	return mux
}

func writeFabricJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
