package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"loopfrog/internal/serve"
)

// Config tunes the coordinator. The zero value takes every documented
// default, so NewCoordinator(Config{}) is a working production fabric.
type Config struct {
	// ProbeInterval is the readiness-probe period per worker (default 500ms);
	// ProbeTimeout bounds one probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Detector tunes the per-worker failure detector.
	Detector DetectorConfig

	// VNodes is the consistent-hash virtual-node count per worker (default
	// DefaultVNodes).
	VNodes int

	// HedgePercentile picks the dispatch-latency percentile that arms the
	// straggler hedge (default 0.95); the hedge fires after HedgeFactor times
	// that latency (default 1.5), clamped to [HedgeMinDelay, HedgeMaxDelay]
	// (defaults 100ms, 10s). Before HedgeWarmup samples exist the hedge uses
	// HedgeColdDelay (default 2s). HedgeDisabled turns hedging off.
	HedgePercentile float64
	HedgeFactor     float64
	HedgeMinDelay   time.Duration
	HedgeMaxDelay   time.Duration
	HedgeColdDelay  time.Duration
	HedgeDisabled   bool

	// MaxDispatchRetries bounds transport-level retries per job (default 3);
	// RetryBaseDelay seeds the exponential backoff between them (default
	// 50ms), capped at RetryMaxDelay (default 2s). Each delay carries ±50%
	// jitter so a rack of retries does not stampede the surviving workers.
	MaxDispatchRetries int
	RetryBaseDelay     time.Duration
	RetryMaxDelay      time.Duration

	// RequestGrace pads a dispatched job's HTTP deadline beyond the job's own
	// timeout, so the worker's 504 arrives before the coordinator gives up on
	// the connection (default 30s).
	RequestGrace time.Duration

	// WrapTransport, when non-nil, wraps each member's HTTP transport — the
	// chaos fabric's injection point. base is never nil.
	WrapTransport func(workerID string, base http.RoundTripper) http.RoundTripper

	// Logf sinks coordinator logs (default log.Printf).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.HedgePercentile <= 0 || c.HedgePercentile >= 1 {
		c.HedgePercentile = 0.95
	}
	if c.HedgeFactor <= 1 {
		c.HedgeFactor = 1.5
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 100 * time.Millisecond
	}
	if c.HedgeMaxDelay <= c.HedgeMinDelay {
		c.HedgeMaxDelay = 10 * time.Second
	}
	if c.HedgeColdDelay <= 0 {
		c.HedgeColdDelay = 2 * time.Second
	}
	if c.MaxDispatchRetries <= 0 {
		c.MaxDispatchRetries = 3
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.RetryMaxDelay <= c.RetryBaseDelay {
		c.RetryMaxDelay = 2 * time.Second
	}
	if c.RequestGrace <= 0 {
		c.RequestGrace = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// hedgeWarmup is how many latency samples the hedge trigger needs before it
// trusts the percentile estimate over HedgeColdDelay.
const hedgeWarmup = 8

// latWindow is the dispatch-latency reservoir size behind the hedge trigger.
const latWindow = 256

// Coordinator places admitted jobs on the worker fleet. It implements
// serve.RemoteExecutor; see the package comment for the full design.
type Coordinator struct {
	cfg  Config
	ring *Ring

	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	members map[string]*member
	// queues holds per-home-worker FIFO queues of placed-but-undisached
	// items; dispatchers pop their own queue first and steal from the longest
	// other queue when idle.
	queues map[string][]queueItem
	// quarantined holds (worker, fingerprint) pairs that answered with a
	// panic; placement skips them permanently.
	quarantined map[string]struct{}
	// seen maps a fingerprint to the worker that last completed it: the node
	// whose run cache holds the result. Placement prefers it over the ring
	// home (they differ after a steal or failover moved the key), and thieves
	// refuse to steal work that is about to be a cache hit where it sits.
	seen map[string]string

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	latMu  sync.Mutex
	lats   [latWindow]time.Duration
	latLen int
	latPos int

	m fabricMetrics
}

type fabricMetrics struct {
	jobs         atomic.Uint64
	dispatches   atomic.Uint64
	steals       atomic.Uint64
	hedges       atomic.Uint64
	hedgesWon    atomic.Uint64
	hedgesWasted atomic.Uint64
	retries      atomic.Uint64
	reroutes     atomic.Uint64
	requeues     atomic.Uint64
	workersDead  atomic.Uint64
	pairsBlocked atomic.Uint64
	degradations atomic.Uint64
}

// member is one registered worker.
type member struct {
	id     string
	url    string
	client *http.Client
	slots  int
	det    *Detector
	// inflight maps dispatched tasks to their per-dispatch cancel funcs,
	// guarded by Coordinator.mu; on death the coordinator cancels and
	// requeues them.
	inflight map[*task]context.CancelFunc
	joined   time.Time
}

// queueItem is one placement of a task on a home queue.
type queueItem struct {
	t     *task
	hedge bool
}

// task is one ExecuteRemote call's lifetime across placements, retries,
// hedges, and requeues. finish resolves it exactly once.
type task struct {
	key     string // run-cache fingerprint: the routing key
	body    []byte // marshalled JobSpec, reused across dispatches
	timeout time.Duration
	ctx     context.Context
	done    chan struct{}

	mu         sync.Mutex
	finished   bool
	res        *serve.RemoteResult
	err        error
	tried      map[string]struct{} // workers this task was placed on
	attempts   int                 // transport-level retries consumed
	panicHops  int                 // reroutes consumed after panic answers
	requeued   bool                // the exactly-once death-requeue budget
	hedged     bool
	hedgeTimer *time.Timer
	cancels    []context.CancelFunc // per-dispatch cancels
}

func (t *task) isDone() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finished
}

// finish resolves the task exactly once, stops the hedge timer, and cancels
// every outstanding dispatch. Reports whether this call won.
func (t *task) finish(res *serve.RemoteResult, err error) bool {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return false
	}
	t.finished = true
	t.res, t.err = res, err
	timer := t.hedgeTimer
	cancels := t.cancels
	t.cancels = nil
	t.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	for _, cancel := range cancels {
		cancel()
	}
	close(t.done)
	return true
}

func (t *task) addCancel(cancel context.CancelFunc) {
	t.mu.Lock()
	t.cancels = append(t.cancels, cancel)
	t.mu.Unlock()
}

func (t *task) wasHedged() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hedged
}

// NewCoordinator returns a coordinator with no workers. Workers register via
// AddWorker (static -workers list) or the /fabric/join handler.
func NewCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:         cfg.withDefaults(),
		ring:        NewRing(cfg.VNodes),
		members:     make(map[string]*member),
		queues:      make(map[string][]queueItem),
		quarantined: make(map[string]struct{}),
		seen:        make(map[string]string),
		stopc:       make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// AddWorker registers (or re-registers) a worker and starts its prober and
// dispatch slots. Re-joins with an unchanged URL are heartbeats; a changed
// URL re-points the member without restarting its goroutines.
func (c *Coordinator) AddWorker(info JoinInfo) error {
	if err := info.validate(); err != nil {
		return err
	}
	slots := info.Runners
	if slots <= 0 {
		slots = 4
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("fabric: coordinator closed")
	}
	if m, ok := c.members[info.ID]; ok {
		m.url = info.URL
		c.mu.Unlock()
		return nil
	}
	base := http.DefaultTransport
	if c.cfg.WrapTransport != nil {
		base = c.cfg.WrapTransport(info.ID, base)
	}
	m := &member{
		id:       info.ID,
		url:      info.URL,
		client:   &http.Client{Transport: base},
		slots:    slots,
		det:      NewDetector(c.cfg.Detector, time.Now()),
		inflight: make(map[*task]context.CancelFunc),
		joined:   time.Now(),
	}
	c.members[info.ID] = m
	c.ring.Add(m.id)
	c.cond.Broadcast()
	c.mu.Unlock()
	c.cfg.Logf("fabric: worker %s joined at %s (%d slots)", m.id, m.url, slots)
	c.wg.Add(1 + slots)
	go c.probeLoop(m)
	for i := 0; i < slots; i++ {
		go c.dispatchLoop(m)
	}
	return nil
}

// Close stops probers and dispatchers and fails queued and in-flight work
// with serve.ErrRemoteUnavailable so no ExecuteRemote caller hangs. Call
// after the front-end server has drained.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	c.stopOnce.Do(func() { close(c.stopc) })
	var orphans []*task
	for _, items := range c.queues {
		for _, it := range items {
			orphans = append(orphans, it.t)
		}
	}
	c.queues = make(map[string][]queueItem)
	for _, m := range c.members {
		for t, cancel := range m.inflight {
			cancel()
			orphans = append(orphans, t)
		}
		m.inflight = make(map[*task]context.CancelFunc)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, t := range orphans {
		t.finish(nil, serve.ErrRemoteUnavailable)
	}
	c.wg.Wait()
}

// ExecuteRemote implements serve.RemoteExecutor: place the job on its home
// worker's queue, arm the straggler hedge, and wait for the first terminal
// answer. See remote.go in internal/serve for the error contract.
func (c *Coordinator) ExecuteRemote(ctx context.Context, fingerprint string, spec serve.JobSpec) (*serve.RemoteResult, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("fabric: marshal spec: %w", err)
	}
	timeout := time.Duration(spec.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = time.Minute
	}
	t := &task{
		key:     fingerprint,
		body:    body,
		timeout: timeout,
		ctx:     ctx,
		done:    make(chan struct{}),
		tried:   make(map[string]struct{}),
	}
	c.m.jobs.Add(1)
	if !c.enqueue(t, false, "") {
		c.m.degradations.Add(1)
		return nil, serve.ErrRemoteUnavailable
	}
	select {
	case <-t.done:
		if t.err != nil && errors.Is(t.err, serve.ErrRemoteUnavailable) {
			c.m.degradations.Add(1)
		}
		return t.res, t.err
	case <-ctx.Done():
		t.finish(nil, ctx.Err())
		<-t.done
		return t.res, t.err
	}
}

// enqueue places the task on the best eligible home queue: ring order from
// the key's home node, skipping dead/probation/suspect workers, quarantined
// (worker, key) pairs, the excluded worker, and — for hedges — any worker
// the task already landed on. Reports false when no worker is eligible (the
// caller degrades or drops the hedge).
func (c *Coordinator) enqueue(t *task, hedge bool, exclude string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	order := c.ring.LookupN(t.key, len(c.members))
	// The worker that already holds this key's cached result beats the ring
	// home: after a steal or failover moved the key, rerouting repeats to the
	// ring home would re-simulate what another node has resident.
	if owner, ok := c.seen[t.key]; ok && len(order) > 0 && owner != order[0] {
		order = append([]string{owner}, order...)
	}
	pick := ""
	for _, id := range order {
		m, ok := c.members[id]
		if !ok || m.det.State() != StateAlive {
			continue
		}
		if _, bad := c.quarantined[pairKey(id, t.key)]; bad {
			continue
		}
		if id == exclude {
			continue
		}
		if hedge {
			t.mu.Lock()
			_, dup := t.tried[id]
			t.mu.Unlock()
			if dup {
				continue
			}
		}
		pick = id
		break
	}
	if pick == "" && !hedge && exclude != "" {
		// Down to one worker and it is the one we just failed against: retry
		// there rather than degrade — the failure may have been transient.
		if m, ok := c.members[exclude]; ok && m.det.State() == StateAlive {
			if _, bad := c.quarantined[pairKey(exclude, t.key)]; !bad {
				pick = exclude
			}
		}
	}
	if pick == "" {
		return false
	}
	t.mu.Lock()
	t.tried[pick] = struct{}{}
	t.mu.Unlock()
	c.queues[pick] = append(c.queues[pick], queueItem{t: t, hedge: hedge})
	c.cond.Broadcast()
	return true
}

// armHedge starts the task's hedge timer once, on its first primary
// dispatch. Retries and hedges never re-arm it.
func (c *Coordinator) armHedge(t *task) {
	d := c.hedgeDelay()
	t.mu.Lock()
	if !t.finished && t.hedgeTimer == nil {
		t.hedgeTimer = time.AfterFunc(d, func() { c.hedge(t) })
	}
	t.mu.Unlock()
}

// hedge launches the straggler copy: same task, next eligible ring node,
// first terminal answer wins. Simulations are deterministic and the worker
// run-cache absorbs duplicates, so a wasted hedge costs capacity, never
// correctness.
func (c *Coordinator) hedge(t *task) {
	if t.isDone() {
		return
	}
	if c.enqueue(t, true, "") {
		t.mu.Lock()
		t.hedged = true
		t.mu.Unlock()
		c.m.hedges.Add(1)
	}
}

// hedgeDelay derives the hedge trigger from the recent dispatch-latency
// percentile, falling back to HedgeColdDelay until enough samples exist.
func (c *Coordinator) hedgeDelay() time.Duration {
	c.latMu.Lock()
	n := c.latLen
	var sorted []time.Duration
	if n >= hedgeWarmup {
		sorted = append(sorted, c.lats[:n]...)
	}
	c.latMu.Unlock()
	if sorted == nil {
		return c.cfg.HedgeColdDelay
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(n-1) * c.cfg.HedgePercentile)
	d := time.Duration(float64(sorted[idx]) * c.cfg.HedgeFactor)
	if d < c.cfg.HedgeMinDelay {
		d = c.cfg.HedgeMinDelay
	}
	if d > c.cfg.HedgeMaxDelay {
		d = c.cfg.HedgeMaxDelay
	}
	return d
}

func (c *Coordinator) recordLatency(d time.Duration) {
	c.latMu.Lock()
	c.lats[c.latPos] = d
	c.latPos = (c.latPos + 1) % latWindow
	if c.latLen < latWindow {
		c.latLen++
	}
	c.latMu.Unlock()
}

// dispatchLoop is one worker slot: pop the member's own queue, steal from
// the longest other queue when idle, run the item, repeat. Slots of a
// non-Alive member park until the prober restores it.
func (c *Coordinator) dispatchLoop(m *member) {
	defer c.wg.Done()
	for {
		it, ok := c.take(m)
		if !ok {
			return
		}
		c.runItem(m, it)
	}
}

// take blocks until the member may run something (own queue first, then the
// longest other queue) or the coordinator closes.
func (c *Coordinator) take(m *member) (queueItem, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return queueItem{}, false
		}
		if m.det.State() == StateAlive {
			if it, ok := c.popLocked(m.id, m.id); ok {
				return it, true
			}
			// Steal from the longest other queue — but only from a victim
			// that cannot drain it promptly itself (every slot busy, or not
			// Alive). An idle home worker always gets its own queue, so
			// cache affinity survives light load; stealing kicks in exactly
			// when it buys throughput. Tail-steal so the victim's head (its
			// oldest, most cache-affine work) stays put.
			victim, best := "", 0
			for id, q := range c.queues {
				if id == m.id || len(q) == 0 {
					continue
				}
				if vm := c.members[id]; vm != nil && vm.det.State() == StateAlive && len(vm.inflight) < vm.slots {
					continue
				}
				if len(q) > best {
					victim, best = id, len(q)
				}
			}
			if victim != "" {
				if it, ok := c.popLocked(victim, m.id); ok {
					c.m.steals.Add(1)
					return it, true
				}
			}
		}
		c.cond.Wait()
	}
}

// popLocked removes the first item of queue qid eligible to run on worker
// runner (not pair-quarantined, not already finished). Hedge items only pop
// for workers the task has not landed on. Own-queue pops take the head;
// steals take the tail.
func (c *Coordinator) popLocked(qid, runner string) (queueItem, bool) {
	q := c.queues[qid]
	idxs := make([]int, len(q))
	for i := range q {
		idxs[i] = i
	}
	if qid != runner {
		for i, j := 0, len(idxs)-1; i < j; i, j = i+1, j-1 {
			idxs[i], idxs[j] = idxs[j], idxs[i]
		}
	}
	for _, i := range idxs {
		it := q[i]
		if it.t.isDone() {
			continue
		}
		if _, bad := c.quarantined[pairKey(runner, it.t.key)]; bad {
			continue
		}
		if qid != runner {
			if owner, ok := c.seen[it.t.key]; ok && owner == qid {
				// The victim's run cache holds this key: the item is a
				// near-free hit where it sits. Stealing it trades a cache hit
				// for a full re-simulation — never worth a thief's idleness.
				continue
			}
			if vm := c.members[qid]; vm != nil && memberRunningKey(vm, it.t.key) {
				// Same reasoning for a first execution still in flight on the
				// victim: the item will singleflight-join it the moment a
				// slot frees.
				continue
			}
			it.t.mu.Lock()
			_, dup := it.t.tried[runner]
			if !dup {
				it.t.tried[runner] = struct{}{}
			}
			it.t.mu.Unlock()
			if dup {
				// Stealing a copy of a task this worker already ran (its own
				// earlier dispatch or hedge) would serialise the hedge.
				continue
			}
		}
		c.queues[qid] = append(q[:i:i], q[i+1:]...)
		if len(c.queues[qid]) == 0 {
			delete(c.queues, qid)
		}
		return it, true
	}
	// Drop any finished items we skipped over.
	kept := q[:0]
	for _, it := range q {
		if !it.t.isDone() {
			kept = append(kept, it)
		}
	}
	if len(kept) == 0 {
		delete(c.queues, qid)
	} else {
		c.queues[qid] = kept
	}
	return queueItem{}, false
}

// runItem dispatches one placement of a task to a worker and classifies the
// outcome: success or job-level failure finishes the task; a panic answer
// quarantines the (worker, key) pair and reroutes once; transport failures
// back off with jitter and reroute up to MaxDispatchRetries before the task
// degrades to local execution.
func (c *Coordinator) runItem(m *member, it queueItem) {
	t := it.t
	if t.isDone() {
		return
	}
	dctx, cancel := context.WithCancel(t.ctx)
	t.addCancel(cancel)
	c.mu.Lock()
	m.inflight[t] = cancel
	// This member may have just become saturated: wake parked dispatchers so
	// thieves re-evaluate its queue.
	c.cond.Broadcast()
	c.mu.Unlock()
	c.m.dispatches.Add(1)
	if !it.hedge && !c.cfg.HedgeDisabled {
		// The hedge clock starts when the primary dispatch starts, not when
		// the job was submitted: a job still sitting in a queue is not a
		// straggler, and hedging it would only duplicate work.
		c.armHedge(t)
	}
	start := time.Now()
	rr, derr := c.postJob(dctx, m, t)
	// Capture before cancel(): a dispatch context that was already dead
	// while the job's own context lives means the death path cancelled this
	// dispatch and owns the requeue.
	cancelledByDeath := dctx.Err() != nil && t.ctx.Err() == nil
	c.mu.Lock()
	delete(m.inflight, t)
	if derr == nil {
		// This worker's run cache now holds the key; future placements of
		// the same fingerprint come here. Reset the table if it ever grows
		// silly — it is a placement hint, not state.
		if len(c.seen) > 1<<16 {
			c.seen = make(map[string]string)
		}
		c.seen[t.key] = m.id
	}
	c.mu.Unlock()
	cancel()

	if derr == nil {
		c.recordLatency(time.Since(start))
		if t.finish(rr, nil) {
			if it.hedge {
				c.m.hedgesWon.Add(1)
			} else if t.wasHedged() {
				c.m.hedgesWasted.Add(1)
			}
		}
		return
	}
	if t.isDone() {
		return
	}
	if err := t.ctx.Err(); err != nil {
		t.finish(nil, err)
		return
	}
	if cancelledByDeath {
		// Our dispatch alone was cancelled: the death path owns this task now
		// (it cancelled us and will requeue exactly once).
		return
	}
	var je *workerJobError
	if errors.As(derr, &je) {
		if je.panicky() {
			c.quarantinePair(m.id, t.key)
			if c.takePanicHop(t) && c.enqueue(t, false, m.id) {
				c.m.reroutes.Add(1)
				return
			}
		}
		t.finish(&serve.RemoteResult{
			Worker:     m.id,
			Status:     je.Status,
			HTTPStatus: je.HTTPStatus,
			Error:      je.Text,
		}, nil)
		return
	}
	// Transport-level failure: the worker never answered. Back off with
	// jitter and reroute; a member this unreachable will also be failing its
	// probes, so the ring catches up shortly.
	t.mu.Lock()
	t.attempts++
	attempt := t.attempts
	t.mu.Unlock()
	if attempt > c.cfg.MaxDispatchRetries {
		t.finish(nil, fmt.Errorf("%w: %v", serve.ErrRemoteUnavailable, derr))
		return
	}
	c.m.retries.Add(1)
	delay := c.cfg.RetryBaseDelay << (attempt - 1)
	if delay > c.cfg.RetryMaxDelay {
		delay = c.cfg.RetryMaxDelay
	}
	delay = time.Duration(float64(delay) * (0.5 + rand.Float64()))
	time.AfterFunc(delay, func() {
		if t.isDone() {
			return
		}
		c.m.reroutes.Add(1)
		if !c.enqueue(t, false, m.id) {
			t.finish(nil, fmt.Errorf("%w: %v", serve.ErrRemoteUnavailable, derr))
		}
	})
}

// memberRunningKey reports whether the member has a dispatch of the given
// fingerprint in flight. Caller holds c.mu.
func memberRunningKey(m *member, key string) bool {
	for t := range m.inflight {
		if t.key == key {
			return true
		}
	}
	return false
}

// takePanicHop consumes the task's single panic-reroute credit.
func (c *Coordinator) takePanicHop(t *task) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.panicHops >= 1 {
		return false
	}
	t.panicHops++
	return true
}

func (c *Coordinator) quarantinePair(workerID, key string) {
	c.mu.Lock()
	k := pairKey(workerID, key)
	if _, dup := c.quarantined[k]; !dup {
		c.quarantined[k] = struct{}{}
		c.m.pairsBlocked.Add(1)
	}
	c.mu.Unlock()
	c.cfg.Logf("fabric: quarantined pair worker=%s key=%s after panic answer", workerID, key)
}

// workerJobError is a worker's terminal non-2xx job answer: the job ran (or
// was rejected) and the worker said so. Distinct from transport errors,
// which mean the worker never answered.
type workerJobError struct {
	HTTPStatus int
	Status     string
	Text       string
}

func (e *workerJobError) Error() string {
	return fmt.Sprintf("worker answered %d (%s): %s", e.HTTPStatus, e.Status, e.Text)
}

// panicky reports whether the answer smells like a worker-side panic or
// quarantine — the signals that earn a (worker, key) pair quarantine.
func (e *workerJobError) panicky() bool {
	return e.HTTPStatus == http.StatusInternalServerError &&
		(bytes.Contains([]byte(e.Text), []byte("panic")) ||
			bytes.Contains([]byte(e.Text), []byte("quarantined")))
}

// transientHTTP reports worker answers that should be treated like transport
// failures (retry elsewhere): the worker exists but cannot take the job now.
func transientHTTP(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// postJob forwards the task's spec to the worker's synchronous job API and
// maps the worker's terminal view. nil error means the task is terminal
// (success or relayed failure is decided by the caller from RemoteResult).
func (c *Coordinator) postJob(ctx context.Context, m *member, t *task) (*serve.RemoteResult, error) {
	rctx, cancel := context.WithTimeout(ctx, t.timeout+c.cfg.RequestGrace)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, m.url+"/v1/jobs", bytes.NewReader(t.body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if transientHTTP(resp.StatusCode) {
		return nil, fmt.Errorf("worker %s not accepting work: HTTP %d", m.id, resp.StatusCode)
	}
	var view struct {
		Status string           `json:"status"`
		Error  string           `json:"error"`
		Result *serve.JobResult `json:"result"`
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(payload, &view); err != nil {
			return nil, fmt.Errorf("worker %s: bad job view: %w", m.id, err)
		}
		return &serve.RemoteResult{
			Worker:     m.id,
			Status:     view.Status,
			HTTPStatus: http.StatusOK,
			Error:      view.Error,
			Result:     view.Result,
		}, nil
	}
	// Terminal worker-side failure (504 deadline, 500 panic/quarantine, 422
	// reject, ...): parse what we can and relay through workerJobError.
	text := ""
	status := serve.StatusFailed
	if json.Unmarshal(payload, &view) == nil {
		if view.Error != "" {
			text = view.Error
		}
		if view.Status != "" {
			status = view.Status
		}
	}
	if text == "" {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &apiErr) == nil && apiErr.Error != "" {
			text = apiErr.Error
		}
	}
	if text == "" {
		text = fmt.Sprintf("worker %s answered HTTP %d", m.id, resp.StatusCode)
	}
	return nil, &workerJobError{HTTPStatus: resp.StatusCode, Status: status, Text: text}
}

// probeLoop drives one worker's failure detector off its /readyz endpoint.
func (c *Coordinator) probeLoop(m *member) {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopc:
			return
		case <-ticker.C:
		}
		c.probe(m)
	}
}

func (c *Coordinator) probe(m *member) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/readyz", nil)
	if err != nil {
		cancel()
		return
	}
	resp, err := m.client.Do(req)
	cancel()
	now := time.Now()
	var st WorkerState
	var changed bool
	switch {
	case err != nil:
		// A probe that timed out is soft evidence (accrues phi); an immediate
		// transport error (refused, reset, chaos kill) is hard evidence.
		hard := !errors.Is(err, context.DeadlineExceeded)
		st, changed = m.det.ObserveFailure(now, hard)
	case resp.StatusCode == http.StatusOK:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		st, changed = m.det.ObserveSuccess(now)
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		st, changed = m.det.ObserveNotReady(now)
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		st, changed = m.det.ObserveFailure(now, false)
	}
	if changed {
		c.onStateChange(m, st)
	}
}

// onStateChange applies a detector transition to routing state: Alive
// restores the ring arc; Probation removes it and re-homes queued work; Dead
// additionally cancels in-flight dispatches and spends each task's
// exactly-once requeue budget.
func (c *Coordinator) onStateChange(m *member, st WorkerState) {
	c.cfg.Logf("fabric: worker %s -> %s (phi=%.1f)", m.id, st, m.det.Phi(time.Now()))
	c.mu.Lock()
	switch st {
	case StateAlive:
		c.ring.Add(m.id)
		c.cond.Broadcast()
		c.mu.Unlock()
	case StateSuspect:
		// Stays on the ring; take() already refuses new work for non-Alive
		// members, so the arc keeps attracting placements that other workers
		// will steal — affinity degrades gracefully instead of flapping.
		c.mu.Unlock()
	case StateProbation:
		c.ring.Remove(m.id)
		items := c.queues[m.id]
		delete(c.queues, m.id)
		c.mu.Unlock()
		for _, it := range items {
			c.rehome(it, m.id)
		}
	case StateDead:
		c.m.workersDead.Add(1)
		c.ring.Remove(m.id)
		items := c.queues[m.id]
		delete(c.queues, m.id)
		running := make([]*task, 0, len(m.inflight))
		for t, cancel := range m.inflight {
			cancel()
			running = append(running, t)
		}
		m.inflight = make(map[*task]context.CancelFunc)
		c.mu.Unlock()
		for _, it := range items {
			c.rehome(it, m.id)
		}
		for _, t := range running {
			c.requeueOnce(t, m.id)
		}
	default:
		c.mu.Unlock()
	}
}

// rehome re-places a queued (never dispatched to the lost worker) item; it
// costs no requeue budget because the work never started there.
func (c *Coordinator) rehome(it queueItem, exclude string) {
	if it.t.isDone() {
		return
	}
	c.m.reroutes.Add(1)
	if !c.enqueue(it.t, it.hedge, exclude) && !it.hedge {
		it.t.finish(nil, serve.ErrRemoteUnavailable)
	}
}

// requeueOnce spends a task's exactly-once death-requeue budget. The second
// worker death under the same task surfaces serve.ErrWorkerLost: by then the
// job has consumed two workers and the client deserves a typed answer, not
// an unbounded retry loop.
func (c *Coordinator) requeueOnce(t *task, exclude string) {
	if t.isDone() {
		return
	}
	t.mu.Lock()
	already := t.requeued
	t.requeued = true
	t.mu.Unlock()
	if already {
		t.finish(nil, serve.ErrWorkerLost)
		return
	}
	c.m.requeues.Add(1)
	if !c.enqueue(t, false, exclude) {
		t.finish(nil, serve.ErrRemoteUnavailable)
	}
}
