package fabric

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring mapping run-cache fingerprints to worker
// IDs. Each worker contributes vnodes virtual points so load spreads evenly;
// removing a worker moves only that worker's arc to its successors, which is
// what keeps cache affinity intact across worker deaths: every key that was
// NOT homed on the dead worker keeps routing to the node that already holds
// its cached result.
//
// Ring is safe for concurrent use. Lookups on an empty ring return nothing.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	ids    map[string]struct{}
}

type ringPoint struct {
	hash uint64
	id   string
}

// DefaultVNodes is the per-worker virtual-node count: enough that a 3-node
// ring balances within a few percent, cheap enough that membership changes
// are trivial.
const DefaultVNodes = 64

// NewRing returns an empty ring with the given virtual-node count per worker
// (<= 0 means DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, ids: make(map[string]struct{})}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// fnv-1a clusters on short, similar inputs (worker vnode labels differ
	// only in a numeric suffix); a splitmix64 finalizer spreads the points.
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add inserts a worker's virtual points; adding an existing worker is a
// no-op, so probation re-entries are idempotent.
func (r *Ring) Add(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ids[id]; ok {
		return
	}
	r.ids[id] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{ringHash(id + "#" + strconv.Itoa(v)), id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a worker's virtual points (worker death or probation); a
// missing worker is a no-op.
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ids[id]; !ok {
		return
	}
	delete(r.ids, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Contains reports whether the worker is currently on the ring.
func (r *Ring) Contains(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.ids[id]
	return ok
}

// Len returns the number of workers on the ring.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ids)
}

// Lookup returns the key's home worker, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	ids := r.LookupN(key, 1)
	if len(ids) == 0 {
		return ""
	}
	return ids[0]
}

// LookupN returns up to n distinct workers in ring order starting at the
// key's home: the preference order for placement, hedging, and failover. The
// first entry is the home node; later entries are the nodes the key's arc
// falls to as earlier ones die.
func (r *Ring) LookupN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.id]; dup {
			continue
		}
		seen[p.id] = struct{}{}
		out = append(out, p.id)
	}
	return out
}
