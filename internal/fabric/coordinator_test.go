package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"loopfrog/internal/serve"
)

// fakeWorker is a scriptable worker endpoint: readyz behaviour and the jobs
// handler are swappable at runtime, so tests drive the failure detector and
// dispatch classification without real simulations.
type fakeWorker struct {
	id string
	ts *httptest.Server
	// readyMode: 0 = 200 ready, 1 = abort the connection (hard probe
	// failure), 2 = 503 draining.
	readyMode atomic.Int32
	jobs      atomic.Pointer[http.HandlerFunc]
	// gotJobs counts /v1/jobs requests, so tests can tell which worker a
	// dispatch actually landed on (work-stealing makes the home queue a
	// preference, not a guarantee).
	gotJobs atomic.Int32
}

func newFakeWorker(t *testing.T, id string, jobs http.HandlerFunc) *fakeWorker {
	t.Helper()
	f := &fakeWorker{id: id}
	f.jobs.Store(&jobs)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		switch f.readyMode.Load() {
		case 1:
			panic(http.ErrAbortHandler)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"status":"draining"}`)
		default:
			fmt.Fprint(w, `{"status":"ready"}`)
		}
	})
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		f.gotJobs.Add(1)
		// Consume the body first: net/http only watches for client aborts
		// (r.Context cancellation) once the request body has been read, and
		// several tests park handlers on that context.
		io.Copy(io.Discard, r.Body)
		(*f.jobs.Load())(w, r)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func okView(worker string) string {
	return fmt.Sprintf(`{"id":"j","status":"done","result":{"program":"fake","cycles":42,"arch_insts":7,"worker":%q}}`, worker)
}

// fastConfig keeps probe and retry clocks test-sized.
func fastConfig() Config {
	return Config{
		ProbeInterval:  10 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		RetryBaseDelay: 5 * time.Millisecond,
		Detector: DetectorConfig{
			ProbeHardFailures: 2,
			MinInterval:       50 * time.Millisecond,
		},
	}
}

func newTestCoordinator(t *testing.T, cfg Config, workers ...*fakeWorker) *Coordinator {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	c := NewCoordinator(cfg)
	t.Cleanup(c.Close)
	for _, f := range workers {
		if err := c.AddWorker(JoinInfo{ID: f.id, URL: f.ts.URL, Runners: 2}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestExecuteRemoteHappyPath(t *testing.T) {
	f := newFakeWorker(t, "w1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okView("w1"))
	})
	c := newTestCoordinator(t, fastConfig(), f)
	rr, err := c.ExecuteRemote(context.Background(), "fp-1", serve.JobSpec{Asm: "x", TimeoutMS: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Worker != "w1" || rr.Status != "done" || rr.HTTPStatus != 200 || rr.Result == nil || rr.Result.Cycles != 42 {
		t.Fatalf("unexpected result: %+v", rr)
	}
	if st := c.Stats(); st.Jobs != 1 || st.Dispatches != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNoWorkersIsUnavailable(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	_, err := c.ExecuteRemote(context.Background(), "fp-1", serve.JobSpec{TimeoutMS: 1000})
	if !errors.Is(err, serve.ErrRemoteUnavailable) {
		t.Fatalf("err = %v, want ErrRemoteUnavailable", err)
	}
	if st := c.Stats(); st.Degradations != 1 {
		t.Errorf("degradations = %d, want 1", st.Degradations)
	}
}

func TestTransientAnswersRetryWithBackoff(t *testing.T) {
	var calls atomic.Int32
	f := newFakeWorker(t, "w1", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, okView("w1"))
	})
	c := newTestCoordinator(t, fastConfig(), f)
	rr, err := c.ExecuteRemote(context.Background(), "fp-1", serve.JobSpec{TimeoutMS: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Result == nil || calls.Load() != 3 {
		t.Fatalf("result %+v after %d calls, want success on 3rd", rr, calls.Load())
	}
	if st := c.Stats(); st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
}

func TestRetriesExhaustToUnavailable(t *testing.T) {
	f := newFakeWorker(t, "w1", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	cfg := fastConfig()
	cfg.MaxDispatchRetries = 2
	c := newTestCoordinator(t, cfg, f)
	_, err := c.ExecuteRemote(context.Background(), "fp-1", serve.JobSpec{TimeoutMS: 5000})
	if !errors.Is(err, serve.ErrRemoteUnavailable) {
		t.Fatalf("err = %v, want ErrRemoteUnavailable after retry budget", err)
	}
	if st := c.Stats(); st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
}

// TestHedgeWinsOverStraggler pins the primary on a deliberately slow worker
// (by picking a fingerprint homed there) and checks that the hedge fires,
// the fast worker answers, and the straggler's dispatch is cancelled
// through its context — first result wins, loser cancelled.
func TestHedgeWinsOverStraggler(t *testing.T) {
	var slowCancelled atomic.Bool
	slow := newFakeWorker(t, "slow", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			slowCancelled.Store(true)
			return
		case <-time.After(3 * time.Second):
		}
		fmt.Fprint(w, okView("slow"))
	})
	fast := newFakeWorker(t, "fast", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okView("fast"))
	})
	cfg := fastConfig()
	cfg.HedgeColdDelay = 75 * time.Millisecond
	c := newTestCoordinator(t, cfg, slow, fast)

	// Find a fingerprint whose home is the slow worker.
	probe := NewRing(0)
	probe.Add("slow")
	probe.Add("fast")
	fp := ""
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("fp-%d", i)
		if probe.Lookup(k) == "slow" {
			fp = k
			break
		}
	}
	if fp == "" {
		t.Fatal("no key homed on slow worker in 1000 tries")
	}

	start := time.Now()
	rr, err := c.ExecuteRemote(context.Background(), fp, serve.JobSpec{TimeoutMS: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Worker != "fast" {
		t.Fatalf("winner = %q, want the hedged fast worker", rr.Worker)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("hedged job took %s, straggler was not cut off", d)
	}
	if st := c.Stats(); st.Hedges != 1 || st.HedgesWon != 1 {
		t.Errorf("hedge stats = %+v, want 1 launched 1 won", st)
	}
	waitFor(t, "straggler cancellation", 2*time.Second, slowCancelled.Load)
}

// TestPanicAnswerQuarantinesPair: a worker that answers a job with a panic
// gets the (worker, fingerprint) pair quarantined and the job one reroute;
// when every worker has panicked on the key, the failure is relayed and the
// key's next submission finds no eligible worker.
func TestPanicAnswerQuarantinesPair(t *testing.T) {
	panicAnswer := func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"id":"j","status":"failed","error":"sim: worker panic: boom (stack retained server-side, job quarantined on repeat)"}`)
	}
	w1 := newFakeWorker(t, "w1", panicAnswer)
	w2 := newFakeWorker(t, "w2", panicAnswer)
	c := newTestCoordinator(t, fastConfig(), w1, w2)

	rr, err := c.ExecuteRemote(context.Background(), "fp-panic", serve.JobSpec{TimeoutMS: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if rr.HTTPStatus != http.StatusInternalServerError || rr.Status != "failed" || !strings.Contains(rr.Error, "panic") {
		t.Fatalf("relayed result = %+v, want the worker's panic failure", rr)
	}
	st := c.Stats()
	if st.PairsBlocked != 2 {
		t.Errorf("pairs blocked = %d, want 2 (both workers panicked on the key)", st.PairsBlocked)
	}
	if st.Reroutes != 1 {
		t.Errorf("reroutes = %d, want exactly 1 panic reroute", st.Reroutes)
	}
	// The key is now unplaceable; other keys still route.
	if _, err := c.ExecuteRemote(context.Background(), "fp-panic", serve.JobSpec{TimeoutMS: 5000}); !errors.Is(err, serve.ErrRemoteUnavailable) {
		t.Errorf("quarantined key err = %v, want ErrRemoteUnavailable", err)
	}
}

// TestWorkerDeathRequeuesExactlyOnce: the worker running the job dies (hard
// probe failures), the in-flight dispatch is cancelled and requeued to the
// survivor; when the survivor dies too, the client gets the typed
// serve.ErrWorkerLost instead of an unbounded retry loop.
func TestWorkerDeathRequeuesExactlyOnce(t *testing.T) {
	hang := func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}
	w1 := newFakeWorker(t, "w1", hang)
	w2 := newFakeWorker(t, "w2", hang)
	cfg := fastConfig()
	cfg.HedgeDisabled = true
	c := newTestCoordinator(t, cfg, w1, w2)

	errc := make(chan error, 1)
	go func() {
		_, err := c.ExecuteRemote(context.Background(), "fp-doomed", serve.JobSpec{TimeoutMS: 30_000})
		errc <- err
	}()
	waitFor(t, "first dispatch in flight", 2*time.Second, func() bool {
		return w1.gotJobs.Load()+w2.gotJobs.Load() >= 1
	})
	first, second := w1, w2
	if w2.gotJobs.Load() > 0 {
		first, second = w2, w1
	}
	first.readyMode.Store(1)
	waitFor(t, "death requeue", 5*time.Second, func() bool { return c.Stats().Requeues == 1 })
	waitFor(t, "second dispatch in flight", 5*time.Second, func() bool { return second.gotJobs.Load() >= 1 })
	second.readyMode.Store(1)

	select {
	case err := <-errc:
		if !errors.Is(err, serve.ErrWorkerLost) {
			t.Fatalf("err = %v, want ErrWorkerLost after the second death", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job never resolved after both workers died")
	}
	st := c.Stats()
	if st.Requeues != 1 {
		t.Errorf("requeues = %d, want exactly 1", st.Requeues)
	}
	if st.WorkersDead != 2 {
		t.Errorf("workersDead = %d, want 2", st.WorkersDead)
	}
}

// TestDrainingWorkerParksAndRecovers: a worker answering readyz 503 leaves
// the ring (no new placements) without being declared dead, and rejoins as
// soon as it reports ready again.
func TestDrainingWorkerParksAndRecovers(t *testing.T) {
	f := newFakeWorker(t, "w1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okView("w1"))
	})
	c := newTestCoordinator(t, fastConfig(), f)
	waitFor(t, "worker alive", 2*time.Second, func() bool { return c.Stats().WorkersLive == 1 })

	f.readyMode.Store(2)
	waitFor(t, "worker parked", 2*time.Second, func() bool { return c.Stats().WorkersLive == 0 })
	if c.Stats().WorkersDead != 0 {
		t.Errorf("draining worker was declared dead")
	}
	if _, err := c.ExecuteRemote(context.Background(), "fp-1", serve.JobSpec{TimeoutMS: 1000}); !errors.Is(err, serve.ErrRemoteUnavailable) {
		t.Errorf("err = %v, want ErrRemoteUnavailable while the only worker drains", err)
	}

	f.readyMode.Store(0)
	waitFor(t, "worker recovered", 2*time.Second, func() bool { return c.Stats().WorkersLive == 1 })
	if _, err := c.ExecuteRemote(context.Background(), "fp-1", serve.JobSpec{TimeoutMS: 5000}); err != nil {
		t.Errorf("post-recovery job failed: %v", err)
	}
}

func TestJoinEndpointAndMembers(t *testing.T) {
	f := newFakeWorker(t, "w9", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okView("w9"))
	})
	c := newTestCoordinator(t, fastConfig())
	front := httptest.NewServer(c.Mount(http.NotFoundHandler()))
	t.Cleanup(front.Close)

	body := fmt.Sprintf(`{"id":"w9","url":%q,"runners":2}`, f.ts.URL)
	resp, err := http.Post(front.URL+"/fabric/join", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d", resp.StatusCode)
	}
	// Bad joins are rejected.
	resp, err = http.Post(front.URL+"/fabric/join", "application/json", strings.NewReader(`{"id":"","url":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad join: %d, want 400", resp.StatusCode)
	}

	mresp, err := http.Get(front.URL + "/fabric/members")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var view struct {
		Members []MemberView `json:"members"`
		Stats   Stats        `json:"stats"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if len(view.Members) != 1 || view.Members[0].ID != "w9" || view.Members[0].State != "alive" {
		t.Fatalf("members = %+v", view.Members)
	}
	if view.Stats.WorkersTotal != 1 {
		t.Fatalf("stats = %+v", view.Stats)
	}
}

func TestJoinLoopRegistersAndHeartbeats(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	front := httptest.NewServer(c.Mount(http.NotFoundHandler()))
	t.Cleanup(front.Close)
	f := newFakeWorker(t, "w1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okView("w1"))
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go JoinLoop(ctx, front.URL, JoinInfo{ID: "w1", URL: f.ts.URL, Runners: 1}, 20*time.Millisecond, t.Logf)
	waitFor(t, "join-loop registration", 2*time.Second, func() bool {
		m := c.Members()
		return len(m) == 1 && m[0].ID == "w1"
	})
}
