// Package fabric is lfservd's distributed sweep fabric: a coordinator/worker
// mode that shards simulation jobs across nodes while staying correct and
// available when those nodes die, hang, or partition mid-job.
//
// Topology: one coordinator runs the public API (admission, lint preflight,
// SSE, drain — all unchanged from single-node lfservd, provided by
// internal/serve) and owns placement; N workers are plain lfservd processes
// that registered with the coordinator (`lfservd -worker -join=URL`) and
// execute forwarded jobs on their local harnesses, each with its own
// LRU-bounded run-cache.
//
// Placement is a consistent-hash ring keyed on the job's run-cache
// fingerprint (sim.Fingerprint: program content hash x canonicalised config),
// so identical jobs land on the worker that already has the result cached,
// and worker death moves only the dead worker's arc. On top of the ring sits
// a work-stealing dispatcher: every queued job prefers its home worker, and
// an idle worker steals from the longest other queue, so a skewed sweep
// still saturates the cluster.
//
// The robustness layer is the point:
//
//   - Per-worker readiness probes feed a phi-accrual-style failure detector
//     (Alive -> Suspect -> Probation -> Dead; see Detector) so slow workers
//     are routed around long before they are declared dead.
//   - Transport-level dispatch failures retry with exponential backoff and
//     jitter on another worker, bounded by MaxDispatchRetries.
//   - Straggler dispatches are hedged: after a latency-percentile trigger a
//     second copy goes to the next ring node, the first result wins, and the
//     loser is cancelled through its request context.
//   - Worker death requeues its in-flight jobs exactly once; a second death
//     under the same job surfaces serve.ErrWorkerLost instead of retrying
//     forever.
//   - Workers that answer a job with a panic are quarantined per
//     (worker, fingerprint) pair, so a model bug tied to one job cannot
//     repeatedly crash the same node while other traffic still routes there.
//   - When the last worker is lost the coordinator reports
//     serve.ErrRemoteUnavailable and internal/serve degrades the job to
//     local single-node execution: the fabric never fails traffic it can
//     still serve by itself.
//
// A seeded chaos mode (Chaos, `lfservd -chaos-fabric`) kills, partitions,
// and delays workers deterministically; the differential test in
// chaos_test.go checks that sweep results under chaos are identical to a
// clean single-node run — the checker-teeth test at fabric scale.
package fabric

import (
	"fmt"
	"strings"
)

// Version identifies the fabric protocol generation (join payloads and the
// forwarded job API, which is the serve v1 job API).
const Version = "1.0"

// JoinInfo is the worker registration payload (POST /fabric/join).
type JoinInfo struct {
	// ID names the worker; must be unique in the cluster.
	ID string `json:"id"`
	// URL is the base URL the coordinator reaches the worker at.
	URL string `json:"url"`
	// Runners is the worker's concurrent job capacity; the coordinator sizes
	// the worker's dispatch slots from it. <= 0 means 4.
	Runners int `json:"runners,omitempty"`
}

func (j JoinInfo) validate() error {
	if strings.TrimSpace(j.ID) == "" {
		return fmt.Errorf("fabric: join without worker id")
	}
	if !strings.HasPrefix(j.URL, "http://") && !strings.HasPrefix(j.URL, "https://") {
		return fmt.Errorf("fabric: join url %q is not absolute http(s)", j.URL)
	}
	return nil
}

// pairKey is the (worker, fingerprint) quarantine key.
func pairKey(workerID, fingerprint string) string { return workerID + "|" + fingerprint }
