package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// JoinLoop registers a worker with its coordinator and keeps re-registering
// on an interval (default 5s), which doubles as the worker-side heartbeat:
// a coordinator restart loses its member table, and the next beat rebuilds
// it without operator action. Runs until ctx is cancelled. Transitions
// between reachable and unreachable are logged once, not per beat.
func JoinLoop(ctx context.Context, coordinatorURL string, info JoinInfo, interval time.Duration, logf func(string, ...any)) error {
	if err := info.validate(); err != nil {
		return err
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	body, err := json.Marshal(info)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Second}
	joined := false
	attempt := func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordinatorURL+"/fabric/join", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			if joined {
				logf("fabric: lost coordinator %s: %v (will keep retrying)", coordinatorURL, err)
				joined = false
			}
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		ok := resp.StatusCode == http.StatusOK
		if ok && !joined {
			logf("fabric: joined coordinator %s as %s", coordinatorURL, info.ID)
		}
		if !ok && joined {
			logf("fabric: coordinator %s rejected heartbeat: HTTP %d", coordinatorURL, resp.StatusCode)
		}
		joined = ok
	}
	attempt()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			attempt()
		}
	}
}
