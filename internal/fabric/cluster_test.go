package fabric

// In-process cluster integration tests: real serve.Server workers behind a
// real Coordinator, driven through a real serve.Server front end over HTTP.
// These are the fabric's end-to-end contract — affinity routing, SSE across
// worker failover without goroutine leaks, graceful degradation to local
// execution, and the chaos differential (a chaotic 3-node sweep must produce
// byte-identical results to a clean single-node run).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"loopfrog/internal/serve"
)

// loopAsm returns a legal program whose cycle count depends on n, so distinct
// n values give distinct (but deterministic) results.
func loopAsm(n int) string {
	return fmt.Sprintf(`
main:   li   t0, 0
        li   t1, %d
loop:   addi t0, t0, 1
        blt  t0, t1, loop
        halt
`, n)
}

// clusterSpinAsm never halts; only a deadline ends it.
const clusterSpinAsm = `
main:   addi t0, t0, 1
        jal  x0, main
`

type clusterNode struct {
	id  string
	srv *serve.Server
	ts  *httptest.Server
}

type cluster struct {
	coord *Coordinator
	front *serve.Server
	fts   *httptest.Server
	nodes []*clusterNode
}

// newCluster builds n worker daemons, a coordinator probing them, and a
// front-end daemon whose Remote hook is the coordinator. Cleanup order
// (LIFO): front end drains first, then the coordinator cancels its
// dispatches, then the workers shut down — so nothing ever waits on a
// connection the coordinator still holds open.
func newCluster(t *testing.T, n int, chaos *Chaos) *cluster {
	t.Helper()
	cl := &cluster{}
	for i := 0; i < n; i++ {
		node := &clusterNode{id: fmt.Sprintf("w%d", i)}
		node.srv = serve.New(serve.Config{Runners: 2, Workers: 2})
		node.ts = httptest.NewServer(node.srv.Handler())
		srv, ts := node.srv, node.ts
		t.Cleanup(func() {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
			ts.Close()
		})
		cl.nodes = append(cl.nodes, node)
	}
	cfg := fastConfig()
	cfg.Logf = t.Logf
	if chaos != nil {
		cfg.WrapTransport = chaos.WrapTransport
	}
	cl.coord = NewCoordinator(cfg)
	t.Cleanup(cl.coord.Close)
	for _, node := range cl.nodes {
		if err := cl.coord.AddWorker(JoinInfo{ID: node.id, URL: node.ts.URL, Runners: 2}); err != nil {
			t.Fatalf("AddWorker(%s): %v", node.id, err)
		}
	}
	cl.front = serve.New(serve.Config{Runners: 4, Workers: 1, Remote: cl.coord})
	cl.fts = httptest.NewServer(cl.coord.Mount(cl.front.Handler()))
	front, fts := cl.front, cl.fts
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		front.Shutdown(sctx)
		fts.Close()
	})
	waitFor(t, "all workers alive", 5*time.Second, func() bool {
		return cl.coord.Stats().WorkersLive == n
	})
	return cl
}

// clusterView is the slice of the job view these tests read.
type clusterView struct {
	ID          string          `json:"id"`
	Status      string          `json:"status"`
	Fingerprint string          `json:"fingerprint"`
	Error       string          `json:"error"`
	Result      json.RawMessage `json:"result"`
}

func (v clusterView) worker(t *testing.T) string {
	t.Helper()
	var r struct {
		Worker string `json:"worker"`
	}
	if len(v.Result) > 0 {
		if err := json.Unmarshal(v.Result, &r); err != nil {
			t.Fatalf("bad result %s: %v", v.Result, err)
		}
	}
	return r.Worker
}

func clusterPost(t *testing.T, url string, spec map[string]any) (int, clusterView) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v clusterView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("bad job view: %v", err)
	}
	return resp.StatusCode, v
}

func TestClusterAffinityAndCacheReuse(t *testing.T) {
	cl := newCluster(t, 3, nil)
	spec := map[string]any{"name": "aff", "asm": loopAsm(64), "priority": "sweep"}

	code, v1 := clusterPost(t, cl.fts.URL, spec)
	if code != http.StatusOK || v1.Status != "done" {
		t.Fatalf("first submit: %d %+v", code, v1)
	}
	w1 := v1.worker(t)
	if w1 == "" {
		t.Fatalf("first result has no worker: executed locally instead of on the fabric")
	}
	code, v2 := clusterPost(t, cl.fts.URL, spec)
	if code != http.StatusOK || v2.Status != "done" {
		t.Fatalf("second submit: %d %+v", code, v2)
	}
	if w2 := v2.worker(t); w2 != w1 {
		t.Errorf("identical job moved workers: %s then %s (consistent-hash affinity broken)", w1, w2)
	}
	if v1.Fingerprint == "" || v1.Fingerprint != v2.Fingerprint {
		t.Errorf("fingerprints %q vs %q, want equal and non-empty", v1.Fingerprint, v2.Fingerprint)
	}
	// The second run must be served from the executing worker's run cache.
	var hits uint64
	for _, node := range cl.nodes {
		hits += node.srv.Harness().Cache.Hits()
	}
	if hits == 0 {
		t.Errorf("no worker cache hit after identical resubmission; affinity exists but cache reuse does not")
	}
}

func TestClusterAllWorkersLostDegradesLocal(t *testing.T) {
	chaos, err := ParseChaos("kill=0.000001", 7)
	if err != nil {
		t.Fatal(err)
	}
	cl := newCluster(t, 2, chaos)

	// Sanity: the fabric works before the outage.
	code, v := clusterPost(t, cl.fts.URL, map[string]any{"asm": loopAsm(32)})
	if code != http.StatusOK || v.worker(t) == "" {
		t.Fatalf("pre-outage submit: %d worker=%q", code, v.worker(t))
	}

	for _, node := range cl.nodes {
		chaos.Kill(node.id)
	}
	waitFor(t, "all workers dead", 10*time.Second, func() bool {
		return cl.coord.Stats().WorkersLive == 0
	})

	code, v = clusterPost(t, cl.fts.URL, map[string]any{"asm": loopAsm(48)})
	if code != http.StatusOK || v.Status != "done" {
		t.Fatalf("post-outage submit: %d %+v, want local degradation success", code, v)
	}
	if w := v.worker(t); w != "" {
		t.Errorf("post-outage job reports worker %q, want local execution (empty)", w)
	}
	if st := cl.coord.Stats(); st.Degradations == 0 {
		t.Errorf("stats = %+v, want Degradations > 0", st)
	}
}

// sseEvents streams GET /v1/jobs/{id}?stream=1 until the terminal event and
// returns the event names in order plus the terminal data payload.
func sseEvents(t *testing.T, url, id string) ([]string, string) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("stream content-type = %q", ct)
	}
	var names []string
	var lastData string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			names = append(names, name)
			if name == "done" {
				// The terminal payload is the done event's own data line,
				// not whatever progress sample preceded it.
				lastData = ""
			}
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			lastData = data
		}
		if len(names) > 0 && names[len(names)-1] == "done" && lastData != "" {
			break
		}
	}
	return names, lastData
}

// TestClusterSSEFailoverNoGoroutineLeak kills the worker executing a
// streamed job mid-flight. The SSE client must still receive a terminal
// event (the requeued attempt's outcome), and the whole exchange — failover,
// requeue, stream teardown — must not leak goroutines.
func TestClusterSSEFailoverNoGoroutineLeak(t *testing.T) {
	chaos, err := ParseChaos("kill=0.000001", 11)
	if err != nil {
		t.Fatal(err)
	}
	cl := newCluster(t, 3, chaos)

	// Warm the front end and measure the steady-state goroutine count.
	if code, v := clusterPost(t, cl.fts.URL, map[string]any{"asm": loopAsm(16)}); code != http.StatusOK || v.Status != "done" {
		t.Fatalf("warmup: %d %+v", code, v)
	}
	time.Sleep(50 * time.Millisecond)
	base := runtime.NumGoroutine()

	code, v := clusterPost(t, cl.fts.URL, map[string]any{
		"name": "spin", "asm": clusterSpinAsm, "timeout_ms": 2000, "async": true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("async submit: %d %+v", code, v)
	}
	if v.Fingerprint == "" {
		t.Errorf("async accept view has no fingerprint")
	}

	done := make(chan struct{})
	var events []string
	var terminal string
	go func() {
		defer close(done)
		events, terminal = sseEvents(t, cl.fts.URL, v.ID)
	}()

	// Find the worker actually executing the spin and kill it.
	var victim string
	waitFor(t, "spin dispatched to a worker", 5*time.Second, func() bool {
		for _, m := range cl.coord.Members() {
			if m.Inflight > 0 {
				victim = m.ID
				return true
			}
		}
		return false
	})
	chaos.Kill(victim)
	waitFor(t, "victim detected dead", 10*time.Second, func() bool {
		return cl.coord.Stats().WorkersDead >= 1
	})

	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("SSE stream never reached a terminal event after worker failover")
	}
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Fatalf("SSE events = %v, want trailing done event", events)
	}
	// The spin's requeued attempt ends at its deadline on the surviving
	// worker; the terminal view must be that worker's 504, not a hang or a
	// coordinator-invented error.
	if !strings.Contains(terminal, `"failed"`) || !strings.Contains(terminal, "deadline") {
		t.Errorf("terminal view %s, want the surviving worker's deadline failure", terminal)
	}
	if st := cl.coord.Stats(); st.Requeues != 1 {
		t.Errorf("stats = %+v, want exactly one requeue", st)
	}

	waitFor(t, "goroutines settle after failover", 10*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+5
	})
}

// TestChaosFabricDifferential is the tentpole acceptance check: a sweep run
// on a 3-node fabric under seeded chaos (kills, partitions, delays) must
// produce results byte-identical to a clean single-node run, with only the
// worker attribution differing.
func TestChaosFabricDifferential(t *testing.T) {
	specs := make([]map[string]any, 10)
	for i := range specs {
		specs[i] = map[string]any{
			"name":     fmt.Sprintf("sweep-%d", i),
			"asm":      loopAsm(100 + 50*i),
			"priority": "sweep",
		}
	}

	// Clean single-node reference.
	single := serve.New(serve.Config{Runners: 2, Workers: 2})
	sts := httptest.NewServer(single.Handler())
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		single.Shutdown(sctx)
		sts.Close()
	})
	want := make([]string, len(specs))
	for i, spec := range specs {
		code, v := clusterPost(t, sts.URL, spec)
		if code != http.StatusOK || v.Status != "done" {
			t.Fatalf("single-node %s: %d %+v", spec["name"], code, v)
		}
		want[i] = normalizeResult(t, v.Result)
	}

	// Chaotic 3-node fabric, pinned seed: the injected kills, partition
	// windows and delays replay identically run over run.
	chaos, err := ParseChaos("kill=0.0005,partition=0.02,delay=0.1", 42)
	if err != nil {
		t.Fatal(err)
	}
	cl := newCluster(t, 3, chaos)
	for i, spec := range specs {
		code, v := clusterPost(t, cl.fts.URL, spec)
		if code != http.StatusOK || v.Status != "done" {
			t.Fatalf("fabric %s: %d %+v", spec["name"], code, v)
		}
		if got := normalizeResult(t, v.Result); got != want[i] {
			t.Errorf("%s: fabric result diverges under chaos\n fabric: %s\n single: %s", spec["name"], got, want[i])
		}
	}
	st := cl.coord.Stats()
	t.Logf("chaos run stats: %+v", st)
	if st.Jobs == 0 {
		t.Errorf("no jobs reached the coordinator; differential proved nothing")
	}
}

// normalizeResult strips worker attribution (the only field allowed to
// differ between local and fabric execution) and re-marshals with sorted
// keys so comparison is byte-exact.
func normalizeResult(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("bad result %s: %v", raw, err)
	}
	delete(m, "worker")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
