package fabric

import (
	"testing"
	"time"
)

// tick advances a fake clock by d and returns the new now.
func tick(now *time.Time, d time.Duration) time.Time {
	*now = now.Add(d)
	return *now
}

func TestDetectorStaysAliveUnderRegularProbes(t *testing.T) {
	now := time.Unix(0, 0)
	d := NewDetector(DetectorConfig{}, now)
	for i := 0; i < 50; i++ {
		if st, changed := d.ObserveSuccess(tick(&now, 100*time.Millisecond)); st != StateAlive || changed {
			t.Fatalf("probe %d: state %v changed=%v, want steady alive", i, st, changed)
		}
	}
	if phi := d.Phi(now); phi > 1.5 {
		t.Errorf("healthy phi = %.2f, want ~<=1", phi)
	}
}

func TestDetectorEscalatesThroughStates(t *testing.T) {
	now := time.Unix(0, 0)
	d := NewDetector(DetectorConfig{}, now)
	for i := 0; i < 10; i++ {
		d.ObserveSuccess(tick(&now, 100*time.Millisecond))
	}
	// Silence: soft failures accrue phi (mean interval 100ms, thresholds
	// 3/5/8 → suspect at 300ms, probation at 500ms, dead at 800ms).
	st, changed := d.ObserveFailure(tick(&now, 350*time.Millisecond), false)
	if st != StateSuspect || !changed {
		t.Fatalf("after 350ms silence: %v changed=%v, want suspect", st, changed)
	}
	st, changed = d.ObserveFailure(tick(&now, 200*time.Millisecond), false)
	if st != StateProbation || !changed {
		t.Fatalf("after 550ms silence: %v changed=%v, want probation", st, changed)
	}
	st, changed = d.ObserveFailure(tick(&now, 300*time.Millisecond), false)
	if st != StateDead || !changed {
		t.Fatalf("after 850ms silence: %v changed=%v, want dead", st, changed)
	}
	// Dead does not de-escalate on further failures.
	if st, _ = d.ObserveFailure(tick(&now, time.Millisecond), false); st != StateDead {
		t.Fatalf("dead de-escalated to %v", st)
	}
}

func TestDetectorHardFailuresShortCircuit(t *testing.T) {
	now := time.Unix(0, 0)
	d := NewDetector(DetectorConfig{ProbeHardFailures: 3, MinInterval: time.Hour}, now)
	// MinInterval of an hour keeps phi ~0, so only the hard-failure counter
	// can kill: connection-refused is conclusive without accrual.
	var st WorkerState
	for i := 0; i < 3; i++ {
		st, _ = d.ObserveFailure(tick(&now, time.Millisecond), true)
	}
	if st != StateDead {
		t.Fatalf("state after 3 hard failures = %v, want dead", st)
	}
}

func TestDetectorRecovery(t *testing.T) {
	now := time.Unix(0, 0)
	d := NewDetector(DetectorConfig{RejoinProbes: 3}, now)
	for i := 0; i < 8; i++ {
		d.ObserveSuccess(tick(&now, 100*time.Millisecond))
	}
	d.ObserveFailure(tick(&now, 350*time.Millisecond), false)
	if st := d.State(); st != StateSuspect {
		t.Fatalf("setup: %v, want suspect", st)
	}
	// A suspect that answers recovers immediately.
	if st, changed := d.ObserveSuccess(tick(&now, 50*time.Millisecond)); st != StateAlive || !changed {
		t.Fatalf("suspect + success = %v changed=%v, want alive", st, changed)
	}
	// Kill it, then count it back in: RejoinProbes consecutive successes
	// reach only Probation; one more success restores Alive.
	for i := 0; i < 4; i++ {
		d.ObserveFailure(tick(&now, time.Second), true)
	}
	if st := d.State(); st != StateDead {
		t.Fatalf("setup: %v, want dead", st)
	}
	var st WorkerState
	for i := 0; i < 3; i++ {
		st, _ = d.ObserveSuccess(tick(&now, 100*time.Millisecond))
	}
	if st != StateProbation {
		t.Fatalf("dead + 3 successes = %v, want probation", st)
	}
	if st, _ = d.ObserveSuccess(tick(&now, 100*time.Millisecond)); st != StateAlive {
		t.Fatalf("probation + success = %v, want alive", st)
	}
}

func TestDetectorNotReadyParksInProbation(t *testing.T) {
	now := time.Unix(0, 0)
	d := NewDetector(DetectorConfig{}, now)
	for i := 0; i < 5; i++ {
		d.ObserveSuccess(tick(&now, 100*time.Millisecond))
	}
	st, changed := d.ObserveNotReady(tick(&now, 100*time.Millisecond))
	if st != StateProbation || !changed {
		t.Fatalf("alive + 503 = %v changed=%v, want probation", st, changed)
	}
	// Draining is not death suspicion: phi stays low and further 503s keep
	// it parked, never dead.
	for i := 0; i < 20; i++ {
		st, _ = d.ObserveNotReady(tick(&now, 100*time.Millisecond))
	}
	if st != StateProbation {
		t.Fatalf("long drain = %v, want probation", st)
	}
	if st, _ = d.ObserveSuccess(tick(&now, 100*time.Millisecond)); st != StateAlive {
		t.Fatalf("drain over = %v, want alive", st)
	}
}
