package fabric

import (
	"fmt"
	"sync"
	"time"
)

// WorkerState is a worker's position in the failure-detection state machine.
//
// The escalation path is Alive → Suspect → Probation → Dead, driven by a
// phi-accrual-style suspicion value: instead of a binary timeout, the
// detector tracks the inter-arrival times of successful readiness probes and
// computes phi = (time since the last success) / (mean successful interval).
// A worker that answers every probe holds phi near 1; a worker that stops
// answering accrues suspicion continuously, and each threshold crossing
// escalates the state — so a slow worker is treated gently (routed around)
// long before it is declared dead (requeued away from).
//
//	Alive      full member: routed to, steals work, on the ring.
//	Suspect    phi ≥ SuspectPhi: no new work (no dispatch, no stealing),
//	           stays on the ring, in-flight jobs continue.
//	Probation  phi ≥ ProbationPhi: off the ring, queued jobs re-homed,
//	           in-flight jobs still allowed to finish. Also the state a
//	           recovering or draining (readyz 503) worker waits in.
//	Dead       phi ≥ DeadPhi or ProbeHardFailures consecutive hard probe
//	           failures: off the ring, in-flight jobs cancelled and requeued
//	           exactly once, dispatch slots idled.
//
// Recovery: a successful probe from Suspect or Probation restores Alive
// immediately (the worker proved itself before being declared dead). A Dead
// worker must first answer RejoinProbes consecutive probes — it re-enters
// through Probation and is only then restored to the ring, so a flapping
// worker cannot oscillate jobs on and off its arc.
type WorkerState int32

const (
	StateAlive WorkerState = iota
	StateSuspect
	StateProbation
	StateDead
)

func (s WorkerState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateProbation:
		return "probation"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("WorkerState(%d)", int32(s))
	}
}

// DetectorConfig tunes one worker's failure detector. The zero value takes
// every documented default.
type DetectorConfig struct {
	// SuspectPhi, ProbationPhi, DeadPhi are the escalation thresholds on the
	// suspicion value. Defaults: 3, 5, 8.
	SuspectPhi   float64
	ProbationPhi float64
	DeadPhi      float64
	// ProbeHardFailures short-circuits to Dead after this many consecutive
	// hard probe failures (connection refused — the process is gone, no need
	// to accrue). <= 0 means 4.
	ProbeHardFailures int
	// RejoinProbes is how many consecutive successful probes a Dead worker
	// needs before it re-enters service through Probation. <= 0 means 3.
	RejoinProbes int
	// MinInterval floors the mean-interval estimate so a burst of fast
	// probes cannot make phi explode on the first hiccup. <= 0 means 100ms.
	MinInterval time.Duration
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.SuspectPhi <= 0 {
		c.SuspectPhi = 3
	}
	if c.ProbationPhi <= c.SuspectPhi {
		c.ProbationPhi = c.SuspectPhi + 2
	}
	if c.DeadPhi <= c.ProbationPhi {
		c.DeadPhi = c.ProbationPhi + 3
	}
	if c.ProbeHardFailures <= 0 {
		c.ProbeHardFailures = 4
	}
	if c.RejoinProbes <= 0 {
		c.RejoinProbes = 3
	}
	if c.MinInterval <= 0 {
		c.MinInterval = 100 * time.Millisecond
	}
	return c
}

// detectorWindow is how many successful inter-arrival samples the mean is
// computed over.
const detectorWindow = 16

// Detector is one worker's phi-accrual-style failure detector. Methods take
// an explicit clock so the state machine is testable without sleeping; the
// prober passes time.Now(). Safe for concurrent use.
type Detector struct {
	cfg DetectorConfig

	mu        sync.Mutex
	state     WorkerState
	lastOK    time.Time
	intervals [detectorWindow]float64 // seconds between successful probes
	nsamples  int
	nextslot  int
	hardFails int
	consecOK  int
}

// NewDetector returns a detector in the Alive state whose clock starts at
// now.
func NewDetector(cfg DetectorConfig, now time.Time) *Detector {
	return &Detector{cfg: cfg.withDefaults(), state: StateAlive, lastOK: now}
}

// State returns the current state.
func (d *Detector) State() WorkerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Phi returns the current suspicion value: elapsed time since the last
// successful probe over the mean successful inter-arrival time. ~1 for a
// healthy worker, growing without bound for a silent one.
func (d *Detector) Phi(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.phiLocked(now)
}

func (d *Detector) phiLocked(now time.Time) float64 {
	mean := d.meanIntervalLocked()
	elapsed := now.Sub(d.lastOK).Seconds()
	if elapsed < 0 {
		elapsed = 0
	}
	return elapsed / mean
}

func (d *Detector) meanIntervalLocked() float64 {
	floor := d.cfg.MinInterval.Seconds()
	if d.nsamples == 0 {
		return floor
	}
	var sum float64
	for i := 0; i < d.nsamples; i++ {
		sum += d.intervals[i]
	}
	mean := sum / float64(d.nsamples)
	if mean < floor {
		mean = floor
	}
	return mean
}

// ObserveSuccess records a successful readiness probe and returns the (new
// state, whether it changed). Suspect and Probation recover to Alive at
// once; Dead counts consecutive successes and re-enters through Probation.
func (d *Detector) ObserveSuccess(now time.Time) (WorkerState, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if iv := now.Sub(d.lastOK).Seconds(); iv > 0 {
		d.intervals[d.nextslot] = iv
		d.nextslot = (d.nextslot + 1) % detectorWindow
		if d.nsamples < detectorWindow {
			d.nsamples++
		}
	}
	d.lastOK = now
	d.hardFails = 0
	prev := d.state
	switch d.state {
	case StateSuspect, StateProbation:
		d.state = StateAlive
		d.consecOK = 0
	case StateDead:
		d.consecOK++
		if d.consecOK >= d.cfg.RejoinProbes {
			d.state = StateProbation
			d.consecOK = 0
		}
	default:
		d.consecOK = 0
	}
	return d.state, d.state != prev
}

// ObserveNotReady records a 503 readiness answer: the worker is alive but
// draining, so it parks in Probation (no new work, in-flight continues)
// without accruing death suspicion. The probe still counts as contact.
func (d *Detector) ObserveNotReady(now time.Time) (WorkerState, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastOK = now
	d.hardFails = 0
	d.consecOK = 0
	prev := d.state
	if d.state == StateAlive || d.state == StateSuspect {
		d.state = StateProbation
	}
	return d.state, d.state != prev
}

// ObserveFailure records a failed probe (timeout or connection error; hard
// reports connection-refused-style failures that short-circuit the accrual)
// and returns the (new state, whether it changed). State only escalates
// here; recovery is ObserveSuccess's job.
func (d *Detector) ObserveFailure(now time.Time, hard bool) (WorkerState, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.consecOK = 0
	if hard {
		d.hardFails++
	}
	prev := d.state
	phi := d.phiLocked(now)
	next := prev
	switch {
	case d.hardFails >= d.cfg.ProbeHardFailures || phi >= d.cfg.DeadPhi:
		next = StateDead
	case phi >= d.cfg.ProbationPhi:
		next = StateProbation
	case phi >= d.cfg.SuspectPhi:
		next = StateSuspect
	}
	// Escalate only: a Dead worker cannot fall back to Suspect because phi
	// shrank (it can only rejoin through ObserveSuccess).
	if next > d.state {
		d.state = next
	}
	return d.state, d.state != prev
}
