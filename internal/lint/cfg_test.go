package lint

import (
	"testing"

	"loopfrog/internal/asm"
)

const loopSrc = `
main:   li   t0, 0
        li   t1, 8
        jal  ra, helper
loop:   addi t0, t0, 1
        blt  t0, t1, loop
        halt
helper: addi t2, x0, 1
        jalr x0, ra, 0
`

func TestCFGBlocksAndFunctions(t *testing.T) {
	p := asm.MustAssemble("cfg", loopSrc)
	g := buildCFG(p)

	if len(g.funcs) != 2 {
		t.Fatalf("expected 2 functions (main, helper), got %d", len(g.funcs))
	}
	helper := p.MustLabel("helper")
	if g.funcOf[helper] == nil {
		t.Fatal("helper not detected as a function entry")
	}
	if len(g.calls) != 1 {
		t.Fatalf("expected 1 call site, got %d", len(g.calls))
	}
	// The call must not create an edge into helper: main's blocks and
	// helper's blocks are disjoint.
	mainFn := g.funcOf[p.Entry]
	for _, bi := range mainFn.blocks {
		if g.blocks[bi].Start >= helper {
			t.Errorf("main function claims helper block starting at pc %d", g.blocks[bi].Start)
		}
	}

	// The backedge loop -> loop must be detected as a natural loop.
	loops := g.naturalLoops(mainFn)
	if len(loops) != 1 {
		t.Fatalf("expected 1 natural loop, got %d", len(loops))
	}
	lb := g.blockOf[p.MustLabel("loop")]
	if loops[0].header != lb {
		t.Errorf("loop header = block %d, want block %d", loops[0].header, lb)
	}
	if !loops[0].body[lb] {
		t.Error("loop body does not contain its header")
	}
}

func TestDominators(t *testing.T) {
	p := asm.MustAssemble("dom", `
main:   li   t0, 0
        beq  t0, x0, right
left:   addi t1, t0, 1
        jal  x0, join
right:  addi t1, t0, 2
join:   addi t2, t1, 0
        halt
`)
	g := buildCFG(p)
	f := g.funcOf[p.Entry]
	dom := g.dominators(f)
	entry := g.blockOf[p.Entry]
	join := g.blockOf[p.MustLabel("join")]
	left := g.blockOf[p.MustLabel("left")]
	right := g.blockOf[p.MustLabel("right")]
	if !dom[join][entry] {
		t.Error("entry must dominate join")
	}
	if dom[join][left] || dom[join][right] {
		t.Error("neither diamond arm may dominate the join")
	}
	if !dom[left][entry] || !dom[right][entry] {
		t.Error("entry must dominate both arms")
	}
}

func TestRegSetOps(t *testing.T) {
	var s regSet
	s.add(3)
	s.add(40)
	if !s.has(3) || !s.has(40) || s.has(4) {
		t.Fatal("membership broken")
	}
	var o regSet
	o.add(3)
	if got := s.minus(o); got.has(3) || !got.has(40) {
		t.Fatal("minus broken")
	}
	if got := s.union(o).regs(); len(got) != 2 {
		t.Fatalf("union/regs broken: %v", got)
	}
	if s.empty() {
		t.Fatal("empty broken")
	}
}
