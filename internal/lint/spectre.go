package lint

import (
	"fmt"
	"sort"

	"loopfrog/internal/isa"
)

// Speculative-leak gadget detection (LF3xx). The core executes transiently in
// two windows: the wrong path between a conditional branch's dispatch and its
// execute-time resolution, and the whole body of a detach-region epoch until
// the threadlet is promoted. A load executing in either window can observe
// data the architectural path never would (a bounds-check bypass, a stale SSB
// value); if that result flows into the address of a later memory access, the
// access imprints a secret-derived line on the cache hierarchy — state that
// squash does not undo. This pass finds those dataflow shapes statically.
//
// Sources are loads that can execute transiently: loads in the speculation
// shadow of a conditional branch (any block reachable from a two-way branch's
// successors) and loads inside a reconstructed epoch region. Taint propagates
// forward through register dataflow: ALU results of tainted operands are
// tainted, loads from tainted addresses yield tainted data (a dereference of
// attacker-influenced state), calls conservatively clear taint on registers
// the callee may write (an under-approximation that keeps the pass quiet on
// spill/reload idioms). Sinks are memory accesses whose address register is
// tainted: LF301 for loads, LF302 for stores, plus LF303 when the sink sits
// inside an epoch region where the transient window is longest. Each finding
// carries a witness: the pc chain from the source load to the sink.

// maxWitness caps the recorded witness chain length; longer flows are
// truncated from the front, keeping the source and the hops nearest the sink.
const maxWitness = 12

// specSource classifies why a load can execute transiently.
type specSource uint8

const (
	srcNone specSource = iota
	srcWrongPath
	srcEpoch
)

// checkSpectre runs the LF3xx gadget analysis and appends findings to rep.
func checkSpectre(g *cfg, regions []*region, rep *Report) {
	if len(g.blocks) == 0 {
		return
	}
	computeSummaries(g)

	inRegion := make(map[int]*region)
	for _, r := range regions {
		for pc := range r.interior {
			if _, ok := inRegion[pc]; !ok {
				inRegion[pc] = r
			}
		}
	}

	type finding struct {
		code    string
		pc      int
		witness []int
		source  int
		kind    specSource
	}
	found := make(map[string]finding) // keyed code|pc, first witness wins
	record := func(code string, pc int, chain []int, kind specSource) {
		key := fmt.Sprintf("%s|%d", code, pc)
		if _, ok := found[key]; ok {
			return
		}
		src := pc
		if len(chain) > 0 {
			src = chain[0]
		}
		wit := append(append([]int(nil), chain...), pc)
		if len(wit) > maxWitness {
			head := wit[0]
			wit = append([]int{head}, wit[len(wit)-(maxWitness-1):]...)
		}
		found[key] = finding{code: code, pc: pc, witness: wit, source: src, kind: kind}
	}

	for _, f := range g.funcs {
		shadowed := branchShadow(g, f)
		sourceOf := func(pc int) specSource {
			in := g.prog.Insts[pc]
			if !isa.OpMeta(in.Op).IsLoad {
				return srcNone
			}
			if _, ok := inRegion[pc]; ok {
				return srcEpoch
			}
			if shadowed[g.blockOf[pc]] {
				return srcWrongPath
			}
			return srcNone
		}

		// Forward taint over the function's blocks. State is register ->
		// witness chain (pcs, source load first). Join is union with
		// first-writer-wins on chains; the tainted key set only grows, so the
		// fixpoint terminates.
		type state map[isa.Reg][]int
		ins := make(map[int]state, len(f.blocks))
		for _, bi := range f.blocks {
			ins[bi] = state{}
		}
		kinds := make(map[int]specSource) // source pc -> kind, for messages

		for changed := true; changed; {
			changed = false
			for _, bi := range f.blocks {
				// The block's IN state accumulates predecessor OUT states
				// below; work on a copy so the accumulated IN stays a join.
				cur := state{}
				for r, c := range ins[bi] {
					cur[r] = c
				}
				for pc := g.blocks[bi].Start; pc < g.blocks[bi].End; pc++ {
					in := g.prog.Insts[pc]
					m := isa.OpMeta(in.Op)
					var taintedOperand []int
					haveTaint := false
					if m.HasRs1 && in.Rs1 != regZero {
						if c, ok := cur[in.Rs1]; ok {
							taintedOperand, haveTaint = c, true
						}
					}
					if !haveTaint && m.HasRs2 && in.Rs2 != regZero {
						if c, ok := cur[in.Rs2]; ok {
							taintedOperand, haveTaint = c, true
						}
					}

					// Sinks: address register is Rs1 for both loads and stores.
					addrTainted := false
					var addrChain []int
					if (m.IsLoad || m.IsStore) && in.Rs1 != regZero {
						if c, ok := cur[in.Rs1]; ok {
							addrTainted, addrChain = true, c
						}
					}
					if addrTainted {
						src := pc
						if len(addrChain) > 0 {
							src = addrChain[0]
						}
						kind := kinds[src]
						if m.IsLoad {
							record(CodeSpecLoadFeedsLoad, pc, addrChain, kind)
						} else if m.IsStore {
							record(CodeSpecLoadFeedsStore, pc, addrChain, kind)
						}
					}

					// Transfer.
					switch classify(in) {
					case kindCall:
						if callee := g.funcOf[int(in.Imm)]; callee != nil {
							for _, r := range callee.mayWrite.regs() {
								delete(cur, r)
							}
						}
						for _, r := range instDefs(in).regs() {
							delete(cur, r)
						}
					default:
						defs := instDefs(in).regs()
						switch {
						case m.IsLoad && len(defs) > 0:
							if k := sourceOf(pc); k != srcNone {
								cur[defs[0]] = []int{pc}
								if _, ok := kinds[pc]; !ok {
									kinds[pc] = k
								}
							} else if addrTainted {
								cur[defs[0]] = extendChain(addrChain, pc)
							} else {
								delete(cur, defs[0])
							}
						case len(defs) > 0 && haveTaint:
							cur[defs[0]] = extendChain(taintedOperand, pc)
						case len(defs) > 0:
							delete(cur, defs[0])
						}
					}
				}
				// Propagate OUT to successors' IN (union, first chain wins).
				for _, s := range g.blocks[bi].Succs {
					if !f.inSet[s] {
						continue
					}
					dst := ins[s]
					for r, c := range cur {
						if _, ok := dst[r]; !ok {
							dst[r] = c
							changed = true
						}
					}
				}
			}
		}
	}

	keys := make([]string, 0, len(found))
	for k := range found {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fd := found[k]
		srcWhy := "a speculatively reachable load"
		switch fd.kind {
		case srcWrongPath:
			srcWhy = "a wrong-path-reachable load"
		case srcEpoch:
			srcWhy = "an epoch-speculative load"
		}
		region := int64(-1)
		if r, ok := inRegion[fd.pc]; ok {
			region = r.id
		}
		switch fd.code {
		case CodeSpecLoadFeedsLoad:
			rep.add(Diagnostic{
				Code: CodeSpecLoadFeedsLoad, Severity: SevSecurity, PC: fd.pc, Region: region,
				Witness: fd.witness,
				Message: fmt.Sprintf("load address depends on the result of %s at pc %d: a Spectre-shaped read gadget whose transient cache access survives squash", srcWhy, fd.source),
			})
		case CodeSpecLoadFeedsStore:
			rep.add(Diagnostic{
				Code: CodeSpecLoadFeedsStore, Severity: SevSecurity, PC: fd.pc, Region: region,
				Witness: fd.witness,
				Message: fmt.Sprintf("store address depends on the result of %s at pc %d: under misprediction the store targets a secret-derived address", srcWhy, fd.source),
			})
		}
		if region >= 0 {
			rep.add(Diagnostic{
				Code: CodeGadgetInRegion, Severity: SevSecurity, PC: fd.pc, Region: region,
				Witness: fd.witness,
				Message: fmt.Sprintf("speculative-leak gadget sits inside detach region %d: epoch speculation keeps the transient window open until promotion, far past branch resolution", region),
			})
		}
	}
}

// extendChain appends pc to a witness chain without aliasing the source slice.
func extendChain(chain []int, pc int) []int {
	out := make([]int, 0, len(chain)+1)
	out = append(out, chain...)
	return append(out, pc)
}

// branchShadow returns the blocks of f reachable from a two-way conditional
// branch's successors: the instructions the front end can run down while the
// branch is unresolved.
func branchShadow(g *cfg, f *fn) map[int]bool {
	shadow := make(map[int]bool)
	var work []int
	for _, bi := range f.blocks {
		b := &g.blocks[bi]
		if b.End-b.Start < 1 {
			continue
		}
		if classify(g.prog.Insts[b.End-1]) == kindBranch && len(b.Succs) == 2 {
			work = append(work, b.Succs...)
		}
	}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		if shadow[bi] || !f.inSet[bi] {
			continue
		}
		shadow[bi] = true
		work = append(work, g.blocks[bi].Succs...)
	}
	return shadow
}
