package lint

import (
	"sort"

	"loopfrog/internal/asm"
	"loopfrog/internal/isa"
)

// Control-flow reconstruction over a flat LFISA image. Blocks are maximal
// straight-line instruction runs; calls (jal with a link register) are
// summarised with a fall-through edge so each function forms its own graph,
// and jalr x0, ra is treated as a function return. Hints are architectural
// NOPs and never end a block.

// ABI register indices the analyses rely on.
const (
	regZero = 0 // x0, hardwired zero
	regRA   = 1 // x1, link register
	regSP   = 2 // x2, stack pointer
)

// instKind classifies an instruction's control-flow role.
type instKind int

const (
	kindPlain instKind = iota
	kindBranch
	kindJump   // jal x0
	kindCall   // jal rd!=x0 (link)
	kindReturn // jalr x0, ra-style indirect with link-register source
	kindIndirect
	kindHalt
)

func classify(in isa.Inst) instKind {
	switch {
	case in.Op == isa.HALT:
		return kindHalt
	case in.Op == isa.JAL && in.Rd == 0:
		return kindJump
	case in.Op == isa.JAL:
		return kindCall
	case in.Op == isa.JALR && in.Rd == 0 && in.Rs1 == regRA:
		return kindReturn
	case in.Op == isa.JALR:
		return kindIndirect
	case isa.OpMeta(in.Op).IsBranch:
		return kindBranch
	}
	return kindPlain
}

// block is a basic block: instructions [Start, End).
type block struct {
	Start, End  int
	Succs       []int // successor block indices
	Preds       []int
	HasIndirect bool // ends in an unanalyzable indirect jump
	FallsOffEnd bool // control can run past the last instruction
}

// cfg is the reconstructed whole-program graph plus per-function views.
type cfg struct {
	prog     *asm.Program
	blocks   []block
	blockOf  []int // instruction index -> block index
	calls    map[int]int
	funcs    []*fn
	funcOf   map[int]*fn // function entry pc -> fn
	indirect []int       // pcs of unanalyzable indirect jumps
}

// fn is one function: the blocks reachable from an entry without following
// call edges.
type fn struct {
	entryPC int
	blocks  []int        // block indices, sorted
	inSet   map[int]bool // membership by block index

	// Interprocedural summaries (fixpointed in dataflow.go).
	mayRead   regSet // registers the function may read before writing
	mayWrite  regSet // registers whose value may differ on return
	preserved regSet // registers restored by every return path

	// Liveness, block-indexed by position in blocks.
	liveIn map[int]regSet // block index -> live-in set
}

// instSuccs returns the instruction-level successors of pc under NOP-hint
// sequential semantics (call edges summarised as fall-through).
func (g *cfg) instSuccs(pc int) []int {
	in := g.prog.Insts[pc]
	switch classify(in) {
	case kindHalt, kindReturn, kindIndirect:
		return nil
	case kindJump:
		return []int{int(in.Imm)}
	case kindBranch:
		if int(in.Imm) == pc+1 || pc+1 >= len(g.prog.Insts) {
			return []int{int(in.Imm)}
		}
		return []int{int(in.Imm), pc + 1}
	case kindCall:
		if pc+1 < len(g.prog.Insts) {
			return []int{pc + 1}
		}
		return nil
	default:
		if pc+1 < len(g.prog.Insts) {
			return []int{pc + 1}
		}
		return nil
	}
}

// buildCFG reconstructs blocks, edges, call sites and functions.
func buildCFG(p *asm.Program) *cfg {
	n := len(p.Insts)
	g := &cfg{prog: p, calls: make(map[int]int), funcOf: make(map[int]*fn)}
	if n == 0 {
		return g
	}

	// Leaders: entry, every label, every control-flow target, every
	// instruction after a control transfer, and every hint continuation
	// (so region IDs start blocks).
	leader := make([]bool, n+1)
	leader[0] = true
	leader[p.Entry] = true
	for _, idx := range p.Labels {
		if idx >= 0 && idx <= n {
			leader[idx] = true
		}
	}
	for pc, in := range p.Insts {
		m := isa.OpMeta(in.Op)
		switch classify(in) {
		case kindBranch, kindJump:
			if t := int(in.Imm); t >= 0 && t < n {
				leader[t] = true
			}
			if pc+1 < n {
				leader[pc+1] = true
			}
		case kindCall:
			if t := int(in.Imm); t >= 0 && t < n {
				leader[t] = true
			}
			g.calls[pc] = int(in.Imm)
			if pc+1 < n {
				leader[pc+1] = true
			}
		case kindReturn, kindIndirect, kindHalt:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
		if m.IsHint {
			if t := int(in.Imm); t >= 0 && t < n {
				leader[t] = true
			}
		}
	}

	g.blockOf = make([]int, n)
	for start := 0; start < n; {
		end := start + 1
		for end < n && !leader[end] {
			end++
		}
		bi := len(g.blocks)
		g.blocks = append(g.blocks, block{Start: start, End: end})
		for pc := start; pc < end; pc++ {
			g.blockOf[pc] = bi
		}
		start = end
	}

	for bi := range g.blocks {
		b := &g.blocks[bi]
		last := b.End - 1
		in := p.Insts[last]
		k := classify(in)
		if k == kindIndirect {
			b.HasIndirect = true
			g.indirect = append(g.indirect, last)
		}
		// A block at the end of the image whose last instruction can fall
		// through runs off the end.
		if b.End >= n && (k == kindPlain || k == kindCall || k == kindBranch) {
			b.FallsOffEnd = true
		}
		for _, s := range g.instSuccs(last) {
			sb := g.blockOf[s]
			b.Succs = append(b.Succs, sb)
			g.blocks[sb].Preds = append(g.blocks[sb].Preds, bi)
		}
	}

	// Functions: the program entry plus every call target.
	entries := []int{p.Entry}
	seen := map[int]bool{p.Entry: true}
	var targets []int
	for _, t := range g.calls {
		if t >= 0 && t < n && !seen[t] {
			seen[t] = true
			targets = append(targets, t)
		}
	}
	sort.Ints(targets)
	entries = append(entries, targets...)
	for _, e := range entries {
		f := &fn{entryPC: e, inSet: make(map[int]bool)}
		work := []int{g.blockOf[e]}
		for len(work) > 0 {
			bi := work[len(work)-1]
			work = work[:len(work)-1]
			if f.inSet[bi] {
				continue
			}
			f.inSet[bi] = true
			f.blocks = append(f.blocks, bi)
			work = append(work, g.blocks[bi].Succs...)
		}
		sort.Ints(f.blocks)
		g.funcs = append(g.funcs, f)
		g.funcOf[e] = f
	}
	return g
}

// funcContaining returns the first function whose block set contains bi.
func (g *cfg) funcContaining(bi int) *fn {
	for _, f := range g.funcs {
		if f.inSet[bi] {
			return f
		}
	}
	return nil
}

// dominators computes the immediate-dominator-free dominator sets for a
// function with the classic iterative bitset algorithm. Returns, for each
// block index in f, the set of blocks (by index) dominating it.
func (g *cfg) dominators(f *fn) map[int]map[int]bool {
	dom := make(map[int]map[int]bool, len(f.blocks))
	entry := g.blockOf[f.entryPC]
	all := make(map[int]bool, len(f.blocks))
	for _, bi := range f.blocks {
		all[bi] = true
	}
	for _, bi := range f.blocks {
		if bi == entry {
			dom[bi] = map[int]bool{bi: true}
			continue
		}
		s := make(map[int]bool, len(all))
		for k := range all {
			s[k] = true
		}
		dom[bi] = s
	}
	changed := true
	for changed {
		changed = false
		for _, bi := range f.blocks {
			if bi == entry {
				continue
			}
			var meet map[int]bool
			for _, p := range g.blocks[bi].Preds {
				if !f.inSet[p] {
					continue
				}
				if meet == nil {
					meet = make(map[int]bool, len(dom[p]))
					for k := range dom[p] {
						meet[k] = true
					}
					continue
				}
				for k := range meet {
					if !dom[p][k] {
						delete(meet, k)
					}
				}
			}
			if meet == nil {
				meet = make(map[int]bool)
			}
			meet[bi] = true
			if len(meet) != len(dom[bi]) {
				dom[bi] = meet
				changed = true
				continue
			}
			for k := range meet {
				if !dom[bi][k] {
					dom[bi] = meet
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// natLoop is a natural loop: a header block and the set of blocks that can
// reach one of its back edges without passing through the header.
type natLoop struct {
	header int
	body   map[int]bool // block indices, including the header
}

// naturalLoops detects natural loops in f from back edges (u -> h with h
// dominating u), merging loops that share a header.
func (g *cfg) naturalLoops(f *fn) []natLoop {
	dom := g.dominators(f)
	byHeader := make(map[int]*natLoop)
	var order []int
	for _, u := range f.blocks {
		for _, h := range g.blocks[u].Succs {
			if !f.inSet[h] || !dom[u][h] {
				continue
			}
			lp := byHeader[h]
			if lp == nil {
				lp = &natLoop{header: h, body: map[int]bool{h: true}}
				byHeader[h] = lp
				order = append(order, h)
			}
			// Collect blocks reaching u backwards without passing h.
			stack := []int{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if lp.body[b] {
					continue
				}
				lp.body[b] = true
				for _, p := range g.blocks[b].Preds {
					if f.inSet[p] {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	sort.Ints(order)
	loops := make([]natLoop, 0, len(order))
	for _, h := range order {
		loops = append(loops, *byHeader[h])
	}
	return loops
}

// innermostLoopWith returns the smallest natural loop containing both block
// indices, or nil.
func innermostLoopWith(loops []natLoop, a, b int) *natLoop {
	var best *natLoop
	for i := range loops {
		lp := &loops[i]
		if lp.body[a] && lp.body[b] {
			if best == nil || len(lp.body) < len(best.body) {
				best = lp
			}
		}
	}
	return best
}
