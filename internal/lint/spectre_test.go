package lint_test

import (
	"strings"
	"testing"

	"loopfrog/internal/lint"
)

// gadgetLoop is the classic bounds-check-bypass shape: a load of an index,
// a guard branch, then a load whose address derives from the loaded index
// and a second load/store pair keyed on the loaded data.
const gadgetLoop = `
        .data
idx:    .zero 128
pub:    .zero 2048
probe:  .zero 4096
        .text
main:   la   a0, idx
        la   a1, pub
        la   a2, probe
        li   t0, 0
        li   t1, 16
loop:   slli t2, t0, 3
        add  t2, a0, t2
        ld   t2, 0(t2)
        li   t3, 256
        blt  t3, t2, skip
        slli t3, t2, 3
        add  t3, a1, t3
        ld   t3, 0(t3)
        slli t4, t3, 6
        add  t4, a2, t4
        ld   t5, 0(t4)
        sd   t5, 0(t4)
skip:   addi t0, t0, 1
        blt  t0, t1, loop
        halt
`

func TestSpectreGadgetLoop(t *testing.T) {
	rep := mustLint(t, gadgetLoop)
	if !rep.Has(lint.CodeSpecLoadFeedsLoad) {
		var sb strings.Builder
		rep.WriteText(&sb)
		t.Fatalf("expected LF301 on the load-feeds-load chain, got:\n%s", sb.String())
	}
	if !rep.Has(lint.CodeSpecLoadFeedsStore) {
		t.Error("expected LF302 on the tainted-address store")
	}
	if rep.Has(lint.CodeGadgetInRegion) {
		t.Error("LF303 must not fire outside detach regions")
	}
	if rep.Securities() == 0 {
		t.Fatal("security findings not counted")
	}
	// Security findings never fail the lint, even under -strict.
	if rep.Failed(true) {
		t.Error("security findings must not fail a strict run")
	}
	for _, d := range rep.Diags {
		if d.Severity != lint.SevSecurity {
			continue
		}
		if d.PC >= 0 && d.Line <= 0 {
			t.Errorf("%s at pc %d lacks line provenance", d.Code, d.PC)
		}
		if len(d.Witness) < 2 {
			t.Errorf("%s at pc %d has no witness path: %v", d.Code, d.PC, d.Witness)
		} else if d.Witness[len(d.Witness)-1] != d.PC {
			t.Errorf("%s witness %v does not end at the sink pc %d", d.Code, d.Witness, d.PC)
		}
	}
}

// regionGadget puts the dependent-load chain inside a detach region, where
// the transient window is the whole epoch.
const regionGadget = `
        .data
idx:    .zero 2048
pub:    .zero 2048
        .text
main:   la   a0, idx
        la   a1, pub
        li   t0, 0
        li   t1, 16
loop:   slli t2, t0, 3
        add  t2, a0, t2
        detach cont
        ld   t3, 0(t2)
        slli t4, t3, 3
        add  t4, a1, t4
        ld   t5, 0(t4)
        mul  t5, t5, t5
        addi t5, t5, 1
        sd   t5, 0(t2)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`

func TestSpectreGadgetInRegion(t *testing.T) {
	rep := mustLint(t, regionGadget)
	if !rep.Has(lint.CodeSpecLoadFeedsLoad) {
		var sb strings.Builder
		rep.WriteText(&sb)
		t.Fatalf("expected LF301 inside the region, got:\n%s", sb.String())
	}
	if !rep.Has(lint.CodeGadgetInRegion) {
		t.Error("expected LF303 for a gadget inside a detach region")
	}
	found := false
	for _, d := range rep.Diags {
		if d.Code == lint.CodeSpecLoadFeedsLoad && strings.Contains(d.Message, "epoch-speculative") {
			found = true
		}
	}
	if !found {
		t.Error("in-region source should be classified as epoch-speculative")
	}
	if rep.Errors() != 0 {
		var sb strings.Builder
		rep.WriteText(&sb)
		t.Fatalf("region gadget should be legal (no LF0xx):\n%s", sb.String())
	}
}

// TestSpectreNoFalsePositiveOnArithmeticAddresses: addresses derived purely
// from arithmetic (induction variables) must not be flagged even when loaded
// data flows into store DATA.
func TestSpectreNoFalsePositiveOnArithmeticAddresses(t *testing.T) {
	rep := mustLint(t, cleanLoop)
	if rep.Securities() != 0 {
		var sb strings.Builder
		rep.WriteText(&sb)
		t.Fatalf("clean loop flagged:\n%s", sb.String())
	}
}
