package lint_test

import (
	"strings"
	"testing"

	"loopfrog/internal/lint"
	"loopfrog/internal/workloads"
)

// Every built-in workload must lint clean under -strict semantics: zero
// errors and zero warnings. Profitability infos are allowed — the suite
// intentionally includes squash-heavy loops.
func TestWorkloadCorpusIsStrictClean(t *testing.T) {
	suites := append(workloads.CPU2017(), workloads.CPU2006()...)
	seen := make(map[string]bool)
	for _, b := range suites {
		key := b.Suite + "/" + b.Name
		if seen[key] {
			continue
		}
		seen[key] = true
		b := b
		t.Run(key, func(t *testing.T) {
			p, err := b.Program()
			if err != nil {
				t.Fatalf("building program: %v", err)
			}
			rep := lint.Run(p, lint.Options{})
			if rep.Failed(true) {
				var sb strings.Builder
				if err := rep.WriteText(&sb); err != nil {
					t.Fatal(err)
				}
				t.Errorf("lint not strict-clean:\n%s", sb.String())
			}
		})
	}
}
