// Package lint statically verifies LoopFrog hint legality and epoch shape on
// assembled LFISA images.
//
// The linter reconstructs a basic-block control-flow graph (with dominators
// and natural loops), walks every detach's epoch region, and checks that
// regions are well formed: each detach closes with a reattach or sync of the
// same region ID on every path, nothing branches into the middle of an
// epoch, reattaches fall through to their continuation, and no register
// written inside an epoch body is consumed by the continuation (a
// cross-iteration dependence the hardware cannot rename away). On top of the
// legality checks it emits profitability notes for epochs the LoopFrog
// engine will speculate on fruitlessly.
//
// Diagnostics carry a stable code (LF0xx errors, LF1xx warnings, LF2xx
// infos, LF3xx security findings), the instruction PC, and — when the image
// carries provenance — the source line and nearest label. See DESIGN.md for
// the code table.
package lint

import (
	"fmt"
	"sort"

	"loopfrog/internal/asm"
	"loopfrog/internal/core"
)

// Options tune the analysis thresholds.
type Options struct {
	// MinEpochInsts is the epoch body size (in instructions) below which a
	// short-epoch note (LF201) is emitted. The default approximates the
	// engine's spawn plus conflict-check latency.
	MinEpochInsts int
	// GranuleBytes is the SSB conflict-detection granule used for the
	// same-granule store heuristic (LF202). Defaults to the core's SSB
	// configuration.
	GranuleBytes int
}

// DefaultOptions returns the thresholds matching the simulator's default
// configuration.
func DefaultOptions() Options {
	return Options{
		MinEpochInsts: 8, // DefaultConfig: SpawnLatency 4 + ConflictCheckLatency 4
		GranuleBytes:  core.DefaultSSBConfig().GranuleBytes,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MinEpochInsts <= 0 {
		o.MinEpochInsts = d.MinEpochInsts
	}
	if o.GranuleBytes <= 0 {
		o.GranuleBytes = d.GranuleBytes
	}
	return o
}

// PreflightError reports that a program failed the mandatory hint-legality
// preflight; it carries the full report so callers can render or serialise
// the diagnostics (an HTTP 422 body, a compiler error listing).
type PreflightError struct {
	Report *Report
}

func (e *PreflightError) Error() string {
	n := e.Report.Errors()
	msg := fmt.Sprintf("lint: %s: %d hint-legality error(s)", e.Report.Program, n)
	for i := range e.Report.Diags {
		d := &e.Report.Diags[i]
		if d.Severity == SevError {
			return fmt.Sprintf("%s; first: %s [%s]: %s",
				msg, d.Position(e.Report.Program), d.Code, d.Message)
		}
	}
	return msg
}

// Preflight lints p with default options and returns the report plus a
// *PreflightError when any hint-legality error (LF00x) is present. It is the
// library-level admission gate shared by lfsim -lint and the lfservd
// daemon: a program that fails Preflight must not be simulated, because its
// parallel execution can diverge from sequential semantics.
func Preflight(p *asm.Program) (*Report, error) {
	rep := Run(p, Options{})
	if rep.Errors() > 0 {
		return rep, &PreflightError{Report: rep}
	}
	return rep, nil
}

// Run lints one program image and returns the positioned, sorted report.
func Run(p *asm.Program, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{Program: p.Name}
	if err := p.Validate(); err != nil {
		rep.add(Diagnostic{
			Code: CodeStructural, Severity: SevError, PC: -1, Region: -1,
			Message: err.Error(),
		})
		rep.sortAndPosition(p)
		return rep
	}
	g := buildCFG(p)
	for _, b := range g.blocks {
		if b.FallsOffEnd {
			rep.add(Diagnostic{
				Code: CodeStructural, Severity: SevError, PC: b.End - 1, Region: -1,
				Message: "control flow can run off the end of the image",
			})
		}
	}
	regions := checkRegions(g, rep)
	checkLoopCarried(g, regions, rep)
	checkProfitability(g, regions, opts, rep)
	checkSpectre(g, regions, rep)
	rep.Regions = regionTable(g, regions)
	rep.sortAndPosition(p)
	return rep
}

// regionTable builds the exported static region table from the reconstructed
// regions, one row per region ID sorted ascending. Several detaches naming
// the same continuation merge into one row: the first detach provides the
// provenance anchor and body size, terminator counts accumulate.
func regionTable(g *cfg, regions []*region) []RegionInfo {
	p := g.prog
	idx := make(map[int64]int, len(regions))
	var out []RegionInfo
	for _, r := range regions {
		i, ok := idx[r.id]
		if !ok {
			i = len(out)
			idx[r.id] = i
			info := RegionInfo{
				ID:        r.id,
				DetachPC:  r.detachPC,
				Line:      p.LineOf(r.detachPC),
				BodyInsts: len(r.interior),
			}
			if name, off, lok := p.NearestLabel(r.detachPC); lok {
				if off == 0 {
					info.Label = name
				} else {
					info.Label = fmt.Sprintf("%s+%d", name, off)
				}
			}
			regionShape(g, r, &info)
			out = append(out, info)
		}
		out[i].Reattaches += len(r.reattaches)
		out[i].Syncs += len(r.syncs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
