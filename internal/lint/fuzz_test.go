package lint_test

import (
	"encoding/binary"
	"testing"

	"loopfrog/internal/asm"
	"loopfrog/internal/isa"
	"loopfrog/internal/lint"
)

// encodeInsts packs a program's instructions into the 8-bytes-per-instruction
// wire form the fuzzer mutates, so real images seed the corpus.
func encodeInsts(insts []isa.Inst) []byte {
	out := make([]byte, 0, len(insts)*8)
	for _, in := range insts {
		var b [8]byte
		b[0] = byte(in.Op)
		b[1] = byte(in.Rd)
		b[2] = byte(in.Rs1)
		b[3] = byte(in.Rs2)
		binary.LittleEndian.PutUint32(b[4:], uint32(int32(in.Imm)))
		out = append(out, b[:]...)
	}
	return out
}

// FuzzLintCFG feeds arbitrary LFISA images through the full lint pipeline.
// The analyzer must never panic: structurally invalid images are rejected up
// front (LF000), indirect flow degrades to best-effort analysis (LF105), and
// everything else produces ordinary diagnostics.
func FuzzLintCFG(f *testing.F) {
	for _, src := range []string{cleanLoop, gadgetLoop, regionGadget} {
		p, err := asm.Assemble("seed", src)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(encodeInsts(p.Insts))
	}
	// A tiny image with an indirect jump, seeding the LF105 path.
	f.Add(encodeInsts([]isa.Inst{
		{Op: isa.LI, Rd: 5, Imm: 0},
		{Op: isa.JALR, Rd: 0, Rs1: 5},
		{Op: isa.HALT},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n == 0 {
			return
		}
		if n > 512 {
			n = 512
		}
		insts := make([]isa.Inst, n)
		for i := range insts {
			b := data[i*8 : i*8+8]
			imm := int64(int32(binary.LittleEndian.Uint32(b[4:])))
			if b[3]&0x80 != 0 {
				// Half the address space of the fourth operand byte steers
				// immediates into plausible target range, so control-flow
				// targets frequently validate and the deep passes run.
				imm = (imm%int64(n+2) + int64(n+2)) % int64(n+2)
			}
			insts[i] = isa.Inst{
				Op:  isa.Opcode(int(b[0]) % int(isa.NumOpcodes)),
				Rd:  isa.Reg(int(b[1]) % int(isa.NumRegs)),
				Rs1: isa.Reg(int(b[2]) % int(isa.NumRegs)),
				Rs2: isa.Reg(int(b[3]) % int(isa.NumRegs)),
				Imm: imm,
			}
		}
		p := &asm.Program{Name: "fuzz", Insts: insts}
		rep := lint.Run(p, lint.Options{})
		if rep == nil {
			t.Fatal("lint.Run returned nil")
		}
		// A structurally invalid image must fail with LF000 alone; the deep
		// passes never run on it.
		if err := p.Validate(); err != nil {
			if !rep.Has(lint.CodeStructural) {
				t.Fatalf("invalid image did not yield LF000: %v", err)
			}
		}
	})
}
