package lint_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"loopfrog/internal/asm"
	"loopfrog/internal/lint"
)

func mustLint(t *testing.T, src string) *lint.Report {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return lint.Run(p, lint.Options{})
}

// cleanLoop is a well-formed hinted loop used as the baseline shape the
// malformed variants below deviate from.
const cleanLoop = `
        .data
buf:    .zero 1024
        .text
main:   la   a0, buf
        li   t0, 0
        li   t1, 16
loop:   slli t2, t0, 3
        add  t2, a0, t2
        detach cont
        ld   t3, 0(t2)
        mul  t3, t3, t3
        addi t3, t3, 1
        mul  t3, t3, t3
        sub  t3, t3, t1
        xor  t3, t3, t1
        add  t3, t3, t1
        sd   t3, 0(t2)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`

func TestCleanLoopHasNoFindings(t *testing.T) {
	rep := mustLint(t, cleanLoop)
	if rep.Errors() != 0 || rep.Warnings() != 0 || rep.Infos() != 0 || rep.Securities() != 0 {
		var sb strings.Builder
		rep.WriteText(&sb)
		t.Fatalf("expected a silent report, got:\n%s", sb.String())
	}
	if rep.Failed(true) {
		t.Fatal("clean program reported as failed")
	}
}

// TestMalformedPrograms seeds one specific defect per program and asserts the
// exact diagnostic code the linter must produce for it.
func TestMalformedPrograms(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // diagnostic code that must be present
		err  bool   // must be an error (fails non-strict)
	}{
		{
			name: "dangling detach",
			want: lint.CodeDanglingDetach,
			err:  true,
			// No reattach anywhere: the backedge is taken with the region
			// still open, so the epoch wraps back to its own detach.
			src: `
main:   li   t0, 0
        li   t1, 16
loop:   detach cont
        addi t2, t0, 3
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`,
		},
		{
			name: "dangling detach via halt",
			want: lint.CodeDanglingDetach,
			err:  true,
			src: `
main:   detach cont
        addi t2, t0, 3
        halt
cont:   addi t0, t0, 1
        halt
`,
		},
		{
			name: "mismatched region ids",
			want: lint.CodeMismatchedRegion,
			err:  true,
			// The reattach names a different continuation than the open
			// region's detach.
			src: `
main:   li   t0, 0
        li   t1, 16
loop:   detach contA
        addi t2, t0, 3
        reattach contB
contA:  addi t0, t0, 1
        blt  t0, t1, loop
        sync contA
contB:  halt
`,
		},
		{
			name: "orphan reattach",
			want: lint.CodeMismatchedRegion,
			err:  true,
			// A reattach with no detach of its region at all.
			src: `
main:   li   t0, 0
        reattach cont
cont:   addi t0, t0, 1
        halt
`,
		},
		{
			name: "branch into epoch",
			want: lint.CodeBranchIntoEpoch,
			err:  true,
			// A jump from outside the region lands in the middle of the
			// epoch body, bypassing the detach.
			src: `
main:   li   t0, 0
        li   t1, 16
        jal  x0, mid
loop:   detach cont
        addi t2, t0, 3
mid:    addi t3, t2, 2
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`,
		},
		{
			name: "loop-carried register dependence",
			want: lint.CodeLoopCarriedReg,
			err:  true,
			// The body accumulates into t3, which the continuation reads:
			// the forked successor would see a stale t3.
			src: `
main:   li   t0, 0
        li   t1, 16
        li   t3, 0
        li   t4, 0
loop:   detach cont
        addi t3, t3, 5
        reattach cont
cont:   addi t0, t0, 1
        add  t4, t4, t3
        blt  t0, t1, loop
        sync cont
        halt
`,
		},
		{
			name: "work between reattach and continuation",
			want: lint.CodeContinuationSkip,
			err:  true,
			src: `
main:   li   t0, 0
        li   t1, 16
loop:   detach cont
        addi t2, t0, 3
        reattach cont
        addi t5, t5, 1
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`,
		},
		{
			name: "nested detach",
			want: lint.CodeNestedDetach,
			err:  true,
			src: `
main:   li   t0, 0
        li   t1, 16
loop:   detach cont
        addi t2, t0, 3
        detach cont2
        addi t3, t2, 1
        reattach cont2
cont2:  addi t2, t2, 1
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`,
		},
		{
			name: "missing sync",
			want: lint.CodeMissingSync,
			err:  false,
			src: `
main:   li   t0, 0
        li   t1, 16
loop:   detach cont
        addi t2, t0, 3
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        halt
`,
		},
		{
			name: "detach outside any loop",
			want: lint.CodeDetachOutsideLoop,
			err:  false,
			src: `
main:   li   t0, 0
        detach cont
        addi t2, t0, 3
        reattach cont
cont:   addi t0, t0, 1
        sync cont
        halt
`,
		},
		{
			name: "short epoch",
			want: lint.CodeShortEpoch,
			err:  false,
			src: `
main:   li   t0, 0
        li   t1, 16
loop:   detach cont
        addi t2, t0, 3
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`,
		},
		{
			name: "loop-invariant store granule",
			want: lint.CodeInvariantStore,
			err:  false,
			src: `
        .data
out:    .zero 8
        .text
main:   la   a0, out
        li   t0, 0
        li   t1, 16
loop:   slli t2, t0, 1
        detach cont
        addi t3, t2, 7
        mul  t3, t3, t3
        addi t3, t3, 1
        mul  t3, t3, t3
        addi t3, t3, 1
        mul  t3, t3, t3
        sd   t3, 0(a0)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := mustLint(t, tc.src)
			if !rep.Has(tc.want) {
				var sb strings.Builder
				rep.WriteText(&sb)
				t.Fatalf("expected %s, got:\n%s", tc.want, sb.String())
			}
			if got := rep.Failed(false); got != tc.err {
				t.Errorf("Failed(strict=false) = %v, want %v", got, tc.err)
			}
			// Every diagnostic must carry a position: assembled images have
			// line provenance.
			for _, d := range rep.Diags {
				if d.PC >= 0 && d.Line <= 0 {
					t.Errorf("%s at pc %d has no source line", d.Code, d.PC)
				}
			}
		})
	}
}

func TestReportJSONShape(t *testing.T) {
	rep := mustLint(t, `
main:   li   t0, 0
        reattach cont
cont:   addi t0, t0, 1
        halt
`)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Program     string `json:"program"`
		Diagnostics []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
			PC       int    `json:"pc"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Errors int `json:"errors"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Program != "t" || out.Errors == 0 || len(out.Diagnostics) == 0 {
		t.Fatalf("unexpected shape: %s", buf.String())
	}
	d := out.Diagnostics[0]
	if d.Code != lint.CodeMismatchedRegion || d.Severity != "error" || d.Line <= 0 {
		t.Fatalf("unexpected first diagnostic: %+v", d)
	}
}

func TestStrictFailsOnWarnings(t *testing.T) {
	rep := mustLint(t, `
main:   li   t0, 0
        li   t1, 16
loop:   detach cont
        addi t2, t0, 3
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        halt
`)
	if rep.Errors() != 0 {
		var sb strings.Builder
		rep.WriteText(&sb)
		t.Fatalf("expected warnings only:\n%s", sb.String())
	}
	if rep.Failed(false) {
		t.Error("warnings must not fail a non-strict run")
	}
	if !rep.Failed(true) {
		t.Error("warnings must fail a -strict run")
	}
}

func TestDiagnosticsArePositioned(t *testing.T) {
	p := asm.MustAssemble("pos", `
main:   li   t0, 0
        detach cont
        addi t2, t0, 3
        reattach cont
cont:   addi t0, t0, 1
        sync cont
        halt
`)
	rep := lint.Run(p, lint.Options{})
	for _, d := range rep.Diags {
		if d.PC < 0 {
			continue
		}
		pos := d.Position("pos.s")
		if !strings.HasPrefix(pos, "pos.s:") {
			t.Errorf("position %q does not use line provenance", pos)
		}
	}
}
