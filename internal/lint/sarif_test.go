package lint_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"loopfrog/internal/lint"
)

// schemaCheck validates a decoded JSON value against a subset of JSON Schema:
// type, required, properties, items, enum, minimum, minItems. That subset is
// enough to pin the SARIF 2.1.0 shapes GitHub code scanning requires, without
// pulling a schema-validation dependency into the module.
func schemaCheck(path string, schema, value any) error {
	sch, ok := schema.(map[string]any)
	if !ok {
		return fmt.Errorf("%s: schema node is not an object", path)
	}
	if typ, ok := sch["type"].(string); ok {
		if err := checkType(path, typ, value); err != nil {
			return err
		}
	}
	if enum, ok := sch["enum"].([]any); ok {
		matched := false
		for _, e := range enum {
			if e == value {
				matched = true
				break
			}
		}
		if !matched {
			return fmt.Errorf("%s: value %v not in enum %v", path, value, enum)
		}
	}
	if min, ok := sch["minimum"].(float64); ok {
		if n, isNum := value.(float64); isNum && n < min {
			return fmt.Errorf("%s: %v below minimum %v", path, n, min)
		}
	}
	if obj, ok := value.(map[string]any); ok {
		if req, ok := sch["required"].([]any); ok {
			for _, r := range req {
				name, _ := r.(string)
				if _, present := obj[name]; !present {
					return fmt.Errorf("%s: missing required property %q", path, name)
				}
			}
		}
		if props, ok := sch["properties"].(map[string]any); ok {
			for name, sub := range props {
				if v, present := obj[name]; present {
					if err := schemaCheck(path+"."+name, sub, v); err != nil {
						return err
					}
				}
			}
		}
	}
	if arr, ok := value.([]any); ok {
		if minItems, ok := sch["minItems"].(float64); ok && float64(len(arr)) < minItems {
			return fmt.Errorf("%s: %d items below minItems %v", path, len(arr), minItems)
		}
		if items, ok := sch["items"]; ok {
			for i, v := range arr {
				if err := schemaCheck(fmt.Sprintf("%s[%d]", path, i), items, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func checkType(path, typ string, value any) error {
	ok := false
	switch typ {
	case "object":
		_, ok = value.(map[string]any)
	case "array":
		_, ok = value.([]any)
	case "string":
		_, ok = value.(string)
	case "number":
		_, ok = value.(float64)
	case "integer":
		n, isNum := value.(float64)
		ok = isNum && n == float64(int64(n))
	case "boolean":
		_, ok = value.(bool)
	default:
		return fmt.Errorf("%s: schema uses unsupported type %q", path, typ)
	}
	if !ok {
		return fmt.Errorf("%s: value %T is not a %s", path, value, typ)
	}
	return nil
}

func TestWriteSARIFValidatesAgainstSchema(t *testing.T) {
	reports := []*lint.Report{
		mustLint(t, gadgetLoop),
		mustLint(t, regionGadget),
		mustLint(t, cleanLoop),
	}
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, reports); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile("testdata/sarif-subset-schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var schema, doc any
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatalf("schema is not valid JSON: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, buf.String())
	}
	if err := schemaCheck("$", schema, doc); err != nil {
		t.Fatalf("SARIF violates schema: %v\n%s", err, buf.String())
	}

	// Shape spot-checks past the schema: the LF3xx rules must be present,
	// tagged as security, and every result must reference a declared rule.
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID         string `json:"id"`
						Properties *struct {
							Tags []string `json:"tags"`
						} `json:"properties"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly one run, got %d", len(log.Runs))
	}
	declared := map[string]bool{}
	securityTagged := map[string]bool{}
	for _, rule := range log.Runs[0].Tool.Driver.Rules {
		declared[rule.ID] = true
		if rule.Properties != nil {
			for _, tag := range rule.Properties.Tags {
				if tag == "security" {
					securityTagged[rule.ID] = true
				}
			}
		}
	}
	if !declared[lint.CodeSpecLoadFeedsLoad] || !securityTagged[lint.CodeSpecLoadFeedsLoad] {
		t.Errorf("LF301 missing or not security-tagged in rules: %v", declared)
	}
	if len(log.Runs[0].Results) == 0 {
		t.Fatal("no results emitted for programs with findings")
	}
	for _, res := range log.Runs[0].Results {
		if !declared[res.RuleID] {
			t.Errorf("result references undeclared rule %s", res.RuleID)
		}
	}
}

func TestWriteSARIFEmptyReport(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, []*lint.Report{{Program: "empty"}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Results == nil || len(doc.Runs[0].Results) != 0 {
		t.Fatalf("empty report must yield one run with an empty results array: %s", buf.String())
	}
}
