package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"loopfrog/internal/asm"
)

// Severity ranks a diagnostic.
type Severity int

// Severity levels. Errors are legality violations: the program's parallel
// execution can diverge from its sequential (hints-as-NOPs) semantics, or a
// region is structurally malformed. Warnings are suspicious-but-tolerated
// shapes that the hardware degrades gracefully on (hints become NOPs,
// speculation is wasted); they fail a -strict run. Infos are profitability
// findings (§5.1 de-selection heuristics) and never affect the exit status.
const (
	SevError Severity = iota
	SevWarning
	SevInfo
	// SevSecurity marks speculative-leak findings (LF3xx). Like infos they
	// never affect the exit status — a Spectre-shaped gadget is a property of
	// the code worth surfacing, not a hint-legality violation — but they are
	// counted and rendered separately so security triage can filter on them.
	SevSecurity
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	case SevInfo:
		return "info"
	case SevSecurity:
		return "security"
	}
	return "unknown"
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic codes. The numbering is stable: LF0xx are errors, LF1xx are
// warnings, LF2xx are profitability infos. See DESIGN.md for the full table.
const (
	// CodeStructural: the image failed structural validation (targets or
	// registers out of range) or control flow runs off the end of the image.
	CodeStructural = "LF000"
	// CodeDanglingDetach: a path from a detach reaches halt, a function
	// return, or wraps back around the loop without a reattach or sync of
	// the same region — the epoch never ends.
	CodeDanglingDetach = "LF001"
	// CodeMismatchedRegion: a reattach whose region ID does not match the
	// epoch it appears in, or that has no corresponding detach at all.
	CodeMismatchedRegion = "LF002"
	// CodeBranchIntoEpoch: a branch or jump from outside an epoch region
	// targets the middle of the region, bypassing the detach.
	CodeBranchIntoEpoch = "LF003"
	// CodeLoopCarriedReg: a register written inside the epoch body is
	// consumed by the continuation — a cross-iteration register dependence
	// the hardware cannot rename away (the fork inherits detach-time
	// values; epoch-body writes are discarded at reattach).
	CodeLoopCarriedReg = "LF004"
	// CodeContinuationSkip: a reattach does not lead to its region's
	// continuation address through pure control flow, so instructions
	// between them are executed sequentially but skipped speculatively.
	CodeContinuationSkip = "LF005"
	// CodeNestedDetach: a second detach is reachable inside an open epoch
	// region before the first is closed.
	CodeNestedDetach = "LF006"

	// CodeMissingSync: a region has detach/reattach hints but no sync, so
	// loop exits never cancel speculative successors.
	CodeMissingSync = "LF101"
	// CodeExitWithoutSync: a specific loop exit edge is not guarded by a
	// sync of the region.
	CodeExitWithoutSync = "LF102"
	// CodeDetachOutsideLoop: a detach whose continuation does not
	// participate in any natural loop — nothing to leapfrog.
	CodeDetachOutsideLoop = "LF103"
	// CodeOrphanSync: a sync (or an in-epoch sync of a different region)
	// with no corresponding detach; the hardware treats it as a NOP.
	CodeOrphanSync = "LF104"
	// CodeUnanalyzableFlow: an indirect jump prevents complete control-flow
	// analysis; region checks are best-effort around it.
	CodeUnanalyzableFlow = "LF105"

	// CodeShortEpoch: the epoch body is shorter than the spawn/checkpoint
	// cost; speculation cannot pay for itself (§5.1 profitability).
	CodeShortEpoch = "LF201"
	// CodeInvariantStore: a store in the epoch body writes the same granule
	// every iteration (loop-invariant or sub-granule-stride address), so
	// consecutive iterations conflict and the loop is predicted
	// squash-heavy.
	CodeInvariantStore = "LF202"

	// CodeSpecLoadFeedsLoad: a load's address is data-dependent on the result
	// of an earlier load that can execute transiently (it is reachable in the
	// speculation shadow of a conditional branch, or sits inside a detach
	// region where the whole epoch is speculative until promotion). This is
	// the Spectre v1 read-gadget shape: under misspeculation the first load
	// reads out-of-bounds data and the second turns it into a secret-indexed
	// cache access.
	CodeSpecLoadFeedsLoad = "LF301"
	// CodeSpecLoadFeedsStore: a store's address is data-dependent on a
	// speculatively reachable load result, so a mispredicted path can place a
	// line at a secret-derived address (a store-based transmitter).
	CodeSpecLoadFeedsStore = "LF302"
	// CodeGadgetInRegion: an LF301/LF302 gadget whose sink sits inside a
	// detach region. Epoch speculation extends the transient window far past
	// branch resolution — the gadget stays live until the threadlet is
	// promoted or squashed, so these sinks leak across the longest windows
	// the core exposes.
	CodeGadgetInRegion = "LF303"
)

// DiagData is the machine-readable payload of a profitability note, so
// tooling (the lftune pruner, dashboards) consumes structured fields instead
// of parsing message strings. Only the fields relevant to the diagnostic's
// code are set.
type DiagData struct {
	// LF201: the epoch interior size and the spawn/checkpoint threshold it
	// fell below.
	EpochInsts    int `json:"epoch_insts,omitempty"`
	MinEpochInsts int `json:"min_epoch_insts,omitempty"`
	// LF202: the store base's advance per iteration in bytes (absent when
	// Invariant), whether the base is loop-invariant, and the SSB granule the
	// conflict happens within.
	StrideBytes  int64 `json:"stride_bytes,omitempty"`
	Invariant    bool  `json:"invariant,omitempty"`
	GranuleBytes int64 `json:"granule_bytes,omitempty"`
}

// Diagnostic is one linter finding, positioned on an instruction.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	// PC is the instruction index the finding anchors to, -1 for
	// program-level findings.
	PC int `json:"pc"`
	// Line is the source line when the image carries provenance, else 0.
	Line int `json:"line,omitempty"`
	// Label is the nearest preceding code label ("name" or "name+off"),
	// empty when none exists.
	Label string `json:"label,omitempty"`
	// Region is the region ID (continuation address) involved, -1 if none.
	Region  int64  `json:"region"`
	Message string `json:"message"`
	// Witness, set on LF3xx findings, is the dataflow path of the gadget: the
	// instruction pcs from the speculative source load through the tainting
	// defs to the sink, in order.
	Witness []int `json:"witness,omitempty"`
	// Data, set on LF2xx findings, carries the note's quantities in
	// machine-readable form.
	Data *DiagData `json:"data,omitempty"`
}

// Position renders the human-readable location prefix: "file:line" when line
// provenance exists, otherwise "file@pc" with the nearest label.
func (d *Diagnostic) Position(program string) string {
	if d.PC < 0 {
		return program
	}
	if d.Line > 0 {
		return fmt.Sprintf("%s:%d", program, d.Line)
	}
	if d.Label != "" {
		return fmt.Sprintf("%s@%d(%s)", program, d.PC, d.Label)
	}
	return fmt.Sprintf("%s@%d", program, d.PC)
}

// RegionInfo is one row of the static region table: an epoch region the
// analysis reconstructed, with its provenance and shape. It is the static
// half of the per-loop join lfreport performs against the dynamic per-region
// speculation ledgers (both sides key by the region ID, the continuation
// address).
type RegionInfo struct {
	// ID is the region ID (continuation address the detach names).
	ID int64 `json:"id"`
	// DetachPC is the instruction index of the (first) detach opening the
	// region; Line/Label position it when the image carries provenance.
	DetachPC int    `json:"detach_pc"`
	Line     int    `json:"line,omitempty"`
	Label    string `json:"label,omitempty"`
	// BodyInsts is the size of the region's interior in instructions.
	BodyInsts int `json:"body_insts"`
	// Reattaches and Syncs count the region's statically reachable reattach
	// and sync terminators across all of its detaches.
	Reattaches int `json:"reattaches"`
	Syncs      int `json:"syncs"`
	// EstGranule estimates the fresh SSB granule footprint one iteration
	// claims, in bytes: the largest per-iteration advance among epoch-body
	// store bases. 0 means the body has no analysable stores (or every store
	// base is loop-invariant, the LF202 worst case).
	EstGranule int64 `json:"est_granule"`
	// TripBound is a static upper bound on the driving loop's trip count,
	// derived from a constant-limit exit branch; 0 when not derivable.
	TripBound int64 `json:"trip_bound,omitempty"`
	// StoreDensity is the fraction of epoch-body instructions that are
	// stores (stack traffic excluded).
	StoreDensity float64 `json:"store_density"`
}

// Report is the result of linting one program.
type Report struct {
	Program string       `json:"program"`
	Diags   []Diagnostic `json:"diagnostics"`
	// Regions is the static region table, sorted by region ID (empty when
	// the image failed structural validation before region analysis).
	Regions []RegionInfo `json:"regions,omitempty"`
}

// RegionByID returns the static region table row for a region ID, or nil.
func (r *Report) RegionByID(id int64) *RegionInfo {
	for i := range r.Regions {
		if r.Regions[i].ID == id {
			return &r.Regions[i]
		}
	}
	return nil
}

func (r *Report) add(d Diagnostic) { r.Diags = append(r.Diags, d) }

// count returns the number of diagnostics of the given severity.
func (r *Report) count(sev Severity) int {
	n := 0
	for i := range r.Diags {
		if r.Diags[i].Severity == sev {
			n++
		}
	}
	return n
}

// Errors returns the number of error diagnostics.
func (r *Report) Errors() int { return r.count(SevError) }

// Warnings returns the number of warning diagnostics.
func (r *Report) Warnings() int { return r.count(SevWarning) }

// Infos returns the number of info diagnostics.
func (r *Report) Infos() int { return r.count(SevInfo) }

// Securities returns the number of speculative-leak (LF3xx) diagnostics.
func (r *Report) Securities() int { return r.count(SevSecurity) }

// Failed reports whether the program fails the lint: any error, or any
// warning when strict is set. Infos never fail a run.
func (r *Report) Failed(strict bool) bool {
	return r.Errors() > 0 || (strict && r.Warnings() > 0)
}

// Has reports whether a diagnostic with the given code is present.
func (r *Report) Has(code string) bool {
	for i := range r.Diags {
		if r.Diags[i].Code == code {
			return true
		}
	}
	return false
}

// sortAndPosition orders diagnostics (errors first, then by PC) and fills in
// the line/label position fields from the program image.
func (r *Report) sortAndPosition(p *asm.Program) {
	for i := range r.Diags {
		d := &r.Diags[i]
		if d.PC < 0 {
			continue
		}
		d.Line = p.LineOf(d.PC)
		if name, off, ok := p.NearestLabel(d.PC); ok {
			if off == 0 {
				d.Label = name
			} else {
				d.Label = fmt.Sprintf("%s+%d", name, off)
			}
		}
	}
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := &r.Diags[i], &r.Diags[j]
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Code < b.Code
	})
}

// WriteText renders the report in compiler-style one-line-per-diagnostic
// form, followed by a summary line when anything was found.
func (r *Report) WriteText(w io.Writer) error {
	for i := range r.Diags {
		d := &r.Diags[i]
		if _, err := fmt.Fprintf(w, "%s: %s [%s]: %s\n",
			d.Position(r.Program), d.Severity, d.Code, d.Message); err != nil {
			return err
		}
	}
	var parts []string
	if n := r.Errors(); n > 0 {
		parts = append(parts, fmt.Sprintf("%d error(s)", n))
	}
	if n := r.Warnings(); n > 0 {
		parts = append(parts, fmt.Sprintf("%d warning(s)", n))
	}
	if n := r.Infos(); n > 0 {
		parts = append(parts, fmt.Sprintf("%d note(s)", n))
	}
	if n := r.Securities(); n > 0 {
		parts = append(parts, fmt.Sprintf("%d security finding(s)", n))
	}
	if len(parts) > 0 {
		if _, err := fmt.Fprintf(w, "%s: %s\n", r.Program, strings.Join(parts, ", ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report (plus severity totals) as JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	type out struct {
		Program     string       `json:"program"`
		Diagnostics []Diagnostic `json:"diagnostics"`
		Regions     []RegionInfo `json:"regions"`
		Errors      int          `json:"errors"`
		Warnings    int          `json:"warnings"`
		Infos       int          `json:"infos"`
		Securities  int          `json:"securities"`
	}
	diags := r.Diags
	if diags == nil {
		diags = []Diagnostic{}
	}
	regions := r.Regions
	if regions == nil {
		regions = []RegionInfo{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out{
		Program:     r.Program,
		Diagnostics: diags,
		Regions:     regions,
		Errors:      r.Errors(),
		Warnings:    r.Warnings(),
		Infos:       r.Infos(),
		Securities:  r.Securities(),
	})
}
