package lint

import (
	"fmt"

	"loopfrog/internal/isa"
)

// Profitability heuristics (§5.1 de-selection). These mirror what the
// compiler's loop selection tries to avoid but apply to any image, including
// hand-written assembly: epochs too short to amortise the spawn/checkpoint
// cost, and store address patterns that make consecutive iterations collide
// in the same SSB granule. Both are informational — the hardware stays
// correct, it just squashes a lot.

// checkProfitability appends LF201/LF202 infos for each region.
func checkProfitability(g *cfg, regions []*region, opts Options, rep *Report) {
	for _, r := range regions {
		if n := len(r.interior); n > 0 && n < opts.MinEpochInsts {
			rep.add(Diagnostic{
				Code: CodeShortEpoch, Severity: SevInfo, PC: r.detachPC, Region: r.id,
				Message: fmt.Sprintf("epoch body of region %d is %d instruction(s), below the ~%d-instruction spawn/checkpoint cost: speculation cannot pay for itself", r.id, n, opts.MinEpochInsts),
				Data:    &DiagData{EpochInsts: n, MinEpochInsts: opts.MinEpochInsts},
			})
		}
		checkGranuleConflicts(g, r, opts, rep)
	}
}

// loopShape summarises the iteration behaviour of the natural loop driving a
// region: which registers change across an iteration, the constant
// self-increment of single-def induction registers, and a static trip-count
// bound when one exit branch compares an induction register against a
// constant limit.
type loopShape struct {
	loopDefs regSet
	selfInc  map[isa.Reg]int64
	multiDef map[isa.Reg]bool
	body     map[int]bool // block indices of the driving natural loop
	trip     int64        // static trip-count upper bound, 0 = unknown
}

// regionLoopShape computes the loopShape of the innermost natural loop
// containing both a region's detach and its continuation; nil when the
// region is not loop-driven (nothing to leapfrog, LF103 territory).
func regionLoopShape(g *cfg, r *region) *loopShape {
	cont := int(r.id)
	if cont < 0 || cont >= len(g.prog.Insts) {
		return nil
	}
	dbi, cbi := g.blockOf[r.detachPC], g.blockOf[cont]
	f := g.funcContaining(dbi)
	if f == nil || !f.inSet[cbi] {
		return nil
	}
	lp := innermostLoopWith(g.naturalLoops(f), dbi, cbi)
	if lp == nil {
		return nil
	}

	sh := &loopShape{
		selfInc:  make(map[isa.Reg]int64),
		multiDef: make(map[isa.Reg]bool),
		body:     lp.body,
	}
	for bi := range lp.body {
		b := &g.blocks[bi]
		for pc := b.Start; pc < b.End; pc++ {
			in := g.prog.Insts[pc]
			defs := instDefs(in)
			if classify(in) == kindCall {
				if callee := g.funcOf[int(in.Imm)]; callee != nil {
					defs = defs.union(callee.mayWrite)
				}
			}
			for _, reg := range defs.regs() {
				if sh.loopDefs.has(reg) {
					sh.multiDef[reg] = true
				}
				sh.loopDefs.add(reg)
			}
			if in.Op == isa.ADDI && in.Rd == in.Rs1 && in.Rd != regZero {
				sh.selfInc[in.Rd] = in.Imm
			}
		}
	}
	sh.trip = tripBound(g, f, lp, sh)
	return sh
}

// induction reports the per-iteration stride of reg: it must be written
// exactly once in the loop, by a constant self-increment.
func (sh *loopShape) induction(reg isa.Reg) (int64, bool) {
	if sh.multiDef[reg] {
		return 0, false
	}
	c, ok := sh.selfInc[reg]
	return c, ok
}

// tripBound derives a static upper bound on the loop's trip count from an
// exit branch of the compiler's counted-loop shape: a conditional comparing
// an induction register (stride s > 0) against a loop-invariant register
// whose only definition in the function is `li limit, c`. Assuming a
// non-negative start, the loop runs at most ceil(c/s) iterations. Returns 0
// when no exit branch matches.
func tripBound(g *cfg, f *fn, lp *natLoop, sh *loopShape) int64 {
	for bi := range lp.body {
		b := &g.blocks[bi]
		if b.End <= b.Start {
			continue
		}
		pc := b.End - 1
		in := g.prog.Insts[pc]
		if classify(in) != kindBranch {
			continue
		}
		exits := false
		for _, s := range b.Succs {
			if !lp.body[s] {
				exits = true
			}
		}
		if !exits {
			continue
		}
		for _, pair := range [2][2]isa.Reg{{in.Rs1, in.Rs2}, {in.Rs2, in.Rs1}} {
			iv, lim := pair[0], pair[1]
			s, ok := sh.induction(iv)
			if !ok || s <= 0 || sh.loopDefs.has(lim) {
				continue
			}
			if c, ok := constAt(g, pc, lim, 0); ok && c > 0 {
				return (c + s - 1) / s
			}
		}
	}
	return 0
}

// constAt resolves reg's value at pc by walking the straight-line code
// leading up to it (register reuse defeats any whole-function map), following
// LI / ADDI / ADD chains. The caller guarantees reg is loop-invariant, so
// resolving through the textually preceding defs is sound for the loop
// header's limit register.
func constAt(g *cfg, pc int, reg isa.Reg, depth int) (int64, bool) {
	if reg == regZero {
		return 0, true
	}
	if depth > 6 {
		return 0, false
	}
	for q := pc - 1; q >= 0; q-- {
		in := g.prog.Insts[q]
		if classify(in) != kindPlain {
			return 0, false
		}
		if !instDefs(in).has(reg) {
			continue
		}
		switch in.Op {
		case isa.LI:
			return in.Imm, true
		case isa.ADDI:
			if c, ok := constAt(g, q, in.Rs1, depth+1); ok {
				return c + in.Imm, true
			}
			return 0, false
		case isa.ADD:
			a, aok := constAt(g, q, in.Rs1, depth+1)
			b, bok := constAt(g, q, in.Rs2, depth+1)
			if aok && bok {
				return a + b, true
			}
			return 0, false
		default:
			return 0, false
		}
	}
	return 0, false
}

// checkGranuleConflicts flags stores in the epoch body whose address lands in
// the same SSB granule every iteration: a loop-invariant base register, or a
// base advanced by a stride smaller than the granule.
func checkGranuleConflicts(g *cfg, r *region, opts Options, rep *Report) {
	sh := regionLoopShape(g, r)
	if sh == nil {
		return
	}
	gb := int64(opts.GranuleBytes)
	for pc := range r.interior {
		in := g.prog.Insts[pc]
		if !isa.OpMeta(in.Op).IsStore || in.Rs1 == regSP {
			continue // stack traffic is private to the frame; skip it
		}
		base := in.Rs1
		switch {
		case !sh.loopDefs.has(base):
			rep.add(Diagnostic{
				Code: CodeInvariantStore, Severity: SevInfo, PC: pc, Region: r.id,
				Message: fmt.Sprintf("store base %s is loop-invariant: every iteration writes the same %d-byte granule, so consecutive epochs always conflict", base, gb),
				Data:    &DiagData{Invariant: true, GranuleBytes: gb},
			})
		default:
			if c, ok := sh.induction(base); ok && c != 0 && abs64(c) < gb {
				rep.add(Diagnostic{
					Code: CodeInvariantStore, Severity: SevInfo, PC: pc, Region: r.id,
					Message: fmt.Sprintf("store base %s advances by %d byte(s) per iteration, below the %d-byte granule: consecutive epochs often share a granule and conflict", base, c, gb),
					Data:    &DiagData{StrideBytes: c, GranuleBytes: gb},
				})
			}
		}
	}
}

// regionShape fills the machine-readable shape columns of one region-table
// row: estimated per-iteration granule footprint, static trip bound, and
// store density. These are what the lftune pruner consumes.
func regionShape(g *cfg, r *region, info *RegionInfo) {
	sh := regionLoopShape(g, r)
	stores := 0
	for pc := range r.interior {
		in := g.prog.Insts[pc]
		if !isa.OpMeta(in.Op).IsStore || in.Rs1 == regSP {
			continue
		}
		stores++
		if sh != nil {
			if c, ok := strideAt(g, sh, pc, in.Rs1, 0); ok && abs64(c) > info.EstGranule {
				info.EstGranule = abs64(c)
			}
		}
	}
	if n := len(r.interior); n > 0 {
		info.StoreDensity = float64(stores) / float64(n)
	}
	if sh != nil {
		info.TripBound = sh.trip
	}
}

// strideAt estimates how many bytes reg's value advances per iteration at
// pc, by walking the straight-line code leading up to pc: the compiler
// addresses array stores as ptr + (iv << k), so the stride is the induction
// stride scaled through shifts and adds. Loop-invariant inputs contribute 0;
// a constant self-increment is its own stride.
func strideAt(g *cfg, sh *loopShape, pc int, reg isa.Reg, depth int) (int64, bool) {
	if depth > 6 {
		return 0, false
	}
	if reg == regZero {
		return 0, true
	}
	for q := pc - 1; q >= 0; q-- {
		in := g.prog.Insts[q]
		if !sh.body[g.blockOf[q]] || classify(in) != kindPlain {
			// Leaving the loop body, or a control transfer, ends the
			// straight-line window; fall through to the loop-level summary.
			break
		}
		if !instDefs(in).has(reg) {
			continue
		}
		switch {
		case in.Op == isa.ADDI && in.Rd == in.Rs1:
			return in.Imm, true // self-increment: per-iteration bump
		case in.Op == isa.LI:
			return 0, true // re-materialised constant
		case in.Op == isa.ADDI:
			return strideAt(g, sh, q, in.Rs1, depth+1)
		case in.Op == isa.SLLI:
			s, ok := strideAt(g, sh, q, in.Rs1, depth+1)
			if !ok || in.Imm < 0 || in.Imm > 32 {
				return 0, false
			}
			return s << uint(in.Imm), true
		case in.Op == isa.ADD:
			a, aok := strideAt(g, sh, q, in.Rs1, depth+1)
			b, bok := strideAt(g, sh, q, in.Rs2, depth+1)
			if !aok || !bok {
				return 0, false
			}
			return a + b, true
		default:
			return 0, false
		}
	}
	if !sh.loopDefs.has(reg) {
		return 0, true // loop-invariant
	}
	return sh.induction(reg)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
