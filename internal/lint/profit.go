package lint

import (
	"fmt"

	"loopfrog/internal/isa"
)

// Profitability heuristics (§5.1 de-selection). These mirror what the
// compiler's loop selection tries to avoid but apply to any image, including
// hand-written assembly: epochs too short to amortise the spawn/checkpoint
// cost, and store address patterns that make consecutive iterations collide
// in the same SSB granule. Both are informational — the hardware stays
// correct, it just squashes a lot.

// checkProfitability appends LF201/LF202 infos for each region.
func checkProfitability(g *cfg, regions []*region, opts Options, rep *Report) {
	for _, r := range regions {
		if n := len(r.interior); n > 0 && n < opts.MinEpochInsts {
			rep.add(Diagnostic{
				Code: CodeShortEpoch, Severity: SevInfo, PC: r.detachPC, Region: r.id,
				Message: fmt.Sprintf("epoch body of region %d is %d instruction(s), below the ~%d-instruction spawn/checkpoint cost: speculation cannot pay for itself", r.id, n, opts.MinEpochInsts),
			})
		}
		checkGranuleConflicts(g, r, opts, rep)
	}
}

// checkGranuleConflicts flags stores in the epoch body whose address lands in
// the same SSB granule every iteration: a loop-invariant base register, or a
// base advanced by a stride smaller than the granule.
func checkGranuleConflicts(g *cfg, r *region, opts Options, rep *Report) {
	cont := int(r.id)
	if cont < 0 || cont >= len(g.prog.Insts) {
		return
	}
	dbi, cbi := g.blockOf[r.detachPC], g.blockOf[cont]
	f := g.funcContaining(dbi)
	if f == nil || !f.inSet[cbi] {
		return
	}
	lp := innermostLoopWith(g.naturalLoops(f), dbi, cbi)
	if lp == nil {
		return
	}

	// Registers that change across an iteration, and for each register the
	// constant self-increment if `addi r, r, c` is its only def in the loop.
	var loopDefs regSet
	selfInc := make(map[isa.Reg]int64)
	multiDef := make(map[isa.Reg]bool)
	for bi := range lp.body {
		b := &g.blocks[bi]
		for pc := b.Start; pc < b.End; pc++ {
			in := g.prog.Insts[pc]
			defs := instDefs(in)
			if classify(in) == kindCall {
				if callee := g.funcOf[int(in.Imm)]; callee != nil {
					defs = defs.union(callee.mayWrite)
				}
			}
			for _, reg := range defs.regs() {
				if loopDefs.has(reg) {
					multiDef[reg] = true
				}
				loopDefs.add(reg)
			}
			if in.Op == isa.ADDI && in.Rd == in.Rs1 && in.Rd != regZero {
				selfInc[in.Rd] = in.Imm
			}
		}
	}

	gb := int64(opts.GranuleBytes)
	for pc := range r.interior {
		in := g.prog.Insts[pc]
		if !isa.OpMeta(in.Op).IsStore || in.Rs1 == regSP {
			continue // stack traffic is private to the frame; skip it
		}
		base := in.Rs1
		switch {
		case !loopDefs.has(base):
			rep.add(Diagnostic{
				Code: CodeInvariantStore, Severity: SevInfo, PC: pc, Region: r.id,
				Message: fmt.Sprintf("store base %s is loop-invariant: every iteration writes the same %d-byte granule, so consecutive epochs always conflict", base, gb),
			})
		case !multiDef[base]:
			if c, ok := selfInc[base]; ok && c != 0 && abs64(c) < gb {
				rep.add(Diagnostic{
					Code: CodeInvariantStore, Severity: SevInfo, PC: pc, Region: r.id,
					Message: fmt.Sprintf("store base %s advances by %d byte(s) per iteration, below the %d-byte granule: consecutive epochs often share a granule and conflict", base, c, gb),
				})
			}
		}
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
