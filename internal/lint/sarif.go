package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SARIF 2.1.0 output, the interchange format GitHub code scanning ingests.
// One run carries every report's diagnostics; each program image is an
// artifact, and each diagnostic code used becomes a reporting descriptor so
// viewers can render per-rule help.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	Properties       *sarifProps  `json:"properties,omitempty"`
}

type sarifProps struct {
	Tags []string `json:"tags,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// sarifRuleTitles are the one-line rule descriptions, keyed by code.
var sarifRuleTitles = map[string]string{
	CodeStructural:         "image fails structural validation or control flow runs off the end",
	CodeDanglingDetach:     "epoch region never closes with a reattach or sync",
	CodeMismatchedRegion:   "reattach region ID does not match its open epoch",
	CodeBranchIntoEpoch:    "control flow enters an epoch region bypassing its detach",
	CodeLoopCarriedReg:     "epoch body writes a register the continuation consumes",
	CodeContinuationSkip:   "reattach does not fall through to its continuation",
	CodeNestedDetach:       "nested detach inside an open epoch region",
	CodeMissingSync:        "region has no sync to cancel successors on loop exit",
	CodeExitWithoutSync:    "loop exit edge is not guarded by a sync",
	CodeDetachOutsideLoop:  "detach/continuation pair is not inside a natural loop",
	CodeOrphanSync:         "sync has no corresponding detach and is ignored",
	CodeUnanalyzableFlow:   "indirect jump prevents complete control-flow analysis",
	CodeShortEpoch:         "epoch body is too short to pay for speculation",
	CodeInvariantStore:     "epoch store hits the same conflict granule every iteration",
	CodeSpecLoadFeedsLoad:  "speculative load result feeds a load address (Spectre read gadget)",
	CodeSpecLoadFeedsStore: "speculative load result feeds a store address",
	CodeGadgetInRegion:     "speculative-leak gadget inside a detach region",
}

// sarifLevel maps severities onto the SARIF level vocabulary. Security
// findings surface as warnings (SARIF has no dedicated security level; the
// rule carries a "security" tag instead).
func sarifLevel(s Severity) string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	case SevInfo:
		return "note"
	case SevSecurity:
		return "warning"
	}
	return "none"
}

// WriteSARIF renders one or more lint reports as a single SARIF 2.1.0 log
// with one run. Line provenance becomes the result region when present;
// positionless findings carry only the artifact.
func WriteSARIF(w io.Writer, reports []*Report) error {
	usedRules := make(map[string]bool)
	var results []sarifResult
	for _, r := range reports {
		for i := range r.Diags {
			d := &r.Diags[i]
			usedRules[d.Code] = true
			msg := d.Message
			if d.PC >= 0 && d.Line == 0 {
				// No line provenance: keep the pc (and nearest label) visible
				// in the message so the finding stays locatable.
				msg = fmt.Sprintf("%s [at %s]", msg, d.Position(r.Program))
			}
			res := sarifResult{
				RuleID:  d.Code,
				Level:   sarifLevel(d.Severity),
				Message: sarifMessage{Text: msg},
				Locations: []sarifLocation{{
					PhysicalLocation: sarifPhysical{
						ArtifactLocation: sarifArtifact{URI: r.Program},
					},
				}},
			}
			if d.Line > 0 {
				res.Locations[0].PhysicalLocation.Region = &sarifRegion{StartLine: d.Line}
			}
			results = append(results, res)
		}
	}
	if results == nil {
		results = []sarifResult{}
	}

	codes := make([]string, 0, len(usedRules))
	for c := range usedRules {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	rules := make([]sarifRule, 0, len(codes))
	for _, c := range codes {
		rule := sarifRule{ID: c, ShortDescription: sarifMessage{Text: sarifRuleTitles[c]}}
		if c == CodeSpecLoadFeedsLoad || c == CodeSpecLoadFeedsStore || c == CodeGadgetInRegion {
			rule.Properties = &sarifProps{Tags: []string{"security"}}
		}
		rules = append(rules, rule)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "lflint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
