package lint_test

import (
	"strings"
	"testing"

	"loopfrog/internal/asm"
	"loopfrog/internal/isa"
	"loopfrog/internal/lint"
)

// TestRegionProvenanceWithoutLines covers the label+pc fallback path: images
// assembled through the Builder without Line calls carry no line table, so
// the region table and diagnostics must fall back to the nearest label.
func TestRegionProvenanceWithoutLines(t *testing.T) {
	t0, t1, t2 := isa.Reg(5), isa.Reg(6), isa.Reg(7)
	b := asm.NewBuilder("nolines")
	b.Label("main")
	b.Li(t0, 0)
	b.Li(t1, 16)
	b.Label("loop")
	b.Hint(isa.DETACH, "cont")
	b.OpImm(isa.ADDI, t2, t0, 3)
	b.Hint(isa.REATTACH, "cont")
	b.Label("cont")
	b.OpImm(isa.ADDI, t0, t0, 1)
	b.Branch(isa.BLT, t0, t1, "loop")
	b.Hint(isa.SYNC, "cont")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Lines != nil {
		t.Fatal("builder without Line calls must not attach a line table")
	}

	rep := lint.Run(p, lint.Options{})
	if len(rep.Regions) != 1 {
		t.Fatalf("want one region, got %d", len(rep.Regions))
	}
	r := rep.Regions[0]
	if r.Line != 0 {
		t.Errorf("region Line = %d, want 0 without provenance", r.Line)
	}
	if r.Label != "loop" {
		t.Errorf("region Label = %q, want the nearest label %q", r.Label, "loop")
	}
	if r.DetachPC != p.MustLabel("loop") {
		t.Errorf("region DetachPC = %d, want the detach at %q", r.DetachPC, "loop")
	}

	// The short epoch produces at least one positioned diagnostic (LF201);
	// all of them must use the label+pc position form, never a line.
	if len(rep.Diags) == 0 {
		t.Fatal("expected diagnostics on the short epoch")
	}
	for _, d := range rep.Diags {
		if d.PC < 0 {
			continue
		}
		if d.Line != 0 {
			t.Errorf("%s at pc %d has Line %d on an image with no line table", d.Code, d.PC, d.Line)
		}
		if d.Label == "" {
			t.Errorf("%s at pc %d has no label fallback", d.Code, d.PC)
		}
		pos := d.Position("nolines")
		if !strings.Contains(pos, "@") || !strings.Contains(pos, "(") {
			t.Errorf("position %q does not use the pc(label) fallback form", pos)
		}
	}
}
