package lint

import (
	"fmt"

	"loopfrog/internal/isa"
)

// Register dataflow. The hardware forks an epoch's speculative successor
// with a checkpoint of the registers at detach time; writes performed by the
// epoch body never reach it (memory flows through the SSB and is conflict-
// checked, registers are not). A register that is written inside the body
// and consumed by the continuation is therefore an undetectable
// cross-iteration dependence: LF004.
//
// Calls inside epoch bodies are legal, so the liveness is interprocedural:
// each function gets a (mayRead, mayWrite, preserved) summary, fixpointed to
// handle recursion. A callee's preserved set is {x0, sp} plus every register
// restored from the stack on all return paths plus registers it never
// writes; mayWrite is everything else it (or its callees) write.

// regSet is a set over the 64 architectural registers (x0-x31, f0-f31).
type regSet uint64

func (s regSet) has(r isa.Reg) bool    { return s&(1<<uint(r)) != 0 }
func (s *regSet) add(r isa.Reg)        { *s |= 1 << uint(r) }
func (s regSet) union(o regSet) regSet { return s | o }
func (s regSet) minus(o regSet) regSet { return s &^ o }
func (s regSet) empty() bool           { return s == 0 }

// regs returns the members in ascending order.
func (s regSet) regs() []isa.Reg {
	var out []isa.Reg
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if s.has(r) {
			out = append(out, r)
		}
	}
	return out
}

// instUses returns the registers an instruction reads (x0 excluded: it is
// constant).
func instUses(in isa.Inst) regSet {
	var s regSet
	m := isa.OpMeta(in.Op)
	if m.HasRs1 && in.Rs1 != regZero {
		s.add(in.Rs1)
	}
	if m.HasRs2 && in.Rs2 != regZero {
		s.add(in.Rs2)
	}
	return s
}

// instDefs returns the registers an instruction writes (x0 excluded: writes
// to it are discarded).
func instDefs(in isa.Inst) regSet {
	var s regSet
	if isa.OpMeta(in.Op).HasRd && in.Rd != regZero {
		s.add(in.Rd)
	}
	return s
}

// computeSummaries fixpoints the per-function call summaries and final
// per-block liveness for every function in the graph.
func computeSummaries(g *cfg) {
	for _, f := range g.funcs {
		f.liveIn = make(map[int]regSet)
	}
	for changed := true; changed; {
		changed = false
		for _, f := range g.funcs {
			if g.liveness(f) {
				changed = true
			}
			if g.writeSummary(f) {
				changed = true
			}
		}
	}
}

// liveness runs backward block liveness over f with the current callee
// summaries, updating f.liveIn and f.mayRead. Returns true if anything grew.
func (g *cfg) liveness(f *fn) bool {
	grew := false
	// Iterate blocks in reverse index order until stable; block indices
	// roughly follow layout, so reverse order converges fast for reducible
	// flow.
	for pass := true; pass; {
		pass = false
		for i := len(f.blocks) - 1; i >= 0; i-- {
			bi := f.blocks[i]
			b := &g.blocks[bi]
			var live regSet
			for _, s := range b.Succs {
				if f.inSet[s] {
					live = live.union(f.liveIn[s])
				}
			}
			for pc := b.End - 1; pc >= b.Start; pc-- {
				live = g.transfer(pc, live)
			}
			if live != f.liveIn[bi] {
				f.liveIn[bi] = f.liveIn[bi].union(live)
				pass, grew = true, true
			}
		}
	}
	entry := f.liveIn[g.blockOf[f.entryPC]]
	if entry != f.mayRead {
		f.mayRead = f.mayRead.union(entry)
		grew = true
	}
	return grew
}

// transfer applies one instruction's backward liveness transfer.
func (g *cfg) transfer(pc int, live regSet) regSet {
	in := g.prog.Insts[pc]
	switch classify(in) {
	case kindCall:
		// The callee's possible reads become live and its possible writes
		// are not kills (may, not must). The jal's own write of the link
		// register precedes the callee's read of it, so the kill applies
		// after the callee's reads are added.
		if callee := g.funcOf[int(in.Imm)]; callee != nil {
			live = live.union(callee.mayRead)
		}
		return live.minus(instDefs(in))
	case kindReturn:
		var s regSet
		s.add(regRA)
		return live.union(s)
	default:
		return live.minus(instDefs(in)).union(instUses(in))
	}
}

// writeSummary recomputes f's mayWrite/preserved from its instructions and
// current callee summaries. Returns true if mayWrite grew.
func (g *cfg) writeSummary(f *fn) bool {
	var writes regSet
	for _, bi := range f.blocks {
		b := &g.blocks[bi]
		for pc := b.Start; pc < b.End; pc++ {
			in := g.prog.Insts[pc]
			writes = writes.union(instDefs(in))
			if classify(in) == kindCall {
				if callee := g.funcOf[int(in.Imm)]; callee != nil {
					writes = writes.union(callee.mayWrite)
				}
			}
		}
	}
	restored := g.restoredOnReturns(f)
	var pinned regSet
	pinned.add(regZero)
	pinned.add(regSP)
	f.preserved = pinned.union(restored).union(^writes)
	mw := writes.minus(restored).minus(pinned)
	if mw != f.mayWrite {
		f.mayWrite = f.mayWrite.union(mw)
		return true
	}
	return false
}

// restoredOnReturns returns the registers reloaded from the stack in every
// return block of f (the standard callee-saved epilogue shape). Returns 0
// when f has no return blocks (e.g. main, which halts).
func (g *cfg) restoredOnReturns(f *fn) regSet {
	var acc regSet
	first := true
	for _, bi := range f.blocks {
		b := &g.blocks[bi]
		if classify(g.prog.Insts[b.End-1]) != kindReturn {
			continue
		}
		var rest regSet
		for pc := b.Start; pc < b.End; pc++ {
			in := g.prog.Insts[pc]
			if isa.OpMeta(in.Op).IsLoad && in.Rs1 == regSP && in.Rd != regZero {
				rest.add(in.Rd)
			} else {
				rest = rest.minus(instDefs(in))
			}
		}
		if first {
			acc, first = rest, false
		} else {
			acc &= rest
		}
	}
	if first {
		return 0
	}
	return acc
}

// checkLoopCarried flags registers written inside an epoch body that the
// continuation consumes (LF004).
func checkLoopCarried(g *cfg, regions []*region, rep *Report) {
	computeSummaries(g)
	for _, r := range regions {
		cont := int(r.id)
		if cont < 0 || cont >= len(g.prog.Insts) {
			continue
		}
		dbi, cbi := g.blockOf[r.detachPC], g.blockOf[cont]
		f := g.funcContaining(dbi)
		if f == nil || !f.inSet[cbi] {
			continue
		}
		// Registers the body may write, with an anchoring pc per register.
		writtenAt := make(map[isa.Reg]int)
		var written regSet
		note := func(s regSet, pc int) {
			for _, reg := range s.regs() {
				if _, seen := writtenAt[reg]; !seen {
					writtenAt[reg] = pc
				}
			}
			written = written.union(s)
		}
		for pc := range r.interior {
			in := g.prog.Insts[pc]
			note(instDefs(in), pc)
			if classify(in) == kindCall {
				if callee := g.funcOf[int(in.Imm)]; callee != nil {
					note(callee.mayWrite, pc)
				}
			}
		}
		var zero regSet
		zero.add(regZero)
		bad := written.minus(zero) & f.liveIn[cbi]
		for _, reg := range bad.regs() {
			rep.add(Diagnostic{
				Code: CodeLoopCarriedReg, Severity: SevError, PC: writtenAt[reg], Region: r.id,
				Message: fmt.Sprintf("register %s is written in the epoch body of region %d and read by the continuation: a loop-carried register dependence the hardware cannot rename away", reg, r.id),
			})
		}
	}
}
