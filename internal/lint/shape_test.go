package lint_test

import (
	"testing"

	"loopfrog/internal/lint"
)

// TestRegionShapeFields checks the machine-readable columns of the region
// table on the canonical clean loop: 16 iterations, 8-byte strided store.
func TestRegionShapeFields(t *testing.T) {
	rep := mustLint(t, cleanLoop)
	if len(rep.Regions) != 1 {
		t.Fatalf("want 1 region, got %+v", rep.Regions)
	}
	r := rep.Regions[0]
	if r.TripBound != 16 {
		t.Errorf("TripBound = %d, want 16", r.TripBound)
	}
	if r.EstGranule != 8 {
		t.Errorf("EstGranule = %d, want 8", r.EstGranule)
	}
	if r.StoreDensity <= 0 || r.StoreDensity > 1 {
		t.Errorf("StoreDensity = %v, want in (0,1]", r.StoreDensity)
	}
}

// TestProfitabilityData checks LF201/LF202 carry structured payloads.
func TestProfitabilityData(t *testing.T) {
	const src = `
        .data
buf:    .zero 64
        .text
main:   la   a0, buf
        li   t0, 0
        li   t1, 8
loop:   detach cont
        sd   t0, 0(a0)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`
	rep := mustLint(t, src)
	var saw201, saw202 bool
	for i := range rep.Diags {
		d := &rep.Diags[i]
		switch d.Code {
		case lint.CodeShortEpoch:
			saw201 = true
			if d.Data == nil || d.Data.EpochInsts == 0 || d.Data.MinEpochInsts == 0 {
				t.Errorf("LF201 missing data payload: %+v", d.Data)
			}
		case lint.CodeInvariantStore:
			saw202 = true
			if d.Data == nil || !d.Data.Invariant || d.Data.GranuleBytes == 0 {
				t.Errorf("LF202 missing data payload: %+v", d.Data)
			}
		}
	}
	if !saw201 || !saw202 {
		t.Fatalf("want LF201 and LF202, got 201=%v 202=%v", saw201, saw202)
	}
}
