package lint

import (
	"fmt"
	"sort"

	"loopfrog/internal/isa"
)

// Region well-formedness. Every DETACH opens an epoch region identified by
// its continuation address (the Imm of the hint). The analysis walks the
// instruction-level flow graph from each detach, collecting the region's
// interior — the instructions a speculative epoch may execute — and checking
// that every path closes the region with a reattach or sync of the same ID,
// that nothing jumps into the middle of it, and that the reattach actually
// leads to the continuation.

// region is the reconstruction of one epoch region.
type region struct {
	detachPC   int
	id         int64        // continuation address == region ID
	interior   map[int]bool // instruction pcs between detach and terminators
	reattaches []int        // pcs of reattach <id> reached from the detach
	syncs      []int        // pcs of sync <id> reached from the detach (break exits)
}

// checkRegions runs the region analysis, appending diagnostics to rep, and
// returns the reconstructed regions for the dataflow and profitability
// passes.
func checkRegions(g *cfg, rep *Report) []*region {
	p := g.prog
	var regions []*region
	// matchedReattach marks reattach pcs reached by a detach of their own
	// region; the rest are orphans (LF002).
	matchedReattach := make(map[int]bool)

	for _, pc := range g.indirect {
		rep.add(Diagnostic{
			Code: CodeUnanalyzableFlow, Severity: SevWarning, PC: pc, Region: -1,
			Message: "indirect jump: control flow is not statically analyzable here; region checks are best-effort",
		})
	}

	for dpc, in := range p.Insts {
		if in.Op != isa.DETACH {
			continue
		}
		r := &region{detachPC: dpc, id: in.Imm, interior: make(map[int]bool)}
		regions = append(regions, r)
		walkRegion(g, r, rep, matchedReattach)
		checkEntryEdges(g, r, rep)
		checkLoopShape(g, r, rep)
	}

	// Orphan reattaches: never reached from a detach of their own region.
	for pc, in := range p.Insts {
		if in.Op == isa.REATTACH && !matchedReattach[pc] {
			rep.add(Diagnostic{
				Code: CodeMismatchedRegion, Severity: SevError, PC: pc, Region: in.Imm,
				Message: fmt.Sprintf("reattach for region %d is not reachable from any detach of that region", in.Imm),
			})
		}
	}

	for i := range regions {
		checkContinuation(g, regions[i], rep)
		checkSyncCoverage(g, regions[i], rep)
	}
	return regions
}

// walkRegion DFSes the instruction flow graph from the detach, classifying
// every path terminator.
func walkRegion(g *cfg, r *region, rep *Report, matchedReattach map[int]bool) {
	p := g.prog
	seen := make(map[int]bool)
	stack := []int{r.detachPC + 1}
	if r.detachPC+1 >= len(p.Insts) {
		rep.add(Diagnostic{
			Code: CodeDanglingDetach, Severity: SevError, PC: r.detachPC, Region: r.id,
			Message: "detach at end of image: the epoch has no body and never reattaches",
		})
		return
	}
	dangling := func(pc int, why string) {
		rep.add(Diagnostic{
			Code: CodeDanglingDetach, Severity: SevError, PC: pc, Region: r.id,
			Message: fmt.Sprintf("epoch of region %d (detach at pc %d) %s without reattach or sync", r.id, r.detachPC, why),
		})
	}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[pc] {
			continue
		}
		if pc == r.detachPC {
			// The walk wrapped around the loop back to its own detach: the
			// backedge was taken with the region still open.
			dangling(pc, "loops back to its own detach")
			continue
		}
		seen[pc] = true
		in := p.Insts[pc]
		switch in.Op {
		case isa.REATTACH:
			if in.Imm == r.id {
				r.reattaches = append(r.reattaches, pc)
				matchedReattach[pc] = true
				continue // region closed on this path
			}
			rep.add(Diagnostic{
				Code: CodeMismatchedRegion, Severity: SevError, PC: pc, Region: r.id,
				Message: fmt.Sprintf("reattach for region %d inside open region %d: region IDs do not match", in.Imm, r.id),
			})
			continue
		case isa.SYNC:
			if in.Imm == r.id {
				// A break path: sync both closes the epoch and squashes
				// successors. Legal terminator.
				r.syncs = append(r.syncs, pc)
				continue
			}
			// Sync of an unrelated region is a NOP for this threadlet.
			rep.add(Diagnostic{
				Code: CodeOrphanSync, Severity: SevWarning, PC: pc, Region: r.id,
				Message: fmt.Sprintf("sync for region %d inside open region %d is ignored by the epoch threadlet", in.Imm, r.id),
			})
		case isa.DETACH:
			rep.add(Diagnostic{
				Code: CodeNestedDetach, Severity: SevError, PC: pc, Region: r.id,
				Message: fmt.Sprintf("detach for region %d reachable inside open region %d: nested regions are not supported", in.Imm, r.id),
			})
			continue
		case isa.HALT:
			dangling(pc, "halts")
			continue
		}
		switch classify(in) {
		case kindReturn:
			dangling(pc, "returns from the enclosing function")
			continue
		case kindIndirect:
			// Already reported as LF105 globally; the walk cannot follow it.
			continue
		}
		r.interior[pc] = true
		succs := g.instSuccs(pc)
		if len(succs) == 0 && classify(in) != kindHalt {
			dangling(pc, "runs off the end of the image")
		}
		stack = append(stack, succs...)
	}
}

// checkEntryEdges flags control-flow edges from outside the region into its
// interior that bypass the detach (LF003).
func checkEntryEdges(g *cfg, r *region, rep *Report) {
	for pc := range r.interior {
		for _, pred := range instPreds(g, pc) {
			if pred == r.detachPC || r.interior[pred] {
				continue
			}
			// A reattach/sync terminator is not in interior but is part of
			// the region's frame; edges from it are not entries.
			in := g.prog.Insts[pred]
			if in.Op == isa.REATTACH || in.Op == isa.SYNC {
				continue
			}
			rep.add(Diagnostic{
				Code: CodeBranchIntoEpoch, Severity: SevError, PC: pred, Region: r.id,
				Message: fmt.Sprintf("control flow enters the middle of region %d (pc %d) bypassing its detach at pc %d", r.id, pc, r.detachPC),
			})
		}
	}
}

// instPreds returns instruction-level predecessors of pc.
func instPreds(g *cfg, pc int) []int {
	var preds []int
	bi := g.blockOf[pc]
	b := &g.blocks[bi]
	if pc > b.Start {
		return []int{pc - 1}
	}
	for _, pb := range b.Preds {
		preds = append(preds, g.blocks[pb].End-1)
	}
	sort.Ints(preds)
	return preds
}

// checkContinuation verifies each reattach leads to the region's continuation
// through pure control flow (LF005): only NOPs, other hints (architectural
// NOPs) and unconditional jumps may sit between them.
func checkContinuation(g *cfg, r *region, rep *Report) {
	p := g.prog
	n := len(p.Insts)
	cont := int(r.id)
	for _, rpc := range r.reattaches {
		pc := rpc + 1
		ok := false
		for steps := 0; steps <= n; steps++ {
			if pc == cont {
				ok = true
				break
			}
			if pc < 0 || pc >= n {
				break
			}
			in := p.Insts[pc]
			if in.Op == isa.NOP || isa.OpMeta(in.Op).IsHint {
				pc++
				continue
			}
			if classify(in) == kindJump {
				pc = int(in.Imm)
				continue
			}
			break
		}
		if !ok {
			rep.add(Diagnostic{
				Code: CodeContinuationSkip, Severity: SevError, PC: rpc, Region: r.id,
				Message: fmt.Sprintf("reattach does not fall through to its continuation (pc %d): intervening work runs sequentially but is skipped under speculation", cont),
			})
		}
	}
}

// checkLoopShape warns when the detach/continuation pair does not sit inside
// any natural loop (LF103): there is no backedge to leapfrog.
func checkLoopShape(g *cfg, r *region, rep *Report) {
	cont := int(r.id)
	if cont < 0 || cont >= len(g.prog.Insts) {
		return
	}
	dbi, cbi := g.blockOf[r.detachPC], g.blockOf[cont]
	f := g.funcContaining(dbi)
	if f == nil || !f.inSet[cbi] {
		rep.add(Diagnostic{
			Code: CodeDetachOutsideLoop, Severity: SevWarning, PC: r.detachPC, Region: r.id,
			Message: fmt.Sprintf("detach and its continuation (pc %d) are not in the same function", cont),
		})
		return
	}
	if innermostLoopWith(g.naturalLoops(f), dbi, cbi) == nil {
		rep.add(Diagnostic{
			Code: CodeDetachOutsideLoop, Severity: SevWarning, PC: r.detachPC, Region: r.id,
			Message: fmt.Sprintf("detach for region %d is not inside a natural loop with its continuation: nothing to leapfrog", r.id),
		})
	}
}

// checkSyncCoverage warns when a region's loop exits are not guarded by a
// sync (LF101 when the region has no sync anywhere, LF102 per unguarded exit
// edge).
func checkSyncCoverage(g *cfg, r *region, rep *Report) {
	p := g.prog
	hasSync := false
	for _, in := range p.Insts {
		if in.Op == isa.SYNC && in.Imm == r.id {
			hasSync = true
			break
		}
	}
	if !hasSync {
		rep.add(Diagnostic{
			Code: CodeMissingSync, Severity: SevWarning, PC: r.detachPC, Region: r.id,
			Message: fmt.Sprintf("region %d has no sync: loop exits never cancel speculative successors", r.id),
		})
		return
	}

	cont := int(r.id)
	if cont < 0 || cont >= len(p.Insts) {
		return
	}
	dbi, cbi := g.blockOf[r.detachPC], g.blockOf[cont]
	f := g.funcContaining(dbi)
	if f == nil || !f.inSet[cbi] {
		return
	}
	lp := innermostLoopWith(g.naturalLoops(f), dbi, cbi)
	if lp == nil {
		return
	}
	for bi := range lp.body {
		for _, s := range g.blocks[bi].Succs {
			if lp.body[s] {
				continue
			}
			if !syncOnPath(g, s, r.id) {
				rep.add(Diagnostic{
					Code: CodeExitWithoutSync, Severity: SevWarning,
					PC: g.blocks[bi].End - 1, Region: r.id,
					Message: fmt.Sprintf("loop exit for region %d does not pass a sync before other work: stale speculative successors survive the exit", r.id),
				})
			}
		}
	}
}

// syncOnPath reports whether, starting at block bi, a sync of region id is
// reached before any effectful instruction, following straight-line flow and
// unconditional jumps.
func syncOnPath(g *cfg, bi int, id int64) bool {
	p := g.prog
	seen := make(map[int]bool)
	for !seen[bi] {
		seen[bi] = true
		b := &g.blocks[bi]
		for pc := b.Start; pc < b.End; pc++ {
			in := p.Insts[pc]
			if in.Op == isa.SYNC && in.Imm == id {
				return true
			}
			m := isa.OpMeta(in.Op)
			if in.Op == isa.NOP || m.IsHint {
				continue
			}
			if classify(in) == kindJump {
				break
			}
			return false // effectful instruction before the sync
		}
		if len(b.Succs) != 1 {
			return false
		}
		bi = b.Succs[0]
	}
	return false
}
