package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"loopfrog/internal/asm"
	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/fault"
	"loopfrog/internal/lint"
	"loopfrog/internal/report"
	"loopfrog/internal/sim"
	"loopfrog/internal/tune"
	"loopfrog/internal/workloads"
)

// Job priorities. Interactive jobs win the runner's biased select; sweep
// jobs fill the remaining capacity.
const (
	PriorityInteractive = "interactive"
	PrioritySweep       = "sweep"
)

// Job kinds. A sim job runs one simulation of one image; a tune job runs the
// budgeted hint autotuner (internal/tune) over the submitted source, fanning
// its rung evaluations over the fabric when one is configured.
const (
	KindSim  = "sim"
	KindTune = "tune"
)

// AllowedKinds lists every job kind the daemon accepts, in the order the
// 400 reject for an unknown kind enumerates them.
func AllowedKinds() []string { return []string{KindSim, KindTune} }

// JobSpec is the POST /v1/jobs request body. Exactly one program source —
// asm, source, or bench — must be set.
type JobSpec struct {
	// Kind selects the job's engine: "sim" (default) runs one simulation,
	// "tune" runs the budgeted hint autotuner over the source. Unknown kinds
	// are rejected with 400 listing AllowedKinds.
	Kind string `json:"kind,omitempty"`
	// Name labels the job (defaults to the bench name or "submitted").
	Name string `json:"name,omitempty"`
	// Asm is LFISA assembly text (what lfsim accepts as a .s file).
	Asm string `json:"asm,omitempty"`
	// Source is LoopLang text (a .ll file), compiled with hint insertion.
	Source string `json:"source,omitempty"`
	// Bench names a built-in benchmark from the CPU2017/CPU2006 suites or
	// the seeded security suite.
	Bench string `json:"bench,omitempty"`

	// Threadlets configures the LoopFrog core (default 4); Baseline runs
	// hints-as-NOPs only; AB runs baseline and LoopFrog and reports the
	// speedup; NoPack disables iteration packing.
	Threadlets int  `json:"threadlets,omitempty"`
	NoPack     bool `json:"nopack,omitempty"`
	Baseline   bool `json:"baseline,omitempty"`
	AB         bool `json:"ab,omitempty"`
	// MaxCycles overrides the simulation cycle budget (0 = default).
	MaxCycles int64 `json:"max_cycles,omitempty"`

	// Faults is an internal/fault injection spec, seeded by Seed.
	Faults string `json:"faults,omitempty"`
	Seed   int64  `json:"seed,omitempty"`

	// Spectre tracks taint through transient execution and reports confirmed
	// speculative leaks in the result (metadata-only: timing is unchanged).
	// Mitigate enables the ShadowBinding-style defence, delaying dependents
	// of speculative loads until promotion. Both are incompatible with
	// Sampled: taint state cannot survive checkpoint seeding.
	Spectre  bool `json:"spectre,omitempty"`
	Mitigate bool `json:"mitigate,omitempty"`

	// Sampled runs the two-tier sampled estimate (tier-1 functional warming
	// plus detailed windows fanned over the pool) instead of a full detailed
	// run; the result carries estimated cycles. SampleInterval, SampleWindow
	// and SampleWarmup shape the run in instructions (0 = tuned defaults).
	// Incompatible with fault injection, which needs the detailed machine
	// over the whole run.
	Sampled        bool   `json:"sampled,omitempty"`
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	SampleWindow   uint64 `json:"sample_window,omitempty"`
	SampleWarmup   uint64 `json:"sample_warmup,omitempty"`

	// Variant knobs (source jobs only): the tuner's fabric fan-out ships each
	// rung evaluation as a plain sim job carrying the variant to rebuild.
	// Deselect masks @loopfrog loops off by source line; PackFactor caps
	// epoch packing (1 disables it); GranuleBytes overrides the SSB conflict
	// granule; PackTarget overrides the packed-epoch target size.
	Deselect     []int `json:"deselect,omitempty"`
	PackFactor   int   `json:"pack_factor,omitempty"`
	GranuleBytes int   `json:"granule_bytes,omitempty"`
	PackTarget   int   `json:"pack_target,omitempty"`

	// Tune jobs only: search-shaping knobs, defaulted by internal/tune.
	// Budget is the evaluation budget in rung-0-equivalent units, Eta the
	// successive-halving fraction, MaxVariants the post-pruning space cap.
	Budget      int `json:"budget,omitempty"`
	Eta         int `json:"eta,omitempty"`
	MaxVariants int `json:"max_variants,omitempty"`

	// TimeoutMS bounds the job's wall-clock time (capped by the server's
	// MaxTimeout; 0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Priority is "interactive" (default) or "sweep".
	Priority string `json:"priority,omitempty"`
	// Async makes the submission return 202 immediately; poll or stream
	// GET /v1/jobs/{id} for the result.
	Async bool `json:"async,omitempty"`
}

// JobResult is the successful outcome of a job.
type JobResult struct {
	Program string `json:"program"`
	// Worker names the fabric node that executed the job; empty for local
	// execution (single-node daemons and fabric degradation). Together with
	// the view's fingerprint it makes routing decisions debuggable end to
	// end: the fingerprint says where the job should land, Worker says where
	// it did.
	Worker    string  `json:"worker,omitempty"`
	Cycles    int64   `json:"cycles"`
	ArchInsts uint64  `json:"arch_insts"`
	IPC       float64 `json:"ipc"`
	Spawns    uint64  `json:"spawns,omitempty"`
	Squashes  uint64  `json:"squashes,omitempty"`
	// AB mode only: both sides and the region speedup, computed exactly the
	// way lfsim -ab prints it (baseline cycles / loopfrog cycles).
	BaselineCycles int64   `json:"baseline_cycles,omitempty"`
	LoopFrogCycles int64   `json:"loopfrog_cycles,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	// Sampled mode only: cycles above are estimates; these report the
	// estimate's shape and cost, exactly what lfsim -sampled prints.
	Sampled       bool    `json:"sampled,omitempty"`
	Windows       int     `json:"windows,omitempty"`
	DetailedShare float64 `json:"detailed_share,omitempty"`
	Tier1IPS      float64 `json:"tier1_insts_per_sec,omitempty"`
	EffectiveIPS  float64 `json:"effective_insts_per_sec,omitempty"`
	// Spectre mode only: transient loads whose taint-derived address reached
	// the cache (candidates), how many were confirmed leaks by a squash, and
	// how many wakeups the mitigation held. Per-region leak counts ride in
	// each region row's ledger.
	LeakCandidates uint64 `json:"leak_candidates,omitempty"`
	Leaks          uint64 `json:"leaks,omitempty"`
	DelayedWakes   uint64 `json:"delayed_wakes,omitempty"`
	// Regions is the per-region speculation profile (the lfreport row
	// schema): every hinted loop's ledger joined with the preflight lint
	// report, ranked most-costly-first with a keep/retune/drop verdict.
	// Sampled jobs carry interval-weighted estimates. OutsideSlots is the
	// commit-slot attribution of the outside-any-region remainder.
	Regions      []report.Row      `json:"regions,omitempty"`
	OutsideSlots map[string]uint64 `json:"outside_slots,omitempty"`
	// Tune jobs only: the full search report — rungs with their per-rung
	// promotion/elimination tables, the final ranking, winner and static
	// control arm. Cycles above echo the winner's deepest measurement.
	Tune *tune.Report `json:"tune,omitempty"`
}

// Job statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// job is the server-side state of one submission.
type job struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"-"`

	prog *asm.Program
	cfg  cpu.Config
	// lintRep is the admission preflight's report, kept so the result can
	// join static region provenance into the per-region profile.
	lintRep *lint.Report
	// fingerprint is the job's run-cache fingerprint (sim.Fingerprint of the
	// resolved program and canonicalised config): the fabric routing key,
	// surfaced in views and SSE events for end-to-end debuggability.
	fingerprint string

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// machine holds the most recently observed live simulation, for
	// progress streaming; nil before the first attempt or on a cache hit.
	machine atomic.Pointer[cpu.Machine]
	// tuneRung holds the tuner's current rung, for SSE progress on tune
	// jobs; nil otherwise.
	tuneRung atomic.Pointer[tuneRungProgress]

	mu         sync.Mutex
	status     string
	httpStatus int // terminal HTTP status for the sync path and async views
	errText    string
	result     *JobResult
	submitted  time.Time
	started    time.Time
	finishedAt time.Time
}

// view is the externally visible job state, safe to marshal.
type jobView struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// Fingerprint is the run-cache fingerprint the fabric routes on,
	// reported from acceptance onward so a client can follow a job from
	// submission to the worker that served it.
	Fingerprint string     `json:"fingerprint,omitempty"`
	Status      string     `json:"status"`
	Priority    string     `json:"priority"`
	Error       string     `json:"error,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
	QueuedMS    int64      `json:"queued_ms"`
	RunMS       int64      `json:"run_ms,omitempty"`
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:          j.ID,
		Name:        j.Spec.Name,
		Fingerprint: j.fingerprint,
		Status:      j.status,
		Priority:    j.Spec.Priority,
		Error:       j.errText,
		Result:      j.result,
	}
	if !j.started.IsZero() {
		v.QueuedMS = j.started.Sub(j.submitted).Milliseconds()
		end := j.finishedAt
		if end.IsZero() {
			end = time.Now()
		}
		v.RunMS = end.Sub(j.started).Milliseconds()
	} else {
		v.QueuedMS = time.Since(j.submitted).Milliseconds()
	}
	return v
}

func (j *job) setStatus(status string) {
	j.mu.Lock()
	j.status = status
	if status == StatusRunning {
		j.started = time.Now()
	}
	j.mu.Unlock()
}

func (j *job) statusNow() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// finish records the terminal state exactly once and releases waiters.
func (j *job) finish(status string, httpStatus int, result *JobResult, errText string) {
	j.mu.Lock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCancelled {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.httpStatus = httpStatus
	j.result = result
	j.errText = errText
	j.finishedAt = time.Now()
	if j.started.IsZero() {
		j.started = j.finishedAt
	}
	j.mu.Unlock()
	j.cancel()
	close(j.done)
}

// terminal returns the job's terminal HTTP status and view once finished.
func (j *job) terminal() (int, jobView) {
	j.mu.Lock()
	st := j.httpStatus
	j.mu.Unlock()
	return st, j.view()
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
	// Lint carries the full diagnostic report on 422 rejects.
	Lint *lint.Report `json:"lint,omitempty"`
}

// resolveProgram turns the spec's program source into an assembled image.
func resolveProgram(spec *JobSpec) (*asm.Program, error) {
	n := 0
	for _, set := range []bool{spec.Asm != "", spec.Source != "", spec.Bench != ""} {
		if set {
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("exactly one of asm, source, or bench must be set (got %d)", n)
	}
	switch {
	case spec.Bench != "":
		b := findBench(spec.Bench)
		if b == nil {
			return nil, fmt.Errorf("unknown benchmark %q", spec.Bench)
		}
		if spec.Name == "" {
			spec.Name = b.Name
		}
		return b.Program()
	case spec.Asm != "":
		if spec.Name == "" {
			spec.Name = "submitted"
		}
		return asm.Assemble(spec.Name, spec.Asm)
	default:
		if spec.Name == "" {
			spec.Name = "submitted"
		}
		v := spec.variant()
		prog, _, err := compiler.CompileOpts(spec.Name, spec.Source, v.CompilerOpts())
		return prog, err
	}
}

// variant reconstructs the spec's tune variant. The zero spec yields the
// static selection with default knobs untouched (hasVariant is false).
func (spec *JobSpec) variant() tune.Variant {
	return tune.Variant{
		Deselect:     spec.Deselect,
		PackFactor:   spec.PackFactor,
		GranuleBytes: spec.GranuleBytes,
		PackTarget:   spec.PackTarget,
	}
}

// hasVariant reports whether any tune-variant knob is set. The tuner always
// sets PackFactor explicitly (>= 1), so a fan-out spec always trips this.
func (spec *JobSpec) hasVariant() bool {
	return len(spec.Deselect) > 0 || spec.PackFactor != 0 ||
		spec.GranuleBytes != 0 || spec.PackTarget != 0
}

// buildConfig derives the machine configuration from the spec.
func buildConfig(spec *JobSpec) (cpu.Config, error) {
	threadlets := spec.Threadlets
	if threadlets == 0 {
		threadlets = 4
	}
	if threadlets < 1 {
		return cpu.Config{}, fmt.Errorf("threadlets must be at least 1 (got %d)", threadlets)
	}
	cfg := cpu.DefaultConfig()
	cfg.Threadlets = threadlets
	if spec.hasVariant() {
		// Derive the engine knobs exactly the way the tuner's in-process
		// evaluator does, so a fanned-out rung evaluation fingerprints (and
		// run-caches) identically on the worker.
		v := spec.variant()
		cfg = v.Config(cfg)
	}
	if spec.NoPack {
		cfg.Pack.Enabled = false
	}
	if spec.MaxCycles > 0 {
		cfg.MaxCycles = spec.MaxCycles
	}
	if spec.Baseline {
		cfg = sim.BaselineOf(cfg)
	}
	cfg.SpectreAnalysis = spec.Spectre
	cfg.DelaySpeculativeLoadDeps = spec.Mitigate
	return cfg, nil
}

// validateSpec normalises and checks the submission-shaping fields.
func (s *Server) validateSpec(spec *JobSpec) error {
	switch spec.Kind {
	case "":
		spec.Kind = KindSim
	case KindSim, KindTune:
	default:
		quoted := make([]string, 0, len(AllowedKinds()))
		for _, k := range AllowedKinds() {
			quoted = append(quoted, fmt.Sprintf("%q", k))
		}
		return fmt.Errorf("unknown kind %q; allowed kinds: %s", spec.Kind, strings.Join(quoted, ", "))
	}
	if spec.Kind == KindTune {
		if err := normalizeTuneSpec(spec); err != nil {
			return err
		}
	} else if spec.Budget != 0 || spec.Eta != 0 || spec.MaxVariants != 0 {
		return fmt.Errorf("budget/eta/max_variants require kind %q", KindTune)
	}
	if spec.hasVariant() {
		if spec.Kind != KindSim {
			return fmt.Errorf("variant knobs (deselect/pack_factor/granule_bytes/pack_target) apply to kind %q jobs only", KindSim)
		}
		if spec.Source == "" {
			return fmt.Errorf("variant knobs require source: the variant is rebuilt by recompilation")
		}
		if spec.PackFactor < 0 || spec.GranuleBytes < 0 || spec.PackTarget < 0 {
			return fmt.Errorf("variant knobs must be non-negative")
		}
		if spec.NoPack {
			return fmt.Errorf("nopack and pack_factor are mutually exclusive (pack_factor: 1 disables packing)")
		}
	}
	switch spec.Priority {
	case "":
		spec.Priority = PriorityInteractive
		if spec.Kind == KindTune {
			spec.Priority = PrioritySweep
		}
	case PriorityInteractive, PrioritySweep:
	default:
		return fmt.Errorf("priority must be %q or %q (got %q)", PriorityInteractive, PrioritySweep, spec.Priority)
	}
	if spec.Kind == KindTune && spec.Priority != PrioritySweep {
		return fmt.Errorf("tune jobs run on the sweep lane; priority must be %q or unset", PrioritySweep)
	}
	if spec.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be non-negative (got %d)", spec.TimeoutMS)
	}
	if spec.Baseline && spec.AB {
		return fmt.Errorf("baseline and ab are mutually exclusive")
	}
	if spec.Faults != "" {
		if _, err := fault.Parse(spec.Faults, spec.Seed); err != nil {
			return err
		}
	}
	if spec.Sampled {
		if spec.Faults != "" {
			return fmt.Errorf("sampled and faults are mutually exclusive: fault injection needs the detailed machine over the whole run")
		}
		if spec.Spectre || spec.Mitigate {
			return fmt.Errorf("sampled and spectre/mitigate are mutually exclusive: taint state cannot survive checkpoint seeding")
		}
		sc := sim.SampleConfig{Interval: spec.SampleInterval, Window: spec.SampleWindow, Warmup: spec.SampleWarmup}
		if err := sc.Validate(); err != nil {
			return err
		}
	} else if spec.SampleInterval != 0 || spec.SampleWindow != 0 || spec.SampleWarmup != 0 {
		return fmt.Errorf("sample_interval/sample_window/sample_warmup require sampled: true")
	}
	return nil
}

// normalizeTuneSpec checks the tune-specific surface and resolves a bench
// submission to its LoopLang source (the search recompiles per variant, so
// prebuilt-asm programs cannot be tuned).
func normalizeTuneSpec(spec *JobSpec) error {
	if spec.Asm != "" {
		return fmt.Errorf("tune jobs need source (or a source-backed bench): asm images cannot be recompiled per variant")
	}
	if spec.Bench != "" {
		if spec.Source != "" {
			return fmt.Errorf("exactly one of source or bench must be set for a tune job")
		}
		b := findBench(spec.Bench)
		if b == nil {
			return fmt.Errorf("unknown benchmark %q", spec.Bench)
		}
		if b.Source() == "" {
			return fmt.Errorf("%s is a prebuilt asm workload; only LoopLang workloads can be retuned", spec.Bench)
		}
		if spec.Name == "" {
			spec.Name = b.Name
		}
		spec.Source, spec.Bench = b.Source(), ""
	}
	if spec.Source == "" {
		return fmt.Errorf("tune jobs need source (or a source-backed bench)")
	}
	if spec.Baseline || spec.AB {
		return fmt.Errorf("baseline/ab do not apply to tune jobs: every rung scores variants against a shared hints-as-NOPs baseline")
	}
	if spec.Faults != "" || spec.Spectre || spec.Mitigate {
		return fmt.Errorf("faults/spectre/mitigate do not apply to tune jobs")
	}
	if spec.Sampled || spec.SampleInterval != 0 || spec.SampleWindow != 0 || spec.SampleWarmup != 0 {
		return fmt.Errorf("sampled knobs do not apply to tune jobs: the rung schedule fixes each tier's sampling shape")
	}
	if spec.hasVariant() {
		return fmt.Errorf("variant knobs do not apply to tune jobs: the search enumerates variants itself")
	}
	if spec.Budget < 0 || spec.Eta < 0 || spec.MaxVariants < 0 {
		return fmt.Errorf("budget, eta and max_variants must be non-negative")
	}
	return nil
}

// findBench looks a benchmark up across every suite the daemon serves.
func findBench(name string) *workloads.Benchmark {
	for _, suite := range [][]*workloads.Benchmark{workloads.CPU2017(), workloads.CPU2006(), workloads.Security()} {
		if b := workloads.ByName(suite, name); b != nil {
			return b
		}
	}
	return nil
}

// timeoutFor clamps the requested timeout to the server's policy.
func (s *Server) timeoutFor(spec *JobSpec) time.Duration {
	d := s.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		d = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// run executes one admitted job on the harness and records its terminal
// state. AB jobs schedule the baseline and LoopFrog runs as two harness jobs
// (concurrently when workers allow, deduplicated by the run-cache); plain
// jobs schedule one.
func (s *Server) run(j *job) {
	if err := j.ctx.Err(); err != nil {
		j.finish(StatusCancelled, statusClientClosed, nil, "cancelled before start: "+err.Error())
		return
	}
	j.setStatus(StatusRunning)
	timeout := s.timeoutFor(&j.Spec)
	if j.Spec.Kind == KindTune {
		// Tune jobs never forward whole: the coordinator owns the search and
		// fans individual rung evaluations over the fabric (or the local
		// harness) instead.
		s.runTune(j, timeout)
		return
	}
	if s.cfg.Remote != nil {
		// Remote placement first. The forwarded spec is always synchronous
		// (async is a coordinator-side concern) and carries the resolved
		// timeout so the worker enforces the same deadline the coordinator
		// promised. A fabric with no live workers degrades the job to the
		// local harness below.
		spec := j.Spec
		spec.Async = false
		if spec.TimeoutMS <= 0 {
			spec.TimeoutMS = timeout.Milliseconds()
		}
		if s.runRemote(j, spec) {
			return
		}
		s.m.degraded.Add(1)
	}
	if j.Spec.Sampled {
		s.runSampled(j, timeout)
		return
	}
	observe := func(m *cpu.Machine) { j.machine.Store(m) }
	var jobs []sim.Job
	if j.Spec.AB {
		jobs = []sim.Job{
			{Cfg: sim.BaselineOf(j.cfg), Prog: j.prog, Timeout: timeout},
			{Cfg: j.cfg, Prog: j.prog, Faults: j.Spec.Faults, Seed: j.Spec.Seed, Timeout: timeout, Observe: observe},
		}
	} else {
		jobs = []sim.Job{
			{Cfg: j.cfg, Prog: j.prog, Faults: j.Spec.Faults, Seed: j.Spec.Seed, Timeout: timeout, Observe: observe},
		}
	}
	stats, errs := s.harness.RunJobsCtx(j.ctx, jobs)
	for _, err := range errs {
		if err != nil {
			status, httpStatus, text := classifyError(err)
			j.finish(status, httpStatus, nil, text)
			return
		}
	}
	res := &JobResult{Program: j.prog.Name}
	st := stats[len(stats)-1]
	res.Cycles = st.Cycles
	res.ArchInsts = st.ArchInsts
	res.IPC = st.IPC()
	res.Spawns = st.Spawns
	for _, n := range st.Squashes {
		res.Squashes += n
	}
	if j.Spec.AB {
		base, lf := stats[0], stats[1]
		res.BaselineCycles = base.Cycles
		res.LoopFrogCycles = lf.Cycles
		if lf.Cycles > 0 {
			res.Speedup = float64(base.Cycles) / float64(lf.Cycles)
		}
	}
	if j.Spec.Spectre || j.Spec.Mitigate {
		res.LeakCandidates = st.LeakCandidates
		res.Leaks = st.Leaks
		res.DelayedWakes = st.DelayedWakes
	}
	attachRegions(res, st.Regions, j.lintRep, false)
	j.finish(StatusDone, http.StatusOK, res, "")
}

// attachRegions joins a run's per-region speculation ledgers with the
// admission preflight's static region table into the ranked per-loop rows
// lfreport renders, carried inline in the job result. Runs without ledgers
// (region tracking disabled, no regions executed) attach nothing.
func attachRegions(res *JobResult, regions []cpu.RegionLedger, lrep *lint.Report, estimated bool) {
	if len(regions) == 0 {
		return
	}
	prof := report.Build(report.Input{
		Program:        res.Program,
		Regions:        regions,
		Cycles:         res.Cycles,
		BaselineCycles: res.BaselineCycles,
		Estimated:      estimated,
		Lint:           lrep,
	})
	res.Regions = prof.Rows
	res.OutsideSlots = prof.OutsideSlots
}

// runSampled executes a sampled job: the tier-1 pass plus every detailed
// window run inside the job's deadline, windows fanned over the harness pool
// like any other jobs. Progress streaming has no single live machine to
// sample, so SSE clients see status only.
func (s *Server) runSampled(j *job, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()
	sc := sim.SampleConfig{
		Interval: j.Spec.SampleInterval,
		Window:   j.Spec.SampleWindow,
		Warmup:   j.Spec.SampleWarmup,
	}
	res := &JobResult{Program: j.prog.Name, Sampled: true}
	var st *sim.SampledStats
	if j.Spec.AB {
		ab, err := s.harness.RunSampledABCtx(ctx, j.cfg, j.prog, sc)
		if err != nil {
			status, httpStatus, text := classifyError(err)
			j.finish(status, httpStatus, nil, text)
			return
		}
		st = ab.LF
		res.BaselineCycles = int64(ab.Base.EstCycles + 0.5)
		res.LoopFrogCycles = int64(ab.LF.EstCycles + 0.5)
		res.Speedup = ab.EstSpeedup
	} else {
		var err error
		st, err = s.harness.RunSampledCtx(ctx, j.cfg, j.prog, sc)
		if err != nil {
			status, httpStatus, text := classifyError(err)
			j.finish(status, httpStatus, nil, text)
			return
		}
	}
	res.Cycles = int64(st.EstCycles + 0.5)
	res.ArchInsts = st.TotalInsts
	res.IPC = st.IPC()
	res.Windows = len(st.Windows)
	res.DetailedShare = st.DetailedShare
	res.Tier1IPS = st.Tier1IPS
	res.EffectiveIPS = st.EffectiveIPS
	attachRegions(res, st.Regions, j.lintRep, true)
	j.finish(StatusDone, http.StatusOK, res, "")
}

// statusClientClosed mirrors nginx's 499: the client abandoned the request.
const statusClientClosed = 499

// classifyError maps a harness error onto the job's terminal state. The
// mapping is part of the API: deadline → 504, cancellation → 499, panic or
// quarantine → 500, anything else (watchdog trips, cycle limit, memory
// faults) → 500 with the error text.
func classifyError(err error) (status string, httpStatus int, text string) {
	var pe *sim.PanicError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return StatusFailed, http.StatusGatewayTimeout, err.Error()
	case errors.Is(err, context.Canceled):
		return StatusCancelled, statusClientClosed, err.Error()
	case errors.Is(err, sim.ErrQuarantined):
		return StatusFailed, http.StatusInternalServerError, err.Error()
	case errors.As(err, &pe):
		// The stack has been captured server-side; clients get one line.
		line := fmt.Sprintf("sim: worker panic: %v (stack retained server-side, job quarantined on repeat)", pe.Value)
		return StatusFailed, http.StatusInternalServerError, line
	default:
		return StatusFailed, http.StatusInternalServerError, err.Error()
	}
}

// progress is one SSE progress sample read from the live machine snapshot.
// Remote jobs have no local machine, so their samples carry status and
// fingerprint only. Tune jobs carry the search's rung state instead of
// machine counters.
type progress struct {
	Status      string `json:"status"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Cycles      int64  `json:"cycles"`
	ArchInsts   uint64 `json:"arch_insts"`
	Spawns      uint64 `json:"spawns"`
	Retires     uint64 `json:"retires"`
	Squashes    uint64 `json:"squashes"`
	// Tune is the autotuner's current rung (tune jobs only).
	Tune *tuneRungProgress `json:"tune,omitempty"`
}

// tuneRungProgress is the SSE-visible state of a running search: which rung
// the successive halving is on and how many variants it is evaluating.
type tuneRungProgress struct {
	Rung     int    `json:"rung"`
	Tier     string `json:"tier"`
	Variants int    `json:"variants"`
	// Spent is the budget consumed before this rung started.
	Spent int `json:"spent"`
}

// sampleProgress reads the job's live machine, if any.
func (j *job) sampleProgress() progress {
	p := progress{Status: j.statusNow(), Fingerprint: j.fingerprint}
	p.Tune = j.tuneRung.Load()
	if m := j.machine.Load(); m != nil {
		snap := m.SnapshotStats()
		p.Cycles = snap.CPU.Cycles
		p.ArchInsts = snap.CPU.ArchInsts
		p.Spawns = snap.CPU.Spawns
		p.Retires = snap.CPU.Retires
		for _, n := range snap.CPU.Squashes {
			p.Squashes += n
		}
	}
	return p
}

// truncatedName shortens a submitted program name for logs and views.
func truncatedName(name string) string {
	name = strings.TrimSpace(name)
	if len(name) > 64 {
		return name[:64]
	}
	return name
}
