package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// handleJob reports one job's state. Plain GETs return the JSON view; with
// ?stream=1 or Accept: text/event-stream the response is a server-sent event
// stream: a "status" event immediately, "progress" events sampled from the
// live machine snapshot while the job runs, and a terminal "done" event
// carrying the final view.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	wantStream := r.URL.Query().Get("stream") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if !wantStream {
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	s.streamJob(w, r, j)
}

// streamJob writes the SSE progress stream until the job finishes or the
// client goes away.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotAcceptable, apiError{Error: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		fl.Flush()
	}

	emit("status", j.view())
	ticker := time.NewTicker(s.cfg.ProgressInterval)
	defer ticker.Stop()
	for {
		select {
		case <-j.done:
			emit("done", j.view())
			return
		case <-r.Context().Done():
			// The watcher went away; the job itself keeps running.
			return
		case <-ticker.C:
			if j.statusNow() == StatusRunning {
				emit("progress", j.sampleProgress())
			}
		}
	}
}
