package serve

// The remote-execution boundary between the serving front end and the
// distributed fabric. The server owns admission (validation, lint preflight,
// queues, SSE, drain); a RemoteExecutor — internal/fabric's Coordinator —
// owns placement (consistent-hash routing on the run-cache fingerprint),
// failure handling (health probing, retries, hedging, requeue on worker
// death), and returns the executing worker's terminal job view. The server
// keeps its local harness as the degradation path: a fabric that reports
// ErrRemoteUnavailable (no live workers at all) demotes the job to local
// single-node execution instead of failing it.

import (
	"context"
	"errors"
	"net/http"
)

// ErrRemoteUnavailable reports that the fabric has no live worker to place a
// job on. The server responds by running the job on its local harness — the
// coordinator degrades to a single-node daemon rather than failing traffic.
var ErrRemoteUnavailable = errors.New("serve: remote fabric unavailable")

// ErrWorkerLost reports that the worker executing a job died after the job
// had already been requeued once for an earlier worker death. The fabric
// requeues in-flight work exactly once; a second loss surfaces as this typed
// error instead of retrying forever.
var ErrWorkerLost = errors.New("serve: fabric worker lost after requeue")

// RemoteResult is a worker's terminal job view relayed by the fabric. A
// worker that executed the job and reported a job-level failure (deadline,
// panic, quarantine) still produces a RemoteResult — Status, HTTPStatus and
// Error mirror the worker's terminal state — so the coordinator's API answers
// exactly what a single-node daemon would have answered.
type RemoteResult struct {
	// Worker identifies the node that produced the terminal state.
	Worker string
	// Status is the terminal job status (done / failed / cancelled) and
	// HTTPStatus the terminal HTTP code the worker assigned.
	Status     string
	HTTPStatus int
	// Error carries the worker's error text for failed jobs.
	Error string
	// Result is the successful outcome (nil for failed jobs).
	Result *JobResult
}

// RemoteExecutor places one admitted job on the fabric. fingerprint is the
// job's run-cache fingerprint (sim.Fingerprint of the resolved program and
// canonicalised config): the routing key. Implementations must honour ctx —
// a cancelled submission must stop waiting and release any dispatched copies.
//
// Error contract: (nil, ErrRemoteUnavailable) demotes the job to local
// execution; (nil, ErrWorkerLost) is a terminal typed failure; a RemoteResult
// with a failure status is relayed verbatim.
type RemoteExecutor interface {
	ExecuteRemote(ctx context.Context, fingerprint string, spec JobSpec) (*RemoteResult, error)
}

// runRemote attempts remote placement of an admitted job. It reports true
// when the job reached a terminal state (success, relayed worker failure,
// cancellation, or typed fabric failure) and false when the fabric is
// unavailable and the caller should degrade to local execution.
func (s *Server) runRemote(j *job, spec JobSpec) bool {
	rr, err := s.cfg.Remote.ExecuteRemote(j.ctx, j.fingerprint, spec)
	switch {
	case err == nil:
		if rr.Result != nil {
			rr.Result.Worker = rr.Worker
		}
		status, httpStatus := rr.Status, rr.HTTPStatus
		if status == "" {
			status = StatusDone
		}
		if httpStatus == 0 {
			httpStatus = http.StatusOK
		}
		s.m.remoteJobs.Add(1)
		j.finish(status, httpStatus, rr.Result, rr.Error)
		return true
	case errors.Is(err, ErrRemoteUnavailable):
		return false
	case errors.Is(err, ErrWorkerLost):
		j.finish(StatusFailed, http.StatusInternalServerError, nil, err.Error())
		return true
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		status, httpStatus, text := classifyError(err)
		j.finish(status, httpStatus, nil, text)
		return true
	default:
		j.finish(StatusFailed, http.StatusBadGateway, nil, "fabric: "+err.Error())
		return true
	}
}
