package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"loopfrog/internal/asm"
	"loopfrog/internal/cpu"
	"loopfrog/internal/lint"
	"loopfrog/internal/sim"
)

// handleSubmit admits one job: decode → validate → resolve program → lint
// preflight → lane enqueue. Sync submissions wait for the terminal state;
// async submissions return 202 with a Location to poll or stream.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	s.admit(w, r, spec)
}

// decodeSpec reads and decodes one JobSpec body, answering the error itself
// when the body is unreadable or the server is draining.
func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request) (JobSpec, bool) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining"})
		return JobSpec{}, false
	}
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, apiError{Error: "bad request body: " + err.Error()})
		return JobSpec{}, false
	}
	return spec, true
}

// admit validates, preflights, and enqueues one decoded submission.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, spec JobSpec) {
	spec.Name = truncatedName(spec.Name)
	if err := s.validateSpec(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	prog, err := resolveProgram(&spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	cfg, err := buildConfig(&spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	// Mandatory admission gate: a program that fails hint-legality preflight
	// is never simulated. 422 carries the full diagnostic report. Admitted
	// jobs keep the report: its static region table (provenance, body shape)
	// is joined into the result's per-region profile.
	rep, perr := lint.Preflight(prog)
	if perr != nil {
		s.m.lintRejects.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, apiError{Error: perr.Error(), Lint: rep})
		return
	}

	j := s.newJob(spec, prog, cfg, rep)
	lane := s.interactive
	if spec.Priority == PrioritySweep {
		lane = s.sweep
	}
	select {
	case lane <- j:
		s.m.admitted.Add(1)
	default:
		// Lane full: reject with backpressure advice, forget the job.
		s.m.rejected.Add(1)
		s.forgetJob(j.ID)
		j.cancel()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, apiError{
			Error: fmt.Sprintf("%s queue full (%d deep); retry later", spec.Priority, s.cfg.QueueDepth),
		})
		return
	}

	if spec.Async {
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.view())
		return
	}

	// Sync path: wait for the job or the client. A disconnect cancels the
	// job so the harness slot frees up (guaranteed by RunJobsCtx).
	select {
	case <-j.done:
		status, v := j.terminal()
		writeJSON(w, status, v)
	case <-r.Context().Done():
		j.cancel()
		<-j.done // runner observes the cancel promptly; wait for the record
	}
}

// newJob registers a fresh job in the queued state.
func (s *Server) newJob(spec JobSpec, prog *asm.Program, cfg cpu.Config, lintRep *lint.Report) *job {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		ID:          fmt.Sprintf("job-%08d", s.seq.Add(1)),
		Spec:        spec,
		prog:        prog,
		cfg:         cfg,
		lintRep:     lintRep,
		fingerprint: sim.Fingerprint(cfg, prog),
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		status:      StatusQueued,
	}
	j.submitted = time.Now()
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.mu.Unlock()
	return j
}

// lookupJob returns the job by ID, or nil.
func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// forgetJob drops a job from the registry (rejected admissions).
func (s *Server) forgetJob(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// retireJob moves a finished job into the bounded retention FIFO.
func (s *Server) retireJob(j *job) {
	s.mu.Lock()
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > s.cfg.RetainJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
}

// runnerLoop pulls admitted jobs with a biased select — interactive work is
// always preferred when both lanes have entries — and executes them.
func (s *Server) runnerLoop() {
	defer s.runnerWG.Done()
	for {
		// Bias: drain interactive first.
		select {
		case <-s.stop:
			return
		case j := <-s.interactive:
			s.runOne(j)
			continue
		default:
		}
		select {
		case <-s.stop:
			return
		case j := <-s.interactive:
			s.runOne(j)
		case j := <-s.sweep:
			s.runOne(j)
		}
	}
}

// runOne wraps a job execution with inflight accounting and latency capture.
func (s *Server) runOne(j *job) {
	s.m.inflight.Add(1)
	start := time.Now()
	s.run(j)
	s.m.observeLatency(time.Since(start))
	s.m.inflight.Add(-1)
	s.retireJob(j)
}
