package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loopfrog/internal/cpu"
	"loopfrog/internal/serve"
	"loopfrog/internal/sim"
	"loopfrog/internal/workloads"

	"loopfrog/internal/asm"
)

// trivialAsm is a legal hint-free program that finishes in a handful of
// cycles.
const trivialAsm = `
main:   li   t0, 7
        addi t0, t0, 35
        halt
`

// spinAsm never halts; only a deadline or cancellation ends it.
const spinAsm = `
main:   addi t0, t0, 1
        jal  x0, main
`

// illegalAsm has a dangling detach (LF001): the backedge is taken with the
// region still open, which lint.Preflight must reject.
const illegalAsm = `
main:   li   t0, 0
        li   t1, 16
loop:   detach cont
        addi t2, t0, 3
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        halt
`

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, spec map[string]any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

func TestSubmitSync(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, payload := post(t, ts, map[string]any{"name": "trivial", "asm": trivialAsm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var v struct {
		ID          string `json:"id"`
		Status      string `json:"status"`
		Fingerprint string `json:"fingerprint"`
		Result      *struct {
			Cycles    int64  `json:"cycles"`
			ArchInsts uint64 `json:"arch_insts"`
		} `json:"result"`
	}
	if err := json.Unmarshal(payload, &v); err != nil {
		t.Fatalf("bad body %s: %v", payload, err)
	}
	if v.Status != "done" || v.Result == nil || v.Result.Cycles <= 0 || v.Result.ArchInsts == 0 {
		t.Errorf("unexpected terminal view: %s", payload)
	}
	if len(v.Fingerprint) != 16 {
		t.Errorf("view fingerprint = %q, want 16 hex chars (the run-cache routing key)", v.Fingerprint)
	}
	// The job stays pollable after completion.
	pollResp, pollBody := get(t, ts, "/v1/jobs/"+v.ID)
	if pollResp.StatusCode != http.StatusOK || !bytes.Contains(pollBody, []byte(`"done"`)) {
		t.Errorf("poll after completion: %d %s", pollResp.StatusCode, pollBody)
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

// TestSubmitValidation drives every 4xx admission path.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	cases := []struct {
		name string
		spec map[string]any
		want int
	}{
		{"no source", map[string]any{"name": "x"}, http.StatusBadRequest},
		{"two sources", map[string]any{"asm": trivialAsm, "bench": "mcf"}, http.StatusBadRequest},
		{"unknown bench", map[string]any{"bench": "nosuchbench"}, http.StatusBadRequest},
		{"bad priority", map[string]any{"asm": trivialAsm, "priority": "urgent"}, http.StatusBadRequest},
		{"baseline and ab", map[string]any{"asm": trivialAsm, "baseline": true, "ab": true}, http.StatusBadRequest},
		{"negative timeout", map[string]any{"asm": trivialAsm, "timeout_ms": -1}, http.StatusBadRequest},
		{"bad faults", map[string]any{"asm": trivialAsm, "faults": "frobnicate=2"}, http.StatusBadRequest},
		{"bad threadlets", map[string]any{"asm": trivialAsm, "threadlets": -3}, http.StatusBadRequest},
		{"unknown field", map[string]any{"asm": trivialAsm, "bogus": 1}, http.StatusBadRequest},
		{"assembler error", map[string]any{"asm": "main: frob t0"}, http.StatusBadRequest},
		{"lint reject", map[string]any{"asm": illegalAsm}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, payload := post(t, ts, tc.spec)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, tc.want, payload)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(payload, &e); err != nil || e.Error == "" {
				t.Errorf("error body missing: %s", payload)
			}
		})
	}
}

// TestLintRejectCarriesReport: the 422 body must include the structured lint
// report, not just a message.
func TestLintRejectCarriesReport(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, payload := post(t, ts, map[string]any{"name": "bad", "asm": illegalAsm})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var e struct {
		Error string `json:"error"`
		Lint  *struct {
			Diags []struct {
				Code     string `json:"code"`
				Severity string `json:"severity"`
			} `json:"diagnostics"`
		} `json:"lint"`
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		t.Fatalf("bad 422 body %s: %v", payload, err)
	}
	if e.Lint == nil || len(e.Lint.Diags) == 0 {
		t.Fatalf("422 body has no lint report: %s", payload)
	}
	if !strings.Contains(e.Error, "LF0") {
		t.Errorf("422 error does not cite a legality code: %q", e.Error)
	}
}

// TestQueueFull fills the single-runner, depth-1 interactive lane and
// asserts the next submission bounces with 429 + Retry-After.
func TestQueueFull(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Runners: 1, QueueDepth: 1})
	// Block the only runner, then occupy the lane slot. The spin jobs
	// expire via their own deadline so Cleanup's drain stays fast.
	spin := map[string]any{"asm": spinAsm, "timeout_ms": 2000, "async": true}
	resp, payload := post(t, ts, spin)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, payload)
	}
	var sawBusy bool
	for i := 0; i < 10; i++ {
		resp, payload = post(t, ts, spin)
		switch resp.StatusCode {
		case http.StatusAccepted:
			continue // runner had not yet picked up the previous job
		case http.StatusTooManyRequests:
			sawBusy = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(payload, &e); err != nil || !strings.Contains(e.Error, "queue full") {
				t.Errorf("429 body: %s", payload)
			}
		default:
			t.Fatalf("submit %d: status %d, body %s", i, resp.StatusCode, payload)
		}
		if sawBusy {
			break
		}
	}
	if !sawBusy {
		t.Fatal("never saw a 429 despite a blocked depth-1 lane")
	}
}

// TestDeadline504: a non-halting program with a short deadline answers 504.
func TestDeadline504(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, payload := post(t, ts, map[string]any{"asm": spinAsm, "timeout_ms": 100})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, payload)
	}
	if !bytes.Contains(payload, []byte(`"failed"`)) {
		t.Errorf("504 view not failed: %s", payload)
	}
}

// TestPanic500AndQuarantine: an injected deterministic panic answers 500
// (stack retained server-side), and resubmitting the identical job hits the
// harness quarantine — also 500, without a third crash.
func TestPanic500AndQuarantine(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{})
	spec := map[string]any{"asm": trivialAsm, "faults": "panic=1", "seed": 1}
	resp, payload := post(t, ts, spec)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", resp.StatusCode, payload)
	}
	if !bytes.Contains(payload, []byte("panic")) {
		t.Errorf("500 body does not mention the panic: %s", payload)
	}
	resp, payload = post(t, ts, spec)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("resubmit status = %d, want 500; body %s", resp.StatusCode, payload)
	}
	if !bytes.Contains(payload, []byte("quarantined")) {
		t.Errorf("resubmit not quarantined: %s", payload)
	}
	if st := s.Harness().Stats(); st.Quarantined == 0 {
		t.Error("harness quarantine counter is zero")
	}
}

// TestAsyncPoll: async submissions return 202 + Location immediately and the
// result arrives by polling.
func TestAsyncPoll(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, payload := post(t, ts, map[string]any{"asm": trivialAsm, "async": true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	loc := resp.Header.Get("Location")
	if loc == "" {
		t.Fatal("202 without Location")
	}
	var accepted struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(payload, &accepted); err != nil || len(accepted.Fingerprint) != 16 {
		t.Errorf("202 view missing routing fingerprint: %s", payload)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, payload = get(t, ts, loc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d, body %s", resp.StatusCode, payload)
		}
		var v struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(payload, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == "done" {
			return
		}
		if v.Status == "failed" || v.Status == "cancelled" || time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", payload)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, _ := get(t, ts, "/v1/jobs/job-99999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

// TestSSEStream: streaming a spinning job yields a status event, at least
// one progress sample with advancing cycles, and a terminal done event.
func TestSSEStream(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{ProgressInterval: 10 * time.Millisecond})
	resp, payload := post(t, ts, map[string]any{"asm": spinAsm, "timeout_ms": 800, "async": true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, payload)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(payload, &v); err != nil {
		t.Fatal(err)
	}
	stream, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []string
	var lastCycles, progressSamples int64
	sc := bufio.NewScanner(stream.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			events = append(events, event)
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "progress" {
				var p struct {
					Cycles      int64  `json:"cycles"`
					Fingerprint string `json:"fingerprint"`
				}
				if err := json.Unmarshal([]byte(data), &p); err != nil {
					t.Fatalf("bad progress %q: %v", data, err)
				}
				if p.Cycles < lastCycles {
					t.Errorf("cycles went backwards: %d -> %d", lastCycles, p.Cycles)
				}
				if len(p.Fingerprint) != 16 {
					t.Errorf("progress event missing routing fingerprint: %q", data)
				}
				lastCycles = p.Cycles
				progressSamples++
			}
		}
	}
	if len(events) == 0 || events[0] != "status" {
		t.Fatalf("stream did not open with a status event: %v", events)
	}
	if events[len(events)-1] != "done" {
		t.Fatalf("stream did not close with a done event: %v", events)
	}
	if progressSamples == 0 {
		t.Error("no progress event during an 800ms spin")
	}
	if lastCycles == 0 {
		t.Error("progress never reported advancing cycles")
	}
}

// TestE2ESpeedupMatchesLfsim: the daemon's AB result must equal what running
// the simulator directly produces — same cycles both sides, same speedup
// formula (baseline cycles / loopfrog cycles), because the daemon is a
// scheduler in front of the same deterministic machine.
func TestE2ESpeedupMatchesLfsim(t *testing.T) {
	src, err := os.ReadFile("../../examples/quickstart/asm/quickstart.s")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble("quickstart", string(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	base, err := sim.Run(sim.BaselineOf(cfg), prog)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := sim.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(base.Cycles) / float64(lf.Cycles)

	_, ts := newTestServer(t, serve.Config{})
	resp, payload := post(t, ts, map[string]any{"name": "quickstart", "asm": string(src), "ab": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var v struct {
		Result struct {
			BaselineCycles int64   `json:"baseline_cycles"`
			LoopFrogCycles int64   `json:"loopfrog_cycles"`
			Speedup        float64 `json:"speedup"`
		} `json:"result"`
	}
	if err := json.Unmarshal(payload, &v); err != nil {
		t.Fatal(err)
	}
	if v.Result.BaselineCycles != base.Cycles || v.Result.LoopFrogCycles != lf.Cycles {
		t.Errorf("cycles diverge: served %d/%d, direct %d/%d",
			v.Result.BaselineCycles, v.Result.LoopFrogCycles, base.Cycles, lf.Cycles)
	}
	if v.Result.Speedup != want {
		t.Errorf("speedup = %v, want %v", v.Result.Speedup, want)
	}
}

// TestSampledJob covers the sampled job mode: spec validation, and a sampled
// A/B estimate of a built-in bench that must land within the documented 2%
// of the full detailed cycle counts.
func TestSampledJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})

	for _, bad := range []map[string]any{
		{"asm": trivialAsm, "sample_window": 1000},                                       // params without sampled
		{"asm": trivialAsm, "sampled": true, "faults": "conflict:p=0.5"},                 // faults need full detail
		{"asm": trivialAsm, "sampled": true, "sample_interval": 10, "sample_warmup": 10}, // warmup >= interval
	} {
		if resp, payload := post(t, ts, bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %v: status = %d, want 400 (body %s)", bad, resp.StatusCode, payload)
		}
	}

	prog := workloads.ByName(workloads.CPU2017(), "leela").MustProgram()
	cfg := cpu.DefaultConfig()
	base, err := sim.Run(sim.BaselineOf(cfg), prog)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := sim.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}

	resp, payload := post(t, ts, map[string]any{"bench": "leela", "ab": true, "sampled": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var v struct {
		Result struct {
			Sampled        bool    `json:"sampled"`
			Windows        int     `json:"windows"`
			Cycles         int64   `json:"cycles"`
			BaselineCycles int64   `json:"baseline_cycles"`
			LoopFrogCycles int64   `json:"loopfrog_cycles"`
			Speedup        float64 `json:"speedup"`
			Tier1IPS       float64 `json:"tier1_insts_per_sec"`
		} `json:"result"`
	}
	if err := json.Unmarshal(payload, &v); err != nil {
		t.Fatal(err)
	}
	r := v.Result
	if !r.Sampled || r.Windows < 1 || r.Tier1IPS <= 0 || r.Speedup <= 0 {
		t.Fatalf("sampled result shape wrong: %+v", r)
	}
	checkEst := func(side string, est, full int64) {
		e := float64(est)/float64(full) - 1
		if e < 0 {
			e = -e
		}
		if e > 0.02 {
			t.Errorf("%s estimate %d vs full %d: error %.2f%% exceeds 2%%", side, est, full, 100*e)
		}
	}
	checkEst("baseline", r.BaselineCycles, base.Cycles)
	checkEst("loopfrog", r.LoopFrogCycles, lf.Cycles)
	if r.Cycles != r.LoopFrogCycles {
		t.Errorf("cycles %d should carry the LoopFrog estimate %d", r.Cycles, r.LoopFrogCycles)
	}
}

// TestMetricsAndVersionEndpoints spot-checks the observability surface.
func TestMetricsAndVersionEndpoints(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	if resp, payload := post(t, ts, map[string]any{"asm": trivialAsm}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup job: %d %s", resp.StatusCode, payload)
	}
	resp, payload := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	var doc struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(payload, &doc); err != nil {
		t.Fatalf("bad metrics JSON: %v", err)
	}
	for _, key := range []string{"serve.Admitted", "serve.Inflight", "serve.QueueCapacity", "serve.LatencyP99Seconds", "harness.Jobs"} {
		if _, ok := doc.Metrics[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if doc.Metrics["serve.Admitted"] < 1 || doc.Metrics["harness.Jobs"] < 1 {
		t.Errorf("counters did not move: %v", doc.Metrics["serve.Admitted"])
	}

	resp, payload = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(payload, []byte(`"ok"`)) {
		t.Errorf("/healthz: %d %s", resp.StatusCode, payload)
	}
	resp, payload = get(t, ts, "/readyz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(payload, []byte(`"ready"`)) {
		t.Errorf("/readyz: %d %s", resp.StatusCode, payload)
	}
	resp, payload = get(t, ts, "/v1/version")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(payload, []byte("lfservd")) {
		t.Errorf("/v1/version: %d %s", resp.StatusCode, payload)
	}
}

// TestDrainingRejectsAndReadyzFlips: once Shutdown begins, readyz answers 503
// (the readiness probe takes the node out of rotation) while healthz stays
// 200 with the draining flag (the process is still alive), and new
// submissions are refused while admitted jobs complete.
func TestDrainingRejectsAndReadyzFlips(t *testing.T) {
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Draining flips synchronously before the drain wait, but give the
	// goroutine a beat to be scheduled.
	var code int
	for i := 0; i < 100; i++ {
		resp, _ := get(t, ts, "/readyz")
		code = resp.StatusCode
		if code == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", code)
	}
	resp, payload := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200 (liveness)", resp.StatusCode)
	}
	if !bytes.Contains(payload, []byte(`"draining": true`)) {
		t.Errorf("healthz body does not report draining: %s", payload)
	}
	resp, _ = post(t, ts, map[string]any{"asm": trivialAsm})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", resp.StatusCode)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestSaturation64Clients is the acceptance-criterion load test: 64
// concurrent clients, mixed cached and uncached quickstart jobs, against a
// small queue so backpressure really engages. Every non-429 response must
// succeed, every 429 must carry Retry-After, and after drain the process
// must be back to its starting goroutine count (no leaked runner, watcher,
// or machine).
func TestSaturation64Clients(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	src, err := os.ReadFile("../../examples/quickstart/asm/quickstart.s")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	s := serve.New(serve.Config{QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())

	const clients = 64
	duration := 2 * time.Second
	var ok, rejected, other atomic.Uint64
	var firstBad atomic.Value
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: time.Minute}
			for i := 0; time.Now().Before(deadline); i++ {
				spec := map[string]any{"asm": string(src), "priority": "sweep"}
				if c%2 == 1 {
					// Distinct cache key per request: really simulates.
					spec["max_cycles"] = 1_000_000 + c*100_000 + i
					spec["priority"] = "interactive"
				}
				body, _ := json.Marshal(spec)
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					firstBad.CompareAndSwap(nil, fmt.Sprintf("POST: %v", err))
					other.Add(1)
					return
				}
				payload, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if !bytes.Contains(payload, []byte(`"done"`)) {
						firstBad.CompareAndSwap(nil, "200 without done: "+string(payload))
						other.Add(1)
					} else {
						ok.Add(1)
					}
				case http.StatusTooManyRequests:
					rejected.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						firstBad.CompareAndSwap(nil, "429 without Retry-After")
						other.Add(1)
					}
					time.Sleep(20 * time.Millisecond)
				default:
					firstBad.CompareAndSwap(nil, fmt.Sprintf("status %d: %s", resp.StatusCode, payload))
					other.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("drain after load: %v", err)
	}
	ts.Close()

	if other.Load() > 0 {
		t.Errorf("%d contract violations; first: %v", other.Load(), firstBad.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no job succeeded under load")
	}
	t.Logf("load: %d ok, %d rejected (429), cache hits %d", ok.Load(), rejected.Load(), s.Harness().Stats().CacheHits)

	// Goroutine accounting: allow slack for the HTTP client/server teardown
	// still winding down, then insist we return to the baseline.
	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after drain: %d -> %d\n%s", before, now, buf[:n])
		}
		time.Sleep(100 * time.Millisecond)
	}
}
