package serve

// The tune job kind: the budgeted hint autotuner (internal/tune) running
// server-side. The daemon owns admission exactly as for sim jobs — validated
// spec, lint preflight on the static image, sweep-lane queueing — and the
// search runs inside one runner slot, fanning its rung evaluations onto the
// local harness or, when a fabric is configured, across the worker fleet as
// plain sim jobs routed with run-cache affinity.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"loopfrog/internal/tune"
)

// handleTune is POST /v1/tune: sugar for POST /v1/jobs with kind "tune".
// The body is a JobSpec; a kind other than "tune" is rejected.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	if spec.Kind != "" && spec.Kind != KindTune {
		writeJSON(w, http.StatusBadRequest, apiError{
			Error: fmt.Sprintf("kind must be %q (or unset) on /v1/tune (got %q)", KindTune, spec.Kind),
		})
		return
	}
	spec.Kind = KindTune
	s.admit(w, r, spec)
}

// runTune executes one admitted tune job: build the search spec, pick the
// evaluator (fabric fan-out when a remote executor is configured, the local
// harness otherwise), and run the successive-halving search to completion.
func (s *Server) runTune(j *job, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()
	spec := tune.Spec{
		Program:     j.Spec.Name,
		Source:      j.Spec.Source,
		Budget:      j.Spec.Budget,
		Eta:         j.Spec.Eta,
		Seed:        j.Spec.Seed,
		MaxVariants: j.Spec.MaxVariants,
	}
	var ev tune.Evaluator = tune.Local{H: s.harness}
	if s.cfg.Remote != nil {
		ev = &fabricEvaluator{s: s, timeout: timeout}
	}
	rep, err := tune.Tune(ctx, spec, &rungObserver{inner: ev, j: j})
	if err != nil {
		status, httpStatus, text := classifyError(err)
		j.finish(status, httpStatus, nil, text)
		return
	}
	res := &JobResult{
		Program:   rep.Program,
		Tune:      rep,
		Cycles:    int64(rep.Winner.Cycles + 0.5),
		ArchInsts: 0,
	}
	j.finish(StatusDone, http.StatusOK, res, "")
}

// rungObserver wraps an evaluator to surface rung progress over SSE: every
// Evaluate batch is exactly one rung (the tuner evaluates rungs as single
// batches), so the batch's tier and size are the search's live state.
type rungObserver struct {
	inner tune.Evaluator
	j     *job
	spent int
}

func (o *rungObserver) Evaluate(ctx context.Context, reqs []tune.EvalRequest) ([]*tune.EvalResult, []error) {
	if len(reqs) > 0 {
		tiers := tune.Tiers()
		ti := reqs[0].Tier
		p := &tuneRungProgress{Rung: ti, Variants: len(reqs) - 1, Spent: o.spent}
		if ti >= 0 && ti < len(tiers) {
			p.Tier = tiers[ti].Name
			o.spent += tiers[ti].Cost * len(reqs)
		}
		o.j.tuneRung.Store(p)
	}
	return o.inner.Evaluate(ctx, reqs)
}

// fabricEvaluator fans rung evaluations over the worker fleet. Each request
// becomes a plain synchronous sim job carrying the variant knobs; the
// coordinator routes it by the same run-cache fingerprint the worker's
// harness will key on, so repeat evaluations of a variant land where their
// result is already resident. A fabric with no live workers degrades the
// evaluation to the local harness, mirroring the sim-job path.
type fabricEvaluator struct {
	s       *Server
	timeout time.Duration
}

func (f *fabricEvaluator) Evaluate(ctx context.Context, reqs []tune.EvalRequest) ([]*tune.EvalResult, []error) {
	results := make([]*tune.EvalResult, len(reqs))
	errs := make([]error, len(reqs))
	sem := make(chan struct{}, maxRemoteEvals)
	done := make(chan int, len(reqs))
	for i := range reqs {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- i }()
			results[i], errs[i] = f.evalOne(ctx, &reqs[i])
		}(i)
	}
	for range reqs {
		<-done
	}
	return results, errs
}

// maxRemoteEvals bounds concurrent remote dispatches per rung; the fabric's
// per-worker slots provide the real backpressure, this only caps coordinator
// memory.
const maxRemoteEvals = 32

func (f *fabricEvaluator) evalOne(ctx context.Context, req *tune.EvalRequest) (*tune.EvalResult, error) {
	fp, err := req.Fingerprint()
	if err != nil {
		return nil, err
	}
	spec, err := evalJobSpec(req, f.timeout)
	if err != nil {
		return nil, err
	}
	rr, err := f.s.cfg.Remote.ExecuteRemote(ctx, fp, spec)
	if err != nil {
		if errors.Is(err, ErrRemoteUnavailable) {
			f.s.m.degraded.Add(1)
			res, lerrs := tune.Local{H: f.s.harness}.Evaluate(ctx, []tune.EvalRequest{*req})
			return res[0], lerrs[0]
		}
		return nil, err
	}
	if rr.Status != "" && rr.Status != StatusDone {
		return nil, fmt.Errorf("tune: worker %s: %s: %s", rr.Worker, rr.Status, rr.Error)
	}
	if rr.Result == nil {
		return nil, fmt.Errorf("tune: worker %s returned no result", rr.Worker)
	}
	return &tune.EvalResult{
		Cycles:      float64(rr.Result.Cycles),
		Insts:       rr.Result.ArchInsts,
		Fingerprint: fp,
		CostUnits:   tune.Tiers()[req.Tier].Cost,
	}, nil
}

// evalJobSpec renders one rung evaluation as the sim-job spec a stock worker
// executes: the source plus the variant knobs to rebuild the image, and the
// tier's sampling shape.
func evalJobSpec(req *tune.EvalRequest, timeout time.Duration) (JobSpec, error) {
	tiers := tune.Tiers()
	if req.Tier < 0 || req.Tier >= len(tiers) {
		return JobSpec{}, fmt.Errorf("tune: tier %d out of range", req.Tier)
	}
	t := tiers[req.Tier]
	spec := JobSpec{
		Kind:      KindSim,
		Name:      req.Program,
		Source:    req.Source,
		Priority:  PrioritySweep,
		TimeoutMS: timeout.Milliseconds(),
	}
	if req.Baseline {
		spec.Baseline = true
	} else {
		spec.Deselect = req.Variant.Deselect
		spec.PackFactor = req.Variant.PackFactor
		spec.GranuleBytes = req.Variant.GranuleBytes
		spec.PackTarget = req.Variant.PackTarget
	}
	if t.Sample != nil {
		spec.Sampled = true
		spec.SampleInterval = t.Sample.Interval
		spec.SampleWindow = t.Sample.Window
		spec.SampleWarmup = t.Sample.Warmup
	}
	return spec, nil
}
