package serve_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"loopfrog/internal/serve"
)

// spectreResult is the slice of JobResult the spectre-mode assertions need.
type spectreResult struct {
	Status string `json:"status"`
	Result *struct {
		LeakCandidates uint64 `json:"leak_candidates"`
		Leaks          uint64 `json:"leaks"`
		DelayedWakes   uint64 `json:"delayed_wakes"`
		Cycles         int64  `json:"cycles"`
	} `json:"result"`
}

// TestSpectreJob: a spectre-mode job over the seeded gadget reports its leak
// profile in the result; adding the mitigation knob drives it to zero with
// held wakeups; and the sampled combination is rejected at admission.
func TestSpectreJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})

	resp, payload := post(t, ts, map[string]any{"bench": "boundsbypass", "spectre": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spectre job: status %d, body %s", resp.StatusCode, payload)
	}
	var det spectreResult
	if err := json.Unmarshal(payload, &det); err != nil {
		t.Fatalf("bad body %s: %v", payload, err)
	}
	if det.Status != "done" || det.Result == nil {
		t.Fatalf("job not done: %s", payload)
	}
	if det.Result.LeakCandidates == 0 || det.Result.Leaks == 0 {
		t.Errorf("seeded gadget not flagged: %+v", det.Result)
	}

	resp, payload = post(t, ts, map[string]any{"bench": "boundsbypass", "spectre": true, "mitigate": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mitigated job: status %d, body %s", resp.StatusCode, payload)
	}
	var mit spectreResult
	if err := json.Unmarshal(payload, &mit); err != nil {
		t.Fatalf("bad body %s: %v", payload, err)
	}
	if mit.Result == nil || mit.Result.Leaks != 0 || mit.Result.LeakCandidates != 0 {
		t.Errorf("mitigated run still leaks: %s", payload)
	}
	if mit.Result != nil && mit.Result.DelayedWakes == 0 {
		t.Errorf("mitigation never held a wakeup: %s", payload)
	}

	resp, payload = post(t, ts, map[string]any{"bench": "boundsbypass", "spectre": true, "sampled": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("spectre+sampled admitted: status %d, body %s", resp.StatusCode, payload)
	}
}
