// Package serve is the simulation-as-a-service layer: an HTTP/JSON daemon
// (cmd/lfservd) that accepts simulation jobs over the network, admits them
// through a bounded queue with priority lanes, runs a mandatory hint-legality
// preflight (internal/lint), schedules the admitted work onto the existing
// sim.Harness worker pool — inheriting its singleflight run-cache (LRU
// bounded), panic quarantine, and per-job watchdog-backed deadlines — and
// streams progress and results back.
//
// Endpoints:
//
//	POST /v1/jobs        submit a job (sync by default, "async": true for 202+poll);
//	                     "kind" selects the engine: "sim" (default) or "tune"
//	                     (the budgeted hint autotuner, always on the sweep lane)
//	POST /v1/tune        submit an autotuning search (kind "tune" sugar)
//	GET  /v1/jobs/{id}   job status/result; ?stream=1 or Accept: text/event-stream
//	                     streams queued→running→progress→done as server-sent events
//	                     (tune jobs report the live rung instead of machine counters)
//	GET  /metrics        telemetry registry snapshot (serve.* + harness.*) as
//	                     JSON; ?format=prom or Accept: text/plain selects the
//	                     Prometheus text exposition format
//	GET  /healthz        liveness: 200 while the process is up (drain state in body)
//	GET  /readyz         readiness: 200 while accepting jobs, 503 while draining
//	GET  /v1/version     daemon identity and configuration
//
// Degradation is explicit: a full admission queue answers 429 with a
// Retry-After estimate, an illegal program answers 422 with the full lint
// report, a deadline expiry answers 504, a quarantined or crashed simulation
// answers 500 — and a SIGTERM drain stops admission (503) while every
// admitted job still completes.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"loopfrog/internal/sim"
	"loopfrog/internal/telemetry"
)

// Version identifies the serving API generation.
const Version = "1.0"

// Config tunes the daemon. The zero value is usable: every field falls back
// to the documented default.
type Config struct {
	// Runners is the number of concurrent jobs the server executes; each job
	// may fan several simulations onto the harness pool. <= 0 means
	// GOMAXPROCS, capped at 8.
	Runners int
	// QueueDepth bounds each admission lane (interactive, sweep); a full
	// lane rejects with 429. <= 0 means 64.
	QueueDepth int
	// Workers sizes the underlying sim.Harness worker pool; <= 0 means
	// GOMAXPROCS.
	Workers int
	// CacheCapacity bounds the harness run-cache (LRU entries); 0 means
	// sim.DefaultCacheCapacity, < 0 disables the bound.
	CacheCapacity int
	// DefaultTimeout applies to jobs that do not request one; MaxTimeout
	// caps what a job may request. Defaults: 60s and 5m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetainJobs bounds the finished-job registry; older finished jobs are
	// forgotten FIFO. <= 0 means 1024.
	RetainJobs int
	// MaxBodyBytes bounds a request body; <= 0 means 4 MiB.
	MaxBodyBytes int64
	// ProgressInterval is the SSE progress sampling period; <= 0 means 200ms.
	ProgressInterval time.Duration
	// Remote, when non-nil, executes admitted jobs on the distributed fabric
	// (internal/fabric) instead of the local harness. The local harness stays
	// as the degradation path: jobs the fabric cannot place (no live workers)
	// run locally. See RemoteExecutor in remote.go for the contract.
	Remote RemoteExecutor
}

func (c Config) withDefaults() Config {
	if c.Runners <= 0 {
		c.Runners = runtime.GOMAXPROCS(0)
		if c.Runners > 8 {
			c.Runners = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = sim.DefaultCacheCapacity
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 200 * time.Millisecond
	}
	return c
}

// Server is the serving daemon's state: the harness it schedules onto, the
// admission lanes, the job registry, and the metrics registry.
type Server struct {
	cfg     Config
	harness *sim.Harness
	reg     *telemetry.Registry

	// Admission lanes. Interactive wins the biased select in the runner
	// loop, so a long sweep enqueue never starves a human.
	interactive chan *job
	sweep       chan *job

	// Lifecycle: baseCtx cancels every running job on forced shutdown;
	// stop ends the runner loops; draining gates admission.
	baseCtx  context.Context
	cancel   context.CancelFunc
	stop     chan struct{}
	runnerWG sync.WaitGroup
	draining atomic.Bool

	// Job registry.
	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // FIFO of finished job IDs, bounded by RetainJobs
	seq      atomic.Uint64

	m serveMetrics
}

// New builds a server with its own harness and bounded run-cache and starts
// the runner loops. Call Shutdown to drain it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cacheCap := cfg.CacheCapacity
	if cacheCap < 0 {
		cacheCap = 0 // unbounded
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		harness:     &sim.Harness{Workers: cfg.Workers, Cache: sim.NewBoundedRunCache(cacheCap)},
		reg:         telemetry.NewRegistry(),
		interactive: make(chan *job, cfg.QueueDepth),
		sweep:       make(chan *job, cfg.QueueDepth),
		baseCtx:     ctx,
		cancel:      cancel,
		stop:        make(chan struct{}),
		jobs:        make(map[string]*job),
	}
	s.registerMetrics()
	s.runnerWG.Add(cfg.Runners)
	for i := 0; i < cfg.Runners; i++ {
		go s.runnerLoop()
	}
	return s
}

// Harness exposes the server's scheduler, mainly for tests and for the load
// generator's cache statistics.
func (s *Server) Harness() *sim.Harness { return s.harness }

// Handler returns the daemon's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/tune", s.handleTune)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	return mux
}

// Shutdown drains the server: admission stops immediately (healthz flips to
// 503, new submissions get 503), queued and running jobs complete, then the
// runner loops exit. If ctx expires first, every remaining job is cancelled
// and the loops are awaited regardless, so Shutdown never leaks a runner.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	drained := make(chan struct{})
	go func() {
		for {
			if len(s.interactive) == 0 && len(s.sweep) == 0 && s.m.inflight.Load() == 0 {
				close(drained)
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = fmt.Errorf("serve: drain aborted: %w", ctx.Err())
		s.cancel() // cancel running jobs so the runners come back
	}
	close(s.stop)
	s.runnerWG.Wait()
	s.cancel()
	return err
}

// handleHealthz is the liveness probe: 200 for as long as the process can
// answer HTTP at all, draining or not. The draining flag rides along so a
// human hitting the endpoint sees the lifecycle state, but orchestrators must
// not restart a draining daemon — that is what readiness is for.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": s.draining.Load()})
}

// handleReadyz is the readiness probe: 200 while the daemon accepts new jobs,
// 503 during a graceful drain. The fabric's worker health probes key on this
// endpoint, so a draining worker is routed around (no new jobs) while its
// admitted jobs finish — distinct from dead, which requeues in-flight work.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"name":        "lfservd",
		"version":     Version,
		"go":          runtime.Version(),
		"runners":     s.cfg.Runners,
		"queue_depth": s.cfg.QueueDepth,
		"cache_cap":   s.harness.Cache.Capacity(),
	})
}

// handleMetrics serves the registry snapshot. JSON is the default; the
// Prometheus text exposition format (version 0.0.4) is selected by
// ?format=prom or by an Accept header asking for text/plain, so a stock
// Prometheus scrape config needs no URL parameters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" ||
		strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.WriteJSON(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// writeJSON renders one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// retryAfterSeconds estimates how long a rejected client should back off:
// queue depth times the recent p50 job latency, divided by the runner count,
// with ±20% jitter so a synchronized cohort of rejected clients does not
// return as a thundering herd at the same instant. The p50 comes from the
// completed-job latency ring; before any job has completed it falls back to
// the harness's mean job time, then to one second. Floored at one second.
func (s *Server) retryAfterSeconds() int {
	queued := len(s.interactive) + len(s.sweep) + int(s.m.inflight.Load())
	p50, _ := s.m.percentiles()
	if p50 <= 0 {
		if st := s.harness.Stats(); st.Jobs > 0 {
			p50 = time.Duration(st.JobNanos / int64(st.Jobs)).Seconds()
		}
	}
	if p50 <= 0 {
		p50 = 1
	}
	est := float64(queued) * p50 / float64(s.cfg.Runners)
	est *= 0.8 + 0.4*rand.Float64() // ±20% jitter
	sec := int(est + 0.5)
	if sec < 1 {
		sec = 1
	}
	return sec
}
