package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"loopfrog/internal/telemetry"
)

// latencyRingSize bounds the completed-job latency window used for the
// percentile gauges; old samples are overwritten round-robin.
const latencyRingSize = 1024

// serveMetrics holds the daemon's own counters; the harness and run-cache
// counters come from telemetry.CollectHarness.
type serveMetrics struct {
	inflight    atomic.Int64
	admitted    atomic.Uint64
	rejected    atomic.Uint64 // queue-full 429s
	lintRejects atomic.Uint64 // preflight 422s
	remoteJobs  atomic.Uint64 // jobs that reached a terminal state on the fabric
	degraded    atomic.Uint64 // jobs demoted to local execution (fabric unavailable)

	ringMu  sync.Mutex
	ring    [latencyRingSize]time.Duration
	ringLen int
	ringPos int
}

func (m *serveMetrics) observeLatency(d time.Duration) {
	m.ringMu.Lock()
	m.ring[m.ringPos] = d
	m.ringPos = (m.ringPos + 1) % latencyRingSize
	if m.ringLen < latencyRingSize {
		m.ringLen++
	}
	m.ringMu.Unlock()
}

// percentiles returns the p50 and p99 job latency over the ring window, in
// seconds (0 when no job has completed yet).
func (m *serveMetrics) percentiles() (p50, p99 float64) {
	m.ringMu.Lock()
	n := m.ringLen
	window := make([]time.Duration, n)
	copy(window, m.ring[:n])
	m.ringMu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	at := func(p float64) float64 {
		idx := int(p * float64(n-1))
		return window[idx].Seconds()
	}
	return at(0.50), at(0.99)
}

// registerMetrics wires the serve.* gauges plus the harness counters into the
// server's registry, which /metrics snapshots on demand.
func (s *Server) registerMetrics() {
	reg := s.reg
	reg.RegisterGauge("serve.QueueDepthInteractive", func() float64 { return float64(len(s.interactive)) })
	reg.RegisterGauge("serve.QueueDepthSweep", func() float64 { return float64(len(s.sweep)) })
	reg.RegisterGauge("serve.QueueCapacity", func() float64 { return float64(s.cfg.QueueDepth) })
	reg.RegisterGauge("serve.Inflight", func() float64 { return float64(s.m.inflight.Load()) })
	reg.RegisterGauge("serve.Admitted", func() float64 { return float64(s.m.admitted.Load()) })
	reg.RegisterGauge("serve.AdmissionRejects", func() float64 { return float64(s.m.rejected.Load()) })
	reg.RegisterGauge("serve.LintRejects", func() float64 { return float64(s.m.lintRejects.Load()) })
	reg.RegisterGauge("serve.LatencyP50Seconds", func() float64 { p50, _ := s.m.percentiles(); return p50 })
	reg.RegisterGauge("serve.LatencyP99Seconds", func() float64 { _, p99 := s.m.percentiles(); return p99 })
	reg.RegisterGauge("serve.CacheHitRate", func() float64 {
		st := s.harness.Stats()
		served := st.CacheHits + st.CacheFlightJoins + st.CacheMisses
		if served == 0 {
			return 0
		}
		return float64(st.CacheHits+st.CacheFlightJoins) / float64(served)
	})
	if s.cfg.Remote != nil {
		reg.RegisterGauge("serve.RemoteJobs", func() float64 { return float64(s.m.remoteJobs.Load()) })
		reg.RegisterGauge("serve.DegradedLocal", func() float64 { return float64(s.m.degraded.Load()) })
		// A fabric coordinator contributes its own fabric.* section.
		if mr, ok := s.cfg.Remote.(interface{ RegisterMetrics(*telemetry.Registry) }); ok {
			mr.RegisterMetrics(reg)
		}
	}
	// CollectHarness only fails on a non-struct source; HarnessStats is one.
	_ = telemetry.CollectHarness(reg, s.harness)
}
