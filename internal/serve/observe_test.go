package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"loopfrog/internal/serve"
)

// postAny submits a job without failing the test on transport errors, so it
// is safe to call from load-generating goroutines.
func postAny(ts *httptest.Server, spec map[string]any) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	return nil
}

// TestMetricsFormatsUnderLoad scrapes /metrics in both formats while
// concurrent jobs run: the default stays JSON, ?format=prom and
// Accept: text/plain select the Prometheus text exposition format with the
// 0.0.4 content type, and the serve latency percentile gauges are present in
// both. Run with -race this also exercises the registry snapshot against the
// mutating counters.
func TestMetricsFormatsUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})

	stop := make(chan struct{})
	errc := make(chan error, 4)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				spec := map[string]any{"asm": trivialAsm}
				if c%2 == 1 {
					// Distinct cache keys so half the load really simulates.
					spec["max_cycles"] = 100_000 + c*1_000 + i
				}
				if err := postAny(ts, spec); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}(c)
	}

	scrape := func(path, accept string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		// Default: JSON with the serve gauges.
		resp, payload := scrape("/metrics", "")
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("default Content-Type = %q, want application/json", ct)
		}
		var doc struct {
			Metrics map[string]float64 `json:"metrics"`
		}
		if err := json.Unmarshal(payload, &doc); err != nil {
			t.Fatalf("bad metrics JSON under load: %v", err)
		}
		for _, key := range []string{"serve.LatencyP50Seconds", "serve.LatencyP99Seconds", "serve.Inflight"} {
			if _, ok := doc.Metrics[key]; !ok {
				t.Fatalf("JSON metrics missing %q", key)
			}
		}

		// ?format=prom and Accept: text/plain: Prometheus text exposition.
		for _, sel := range []struct{ path, accept string }{
			{"/metrics?format=prom", ""},
			{"/metrics", "text/plain; version=0.0.4"},
		} {
			resp, payload := scrape(sel.path, sel.accept)
			const wantCT = "text/plain; version=0.0.4; charset=utf-8"
			if ct := resp.Header.Get("Content-Type"); ct != wantCT {
				t.Fatalf("%s Accept=%q: Content-Type = %q, want %q", sel.path, sel.accept, ct, wantCT)
			}
			text := string(payload)
			for _, want := range []string{
				"# TYPE serve_LatencyP50Seconds gauge",
				"# TYPE serve_LatencyP99Seconds gauge",
				"serve_Admitted ",
				"harness_Jobs ",
			} {
				if !strings.Contains(text, want) {
					t.Fatalf("%s Accept=%q: exposition missing %q in:\n%s", sel.path, sel.accept, want, text)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("load goroutine: %v", err)
	default:
	}
}

// TestSSEDisconnectNoGoroutineLeak opens a progress stream on a running job,
// drops the connection mid-job, and verifies the goroutine count returns to
// its pre-stream level once the job finishes: the SSE writer must notice the
// disconnect instead of blocking on the dead connection.
func TestSSEDisconnectNoGoroutineLeak(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{ProgressInterval: 5 * time.Millisecond})

	// Warm up the worker pool and HTTP client so the baseline includes every
	// long-lived goroutine.
	if resp, payload := post(t, ts, map[string]any{"asm": trivialAsm}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %d %s", resp.StatusCode, payload)
	}
	baseline := runtime.NumGoroutine()

	resp, payload := post(t, ts, map[string]any{"asm": spinAsm, "timeout_ms": 500, "async": true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, payload)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(payload, &v); err != nil {
		t.Fatal(err)
	}

	stream, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	// Read a little so the stream is really flowing, then hang up mid-job.
	buf := make([]byte, 64)
	if _, err := stream.Body.Read(buf); err != nil {
		t.Fatalf("first stream read: %v", err)
	}
	stream.Body.Close()

	// Wait for the job itself to finish (the spin only ends at its deadline).
	waitDeadline := time.Now().Add(5 * time.Second)
	for {
		resp, payload := get(t, ts, "/v1/jobs/"+v.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d %s", resp.StatusCode, payload)
		}
		var jv struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(payload, &jv); err != nil {
			t.Fatal(err)
		}
		if jv.Status != "queued" && jv.Status != "running" {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("job never finished: %s", payload)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The goroutine count settles back to the baseline (with slack for the
	// HTTP keep-alive pool); retry because the SSE writer exits asynchronously.
	const slack = 4
	var n int
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); time.Sleep(20 * time.Millisecond) {
		if n = runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
	}
	t.Fatalf("goroutines did not settle after SSE disconnect: baseline %d, now %d", baseline, n)
}

// TestJobResultCarriesRegions: a job over a hinted program carries the
// per-region speculation profile in its result — ranked rows with verdicts,
// static provenance joined from the admission preflight, and the
// outside-any-region slot attribution.
func TestJobResultCarriesRegions(t *testing.T) {
	src, err := os.ReadFile("../../examples/quickstart/asm/quickstart.s")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{})
	resp, payload := post(t, ts, map[string]any{"name": "quickstart", "asm": string(src), "ab": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, payload)
	}
	var v struct {
		Result struct {
			Speedup float64 `json:"speedup"`
			Regions []struct {
				Region  int64  `json:"region"`
				Label   string `json:"label"`
				Verdict string `json:"verdict"`
				Reason  string `json:"reason"`
				Ledger  struct {
					Spawns  uint64 `json:"spawns"`
					SpecWon uint64 `json:"spec_won"`
				} `json:"ledger"`
			} `json:"regions"`
			OutsideSlots map[string]uint64 `json:"outside_slots"`
		} `json:"result"`
	}
	if err := json.Unmarshal(payload, &v); err != nil {
		t.Fatalf("bad body %s: %v", payload, err)
	}
	r := v.Result
	if len(r.Regions) == 0 {
		t.Fatalf("result carries no region rows: %s", payload)
	}
	spawned := false
	for _, row := range r.Regions {
		if row.Verdict == "" || row.Reason == "" {
			t.Errorf("region %d: missing verdict/reason", row.Region)
		}
		if row.Label == "" {
			t.Errorf("region %d: static provenance (label) not joined", row.Region)
		}
		if row.Ledger.Spawns > 0 {
			spawned = true
		}
	}
	if !spawned {
		t.Error("no region row records any spawns on a speeding-up program")
	}
	if len(r.OutsideSlots) == 0 {
		t.Error("outside-any-region slot attribution missing")
	}
}
