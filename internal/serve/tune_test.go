package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"loopfrog/internal/serve"
)

func TestUnknownKindRejected(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, payload := post(t, ts, map[string]any{"kind": "fuzz", "asm": trivialAsm})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, payload)
	}
	body := string(payload)
	if !strings.Contains(body, "unknown kind") {
		t.Errorf("reject does not name the problem: %s", body)
	}
	for _, kind := range serve.AllowedKinds() {
		if !strings.Contains(body, `\"`+kind+`\"`) && !strings.Contains(body, `"`+kind+`"`) {
			t.Errorf("reject does not list allowed kind %q: %s", kind, body)
		}
	}
}

func TestTuneKnobsRequireTuneKind(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, payload := post(t, ts, map[string]any{"asm": trivialAsm, "budget": 32})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("budget on a sim job: status = %d, want 400; body %s", resp.StatusCode, payload)
	}
	resp, payload = post(t, ts, map[string]any{"kind": "tune", "asm": trivialAsm})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tune of an asm image: status = %d, want 400; body %s", resp.StatusCode, payload)
	}
	resp, payload = post(t, ts, map[string]any{"kind": "tune", "bench": "leela", "priority": "interactive"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tune on the interactive lane: status = %d, want 400; body %s", resp.StatusCode, payload)
	}
}

// tuneView decodes the terminal job view of a tune submission.
type tuneView struct {
	Status   string           `json:"status"`
	Priority string           `json:"priority"`
	Error    string           `json:"error"`
	Result   *serve.JobResult `json:"result"`
}

func postTune(t *testing.T, ts *serve.Server, url string, spec map[string]any) (int, tuneView) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var v tuneView
	if err := json.Unmarshal(payload, &v); err != nil {
		t.Fatalf("bad body %s: %v", payload, err)
	}
	return resp.StatusCode, v
}

func TestTuneRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{})
	code, v := postTune(t, s, ts.URL, map[string]any{"bench": "leela", "budget": 16})
	if code != http.StatusOK || v.Status != "done" {
		t.Fatalf("tune round-trip: %d %s %s", code, v.Status, v.Error)
	}
	if v.Priority != serve.PrioritySweep {
		t.Errorf("tune job priority = %q, want sweep lane", v.Priority)
	}
	rep := v.Result.Tune
	if rep == nil {
		t.Fatal("tune result carries no search report")
	}
	if rep.Program != "leela" || rep.SpaceSize == 0 || len(rep.Rungs) == 0 {
		t.Fatalf("hollow report: program=%q space=%d rungs=%d", rep.Program, rep.SpaceSize, len(rep.Rungs))
	}
	for _, r := range rep.Rungs {
		// The per-rung elimination table must partition the rung's field.
		if len(r.Promoted)+len(r.Eliminated) != len(r.Evaluated) {
			t.Errorf("rung %d: %d promoted + %d eliminated != %d evaluated",
				r.Tier, len(r.Promoted), len(r.Eliminated), len(r.Evaluated))
		}
	}
	if rep.Winner.Score <= 0 || rep.Winner.Score < rep.Static.Score {
		t.Errorf("winner score %.4f (static %.4f): anchor should bound the winner from below",
			rep.Winner.Score, rep.Static.Score)
	}
	if rep.Spent > rep.Budget {
		t.Errorf("spent %d exceeds budget %d", rep.Spent, rep.Budget)
	}
}

// loopbackExec is a RemoteExecutor that forwards each spec to a second,
// worker-role daemon over real HTTP — the fabric fan-out path minus the ring.
type loopbackExec struct {
	url   string
	calls atomic.Int64

	mu   sync.Mutex
	keys map[string]int
}

func (e *loopbackExec) ExecuteRemote(ctx context.Context, fp string, spec serve.JobSpec) (*serve.RemoteResult, error) {
	e.calls.Add(1)
	e.mu.Lock()
	if e.keys == nil {
		e.keys = make(map[string]int)
	}
	e.keys[fp]++
	e.mu.Unlock()
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	var view struct {
		Status string           `json:"status"`
		Error  string           `json:"error"`
		Result *serve.JobResult `json:"result"`
	}
	if err := json.Unmarshal(payload, &view); err != nil {
		return nil, err
	}
	return &serve.RemoteResult{
		Worker:     "loopback",
		Status:     view.Status,
		HTTPStatus: resp.StatusCode,
		Error:      view.Error,
		Result:     view.Result,
	}, nil
}

func TestTuneFabricFanOut(t *testing.T) {
	_, worker := newTestServer(t, serve.Config{})
	exec := &loopbackExec{url: worker.URL}
	s, ts := newTestServer(t, serve.Config{Remote: exec})
	code, v := postTune(t, s, ts.URL, map[string]any{"bench": "leela", "budget": 16})
	if code != http.StatusOK || v.Status != "done" {
		t.Fatalf("fanned-out tune: %d %s %s", code, v.Status, v.Error)
	}
	rep := v.Result.Tune
	if rep == nil || len(rep.Rungs) == 0 {
		t.Fatal("fanned-out tune returned no report")
	}
	want := int64(0)
	for _, r := range rep.Rungs {
		want += int64(len(r.Evaluated)) + 1 // the shared baseline rides each rung
	}
	if got := exec.calls.Load(); got != want {
		t.Errorf("remote dispatches = %d, want %d (every rung evaluation remote)", got, want)
	}
	exec.mu.Lock()
	defer exec.mu.Unlock()
	for fp := range exec.keys {
		if len(fp) != 16 {
			t.Errorf("dispatch routed on malformed fingerprint %q", fp)
		}
	}
}

// failingExec reports an empty fabric on every placement, forcing the
// degradation path: every rung evaluation must fall back to the local
// harness and the search still completes.
type failingExec struct{ calls atomic.Int64 }

func (e *failingExec) ExecuteRemote(ctx context.Context, fp string, spec serve.JobSpec) (*serve.RemoteResult, error) {
	e.calls.Add(1)
	return nil, serve.ErrRemoteUnavailable
}

func TestTuneFabricDegradesToLocal(t *testing.T) {
	exec := &failingExec{}
	s, ts := newTestServer(t, serve.Config{Remote: exec})
	code, v := postTune(t, s, ts.URL, map[string]any{"bench": "leela", "budget": 8})
	if code != http.StatusOK || v.Status != "done" {
		t.Fatalf("degraded tune: %d %s %s", code, v.Status, v.Error)
	}
	if exec.calls.Load() == 0 {
		t.Error("degradation test never touched the fabric")
	}
	if v.Result.Tune == nil || v.Result.Tune.Winner.Score <= 0 {
		t.Error("degraded tune returned no usable winner")
	}
}
