package workloads

import (
	"testing"

	"loopfrog/internal/isa"
)

func TestSuitesWellFormed(t *testing.T) {
	for _, suite := range [][]*Benchmark{CPU2017(), CPU2006()} {
		names := map[string]bool{}
		for _, b := range suite {
			if names[b.Name] {
				t.Errorf("duplicate benchmark %q", b.Name)
			}
			names[b.Name] = true
			if b.SeqTimeRatio < 0 {
				t.Errorf("%s: negative sequential ratio", b.Name)
			}
			if b.Class == "" {
				t.Errorf("%s: missing class", b.Name)
			}
		}
	}
	if len(CPU2017()) != 20 {
		t.Errorf("CPU2017 has %d entries, want 20", len(CPU2017()))
	}
	if len(CPU2006()) < 25 {
		t.Errorf("CPU2006 has %d entries, want the (near-)full suite", len(CPU2006()))
	}
}

func TestProfitableNamesExist(t *testing.T) {
	suite := CPU2017()
	for name := range Profitable2017Names() {
		if ByName(suite, name) == nil {
			t.Errorf("profitable benchmark %q not in the suite", name)
		}
	}
}

// TestAnnotatedKernelsCarryHints compiles each 2017 stand-in and checks that
// the ones expected to parallelise actually carry all three hints with a
// consistent region ID.
func TestAnnotatedKernelsCarryHints(t *testing.T) {
	for _, b := range CPU2017() {
		prog, err := b.Program()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		var det, rea, syn int
		for _, in := range prog.Insts {
			switch in.Op {
			case isa.DETACH:
				det++
			case isa.REATTACH:
				rea++
			case isa.SYNC:
				syn++
			}
		}
		if det == 0 || rea == 0 || syn == 0 {
			t.Errorf("%s: hints missing (%d/%d/%d)", b.Name, det, rea, syn)
		}
	}
}

func TestWithSerialPadInjects(t *testing.T) {
	src := `
fn main() -> int {
    var x: int = 1;
    return x;
}`
	padded := withSerialPad(src, 10)
	if padded == src {
		t.Fatal("pad not injected")
	}
	if withSerialPad(src, 0) != src {
		t.Error("zero pad modified the source")
	}
}

func TestByName(t *testing.T) {
	s := CPU2017()
	if ByName(s, "imagick") == nil {
		t.Error("imagick missing")
	}
	if ByName(s, "doesnotexist") != nil {
		t.Error("found a non-existent benchmark")
	}
}
