package workloads

import "fmt"

// ClassGadget tags the seeded security workloads: their defining property is
// a speculative-leak gadget, not a bottleneck class.
const ClassGadget Class = "speculative-gadget"

// boundsBypass is the classic Spectre-v1 bounds-check-bypass shape, seeded
// deliberately vulnerable: an attacker-style index array trains the guard
// branch overwhelmingly in-bounds, with occasional out-of-bounds values that
// still land inside the data segment (the adjacent secret array). Under the
// guard, a load keyed on the untrusted index feeds the addresses of a probe
// load and a scratch store — the two-access gadget both the LF3xx static
// lints (internal/lint) and the dynamic taint detector
// (cpu.Config.SpectreAnalysis) must flag. Architecturally the program is
// well-defined: the guarded body never executes with an out-of-bounds index;
// only the transient machine reads the secret.
//
// The guard condition goes through a mul/div identity (j * 2048 / 2048 == j
// for these ranges) before the compare. In the real attack the bound is slow
// to arrive because it misses in the cache; here the toy compiler keeps the
// constant arithmetic, so the long-latency divide plays that role — the
// branch resolves tens of cycles after the gadget's address chain is ready,
// which is exactly the window Spectre v1 needs. Without it the compare (one
// ALU op) wins the race against the two-op address generation and the
// wrong-path window on a single-context core never opens.
func boundsBypass(n, bound, probeSize int) string {
	return fmt.Sprintf(`
var idx: [%[1]d]int;
var pub: [%[2]d]int;
var secret: [%[2]d]int;
var probe: [%[3]d]int;
var scratch: [64]int;
var out: [%[1]d]int;
fn main() -> int {
    var seed: int = 424243;
    for i in 0..%[2]d {
        pub[i] = i * 3 + 1;
        secret[i] = 7777700 + i;
    }
    for i in 0..%[1]d {
        seed = (seed * 1103515245 + 12345) %% 2147483648;
        idx[i] = seed %% %[2]d;
        if i %% 97 == 13 {
            idx[i] = %[2]d + seed %% %[2]d;
        }
    }
    var s: int = 0;
    @loopfrog
    for i in 0..%[1]d {
        var j: int = idx[i];
        var r: int = 0;
        if j * 2048 / 2048 < %[2]d {
            var x: int = pub[j];
            r = probe[x * 64 %% %[3]d];
            scratch[x %% 64] = scratch[x %% 64] + 1;
        }
        out[i] = r;
        s = s + r;
    }
    return s;
}`, n, bound, probeSize)
}

// boundsHardened is the gadget's safe counterpart: the index is recomputed
// arithmetically in-register, so no load's value ever chooses another
// access's address — the guarded load's value feeds only arithmetic and
// store data. There is no second access for a transient secret to steer,
// statically or dynamically. It anchors the leak-flag-stability gate's
// negative side.
func boundsHardened(n, bound int) string {
	return fmt.Sprintf(`
var pub: [%[2]d]int;
var out: [%[1]d]int;
fn main() -> int {
    for i in 0..%[2]d {
        pub[i] = i * 3 + 1;
    }
    var s: int = 0;
    @loopfrog
    for i in 0..%[1]d {
        var j: int = (i * 1103515245 + 12345) %% 2147483648 %% %[2]d;
        var r: int = 0;
        if j < %[2]d {
            var x: int = pub[j];
            r = x * 31 + j;
        }
        out[i] = r;
        s = s + r;
    }
    return s;
}`, n, bound)
}

// Security returns the seeded speculative-leak suite: one deliberately
// vulnerable bounds-check-bypass workload and its hardened counterpart. Both
// are corpus members for lflint and for the leak-flag-stability gate; the
// suite is deliberately tiny so a -spectre run of it stays fast.
func Security() []*Benchmark {
	return []*Benchmark{
		{Name: "boundsbypass", Suite: "security", Class: ClassGadget, source: boundsBypass(3000, 256, 4096), SeqTimeRatio: 1.0},
		{Name: "boundshardened", Suite: "security", Class: ClassGadget, source: boundsHardened(3000, 256), SeqTimeRatio: 1.0},
	}
}
