package workloads

import (
	"fmt"
	"sync"

	"loopfrog/internal/asm"
	"loopfrog/internal/compiler"
)

// Class tags a benchmark's dominant bottleneck, mirroring the paper's gain
// taxonomy (Table 2) and no-speedup categories (§6.4.3).
type Class string

// Bottleneck classes.
const (
	ClassMemory     Class = "memory-parallelism"
	ClassControl    Class = "control-dependencies"
	ClassDepChain   Class = "dependency-chains"
	ClassBranchPref Class = "branch-condition-prefetch"
	ClassDataPref   Class = "data-value-prefetch"
	ClassNoneSmall  Class = "none-small-loops"
	ClassNoneLarge  Class = "none-large-loops"
	ClassNoneTrip   Class = "none-low-trip"
	ClassNoneIPC    Class = "none-high-ipc"
	ClassSerial     Class = "none-serial-dep"
)

// IsTrueParallelism reports whether the class is a "true parallelism"
// category per Table 2.
func (c Class) IsTrueParallelism() bool {
	return c == ClassMemory || c == ClassControl || c == ClassDepChain
}

// Benchmark is one suite entry.
type Benchmark struct {
	// Name matches the SPEC program this kernel stands in for.
	Name string
	// Suite is "cpu2017" or "cpu2006".
	Suite string
	// Class is the dominant bottleneck.
	Class Class
	// InOpenMPRegion marks loops that sit inside an (outer) OpenMP-parallel
	// region in the original program; §6.7 excludes them.
	InOpenMPRegion bool
	// SeqTimeRatio is the benchmark's sequential-region time divided by its
	// parallel-region (baseline) time: the region-coverage structure of the
	// original program. Whole-program speedups combine the simulated loop
	// region with this unaccelerated remainder, exactly as the paper's
	// SimPoint weighting combines sampled phases (§6.1). The values are
	// fixed constants of the workload definition, not fitted at run time.
	SeqTimeRatio float64
	// NormalisedRegs marks programs that zero their dead temporaries before
	// halting, so a differential check may compare the full register file.
	// Compiled kernels leave body temporaries behind, which the hint
	// contract does not preserve (the successor inherits registers at the
	// detach, not the parent's body writes): for those, only memory and the
	// ABI result register are comparable against the sequential reference.
	NormalisedRegs bool

	source  string // LoopLang source ("" for prebuilt asm programs)
	asmProg *asm.Program

	once sync.Once
	prog *asm.Program
	err  error
}

// Program compiles (or returns) the benchmark's program image.
func (b *Benchmark) Program() (*asm.Program, error) {
	b.once.Do(func() {
		if b.asmProg != nil {
			b.prog = b.asmProg
			return
		}
		prog, _, err := compiler.Compile(b.Name, b.source)
		if err != nil {
			b.err = fmt.Errorf("workloads: %s: %w", b.Name, err)
			return
		}
		b.prog = prog
	})
	return b.prog, b.err
}

// Source returns the benchmark's LoopLang source, or "" for prebuilt asm
// programs. Tooling that searches per-loop hint variants (lftune) recompiles
// from this.
func (b *Benchmark) Source() string { return b.source }

// MustProgram is Program that panics on error.
func (b *Benchmark) MustProgram() *asm.Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

// CPU2017 returns the SPEC CPU 2017 stand-in suite. Kernel parameters are
// chosen so dynamic instruction counts stay around 10^5 while preserving
// each program's bottleneck class.
func CPU2017() []*Benchmark {
	return []*Benchmark{
		{Name: "perlbench", Suite: "cpu2017", Class: ClassControl, source: branchy(6000), SeqTimeRatio: 8.1},
		{Name: "gcc", Suite: "cpu2017", Class: ClassBranchPref, source: branchy(9000), SeqTimeRatio: 1.1},
		{Name: "mcf", Suite: "cpu2017", Class: ClassMemory, source: gather(400, 130), SeqTimeRatio: 5.6},
		{Name: "omnetpp", Suite: "cpu2017", Class: ClassBranchPref, source: branchyGather(500, 150), SeqTimeRatio: 0.05},
		{Name: "xalancbmk", Suite: "cpu2017", Class: ClassMemory, source: gather(500, 90), SeqTimeRatio: 3.2},
		{Name: "x264", Suite: "cpu2017", Class: ClassDepChain, source: depchain(220, 110), SeqTimeRatio: 6.8},
		{Name: "deepsjeng", Suite: "cpu2017", Class: ClassNoneTrip, source: lowtrip(6000, 3), SeqTimeRatio: 2.2},
		{Name: "leela", Suite: "cpu2017", Class: ClassNoneSmall, source: tinyChase(12000), SeqTimeRatio: 1.0},
		{Name: "exchange2", Suite: "cpu2017", Class: ClassDataPref, source: gather(450, 60), SeqTimeRatio: 4.8},
		{Name: "xz", Suite: "cpu2017", Class: ClassNoneLarge, source: huge(96, 420), SeqTimeRatio: 2.0},
		{Name: "bwaves", Suite: "cpu2017", Class: ClassMemory, source: gather(500, 110), SeqTimeRatio: 7.2},
		{Name: "cactuBSSN", Suite: "cpu2017", Class: ClassDepChain, source: depchain(300, 120), SeqTimeRatio: 8.4},
		{Name: "namd", Suite: "cpu2017", Class: ClassNoneIPC, source: highipc(8000), SeqTimeRatio: 3.9},
		{Name: "parest", Suite: "cpu2017", Class: ClassMemory, source: gather(300, 120), InOpenMPRegion: true, SeqTimeRatio: 4.1},
		{Name: "povray", Suite: "cpu2017", Class: ClassBranchPref, source: branchy(7000), SeqTimeRatio: 2.4},
		{Name: "lbm", Suite: "cpu2017", Class: ClassNoneLarge, source: huge(80, 500), InOpenMPRegion: true, SeqTimeRatio: 2.0},
		{Name: "wrf", Suite: "cpu2017", Class: ClassMemory, source: gather(420, 95), SeqTimeRatio: 6.2},
		{Name: "blender", Suite: "cpu2017", Class: ClassNoneTrip, source: lowtrip(4800, 4), SeqTimeRatio: 5.2},
		{Name: "imagick", Suite: "cpu2017", Class: ClassDepChain, source: fpChain(150, 300), SeqTimeRatio: 0.0, InOpenMPRegion: true},
		{Name: "nab", Suite: "cpu2017", Class: ClassMemory, source: gather(350, 100), InOpenMPRegion: true, SeqTimeRatio: 2.1},
	}
}

// CPU2006 returns the SPEC CPU 2006 stand-in suite: the same kernel
// families with different shapes and seeds.
func CPU2006() []*Benchmark {
	return []*Benchmark{
		{Name: "perlbench06", Suite: "cpu2006", Class: ClassControl, source: branchy(5500), SeqTimeRatio: 3.7},
		{Name: "bzip2", Suite: "cpu2006", Class: ClassDepChain, source: depchain(250, 100), SeqTimeRatio: 2.7},
		{Name: "gcc06", Suite: "cpu2006", Class: ClassBranchPref, source: branchy(8000), SeqTimeRatio: 0.95},
		{Name: "mcf06", Suite: "cpu2006", Class: ClassMemory, source: gather(420, 125), SeqTimeRatio: 1.0},
		{Name: "gobmk", Suite: "cpu2006", Class: ClassNoneTrip, source: lowtrip(5200, 3), SeqTimeRatio: 2.0},
		{Name: "hmmer", Suite: "cpu2006", Class: ClassDepChain, source: depchain(260, 95), SeqTimeRatio: 2.4},
		{Name: "sjeng", Suite: "cpu2006", Class: ClassNoneTrip, source: lowtrip(4500, 4), SeqTimeRatio: 2.0},
		{Name: "libquantum", Suite: "cpu2006", Class: ClassMemory, source: gather(480, 105), SeqTimeRatio: 0.54},
		{Name: "h264ref", Suite: "cpu2006", Class: ClassDepChain, source: depchain(280, 90), SeqTimeRatio: 3.0},
		{Name: "omnetpp06", Suite: "cpu2006", Class: ClassBranchPref, source: branchyGather(450, 120), SeqTimeRatio: 0.15},
		{Name: "astar", Suite: "cpu2006", Class: ClassMemory, source: gather(380, 100), SeqTimeRatio: 3.4},
		{Name: "xalancbmk06", Suite: "cpu2006", Class: ClassMemory, source: gather(360, 85), SeqTimeRatio: 1.4},
		{Name: "milc", Suite: "cpu2006", Class: ClassMemory, source: gather(440, 100), SeqTimeRatio: 1.9},
		{Name: "zeusmp", Suite: "cpu2006", Class: ClassMemory, source: gather(400, 90), SeqTimeRatio: 3.0},
		{Name: "gromacs", Suite: "cpu2006", Class: ClassDepChain, source: fpChain(320, 60), SeqTimeRatio: 6.0},
		{Name: "cactusADM", Suite: "cpu2006", Class: ClassDepChain, source: depchain(270, 115), SeqTimeRatio: 2.2},
		{Name: "leslie3d", Suite: "cpu2006", Class: ClassMemory, source: gather(380, 95), SeqTimeRatio: 2.7},
		{Name: "namd06", Suite: "cpu2006", Class: ClassNoneIPC, source: highipc(7000), SeqTimeRatio: 3.0},
		{Name: "dealII", Suite: "cpu2006", Class: ClassDepChain, source: fpChain(300, 70), SeqTimeRatio: 1.5},
		{Name: "soplex", Suite: "cpu2006", Class: ClassMemory, source: gather(400, 110), SeqTimeRatio: 4.4},
		{Name: "povray06", Suite: "cpu2006", Class: ClassBranchPref, source: branchy(6200), SeqTimeRatio: 3.0},
		{Name: "calculix", Suite: "cpu2006", Class: ClassSerial, source: serialAccum(6000), SeqTimeRatio: 1.0},
		{Name: "gemsFDTD", Suite: "cpu2006", Class: ClassMemory, source: gather(420, 105), SeqTimeRatio: 2.3},
		{Name: "tonto", Suite: "cpu2006", Class: ClassControl, source: histogram(5200, 512), SeqTimeRatio: 2.0},
		{Name: "lbm06", Suite: "cpu2006", Class: ClassNoneLarge, source: huge(72, 460), SeqTimeRatio: 2.0},
		{Name: "wrf06", Suite: "cpu2006", Class: ClassMemory, source: gather(410, 100), SeqTimeRatio: 5.1},
		{Name: "sphinx3", Suite: "cpu2006", Class: ClassControl, source: fpCompute(4600, 5), SeqTimeRatio: 2.0},
	}
}

// Profitable2017Names are the 13 CPU 2017 programs the paper reports as
// gaining more than 1% (§6.2); figure 7 and figure 8 focus on them.
func Profitable2017Names() map[string]bool {
	return map[string]bool{
		"perlbench": true, "gcc": true, "mcf": true, "omnetpp": true,
		"xalancbmk": true, "x264": true, "exchange2": true, "bwaves": true,
		"cactuBSSN": true, "parest": true, "povray": true, "wrf": true,
		"imagick": true, "nab": true,
	}
}

// ByName finds a benchmark in a suite.
func ByName(suite []*Benchmark, name string) *Benchmark {
	for _, b := range suite {
		if b.Name == name {
			return b
		}
	}
	return nil
}
