package workloads

import (
	"math/rand"

	"loopfrog/internal/asm"
	"loopfrog/internal/isa"
)

// RandomHintedLoop emits a random but contract-correct LoopFrog loop program:
// the body consumes only header-computed registers and writes only memory;
// all register loop-carried dependences sit in the continuation. A fraction
// of body accesses alias a shared cell, producing genuine cross-iteration
// memory dependences that must be detected and recovered. Body temporaries
// are normalised before halt so the full register file must match sequential
// execution. It is the shared generator behind the cpu property tests and the
// fault-injection differential fuzzer.
func RandomHintedLoop(rng *rand.Rand) *asm.Program {
	trip := 8 + rng.Intn(200)
	bodyOps := 1 + rng.Intn(8)
	aliasPct := rng.Intn(40) // % of iterations touching the shared cell
	stride := []int{8, 16, 24}[rng.Intn(3)]

	b := asm.NewBuilder("randloop")
	b.Sym("arr")
	vals := make([]uint64, 512)
	for i := range vals {
		vals[i] = rng.Uint64() % 1000
	}
	b.Quad(vals...)
	b.Sym("out").Zero(8 * 512)
	b.Sym("cell").Quad(uint64(rng.Intn(50)))

	// Registers: s0 = i (IV, continuation-updated), s1 = trip, a0 = arr,
	// a1 = out, a2 = cell; header computes t0 = &arr[i*stride'], t1 = &out[..];
	// body uses t2..t4 as temps.
	b.Label("main").
		La(isa.X(10), "arr").
		La(isa.X(11), "out").
		La(isa.X(12), "cell").
		Li(isa.X(8), 0).
		Li(isa.X(9), int64(trip))
	b.Label("loop").
		Li(isa.X(7), int64(stride)).
		Op(isa.MUL, isa.X(5), isa.X(8), isa.X(7)).
		Op(isa.ADD, isa.X(5), isa.X(10), isa.X(5)).
		OpImm(isa.SLLI, isa.X(6), isa.X(8), 3).
		Op(isa.ADD, isa.X(6), isa.X(11), isa.X(6))
	b.Hint(isa.DETACH, "cont")
	// Body: random dataflow over t2 (x28), seeded from a load.
	b.Load(isa.LD, isa.X(28), isa.X(5), 0)
	for k := 0; k < bodyOps; k++ {
		switch rng.Intn(5) {
		case 0:
			b.OpImm(isa.ADDI, isa.X(28), isa.X(28), int64(rng.Intn(100)))
		case 1:
			b.OpImm(isa.XORI, isa.X(28), isa.X(28), int64(rng.Intn(256)))
		case 2:
			b.Op(isa.MUL, isa.X(28), isa.X(28), isa.X(28))
		case 3:
			b.OpImm(isa.SRLI, isa.X(28), isa.X(28), int64(1+rng.Intn(3)))
		case 4:
			b.OpImm(isa.SLLI, isa.X(28), isa.X(28), 1)
		}
	}
	if aliasPct > 0 {
		// Iterations where i % 100 < aliasPct also read-modify-write the
		// shared cell: a true serial memory dependence.
		b.Li(isa.X(29), 100).
			Op(isa.REM, isa.X(29), isa.X(8), isa.X(29)).
			Li(isa.X(30), int64(aliasPct)).
			Branch(isa.BGE, isa.X(29), isa.X(30), "noalias").
			Load(isa.LD, isa.X(31), isa.X(12), 0).
			Op(isa.ADD, isa.X(31), isa.X(31), isa.X(28)).
			Store(isa.SD, isa.X(31), isa.X(12), 0).
			Label("noalias")
	}
	b.Store(isa.SD, isa.X(28), isa.X(6), 0)
	b.Hint(isa.REATTACH, "cont")
	b.Label("cont").
		OpImm(isa.ADDI, isa.X(8), isa.X(8), 1).
		Branch(isa.BLT, isa.X(8), isa.X(9), "loop")
	b.Hint(isa.SYNC, "cont")
	// Normalise dead body/header temps.
	for _, r := range []int{5, 6, 7, 28, 29, 30, 31} {
		b.Li(isa.X(r), 0)
	}
	b.Halt()
	return b.MustBuild()
}

// ChaosSuite returns a small fixed workload set for fault-injection matrices:
// kernels cheap enough to sweep under `go test -race` yet diverse enough to
// exercise the conflict, packing, overflow and misprediction recovery paths.
// The suite is deterministic — the random members use fixed seeds.
func ChaosSuite() []*Benchmark {
	return []*Benchmark{
		{Name: "chaos-gather", Suite: "chaos", Class: ClassMemory, source: gather(120, 48)},
		{Name: "chaos-branchy", Suite: "chaos", Class: ClassControl, source: branchy(1500)},
		{Name: "chaos-depchain", Suite: "chaos", Class: ClassDepChain, source: depchain(80, 40)},
		{Name: "chaos-randloop", Suite: "chaos", Class: ClassMemory, NormalisedRegs: true,
			asmProg: RandomHintedLoop(rand.New(rand.NewSource(424242)))},
		{Name: "chaos-alias", Suite: "chaos", Class: ClassSerial, NormalisedRegs: true,
			asmProg: RandomHintedLoop(rand.New(rand.NewSource(990017)))},
	}
}
