// Package workloads defines the benchmark suite: synthetic stand-ins for
// the SPEC CPU 2006 and CPU 2017 programs the paper evaluates. Each
// benchmark is a parameterised kernel whose bottleneck class matches the
// paper's per-benchmark characterisation (§6.4): memory-bound gathers and
// pointer chases, data-dependent branches, long dependency chains,
// compute-saturated loops, and the no-speedup classes (§6.4.3: tiny loops,
// huge loops, low trip counts, already-saturated pipelines, serial
// cross-iteration dependences).
//
// Most kernels are LoopLang sources compiled with the LoopFrog hint pass,
// exercising the full §5 pipeline; the remainder are hand-written assembly.
package workloads

import (
	"fmt"
	"strings"
)

// kernel families --------------------------------------------------------

// mapCompute: an embarrassingly parallel map with a body of `ops` dependent
// integer operations (imagick/x264 class: true parallelism, compute).
func mapCompute(n, ops int) string {
	body := ""
	for i := 0; i < ops; i++ {
		switch i % 4 {
		case 0:
			body += "        t = t * 31 + 7;\n"
		case 1:
			body += "        t = t + (t / 9);\n"
		case 2:
			body += "        t = t * t % 1000003;\n"
		case 3:
			body += "        t = t + 13;\n"
		}
	}
	return fmt.Sprintf(`
var xs: [%[1]d]int;
var ys: [%[1]d]int;
fn main() -> int {
    for i in 0..%[1]d {
        xs[i] = i * 2654435761 %% 1048576;
    }
    @loopfrog
    for i in 0..%[1]d {
        var t: int = xs[i];
%[2]s        ys[i] = t;
    }
    return ys[%[1]d - 1];
}`, n, body)
}

// fpCompute: a floating-point map with division and square roots
// (nab/povray/parest class).
func fpCompute(n, ops int) string {
	body := ""
	for i := 0; i < ops; i++ {
		switch i % 3 {
		case 0:
			body += "        t = t * 1.000173 + 0.5;\n"
		case 1:
			body += "        t = sqrt(t * t + 1.25);\n"
		case 2:
			body += "        t = t / 1.000091;\n"
		}
	}
	return fmt.Sprintf(`
var xs: [%[1]d]float;
var ys: [%[1]d]float;
fn main() -> int {
    for i in 0..%[1]d {
        xs[i] = float(i) * 0.75 + 1.0;
    }
    @loopfrog
    for i in 0..%[1]d {
        var t: float = xs[i];
%[2]s        ys[i] = t;
    }
    return int(ys[%[1]d - 1]);
}`, n, body)
}

// gather: one cold (DRAM-latency) indirect load per iteration, separated by
// a serial compute chain so the instruction window only ever covers a couple
// of misses — the memory-level-parallelism regime of §6.4.1 (mcf class).
// The large array is deliberately left uninitialised: reads return zero and
// the first touch of every line is a genuine cold miss.
func gather(n, chain int) string {
	return fmt.Sprintf(`
var data: [1048576]int;
var out: [%[1]d]int;
fn main() -> int {
    @loopfrog
    for i in 0..%[1]d {
        var j: int = (i * 422437 + 99991) %% 1048576;
        var v: int = data[j] + j;
        for k in 0..%[2]d {
            v = v * 3 + 1;
            v = v %% 1000003;
        }
        out[i] = v;
    }
    return out[%[1]d - 1];
}`, n, chain)
}

// branchy: hard-to-predict data-dependent branches whose conditions come
// from loaded values (omnetpp/gcc class: early branch-condition resolution).
func branchy(n int) string {
	return fmt.Sprintf(`
var xs: [%[1]d]int;
var out: [%[1]d]int;
fn main() -> int {
    var seed: int = 12345;
    for i in 0..%[1]d {
        seed = (seed * 1103515245 + 12345) %% 2147483648;
        xs[i] = seed;
    }
    @loopfrog
    for i in 0..%[1]d {
        var x: int = xs[i];
        var r: int = 0;
        if x %% 2 == 0 {
            r = x * 3 + 1;
        } else {
            r = x / 2;
        }
        if x %% 7 < 3 {
            r = r + x %% 13;
        }
        if x %% 5 == 1 {
            r = r * 2;
        }
        out[i] = r;
    }
    return out[%[1]d - 1];
}`, n)
}

// chase: a pointer chase through a permuted next[] array, with the p=next[p]
// LCD in the continuation and an independent body (omnetpp list-walk class).
func chase(n, work int) string {
	body := ""
	for i := 0; i < work; i++ {
		body += "        v = v * 37 + 11;\n"
	}
	return fmt.Sprintf(`
var next: [%[1]d]int;
var val: [%[1]d]int;
var out: [%[1]d]int;
fn main() -> int {
    # A single cycle through all slots: next[i] = (i + stride) mod n with
    # stride coprime to n.
    for i in 0..%[1]d {
        next[i] = (i + 769) %% %[1]d;
        val[i] = i * 5 + 2;
    }
    var p: int = 0;
    @loopfrog
    for i in 0..%[1]d {
        var v: int = val[p];
%[2]s        out[i] = v;
        p = next[p];
    }
    return out[%[1]d - 1];
}`, n, body)
}

// depchain: each iteration is one long serial integer chain (an inner loop
// of dependent operations), far larger than what several-at-a-time fits in
// the window — the cutting-dependency-chains regime of §6.4.1. Independent
// chains across iterations let threadlets run several chains at once.
func depchain(n, chain int) string {
	return fmt.Sprintf(`
var xs: [%[1]d]int;
var out: [%[1]d]int;
fn main() -> int {
    for i in 0..%[1]d {
        xs[i] = i * 97 + 13;
    }
    @loopfrog
    for i in 0..%[1]d {
        var t: int = xs[i];
        for k in 0..%[2]d {
            t = t * 3 + 1;
            t = t + (t %% 7);
        }
        out[i] = t;
    }
    return out[%[1]d - 1];
}`, n, chain)
}

// fpChain: a long serial floating-point recurrence per element (an
// iterative per-pixel filter): the imagick regime where LoopFrog shines —
// each chain is hundreds of multiply-add latencies long and chains are
// independent across pixels.
func fpChain(n, chain int) string {
	return fmt.Sprintf(`
var xs: [%[1]d]float;
var ys: [%[1]d]float;
fn main() -> int {
    for i in 0..%[1]d {
        xs[i] = float(i %% 251) * 0.125 + 0.5;
    }
    @loopfrog
    for i in 0..%[1]d {
        var t: float = xs[i];
        for k in 0..%[2]d {
            t = t * 0.999 + 0.001;
        }
        ys[i] = t;
    }
    return int(ys[%[1]d - 1] * 1000.0);
}`, n, chain)
}

// branchyGather: hard-to-predict branches whose conditions depend on
// slow (cache-missing) loads — the branch-condition-prefetch regime of
// §6.4.2 dominating omnetpp.
func branchyGather(n, chain int) string {
	return fmt.Sprintf(`
var big: [1048576]int;
var out: [%[1]d]int;
fn main() -> int {
    @loopfrog
    for i in 0..%[1]d {
        var j: int = (i * 522437 + 7919) %% 1048576;
        var v: int = big[j] + j;
        var r: int = 0;
        if v %% 2 == 0 {
            r = v * 3 + 1;
        } else {
            r = v / 2 + 13;
        }
        if v %% 13 < 5 {
            r = r + v %% 31;
        }
        for k in 0..%[2]d {
            r = r * 5 + 3;
        }
        out[i] = r;
    }
    return out[%[1]d - 1];
}`, n, chain)
}

// tinyChase: a two-operation body with a data-dependent (unpredictable)
// index walk: too small to pay for threadlets and unpackable because the
// induction chain has no stride (leela class).
func tinyChase(n int) string {
	return fmt.Sprintf(`
var next: [%[1]d]int;
var ys: [%[1]d]int;
fn main() -> int {
    for i in 0..%[1]d {
        next[i] = (i * 40503 + 12345) %% %[1]d;
    }
    var p: int = 0;
    @loopfrog
    for i in 0..%[1]d {
        ys[i] = p + i;
        p = next[p];
    }
    return ys[%[1]d - 1];
}`, n)
}

// stencil: a 3-point floating-point stencil (wrf/roms/cactuBSSN class).
func stencil(n int) string {
	return fmt.Sprintf(`
var a: [%[1]d]float;
var b: [%[1]d]float;
fn main() -> int {
    for i in 0..%[1]d {
        a[i] = float(i %% 100) * 0.125;
    }
    @loopfrog
    for i in 1..%[1]d - 1 {
        var t: float = a[i - 1] * 0.25 + a[i] * 0.5 + a[i + 1] * 0.25;
        b[i] = t * 1.0002;
    }
    return int(b[%[1]d / 2]);
}`, n)
}

// serialAccum: a genuine cross-iteration memory dependence through one cell
// (the DoACROSS class of §6.4.3: conflicts squash, no speedup).
func serialAccum(n int) string {
	return fmt.Sprintf(`
var xs: [%[1]d]int;
var cell: [1]int;
fn main() -> int {
    for i in 0..%[1]d {
        xs[i] = i %% 17;
    }
    @loopfrog
    for i in 0..%[1]d {
        var t: int = xs[i] * 3;
        cell[0] = cell[0] + t;
    }
    return cell[0];
}`, n)
}

// tiny: a 2-operation body (leela class: too small without packing).
func tiny(n int) string {
	return fmt.Sprintf(`
var xs: [%[1]d]int;
var ys: [%[1]d]int;
fn main() -> int {
    for i in 0..%[1]d {
        xs[i] = i;
    }
    @loopfrog
    for i in 0..%[1]d {
        ys[i] = xs[i] + 1;
    }
    return ys[%[1]d - 1];
}`, n)
}

// huge: iterations far larger than the ROB, built from ILP-rich streaming
// work (lbm/xz class: the out-of-order window already extracts the
// parallelism of an iteration, so threadlets add nothing).
func huge(outer, inner int) string {
	return fmt.Sprintf(`
var acc: [%[1]d]int;
var buf: [%[2]d]int;
fn main() -> int {
    @loopfrog
    for i in 0..%[1]d {
        var t0: int = i;
        var t1: int = i + 1;
        var t2: int = i + 2;
        var t3: int = i + 3;
        for j in 0..%[2]d {
            t0 = t0 + buf[j] + 3;
            t1 = t1 * 2 + 5;
            t2 = t2 + j;
            t3 = t3 + (t3 / 16);
            buf[j] = t0 + t1;
        }
        acc[i] = t0 + t1 + t2 + t3;
    }
    return acc[%[1]d - 1];
}`, outer, inner)
}

// lowtrip: annotated inner loops with trivial trip counts (deepsjeng /
// blender class).
func lowtrip(outer, trip int) string {
	return fmt.Sprintf(`
var m: [%[1]d]int;
fn main() -> int {
    var base: int = 0;
    for o in 0..%[1]d / %[2]d {
        @loopfrog
        for i in 0..%[2]d {
            var t: int = (base + i) * 7 + 1;
            t = t * t %% 65536;
            m[base + i] = t;
        }
        base = base + %[2]d;
    }
    return m[%[1]d - 1];
}`, outer, trip)
}

// highipc: an ILP-saturated floating-point body — the 8-wide baseline is
// already near peak (namd class).
func highipc(n int) string {
	return fmt.Sprintf(`
var a: [%[1]d]float;
var b: [%[1]d]float;
var c: [%[1]d]float;
var d: [%[1]d]float;
fn main() -> int {
    for i in 0..%[1]d {
        a[i] = float(i) * 0.5;
        b[i] = float(i) * 0.25 + 1.0;
    }
    @loopfrog
    for i in 0..%[1]d {
        var t0: float = a[i] * 1.5 + 0.25;
        var t1: float = b[i] * 2.5 + 0.75;
        var t2: float = a[i] * b[i];
        var t3: float = t0 + t1;
        c[i] = t2 + t3;
        d[i] = t0 * t1 - t2;
    }
    return int(c[%[1]d - 1] + d[%[1]d - 1]);
}`, n)
}

// withSerialPad appends a serial (unparallelisable) phase before main's
// final return: a long recurrence standing in for the sequential regions of
// the original programs, which see no uplift and dilute loop gains into
// whole-program speedups (§6.3).
func withSerialPad(src string, iters int) string {
	if iters <= 0 {
		return src
	}
	marker := "\n    return "
	idx := strings.LastIndex(src, marker)
	if idx < 0 {
		panic("workloads: kernel source has no return to pad")
	}
	pad := fmt.Sprintf(`
    var padAcc: int = 7;
    for q in 0..%d {
        padAcc = (padAcc * 1103515245 + q) %% 65536;
        padAcc = padAcc + (padAcc / 3);
    }
    if padAcc == 0 - 1 { padAcc = 0; }
`, iters)
	return src[:idx] + pad + src[idx:]
}

// histogram: scattered read-modify-writes over a bucket array — occasional
// genuine conflicts between nearby iterations (perlbench-ish mixed class).
func histogram(n, buckets int) string {
	return fmt.Sprintf(`
var xs: [%[1]d]int;
var hist: [%[2]d]int;
var out: [%[1]d]int;
fn main() -> int {
    var seed: int = 99991;
    for i in 0..%[1]d {
        seed = (seed * 6364136223846793005 + 1442695040888963407) %% 4611686018427387904;
        xs[i] = seed %% %[2]d;
        if xs[i] < 0 { xs[i] = 0 - xs[i]; }
    }
    @loopfrog
    for i in 0..%[1]d {
        var b: int = xs[i];
        var t: int = b * 3 + i %% 5;
        out[i] = t;
        hist[b] = hist[b] + 1;
    }
    var s: int = 0;
    for i in 0..%[2]d {
        s = s + hist[i] * i;
    }
    return s;
}`, n, buckets)
}
