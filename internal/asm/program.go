// Package asm provides the LFISA program image and a two-pass assembler.
//
// A program image holds the instruction stream, the initial data segment and
// its symbols, and the entry point. Images are produced either by assembling
// text (Assemble) or programmatically via Builder, and are consumed by the
// reference interpreter, the out-of-order core model, and the LoopFrog
// engine.
package asm

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"loopfrog/internal/isa"
)

// DefaultDataBase is the byte address where the data segment is placed unless
// the source overrides it with a .base directive.
const DefaultDataBase uint64 = 0x100000

// DefaultStackTop is the initial stack pointer handed to programs by the
// simulator's loader. The stack grows downwards and is far away from the
// data segment.
const DefaultStackTop uint64 = 0x8000000

// Program is an assembled LFISA program image.
type Program struct {
	// Name identifies the program in reports.
	Name string
	// Insts is the instruction stream; the PC indexes this slice.
	Insts []isa.Inst
	// Entry is the instruction index where execution starts.
	Entry int
	// Labels maps code labels to instruction indices.
	Labels map[string]int
	// Data is the initial data segment, loaded at DataBase.
	Data []byte
	// DataBase is the byte address of Data[0].
	DataBase uint64
	// Symbols maps data labels to byte addresses.
	Symbols map[string]uint64
	// Lines holds the source line of each instruction (1-based), parallel to
	// Insts, when the producer tracked provenance; nil or a zero entry means
	// unknown. Lines are debug metadata: excluded from Fingerprint.
	Lines []int

	// Fingerprint cache; computed on demand, images are immutable once built.
	fpOnce sync.Once
	fp     string

	// Predecoded image cache (Decoded); built once, shared read-only.
	decOnce sync.Once
	dec     []DecInst
}

// DecInst is one predecoded instruction: the architectural instruction plus a
// pointer into the immutable opcode metadata table. Execution engines index a
// PC-indexed []DecInst instead of consulting isa.OpMeta on every fetch, and
// the metadata pointer rides along with the dynamic instruction so no stage
// re-copies the Meta value. The out-of-order core's front end and the
// fast-functional tier share this machinery.
type DecInst struct {
	Inst isa.Inst
	Meta *isa.Meta
}

// Decoded returns the PC-indexed predecoded image. It is built once per
// program — images are immutable once assembled — and shared read-only by
// every machine running the program, including concurrent harness workers.
func (p *Program) Decoded() []DecInst {
	p.decOnce.Do(func() {
		dec := make([]DecInst, len(p.Insts))
		for pc, inst := range p.Insts {
			dec[pc] = DecInst{Inst: inst, Meta: isa.MetaOf(inst.Op)}
		}
		p.dec = dec
	})
	return p.dec
}

// Fingerprint returns a content hash of the executable image: the encoded
// instruction stream, entry point, and initial data segment. Two programs
// with equal fingerprints simulate identically under any configuration, so
// the run-cache keys on it. Labels and symbols are debug metadata and are
// excluded. The program must not be mutated after the first call.
func (p *Program) Fingerprint() string {
	p.fpOnce.Do(func() {
		h := sha256.New()
		var buf [isa.InstBytes]byte
		for _, inst := range p.Insts {
			// Encode cannot fail for instructions that came through the
			// assembler/builder; a raw invalid opcode hashes as zeros.
			n, _ := isa.Encode(inst, buf[:])
			h.Write(buf[:n])
		}
		var tail [24]byte
		binary.LittleEndian.PutUint64(tail[0:], uint64(p.Entry))
		binary.LittleEndian.PutUint64(tail[8:], p.DataBase)
		binary.LittleEndian.PutUint64(tail[16:], uint64(len(p.Data)))
		h.Write(tail[:])
		h.Write(p.Data)
		p.fp = fmt.Sprintf("%x", h.Sum(nil))
	})
	return p.fp
}

// Label returns the instruction index of a code label.
func (p *Program) Label(name string) (int, bool) {
	idx, ok := p.Labels[name]
	return idx, ok
}

// MustLabel returns the instruction index of a code label, panicking if the
// label is unknown. Intended for tests and examples.
func (p *Program) MustLabel(name string) int {
	idx, ok := p.Labels[name]
	if !ok {
		panic(fmt.Sprintf("asm: unknown label %q", name))
	}
	return idx
}

// LineOf returns the source line of the instruction at idx, or 0 when the
// producer did not record provenance (e.g. Builder-generated code).
func (p *Program) LineOf(idx int) int {
	if idx < 0 || idx >= len(p.Lines) {
		return 0
	}
	return p.Lines[idx]
}

// NearestLabel returns the closest code label at or before idx and the
// instruction offset from it, for positioning diagnostics in label-rich but
// line-free images (compiler output). ok is false when no label precedes idx.
func (p *Program) NearestLabel(idx int) (name string, offset int, ok bool) {
	best := -1
	for n, at := range p.Labels {
		if at > idx || at < best {
			continue
		}
		if at > best || (at == best && n < name) {
			best, name = at, n
		}
	}
	if best < 0 {
		return "", 0, false
	}
	return name, idx - best, true
}

// Symbol returns the byte address of a data symbol.
func (p *Program) Symbol(name string) (uint64, bool) {
	addr, ok := p.Symbols[name]
	return addr, ok
}

// MustSymbol returns the byte address of a data symbol, panicking if unknown.
func (p *Program) MustSymbol(name string) uint64 {
	addr, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: unknown symbol %q", name))
	}
	return addr
}

// Disassemble renders the instruction stream with indices and labels,
// primarily for debugging and golden tests.
func (p *Program) Disassemble() string {
	byIndex := make(map[int][]string)
	for name, idx := range p.Labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	var b strings.Builder
	for i, inst := range p.Insts {
		for _, name := range byIndex[i] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "%5d: %s\n", i, inst)
	}
	return b.String()
}

// Validate checks structural well-formedness: targets in range, registers in
// range, x0 never written by a load, and hints carrying valid region IDs.
func (p *Program) Validate() error {
	n := len(p.Insts)
	if p.Entry < 0 || p.Entry >= n {
		return fmt.Errorf("asm: entry %d out of range [0,%d)", p.Entry, n)
	}
	for idx, inst := range p.Insts {
		m := isa.OpMeta(inst.Op)
		if inst.Rd >= isa.NumRegs || inst.Rs1 >= isa.NumRegs || inst.Rs2 >= isa.NumRegs {
			return fmt.Errorf("asm: inst %d (%s): register out of range", idx, inst)
		}
		if m.IsBranch || inst.Op == isa.JAL || m.IsHint {
			if inst.Imm < 0 || inst.Imm >= int64(n) {
				return fmt.Errorf("asm: inst %d (%s): target %d out of range [0,%d)", idx, inst, inst.Imm, n)
			}
		}
	}
	return nil
}
