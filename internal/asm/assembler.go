package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"loopfrog/internal/isa"
)

// Assemble converts LFISA assembly text into a program image. The syntax is
// conventional two-section assembly:
//
//	        .data
//	arr:    .quad 1, 2, 3
//	buf:    .zero 64
//	        .text
//	main:   la   t0, arr
//	loop:   ld   t1, 0(t0)
//	        detach cont
//	        ...
//	        reattach cont
//	cont:   addi t0, t0, 8
//	        bne  t0, t2, loop
//	        sync cont
//	        halt
//
// Comments start with '#' or ';'. Labels end with ':'. Branch, jump and hint
// operands are labels. Registers are x0-x31 / f0-f31 with the usual ABI
// aliases (zero, ra, sp, a0-a7, t0-t6, s0-s11). Entry defaults to label
// "main" if present, otherwise instruction 0.
func Assemble(name, src string) (*Program, error) {
	a := &assembler{
		prog: &Program{
			Name:     name,
			Labels:   make(map[string]int),
			Symbols:  make(map[string]uint64),
			DataBase: DefaultDataBase,
		},
	}
	if err := a.run(src); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// MustAssemble is Assemble that panics on error; for tests, examples and
// statically known-good workload sources.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type section int

const (
	secText section = iota
	secData
)

type fixup struct {
	instIdx int
	label   string
	line    int
	// dataSym marks an `la`-style fixup resolved against data symbols first,
	// then code labels.
	dataSym bool
}

type assembler struct {
	prog   *Program
	sec    section
	fixups []fixup
	line   int
}

func (a *assembler) errf(format string, args ...interface{}) error {
	return fmt.Errorf("asm: line %d: %s", a.line, fmt.Sprintf(format, args...))
}

func (a *assembler) run(src string) error {
	a.sec = secText
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.doLine(raw); err != nil {
			return err
		}
	}
	if err := a.resolve(); err != nil {
		return err
	}
	if idx, ok := a.prog.Labels["main"]; ok {
		a.prog.Entry = idx
	}
	return a.prog.Validate()
}

func (a *assembler) doLine(raw string) error {
	text := raw
	if i := strings.IndexAny(text, "#;"); i >= 0 {
		text = text[:i]
	}
	text = strings.TrimSpace(text)
	for {
		colon := strings.Index(text, ":")
		if colon < 0 {
			break
		}
		label := strings.TrimSpace(text[:colon])
		if !isIdent(label) {
			return a.errf("bad label %q", label)
		}
		if err := a.defineLabel(label); err != nil {
			return err
		}
		text = strings.TrimSpace(text[colon+1:])
	}
	if text == "" {
		return nil
	}
	if strings.HasPrefix(text, ".") {
		return a.directive(text)
	}
	if a.sec != secText {
		return a.errf("instruction %q outside .text", text)
	}
	return a.instruction(text)
}

func (a *assembler) defineLabel(label string) error {
	if a.sec == secText {
		if _, dup := a.prog.Labels[label]; dup {
			return a.errf("duplicate label %q", label)
		}
		a.prog.Labels[label] = len(a.prog.Insts)
		return nil
	}
	if _, dup := a.prog.Symbols[label]; dup {
		return a.errf("duplicate symbol %q", label)
	}
	a.prog.Symbols[label] = a.prog.DataBase + uint64(len(a.prog.Data))
	return nil
}

func (a *assembler) directive(text string) error {
	fields := strings.SplitN(text, " ", 2)
	dir := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".global", ".globl":
		// Accepted for familiarity; all labels are already visible.
	case ".base":
		if len(a.prog.Data) > 0 {
			return a.errf(".base after data was emitted")
		}
		v, err := parseInt(rest)
		if err != nil {
			return a.errf(".base: %v", err)
		}
		a.prog.DataBase = uint64(v)
	case ".align":
		n, err := parseInt(rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return a.errf(".align wants a positive power of two, got %q", rest)
		}
		a.alignData(int(n))
	case ".zero":
		n, err := parseInt(rest)
		if err != nil || n < 0 {
			return a.errf(".zero wants a non-negative size, got %q", rest)
		}
		a.prog.Data = append(a.prog.Data, make([]byte, n)...)
	case ".byte", ".half", ".word", ".quad":
		// No implicit alignment: labels bind before directives are seen, so
		// auto-aligning would silently detach a label from its datum. Use
		// .align explicitly, as in conventional assemblers.
		size := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".quad": 8}[dir]
		for _, f := range splitOperands(rest) {
			v, err := parseInt(f)
			if err != nil {
				return a.errf("%s: %v", dir, err)
			}
			a.emitData(uint64(v), size)
		}
	case ".double":
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return a.errf(".double: %v", err)
			}
			a.emitData(math.Float64bits(v), 8)
		}
	default:
		return a.errf("unknown directive %q", dir)
	}
	if a.sec != secData {
		switch dir {
		case ".zero", ".byte", ".half", ".word", ".quad", ".double", ".align":
			return a.errf("%s outside .data", dir)
		}
	}
	return nil
}

func (a *assembler) alignData(n int) {
	for len(a.prog.Data)%n != 0 {
		a.prog.Data = append(a.prog.Data, 0)
	}
}

func (a *assembler) emitData(v uint64, size int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	a.prog.Data = append(a.prog.Data, buf[:size]...)
}

func (a *assembler) emit(inst isa.Inst) {
	a.prog.Insts = append(a.prog.Insts, inst)
	a.prog.Lines = append(a.prog.Lines, a.line)
}

func (a *assembler) emitWithTarget(inst isa.Inst, label string) {
	a.fixups = append(a.fixups, fixup{instIdx: len(a.prog.Insts), label: label, line: a.line})
	a.emit(inst)
}

func (a *assembler) resolve() error {
	for _, f := range a.fixups {
		inst := &a.prog.Insts[f.instIdx]
		if f.dataSym {
			if addr, ok := a.prog.Symbols[f.label]; ok {
				inst.Imm = int64(addr)
				continue
			}
			if idx, ok := a.prog.Labels[f.label]; ok {
				inst.Imm = int64(idx)
				continue
			}
			return fmt.Errorf("asm: line %d: unknown symbol %q", f.line, f.label)
		}
		idx, ok := a.prog.Labels[f.label]
		if !ok {
			return fmt.Errorf("asm: line %d: unknown label %q", f.line, f.label)
		}
		inst.Imm = int64(idx)
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty integer")
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

var regAliases = map[string]isa.Reg{
	"zero": isa.X(0), "ra": isa.X(1), "sp": isa.X(2), "gp": isa.X(3), "tp": isa.X(4),
	"t0": isa.X(5), "t1": isa.X(6), "t2": isa.X(7),
	"s0": isa.X(8), "fp": isa.X(8), "s1": isa.X(9),
	"a0": isa.X(10), "a1": isa.X(11), "a2": isa.X(12), "a3": isa.X(13),
	"a4": isa.X(14), "a5": isa.X(15), "a6": isa.X(16), "a7": isa.X(17),
	"s2": isa.X(18), "s3": isa.X(19), "s4": isa.X(20), "s5": isa.X(21),
	"s6": isa.X(22), "s7": isa.X(23), "s8": isa.X(24), "s9": isa.X(25),
	"s10": isa.X(26), "s11": isa.X(27),
	"t3": isa.X(28), "t4": isa.X(29), "t5": isa.X(30), "t6": isa.X(31),
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if len(s) >= 2 && (s[0] == 'x' || s[0] == 'f') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n <= 31 {
			if s[0] == 'x' {
				return isa.X(n), nil
			}
			return isa.F(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// parseMem parses "imm(reg)" or "(reg)".
func parseMem(s string) (int64, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	var off int64
	if open > 0 {
		v, err := parseInt(s[:open])
		if err != nil {
			return 0, 0, fmt.Errorf("bad memory offset in %q", s)
		}
		off = v
	}
	reg, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, reg, nil
}

var opByName = func() map[string]isa.Opcode {
	m := make(map[string]isa.Opcode, isa.NumOpcodes)
	for op := 0; op < isa.NumOpcodes; op++ {
		m[isa.OpMeta(isa.Opcode(op)).Name] = isa.Opcode(op)
	}
	return m
}()

func (a *assembler) instruction(text string) error {
	fields := strings.SplitN(text, " ", 2)
	mnem := strings.ToLower(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	ops := splitOperands(rest)

	// Pseudo-instructions first.
	switch mnem {
	case "mv":
		return a.rrImm(isa.ADDI, ops, 0)
	case "not":
		return a.rrImm(isa.XORI, ops, -1)
	case "neg":
		if len(ops) != 2 {
			return a.errf("neg wants 2 operands")
		}
		rd, err1 := parseReg(ops[0])
		rs, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return a.errf("neg: bad register")
		}
		a.emit(isa.Inst{Op: isa.SUB, Rd: rd, Rs1: isa.X(0), Rs2: rs})
		return nil
	case "la":
		if len(ops) != 2 {
			return a.errf("la wants 2 operands")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return a.errf("la: %v", err)
		}
		if !isIdent(ops[1]) {
			return a.errf("la: bad symbol %q", ops[1])
		}
		a.fixups = append(a.fixups, fixup{instIdx: len(a.prog.Insts), label: ops[1], line: a.line, dataSym: true})
		a.emit(isa.Inst{Op: isa.LI, Rd: rd})
		return nil
	case "j":
		if len(ops) != 1 {
			return a.errf("j wants 1 operand")
		}
		a.emitWithTarget(isa.Inst{Op: isa.JAL, Rd: isa.X(0)}, ops[0])
		return nil
	case "call":
		if len(ops) != 1 {
			return a.errf("call wants 1 operand")
		}
		a.emitWithTarget(isa.Inst{Op: isa.JAL, Rd: isa.X(1)}, ops[0])
		return nil
	case "ret":
		a.emit(isa.Inst{Op: isa.JALR, Rd: isa.X(0), Rs1: isa.X(1)})
		return nil
	case "beqz", "bnez", "bltz", "bgez":
		if len(ops) != 2 {
			return a.errf("%s wants 2 operands", mnem)
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return a.errf("%s: %v", mnem, err)
		}
		op := map[string]isa.Opcode{"beqz": isa.BEQ, "bnez": isa.BNE, "bltz": isa.BLT, "bgez": isa.BGE}[mnem]
		a.emitWithTarget(isa.Inst{Op: op, Rs1: rs, Rs2: isa.X(0)}, ops[1])
		return nil
	case "ble", "bgt":
		if len(ops) != 3 {
			return a.errf("%s wants 3 operands", mnem)
		}
		r1, err1 := parseReg(ops[0])
		r2, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return a.errf("%s: bad register", mnem)
		}
		// ble a,b,l == bge b,a,l ; bgt a,b,l == blt b,a,l
		op := isa.BGE
		if mnem == "bgt" {
			op = isa.BLT
		}
		a.emitWithTarget(isa.Inst{Op: op, Rs1: r2, Rs2: r1}, ops[2])
		return nil
	}

	op, ok := opByName[mnem]
	if !ok {
		return a.errf("unknown mnemonic %q", mnem)
	}
	m := isa.OpMeta(op)

	switch {
	case op == isa.NOP || op == isa.HALT:
		if len(ops) != 0 {
			return a.errf("%s takes no operands", mnem)
		}
		a.emit(isa.Inst{Op: op})
	case m.IsHint:
		if len(ops) != 1 || !isIdent(ops[0]) {
			return a.errf("%s wants a label operand", mnem)
		}
		a.emitWithTarget(isa.Inst{Op: op}, ops[0])
	case op == isa.LI:
		if len(ops) != 2 {
			return a.errf("li wants 2 operands")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return a.errf("li: %v", err)
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return a.errf("li: %v", err)
		}
		a.emit(isa.Inst{Op: isa.LI, Rd: rd, Imm: v})
	case m.IsLoad:
		if len(ops) != 2 {
			return a.errf("%s wants rd, imm(rs)", mnem)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return a.errf("%s: %v", mnem, err)
		}
		off, rs, err := parseMem(ops[1])
		if err != nil {
			return a.errf("%s: %v", mnem, err)
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs, Imm: off})
	case m.IsStore:
		if len(ops) != 2 {
			return a.errf("%s wants rs2, imm(rs1)", mnem)
		}
		rs2, err := parseReg(ops[0])
		if err != nil {
			return a.errf("%s: %v", mnem, err)
		}
		off, rs1, err := parseMem(ops[1])
		if err != nil {
			return a.errf("%s: %v", mnem, err)
		}
		a.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	case m.IsBranch:
		if len(ops) != 3 {
			return a.errf("%s wants rs1, rs2, label", mnem)
		}
		r1, err1 := parseReg(ops[0])
		r2, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return a.errf("%s: bad register", mnem)
		}
		a.emitWithTarget(isa.Inst{Op: op, Rs1: r1, Rs2: r2}, ops[2])
	case op == isa.JAL:
		if len(ops) != 2 {
			return a.errf("jal wants rd, label")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return a.errf("jal: %v", err)
		}
		a.emitWithTarget(isa.Inst{Op: isa.JAL, Rd: rd}, ops[1])
	case op == isa.JALR:
		if len(ops) != 3 && len(ops) != 2 {
			return a.errf("jalr wants rd, rs1[, imm]")
		}
		rd, err1 := parseReg(ops[0])
		rs, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return a.errf("jalr: bad register")
		}
		var imm int64
		if len(ops) == 3 {
			imm, err1 = parseInt(ops[2])
			if err1 != nil {
				return a.errf("jalr: %v", err1)
			}
		}
		a.emit(isa.Inst{Op: isa.JALR, Rd: rd, Rs1: rs, Imm: imm})
	case m.HasRs2: // three-register ops
		if len(ops) != 3 {
			return a.errf("%s wants rd, rs1, rs2", mnem)
		}
		rd, e0 := parseReg(ops[0])
		r1, e1 := parseReg(ops[1])
		r2, e2 := parseReg(ops[2])
		if e0 != nil || e1 != nil || e2 != nil {
			return a.errf("%s: bad register", mnem)
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rs1: r1, Rs2: r2})
	case m.HasRs1 && m.HasRd && m.Class == isa.ClassIntALU: // reg-imm ALU
		if len(ops) != 3 {
			return a.errf("%s wants rd, rs1, imm", mnem)
		}
		rd, e0 := parseReg(ops[0])
		r1, e1 := parseReg(ops[1])
		if e0 != nil || e1 != nil {
			return a.errf("%s: bad register", mnem)
		}
		v, err := parseInt(ops[2])
		if err != nil {
			return a.errf("%s: %v", mnem, err)
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rs1: r1, Imm: v})
	case m.HasRs1 && m.HasRd: // two-register ops (FP unary, converts)
		if len(ops) != 2 {
			return a.errf("%s wants rd, rs1", mnem)
		}
		rd, e0 := parseReg(ops[0])
		r1, e1 := parseReg(ops[1])
		if e0 != nil || e1 != nil {
			return a.errf("%s: bad register", mnem)
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rs1: r1})
	default:
		return a.errf("unhandled mnemonic %q", mnem)
	}
	return nil
}

func (a *assembler) rrImm(op isa.Opcode, ops []string, imm int64) error {
	if len(ops) != 2 {
		return a.errf("pseudo wants 2 operands")
	}
	rd, err1 := parseReg(ops[0])
	rs, err2 := parseReg(ops[1])
	if err1 != nil || err2 != nil {
		return a.errf("pseudo: bad register")
	}
	a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs, Imm: imm})
	return nil
}
