package asm

import (
	"strings"
	"testing"

	"loopfrog/internal/isa"
)

const sumLoop = `
        .data
arr:    .quad 1, 2, 3, 4
n:      .quad 4
        .text
main:   la   a0, arr
        la   t0, n
        ld   t0, 0(t0)      # trip count
        li   a1, 0          # sum
        li   t1, 0          # i
loop:   slli t2, t1, 3
        add  t2, a0, t2
        ld   t3, 0(t2)
        detach cont
        add  a1, a1, t3
        reattach cont
cont:   addi t1, t1, 1
        blt  t1, t0, loop
        sync cont
        halt
`

func TestAssembleSumLoop(t *testing.T) {
	p, err := Assemble("sum", sumLoop)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p.Entry != p.MustLabel("main") {
		t.Errorf("entry = %d, want main at %d", p.Entry, p.MustLabel("main"))
	}
	if got := len(p.Data); got != 40 {
		t.Errorf("data length = %d, want 40", got)
	}
	if addr := p.MustSymbol("arr"); addr != DefaultDataBase {
		t.Errorf("arr at %#x, want %#x", addr, DefaultDataBase)
	}
	if addr := p.MustSymbol("n"); addr != DefaultDataBase+32 {
		t.Errorf("n at %#x, want %#x", addr, DefaultDataBase+32)
	}
	cont := p.MustLabel("cont")
	var hints []isa.Inst
	for _, inst := range p.Insts {
		if isa.OpMeta(inst.Op).IsHint {
			hints = append(hints, inst)
		}
	}
	if len(hints) != 3 {
		t.Fatalf("found %d hints, want 3", len(hints))
	}
	for _, h := range hints {
		if h.Imm != int64(cont) {
			t.Errorf("hint %s targets %d, want cont at %d", h, h.Imm, cont)
		}
	}
	// The branch targets the loop head.
	loop := p.MustLabel("loop")
	found := false
	for _, inst := range p.Insts {
		if inst.Op == isa.BLT && inst.Imm == int64(loop) {
			found = true
		}
	}
	if !found {
		t.Error("blt does not target loop label")
	}
}

func TestAssemblePseudoOps(t *testing.T) {
	src := `
main:   mv   a0, a1
        not  a2, a3
        neg  a4, a5
        j    end
        call fn
        beqz a0, end
        bnez a0, end
        ble  a0, a1, end
        bgt  a0, a1, end
fn:     ret
end:    halt
`
	p, err := Assemble("pseudo", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	want := []isa.Inst{
		{Op: isa.ADDI, Rd: isa.X(10), Rs1: isa.X(11)},
		{Op: isa.XORI, Rd: isa.X(12), Rs1: isa.X(13), Imm: -1},
		{Op: isa.SUB, Rd: isa.X(14), Rs1: isa.X(0), Rs2: isa.X(15)},
		{Op: isa.JAL, Rd: isa.X(0), Imm: 10},
		{Op: isa.JAL, Rd: isa.X(1), Imm: 9},
		{Op: isa.BEQ, Rs1: isa.X(10), Rs2: isa.X(0), Imm: 10},
		{Op: isa.BNE, Rs1: isa.X(10), Rs2: isa.X(0), Imm: 10},
		{Op: isa.BGE, Rs1: isa.X(11), Rs2: isa.X(10), Imm: 10},
		{Op: isa.BLT, Rs1: isa.X(11), Rs2: isa.X(10), Imm: 10},
		{Op: isa.JALR, Rd: isa.X(0), Rs1: isa.X(1)},
		{Op: isa.HALT},
	}
	if len(p.Insts) != len(want) {
		t.Fatalf("got %d instructions, want %d\n%s", len(p.Insts), len(want), p.Disassemble())
	}
	for i := range want {
		if p.Insts[i] != want[i] {
			t.Errorf("inst %d = %+v, want %+v", i, p.Insts[i], want[i])
		}
	}
}

func TestAssembleDataDirectives(t *testing.T) {
	src := `
        .data
b:      .byte 1, 2, 0xff
        .align 4
h:      .half 0x1234
        .align 4
w:      .word -1
        .align 8
q:      .quad 0x123456789abcdef0
d:      .double 1.5
z:      .zero 3
        .align 8
end:    .byte 7
        .text
main:   halt
`
	p, err := Assemble("data", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	base := p.DataBase
	checks := map[string]uint64{"b": base, "h": base + 4, "w": base + 8, "q": base + 16, "d": base + 24, "z": base + 32}
	for sym, want := range checks {
		if got := p.MustSymbol(sym); got != want {
			t.Errorf("symbol %s at %#x, want %#x", sym, got, want)
		}
	}
	if got := p.MustSymbol("end"); got != base+40 {
		t.Errorf("end at %#x, want %#x (after .align 8)", got, base+40)
	}
	if p.Data[0] != 1 || p.Data[1] != 2 || p.Data[2] != 0xff {
		t.Errorf(".byte payload wrong: % x", p.Data[:3])
	}
	if p.Data[4] != 0x34 || p.Data[5] != 0x12 {
		t.Errorf(".half not little-endian: % x", p.Data[4:6])
	}
	for i := 8; i < 12; i++ {
		if p.Data[i] != 0xff {
			t.Errorf(".word -1 byte %d = %#x", i, p.Data[i])
		}
	}
	if p.Data[16] != 0xf0 || p.Data[23] != 0x12 {
		t.Errorf(".quad payload wrong: % x", p.Data[16:24])
	}
}

func TestAssembleBaseDirective(t *testing.T) {
	src := `
        .data
        .base 0x2000
v:      .quad 9
        .text
main:   la a0, v
        halt
`
	p, err := Assemble("base", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p.DataBase != 0x2000 {
		t.Errorf("DataBase = %#x, want 0x2000", p.DataBase)
	}
	if p.Insts[0].Imm != 0x2000 {
		t.Errorf("la resolved to %#x, want 0x2000", p.Insts[0].Imm)
	}
}

func TestAssembleLaCodeLabel(t *testing.T) {
	// `la` falls back to code labels, giving function pointers for jalr.
	src := `
main:   la  t0, fn
        jalr ra, t0, 0
        halt
fn:     ret
`
	p, err := Assemble("fptr", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p.Insts[0].Imm != int64(p.MustLabel("fn")) {
		t.Errorf("la fn = %d, want %d", p.Insts[0].Imm, p.MustLabel("fn"))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown-mnemonic", "main: frobnicate a0, a1", "unknown mnemonic"},
		{"unknown-label", "main: j nowhere", `unknown label "nowhere"`},
		{"unknown-symbol", "main: la a0, nodata\nhalt", `unknown symbol "nodata"`},
		{"dup-label", "main: nop\nmain: nop", "duplicate label"},
		{"bad-register", "main: add a0, a1, q9", "bad register"},
		{"data-in-text", ".quad 4", "outside .data"},
		{"inst-in-data", ".data\nadd a0, a1, a2", "outside .text"},
		{"bad-directive", ".frob 1", "unknown directive"},
		{"bad-mem", "main: ld a0, a1", "bad memory operand"},
		{"wrong-arity", "main: add a0, a1", "wants rd, rs1, rs2"},
		{"bad-align", ".data\n.align 3", "power of two"},
		{"hint-imm", "main: detach 5", "wants a label"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.name, c.src)
			if err == nil {
				t.Fatalf("Assemble succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	src := `
# leading comment
main:           ; trailing comment style two
        nop     # comment after instruction

        halt
`
	p, err := Assemble("comments", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Insts) != 2 {
		t.Errorf("got %d instructions, want 2", len(p.Insts))
	}
}

func TestBuilderMirrorsAssembler(t *testing.T) {
	b := NewBuilder("sum")
	b.Sym("arr").Quad(1, 2, 3, 4).Sym("n").Quad(4)
	b.Label("main").
		La(isa.X(10), "arr").
		La(isa.X(5), "n").
		Load(isa.LD, isa.X(5), isa.X(5), 0).
		Li(isa.X(11), 0).
		Li(isa.X(6), 0).
		Label("loop").
		OpImm(isa.SLLI, isa.X(7), isa.X(6), 3).
		Op(isa.ADD, isa.X(7), isa.X(10), isa.X(7)).
		Load(isa.LD, isa.X(28), isa.X(7), 0).
		Hint(isa.DETACH, "cont").
		Op(isa.ADD, isa.X(11), isa.X(11), isa.X(28)).
		Hint(isa.REATTACH, "cont").
		Label("cont").
		OpImm(isa.ADDI, isa.X(6), isa.X(6), 1).
		Branch(isa.BLT, isa.X(6), isa.X(5), "loop").
		Hint(isa.SYNC, "cont").
		Halt()
	built, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	asmP, err := Assemble("sum", sumLoop)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(built.Insts) != len(asmP.Insts) {
		t.Fatalf("builder emitted %d instructions, assembler %d", len(built.Insts), len(asmP.Insts))
	}
	for i := range built.Insts {
		if built.Insts[i] != asmP.Insts[i] {
			t.Errorf("inst %d: builder %+v != assembler %+v", i, built.Insts[i], asmP.Insts[i])
		}
	}
	if string(built.Data) != string(asmP.Data) {
		t.Errorf("data segments differ: % x vs % x", built.Data, asmP.Data)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x").Jump(isa.X(0), "missing").Halt().Build(); err == nil {
		t.Error("Build with unresolved label succeeded")
	}
	if _, err := NewBuilder("x").Label("a").Label("a").Halt().Build(); err == nil {
		t.Error("Build with duplicate label succeeded")
	}
	if _, err := NewBuilder("x").Hint(isa.ADD, "l").Build(); err == nil {
		t.Error("Hint with non-hint opcode succeeded")
	}
	if _, err := NewBuilder("x").La(isa.X(1), "nosym").Halt().Build(); err == nil {
		t.Error("Build with unresolved symbol succeeded")
	}
}

func TestValidate(t *testing.T) {
	p := &Program{Insts: []isa.Inst{{Op: isa.BEQ, Imm: 99}}, Labels: map[string]int{}}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted out-of-range branch target")
	}
	p = &Program{Insts: []isa.Inst{{Op: isa.NOP}}, Entry: 5}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted out-of-range entry")
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	p := MustAssemble("sum", sumLoop)
	dis := p.Disassemble()
	for _, label := range []string{"main:", "loop:", "cont:"} {
		if !strings.Contains(dis, label) {
			t.Errorf("disassembly missing %q", label)
		}
	}
	if !strings.Contains(dis, "detach") || !strings.Contains(dis, "reattach") || !strings.Contains(dis, "sync") {
		t.Error("disassembly missing hint mnemonics")
	}
}

func TestLineProvenance(t *testing.T) {
	p := MustAssemble("sum", sumLoop)
	if len(p.Lines) != len(p.Insts) {
		t.Fatalf("Lines length %d != Insts length %d", len(p.Lines), len(p.Insts))
	}
	// Every assembled instruction must carry a positive source line, and
	// lines must be non-decreasing (one instruction per source line).
	prev := 0
	for i := range p.Insts {
		line := p.LineOf(i)
		if line <= 0 {
			t.Fatalf("instruction %d has no source line", i)
		}
		if line < prev {
			t.Fatalf("instruction %d line %d goes backwards from %d", i, line, prev)
		}
		prev = line
	}
	if p.LineOf(-1) != 0 || p.LineOf(len(p.Insts)) != 0 {
		t.Error("LineOf out of range must return 0")
	}
}

func TestNearestLabel(t *testing.T) {
	p := MustAssemble("sum", sumLoop)
	loop := p.MustLabel("loop")
	if name, off, ok := p.NearestLabel(loop); !ok || name != "loop" || off != 0 {
		t.Errorf("NearestLabel(loop) = %q+%d,%v", name, off, ok)
	}
	if name, off, ok := p.NearestLabel(loop + 2); !ok || name != "loop" || off != 2 {
		t.Errorf("NearestLabel(loop+2) = %q+%d,%v", name, off, ok)
	}
	if name, _, ok := p.NearestLabel(0); !ok || name != "main" {
		t.Errorf("NearestLabel(0) = %q,%v", name, ok)
	}
	if _, _, ok := p.NearestLabel(-1); ok {
		t.Error("NearestLabel(-1) must not resolve")
	}
}

func TestBuilderLineProvenance(t *testing.T) {
	b := NewBuilder("lines")
	b.Label("main")
	b.Line(10).Li(isa.X(5), 1)
	b.Line(12).Li(isa.X(6), 2)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.LineOf(0); got != 10 {
		t.Errorf("LineOf(0) = %d, want 10", got)
	}
	if got := p.LineOf(1); got != 12 {
		t.Errorf("LineOf(1) = %d, want 12", got)
	}
	// Halt inherits the last Line() setting; builders that never call
	// Line produce no provenance at all.
	if got := p.LineOf(2); got != 12 {
		t.Errorf("LineOf(2) = %d, want 12", got)
	}
	p2 := NewBuilder("nolines").Halt().MustBuild()
	if p2.Lines != nil {
		t.Error("builder without Line() calls must not attach provenance")
	}
}
