package asm

import (
	"encoding/binary"
	"fmt"
	"math"

	"loopfrog/internal/isa"
)

// Builder constructs program images programmatically. It is used by the
// compiler back end and by workload generators; labels are resolved when
// Build is called.
type Builder struct {
	name    string
	insts   []isa.Inst
	labels  map[string]int
	fixups  []fixup
	laFix   []fixup
	data    []byte
	base    uint64
	symbols map[string]uint64
	err     error

	lines   []int
	curLine int
	hasLine bool
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int),
		base:    DefaultDataBase,
		symbols: make(map[string]uint64),
	}
}

func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.insts) }

// Label defines a code label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.setErr(fmt.Errorf("asm: duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.insts)
	return b
}

// Line records the source line (1-based) that subsequently emitted
// instructions originate from, for diagnostics; 0 marks unknown provenance.
func (b *Builder) Line(line int) *Builder {
	b.curLine = line
	if line > 0 {
		b.hasLine = true
	}
	return b
}

// I emits a raw instruction.
func (b *Builder) I(inst isa.Inst) *Builder {
	b.insts = append(b.insts, inst)
	b.lines = append(b.lines, b.curLine)
	return b
}

// Op emits a three-register instruction.
func (b *Builder) Op(op isa.Opcode, rd, rs1, rs2 isa.Reg) *Builder {
	return b.I(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpImm emits a register-immediate instruction.
func (b *Builder) OpImm(op isa.Opcode, rd, rs1 isa.Reg, imm int64) *Builder {
	return b.I(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li emits a load-immediate.
func (b *Builder) Li(rd isa.Reg, v int64) *Builder {
	return b.I(isa.Inst{Op: isa.LI, Rd: rd, Imm: v})
}

// La emits a load of a data symbol's address (resolved at Build).
func (b *Builder) La(rd isa.Reg, sym string) *Builder {
	b.laFix = append(b.laFix, fixup{instIdx: len(b.insts), label: sym, dataSym: true})
	return b.I(isa.Inst{Op: isa.LI, Rd: rd})
}

// Load emits a load rd <- mem[rs1+off].
func (b *Builder) Load(op isa.Opcode, rd, rs1 isa.Reg, off int64) *Builder {
	return b.I(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: off})
}

// Store emits a store mem[rs1+off] <- rs2.
func (b *Builder) Store(op isa.Opcode, rs2, rs1 isa.Reg, off int64) *Builder {
	return b.I(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
}

// Branch emits a conditional branch to a label.
func (b *Builder) Branch(op isa.Opcode, rs1, rs2 isa.Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{instIdx: len(b.insts), label: label})
	return b.I(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// Jump emits jal rd, label.
func (b *Builder) Jump(rd isa.Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{instIdx: len(b.insts), label: label})
	return b.I(isa.Inst{Op: isa.JAL, Rd: rd})
}

// Hint emits a LoopFrog hint targeting a label (the region's continuation).
func (b *Builder) Hint(op isa.Opcode, label string) *Builder {
	if !isa.OpMeta(op).IsHint {
		b.setErr(fmt.Errorf("asm: %s is not a hint", op))
		return b
	}
	b.fixups = append(b.fixups, fixup{instIdx: len(b.insts), label: label})
	return b.I(isa.Inst{Op: op})
}

// Halt emits a halt.
func (b *Builder) Halt() *Builder { return b.I(isa.Inst{Op: isa.HALT}) }

// Nop emits a nop.
func (b *Builder) Nop() *Builder { return b.I(isa.Inst{Op: isa.NOP}) }

// Align pads the data segment to a multiple of n bytes.
func (b *Builder) Align(n int) *Builder {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
	return b
}

// Sym defines a data symbol at the current end of the data segment.
func (b *Builder) Sym(name string) *Builder {
	if _, dup := b.symbols[name]; dup {
		b.setErr(fmt.Errorf("asm: duplicate symbol %q", name))
		return b
	}
	b.symbols[name] = b.base + uint64(len(b.data))
	return b
}

// Quad appends 64-bit little-endian values to the data segment. As with the
// assembler's .quad, no implicit alignment is performed; call Align first if
// the current offset may be unaligned.
func (b *Builder) Quad(vs ...uint64) *Builder {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], v)
		b.data = append(b.data, buf[:]...)
	}
	return b
}

// Double appends float64 values to the data segment.
func (b *Builder) Double(vs ...float64) *Builder {
	for _, v := range vs {
		b.Quad(math.Float64bits(v))
	}
	return b
}

// Bytes appends raw bytes to the data segment.
func (b *Builder) Bytes(p []byte) *Builder {
	b.data = append(b.data, p...)
	return b
}

// Zero appends n zero bytes to the data segment.
func (b *Builder) Zero(n int) *Builder {
	b.data = append(b.data, make([]byte, n)...)
	return b
}

// Build resolves labels and returns the program image.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := &Program{
		Name:     b.name,
		Insts:    b.insts,
		Labels:   b.labels,
		Data:     b.data,
		DataBase: b.base,
		Symbols:  b.symbols,
	}
	if b.hasLine {
		p.Lines = b.lines
	}
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: unknown label %q", f.label)
		}
		p.Insts[f.instIdx].Imm = int64(idx)
	}
	for _, f := range b.laFix {
		if addr, ok := b.symbols[f.label]; ok {
			p.Insts[f.instIdx].Imm = int64(addr)
			continue
		}
		if idx, ok := b.labels[f.label]; ok {
			p.Insts[f.instIdx].Imm = int64(idx)
			continue
		}
		return nil, fmt.Errorf("asm: unknown symbol %q", f.label)
	}
	if idx, ok := p.Labels["main"]; ok {
		p.Entry = idx
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
