package ref

import (
	"errors"
	"testing"

	"loopfrog/internal/asm"
	"loopfrog/internal/isa"
)

func TestRunSumLoop(t *testing.T) {
	p := asm.MustAssemble("sum", `
        .data
arr:    .quad 1, 2, 3, 4, 5, 6, 7, 8
        .text
main:   la   a0, arr
        li   t0, 8          # trip count
        li   a1, 0          # sum
        li   t1, 0          # i
loop:   slli t2, t1, 3
        add  t2, a0, t2
        ld   t3, 0(t2)
        detach cont
        add  a1, a1, t3
        reattach cont
cont:   addi t1, t1, 1
        blt  t1, t0, loop
        sync cont
        halt
`)
	r := MustRun(p, Options{})
	if got := r.Regs[isa.X(11)]; got != 36 {
		t.Errorf("sum = %d, want 36", got)
	}
}

func TestRunHintsAreNops(t *testing.T) {
	// The same computation with and without hints must match exactly.
	body := `
main:   li   a0, 0
        li   t0, 0
        li   t1, 100
loop:   %s
        add  a0, a0, t0
        %s
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        %s
        halt
`
	hinted := asm.MustAssemble("h", sprintf3(body, "detach cont", "reattach cont", "sync cont"))
	plain := asm.MustAssemble("p", sprintf3(body, "nop", "nop", "nop"))
	rh := MustRun(hinted, Options{})
	rp := MustRun(plain, Options{})
	if rh.Regs[isa.X(10)] != rp.Regs[isa.X(10)] {
		t.Errorf("hinted sum %d != plain sum %d", rh.Regs[isa.X(10)], rp.Regs[isa.X(10)])
	}
	if rh.DynInsts != rp.DynInsts {
		t.Errorf("hinted executed %d insts, plain %d (hints must be counted like nops)", rh.DynInsts, rp.DynInsts)
	}
	if got := rh.Regs[isa.X(10)]; got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
}

func TestRunCallRet(t *testing.T) {
	p := asm.MustAssemble("call", `
main:   li   a0, 5
        call double
        call double
        halt
double: add  a0, a0, a0
        ret
`)
	r := MustRun(p, Options{})
	if got := r.Regs[isa.X(10)]; got != 20 {
		t.Errorf("a0 = %d, want 20", got)
	}
}

func TestRunMemoryOps(t *testing.T) {
	p := asm.MustAssemble("mem", `
        .data
buf:    .zero 64
        .text
main:   la   a0, buf
        li   t0, -2
        sb   t0, 0(a0)
        sh   t0, 2(a0)
        sw   t0, 4(a0)
        sd   t0, 8(a0)
        lb   a1, 0(a0)
        lbu  a2, 0(a0)
        lh   a3, 2(a0)
        lhu  a4, 2(a0)
        lw   a5, 4(a0)
        lwu  a6, 4(a0)
        ld   a7, 8(a0)
        halt
`)
	r := MustRun(p, Options{})
	check := func(reg isa.Reg, want uint64, name string) {
		if got := r.Regs[reg]; got != want {
			t.Errorf("%s = %#x, want %#x", name, got, want)
		}
	}
	neg2 := ^uint64(1)
	check(isa.X(11), neg2, "lb")
	check(isa.X(12), 0xfe, "lbu")
	check(isa.X(13), neg2, "lh")
	check(isa.X(14), 0xfffe, "lhu")
	check(isa.X(15), neg2, "lw")
	check(isa.X(16), 0xfffffffe, "lwu")
	check(isa.X(17), neg2, "ld")
}

func TestRunFloatingPoint(t *testing.T) {
	p := asm.MustAssemble("fp", `
        .data
vals:   .double 2.0, 8.0
        .text
main:   la   a0, vals
        fld  f0, 0(a0)
        fld  f1, 8(a0)
        fadd f2, f0, f1     # 10.0
        fmul f3, f0, f1     # 16.0
        fdiv f4, f1, f0     # 4.0
        fsqrt f5, f3        # 4.0
        feq  a1, f4, f5     # 1
        fcvtfi a2, f2       # 10
        halt
`)
	r := MustRun(p, Options{})
	if got := r.Regs[isa.X(11)]; got != 1 {
		t.Errorf("feq = %d, want 1", got)
	}
	if got := r.Regs[isa.X(12)]; got != 10 {
		t.Errorf("fcvtfi = %d, want 10", got)
	}
}

func TestRunX0IsHardwiredZero(t *testing.T) {
	p := asm.MustAssemble("x0", `
main:   li   x0, 99
        addi x0, x0, 1
        mv   a0, x0
        halt
`)
	r := MustRun(p, Options{})
	if got := r.Regs[isa.X(10)]; got != 0 {
		t.Errorf("x0 leaked value %d", got)
	}
}

func TestRunStepLimit(t *testing.T) {
	p := asm.MustAssemble("spin", `
main:   j main
`)
	_, err := Run(p, Options{MaxSteps: 1000})
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestRunPCOutOfRange(t *testing.T) {
	p := asm.MustAssemble("fall", `
main:   nop
`)
	if _, err := Run(p, Options{}); err == nil {
		t.Error("falling off the end did not error")
	}
}

func TestRunProfile(t *testing.T) {
	p := asm.MustAssemble("prof", `
        .data
buf:    .zero 8
        .text
main:   li   t0, 0
        li   t1, 10
        la   a0, buf
loop:   ld   t2, 0(a0)
        addi t2, t2, 1
        sd   t2, 0(a0)
        addi t0, t0, 1
        blt  t0, t1, loop
        halt
`)
	r := MustRun(p, Options{Profile: true})
	loopPC := p.MustLabel("loop")
	if got := r.Profile.ExecCount[loopPC]; got != 10 {
		t.Errorf("loop head executed %d times, want 10", got)
	}
	branchPC := loopPC + 4
	if got := r.Profile.TakenCount[branchPC]; got != 9 {
		t.Errorf("backedge taken %d times, want 9", got)
	}
	if r.Profile.Loads != 10 || r.Profile.Stores != 10 {
		t.Errorf("loads/stores = %d/%d, want 10/10", r.Profile.Loads, r.Profile.Stores)
	}
	if got := r.Mem.Read(p.MustSymbol("buf"), 8); got != 10 {
		t.Errorf("buf = %d, want 10", got)
	}
}

func TestRunInitRegs(t *testing.T) {
	p := asm.MustAssemble("init", `
main:   add a0, a1, a2
        halt
`)
	var regs [isa.NumRegs]uint64
	regs[isa.X(11)] = 30
	regs[isa.X(12)] = 12
	r := MustRun(p, Options{InitRegs: &regs})
	if got := r.Regs[isa.X(10)]; got != 42 {
		t.Errorf("a0 = %d, want 42", got)
	}
}

func TestRunStackPointerInitialised(t *testing.T) {
	p := asm.MustAssemble("sp", `
main:   addi sp, sp, -16
        li   t0, 7
        sd   t0, 0(sp)
        ld   a0, 0(sp)
        halt
`)
	r := MustRun(p, Options{})
	if got := r.Regs[isa.X(10)]; got != 7 {
		t.Errorf("stack round trip = %d, want 7", got)
	}
	if got := r.Regs[isa.X(2)]; got != asm.DefaultStackTop-16 {
		t.Errorf("sp = %#x, want %#x", got, asm.DefaultStackTop-16)
	}
}

func TestRunIndirectJump(t *testing.T) {
	p := asm.MustAssemble("ind", `
main:   la   t0, target
        jalr ra, t0, 0
        halt
target: li   a0, 55
        jalr x0, ra, 0
`)
	r := MustRun(p, Options{})
	if got := r.Regs[isa.X(10)]; got != 55 {
		t.Errorf("a0 = %d, want 55", got)
	}
}

func sprintf3(format, a, b, c string) string {
	out := ""
	rest := format
	for _, s := range []string{a, b, c} {
		i := indexOf(rest, "%s")
		out += rest[:i] + s
		rest = rest[i+2:]
	}
	return out + rest
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
