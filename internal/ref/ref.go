// Package ref implements the reference functional interpreter for LFISA.
//
// The interpreter executes a program image strictly sequentially, treating
// the LoopFrog hints as NOPs — which is, by construction (§3.1/§3.2 of the
// paper), the architectural semantics of a hinted binary. Every timing model
// in this repository is cross-checked against it: the out-of-order core and
// the LoopFrog engine must produce exactly the same final register and
// memory state for every program, or they are wrong.
package ref

import (
	"errors"
	"fmt"

	"loopfrog/internal/asm"
	"loopfrog/internal/isa"
	"loopfrog/internal/mem"
)

// ErrStepLimit is returned when a program fails to halt within the step
// budget.
var ErrStepLimit = errors.New("ref: step limit exceeded")

// Result is the final architectural state of a run.
type Result struct {
	// Regs holds the final register file (indices match isa.Reg).
	Regs [isa.NumRegs]uint64
	// Mem is the final memory state.
	Mem *mem.Memory
	// DynInsts is the number of instructions executed (hints included).
	DynInsts uint64
	// Profile, if profiling was enabled, holds per-PC execution counts.
	Profile *Profile
}

// Profile captures per-PC dynamic behaviour used by the compiler's
// profile-guided loop selection (§5.1) and by tests.
type Profile struct {
	// ExecCount[pc] is the number of times the instruction executed.
	ExecCount []uint64
	// TakenCount[pc] counts taken outcomes for branches.
	TakenCount []uint64
	// Loads and Stores are total dynamic memory operation counts.
	Loads, Stores uint64
}

// Options configure a reference run.
type Options struct {
	// MaxSteps bounds execution; 0 means DefaultMaxSteps.
	MaxSteps uint64
	// Profile enables per-PC profiling.
	Profile bool
	// InitRegs, if non-nil, seeds the register file.
	InitRegs *[isa.NumRegs]uint64
}

// DefaultMaxSteps is the default dynamic instruction budget.
const DefaultMaxSteps = 500_000_000

// Run executes the program to completion and returns the final state.
func Run(p *asm.Program, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	res := &Result{Mem: mem.NewMemory()}
	res.Mem.LoadProgram(p)
	if opts.InitRegs != nil {
		res.Regs = *opts.InitRegs
	}
	res.Regs[isa.X(2)] = asm.DefaultStackTop // sp
	if opts.Profile {
		res.Profile = &Profile{
			ExecCount:  make([]uint64, len(p.Insts)),
			TakenCount: make([]uint64, len(p.Insts)),
		}
	}

	// Dispatch over the shared predecoded image: operand metadata is resolved
	// once per static instruction, not once per dynamic step.
	code := p.Decoded()
	pc := p.Entry
	n := len(code)
	for res.DynInsts < maxSteps {
		if pc < 0 || pc >= n {
			return nil, fmt.Errorf("ref: pc %d out of range [0,%d) after %d instructions", pc, n, res.DynInsts)
		}
		d := &code[pc]
		inst := d.Inst
		meta := d.Meta
		res.DynInsts++
		if res.Profile != nil {
			res.Profile.ExecCount[pc]++
		}
		next := pc + 1
		switch {
		case inst.Op == isa.HALT:
			res.Regs[0] = 0
			return res, nil
		case inst.Op == isa.NOP || meta.IsHint:
			// Architectural NOPs.
		case meta.IsLoad:
			addr := res.Regs[inst.Rs1] + uint64(inst.Imm)
			raw := res.Mem.Read(addr, meta.MemBytes)
			setReg(&res.Regs, inst.Rd, isa.ExtendLoad(inst.Op, raw))
			if res.Profile != nil {
				res.Profile.Loads++
			}
		case meta.IsStore:
			addr := res.Regs[inst.Rs1] + uint64(inst.Imm)
			res.Mem.Write(addr, meta.MemBytes, res.Regs[inst.Rs2])
			if res.Profile != nil {
				res.Profile.Stores++
			}
		case meta.IsBranch:
			if isa.BranchTaken(inst.Op, res.Regs[inst.Rs1], res.Regs[inst.Rs2]) {
				next = int(inst.Imm)
				if res.Profile != nil {
					res.Profile.TakenCount[pc]++
				}
			}
		case inst.Op == isa.JAL:
			setReg(&res.Regs, inst.Rd, uint64(pc+1))
			next = int(inst.Imm)
		case inst.Op == isa.JALR:
			setReg(&res.Regs, inst.Rd, uint64(pc+1))
			next = int(res.Regs[inst.Rs1] + uint64(inst.Imm))
		default:
			setReg(&res.Regs, inst.Rd, isa.EvalALU(inst, res.Regs[inst.Rs1], res.Regs[inst.Rs2]))
		}
		pc = next
	}
	return nil, fmt.Errorf("%w (%d)", ErrStepLimit, maxSteps)
}

// MustRun is Run that panics on error, for tests and examples.
func MustRun(p *asm.Program, opts Options) *Result {
	r, err := Run(p, opts)
	if err != nil {
		panic(err)
	}
	return r
}

func setReg(regs *[isa.NumRegs]uint64, r isa.Reg, v uint64) {
	if r == isa.X0 {
		return
	}
	regs[r] = v
}
