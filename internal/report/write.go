package report

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"strings"
)

// WriteText renders the profile as an aligned terminal report: a header with
// the run totals, then one block per region ranked most-costly-first.
func (p *Profile) WriteText(w io.Writer) error {
	var b strings.Builder
	kind := "exact"
	if p.Estimated {
		kind = "sampled estimate"
	}
	fmt.Fprintf(&b, "%s: %d cycles (%s)", p.Program, p.Cycles, kind)
	if p.Speedup > 0 {
		fmt.Fprintf(&b, ", speedup %.3fx over baseline (%d cycles)", p.Speedup, p.BaselineCycles)
	}
	b.WriteString("\n")
	if len(p.Rows) == 0 {
		b.WriteString("  no regions: the program carries no hints or the region ledger was disabled\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	for i := range p.Rows {
		r := &p.Rows[i]
		fmt.Fprintf(&b, "\nregion %d%s  —  %s\n", r.Region, rowWhere(r), r.Verdict)
		fmt.Fprintf(&b, "  %s\n", r.Reason)
		l := &r.Ledger
		fmt.Fprintf(&b, "  detaches %d  spawns %d (packed %d, no-context %d)  promotes %d  restarts %d\n",
			l.Detaches, l.Spawns, l.PackedSpawns, l.DetachNoContext, l.Promotes, l.Restarts)
		fmt.Fprintf(&b, "  spec insts: won %d, lost %d", l.SpecWon, l.SpecLost)
		if n := l.SquashTotal(); n > 0 {
			fmt.Fprintf(&b, "  squashes %d (", n)
			first := true
			for _, cause := range sortedKeys(r.SquashesByCause) {
				if !first {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s %d", cause, r.SquashesByCause[cause])
				first = false
			}
			b.WriteString(")")
		}
		b.WriteString("\n")
		if l.PackVerifies > 0 {
			fmt.Fprintf(&b, "  packing: %.1f%% accurate over %d verifies (%d repairs)\n",
				100*r.PackAccuracy, l.PackVerifies, l.PackRepairs)
		}
		if r.DominantStall != "" {
			fmt.Fprintf(&b, "  dominant stall: %s (%d slots)\n", r.DominantStall, r.DominantStallN)
		}
		if l.Leaks > 0 {
			fmt.Fprintf(&b, "  speculative leaks: %d confirmed (see lfsim -spectre)\n", l.Leaks)
		}
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "  note: %s\n", n)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// rowWhere renders the static provenance suffix (" (label, line N)" forms).
func rowWhere(r *Row) string {
	switch {
	case r.Label != "" && r.Line > 0:
		return fmt.Sprintf(" (%s, line %d)", r.Label, r.Line)
	case r.Label != "":
		return fmt.Sprintf(" (%s)", r.Label)
	case r.Line > 0:
		return fmt.Sprintf(" (line %d)", r.Line)
	}
	return ""
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// WriteJSON renders the profile as indented JSON (the schema CI validates).
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteSuiteJSON renders several profiles as one JSON document:
// {"suite": [profile, ...]}.
func WriteSuiteJSON(w io.Writer, profiles []*Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Suite []*Profile `json:"suite"`
	}{Suite: profiles})
}

// htmlPage is the standalone report page: no external assets, loads from a
// file:// URL.
var htmlPage = template.Must(template.New("report").Funcs(template.FuncMap{
	"pct": func(x float64) float64 { return 100 * x },
}).Parse(`<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>loopfrog region report</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: .75rem 0; }
th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #ddd; white-space: nowrap; }
th { background: #f4f4f8; }
td.reason { white-space: normal; }
.keep { color: #1a7a3c; font-weight: 600; } .retune { color: #b07d00; font-weight: 600; }
.drop { color: #b3261e; font-weight: 600; } .unused { color: #666; font-weight: 600; }
.meta { color: #555; }
</style></head><body>
<h1>LoopFrog per-region speculation report</h1>
{{range .}}
<h2>{{.Program}}</h2>
<p class="meta">{{.Cycles}} cycles{{if .Estimated}} (sampled estimate){{end}}{{if .Speedup}}, speedup {{printf "%.3f" .Speedup}}&times; over baseline ({{.BaselineCycles}} cycles){{end}}</p>
{{if .Rows}}
<table>
<tr><th>region</th><th>where</th><th>verdict</th><th>spawns</th><th>squashes</th><th>spec won</th><th>spec lost</th><th>leaks</th><th>pack acc</th><th>dominant stall</th><th class="reason">why</th></tr>
{{range .Rows}}
<tr>
<td>{{.Region}}</td>
<td>{{if .Label}}{{.Label}}{{end}}{{if .Line}} :{{.Line}}{{end}}</td>
<td class="{{.Verdict}}">{{.Verdict}}</td>
<td>{{.Ledger.Spawns}}</td>
<td>{{.Ledger.SquashTotal}}</td>
<td>{{.Ledger.SpecWon}}</td>
<td>{{.Ledger.SpecLost}}</td>
<td>{{if .Ledger.Leaks}}<span class="drop">{{.Ledger.Leaks}}</span>{{else}}0{{end}}</td>
<td>{{printf "%.1f%%" (pct .PackAccuracy)}}</td>
<td>{{.DominantStall}}</td>
<td class="reason">{{.Reason}}{{range .Notes}}<br><span class="meta">{{.}}</span>{{end}}</td>
</tr>
{{end}}
</table>
{{else}}
<p class="meta">no regions recorded</p>
{{end}}
{{end}}
</body></html>
`))

// WriteHTML renders one or more profiles as a standalone HTML page.
func WriteHTML(w io.Writer, profiles []*Profile) error {
	return htmlPage.Execute(w, profiles)
}
